# Developer entry points.  `make check` is the CI gate: build, formatting
# (when ocamlformat is installed — skipped with a notice otherwise, so the
# gate still runs on minimal toolchains), and the test suite, which
# includes the construction-path micro-bench smoke run (see bench/dune).

.PHONY: all build fmt lint lint-fixtures test check ci bench \
  bench-construction bench-smoke bench-serve bench-lca bench-replication

all: build

build:
	dune build

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping dune build @fmt"; \
	fi

# msparlint: the compiler-libs lint pass over lib/ bin/ bench/ test/
# (see doc/LINTS.md; also wired into dune runtest via the @lint alias).
# The @lint rule runs with --ci --timings, so per-phase timings land on
# stderr and the typed pass is held to its 30s budget.
lint:
	dune build @lint

# the lint engine's own fixture suite (rule true/false positives,
# typed-rule fixtures, suppression, SARIF shape)
lint-fixtures:
	dune exec test/test_lint.exe

test:
	dune runtest

check: build fmt lint test

# the one-command CI gate: build, full test suite (includes the
# construction, fault-injection and .msgr-container smoke runs wired
# into dune runtest — the msgr legs at a small size; `make bench-smoke`
# is the same gate at ~1M edges), then the gated formatting check
ci:
	dune build
	$(MAKE) lint
	dune runtest
	$(MAKE) fmt

bench:
	dune exec bench/main.exe -- --csv bench_csv

# full-size construction-path rows (100k vertices, ~5M edges)
bench-construction:
	dune exec bench/main.exe -- --csv bench_csv construction

# .msgr container smoke at ~1M edges: save, mmap-reopen with checksum and
# audit cross-checks, and the O(1)-ish open assertion (same legs run at a
# small size on every `dune runtest` / `make ci`)
bench-smoke:
	dune exec bench/main.exe -- --csv bench_csv msgr-smoke

# full serve suite: the complete socket fault-injection sweep (hostile
# frames, backpressure, seeded kill -9 crash points with bit-for-bit
# recovery, SIGTERM drain) plus the >=100k-op load run against a forked
# `mspar serve` (smoke-size legs run on every `dune runtest` / `make ci`)
bench-serve:
	dune exec bench/main.exe -- --csv bench_csv serve-faults
	dune exec bench/main.exe -- --csv bench_csv serve-load

# full replication suite: all four hot-standby legs at full op counts —
# kill -9 failover with Promote + client rediscovery, replica crash
# catch-up over the surviving dir, stale-epoch fencing, and the
# slow-follower lag/backpressure leg — writing
# bench_csv/serve-replication.csv (the failover + fencing legs run at
# smoke size on every `dune runtest` / `make ci`)
bench-replication:
	dune exec bench/main.exe -- --csv bench_csv serve-replication

# full-size point-query oracle rows (100k vertices, ~5M edges): cold
# O(delta) probe gate, >=100x query-vs-build crossover, and the Zipfian
# warm-replay >=10x probe reduction, all asserted inline (a smoke-size
# leg with the same parity + probe gates runs on every `dune runtest`)
bench-lca:
	dune exec bench/main.exe -- --csv bench_csv lca-query
