(* One-pass pairing from an interaction log that is too big to store.

   A collaboration platform wants to pair users for peer review based on
   who has interacted with whom.  The interaction log arrives as a stream of
   hundreds of thousands of edges and must not be stored: the platform keeps
   only a per-user reservoir of Delta candidate partners (the semi-streaming
   G_Delta) and pairs users from the reservoirs at the end of the day.

   Because the interaction graph is community-structured (every user's
   contacts are covered by a few communities), its neighborhood independence
   is small and Theorem 2.1 makes the reservoir union a (1+eps)-matching
   sparsifier: the pairing computed from O(n*Delta) memory is within (1+eps)
   of what the full log would have allowed.

   Run with:  dune exec examples/streaming_log.exe *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

let () =
  let rng = Rng.create 99 in
  let n = 2_000 in
  let beta = 3 (* users belong to <= 3 communities *) in
  let eps = 0.5 in

  (* the ground-truth interaction graph (the stream generator; the
     algorithm never holds it in memory) *)
  let universe =
    Gen.bounded_diversity (Rng.split rng) ~n ~cliques:60 ~memberships:beta
  in
  let log = Graph.edges universe in
  Rng.shuffle_in_place rng log;
  Printf.printf "interaction log: %d users, %d interactions streaming in\n" n
    (Array.length log);

  let delta = Delta_param.scaled ~multiplier:0.5 ~beta ~eps in
  let sketch = Mspar_stream.Stream_sparsifier.create (Rng.split rng) ~n ~delta in
  Array.iter (fun (u, v) -> Mspar_stream.Stream_sparsifier.feed sketch u v) log;

  let peak = Mspar_stream.Stream_sparsifier.peak_stored sketch in
  Printf.printf
    "reservoirs: delta=%d, peak memory %d edges (%.1f%% of the log; cap n*delta=%d)\n"
    delta peak
    (100.0 *. float_of_int peak /. float_of_int (Array.length log))
    (n * delta);

  let sparsifier = Mspar_stream.Stream_sparsifier.sparsifier sketch in
  let pairing = Approx.solve_general ~eps sparsifier in
  Printf.printf "pairing: %d pairs from the sketch\n" (Matching.size pairing);

  (* offline audit against the full log (only possible here because this is
     a simulation and we kept the generator's graph around) *)
  let opt = Matching.size (Blossom.solve universe) in
  Printf.printf "offline optimum: %d pairs; achieved ratio %.4f (target %.2f)\n"
    opt
    (float_of_int opt /. float_of_int (max 1 (Matching.size pairing)))
    ((1.0 +. eps) *. (1.0 +. eps));
  assert (Matching.is_valid universe pairing)
