(* Wireless link scheduling on a unit-disk radio network.

   Devices sit in the plane and can talk to anything within radio range —
   a unit-disk graph, one of the paper's motivating bounded-neighborhood-
   independence families (beta <= 5 in the plane).  A transmission schedule
   for one time slot is a set of point-to-point links in which every device
   participates at most once: a matching.  Maximizing simultaneous
   transmissions = maximum matching.

   This example compares three schedulers on the same deployment:
     greedy    - maximal matching over all links (the classic 2-approx)
     sparsified - the paper's pipeline: sample Delta links per device, match
                  on the sample only
     exact     - Edmonds blossom on the full link graph (ground truth)

   Run with:  dune exec examples/wireless_scheduling.exe *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

let () =
  let rng = Rng.create 7 in
  let n = 900 in
  (* dense deployment: each device hears a couple hundred others *)
  let radius = 0.25 in
  let g, _points = Unit_disk.random rng ~n ~radius in
  Printf.printf "deployment: %d devices, %d feasible links, max degree %d\n"
    (Graph.n g) (Graph.m g) (Graph.max_degree g);

  let beta = 5 (* planar unit-disk bound; exact beta is usually smaller *) in
  let eps = 0.25 in

  let (exact, exact_ns) = Clock.time_ns (fun () -> Blossom.solve g) in
  let (greedy, greedy_ns) = Clock.time_ns (fun () -> Greedy.maximal g) in
  (* multiplier 0.25: the proof constant is far from tight (bench E11) *)
  let r = Pipeline.run ~multiplier:0.25 rng g ~beta ~eps in
  let sparsified = r.Pipeline.matching in
  let spars_ns = Int64.add r.Pipeline.sparsify_ns r.Pipeline.match_ns in

  let opt = Matching.size exact in
  let report name m ns =
    Printf.printf "%-11s %4d links scheduled  (ratio %.4f)  %8.2f ms\n" name
      (Matching.size m)
      (float_of_int opt /. float_of_int (max 1 (Matching.size m)))
      (Clock.ns_to_ms ns)
  in
  Printf.printf "\nscheduler    slots                         time\n";
  report "exact" exact exact_ns;
  report "greedy" greedy greedy_ns;
  report "sparsified" sparsified spars_ns;
  Printf.printf
    "\nsparsified read %d adjacency entries of %d (%.1f%%) and matched on %d links\n"
    r.Pipeline.probes_on_input (2 * Graph.m g)
    (100.0 *. Pipeline.sublinearity_ratio r)
    r.Pipeline.sparsifier_edges;
  assert (Matching.is_valid g sparsified);
  assert (float_of_int opt
          <= (1.0 +. eps) *. (1.0 +. eps)
             *. float_of_int (max 1 (Matching.size sparsified)))
