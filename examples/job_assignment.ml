(* Dynamic worker-task assignment with a worst-case update budget.

   A gig-work platform matches couriers to delivery tasks.  Compatibility
   edges appear and disappear continuously (couriers go on/off shift, tasks
   are posted and cancelled).  Each courier serves a handful of city zones,
   so compatibility neighborhoods are covered by few cliques — a
   bounded-diversity graph, hence bounded neighborhood independence.

   The platform wants a near-maximum assignment at all times without ever
   spending more than a fixed budget per event: exactly the fully dynamic
   (1+eps) matcher of Theorem 3.5.  The run compares it with the classic
   maximal-matching repair baseline, whose per-event cost grows with
   density.

   Run with:  dune exec examples/job_assignment.exe *)

open Mspar_prelude
open Mspar_matching
open Mspar_dynamic

let () =
  let rng = Rng.create 11 in
  let n = 300 in
  let eps = 0.5 in
  let beta = 3 (* couriers serve <= 3 zones *) in

  let dm = Dyn_matching.create ~multiplier:0.5 (Rng.split rng) ~n ~beta ~eps in
  let baseline = Baseline_dynamic.create ~n in

  (* the compatibility universe: a bounded-diversity graph *)
  let universe =
    Mspar_graph.Gen.bounded_diversity (Rng.split rng) ~n ~cliques:30
      ~memberships:3
  in
  let edges = Mspar_graph.Graph.edges universe in
  Printf.printf "universe: %d workers, %d possible compatibilities\n" n
    (Array.length edges);

  (* morning ramp-up: compatibilities appear in random order *)
  Rng.shuffle_in_place rng edges;
  Array.iter
    (fun (u, v) ->
      ignore (Dyn_matching.insert dm u v);
      ignore (Baseline_dynamic.insert baseline u v))
    edges;
  Printf.printf "after ramp-up: ours=%d assignments, baseline=%d\n"
    (Dyn_matching.size dm)
    (Baseline_dynamic.size baseline);

  (* churn: cancellations target active assignments (adaptive adversary),
     new compatibilities appear to compensate *)
  let churn_rng = Rng.create 23 in
  let steps = 2000 in
  for step = 1 to steps do
    let mate v = Matching.mate (Dyn_matching.matching dm) v in
    (match
       Adversary.next_op Adversary.Adaptive_target_matching churn_rng
         (Dyn_matching.graph dm) ~current_mate:mate
     with
    | Some (Adversary.Delete (u, v)) ->
        ignore (Dyn_matching.delete dm u v);
        ignore (Baseline_dynamic.delete baseline u v)
    | Some (Adversary.Insert (u, v)) ->
        ignore (Dyn_matching.insert dm u v);
        ignore (Baseline_dynamic.insert baseline u v)
    | None -> ());
    if step mod 500 = 0 then
      Printf.printf "  step %4d: ours=%d, baseline=%d assignments\n" step
        (Dyn_matching.size dm)
        (Baseline_dynamic.size baseline)
  done;

  let s = Dyn_matching.stats dm in
  let b = Baseline_dynamic.stats baseline in
  Printf.printf "\nper-event cost (work units):\n";
  Printf.printf "  ours:     %d updates, worst-case spread work %d/update, %d rebuilds\n"
    s.Dyn_matching.updates s.Dyn_matching.max_spread_work s.Dyn_matching.rebuilds;
  Printf.printf "  baseline: %d updates, worst single repair %d neighbor scans\n"
    b.Baseline_dynamic.updates b.Baseline_dynamic.max_update_work;

  (* final quality check against the exact optimum *)
  let g = Dyn_graph.snapshot (Dyn_matching.graph dm) in
  let opt = Matching.size (Blossom.solve g) in
  Printf.printf "\nfinal: ours=%d, baseline=%d, optimum=%d (ours within %.3fx)\n"
    (Dyn_matching.size dm)
    (Baseline_dynamic.size baseline)
    opt
    (float_of_int opt /. float_of_int (max 1 (Dyn_matching.size dm)))
