(* Message-frugal matching in a simulated distributed network.

   A cluster interconnect wants to pair up nodes for an all-to-all shuffle:
   each node may be paired with one neighbor, and the fabric wants as many
   simultaneous pairs as possible — a distributed maximum matching.  The
   interconnect is dense (many candidate peers per node), so the textbook
   protocols pay Omega(m) messages just announcing state along every link.

   The paper's pipeline sends 1-bit marks along only Delta random links per
   node (one round), composes the Solomon bounded-degree sparsifier (one
   more round), and runs the matching protocol on the sparsifier — the
   message bill drops from Omega(m) to O(n * Delta) while keeping the
   matching within (1+eps) of optimal (Theorems 3.2/3.3).

   Run with:  dune exec examples/distributed_network.exe *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_distsim

let () =
  let rng = Rng.create 5 in
  (* a dense interconnect: nodes in few racks, all-to-all within a rack *)
  let n = 400 in
  let g = Gen.disjoint_cliques (Rng.split rng) ~n ~k:4 in
  Printf.printf "fabric: %d nodes, %d links\n" (Graph.n g) (Graph.m g);

  let beta = 1 (* cliques: any neighborhood's independent set is a single node *) in
  let eps = 0.5 in

  (* baseline: maximal matching protocol over every link *)
  let base_m, base_st = Matching_dist.full_graph_baseline (Rng.split rng) g in

  (* sparsified pipeline; a handful of walker attempts per phase suffices on
     this topology and keeps the round bill small *)
  let r =
    Pipeline_dist.run ~multiplier:1.0 ~attempts_per_phase:8 (Rng.split rng) g
      ~beta ~eps
  in

  let opt = Matching.size (Blossom.solve g) in
  Printf.printf "\n%-22s %8s %10s %10s %8s\n" "protocol" "pairs" "messages"
    "bits" "rounds";
  Printf.printf "%-22s %8d %10d %10d %8d\n" "baseline (full graph)"
    (Matching.size base_m) base_st.Matching_dist.messages
    base_st.Matching_dist.bits base_st.Matching_dist.rounds;
  Printf.printf "%-22s %8d %10d %10d %8d\n" "sparsified pipeline"
    (Matching.size r.Pipeline_dist.matching)
    r.Pipeline_dist.messages r.Pipeline_dist.bits r.Pipeline_dist.rounds;
  Printf.printf "%-22s %8d\n" "exact optimum" opt;

  Printf.printf
    "\nsparsifier: %d edges (%.1f%% of links), max node degree %d\n"
    r.Pipeline_dist.sparsifier_edges
    (100.0 *. float_of_int r.Pipeline_dist.sparsifier_edges /. float_of_int (Graph.m g))
    r.Pipeline_dist.max_degree;
  Printf.printf "message saving: %.1fx fewer messages than the baseline\n"
    (float_of_int base_st.Matching_dist.messages
    /. float_of_int (max 1 r.Pipeline_dist.messages));
  assert (Matching.is_valid g r.Pipeline_dist.matching)
