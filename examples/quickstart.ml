(* Quickstart: sparsify a dense graph and match on the sparsifier.

   Run with:  dune exec examples/quickstart.exe *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

let () =
  let rng = Rng.create 2020 in

  (* A dense graph with small neighborhood independence: the line graph of a
     random base graph (beta <= 2 for every line graph). *)
  let g = Line_graph.random_base rng ~base_n:80 ~p:0.4 in
  Printf.printf "input graph: n=%d, m=%d (dense)\n" (Graph.n g) (Graph.m g);

  (* Confirm the structural parameter the algorithm relies on. *)
  let beta = Beta.value (Beta.compute g) in
  Printf.printf "neighborhood independence beta = %d\n" beta;

  (* Build the sparsifier and match on it: the whole pipeline in one call.
     The proof's constant in Delta is loose; multiplier 0.5 keeps the (1+eps)
     quality empirically while making the sparsifier genuinely sparse (the
     E11 ablation in bench/ sweeps this knob). *)
  let eps = 0.3 in
  let r = Pipeline.run ~multiplier:0.5 rng g ~beta ~eps in
  Printf.printf "sparsifier: delta=%d, %d edges (%.1f%% of input)\n"
    r.Pipeline.delta r.Pipeline.sparsifier_edges
    (100.0 *. float_of_int r.Pipeline.sparsifier_edges /. float_of_int (Graph.m g));
  Printf.printf "probes on the original graph: %d of %d adjacency entries (%.1f%%)\n"
    r.Pipeline.probes_on_input (2 * Graph.m g)
    (100.0 *. Pipeline.sublinearity_ratio r);

  (* Compare the result against the exact optimum. *)
  let opt = Matching.size (Blossom.solve g) in
  let got = Matching.size r.Pipeline.matching in
  Printf.printf "matching: %d edges; exact MCM: %d; ratio %.4f (target <= %.2f)\n"
    got opt
    (float_of_int opt /. float_of_int (max 1 got))
    (1.0 +. eps);
  assert (Matching.is_valid g r.Pipeline.matching)
