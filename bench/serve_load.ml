(* Load generator for `mspar serve`: N concurrent connections, each
   pipelining a window of requests over its own disjoint vertex
   partition, with exponential-backoff reconnect and at-most-once
   request ids.  Because partitions are disjoint, every client can hold
   an exact model of its own edges, so "zero acknowledged-update loss"
   is checked literally at the end: after the last ack, every edge the
   model says exists must answer Query_edge = true (and vice versa for
   touched-but-absent edges).

   Reports p50/p99 request latency and sustained updates/sec into
   bench_csv/serve-load.csv (when the harness runs with --csv). *)

open Mspar_prelude
open Mspar_server

type action = Update of Serve_util.op | Query of Wire.request

type pending = { action : action; rid : int; first_send : float }

type client_state = {
  id : int;
  addr : Wire.addr;
  mutable conn : Client.t;
  actions : action array;
  rids : int array;  (* rid per action index; 0 for queries *)
  mutable next : int;  (* next action index to send *)
  mutable inflight : pending list;  (* oldest first — response FIFO *)
  model : (int * int, bool) Hashtbl.t;
  mutable acked_updates : int;
  mutable busy_retries : int;
  mutable reconnects : int;
  mutable latencies : float list;  (* acked updates *)
  mutable query_latencies : float list;  (* Bool-answered point queries *)
}

let key u v = if u < v then (u, v) else (v, u)

let make_actions rng ~base ~span ~updates ~queries =
  let ops = Serve_util.make_ops rng ~n:span ~count:updates in
  let shift = function
    | Serve_util.Ins (u, v) -> Serve_util.Ins (base + u, base + v)
    | Serve_util.Del (u, v) -> Serve_util.Del (base + u, base + v)
  in
  let qs =
    Array.init queries (fun _ ->
        let u = base + Rng.int rng span in
        let v = base + Rng.int rng span in
        match Rng.int rng 3 with
        | 0 -> Wire.Query_matched u
        | 1 -> Wire.Query_edge (u, v)
        | _ -> Wire.Query_sparsifier (u, v))
  in
  let all =
    Array.append
      (Array.map (fun o -> Update (shift o)) ops)
      (Array.map (fun q -> Query q) qs)
  in
  Rng.shuffle_in_place rng all;
  (* rids number the updates 1.. in stream order *)
  let rid = ref 0 in
  let rids =
    Array.map
      (function
        | Update _ ->
            incr rid;
            !rid
        | Query _ -> 0)
      all
  in
  (all, rids)

let request_of c = function
  | Update (Serve_util.Ins (u, v)), rid -> Wire.Insert { rid; u; v }
  | Update (Serve_util.Del (u, v)), rid -> Wire.Delete { rid; u; v }
  | Query q, _ ->
      ignore c;
      q

let send_action c (p : pending) =
  match Client.send c.conn (request_of c (p.action, p.rid)) with
  | Ok () -> true
  | Error _ -> false

let reconnect c =
  Client.close c.conn;
  c.reconnects <- c.reconnects + 1;
  (* full-jitter backoff seeded per client: a herd of reconnecting
     clients fans out instead of hammering the fresh listener in sync *)
  match
    Client.connect_retry ~attempts:10 ~base_delay:0.05 ~cap:2.0
      ~seed:(0x5eed + c.id)
      c.addr
  with
  | Error msg -> failwith ("serve_load: reconnect: " ^ msg)
  | Ok conn ->
      c.conn <- conn;
      Serve_util.hello conn c.id;
      (* replay the in-flight window: updates are deduped server-side,
         queries are just re-answered *)
      List.iter (fun p -> ignore (send_action c p)) c.inflight

let apply_model c = function
  | Serve_util.Ins (u, v) -> if u <> v then Hashtbl.replace c.model (key u v) true
  | Serve_util.Del (u, v) -> if u <> v then Hashtbl.replace c.model (key u v) false

(* consume one response for the oldest in-flight request *)
let handle_response c resp now =
  match c.inflight with
  | [] -> failwith "serve_load: response with nothing in flight"
  | p :: rest -> (
      match resp with
      | Wire.Busy ms ->
          c.busy_retries <- c.busy_retries + 1;
          c.inflight <- rest;
          (* jittered retry-after from the server; honour it (it is a
             few ms) then resend the same rid at the back of the window *)
          Unix.sleepf (float_of_int ms /. 1000.);
          c.inflight <- c.inflight @ [ p ];
          if not (send_action c p) then reconnect c
      | Wire.Ack changed ->
          ignore changed;
          c.inflight <- rest;
          c.latencies <- (now -. p.first_send) :: c.latencies;
          (match p.action with
          | Update op ->
              c.acked_updates <- c.acked_updates + 1;
              apply_model c op
          | Query _ -> failwith "serve_load: Ack for a query");
          ()
      | Wire.Bool _ ->
          c.inflight <- rest;
          c.query_latencies <- (now -. p.first_send) :: c.query_latencies
      | Wire.Error msg -> failwith ("serve_load: server error: " ^ msg)
      | Wire.Draining -> failwith "serve_load: unexpected Draining"
      | Wire.Ok | Wire.Digest _ | Wire.Stats_reply _ | Wire.Repl_snapshot _
      | Wire.Repl_frames _ | Wire.Repl_fence _ | Wire.Redirect _
      | Wire.Role_reply _ ->
          failwith "serve_load: unexpected response")

let top_up c ~window =
  while List.length c.inflight < window && c.next < Array.length c.actions do
    let i = c.next in
    c.next <- i + 1;
    let p =
      { action = c.actions.(i); rid = c.rids.(i); first_send = Unix.gettimeofday () }
    in
    c.inflight <- c.inflight @ [ p ];
    if not (send_action c p) then reconnect c
  done

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(Int.min (n - 1) (int_of_float (p *. float_of_int n)))

let run ?(smoke = false) ?query_frac () =
  Serve_util.ignore_sigpipe ();
  let nclients = if smoke then 4 else 8 in
  let window = 4 in
  let span = 64 in
  let updates = if smoke then 300 else 13_000 in
  let queries = if smoke then 150 else 5_000 in
  (* --query-frac F reshapes the same total action count into an
     F-queries mixed workload, so read-heavy serve profiles (the oracle
     path) are one flag away *)
  let updates, queries =
    match query_frac with
    | None -> (updates, queries)
    | Some f ->
        let f = Float.max 0.0 (Float.min 0.95 f) in
        let total = updates + queries in
        let q = int_of_float (f *. float_of_int total) in
        (total - q, q)
  in
  let seed = 42 in
  let n = nclients * span in
  let dir = Serve_util.fresh_dir "serve-load" in
  let addr = Wire.Unix_path (Filename.concat (Filename.get_temp_dir_name ())
                               (Printf.sprintf "mspar-load-%d.sock" (Unix.getpid ()))) in
  let cfg = Serve_util.config ~n ~seed in
  let pid =
    Serve_util.fork_server ~sync_every:64 ~snapshot_every:50_000 ~fresh:true
      ~dir ~addr cfg
  in
  let clients =
    Array.init nclients (fun i ->
        let conn = Serve_util.await addr in
        Serve_util.hello conn (i + 1);
        let rng = Rng.create (seed + (1000 * (i + 1))) in
        let actions, rids =
          make_actions rng ~base:(i * span) ~span ~updates ~queries
        in
        {
          id = i + 1;
          addr;
          conn;
          actions;
          rids;
          next = 0;
          inflight = [];
          model = Hashtbl.create 256;
          acked_updates = 0;
          busy_retries = 0;
          reconnects = 0;
          latencies = [];
          query_latencies = [];
        })
  in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun c -> top_up c ~window) clients;
  let live () =
    Array.exists
      (fun c -> c.next < Array.length c.actions || c.inflight <> [])
      clients
  in
  (* one response, then everything already buffered client-side:
     Client.recv parses a single frame per call, and select never fires
     for frames that were read off the wire in an earlier chunk — a
     client whose whole window was answered in one read would otherwise
     starve forever once it has nothing left to send *)
  let drain_buffered c =
    let rec go () =
      match Client.recv ~timeout:0. c.conn with
      | Ok resp ->
          handle_response c resp (Unix.gettimeofday ());
          go ()
      | Error _ -> () (* Need_more: nothing complete in the buffer *)
    in
    go ()
  in
  while live () do
    let waiting =
      Array.to_list clients |> List.filter (fun c -> c.inflight <> [])
    in
    let fds = List.map (fun c -> Client.fd c.conn) waiting in
    (match Unix.select fds [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | rs, _, _ ->
        List.iter
          (fun c ->
            if List.memq (Client.fd c.conn) rs then begin
              match Client.recv ~timeout:5.0 c.conn with
              | Ok resp ->
                  handle_response c resp (Unix.gettimeofday ());
                  drain_buffered c
              | Error _ -> reconnect c
            end)
          waiting);
    Array.iter (fun c -> top_up c ~window) clients
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  (* zero acknowledged-update loss, literally: the server's answer for
     every touched edge equals the client's acked model *)
  let lost = ref 0 in
  Array.iter
    (fun c ->
      Hashtbl.iter
        (fun (u, v) expected ->
          match Client.request c.conn (Wire.Query_edge (u, v)) with
          | Ok (Wire.Bool got) -> if not (Bool.equal got expected) then incr lost
          | Ok _ | Error _ -> incr lost)
        c.model)
    clients;
  assert (!lost = 0);
  Array.iter (fun c -> Client.close c.conn) clients;
  let status = Serve_util.stop_server pid in
  assert (match status with Unix.WEXITED 0 -> true | _ -> false);
  let lats =
    Array.to_list clients |> List.concat_map (fun c -> c.latencies)
    |> Array.of_list
  in
  Array.sort Float.compare lats;
  let qlats =
    Array.to_list clients
    |> List.concat_map (fun c -> c.query_latencies)
    |> Array.of_list
  in
  Array.sort Float.compare qlats;
  let total_updates =
    Array.fold_left (fun a c -> a + c.acked_updates) 0 clients
  in
  let total_queries = nclients * queries in
  let busy = Array.fold_left (fun a c -> a + c.busy_retries) 0 clients in
  let reconnects = Array.fold_left (fun a c -> a + c.reconnects) 0 clients in
  let t =
    Table.create
      ~title:
        "serve-load (N concurrent connections against mspar serve; \
         update and point-query latencies split, zero acked-update loss \
         asserted)"
      ~columns:
        [
          "clients"; "window"; "updates"; "queries"; "busy"; "reconnects";
          "elapsed-s"; "updates/s"; "p50-ms"; "p99-ms"; "q-p50-ms";
          "q-p99-ms"; "lost-acked";
        ]
  in
  Table.add_row t
    [
      Table.cell_i nclients;
      Table.cell_i window;
      Table.cell_i total_updates;
      Table.cell_i total_queries;
      Table.cell_i busy;
      Table.cell_i reconnects;
      Table.cell_f elapsed;
      Table.cell_f (float_of_int total_updates /. elapsed);
      Table.cell_f (1000. *. percentile lats 0.50);
      Table.cell_f (1000. *. percentile lats 0.99);
      Table.cell_f (1000. *. percentile qlats 0.50);
      Table.cell_f (1000. *. percentile qlats 0.99);
      Table.cell_i !lost;
    ];
  Experiments.emit t

let smoke ?query_frac () = run ~smoke:true ?query_frac ()
