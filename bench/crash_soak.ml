(* Crash–recover–verify soak for the durable dynamic pipeline.

   Each trial is one seeded crash point: run a journaled pipeline for a
   random prefix of a fixed op sequence, kill it, damage the on-disk
   state the way a real crash would (torn partial record at the tail,
   truncated tail, a flipped byte corrupting a record CRC, a damaged
   snapshot blob, or a clean kill between ops), then recover and verify:

     - [Durable.recover] never raises;
     - it never replays a corrupt suffix (the recovered op count is a
       valid prefix of the sequence — checked by extension, below);
     - the recovered state passes the full audit;
     - *extension equivalence*: applying the ops the journal did not
       retain on top of the recovered state reproduces the uncrashed
       run's final graph, sparsifier edge set and matching size
       bit-for-bit (the journal runs with sync_every = 1, so every
       acknowledged op is durable).

   A separate leg injects silent sparsifier corruption and checks the
   audit detects it, repairs it, and counts the repair in stats.

   The corruption plan mirrors the seeded Faults style of PR 2: one Rng
   drives every trial, so any failure reproduces from the seed. *)

open Mspar_prelude
open Mspar_dynamic

(* ---------------------------------------------------------------- *)
(* raw file surgery (bench code is outside the MSP009 funnel)        *)
(* ---------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let append_garbage rng path k =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  for _ = 1 to k do
    output_char oc (Char.chr (Rng.int rng 256))
  done;
  close_out oc

let truncate_file path keep =
  let s = read_file path in
  write_file path (String.sub s 0 (min keep (String.length s)))

let flip_byte rng path pos =
  let s = Bytes.of_string (read_file path) in
  if pos < Bytes.length s then begin
    let b = Char.code (Bytes.get s pos) in
    Bytes.set s pos (Char.chr (b lxor (1 + Rng.int rng 255)));
    write_file path (Bytes.to_string s)
  end

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mspar-crash-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  if Sys.file_exists d then remove_tree d;
  d

(* ---------------------------------------------------------------- *)
(* op sequences and observables                                      *)
(* ---------------------------------------------------------------- *)

type op = Ins of int * int | Del of int * int

(* Mixed churn with a bias to insertion so the graph stays non-trivial;
   deletions target edges that are likely present (drawn from the same
   vertex range), and duplicate inserts / phantom deletes are kept on
   purpose — no-ops must journal and replay like everything else. *)
let make_ops rng ~n ~count =
  Array.init count (fun _ ->
      let u = Rng.int rng n and v = Rng.int rng n in
      let u, v = if u = v then (u, (v + 1) mod n) else (u, v) in
      if Rng.int rng 10 < 7 then Ins (u, v) else Del (u, v))

let apply_op d = function
  | Ins (u, v) -> ignore (Durable.insert d u v)
  | Del (u, v) -> ignore (Durable.delete d u v)

type observed = {
  graph_edges : (int * int) list;
  gdelta_edges : (int * int) list;
  matching_size : int;
}

let observe d =
  let sp = Durable.sparsifier d in
  let dm = Durable.matching d in
  let ge = Dyn_graph.edges (Dyn_matching.graph dm) in
  let ge_sp = Dyn_graph.edges (Dyn_sparsifier.graph sp) in
  if ge <> ge_sp then failwith "sparsifier and matcher graphs diverged";
  {
    graph_edges = ge;
    gdelta_edges =
      Array.to_list (Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier sp));
    matching_size = Dyn_matching.size dm;
  }

let config ~n ~seed =
  {
    Durable.n;
    delta = 6;
    beta = 4;
    eps = 0.3;
    multiplier = 2.0;
    seed;
  }

let cadence = (Some 25, Some 40) (* snapshot_every, audit_every *)

let run_all ~dir ~n ~seed ops =
  let snapshot_every, audit_every = cadence in
  let d =
    Durable.create ~sync_every:1 ?snapshot_every ?audit_every ~dir
      (config ~n ~seed)
  in
  Array.iter (apply_op d) ops;
  let out = observe d in
  Durable.close d;
  out

(* ---------------------------------------------------------------- *)
(* one crash trial                                                   *)
(* ---------------------------------------------------------------- *)

type verdict = { mode : string; recovered_ops : int }

let newest_snapshot dir =
  Sys.readdir dir
  |> Array.to_list
  |> List.filter (fun f -> String.length f > 5 && String.sub f 0 5 = "snap-")
  |> List.sort (fun a b -> String.compare b a)
  |> function
  | [] -> None
  | f :: _ -> Some (Filename.concat dir f)

let crash_trial rng ~n ~seed ~reference ops =
  let snapshot_every, audit_every = cadence in
  let dir = fresh_dir () in
  let k = 1 + Rng.int rng (Array.length ops) in
  let d =
    Durable.create ~sync_every:1 ?snapshot_every ?audit_every ~dir
      (config ~n ~seed)
  in
  Array.iter (apply_op d) (Array.sub ops 0 k);
  Durable.close d;
  let journal = Filename.concat dir "journal.wal" in
  let size = String.length (read_file journal) in
  (* seeded damage: which way did this crash tear the disk? *)
  let mode =
    match Rng.int rng 5 with
    | 0 ->
        append_garbage rng journal (1 + Rng.int rng 24);
        "torn-partial-record"
    | 1 when size > 12 ->
        truncate_file journal (size - (1 + Rng.int rng (min 10 (size - 10))));
        "truncated-tail"
    | 2 when size > 48 ->
        (* flip a byte in the op region: corrupts one record's CRC and
           invalidates everything after it, but never the header/config *)
        flip_byte rng journal (40 + Rng.int rng (size - 40));
        "corrupted-crc"
    | 3 -> (
        match newest_snapshot dir with
        | Some blob ->
            let bsize = String.length (read_file blob) in
            flip_byte rng blob (Rng.int rng bsize);
            "corrupted-snapshot"
        | None -> "clean-kill")
    | _ -> "clean-kill"
  in
  (match
     Durable.recover ~sync_every:1 ?snapshot_every ?audit_every dir
   with
  | exception e ->
      failwith
        (Printf.sprintf "[%s] recover raised: %s" mode (Printexc.to_string e))
  | Error msg -> failwith (Printf.sprintf "[%s] recover failed: %s" mode msg)
  | Ok d ->
      let c = Durable.op_count d in
      if c > k then
        failwith
          (Printf.sprintf "[%s] recovered %d ops from a %d-op run" mode c k);
      (* the recovered state must already be healthy... *)
      let failures = Durable.audit_now d in
      if failures <> [] then
        failwith
          (Printf.sprintf "[%s] recovered state fails audit: %s" mode
             (String.concat "; " failures));
      if (Durable.stats d).Durable.repairs > 0 then
        failwith
          (Printf.sprintf "[%s] audit repaired a state that replay built" mode);
      (* ...and extending it with the ops the journal did not retain must
         land exactly on the uncrashed run (bit-for-bit replay: same
         graph, same sparsifier marks, same matching size) *)
      Array.iter (apply_op d) (Array.sub ops c (Array.length ops - c));
      let out = observe d in
      Durable.close d;
      if out.graph_edges <> reference.graph_edges then
        failwith (Printf.sprintf "[%s] graph diverged after recovery" mode);
      if out.gdelta_edges <> reference.gdelta_edges then
        failwith (Printf.sprintf "[%s] sparsifier diverged after recovery" mode);
      if out.matching_size <> reference.matching_size then
        failwith
          (Printf.sprintf "[%s] matching size diverged: %d vs %d" mode
             out.matching_size reference.matching_size);
      remove_tree dir;
      { mode; recovered_ops = c })

(* ---------------------------------------------------------------- *)
(* silent-corruption / repair leg                                    *)
(* ---------------------------------------------------------------- *)

let repair_trial ~n ~seed ops =
  let dir = fresh_dir () in
  let d = Durable.create ~sync_every:1 ~dir (config ~n ~seed) in
  Array.iter (apply_op d) ops;
  Dyn_sparsifier.inject_corruption (Durable.sparsifier d);
  let failures = Durable.audit_now d in
  if failures = [] then failwith "injected corruption escaped the audit";
  let s = Durable.stats d in
  if s.Durable.repairs < 1 then failwith "repair was not counted in stats";
  if s.Durable.audit_failures < 1 then
    failwith "audit failure was not counted in stats";
  let after = Audit.sparsifier (Durable.sparsifier d) in
  if after <> [] then
    failwith
      (Printf.sprintf "repair left the sparsifier unhealthy: %s"
         (String.concat "; " after));
  Durable.close d;
  remove_tree dir

(* ---------------------------------------------------------------- *)
(* entry points                                                      *)
(* ---------------------------------------------------------------- *)

let soak ~trials ~n ~ops_count ~seed =
  let rng = Rng.create seed in
  let ops = make_ops (Rng.create (seed + 1)) ~n ~count:ops_count in
  let ref_dir = fresh_dir () in
  let reference = run_all ~dir:ref_dir ~n ~seed ops in
  remove_tree ref_dir;
  let by_mode = Hashtbl.create 8 in
  for _ = 1 to trials do
    let v = crash_trial rng ~n ~seed ~reference ops in
    Hashtbl.replace by_mode v.mode
      (1 + Option.value ~default:0 (Hashtbl.find_opt by_mode v.mode))
  done;
  repair_trial ~n ~seed ops;
  by_mode

let print_summary ~trials by_mode =
  Printf.printf "crash-soak: %d crash points, all recovered and verified\n"
    trials;
  Hashtbl.fold (fun m c acc -> (m, c) :: acc) by_mode []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (m, c) -> Printf.printf "  %-20s %4d\n" m c);
  Printf.printf "  repair-leg           pass\n%!"

(* The asserted `dune runtest` hook: ≥ 200 seeded crash points on a tiny
   instance, plus the repair leg.  Any verification failure raises and
   fails the build. *)
let smoke () =
  let trials = 210 in
  let by_mode = soak ~trials ~n:24 ~ops_count:120 ~seed:42 in
  print_summary ~trials by_mode

(* The full bench entry: a larger instance and more crash points. *)
let run () =
  let trials = 400 in
  let by_mode = soak ~trials ~n:64 ~ops_count:400 ~seed:7 in
  print_summary ~trials by_mode
