(* .msgr container smoke: save a graph to the packed binary container,
   reopen it via mmap, and assert that the open cost is governed by the
   header + offsets lane — not the adjacency payload.  Two containers
   with the same vertex count but a 16x different edge count must open
   in roughly the same time; that is exactly the "no eager adjacency
   reads" contract of [Graph_io.load_mmap] (the offsets lane is
   validated eagerly, but it is the same size in both files).

   `msgr-smoke` (the `make bench-smoke` target) runs a ~1M-edge graph;
   `msgr-smoke-small` is the same legs at runtest size, wired into
   `dune runtest` and hence `make ci`. *)

open Mspar_prelude
open Mspar_graph

let best_of ~repeats f =
  let best = ref Int64.max_int in
  for _ = 1 to repeats do
    let _, ns = Clock.time_ns f in
    if ns < !best then best := ns
  done;
  !best

let with_tmp suffix f =
  let path = Filename.temp_file "mspar-bench" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let run ~full () =
  let n, m_big, repeats =
    if full then (60_000, 1_000_000, 5) else (4_000, 48_000, 3)
  in
  let m_small = m_big / 16 in
  let rng = Rng.create 20200715 in
  let big = Gen.gnm rng ~n ~m:m_big in
  let small = Gen.gnm rng ~n ~m:m_small in
  with_tmp ".msgr" (fun big_path ->
      with_tmp ".msgr" (fun small_path ->
          with_tmp ".txt" (fun text_path ->
              Graph_io.save_packed big_path big;
              Graph_io.save_packed small_path small;
              Graph_io.save text_path big;
              (* correctness first: the mmap view is the graph we saved *)
              let reopened = Graph_io.load_mmap_exn big_path in
              if not (Int64.equal (Graph.checksum reopened) (Graph.checksum big))
              then failwith "msgr-smoke: mmap reopen changed the checksum";
              (match Graph.audit reopened with
              | [] -> ()
              | e :: _ -> failwith ("msgr-smoke: audit on mmap view: " ^ e));
              let time name f = (name, best_of ~repeats f) in
              let rows =
                [
                  time "graph-load/text-parse/m-big" (fun () ->
                      Sys.opaque_identity (Graph_io.load_exn text_path));
                  time "graph-load/msgr-materialize/m-big" (fun () ->
                      Sys.opaque_identity (Graph_io.load_packed_exn big_path));
                  time "graph-load/msgr-mmap-verify/m-big" (fun () ->
                      Sys.opaque_identity
                        (Graph_io.load_mmap_exn ~verify:true big_path));
                  time "graph-load/msgr-mmap/m-big" (fun () ->
                      Sys.opaque_identity (Graph_io.load_mmap_exn big_path));
                  time "graph-load/msgr-mmap/m-small" (fun () ->
                      Sys.opaque_identity (Graph_io.load_mmap_exn small_path));
                ]
              in
              let t =
                Table.create
                  ~title:
                    (Printf.sprintf
                       "graph-load (n=%d; m=%d vs m=%d; %s sizes)" n m_big
                       m_small
                       (if full then "full" else "smoke"))
                  ~columns:[ "kernel"; "ns/run"; "cores" ]
              in
              List.iter
                (fun (name, ns) ->
                  Table.add_row t [ name; Int64.to_string ns; "1" ])
                rows;
              Experiments.emit t;
              (* the O(1)-ish gate: 16x the adjacency payload must not cost
                 anywhere near 16x the open.  Generous 4x ratio plus 10ms
                 absolute slack so a loaded CI box cannot flake it. *)
              let t_big = List.assoc "graph-load/msgr-mmap/m-big" rows in
              let t_small = List.assoc "graph-load/msgr-mmap/m-small" rows in
              if
                Int64.to_float t_big
                > (4.0 *. Int64.to_float t_small) +. 10_000_000.0
              then
                failwith
                  (Printf.sprintf
                     "msgr-smoke: load_mmap cost scales with the adjacency \
                      payload (%Ld ns for m=%d vs %Ld ns for m=%d)"
                     t_big m_big t_small m_small))))
