(* Soak runner: larger-than-unit-test instances with invariant checks.

   Not part of `dune runtest` (it takes a minute); run explicitly with

     dune exec bench/soak.exe

   Each stage prints PASS/FAIL and the process exits non-zero on any
   failure, so this can serve as a heavyweight CI job. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching

let failures = ref 0

let stage name f =
  let t0 = Clock.now_ns () in
  let ok = try f () with e -> (Printf.printf "  exception: %s\n" (Printexc.to_string e); false) in
  let ms = Clock.ns_to_ms (Int64.sub (Clock.now_ns ()) t0) in
  Printf.printf "%-46s %s  (%.0f ms)\n%!" name (if ok then "PASS" else "FAIL") ms;
  if not ok then incr failures

let () =
  Printf.printf "mspar soak run\n%!";

  stage "sequential pipeline, K_3000 (m = 4.5M)" (fun () ->
      let g = Gen.complete 3000 in
      let r =
        Mspar_core.Pipeline.run ~multiplier:0.5 (Rng.create 1) g ~beta:1
          ~eps:0.5
      in
      (* ratio within 1.05 — far inside the (1+eps)^2 guarantee *)
      Matching.is_valid g r.Mspar_core.Pipeline.matching
      && 100 * Matching.size r.Mspar_core.Pipeline.matching >= 95 * 1500
      && Mspar_core.Pipeline.sublinearity_ratio r < 0.02);

  stage "sequential pipeline, unit disk n=5000" (fun () ->
      let g, _ = Unit_disk.random (Rng.create 2) ~n:5000 ~radius:0.06 in
      let r =
        Mspar_core.Pipeline.run ~multiplier:0.5 (Rng.create 3) g ~beta:5
          ~eps:0.5
      in
      let opt = Matching.size (Blossom.solve g) in
      let got = Matching.size r.Mspar_core.Pipeline.matching in
      Matching.is_valid g r.Mspar_core.Pipeline.matching
      && float_of_int opt <= 2.25 *. float_of_int got);

  stage "exact blossom, line graph ~3k vertices" (fun () ->
      let lg = Line_graph.random_base (Rng.create 4) ~base_n:120 ~p:0.45 in
      let m = Blossom.solve lg in
      let a = Blossom.tutte_berge_witness lg m in
      Matching.is_valid lg m
      && Blossom.deficiency_formula lg ~a
         = Graph.n lg - (2 * Matching.size m));

  stage "dynamic matcher, 30k churn updates" (fun () ->
      let n = 300 in
      let rng = Rng.create 5 in
      let dm =
        Mspar_dynamic.Dyn_matching.create ~multiplier:0.5 (Rng.split rng) ~n
          ~beta:3 ~eps:0.5
      in
      let ok = ref true in
      for step = 1 to 30_000 do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then
          if Rng.bernoulli rng 0.35 then
            ignore (Mspar_dynamic.Dyn_matching.delete dm u v)
          else ignore (Mspar_dynamic.Dyn_matching.insert dm u v);
        if step mod 2_000 = 0 then begin
          let g = Mspar_dynamic.Dyn_graph.snapshot (Mspar_dynamic.Dyn_matching.graph dm) in
          if not (Matching.is_valid g (Mspar_dynamic.Dyn_matching.matching dm))
          then ok := false
        end
      done;
      !ok);

  stage "oblivious dynamic sparsifier, 20k updates" (fun () ->
      let rng = Rng.create 6 in
      let ds = Mspar_dynamic.Dyn_sparsifier.create (Rng.split rng) ~n:400 ~delta:6 in
      for _ = 1 to 20_000 do
        let u = Rng.int rng 400 and v = Rng.int rng 400 in
        if u <> v then
          if Rng.bool rng then ignore (Mspar_dynamic.Dyn_sparsifier.insert ds u v)
          else ignore (Mspar_dynamic.Dyn_sparsifier.delete ds u v)
      done;
      Mspar_dynamic.Dyn_sparsifier.check_invariants ds
      && (Mspar_dynamic.Dyn_sparsifier.stats ds).Mspar_dynamic.Dyn_sparsifier.max_update_work
         <= 25);

  stage "distributed pipeline, 4 cliques n=2000" (fun () ->
      let g = Gen.disjoint_cliques (Rng.create 7) ~n:2000 ~k:4 in
      let r =
        Mspar_distsim.Pipeline_dist.run_maximal_only ~multiplier:0.5
          (Rng.create 8) g ~beta:1 ~eps:0.5
      in
      Matching.is_valid g r.Mspar_distsim.Pipeline_dist.matching
      && r.Mspar_distsim.Pipeline_dist.messages < Graph.m g);

  stage "streaming sketch, 1M-edge stream" (fun () ->
      let g = Gen.complete 1500 in
      let edges = Graph.edges g in
      Rng.shuffle_in_place (Rng.create 9) edges;
      let s, `Stored peak, `Stream_len len =
        Mspar_stream.Stream_sparsifier.run (Rng.create 10) ~n:1500 ~delta:8
          edges
      in
      len = Graph.m g
      && peak <= 1500 * 8
      && Matching.size (Blossom.solve s) = 750);

  stage "MPC, 32 machines on K_1000" (fun () ->
      let g = Gen.complete 1000 in
      let cfg = { Mspar_mpc.Mpc.machines = 32; capacity = 100_000 } in
      let r = Mspar_mpc.Mpc_matching.run (Rng.create 11) cfg g ~beta:1 ~eps:0.5 in
      Matching.is_valid g r.Mspar_mpc.Mpc_matching.matching
      && r.Mspar_mpc.Mpc_matching.rounds = 2
      && Matching.size r.Mspar_mpc.Mpc_matching.matching = 500);

  stage "parallel construction equals sequential, K_1200" (fun () ->
      let g = Gen.complete 1200 in
      let a = Mspar_parallel.Par_gdelta.sparsify ~num_domains:4 ~seed:12 g ~delta:6 in
      let b = Mspar_parallel.Par_gdelta.sequential ~seed:12 g ~delta:6 in
      Graph.equal a b);

  if !failures = 0 then Printf.printf "soak: all stages passed\n"
  else begin
    Printf.printf "soak: %d stage(s) FAILED\n" !failures;
    exit 1
  end
