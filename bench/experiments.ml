(* The experiment harness: one table per claim of the paper.

   The paper is a theory paper with no empirical section, so each experiment
   regenerates the quantitative content of one theorem / lemma /
   observation; EXPERIMENTS.md records the paper-claim vs the measured
   outcome.  Every experiment is deterministic given the seed below. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core
open Mspar_distsim
open Mspar_dynamic

let seed = 20200715 (* SPAA'20 started July 15, 2020 *)

(* optional CSV sink: when [csv_dir] is set, every printed table is also
   written to <dir>/<experiment-id>.csv *)
let csv_dir : string option ref = ref None

let emit t =
  Table.print t;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let title = Table.title t in
      let first_token =
        match String.index_opt title ' ' with
        | Some i -> String.sub title 0 i
        | None -> title
      in
      let slug =
        String.to_seq first_token
        |> Seq.filter (fun c ->
               (c >= 'a' && c <= 'z')
               || (c >= 'A' && c <= 'Z')
               || (c >= '0' && c <= '9')
               || c = '-' || c = '_')
        |> String.of_seq
      in
      let path = Filename.concat dir (slug ^ ".csv") in
      let oc = open_out path in
      output_string oc (Table.to_csv t);
      close_out oc

(* ------------------------------------------------------------------ *)
(* Shared instance zoo                                                *)
(* ------------------------------------------------------------------ *)

type family = {
  name : string;
  graph : Graph.t;
  beta : int; (* known upper bound for the family *)
}

let families rng =
  [
    { name = "complete K300"; graph = Gen.complete 300; beta = 1 };
    {
      name = "line graph";
      graph = Line_graph.random_base rng ~base_n:60 ~p:0.35;
      beta = 2;
    };
    {
      name = "unit disk";
      graph = fst (Unit_disk.random rng ~n:500 ~radius:0.15);
      beta = 5;
    };
    {
      name = "diversity-2";
      graph = Gen.bounded_diversity rng ~n:400 ~cliques:40 ~memberships:2;
      beta = 2;
    };
    {
      name = "4 cliques";
      graph = Gen.disjoint_cliques rng ~n:300 ~k:4;
      beta = 1;
    };
    {
      name = "proper interval";
      graph = Geometric.proper_interval rng ~n:300 ~span:12.0;
      beta = 2;
    };
    {
      name = "quasi unit disk";
      graph = Geometric.quasi_unit_disk rng ~n:300 ~radius:0.25 ~inner:0.7;
      beta = 8;
    };
    {
      name = "disk graph";
      graph = Geometric.disk_graph rng ~n:300 ~rmin:0.06 ~rmax:0.12;
      beta = 8;
    };
  ]

let mcm_of g = Matching.size (Blossom.solve g)

(* ------------------------------------------------------------------ *)
(* E1 - Theorem 2.1: G_delta is a (1+eps)-sparsifier whp              *)
(* ------------------------------------------------------------------ *)

let e1_approximation () =
  let rng = Rng.create seed in
  let t =
    Table.create ~title:"E1 (Thm 2.1): approximation ratio of G_delta"
      ~columns:
        [ "family"; "n"; "m"; "beta"; "eps"; "delta"; "s-edges"; "ratio"; "<=1+eps" ]
  in
  let fams = families rng in
  List.iter
    (fun { name; graph = g; beta } ->
      let opt = mcm_of g in
      List.iter
        (fun eps ->
          let delta = Delta_param.scaled ~multiplier:1.0 ~beta ~eps in
          (* average over trials; the claim is whp so we report the worst *)
          let worst = ref 1.0 and edges = ref 0 in
          for _ = 1 to 3 do
            let s, st = Gdelta.sparsify rng g ~delta in
            edges := st.Gdelta.edges;
            let os = Matching.size (Blossom.solve s) in
            let r = Properties.approximation_ratio ~mcm_g:opt ~mcm_sparsifier:os in
            if r > !worst then worst := r
          done;
          Table.add_row t
            [
              name;
              Table.cell_i (Graph.n g);
              Table.cell_i (Graph.m g);
              Table.cell_i beta;
              Table.cell_f eps;
              Table.cell_i delta;
              Table.cell_i !edges;
              Printf.sprintf "%.4f" !worst;
              Table.cell_b (!worst <= 1.0 +. eps);
            ])
        [ 0.5; 0.2 ];
      Table.add_rule t)
    fams;
  emit t

(* ------------------------------------------------------------------ *)
(* E2 - Obs 2.10: |E(G_delta)| <= 2 MCM (delta + beta)                *)
(* ------------------------------------------------------------------ *)

let e2_size () =
  let rng = Rng.create (seed + 1) in
  let t =
    Table.create ~title:"E2 (Obs 2.10): sparsifier size vs bound"
      ~columns:[ "family"; "delta"; "edges"; "4*MCM*(d+b)"; "naive 2n*d"; "ok" ]
  in
  let fams = families rng in
  List.iter
    (fun { name; graph = g; beta } ->
      let opt = mcm_of g in
      List.iter
        (fun delta ->
          let s, _ = Gdelta.sparsify rng g ~delta in
          let bound = 4 * opt * (delta + beta) in
          let naive = 2 * Graph.n g * delta in
          Table.add_row t
            [
              name;
              Table.cell_i delta;
              Table.cell_i (Graph.m s);
              Table.cell_i bound;
              Table.cell_i naive;
              Table.cell_b (Graph.m s <= bound);
            ])
        [ 4; 16 ])
    fams;
  emit t

(* ------------------------------------------------------------------ *)
(* E3 - Obs 2.12: arboricity(G_delta) <= 2 delta                      *)
(* ------------------------------------------------------------------ *)

let e3_arboricity () =
  let rng = Rng.create (seed + 2) in
  let t =
    Table.create ~title:"E3 (Obs 2.12): uniform sparsity of G_delta"
      ~columns:
        [ "family"; "delta"; "density-LB"; "degeneracy"; "bound 4d"; "ok" ]
  in
  List.iter
    (fun { name; graph = g; beta = _ } ->
      List.iter
        (fun delta ->
          let s, _ = Gdelta.sparsify rng g ~delta in
          let dlb = Arboricity.density_lower_bound s in
          let dg = Arboricity.degeneracy s in
          Table.add_row t
            [
              name;
              Table.cell_i delta;
              Table.cell_i dlb;
              Table.cell_i dg;
              Table.cell_i (4 * delta);
              Table.cell_b (dlb <= 4 * delta);
            ])
        [ 4; 16 ])
    (families rng);
  emit t

(* ------------------------------------------------------------------ *)
(* E4 - Lemma 2.13: deterministic marking has ratio ~ n/(2 delta)     *)
(* ------------------------------------------------------------------ *)

let e4_deterministic_fails () =
  let rng = Rng.create (seed + 3) in
  let t =
    Table.create
      ~title:"E4 (Lemma 2.13): deterministic first-k marking vs randomized"
      ~columns:
        [ "n"; "delta"; "MCM(G)"; "det MCM"; "det ratio"; "n/(2d)"; "rand ratio" ]
  in
  List.iter
    (fun n ->
      let delta = 5 in
      let g = Gen.clique_minus_edge ~n ~missing:(n - 1, n - 2) in
      let opt = Matching.size (Blossom.solve g) in
      let det = Matching.size (Blossom.solve (Gdelta.deterministic_first_k g ~delta)) in
      let sr, _ = Gdelta.sparsify rng g ~delta in
      let rand = Matching.size (Blossom.solve sr) in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i delta;
          Table.cell_i opt;
          Table.cell_i det;
          Printf.sprintf "%.2f" (float_of_int opt /. float_of_int (max 1 det));
          Printf.sprintf "%.2f" (float_of_int n /. float_of_int (2 * delta));
          Printf.sprintf "%.3f" (float_of_int opt /. float_of_int (max 1 rand));
        ])
    [ 100; 200; 400 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E5 - Obs 2.14: exact preservation needs delta = Omega(n)           *)
(* ------------------------------------------------------------------ *)

let e5_exactness () =
  let rng = Rng.create (seed + 4) in
  let t =
    Table.create
      ~title:"E5 (Obs 2.14): probability the bridge edge is marked"
      ~columns:[ "n"; "delta"; "trials"; "empirical"; "1-(1-2d/n)^2"; "4d/n" ]
  in
  List.iter
    (fun half ->
      let g, (a, b) = Gen.two_cliques_bridge ~half in
      let n = 2 * half in
      List.iter
        (fun delta ->
          let trials = 300 in
          let hits = ref 0 in
          for _ = 1 to trials do
            let pairs = Gdelta.marked_pairs rng g ~delta in
            if
              List.exists
                (fun (u, v) -> (u = a && v = b) || (u = b && v = a))
                pairs
            then incr hits
          done;
          let freq = float_of_int !hits /. float_of_int trials in
          let q = 1.0 -. (2.0 *. float_of_int delta /. float_of_int n) in
          Table.add_row t
            [
              Table.cell_i n;
              Table.cell_i delta;
              Table.cell_i trials;
              Printf.sprintf "%.3f" freq;
              Printf.sprintf "%.3f" (1.0 -. (q *. q));
              Printf.sprintf "%.3f" (4.0 *. float_of_int delta /. float_of_int n);
            ])
        [ 2; 5; 10 ])
    [ 51; 101 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E6 - Theorem 3.1: sublinear sequential time                        *)
(* ------------------------------------------------------------------ *)

let e6_sequential () =
  let rng = Rng.create (seed + 5) in
  let t =
    Table.create
      ~title:
        "E6 (Thm 3.1): sequential pipeline on K_n (beta=1) - probes vs input"
      ~columns:
        [
          "n"; "2m"; "probes"; "probe%"; "size"; "opt"; "pipe ms"; "greedy ms";
        ]
  in
  List.iter
    (fun n ->
      let g = Gen.complete n in
      let opt = n / 2 in
      let r = Pipeline.run ~multiplier:1.0 rng g ~beta:1 ~eps:0.5 in
      let _, greedy_ns = Clock.time_ns (fun () -> Greedy.maximal g) in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i (2 * Graph.m g);
          Table.cell_i r.Pipeline.probes_on_input;
          Printf.sprintf "%.1f%%" (100.0 *. Pipeline.sublinearity_ratio r);
          Table.cell_i (Matching.size r.Pipeline.matching);
          Table.cell_i opt;
          Printf.sprintf "%.2f"
            (Clock.ns_to_ms (Int64.add r.Pipeline.sparsify_ns r.Pipeline.match_ns));
          Printf.sprintf "%.2f" (Clock.ns_to_ms greedy_ns);
        ])
    [ 200; 400; 800; 1600 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E7 - Theorem 3.2: distributed rounds                               *)
(* ------------------------------------------------------------------ *)

let e7_rounds () =
  let rng = Rng.create (seed + 6) in
  let t =
    Table.create
      ~title:
        "E7 (Thm 3.2): distributed rounds, sparsified pipeline vs n (should be ~flat)"
      ~columns:[ "n"; "m"; "rounds"; "baseline rounds"; "size"; "opt"; "ratio" ]
  in
  List.iter
    (fun n ->
      let g, _ = Unit_disk.random rng ~n ~radius:(0.35 /. sqrt (float_of_int n /. 200.0)) in
      let r =
        Pipeline_dist.run ~multiplier:0.5 ~attempts_per_phase:12 (Rng.split rng)
          g ~beta:5 ~eps:0.5
      in
      let _, base_st = Matching_dist.maximal (Rng.split rng) g in
      let opt = Matching.size (Blossom.solve g) in
      let got = Matching.size r.Pipeline_dist.matching in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i (Graph.m g);
          Table.cell_i r.Pipeline_dist.rounds;
          Table.cell_i base_st.Matching_dist.rounds;
          Table.cell_i got;
          Table.cell_i opt;
          Printf.sprintf "%.3f" (float_of_int opt /. float_of_int (max 1 got));
        ])
    [ 200; 400; 800 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E8 - Theorem 3.3: sublinear message complexity                     *)
(* ------------------------------------------------------------------ *)

let e8_messages () =
  let rng = Rng.create (seed + 7) in
  let t =
    Table.create
      ~title:"E8 (Thm 3.3): messages, sparsified pipeline vs full-graph baseline"
      ~columns:
        [ "n"; "m"; "pipe msgs"; "base msgs"; "pipe/m"; "base/m"; "saving" ]
  in
  List.iter
    (fun n ->
      let g = Gen.disjoint_cliques (Rng.split rng) ~n ~k:4 in
      let r =
        Pipeline_dist.run_maximal_only ~multiplier:0.5 (Rng.split rng) g ~beta:1
          ~eps:0.5
      in
      let _, base_st = Matching_dist.full_graph_baseline (Rng.split rng) g in
      let m = Graph.m g in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i m;
          Table.cell_i r.Pipeline_dist.messages;
          Table.cell_i base_st.Matching_dist.messages;
          Printf.sprintf "%.2f" (float_of_int r.Pipeline_dist.messages /. float_of_int m);
          Printf.sprintf "%.2f"
            (float_of_int base_st.Matching_dist.messages /. float_of_int m);
          Printf.sprintf "%.1fx"
            (float_of_int base_st.Matching_dist.messages
            /. float_of_int (max 1 r.Pipeline_dist.messages));
        ])
    [ 200; 400; 800 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E9 - Theorem 3.5: dynamic worst-case update work                   *)
(* ------------------------------------------------------------------ *)

let e9_dynamic () =
  let t =
    Table.create
      ~title:
        "E9 (Thm 3.5): dynamic update work (clique stream + adaptive churn)"
      ~columns:
        [
          "n"; "updates"; "ours spread"; "ours ratio"; "base worst"; "base ratio";
        ]
  in
  List.iter
    (fun n ->
      let rng = Rng.create (seed + 8) in
      let dm = Dyn_matching.create ~multiplier:0.5 (Rng.split rng) ~n ~beta:1 ~eps:0.5 in
      let bl = Baseline_dynamic.create ~n in
      (* Insert a perfect matching first, then the rest of K_n in random
         order.  The paper assumes the *stream* stays within the bounded-β
         family; a row-by-row clique insertion passes through star-shaped
         intermediates (β ≈ n) whose tiny matchings make every window length
         1.  Seeding the matching keeps |M| = n/2 throughout, which is the
         regime the update-time bound speaks about. *)
      let planted = List.init (n / 2) (fun i -> (2 * i, (2 * i) + 1)) in
      List.iter
        (fun (u, v) ->
          ignore (Dyn_matching.insert dm u v);
          ignore (Baseline_dynamic.insert bl u v))
        planted;
      let rest = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if not (List.mem (u, v) planted) then rest := (u, v) :: !rest
        done
      done;
      let rest = Array.of_list !rest in
      Rng.shuffle_in_place rng rest;
      Array.iter
        (fun (u, v) ->
          ignore (Dyn_matching.insert dm u v);
          ignore (Baseline_dynamic.insert bl u v))
        rest;
      let churn = Rng.create (seed + 9) in
      for _ = 1 to 500 do
        let mate v = Matching.mate (Dyn_matching.matching dm) v in
        match
          Adversary.next_op Adversary.Adaptive_target_matching churn
            (Dyn_matching.graph dm) ~current_mate:mate
        with
        | Some (Adversary.Delete (u, v)) ->
            ignore (Dyn_matching.delete dm u v);
            ignore (Baseline_dynamic.delete bl u v)
        | Some (Adversary.Insert (u, v)) ->
            ignore (Dyn_matching.insert dm u v);
            ignore (Baseline_dynamic.insert bl u v)
        | None -> ()
      done;
      let g = Dyn_graph.snapshot (Dyn_matching.graph dm) in
      let opt = Matching.size (Blossom.solve g) in
      let s = Dyn_matching.stats dm in
      let b = Baseline_dynamic.stats bl in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i s.Dyn_matching.updates;
          Table.cell_i s.Dyn_matching.max_spread_work;
          Printf.sprintf "%.3f"
            (float_of_int opt /. float_of_int (max 1 (Dyn_matching.size dm)));
          Table.cell_i b.Baseline_dynamic.max_update_work;
          Printf.sprintf "%.3f"
            (float_of_int opt /. float_of_int (max 1 (Baseline_dynamic.size bl)));
        ])
    [ 100; 200; 400 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E10 - composed bounded-degree sparsifier                           *)
(* ------------------------------------------------------------------ *)

let e10_composition () =
  let rng = Rng.create (seed + 10) in
  let t =
    Table.create
      ~title:"E10 (sec 3.2): composed sparsifier degree bound and quality"
      ~columns:
        [
          "family"; "delta"; "d-alpha"; "max deg"; "edges"; "ratio"; "<=1+3eps";
        ]
  in
  List.iter
    (fun { name; graph = g; beta } ->
      let eps = 0.5 in
      let r = Compose.run ~multiplier:1.0 rng g ~beta ~eps in
      let opt = mcm_of g in
      let ob = Matching.size (Blossom.solve r.Compose.bounded) in
      let ratio = Properties.approximation_ratio ~mcm_g:opt ~mcm_sparsifier:ob in
      Table.add_row t
        [
          name;
          Table.cell_i r.Compose.delta;
          Table.cell_i r.Compose.delta_alpha;
          Table.cell_i r.Compose.max_degree;
          Table.cell_i (Graph.m r.Compose.bounded);
          Printf.sprintf "%.4f" ratio;
          Table.cell_b (ratio <= 1.0 +. (3.0 *. eps));
        ])
    (families rng);
  emit t

(* ------------------------------------------------------------------ *)
(* E11 - ablations                                                    *)
(* ------------------------------------------------------------------ *)

let e11_ablations () =
  let rng = Rng.create (seed + 11) in
  let g = Line_graph.random_base rng ~base_n:60 ~p:0.35 in
  let beta = 2 and eps = 0.5 in
  let opt = Matching.size (Blossom.solve g) in
  let t =
    Table.create
      ~title:
        "E11a: Delta-multiplier sweep (line graph, eps=0.5) - the proof's 20 is loose"
      ~columns:[ "mult"; "delta"; "s-edges"; "edge%"; "worst ratio (5 trials)" ]
  in
  List.iter
    (fun multiplier ->
      let delta = Delta_param.scaled ~multiplier ~beta ~eps in
      let worst = ref 1.0 and edges = ref 0 in
      for _ = 1 to 5 do
        let s, st = Gdelta.sparsify rng g ~delta in
        edges := st.Gdelta.edges;
        let os = Matching.size (Blossom.solve s) in
        let r = Properties.approximation_ratio ~mcm_g:opt ~mcm_sparsifier:os in
        if r > !worst then worst := r
      done;
      Table.add_row t
        [
          Table.cell_f multiplier;
          Table.cell_i delta;
          Table.cell_i !edges;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int !edges /. float_of_int (Graph.m g));
          Printf.sprintf "%.4f" !worst;
        ])
    [ 0.0625; 0.125; 0.25; 0.5; 1.0; 2.0 ];
  emit t;
  (* marking-rule ablation *)
  let t2 =
    Table.create
      ~title:"E11b: marking rule (mark-all threshold Delta vs 2*Delta)"
      ~columns:[ "rule"; "delta"; "s-edges"; "worst ratio (5 trials)" ]
  in
  List.iter
    (fun (label, rule) ->
      let delta = Delta_param.scaled ~multiplier:0.25 ~beta ~eps in
      let worst = ref 1.0 and edges = ref 0 in
      for _ = 1 to 5 do
        let s, st = Gdelta.sparsify ~rule rng g ~delta in
        edges := st.Gdelta.edges;
        let os = Matching.size (Blossom.solve s) in
        let r = Properties.approximation_ratio ~mcm_g:opt ~mcm_sparsifier:os in
        if r > !worst then worst := r
      done;
      Table.add_row t2
        [
          label;
          Table.cell_i delta;
          Table.cell_i !edges;
          Printf.sprintf "%.4f" !worst;
        ])
    [
      ("<= Delta (sec 2)", Gdelta.Mark_all_at_most_delta);
      ("<= 2*Delta (sec 3.1)", Gdelta.Mark_all_at_most_two_delta);
    ];
  emit t2;
  (* Lemma 2.2 tightness across families *)
  (* walker-attempt ablation: the rounds/quality knob of the distributed
     (1+eps) matcher *)
  let t_walk =
    Table.create
      ~title:"E11d: walker attempts per phase (unit disk n=400, eps=0.5)"
      ~columns:[ "attempts"; "rounds"; "size"; "opt"; "ratio" ]
  in
  let gw, _ = Unit_disk.random rng ~n:400 ~radius:0.12 in
  let optw = mcm_of gw in
  List.iter
    (fun attempts ->
      let m, st =
        Matching_dist.one_plus_eps ~attempts_per_phase:attempts
          (Rng.create (seed + 100 + attempts)) gw ~eps:0.5
      in
      Table.add_row t_walk
        [
          Table.cell_i attempts;
          Table.cell_i st.Matching_dist.rounds;
          Table.cell_i (Matching.size m);
          Table.cell_i optw;
          Printf.sprintf "%.4f"
            (float_of_int optw /. float_of_int (max 1 (Matching.size m)));
        ])
    [ 1; 4; 16; 64 ];
  emit t_walk;
  let t3 =
    Table.create ~title:"E11c (Lemma 2.2): MCM >= n'/(beta+2)"
      ~columns:[ "family"; "n'"; "beta"; "n'/(b+2)"; "MCM"; "ok" ]
  in
  List.iter
    (fun { name; graph = g; beta } ->
      let opt = mcm_of g in
      let non_isolated = ref 0 in
      for v = 0 to Graph.n g - 1 do
        if Graph.degree g v > 0 then incr non_isolated
      done;
      Table.add_row t3
        [
          name;
          Table.cell_i !non_isolated;
          Table.cell_i beta;
          Printf.sprintf "%.1f" (float_of_int !non_isolated /. float_of_int (beta + 2));
          Table.cell_i opt;
          Table.cell_b (opt * (beta + 2) >= !non_isolated);
        ])
    (families rng);
  emit t3

(* ------------------------------------------------------------------ *)
(* E12 - semi-streaming extension                                     *)
(* ------------------------------------------------------------------ *)

let e12_streaming () =
  let t =
    Table.create
      ~title:
        "E12 (sec 3 extension): one-pass semi-streaming G_delta (K_n, beta=1, eps=0.5)"
      ~columns:
        [ "n"; "stream m"; "peak mem"; "mem/m"; "n*2delta"; "size"; "opt" ]
  in
  List.iter
    (fun n ->
      let rng = Rng.create (seed + 12) in
      let g = Gen.complete n in
      let edges = Graph.edges g in
      Rng.shuffle_in_place rng edges;
      let delta = Delta_param.scaled ~multiplier:1.0 ~beta:1 ~eps:0.5 in
      let s, `Stored peak, `Stream_len len =
        Mspar_stream.Stream_sparsifier.run rng ~n ~delta edges
      in
      let got = Matching.size (Blossom.solve s) in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i len;
          Table.cell_i peak;
          Printf.sprintf "%.3f" (float_of_int peak /. float_of_int len);
          Table.cell_i (n * 2 * delta);
          Table.cell_i got;
          Table.cell_i (n / 2);
        ])
    [ 200; 400; 800 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E13 - MPC: constant rounds, per-machine memory n*Delta not m       *)
(* ------------------------------------------------------------------ *)

let e13_mpc () =
  let t =
    Table.create
      ~title:
        "E13 (sec 3 extension): MPC matching - coordinator memory vs m (K_n, 16 machines)"
      ~columns:
        [ "n"; "m"; "rounds"; "max load"; "load/m"; "baseline load"; "size"; "opt" ]
  in
  List.iter
    (fun n ->
      let rng = Rng.create (seed + 13) in
      let g = Gen.complete n in
      let cfg = { Mspar_mpc.Mpc.machines = 16; capacity = max_int } in
      let r = Mspar_mpc.Mpc_matching.run rng cfg g ~beta:1 ~eps:0.5 in
      let base = Mspar_mpc.Mpc_matching.baseline_gather cfg g in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i (Graph.m g);
          Table.cell_i r.Mspar_mpc.Mpc_matching.rounds;
          Table.cell_i r.Mspar_mpc.Mpc_matching.max_load;
          Printf.sprintf "%.3f"
            (float_of_int r.Mspar_mpc.Mpc_matching.max_load
            /. float_of_int (Graph.m g));
          Table.cell_i base;
          Table.cell_i (Matching.size r.Mspar_mpc.Mpc_matching.matching);
          Table.cell_i (n / 2);
        ])
    [ 200; 400; 800 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E14 - oblivious dynamic sparsifier: O(Delta) worst-case updates     *)
(* ------------------------------------------------------------------ *)

let e14_oblivious_dynamic () =
  let t =
    Table.create
      ~title:
        "E14 (sec 3.3 oblivious case): dynamic G_delta maintenance, O(Delta) updates"
      ~columns:
        [ "n"; "delta"; "updates"; "worst work"; "bound 4d+1"; "snapshot ratio" ]
  in
  List.iter
    (fun n ->
      let delta = 8 in
      let rng = Rng.create (seed + 14) in
      let ds = Mspar_dynamic.Dyn_sparsifier.create (Rng.split rng) ~n ~delta in
      (* oblivious random churn: the adversary fixes the sequence without
         looking at the algorithm's state *)
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          ignore (Mspar_dynamic.Dyn_sparsifier.insert ds u v)
        done
      done;
      for _ = 1 to 500 do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then
          if Rng.bernoulli rng 0.5 then
            ignore (Mspar_dynamic.Dyn_sparsifier.delete ds u v)
          else ignore (Mspar_dynamic.Dyn_sparsifier.insert ds u v)
      done;
      let s = Mspar_dynamic.Dyn_sparsifier.sparsifier ds in
      let g = Mspar_dynamic.Dyn_graph.snapshot (Mspar_dynamic.Dyn_sparsifier.graph ds) in
      let opt = mcm_of g in
      let os = mcm_of s in
      let st = Mspar_dynamic.Dyn_sparsifier.stats ds in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i delta;
          Table.cell_i st.Mspar_dynamic.Dyn_sparsifier.updates;
          Table.cell_i st.Mspar_dynamic.Dyn_sparsifier.max_update_work;
          Table.cell_i ((4 * delta) + 1);
          Printf.sprintf "%.4f"
            (Properties.approximation_ratio ~mcm_g:opt ~mcm_sparsifier:os);
        ])
    [ 100; 200; 400 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E15 - Barenboim-Oren comparison: deterministic (2+eps) vs our (1+eps) *)
(* ------------------------------------------------------------------ *)

let e15_deterministic_distributed () =
  let t =
    Table.create
      ~title:
        "E15 (remark after Thm 3.2): deterministic maximal (2+eps, Barenboim-Oren style) vs randomized walkers (1+eps)"
      ~columns:
        [
          "n"; "det rounds"; "det ratio"; "walk rounds"; "walk ratio";
          "color rounds (log*)";
        ]
  in
  List.iter
    (fun n ->
      let rng = Rng.create (seed + 15) in
      let g, _ =
        Unit_disk.random rng ~n ~radius:(0.35 /. sqrt (float_of_int n /. 200.0))
      in
      let opt = mcm_of g in
      (* both matchers run on the same composed bounded-degree sparsifier *)
      let sparsifier, _ =
        Sparsify_dist.composed (Rng.split rng) g ~beta:5 ~eps:0.5
          ~multiplier:0.5 ()
      in
      let det_m, det_st = Det_matching.maximal sparsifier in
      let walk_m, walk_st =
        Matching_dist.one_plus_eps ~attempts_per_phase:12 (Rng.split rng)
          sparsifier ~eps:0.5
      in
      let ratio m = float_of_int opt /. float_of_int (max 1 (Matching.size m)) in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i det_st.Det_matching.rounds;
          Printf.sprintf "%.3f" (ratio det_m);
          Table.cell_i walk_st.Matching_dist.rounds;
          Printf.sprintf "%.3f" (ratio walk_m);
          Table.cell_i det_st.Det_matching.coloring_rounds;
        ])
    [ 200; 400; 800 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E16 - tightness: cost scales linearly with beta (lower bound side)  *)
(* ------------------------------------------------------------------ *)

let e16_beta_scaling () =
  let t =
    Table.create
      ~title:
        "E16 (lower bound of [5,8]): pipeline probes scale linearly in beta (n fixed)"
      ~columns:
        [ "beta"; "delta"; "probes"; "probes/beta"; "2m"; "ratio" ]
  in
  let n = 420 in
  List.iter
    (fun beta ->
      let rng = Rng.create (seed + 16) in
      let g = Gen.bounded_diversity rng ~n ~cliques:30 ~memberships:beta in
      let opt = mcm_of g in
      let r = Pipeline.run ~multiplier:0.5 (Rng.split rng) g ~beta ~eps:0.5 in
      Table.add_row t
        [
          Table.cell_i beta;
          Table.cell_i r.Pipeline.delta;
          Table.cell_i r.Pipeline.probes_on_input;
          Table.cell_i (r.Pipeline.probes_on_input / beta);
          Table.cell_i (2 * Graph.m g);
          Printf.sprintf "%.3f"
            (float_of_int opt
            /. float_of_int (max 1 (Matching.size r.Pipeline.matching)));
        ])
    [ 1; 2; 4; 8 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E17 - regime map: where the sparsifier wins                         *)
(* ------------------------------------------------------------------ *)

let e17_regime () =
  let t =
    Table.create
      ~title:
        "E17 (regime, sec 1.2): density sweep at n=700 unit-disk - crossover where probes << input"
      ~columns:
        [
          "radius"; "m"; "avg deg"; "probe%"; "pipe ms"; "greedy ms"; "exact ms";
          "ratio";
        ]
  in
  let n = 700 in
  List.iter
    (fun radius ->
      let rng = Rng.create (seed + 17) in
      let g, _ = Unit_disk.random rng ~n ~radius in
      let opt, exact_ns = Clock.time_ns (fun () -> Blossom.solve g) in
      let opt = Matching.size opt in
      let _, greedy_ns = Clock.time_ns (fun () -> Greedy.maximal g) in
      let r = Pipeline.run ~multiplier:0.25 (Rng.split rng) g ~beta:5 ~eps:0.5 in
      Table.add_row t
        [
          Printf.sprintf "%.2f" radius;
          Table.cell_i (Graph.m g);
          Printf.sprintf "%.0f" (float_of_int (2 * Graph.m g) /. float_of_int n);
          Printf.sprintf "%.1f%%" (100.0 *. Pipeline.sublinearity_ratio r);
          Printf.sprintf "%.2f"
            (Clock.ns_to_ms (Int64.add r.Pipeline.sparsify_ns r.Pipeline.match_ns));
          Printf.sprintf "%.2f" (Clock.ns_to_ms greedy_ns);
          Printf.sprintf "%.2f" (Clock.ns_to_ms exact_ns);
          Printf.sprintf "%.3f"
            (float_of_int opt
            /. float_of_int (max 1 (Matching.size r.Pipeline.matching)));
        ])
    [ 0.05; 0.1; 0.2; 0.4; 0.8 ];
  emit t

(* ------------------------------------------------------------------ *)
(* E18 - G_delta vs EDCS: the two sparsifier philosophies              *)
(* ------------------------------------------------------------------ *)

let e18_edcs_comparison () =
  let t =
    Table.create
      ~title:
        "E18 (positioning vs [4,6]): G_delta (needs bounded beta, reaches 1+eps) vs EDCS (any graph, 3/2)"
      ~columns:
        [
          "family"; "opt"; "Gd edges"; "Gd ratio"; "EDCS edges"; "EDCS ratio";
        ]
  in
  let rng = Rng.create (seed + 18) in
  (* the hub gadget has beta = pairs = 200 (each hub sees all l_i's):
     exactly the high-beta regime Theorem 2.1 excludes.  Sparsifying it with
     a Delta sized for small claimed beta shows the failure; EDCS, which has
     no beta assumption (but reads all of m), is unaffected. *)
  let hub, _ = Gen.hub_gadget ~pairs:200 ~hub_size:20 in
  let instances =
    [
      ("K300 (beta=1)", Gen.complete 300, 1);
      ("line graph (beta=2)", Line_graph.random_base rng ~base_n:50 ~p:0.35, 2);
      ("hub gadget, Delta for beta=21", hub, 21);
      ("hub gadget, Delta for beta=1", hub, 1);
    ]
  in
  List.iter
    (fun (name, g, beta) ->
      let opt = mcm_of g in
      let delta = Delta_param.scaled ~multiplier:0.5 ~beta ~eps:0.5 in
      let s, _ = Gdelta.sparsify (Rng.split rng) g ~delta in
      let os = mcm_of s in
      let h = Edcs.construct g ~bound:(2 * delta) in
      let oh = mcm_of h in
      Table.add_row t
        [
          name;
          Table.cell_i opt;
          Table.cell_i (Graph.m s);
          Printf.sprintf "%.4f"
            (Properties.approximation_ratio ~mcm_g:opt ~mcm_sparsifier:os);
          Table.cell_i (Graph.m h);
          Printf.sprintf "%.4f"
            (Properties.approximation_ratio ~mcm_g:opt ~mcm_sparsifier:oh);
        ])
    instances;
  emit t

let all =
  [
    ("e1_approximation", e1_approximation);
    ("e2_size", e2_size);
    ("e3_arboricity", e3_arboricity);
    ("e4_deterministic_fails", e4_deterministic_fails);
    ("e5_exactness", e5_exactness);
    ("e6_sequential", e6_sequential);
    ("e7_rounds", e7_rounds);
    ("e8_messages", e8_messages);
    ("e9_dynamic", e9_dynamic);
    ("e10_composition", e10_composition);
    ("e11_ablations", e11_ablations);
    ("e12_streaming", e12_streaming);
    ("e13_mpc", e13_mpc);
    ("e14_oblivious_dynamic", e14_oblivious_dynamic);
    ("e15_deterministic_distributed", e15_deterministic_distributed);
    ("e16_beta_scaling", e16_beta_scaling);
    ("e17_regime", e17_regime);
    ("e18_edcs_comparison", e18_edcs_comparison);
  ]
