(* Bechamel micro-benchmarks for the performance-critical kernels.

   One Test.make per kernel; the OLS estimate (ns/run) is printed as a
   table.  These complement the experiment tables: E-tables measure the
   complexity *shape* (probes, messages, work units), the micro-benchmarks
   measure raw constants on this machine. *)

open Bechamel
open Toolkit
open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

let make_tests () =
  let rng = Rng.create 424242 in
  let k500 = Gen.complete 500 in
  let udg, _ = Unit_disk.random rng ~n:600 ~radius:0.15 in
  let lg = Line_graph.random_base rng ~base_n:40 ~p:0.4 in
  let delta = 8 in
  let sparsifier, _ = Gdelta.sparsify (Rng.create 7) k500 ~delta in
  [
    Test.make ~name:"gdelta/K500-d8"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Gdelta.sparsify (Rng.copy rng) k500 ~delta)));
    Test.make ~name:"gdelta/udg600-d8"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Gdelta.sparsify (Rng.copy rng) udg ~delta)));
    Test.make ~name:"greedy/udg600"
      (Staged.stage (fun () -> Sys.opaque_identity (Greedy.maximal udg)));
    Test.make ~name:"blossom/linegraph"
      (Staged.stage (fun () -> Sys.opaque_identity (Blossom.solve lg)));
    Test.make ~name:"blossom/K500-sparsified"
      (Staged.stage (fun () -> Sys.opaque_identity (Blossom.solve sparsifier)));
    Test.make ~name:"approx-eps0.5/K500-sparsified"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Approx.solve_general ~eps:0.5 sparsifier)));
    Test.make ~name:"sparse-array/create-100k"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Sparse_array.create 100_000 ~default:(-1))));
    Test.make ~name:"sparse-array/reset-vs-refill"
      (let a = Sparse_array.create 100_000 ~default:(-1) in
       Staged.stage (fun () ->
           for i = 0 to 63 do
             Sparse_array.set a (i * 1000) i
           done;
           Sparse_array.reset a));
    Test.make ~name:"rng/sample-distinct-16-of-1000"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Rng.sample_distinct (Rng.copy rng) ~k:16 ~n:1000)));
    Test.make
      ~name:"dyn/insert-delete"
      (let dg = Mspar_dynamic.Dyn_graph.create 1000 in
       let i = ref 0 in
       Staged.stage (fun () ->
           incr i;
           let u = !i * 7919 mod 1000 and v = !i * 104729 mod 1000 in
           if u <> v then begin
             ignore (Mspar_dynamic.Dyn_graph.insert dg u v);
             ignore (Mspar_dynamic.Dyn_graph.delete dg u v)
           end));
    Test.make ~name:"hopcroft-karp/bipartite-200x200"
      (let bip =
         Gen.random_bipartite (Rng.create 5) ~left:200 ~right:200 ~p:0.05
       in
       Staged.stage (fun () -> Sys.opaque_identity (Hopcroft_karp.solve bip)));
    Test.make ~name:"det-matching/udg600-sparsified"
      (let s8, _ = Gdelta.sparsify (Rng.create 9) udg ~delta:4 in
       Staged.stage (fun () ->
           Sys.opaque_identity (Mspar_distsim.Det_matching.maximal s8)));
    Test.make ~name:"edcs/K500-bound16"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Edcs.construct k500 ~bound:16)));
    Test.make ~name:"stream/feed-10k-edges"
      (let edges = Graph.edges (Gen.complete 150) in
       Staged.stage (fun () ->
           let t =
             Mspar_stream.Stream_sparsifier.create (Rng.create 3) ~n:150
               ~delta:8
           in
           Mspar_stream.Stream_sparsifier.feed_all t edges;
           Sys.opaque_identity t));
    Test.make ~name:"solomon/K500-d16"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Solomon.sparsify k500 ~delta_alpha:16)));
    Test.make ~name:"beta/compute-udg600"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Beta.compute ~budget:500_000 udg)));
    Test.make ~name:"degeneracy/udg600"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Arboricity.degeneracy udg)));
    Test.make ~name:"tutte-berge/linegraph"
      (let lm = Blossom.solve lg in
       Staged.stage (fun () ->
           Sys.opaque_identity (Blossom.tutte_berge_witness lg lm)));
  ]

let run () =
  let tests = Test.make_grouped ~name:"mspar" ~fmt:"%s %s" (make_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"micro-benchmarks (bechamel OLS, monotonic clock)"
      ~columns:[ "kernel"; "ns/run" ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | Some [] | None -> "n/a"
      in
      Table.add_row table [ name; est ])
    (List.sort compare rows);
  Experiments.emit table
