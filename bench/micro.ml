(* Bechamel micro-benchmarks for the performance-critical kernels, plus a
   wall-clock suite for the sparsifier construction path itself.

   One Test.make per kernel; the OLS estimate (ns/run) is printed as a
   table.  These complement the experiment tables: E-tables measure the
   complexity *shape* (probes, messages, work units), the micro-benchmarks
   measure raw constants on this machine.

   The construction rows compare the seed's boxed pipeline (cons an
   (int * int) list, List.sort_uniq compare, per-block Array.sort compare)
   against the packed-int Edgebuf/counting-sort pipeline, sequential and
   multi-domain.  They are best-of-N wall times, not OLS estimates: the
   interesting configuration (100k vertices, ~5M edges) is too large to
   iterate under bechamel's sampling loop. *)

open Bechamel
open Toolkit
open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

let make_tests () =
  let rng = Rng.create 424242 in
  let k500 = Gen.complete 500 in
  let udg, _ = Unit_disk.random rng ~n:600 ~radius:0.15 in
  let lg = Line_graph.random_base rng ~base_n:40 ~p:0.4 in
  let delta = 8 in
  let sparsifier, _ = Gdelta.sparsify (Rng.create 7) k500 ~delta in
  [
    Test.make ~name:"gdelta/K500-d8"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Gdelta.sparsify (Rng.copy rng) k500 ~delta)));
    Test.make ~name:"gdelta/udg600-d8"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Gdelta.sparsify (Rng.copy rng) udg ~delta)));
    Test.make ~name:"greedy/udg600"
      (Staged.stage (fun () -> Sys.opaque_identity (Greedy.maximal udg)));
    Test.make ~name:"blossom/linegraph"
      (Staged.stage (fun () -> Sys.opaque_identity (Blossom.solve lg)));
    Test.make ~name:"blossom/K500-sparsified"
      (Staged.stage (fun () -> Sys.opaque_identity (Blossom.solve sparsifier)));
    Test.make ~name:"approx-eps0.5/K500-sparsified"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Approx.solve_general ~eps:0.5 sparsifier)));
    Test.make ~name:"sparse-array/create-100k"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Sparse_array.create 100_000 ~default:(-1))));
    Test.make ~name:"sparse-array/reset-vs-refill"
      (let a = Sparse_array.create 100_000 ~default:(-1) in
       Staged.stage (fun () ->
           for i = 0 to 63 do
             Sparse_array.set a (i * 1000) i
           done;
           Sparse_array.reset a));
    Test.make ~name:"rng/sample-distinct-16-of-1000"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Rng.sample_distinct (Rng.copy rng) ~k:16 ~n:1000)));
    Test.make
      ~name:"dyn/insert-delete"
      (let dg = Mspar_dynamic.Dyn_graph.create 1000 in
       let i = ref 0 in
       Staged.stage (fun () ->
           incr i;
           let u = !i * 7919 mod 1000 and v = !i * 104729 mod 1000 in
           if u <> v then begin
             ignore (Mspar_dynamic.Dyn_graph.insert dg u v);
             ignore (Mspar_dynamic.Dyn_graph.delete dg u v)
           end));
    Test.make ~name:"hopcroft-karp/bipartite-200x200"
      (let bip =
         Gen.random_bipartite (Rng.create 5) ~left:200 ~right:200 ~p:0.05
       in
       Staged.stage (fun () -> Sys.opaque_identity (Hopcroft_karp.solve bip)));
    Test.make ~name:"det-matching/udg600-sparsified"
      (let s8, _ = Gdelta.sparsify (Rng.create 9) udg ~delta:4 in
       Staged.stage (fun () ->
           Sys.opaque_identity (Mspar_distsim.Det_matching.maximal s8)));
    Test.make ~name:"edcs/K500-bound16"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Edcs.construct k500 ~bound:16)));
    Test.make ~name:"stream/feed-10k-edges"
      (let edges = Graph.edges (Gen.complete 150) in
       Staged.stage (fun () ->
           let t =
             Mspar_stream.Stream_sparsifier.create (Rng.create 3) ~n:150
               ~delta:8
           in
           Mspar_stream.Stream_sparsifier.feed_all t edges;
           Sys.opaque_identity t));
    Test.make ~name:"solomon/K500-d16"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Solomon.sparsify k500 ~delta_alpha:16)));
    Test.make ~name:"beta/compute-udg600"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Beta.compute ~budget:500_000 udg)));
    Test.make ~name:"degeneracy/udg600"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Arboricity.degeneracy udg)));
    Test.make ~name:"tutte-berge/linegraph"
      (let lm = Blossom.solve lg in
       Staged.stage (fun () ->
           Sys.opaque_identity (Blossom.tutte_berge_witness lg lm)));
  ]

(* ------------------------------------------------------------------ *)
(* Construction path: list vs packed, sequential vs domains           *)
(* ------------------------------------------------------------------ *)

(* the seed's boxed mark collector, reproduced verbatim as the baseline *)
let seed_collect_marks rng g ~delta =
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let pairs = ref [] in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    if d <= 2 * delta then
      Graph.iter_neighbors g v (fun u -> pairs := (v, u) :: !pairs)
    else
      Sampling.sample_indices sampler rng ~n:d ~k:delta ~f:(fun i ->
          pairs := (v, Graph.neighbor g v i) :: !pairs)
  done;
  !pairs

let random_edge_array rng ~n ~m =
  Array.init m (fun _ ->
      let u = Rng.int rng n in
      let v = ref (Rng.int rng n) in
      while !v = u do
        v := Rng.int rng n
      done;
      (u, !v))

let best_of ~repeats f =
  let best = ref Int64.max_int in
  for _ = 1 to repeats do
    let _, ns = Clock.time_ns f in
    if ns < !best then best := ns
  done;
  !best

(* One (kernel, ns) row per configuration; also cross-checks that every
   builder variant produces the identical graph, so the smoke run doubles
   as a correctness guard for the perf harness.

   The pooled rows reuse persistent pools created (and warmed by the
   cross-checks) outside the timed region, so they measure the amortised
   steady state a long-running process sees — the spawn cost the pool
   exists to eliminate is deliberately excluded. *)
let construction_rows ~full =
  let n, m, delta, repeats =
    if full then (100_000, 5_000_000, 32, 2) else (2_000, 40_000, 8, 3)
  in
  let rng = Rng.create 20200715 in
  let pairs = random_edge_array rng ~n ~m in
  let pair_list = Array.to_list pairs in
  let g = Graph.of_edge_array ~n pairs in
  let require name cond = if not cond then failwith ("micro-bench: " ^ name) in
  require "packed of_edges mismatches reference"
    (Graph.equal g (Graph.of_edges_reference ~n pair_list));
  let shift =
    match Graph.pack_shift ~n with
    | Some s -> s
    | None -> failwith "micro-bench: bench sizes must be packable"
  in
  let codes = Array.map (fun (u, v) -> Graph.pack ~shift u v) pairs in
  let pool1 = Pool.create ~num_domains:1 () in
  let pool2 = Pool.create ~num_domains:2 () in
  let pool4 = Pool.create ~num_domains:4 () in
  let pool8 = Pool.create ~num_domains:8 () in
  Fun.protect
    ~finally:(fun () -> List.iter Pool.shutdown [ pool1; pool2; pool4; pool8 ])
    (fun () ->
      (* correctness guards double as pool warm-up *)
      require "parallel CSR builder mismatches of_packed"
        (Graph.equal
           (Graph.of_packed ~n (Array.copy codes))
           (Graph.of_packed_par ~pool:pool4 ~n (Array.copy codes)));
      let seq = Mspar_parallel.Par_gdelta.sequential ~seed:7 g ~delta in
      require "4-domain pooled sparsifier mismatches sequential"
        (Graph.equal seq
           (Mspar_parallel.Par_gdelta.sparsify ~pool:pool4 ~seed:7 g ~delta));
      ignore (Mspar_parallel.Par_gdelta.sparsify ~pool:pool2 ~seed:7 g ~delta);
      ignore (Mspar_parallel.Par_gdelta.sparsify ~pool:pool8 ~seed:7 g ~delta);
      let tag name =
        Printf.sprintf "construction/%s/n%d-m%d-d%d" name n (Graph.m g) delta
      in
      let row name f = (tag name, best_of ~repeats f) in
      [
        row "of-edges-list-seed" (fun () ->
            Sys.opaque_identity (Graph.of_edges_reference ~n pair_list));
        row "of-edges-packed" (fun () ->
            Sys.opaque_identity (Graph.of_edge_array ~n pairs));
        (* both CSR builders mutate their input prefix, so each timed run
           pays one identical Array.copy of the packed codes *)
        row "csr-build/seq" (fun () ->
            Sys.opaque_identity (Graph.of_packed ~n (Array.copy codes)));
        row "csr-build/par" (fun () ->
            Sys.opaque_identity
              (Graph.of_packed_par ~pool:pool4 ~n (Array.copy codes)));
        row "gdelta-list-seed" (fun () ->
            let marks = seed_collect_marks (Rng.create 7) g ~delta in
            Sys.opaque_identity (Graph.of_edges_reference ~n marks));
        row "gdelta-packed" (fun () ->
            Sys.opaque_identity (Gdelta.sparsify (Rng.create 7) g ~delta));
        row "par-gdelta-seq" (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sequential ~seed:7 g ~delta));
        row "par-gdelta-pool-1dom" (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sparsify ~pool:pool1 ~seed:7 g ~delta));
        row "par-gdelta-pool-2dom" (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sparsify ~pool:pool2 ~seed:7 g ~delta));
        row "par-gdelta-pool-4dom" (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sparsify ~pool:pool4 ~seed:7 g ~delta));
        row "par-gdelta-pool-8dom" (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sparsify ~pool:pool8 ~seed:7 g ~delta));
      ])

(* Pooled speedup curve (fresh warmed pool per domain count); emitted as
   its own CSV so scaling runs are diffable across machines.  The title's
   first token is the CSV slug: bench_csv/par-scaling.csv. *)
let scaling_table () =
  let n, m, delta = (100_000, 5_000_000, 32) in
  let rng = Rng.create 20200715 in
  let g = Graph.of_edge_array ~n (random_edge_array rng ~n ~m) in
  let times =
    Mspar_parallel.Par_gdelta.time_comparison ~seed:7 g ~delta
      ~domains:[ 1; 2; 4; 8 ]
  in
  let base = match times with (_, ms) :: _ -> ms | [] -> 1.0 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "par-scaling (pooled G_delta, n=%d m=%d d=%d)" n
           (Graph.m g) delta)
      ~columns:[ "domains"; "ms"; "speedup-vs-1dom" ]
  in
  List.iter
    (fun (d, ms) ->
      Table.add_row table
        [ string_of_int d; Printf.sprintf "%.1f" ms; Printf.sprintf "%.2f" (base /. ms) ])
    times;
  table

let find_row rows key =
  match List.find_opt (fun (name, _) -> String.length name >= String.length key
      && String.sub name 0 (String.length key) = key) rows with
  | Some (_, ns) -> ns
  | None -> failwith ("micro-bench: missing row " ^ key)

let smoke () =
  let rows = construction_rows ~full:false in
  let table =
    Table.create ~title:"micro-smoke (construction path, tiny sizes)"
      ~columns:[ "kernel"; "ns/run" ]
  in
  List.iter
    (fun (name, ns) -> Table.add_row table [ name; Int64.to_string ns ])
    rows;
  Table.print table;
  (* wiring guard: a 1-domain pool takes the sequential path inside
     sparsify, so the pooled entry point must not cost more than the
     sequential one beyond noise (lenient: 1.5x plus 50ms absolute slack,
     as CI boxes jitter) *)
  let seq = find_row rows "construction/par-gdelta-seq/" in
  let pooled = find_row rows "construction/par-gdelta-pool-1dom/" in
  if
    Int64.to_float pooled
    > (1.5 *. Int64.to_float seq) +. 50_000_000.0
  then
    failwith
      (Printf.sprintf
         "micro-bench: pooled 1-domain path is slower than sequential beyond \
          tolerance (%Ld ns vs %Ld ns)"
         pooled seq)

let run ?(construction = `Smoke) () =
  let tests = Test.make_grouped ~name:"mspar" ~fmt:"%s %s" (make_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"micro-benchmarks (bechamel OLS, monotonic clock)"
      ~columns:[ "kernel"; "ns/run" ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | Some [] | None -> "n/a"
      in
      Table.add_row table [ name; est ])
    (List.sort compare rows);
  List.iter
    (fun (name, ns) -> Table.add_row table [ name; Int64.to_string ns ])
    (construction_rows ~full:(construction = `Full));
  Experiments.emit table;
  if construction = `Full then Experiments.emit (scaling_table ())
