(* Bechamel micro-benchmarks for the performance-critical kernels, plus a
   wall-clock suite for the sparsifier construction path itself.

   One Test.make per kernel; the OLS estimate (ns/run) is printed as a
   table.  These complement the experiment tables: E-tables measure the
   complexity *shape* (probes, messages, work units), the micro-benchmarks
   measure raw constants on this machine.

   The construction rows compare the seed's boxed pipeline (cons an
   (int * int) list, List.sort_uniq compare, per-block Array.sort compare)
   against the packed-int Edgebuf/counting-sort pipeline, sequential and
   multi-domain.  They are best-of-N wall times, not OLS estimates: the
   interesting configuration (100k vertices, ~5M edges) is too large to
   iterate under bechamel's sampling loop. *)

open Bechamel
open Toolkit
open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

let make_tests () =
  let rng = Rng.create 424242 in
  let k500 = Gen.complete 500 in
  let udg, _ = Unit_disk.random rng ~n:600 ~radius:0.15 in
  let lg = Line_graph.random_base rng ~base_n:40 ~p:0.4 in
  let delta = 8 in
  let sparsifier, _ = Gdelta.sparsify (Rng.create 7) k500 ~delta in
  [
    Test.make ~name:"gdelta/K500-d8"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Gdelta.sparsify (Rng.copy rng) k500 ~delta)));
    Test.make ~name:"gdelta/udg600-d8"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Gdelta.sparsify (Rng.copy rng) udg ~delta)));
    Test.make ~name:"greedy/udg600"
      (Staged.stage (fun () -> Sys.opaque_identity (Greedy.maximal udg)));
    Test.make ~name:"blossom/linegraph"
      (Staged.stage (fun () -> Sys.opaque_identity (Blossom.solve lg)));
    Test.make ~name:"blossom/K500-sparsified"
      (Staged.stage (fun () -> Sys.opaque_identity (Blossom.solve sparsifier)));
    Test.make ~name:"approx-eps0.5/K500-sparsified"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Approx.solve_general ~eps:0.5 sparsifier)));
    Test.make ~name:"sparse-array/create-100k"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Sparse_array.create 100_000 ~default:(-1))));
    Test.make ~name:"sparse-array/reset-vs-refill"
      (let a = Sparse_array.create 100_000 ~default:(-1) in
       Staged.stage (fun () ->
           for i = 0 to 63 do
             Sparse_array.set a (i * 1000) i
           done;
           Sparse_array.reset a));
    Test.make ~name:"rng/sample-distinct-16-of-1000"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Rng.sample_distinct (Rng.copy rng) ~k:16 ~n:1000)));
    Test.make
      ~name:"dyn/insert-delete"
      (let dg = Mspar_dynamic.Dyn_graph.create 1000 in
       let i = ref 0 in
       Staged.stage (fun () ->
           incr i;
           let u = !i * 7919 mod 1000 and v = !i * 104729 mod 1000 in
           if u <> v then begin
             ignore (Mspar_dynamic.Dyn_graph.insert dg u v);
             ignore (Mspar_dynamic.Dyn_graph.delete dg u v)
           end));
    Test.make ~name:"hopcroft-karp/bipartite-200x200"
      (let bip =
         Gen.random_bipartite (Rng.create 5) ~left:200 ~right:200 ~p:0.05
       in
       Staged.stage (fun () -> Sys.opaque_identity (Hopcroft_karp.solve bip)));
    Test.make ~name:"det-matching/udg600-sparsified"
      (let s8, _ = Gdelta.sparsify (Rng.create 9) udg ~delta:4 in
       Staged.stage (fun () ->
           Sys.opaque_identity (Mspar_distsim.Det_matching.maximal s8)));
    Test.make ~name:"edcs/K500-bound16"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Edcs.construct k500 ~bound:16)));
    Test.make ~name:"stream/feed-10k-edges"
      (let edges = Graph.edges (Gen.complete 150) in
       Staged.stage (fun () ->
           let t =
             Mspar_stream.Stream_sparsifier.create (Rng.create 3) ~n:150
               ~delta:8
           in
           Mspar_stream.Stream_sparsifier.feed_all t edges;
           Sys.opaque_identity t));
    Test.make ~name:"solomon/K500-d16"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Solomon.sparsify k500 ~delta_alpha:16)));
    Test.make ~name:"beta/compute-udg600"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Beta.compute ~budget:500_000 udg)));
    Test.make ~name:"degeneracy/udg600"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Arboricity.degeneracy udg)));
    Test.make ~name:"tutte-berge/linegraph"
      (let lm = Blossom.solve lg in
       Staged.stage (fun () ->
           Sys.opaque_identity (Blossom.tutte_berge_witness lg lm)));
  ]

(* ------------------------------------------------------------------ *)
(* Construction path: list vs packed, sequential vs domains           *)
(* ------------------------------------------------------------------ *)

(* Host parallelism, recorded as a column in every construction CSV row:
   a published wall-time is only interpretable next to the cores that
   produced it. *)
let host_cores = Domain.recommended_domain_count ()

(* Pooled rows may only advertise themselves as parallel when the host
   can actually run domains side by side.  On a single-core machine the
   same code path is still timed — the pool dispatch overhead is a real
   number — but the row is labelled honestly so a published CSV cannot
   claim a speedup the hardware could not have delivered. *)
let pooled_label domains =
  if host_cores >= 2 then Printf.sprintf "par-%ddom" domains
  else Printf.sprintf "pooled-serial-%ddom" domains

(* the seed's boxed mark collector, reproduced verbatim as the baseline *)
let seed_collect_marks rng g ~delta =
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let pairs = ref [] in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    if d <= 2 * delta then
      Graph.iter_neighbors g v (fun u -> pairs := (v, u) :: !pairs)
    else
      Sampling.sample_indices sampler rng ~n:d ~k:delta ~f:(fun i ->
          pairs := (v, Graph.neighbor g v i) :: !pairs)
  done;
  !pairs

let random_edge_array rng ~n ~m =
  Array.init m (fun _ ->
      let u = Rng.int rng n in
      let v = ref (Rng.int rng n) in
      while !v = u do
        v := Rng.int rng n
      done;
      (u, !v))

let best_of ~repeats f =
  let best = ref Int64.max_int in
  for _ = 1 to repeats do
    let _, ns = Clock.time_ns f in
    if ns < !best then best := ns
  done;
  !best

(* Paired interleaved medians for an A/B kernel comparison.  The two
   thunks are timed alternately (A, B, A, B, …) so slow drift — the
   major-heap state earlier rows leave behind, container CPU contention —
   lands on both kernels equally, and the per-kernel medians stay
   comparable.  Medians, not best-of: the per-vertex mark baseline's cost
   is bimodal (doubling-growth buffer copies and major-GC slices land in
   some runs and not others), and that tail is part of what the blocked
   collector removes — a min() would report the lucky GC-free run.
   Back-to-back (non-interleaved) medians for this pair swung ±30% run to
   run on the 1-core CI container, drowning a steady ~12% difference. *)
let interleaved_medians ~rounds fa fb =
  let sa = Array.make rounds 0L and sb = Array.make rounds 0L in
  for i = 0 to rounds - 1 do
    sa.(i) <- snd (Clock.time_ns fa);
    sb.(i) <- snd (Clock.time_ns fb)
  done;
  Array.sort Int64.compare sa;
  Array.sort Int64.compare sb;
  (sa.(rounds / 2), sb.(rounds / 2))

(* The pre-blocking mark collector, kept as the perf baseline for the
   gdelta-mark rows: the same emulated-Fisher–Yates sampler, but with one
   live [Rng.int] call per draw (no word prefetch), one checked push per
   mark, one probe-counter update per vertex, and no CSR-block
   working-set reuse.  Its RNG consumption is word-for-word the batched
   collector's (every batched draw consumes at least one prefetched
   word, rejections fall through to the live stream), so the emitted
   codes are bit-for-bit identical — cross-checked below. *)
(* The pre-PR [Sampling.sample_indices], reproduced exactly: one live
   [Rng.int] per draw and the marks emitted through the [f] closure.  The
   old production collector paid that per-draw closure call too, so the
   baseline keeps it — hand-inlining the loop here would make the
   "before" row faster than the code it claims to represent. *)
let unbatched_sample_indices pos rng ~n ~k ~f =
  let k = Int.min k n in
  Sparse_array.reset pos;
  let value_at i =
    let x = Sparse_array.get pos i in
    if x = -1 then i else x
  in
  for step = 0 to k - 1 do
    let last = n - 1 - step in
    let j = Rng.int rng (last + 1) in
    f (value_at j);
    Sparse_array.set pos j (value_at last)
  done

let pervertex_mark_codes rng g ~delta ~shift =
  let n = Graph.n g in
  let pos = Sparse_array.create (Graph.max_degree g) ~default:(-1) in
  let buf = Edgebuf.create () in
  let keep = 2 * delta in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    let base = v lsl shift in
    if d <= keep then
      Graph.iter_neighbors g v (fun u -> Edgebuf.push buf (base lor u))
    else begin
      Graph.add_probes g delta;
      unbatched_sample_indices pos rng ~n:d ~k:delta ~f:(fun i ->
          Edgebuf.push buf (base lor Graph.neighbor_uncounted g v i))
    end
  done;
  buf

(* One (kernel, ns) row per configuration; also cross-checks that every
   builder variant produces the identical graph, so the smoke run doubles
   as a correctness guard for the perf harness.

   The pooled rows reuse persistent pools created (and warmed by the
   cross-checks) outside the timed region, so they measure the amortised
   steady state a long-running process sees — the spawn cost the pool
   exists to eliminate is deliberately excluded. *)
let construction_rows ~full =
  let n, m, delta, repeats =
    if full then (100_000, 5_000_000, 32, 2) else (2_000, 40_000, 8, 3)
  in
  let rng = Rng.create 20200715 in
  let pairs = random_edge_array rng ~n ~m in
  let pair_list = Array.to_list pairs in
  let g = Graph.of_edge_array ~n pairs in
  let require name cond = if not cond then failwith ("micro-bench: " ^ name) in
  require "packed of_edges mismatches reference"
    (Graph.equal g (Graph.of_edges_reference ~n pair_list));
  let shift =
    match Graph.pack_shift ~n with
    | Some s -> s
    | None -> failwith "micro-bench: bench sizes must be packable"
  in
  let codes = Array.map (fun (u, v) -> Graph.pack ~shift u v) pairs in
  let pool1 = Pool.create ~num_domains:1 () in
  let pool2 = Pool.create ~num_domains:2 () in
  let pool4 = Pool.create ~num_domains:4 () in
  let pool8 = Pool.create ~num_domains:8 () in
  Fun.protect
    ~finally:(fun () -> List.iter Pool.shutdown [ pool1; pool2; pool4; pool8 ])
    (fun () ->
      (* correctness guards double as pool warm-up *)
      require "parallel CSR builder mismatches of_packed"
        (Graph.equal
           (Graph.of_packed ~n (Array.copy codes))
           (Graph.of_packed_par ~pool:pool4 ~n (Array.copy codes)));
      let seq = Mspar_parallel.Par_gdelta.sequential ~seed:7 g ~delta in
      require "4-domain pooled sparsifier mismatches sequential"
        (Graph.equal seq
           (Mspar_parallel.Par_gdelta.sparsify ~pool:pool4 ~seed:7 g ~delta));
      ignore (Mspar_parallel.Par_gdelta.sparsify ~pool:pool2 ~seed:7 g ~delta);
      ignore (Mspar_parallel.Par_gdelta.sparsify ~pool:pool8 ~seed:7 g ~delta);
      (let blocked, bshift = Gdelta.marked_codes (Rng.create 7) g ~delta in
       require "marked_codes shift mismatches pack_shift" (bshift = shift);
       require "per-vertex mark baseline mismatches the blocked collector"
         (Graph.equal
            (Graph.of_edgebuf ~n blocked)
            (Graph.of_edgebuf ~n
               (pervertex_mark_codes (Rng.create 7) g ~delta ~shift))));
      let tag name =
        Printf.sprintf "construction/%s/n%d-m%d-d%d" name n (Graph.m g) delta
      in
      (* ~cores is the domain count a row engages; the recorded column is
         capped by what the host can actually run side by side *)
      let row ~cores name f =
        (tag name, Int.min cores host_cores, best_of ~repeats f)
      in
      let mark_pair_ns =
        interleaved_medians
          ~rounds:((2 * repeats) + 3)
          (fun () ->
            Sys.opaque_identity
              (pervertex_mark_codes (Rng.create 7) g ~delta ~shift))
          (fun () ->
            Sys.opaque_identity (Gdelta.marked_codes (Rng.create 7) g ~delta))
      in
      [
        row ~cores:1 "of-edges-list-seed" (fun () ->
            Sys.opaque_identity (Graph.of_edges_reference ~n pair_list));
        row ~cores:1 "of-edges-packed" (fun () ->
            Sys.opaque_identity (Graph.of_edge_array ~n pairs));
        (* both CSR builders mutate their input prefix, so each timed run
           pays one identical Array.copy of the packed codes *)
        row ~cores:1 "csr-build/seq" (fun () ->
            Sys.opaque_identity (Graph.of_packed ~n (Array.copy codes)));
        row ~cores:4
          ("csr-build/" ^ pooled_label 4)
          (fun () ->
            Sys.opaque_identity
              (Graph.of_packed_par ~pool:pool4 ~n (Array.copy codes)));
        row ~cores:1 "gdelta-list-seed" (fun () ->
            let marks = seed_collect_marks (Rng.create 7) g ~delta in
            Sys.opaque_identity (Graph.of_edges_reference ~n marks));
        row ~cores:1 "gdelta-packed" (fun () ->
            Sys.opaque_identity (Gdelta.sparsify (Rng.create 7) g ~delta));
        (* the marking hot path in isolation (no CSR build): per-vertex
           checked pushes + one live RNG call per draw through the ~f
           closure (the pre-PR shape), vs the cache-blocked collector
           with batched word prefetch and closure-free index landing
           (identical output codes, cross-checked above).  Timed as an
           interleaved pair — see [interleaved_medians]. *)
        (tag "gdelta-mark/pervertex-unbatched", 1, fst mark_pair_ns);
        (tag "gdelta-mark/blocked-batched", 1, snd mark_pair_ns);
        row ~cores:1 "par-gdelta-seq" (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sequential ~seed:7 g ~delta));
        row ~cores:1 "par-gdelta-pool-1dom" (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sparsify ~pool:pool1 ~seed:7 g ~delta));
        row ~cores:2
          ("par-gdelta-pool/" ^ pooled_label 2)
          (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sparsify ~pool:pool2 ~seed:7 g ~delta));
        row ~cores:4
          ("par-gdelta-pool/" ^ pooled_label 4)
          (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sparsify ~pool:pool4 ~seed:7 g ~delta));
        row ~cores:8
          ("par-gdelta-pool/" ^ pooled_label 8)
          (fun () ->
            Sys.opaque_identity
              (Mspar_parallel.Par_gdelta.sparsify ~pool:pool8 ~seed:7 g ~delta));
      ])

(* Pooled speedup curve (fresh warmed pool per domain count); emitted as
   its own CSV so scaling runs are diffable across machines.  The title's
   first token is the CSV slug: bench_csv/par-scaling.csv.

   Returns [None] on a single-core host: a "parallel speedup" table whose
   domains all time-slice one core is a fabrication, so the harness
   refuses to produce it rather than publishing rows a reader would take
   as genuine scaling. *)
let scaling_table () =
  if host_cores < 2 then begin
    prerr_endline
      "par-scaling: refusing to emit a parallel-speedup table on a \
       single-core host (Domain.recommended_domain_count () = 1); rerun on \
       a multicore machine";
    None
  end
  else begin
    let n, m, delta = (100_000, 5_000_000, 32) in
    let rng = Rng.create 20200715 in
    let g = Graph.of_edge_array ~n (random_edge_array rng ~n ~m) in
    let times =
      Mspar_parallel.Par_gdelta.time_comparison ~seed:7 g ~delta
        ~domains:[ 1; 2; 4; 8 ]
    in
    let base = match times with (_, ms) :: _ -> ms | [] -> 1.0 in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "par-scaling (pooled G_delta, n=%d m=%d d=%d)" n
             (Graph.m g) delta)
        ~columns:[ "domains"; "ms"; "speedup-vs-1dom"; "host-cores" ]
    in
    List.iter
      (fun (d, ms) ->
        Table.add_row table
          [
            string_of_int d;
            Printf.sprintf "%.1f" ms;
            Printf.sprintf "%.2f" (base /. ms);
            string_of_int host_cores;
          ])
      times;
    Some table
  end

let contains_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* one (kernel, ns, cores) table; [filter] selects by row-name substring so
   the csr-build and gdelta-mark rows also land in their own CSVs *)
let rows_table ~title ?(filter = fun _ -> true) rows =
  let t = Table.create ~title ~columns:[ "kernel"; "ns/run"; "cores" ] in
  List.iter
    (fun (name, cores, ns) ->
      if filter name then
        Table.add_row t [ name; Int64.to_string ns; string_of_int cores ])
    rows;
  t

(* the before/after stories the CSVs exist to tell, as standalone tables:
   bench_csv/csr-build.csv and bench_csv/gdelta-mark.csv *)
let emit_focus_tables ~label rows =
  Experiments.emit
    (rows_table
       ~title:(Printf.sprintf "csr-build (%s; seq heap-free build vs pooled)" label)
       ~filter:(contains_substring ~needle:"/csr-build/")
       rows);
  Experiments.emit
    (rows_table
       ~title:
         (Printf.sprintf
            "gdelta-mark (%s; per-vertex checked pushes vs cache-blocked \
             batched collector)"
            label)
       ~filter:(contains_substring ~needle:"/gdelta-mark/")
       rows)

let find_row rows key =
  match List.find_opt (fun (name, _, _) -> String.length name >= String.length key
      && String.sub name 0 (String.length key) = key) rows with
  | Some (_, _, ns) -> ns
  | None -> failwith ("micro-bench: missing row " ^ key)

let smoke () =
  let rows = construction_rows ~full:false in
  Experiments.emit
    (rows_table ~title:"micro-smoke (construction path, tiny sizes)" rows);
  emit_focus_tables ~label:"smoke sizes" rows;
  (* wiring guard: a 1-domain pool takes the sequential path inside
     sparsify, so the pooled entry point must not cost more than the
     sequential one beyond noise (lenient: 1.5x plus 50ms absolute slack,
     as CI boxes jitter) *)
  let seq = find_row rows "construction/par-gdelta-seq/" in
  let pooled = find_row rows "construction/par-gdelta-pool-1dom/" in
  if
    Int64.to_float pooled
    > (1.5 *. Int64.to_float seq) +. 50_000_000.0
  then
    failwith
      (Printf.sprintf
         "micro-bench: pooled 1-domain path is slower than sequential beyond \
          tolerance (%Ld ns vs %Ld ns)"
         pooled seq)

let run ?(construction = `Smoke) () =
  let tests = Test.make_grouped ~name:"mspar" ~fmt:"%s %s" (make_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"micro-benchmarks (bechamel OLS, monotonic clock)"
      ~columns:[ "kernel"; "ns/run"; "cores" ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | Some [] | None -> "n/a"
      in
      Table.add_row table [ name; est; "1" ])
    (List.sort compare rows);
  let crows = construction_rows ~full:(construction = `Full) in
  List.iter
    (fun (name, cores, ns) ->
      Table.add_row table [ name; Int64.to_string ns; string_of_int cores ])
    crows;
  Experiments.emit table;
  let label = if construction = `Full then "full sizes" else "smoke sizes" in
  emit_focus_tables ~label crows;
  if construction = `Full then
    match scaling_table () with
    | Some t -> Experiments.emit t
    | None -> ()
