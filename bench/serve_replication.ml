(* Replication fault harness: a real primary and a real hot-standby
   forked as separate processes, with the failure legs DESIGN.md §13
   promises —

   - failover: kill -9 the primary mid-stream, [Promote] the caught-up
     replica, rediscover it with [Client.connect_primary], replay the
     last rid (dedup makes the replay exactly-once), and require the
     promoted digest to equal an uncrashed in-process reference
     bit-for-bit over the acked window (zero acked-update loss);
   - catch-up: kill -9 the replica mid-stream, keep loading the primary,
     restart the replica over its surviving dir — it must re-handshake
     from its durable cursor and converge to the primary's digest;
   - fencing: a stale-epoch [Repl_hello] answers [Repl_fence] and a
     non-boundary offset answers [Error], both without disturbing the
     serving path;
   - lag: a follower that never reads accrues [repl_lag] in [Stats]
     while the primary stays fully responsive (slow consumers shed onto
     the replication out-queue, never onto the serve path).

   One row per leg into bench_csv/serve-replication.csv (under --csv).
   Everything is seeded; the smoke variant runs the failover and fencing
   legs at reduced op counts. *)

open Mspar_prelude
open Mspar_server

let seed = 11
let span = 64

let gate name ok detail =
  if not ok then
    failwith (Printf.sprintf "serve-replication gate failed: %s (%s)" name detail)

let sock_addr tag =
  Wire.Unix_path
    (Filename.concat (Filename.get_temp_dir_name ())
       (Printf.sprintf "mspar-repl-%s-%d.sock" tag (Unix.getpid ())))

let role c =
  match Client.request c Wire.Role with
  | Ok (Wire.Role_reply { primary; epoch; offset }) -> (primary, epoch, offset)
  | Ok _ -> failwith "serve-replication: Role answered a non-Role_reply"
  | Error msg -> failwith ("serve-replication: Role: " ^ msg)

let role_offset c =
  let _, _, offset = role c in
  offset

let stats c =
  match Client.request c Wire.Stats with
  | Ok (Wire.Stats_reply s) -> s
  | Ok _ -> failwith "serve-replication: Stats answered a non-Stats_reply"
  | Error msg -> failwith ("serve-replication: Stats: " ^ msg)

(* single in-flight update; Busy is honoured, anything else is fatal *)
let rec apply c ~rid op =
  let req =
    match op with
    | Serve_util.Ins (u, v) -> Wire.Insert { rid; u; v }
    | Serve_util.Del (u, v) -> Wire.Delete { rid; u; v }
  in
  match Client.request c req with
  | Ok (Wire.Ack _) -> ()
  | Ok (Wire.Busy ms) ->
      Unix.sleepf (float_of_int ms /. 1000.);
      apply c ~rid op
  | Ok _ -> failwith "serve-replication: update answered a non-Ack"
  | Error msg -> failwith ("serve-replication: update: " ^ msg)

(* catch-up barrier: poll the replica's Role offset (its durable cursor,
   in primary-WAL byte coordinates) until it reaches the primary's
   durable offset.  Replication is asynchronous — equality gates are
   only meaningful behind this barrier. *)
let await_catchup rc ~target =
  let deadline = Unix.gettimeofday () +. 60. in
  let rec go () =
    let offset = role_offset rc in
    if offset >= target then offset
    else if Unix.gettimeofday () > deadline then
      failwith
        (Printf.sprintf
           "serve-replication: replica stuck at offset %d (target %d)"
           offset target)
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let expect_exit_0 what status =
  gate (what ^ " drains to exit 0")
    (match status with Unix.WEXITED 0 -> true | _ -> false)
    (match status with
    | Unix.WEXITED c -> Printf.sprintf "exit %d" c
    | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
    | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s)

let leg_row ~leg ~ops ~acked ~replica_off ~primary_off ~fenced ~lag ~elapsed
    ~digest_equal =
  [
    leg;
    Table.cell_i ops;
    Table.cell_i acked;
    Table.cell_i replica_off;
    Table.cell_i primary_off;
    Table.cell_i fenced;
    Table.cell_i lag;
    Table.cell_f elapsed;
    Table.cell_b digest_equal;
  ]

(* ---- leg 1: primary kill -9, promote, client failover ---- *)

let failover_leg ~full =
  let count = if full then 2_000 else 300 in
  let rng = Rng.create seed in
  let ops = Serve_util.make_ops rng ~n:span ~count in
  let cfg = Serve_util.config ~n:span ~seed in
  let dir_p = Serve_util.fresh_dir "repl-failover-p" in
  let dir_r = Serve_util.fresh_dir "repl-failover-r" in
  let dir_ref = Serve_util.fresh_dir "repl-failover-ref" in
  let addr_p = sock_addr "failover-p" and addr_r = sock_addr "failover-r" in
  let t0 = Unix.gettimeofday () in
  (* snapshot_every small enough that Epoch records cross the wire: the
     replica must write its own snapshot blobs from the shipped stream *)
  let ppid =
    Serve_util.fork_server ~sync_every:1 ~snapshot_every:100 ~fresh:true
      ~dir:dir_p ~addr:addr_p cfg
  in
  let c = Serve_util.await addr_p in
  Serve_util.hello c 1;
  (* half the load lands before the replica exists — bootstrap has to
     carry real state, not an empty dir *)
  let half = count / 2 in
  for i = 0 to half - 1 do
    apply c ~rid:(i + 1) ops.(i)
  done;
  let rpid =
    Serve_util.fork_replica ~sync_every:1 ~fresh:true ~dir:dir_r ~addr:addr_r
      ~upstream:addr_p ()
  in
  let rc = Serve_util.await addr_r in
  for i = half to count - 1 do
    apply c ~rid:(i + 1) ops.(i)
  done;
  (* replica read scaling: point queries answer locally, updates bounce *)
  (match Client.request rc (Wire.Query_matched 0) with
  | Ok (Wire.Bool _) -> ()
  | Ok _ | Error _ -> failwith "serve-replication: replica point query failed");
  (match Client.request rc (Wire.Insert { rid = count + 50; u = 1; v = 2 }) with
  | Ok (Wire.Redirect hint) ->
      gate "redirect hint names the primary"
        (Wire.addr_of_string hint = Ok addr_p)
        hint
  | Ok _ | Error _ ->
      failwith "serve-replication: replica accepted an update");
  let primary_off = role_offset c in
  let replica_off = await_catchup rc ~target:primary_off in
  (* hard failover: no shutdown courtesy at all *)
  Serve_util.kill_server ppid;
  Client.close c;
  (match Client.request rc Wire.Promote with
  | Ok Wire.Ok -> ()
  | Ok _ | Error _ -> failwith "serve-replication: Promote failed");
  let is_primary, epoch, _ = role rc in
  gate "promoted replica is primary at epoch 1"
    (is_primary && epoch = 1)
    (Printf.sprintf "primary=%b epoch=%d" is_primary epoch);
  (* a peer from the dead primary's lineage must be fenced, not served *)
  let fenced =
    let pc =
      match Client.connect addr_r with
      | Ok pc -> pc
      | Error msg -> failwith ("serve-replication: fence probe: " ^ msg)
    in
    let r =
      match
        Client.request pc
          (Wire.Repl_hello { epoch = 0; offset = Journal.header_bytes })
      with
      | Ok (Wire.Repl_fence { epoch }) -> epoch = 1
      | Ok _ | Error _ -> false
    in
    Client.close pc;
    gate "stale-epoch hello is fenced" r "expected Repl_fence {epoch = 1}";
    1
  in
  (* the client walks the address list and rediscovers the primary *)
  let c2, where =
    match Client.connect_primary ~seed:17 [ addr_p; addr_r ] with
    | Ok x -> x
    | Error msg -> failwith ("serve-replication: connect_primary: " ^ msg)
  in
  gate "failover lands on the promoted replica" (where = addr_r) "wrong addr";
  Serve_util.hello c2 1;
  (* replay the last rid as a crashed client would: at-most-once dedup
     must absorb it, so the digest below stays on the reference *)
  apply c2 ~rid:count ops.(count - 1);
  let dg = Serve_util.digest c2 in
  let ref_dg = Serve_util.reference_digest ~dir:dir_ref ~client:1 cfg ops in
  gate "promoted digest equals uncrashed reference bit-for-bit"
    (Serve_util.digest_eq dg ref_dg)
    (Printf.sprintf "got %s want %s" (Serve_util.pp_digest dg)
       (Serve_util.pp_digest ref_dg));
  Client.close c2;
  expect_exit_0 "promoted replica" (Serve_util.stop_server rpid);
  leg_row ~leg:"failover" ~ops:count ~acked:count ~replica_off ~primary_off
    ~fenced ~lag:0
    ~elapsed:(Unix.gettimeofday () -. t0)
    ~digest_equal:true

(* ---- leg 2: replica kill -9 and catch-up over the surviving dir ---- *)

let catchup_leg ~full =
  let count = if full then 1_500 else 300 in
  let rng = Rng.create (seed + 1) in
  let ops = Serve_util.make_ops rng ~n:span ~count in
  let cfg = Serve_util.config ~n:span ~seed:(seed + 1) in
  let dir_p = Serve_util.fresh_dir "repl-catchup-p" in
  let dir_r = Serve_util.fresh_dir "repl-catchup-r" in
  let addr_p = sock_addr "catchup-p" and addr_r = sock_addr "catchup-r" in
  let t0 = Unix.gettimeofday () in
  let ppid =
    Serve_util.fork_server ~sync_every:1 ~fresh:true ~dir:dir_p ~addr:addr_p cfg
  in
  let c = Serve_util.await addr_p in
  Serve_util.hello c 1;
  let rpid =
    Serve_util.fork_replica ~sync_every:1 ~fresh:true ~dir:dir_r ~addr:addr_r
      ~upstream:addr_p ()
  in
  let rc = Serve_util.await addr_r in
  let third = count / 3 in
  for i = 0 to third - 1 do
    apply c ~rid:(i + 1) ops.(i)
  done;
  ignore (await_catchup rc ~target:(role_offset c));
  Client.close rc;
  (* kill -9 mid-stream: the replica's next restart must resume from the
     cursor its own fsynced WAL implies, not re-bootstrap *)
  Serve_util.kill_server rpid;
  for i = third to (2 * third) - 1 do
    apply c ~rid:(i + 1) ops.(i)
  done;
  let rpid =
    Serve_util.fork_replica ~sync_every:1 ~fresh:false ~dir:dir_r ~addr:addr_r
      ~upstream:addr_p ()
  in
  let rc = Serve_util.await addr_r in
  for i = 2 * third to count - 1 do
    apply c ~rid:(i + 1) ops.(i)
  done;
  let primary_off = role_offset c in
  let replica_off = await_catchup rc ~target:primary_off in
  let dg_p = Serve_util.digest c in
  let dg_r = Serve_util.digest rc in
  gate "caught-up replica digest equals primary bit-for-bit"
    (Serve_util.digest_eq dg_p dg_r)
    (Printf.sprintf "primary %s replica %s" (Serve_util.pp_digest dg_p)
       (Serve_util.pp_digest dg_r));
  Client.close rc;
  expect_exit_0 "replica" (Serve_util.stop_server rpid);
  Client.close c;
  expect_exit_0 "primary" (Serve_util.stop_server ppid);
  leg_row ~leg:"catchup" ~ops:count ~acked:count ~replica_off ~primary_off
    ~fenced:0 ~lag:0
    ~elapsed:(Unix.gettimeofday () -. t0)
    ~digest_equal:true

(* ---- leg 3: fencing probes against a lone primary ---- *)

let fence_leg () =
  let count = 100 in
  let rng = Rng.create (seed + 2) in
  let ops = Serve_util.make_ops rng ~n:span ~count in
  let cfg = Serve_util.config ~n:span ~seed:(seed + 2) in
  let dir_p = Serve_util.fresh_dir "repl-fence-p" in
  let addr_p = sock_addr "fence-p" in
  let t0 = Unix.gettimeofday () in
  let ppid =
    Serve_util.fork_server ~sync_every:1 ~fresh:true ~dir:dir_p ~addr:addr_p cfg
  in
  let c = Serve_util.await addr_p in
  Serve_util.hello c 1;
  Array.iteri (fun i op -> apply c ~rid:(i + 1) op) ops;
  let primary_off = role_offset c in
  (* stale epoch: refused with the primary's epoch, connection closed *)
  (let pc =
     match Client.connect addr_p with
     | Ok pc -> pc
     | Error msg -> failwith ("serve-replication: fence probe: " ^ msg)
   in
   (match
      Client.request pc
        (Wire.Repl_hello { epoch = 3; offset = Journal.header_bytes })
    with
   | Ok (Wire.Repl_fence { epoch }) ->
       gate "fence carries the primary's epoch" (epoch = 0)
         (Printf.sprintf "epoch=%d" epoch)
   | Ok _ | Error _ ->
       failwith "serve-replication: stale-epoch hello not fenced");
   Client.close pc);
  (* right epoch, impossible offset: a protocol error, not a fence *)
  (let pc =
     match Client.connect addr_p with
     | Ok pc -> pc
     | Error msg -> failwith ("serve-replication: offset probe: " ^ msg)
   in
   (match
      Client.request pc
        (Wire.Repl_hello { epoch = 0; offset = primary_off + 7 })
    with
   | Ok (Wire.Error _) -> ()
   | Ok (Wire.Repl_fence _) ->
       failwith "serve-replication: bad offset must not read as a fence"
   | Ok _ | Error _ ->
       failwith "serve-replication: bad-offset hello not refused");
   Client.close pc);
  let s = stats c in
  gate "fence counted in Stats"
    (s.Wire.repl_fenced >= 1)
    (Printf.sprintf "repl_fenced=%d" s.Wire.repl_fenced);
  (* the serving path never noticed *)
  Serve_util.expect_ok "ping" (Client.request c Wire.Ping);
  Client.close c;
  expect_exit_0 "primary" (Serve_util.stop_server ppid);
  leg_row ~leg:"fence" ~ops:count ~acked:count ~replica_off:0 ~primary_off
    ~fenced:1 ~lag:0
    ~elapsed:(Unix.gettimeofday () -. t0)
    ~digest_equal:true

(* ---- leg 4: a never-reading follower accrues lag, primary unharmed ---- *)

let lag_leg ~full =
  let count = if full then 3_000 else 500 in
  let rng = Rng.create (seed + 3) in
  let ops = Serve_util.make_ops rng ~n:span ~count in
  let cfg = Serve_util.config ~n:span ~seed:(seed + 3) in
  let dir_p = Serve_util.fresh_dir "repl-lag-p" in
  let addr_p = sock_addr "lag-p" in
  let t0 = Unix.gettimeofday () in
  let ppid =
    Serve_util.fork_server ~sync_every:1 ~fresh:true ~dir:dir_p ~addr:addr_p cfg
  in
  let c = Serve_util.await addr_p in
  Serve_util.hello c 1;
  apply c ~rid:1 ops.(0);
  (* register as a follower from the first record boundary, then go
     silent: never read, never ack *)
  let laggard =
    match Client.connect addr_p with
    | Ok l -> l
    | Error msg -> failwith ("serve-replication: laggard: " ^ msg)
  in
  (match
     Client.request laggard
       (Wire.Repl_hello { epoch = 0; offset = Journal.header_bytes })
   with
  | Ok Wire.Ok -> ()
  | Ok _ | Error _ -> failwith "serve-replication: laggard hello refused");
  for i = 1 to count - 1 do
    apply c ~rid:(i + 1) ops.(i)
  done;
  let s = stats c in
  gate "laggard registered as a follower"
    (s.Wire.repl_followers >= 1)
    (Printf.sprintf "repl_followers=%d" s.Wire.repl_followers);
  gate "unacked shipping shows up as repl_lag"
    (s.Wire.repl_lag > 0)
    (Printf.sprintf "repl_lag=%d" s.Wire.repl_lag);
  (* responsiveness: the full load above was acked with the laggard
     attached the whole time; one more round-trip for good measure *)
  Serve_util.expect_ok "ping" (Client.request c Wire.Ping);
  let primary_off = role_offset c in
  Client.close laggard;
  Client.close c;
  expect_exit_0 "primary" (Serve_util.stop_server ppid);
  leg_row ~leg:"lag" ~ops:count ~acked:count ~replica_off:0 ~primary_off
    ~fenced:0 ~lag:s.Wire.repl_lag
    ~elapsed:(Unix.gettimeofday () -. t0)
    ~digest_equal:true

let run ?(smoke = false) () =
  Serve_util.ignore_sigpipe ();
  let full = not smoke in
  let t =
    Table.create
      ~title:
        "serve-replication (hot-standby WAL shipping: kill -9 failover \
         with promote + client rediscovery, replica crash catch-up, \
         epoch fencing, slow-follower lag; acked-window digests \
         bit-for-bit)"
      ~columns:
        [
          "leg"; "ops"; "acked"; "replica-off"; "primary-off"; "fenced";
          "lag"; "elapsed-s"; "digest-equal";
        ]
  in
  Table.add_row t (failover_leg ~full);
  if full then Table.add_row t (catchup_leg ~full);
  Table.add_row t (fence_leg ());
  if full then Table.add_row t (lag_leg ~full);
  Experiments.emit t

let smoke () = run ~smoke:true ()
