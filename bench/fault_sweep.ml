(* Degradation harness: how does the sparsifier's matching quality decay
   with message loss, and how much retry budget buys it back?

   The sweep fixes one G(n,p) instance and one marking seed, computes the
   fault-free G_Delta matching size as the reference, then re-runs the
   self-healing construction (Sparsify_dist.gdelta_reliable) across a grid
   of drop rate x retry budget, plus a crash row.  Reported per cell:
   recovery ratio MCM(faulty sparsifier) / MCM(fault-free sparsifier), the
   metered rounds/messages overhead and the fault counters.  Everything is
   deterministic given the seeds below. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_distsim

let mark_seed = 20200715
let fault_seed = 57

let mcm g = Matching.size (Blossom.solve g)

type cell = {
  drop : float;
  crash : int;
  retries : int;
  ratio : float;
  attempts : int;
  rounds : int;
  messages : int;
  dropped : int;
  duplicated : int;
  unacked : int;
}

let run_cell g ~delta ~reference ~drop ~crash ~retries =
  let frng = Rng.create fault_seed in
  let crashed =
    if crash = 0 then []
    else
      Rng.sample_distinct frng ~k:crash ~n:(Graph.n g) |> Array.to_list
  in
  let faults = Faults.plan ~drop ~crashed frng in
  let s, r =
    Sparsify_dist.gdelta_reliable ~faults (Rng.create mark_seed) g ~delta
      ~retries
  in
  let st = r.Sparsify_dist.base in
  {
    drop;
    crash;
    retries;
    ratio = float_of_int (mcm s) /. float_of_int (max 1 reference);
    attempts = r.Sparsify_dist.attempts;
    rounds = st.Sparsify_dist.rounds;
    messages = st.Sparsify_dist.messages;
    dropped = st.Sparsify_dist.faults.Faults.dropped;
    duplicated = st.Sparsify_dist.faults.Faults.duplicated;
    unacked = r.Sparsify_dist.unacked;
  }

let instance ~n ~p =
  let g = Gen.gnp (Rng.create (mark_seed + 1)) ~n ~p in
  let delta = 4 in
  let fault_free, _ = Sparsify_dist.gdelta (Rng.create mark_seed) g ~delta in
  (g, delta, mcm fault_free)

let sweep ~n ~p =
  let g, delta, reference = instance ~n ~p in
  let cells = ref [] in
  List.iter
    (fun drop ->
      List.iter
        (fun retries ->
          cells :=
            run_cell g ~delta ~reference ~drop ~crash:0 ~retries :: !cells)
        [ 0; 1; 2; 3; 5 ])
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5 ];
  (* crashes are not retryable: a graceful-degradation row, not a recovery
     row — the ratio measures what the survivors keep *)
  List.iter
    (fun crash ->
      cells :=
        run_cell g ~delta ~reference ~drop:0.2 ~crash ~retries:3 :: !cells)
    [ n / 20; n / 10 ];
  (g, reference, List.rev !cells)

let emit_table ~n ~p =
  let g, reference, cells = sweep ~n ~p in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "fault-sweep recovery vs drop rate x retry budget (G(%d,%.2f), \
            m=%d, fault-free sparsifier MCM=%d)"
           n p (Graph.m g) reference)
      ~columns:
        [
          "drop"; "crash"; "retries"; "ratio"; "attempts"; "rounds";
          "messages"; "dropped"; "duplicated"; "unacked";
        ]
  in
  let last_drop = ref (-1.0) in
  List.iter
    (fun c ->
      if !last_drop >= 0.0 && c.drop <> !last_drop then Table.add_rule t;
      last_drop := c.drop;
      Table.add_row t
        [
          Printf.sprintf "%.2f" c.drop;
          Table.cell_i c.crash;
          Table.cell_i c.retries;
          Printf.sprintf "%.4f" c.ratio;
          Table.cell_i c.attempts;
          Table.cell_i c.rounds;
          Table.cell_i c.messages;
          Table.cell_i c.dropped;
          Table.cell_i c.duplicated;
          Table.cell_i c.unacked;
        ])
    cells;
  Experiments.emit t

let run () = emit_table ~n:200 ~p:0.1

(* The runtest hook: one tiny fixed-seed cell, asserted.  Exercises the
   whole fault path (plan -> network -> retry protocol -> recovery) on
   every `dune runtest` so the robustness layer cannot bit-rot. *)
let smoke () =
  let g, delta, reference = instance ~n:60 ~p:0.15 in
  let c = run_cell g ~delta ~reference ~drop:0.2 ~crash:0 ~retries:3 in
  Printf.printf
    "fault smoke: n=%d drop=%.2f retries=%d ratio=%.4f attempts=%d \
     dropped=%d unacked=%d\n"
    (Graph.n g) c.drop c.retries c.ratio c.attempts c.dropped c.unacked;
  if c.dropped = 0 then begin
    prerr_endline "fault smoke: expected the plan to drop messages";
    exit 1
  end;
  if c.ratio < 0.95 then begin
    Printf.eprintf "fault smoke: recovery ratio %.4f below 0.95\n" c.ratio;
    exit 1
  end
