(* Shared plumbing for the serve benches: fork a real server process
   (the socket fault legs need a separate pid to kill -9), wait for it
   to accept, and shove Wire requests at it.  Everything is seeded —
   any failure reproduces from the seed printed in the assert. *)

open Mspar_prelude
open Mspar_dynamic
open Mspar_server

let config ~n ~seed =
  { Durable.n; delta = 6; beta = 4; eps = 0.3; multiplier = 2.0; seed }

type op = Ins of int * int | Del of int * int

(* a write into a freshly-crashed server must surface as EPIPE, not
   kill the harness *)
let ignore_sigpipe () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* same shape as crash_soak's op stream: 70% inserts, endpoints from a
   small vertex universe so deletes hit real edges often *)
let make_ops rng ~n ~count =
  Array.init count (fun _ ->
      let u = Rng.int rng n in
      let v = (u + 1 + Rng.int rng (n - 1)) mod n in
      if Rng.int rng 10 < 7 then Ins (u, v) else Del (u, v))

let fresh_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mspar-%s-%d" name (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then rm dir;
  dir

(* Fork a server child.  [fresh] creates the journal dir; otherwise the
   child recovers it (breaking the stale lock a kill -9'd predecessor
   left behind).  The child never returns. *)
let fork_server ?(sync_every = 1) ?snapshot_every ?audit_every ?crash_after_ops
    ?(tune = fun c -> c) ~fresh ~dir ~addr cfg =
  match Unix.fork () with
  | 0 ->
      let code =
        match
          let durable =
            if fresh then
              Durable.create ~sync_every ?snapshot_every ?audit_every ~dir cfg
            else
              match
                Durable.recover ~sync_every ?snapshot_every ?audit_every dir
              with
              | Ok d -> d
              | Error msg -> failwith ("recover: " ^ msg)
          in
          match Server.bind_listen addr with
          | Error msg ->
              Durable.close durable;
              prerr_endline ("server child: " ^ msg);
              Server.exit_bind_failure
          | Ok listen -> (
              let scfg =
                tune { (Server.default_config addr) with Server.crash_after_ops }
              in
              match Server.run scfg ~listen ~durable with
              | Ok () ->
                  Durable.close durable;
                  0
              | Error msg ->
                  Durable.close durable;
                  prerr_endline ("server child: " ^ msg);
                  1)
        with
        | code -> code
        | exception e ->
            prerr_endline ("server child: " ^ Printexc.to_string e);
            2
      in
      Unix._exit code
  | pid -> pid

(* Fork a replica child: bootstrap from the primary when [fresh],
   otherwise recover the replica dir (catch-up restart), then run as a
   hot standby of [upstream].  Same child discipline as [fork_server]. *)
let fork_replica ?(sync_every = 1) ?snapshot_every ?(tune = fun c -> c) ~fresh
    ~dir ~addr ~upstream () =
  match Unix.fork () with
  | 0 ->
      let code =
        match
          let recover () =
            match Durable.recover ~sync_every ?snapshot_every dir with
            | Ok d -> d
            | Error msg -> failwith ("replica recover: " ^ msg)
          in
          let durable =
            if fresh then
              match Server.bootstrap_replica ~upstream ~dir with
              | Ok () -> recover ()
              | Error msg -> failwith ("replica bootstrap: " ^ msg)
            else recover ()
          in
          match Server.bind_listen addr with
          | Error msg ->
              Durable.close durable;
              prerr_endline ("replica child: " ^ msg);
              Server.exit_bind_failure
          | Ok listen -> (
              let scfg = tune (Server.default_config addr) in
              match Server.run ~replica_of:upstream scfg ~listen ~durable with
              | Ok () ->
                  Durable.close durable;
                  0
              | Error msg ->
                  Durable.close durable;
                  prerr_endline ("replica child: " ^ msg);
                  1)
        with
        | code -> code
        | exception e ->
            prerr_endline ("replica child: " ^ Printexc.to_string e);
            2
      in
      Unix._exit code
  | pid -> pid

let await addr =
  match Client.connect_retry ~attempts:60 ~base_delay:0.02 addr with
  | Ok c -> c
  | Error msg -> failwith ("serve bench: cannot reach server: " ^ msg)

let expect_ok what = function
  | Ok Wire.Ok -> ()
  | Ok _ -> failwith (what ^ ": unexpected response")
  | Error msg -> failwith (what ^ ": " ^ msg)

let hello c id = expect_ok "hello" (Client.request c (Wire.Hello id))

let digest c =
  match Client.request c Wire.Checksum with
  | Ok (Wire.Digest d) -> d
  | Ok _ -> failwith "checksum: unexpected response"
  | Error msg -> failwith ("checksum: " ^ msg)

let digest_eq (a : Wire.digest) (b : Wire.digest) =
  a.Wire.op_count = b.Wire.op_count
  && Int64.equal a.Wire.graph b.Wire.graph
  && Int64.equal a.Wire.sparsifier b.Wire.sparsifier
  && a.Wire.matching = b.Wire.matching

let pp_digest d =
  Printf.sprintf "ops=%d graph=%Lx sp=%Lx |M|=%d" d.Wire.op_count d.Wire.graph
    d.Wire.sparsifier d.Wire.matching

(* Same digest the server computes for Wire.Checksum, off an in-process
   Durable — lets the harness compare a recovered journal against a live
   server bit-for-bit. *)
let durable_digest d =
  let open Mspar_graph in
  let dm = Durable.matching d in
  let sp = Durable.sparsifier d in
  {
    Wire.op_count = Durable.op_count d;
    graph =
      Graph.checksum
        (Mspar_dynamic.Dyn_graph.snapshot (Mspar_dynamic.Dyn_matching.graph dm));
    sparsifier = Graph.checksum (Mspar_dynamic.Dyn_sparsifier.sparsifier sp);
    matching = Mspar_dynamic.Dyn_matching.size dm;
  }

let apply_req d ~client ~rid = function
  | Ins (u, v) -> ignore (Durable.insert_req d ~client ~rid u v)
  | Del (u, v) -> ignore (Durable.delete_req d ~client ~rid u v)

(* Uncrashed reference: the same ops applied through the same
   at-most-once entry points, in-process.  Returns the digest the
   crashed-and-recovered server must reproduce bit-for-bit. *)
let reference_digest ~dir ~client cfg ops =
  let d = Durable.create ~sync_every:1 ~dir cfg in
  Array.iteri (fun i op -> apply_req d ~client ~rid:(i + 1) op) ops;
  let r = durable_digest d in
  Durable.close d;
  r

let stop_server pid =
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  status

let kill_server pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
  ignore (Unix.waitpid [] pid)
