(* lca-query: the local-access oracle against the materialized batch
   build.  One row per graph size into bench_csv/lca-query.csv (under
   --csv), gates asserted inline:

   - cold probe gate: a cold [Oracle.in_gdelta] costs at most
     4*delta + 64 probes — the 4*delta from the two endpoint mark
     replays, the constant from the [has_edge] binary search — at every
     size, so the per-query cost is O(delta) independent of n;
   - crossover: at full size a single point query is >= 100x cheaper
     than materializing G_Delta (the query path exists because of this
     gap — below it, just build);
   - warm replay: under a Zipfian working set the memo must cut probes
     per query by >= 10x against cold (full size; the smoke gate is the
     weaker warm < cold);
   - parity: every answer is cross-checked against edge membership in
     the materialized [Gdelta.sparsify_seeded] on the same seed;
   - matching tail: cold [Oracle.is_matched] runs the recursive
     random-greedy simulation, whose probe tail is polynomial in the
     degree and delta but must stay independent of n.  Measured on a
     constant-average-degree companion graph (the main sizes sweep
     density, which would conflate degree growth with n growth) and
     gated per query at [64 * avg_deg * (delta + 8)] probes, with every
     answer cross-checked against the materialized greedy matching.

   Every query batch is pre-sampled before timing so the measured loop
   is nothing but oracle calls. *)

open Mspar_prelude
open Mspar_graph
open Mspar_core
open Mspar_lca

let seed = 7

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0L
  else sorted.(Int.min (n - 1) (int_of_float (p *. float_of_int n)))

(* log-uniform rank over [0, pool): the classic cheap Zipf(s~1) stand-in —
   rank 0 is drawn ~log(pool) times more often than the tail *)
let zipf_rank rng pool =
  let x = Float.exp (Rng.float rng (Float.log (float_of_int pool))) in
  Int.max 0 (Int.min (pool - 1) (int_of_float x - 1))

(* pre-sample an actual edge: both endpoint replays run on query *)
let random_edge rng g =
  let n = Graph.n g in
  let rec go () =
    let u = Rng.int rng n in
    let d = Graph.degree g u in
    if d = 0 then go () else (u, Graph.neighbor_uncounted g u (Rng.int rng d))
  in
  go ()

let gate name ok detail =
  if not ok then failwith (Printf.sprintf "lca-query gate failed: %s (%s)" name detail)

(* ---- matching tail: cold [is_matched] on a bounded-density graph ---- *)

(* The reference: the random-greedy maximal matching of the materialized
   sparsifier, edges taken in the oracle's own (rank, a, b) order. *)
let greedy_matched sg ~oseed =
  let n = Graph.n sg in
  let edges = ref [] in
  for u = 0 to n - 1 do
    Graph.iter_neighbors sg u (fun v -> if u < v then edges := (u, v) :: !edges)
  done;
  let arr = Array.of_list !edges in
  Array.sort
    (fun (a1, b1) (a2, b2) ->
      let r1 = Oracle.edge_rank ~seed:oseed a1 b1
      and r2 = Oracle.edge_rank ~seed:oseed a2 b2 in
      if r1 <> r2 then Int.compare r1 r2
      else if a1 <> a2 then Int.compare a1 a2
      else Int.compare b1 b2)
    arr;
  let matched = Array.make n false in
  Array.iter
    (fun (u, v) ->
      if (not matched.(u)) && not matched.(v) then begin
        matched.(u) <- true;
        matched.(v) <- true
      end)
    arr;
  matched

(* Per-query probe ceiling for the recursive matching simulation: each
   recursion level scans one neighborhood (~avg_deg probes) and replays
   its marks (O(delta)), and the explored lower-rank chain is bounded by
   the sparsifier degree — polynomial in (avg_deg, delta), with no n
   term.  Measured headroom over the seeded runs is 2-5x; a regression
   that makes the tail grow with n blows through it immediately. *)
let mm_row ~full ~n ~delta =
  let rng = Rng.create (seed + n) in
  let m' = 3 * n in
  let g = Graph.of_edge_array ~n (Micro.random_edge_array rng ~n ~m:m') in
  let sg, _ = Gdelta.sparsify_seeded ~seed g ~delta in
  let matched = greedy_matched sg ~oseed:seed in
  let o = Oracle.create (Adj.of_static g) ~seed ~delta in
  let q_mm = if full then 500 else 300 in
  let avg_deg = 2 * m' / n in
  let mm_budget = 64 * avg_deg * (delta + 8) in
  let total = ref 0 and maxp = ref 0 in
  for _ = 1 to q_mm do
    let v = Rng.int rng n in
    let p0 = Oracle.probes o in
    let got = Oracle.is_matched o v in
    let dp = Oracle.probes o - p0 in
    total := !total + dp;
    if dp > !maxp then maxp := dp;
    if got <> matched.(v) then
      failwith
        (Printf.sprintf "lca-query is_matched parity failed at v=%d n=%d" v n)
  done;
  gate "is_matched probes <= 64 * avg_deg * (delta + 8)"
    (!maxp <= mm_budget)
    (Printf.sprintf "max=%d budget=%d n=%d" !maxp mm_budget n);
  (float_of_int !total /. float_of_int q_mm, !maxp)

let row ~full ~n ~m ~delta =
  let rng = Rng.create (seed + n) in
  let g = Graph.of_edge_array ~n (Micro.random_edge_array rng ~n ~m) in
  (* the materialized reference: parity target and crossover baseline *)
  let sg, _ = Gdelta.sparsify_seeded ~seed g ~delta in
  let build_ns =
    Micro.best_of ~repeats:3 (fun () ->
        ignore (Gdelta.sparsify_seeded ~seed g ~delta))
  in
  (* ---- cold pass: distinct random edges, one oracle ---- *)
  let q_cold = if full then 2_000 else 400 in
  let cold_edges = Array.init q_cold (fun _ -> random_edge rng g) in
  let o = Oracle.create (Adj.of_static g) ~seed ~delta in
  let lat = Array.make q_cold 0L in
  let probes = Array.make q_cold 0 in
  Oracle.reset_probes o;
  let budget = (4 * delta) + 64 in
  Array.iteri
    (fun i (u, v) ->
      let p0 = Oracle.probes o in
      let t0 = Clock.now_ns () in
      let got = Oracle.in_gdelta o ~u ~v in
      let t1 = Clock.now_ns () in
      lat.(i) <- Int64.sub t1 t0;
      probes.(i) <- Oracle.probes o - p0;
      if got <> Graph.has_edge sg u v then
        failwith
          (Printf.sprintf "lca-query parity failed at (%d,%d) n=%d" u v n))
    cold_edges;
  let cold_total_probes = Array.fold_left ( + ) 0 probes in
  let cold_mean_probes = float_of_int cold_total_probes /. float_of_int q_cold in
  let cold_max_probes = Array.fold_left Int.max 0 probes in
  gate "cold probes <= 4*delta + 64"
    (cold_max_probes <= budget)
    (Printf.sprintf "max=%d budget=%d n=%d" cold_max_probes budget n);
  Array.sort Int64.compare lat;
  let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
  let speedup = Int64.to_float build_ns /. Int64.to_float (Int64.max p50 1L) in
  if full then
    gate "point query >= 100x cheaper than full build"
      (speedup >= 100.)
      (Printf.sprintf "build=%Ldns p50=%Ldns n=%d" build_ns p50 n);
  (* ---- warm pass: Zipfian replay over a pooled working set ---- *)
  let pool = Array.init (if full then 2_048 else 128) (fun _ -> random_edge rng g) in
  let q_warm = if full then 20_000 else 2_000 in
  let warm_queries =
    Array.init q_warm (fun _ -> pool.(zipf_rank rng (Array.length pool)))
  in
  let ow = Oracle.create (Adj.of_static g) ~seed ~delta in
  Oracle.reset_probes ow;
  Array.iter (fun (u, v) -> ignore (Oracle.in_gdelta ow ~u ~v)) warm_queries;
  let warm_mean_probes =
    float_of_int (Oracle.probes ow) /. float_of_int q_warm
  in
  let s = Oracle.stats ow in
  let hits = s.Oracle.edge_cache.Cache.hits
  and misses = s.Oracle.edge_cache.Cache.misses in
  let hit_ratio = float_of_int hits /. float_of_int (Int.max 1 (hits + misses)) in
  if full then
    gate "Zipfian warm replay cuts probes/query >= 10x"
      (cold_mean_probes >= 10. *. warm_mean_probes)
      (Printf.sprintf "cold=%.1f warm=%.1f" cold_mean_probes warm_mean_probes)
  else
    gate "warm replay cheaper than cold"
      (warm_mean_probes < cold_mean_probes)
      (Printf.sprintf "cold=%.1f warm=%.1f" cold_mean_probes warm_mean_probes);
  let mm_mean_probes, mm_max_probes = mm_row ~full ~n ~delta in
  [
    Table.cell_i n;
    Table.cell_i (Graph.m g);
    Table.cell_i delta;
    Table.cell_f (Int64.to_float build_ns /. 1e6);
    Table.cell_f cold_mean_probes;
    Table.cell_i cold_max_probes;
    Table.cell_f (Int64.to_float p50 /. 1e3);
    Table.cell_f (Int64.to_float p99 /. 1e3);
    Table.cell_f speedup;
    Table.cell_f warm_mean_probes;
    Table.cell_f hit_ratio;
    Table.cell_f mm_mean_probes;
    Table.cell_i mm_max_probes;
    Table.cell_i (q_cold + q_warm);
  ]

let run ~full () =
  let t =
    Table.create
      ~title:
        "lca-query (point-query oracle vs materialized G_delta build; cold \
         O(delta)-probe and 100x-crossover gates, Zipfian warm replay)"
      ~columns:
        [
          "n"; "m"; "delta"; "build-ms"; "cold-probes/q"; "cold-probes-max";
          "cold-p50-us"; "cold-p99-us"; "speedup-vs-build"; "warm-probes/q";
          "memo-hit-ratio"; "mm-probes/q"; "mm-probes-max"; "queries";
        ]
  in
  let sizes =
    (* two sizes per mode: the probe columns must not move with n *)
    if full then [ (25_000, 1_250_000, 32); (100_000, 5_000_000, 32) ]
    else [ (1_000, 10_000, 8); (4_000, 40_000, 8) ]
  in
  List.iter (fun (n, m, delta) -> Table.add_row t (row ~full ~n ~m ~delta)) sizes;
  Experiments.emit t
