(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe               - all experiments + micro-benches
     dune exec bench/main.exe -- e6 e9      - only the named experiments
     dune exec bench/main.exe -- micro      - micro-benches (smoke-size
                                              construction rows)
     dune exec bench/main.exe -- construction - micro-benches with the full
                                              100k-vertex / ~5M-edge
                                              construction-path rows
     dune exec bench/main.exe -- smoke      - construction rows only, tiny
                                              sizes (the dune runtest hook)
     dune exec bench/main.exe -- fault_sweep - fault-injection degradation
                                              sweep (drop rate x retries)
     dune exec bench/main.exe -- fault-smoke - one asserted fault cell
                                              (the dune runtest hook)
     dune exec bench/main.exe -- crash_soak  - crash-recover-verify soak of
                                              the durable dynamic pipeline
     dune exec bench/main.exe -- crash-smoke - the same soak at smoke size,
                                              >=200 seeded crash points
                                              (the dune runtest hook)
     dune exec bench/main.exe -- msgr-smoke  - .msgr save / mmap-reopen at
                                              ~1M edges with the O(1)-ish
                                              open gate (make bench-smoke)
     dune exec bench/main.exe -- msgr-smoke-small - the same legs at
                                              runtest size (the dune
                                              runtest hook)
     dune exec bench/main.exe -- serve-load  - load generator against a
                                              forked mspar serve (8 conns,
                                              >=100k ops, p50/p99 +
                                              updates/sec, zero acked loss)
     dune exec bench/main.exe -- serve-load-smoke - the same at runtest size
     dune exec bench/main.exe -- serve-faults - socket fault injection:
                                              hostile frames, backpressure,
                                              seeded kill -9 crash points
                                              (recovery must match the
                                              uncrashed run bit-for-bit),
                                              SIGTERM drain
     dune exec bench/main.exe -- serve-faults-smoke - one leg per family
                                              (the dune runtest hook)
     dune exec bench/main.exe -- serve-smoke - SIGTERM-mid-load drain
                                              contract only (the dune
                                              runtest hook)
     dune exec bench/main.exe -- serve-replication - hot-standby WAL
                                              shipping: kill -9 failover
                                              with Promote + client
                                              rediscovery, replica crash
                                              catch-up, epoch fencing,
                                              slow-follower lag
     dune exec bench/main.exe -- replication-smoke - failover + fencing
                                              legs at runtest size (the
                                              dune runtest hook)
     dune exec bench/main.exe -- lca-query   - point-query oracle vs the
                                              materialized G_Delta build at
                                              100k vertices: cold O(delta)
                                              probe gate, 100x crossover,
                                              Zipfian warm-replay >=10x
     dune exec bench/main.exe -- lca-smoke   - the same gates (weakened
                                              warm gate) at tiny sizes
                                              (the dune runtest hook)

   serve-load / serve-load-smoke also accept --query-frac F (0..0.95):
   reshape the same total action count into an F-fraction point-query
   workload, reporting update and query latencies separately.

   Experiment ids correspond to DESIGN.md's experiment index; every table
   regenerates the quantitative content of one claim of the paper. *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --csv DIR: also write each table as <DIR>/<id>.csv *)
  let args =
    match args with
    | "--csv" :: dir :: rest ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Experiments.csv_dir := Some dir;
        rest
    | args -> args
  in
  (* --query-frac F: mixed-workload knob for the serve-load benches *)
  let query_frac = ref None in
  let args =
    let rec strip = function
      | "--query-frac" :: f :: rest ->
          query_frac := Some (float_of_string f);
          strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let query_frac = !query_frac in
  let wants name =
    (* exact id, or a prefix ending at the id's underscore: "e6" selects
       e6_sequential but not e11_ablations *)
    let matches a =
      a = name
      || (String.length a < String.length name
         && String.sub name 0 (String.length a) = a
         && name.[String.length a] = '_')
    in
    args = [] || List.exists matches args
  in
  let ran = ref 0 in
  List.iter
    (fun (name, f) ->
      if wants name then begin
        incr ran;
        f ()
      end)
    Experiments.all;
  if wants "micro" then begin
    incr ran;
    Micro.run ()
  end;
  if wants "fault_sweep" then begin
    incr ran;
    Fault_sweep.run ()
  end;
  if wants "crash_soak" then begin
    incr ran;
    Crash_soak.run ()
  end;
  (* the heavy full-size construction rows and the tiny smoke run must be
     asked for by name — they are not part of the default sweep *)
  let explicit name = List.mem name args in
  if explicit "construction" then begin
    incr ran;
    Micro.run ~construction:`Full ()
  end;
  if explicit "smoke" then begin
    incr ran;
    Micro.smoke ()
  end;
  if explicit "fault-smoke" then begin
    incr ran;
    Fault_sweep.smoke ()
  end;
  if explicit "crash-smoke" then begin
    incr ran;
    Crash_soak.smoke ()
  end;
  if explicit "msgr-smoke" then begin
    incr ran;
    Msgr_smoke.run ~full:true ()
  end;
  if explicit "msgr-smoke-small" then begin
    incr ran;
    Msgr_smoke.run ~full:false ()
  end;
  (* the serve benches fork real server processes, so they also must be
     asked for by name and never join the default sweep *)
  if explicit "serve-load" then begin
    incr ran;
    Serve_load.run ?query_frac ()
  end;
  if explicit "serve-load-smoke" then begin
    incr ran;
    Serve_load.smoke ?query_frac ()
  end;
  if explicit "serve-faults" then begin
    incr ran;
    Serve_faults.run ()
  end;
  if explicit "serve-faults-smoke" then begin
    incr ran;
    Serve_faults.smoke ()
  end;
  if explicit "serve-smoke" then begin
    incr ran;
    Serve_faults.drain_smoke ()
  end;
  if explicit "serve-replication" then begin
    incr ran;
    Serve_replication.run ()
  end;
  if explicit "replication-smoke" then begin
    incr ran;
    Serve_replication.smoke ()
  end;
  if explicit "lca-query" then begin
    incr ran;
    Lca_query.run ~full:true ()
  end;
  if explicit "lca-smoke" then begin
    incr ran;
    Lca_query.run ~full:false ()
  end;
  if !ran = 0 then begin
    prerr_endline "no experiment matched; available:";
    List.iter (fun (name, _) -> Printf.eprintf "  %s\n" name) Experiments.all;
    prerr_endline "  micro";
    prerr_endline "  fault_sweep";
    prerr_endline "  crash_soak";
    prerr_endline "  construction";
    prerr_endline "  smoke";
    prerr_endline "  fault-smoke";
    prerr_endline "  crash-smoke";
    prerr_endline "  msgr-smoke";
    prerr_endline "  msgr-smoke-small";
    prerr_endline "  serve-load";
    prerr_endline "  serve-load-smoke";
    prerr_endline "  serve-faults";
    prerr_endline "  serve-faults-smoke";
    prerr_endline "  serve-smoke";
    prerr_endline "  serve-replication";
    prerr_endline "  replication-smoke";
    prerr_endline "  lca-query";
    prerr_endline "  lca-smoke";
    exit 1
  end
