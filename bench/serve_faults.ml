(* Socket fault-injection harness for `mspar serve`.

   Protocol legs poke a live server with hostile byte streams — flipped
   CRCs, oversized frames, junk, truncation, slowloris dribble — and
   assert both halves of the contract: the offender is dropped, and a
   healthy connection opened next to it keeps getting served.

   Crash legs kill -9 the server (via the seeded --crash-after-ops hook,
   which _exit(137)s after the Nth applied update, before the ack is
   flushed), restart it in recovery mode, resend the un-acked request id
   over a fresh connection, and require the final Checksum digest to
   equal an uncrashed in-process reference bit-for-bit.

   The drain leg is the serve-smoke: SIGTERM mid-load must exit 0,
   leave an audit-clean journal, and lose zero acknowledged updates. *)

open Mspar_prelude
open Mspar_dynamic
open Mspar_server

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "mspar-%s-%d.sock" name (Unix.getpid ()))

(* ---------- raw socket access (bypasses Client's framing) ---------- *)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let raw_send fd s =
  let b = Bytes.of_string s in
  let n = ref 0 in
  while !n < Bytes.length b do
    n := !n + Unix.write fd b !n (Bytes.length b - !n)
  done

(* True iff the peer has closed (read returns 0 / reset) within timeout. *)
let closed_by_server ?(timeout = 2.0) fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then false
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> go ()
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> true
          | _ -> go ()
          | exception
              Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              true)
  in
  (try go () with Unix.Unix_error (Unix.EINTR, _, _) -> false)

let frame_of req =
  let body = Buffer.create 32 in
  Wire.encode_request body req;
  let out = Buffer.create 64 in
  Codec.Frames.encode out (Buffer.contents body);
  Buffer.contents out

let healthy_ping addr what =
  let c = Serve_util.await addr in
  (match Client.request c Wire.Ping with
  | Ok Wire.Ok -> ()
  | Ok _ | Error _ ->
      failwith (what ^ ": healthy client no longer served"));
  Client.close c

(* ------------------------------ legs ------------------------------ *)

type leg = { name : string; run : unit -> unit }

let protocol_legs () =
  let dir = Serve_util.fresh_dir "serve-faults-proto" in
  let path = sock_path "faults-proto" in
  let addr = Wire.Unix_path path in
  let cfg = Serve_util.config ~n:64 ~seed:3 in
  (* small limits so the hostile legs trip them quickly *)
  let tune c =
    {
      c with
      Server.max_frame = 256;
      Server.frame_timeout = 0.3;
      Server.idle_timeout = 10.0;
    }
  in
  let pid = Serve_util.fork_server ~tune ~fresh:true ~dir ~addr cfg in
  (Serve_util.await addr |> fun c -> Client.close c);
  let legs =
    [
      {
        name = "bad-crc";
        run =
          (fun () ->
            let fd = raw_connect path in
            let f = Bytes.of_string (frame_of Wire.Ping) in
            let last = Bytes.length f - 1 in
            Bytes.set f last (Char.chr (Char.code (Bytes.get f last) lxor 0xFF));
            raw_send fd (Bytes.to_string f);
            assert (closed_by_server fd);
            Unix.close fd;
            healthy_ping addr "bad-crc");
      };
      {
        name = "oversized-frame";
        run =
          (fun () ->
            let fd = raw_connect path in
            let out = Buffer.create 1024 in
            (* body larger than the server's max_frame of 256 *)
            Codec.Frames.encode out (String.make 1024 'x');
            raw_send fd (Buffer.contents out);
            assert (closed_by_server fd);
            Unix.close fd;
            healthy_ping addr "oversized-frame");
      };
      {
        name = "junk-bytes";
        run =
          (fun () ->
            let fd = raw_connect path in
            (* nine 0xFF bytes: an over-long uvarint, unambiguous junk *)
            raw_send fd (String.make 16 '\xff');
            assert (closed_by_server fd);
            Unix.close fd;
            healthy_ping addr "junk-bytes");
      };
      {
        name = "truncated-frame-disconnect";
        run =
          (fun () ->
            let fd = raw_connect path in
            let f = frame_of (Wire.Hello 9) in
            raw_send fd (String.sub f 0 (String.length f - 2));
            Unix.close fd;
            (* nothing to assert on the dead socket — the server must
               simply still be there for everyone else *)
            healthy_ping addr "truncated-frame-disconnect");
      };
      {
        name = "slowloris";
        run =
          (fun () ->
            let fd = raw_connect path in
            let f = frame_of (Wire.Hello 9) in
            (* one byte, then stall past frame_timeout = 0.3 s *)
            raw_send fd (String.sub f 0 1);
            assert (closed_by_server ~timeout:3.0 fd);
            Unix.close fd;
            healthy_ping addr "slowloris");
      };
    ]
  in
  (legs, fun () ->
    match Serve_util.stop_server pid with
    | Unix.WEXITED 0 -> ()
    | _ -> failwith "protocol server did not drain cleanly")

let busy_leg () =
  {
    name = "busy-backpressure";
    run =
      (fun () ->
        let dir = Serve_util.fresh_dir "serve-faults-busy" in
        let path = sock_path "faults-busy" in
        let addr = Wire.Unix_path path in
        let cfg = Serve_util.config ~n:64 ~seed:5 in
        let tune c = { c with Server.max_pending = 1 } in
        let pid = Serve_util.fork_server ~tune ~fresh:true ~dir ~addr cfg in
        (Serve_util.await addr |> fun c -> Client.close c);
        (* all 8 pings in ONE write syscall so they land in a single
           server read — with max_pending = 1 that round must serve one
           and answer Busy for the rest; frame-by-frame sends could race
           the 50 ms rounds and never trip the budget *)
        let burst = 8 in
        let one = frame_of Wire.Ping in
        let fd = raw_connect path in
        raw_send fd (String.concat "" (List.init burst (fun _ -> one)));
        let frames = Codec.Frames.create () in
        let chunk = Bytes.create 4096 in
        let oks = ref 0 and busy = ref 0 in
        let got = ref 0 in
        while !got < burst do
          (match Codec.Frames.next frames with
          | `Frame body -> (
              incr got;
              match Wire.decode_response body with
              | Ok Wire.Ok -> incr oks
              | Ok (Wire.Busy ms) ->
                  assert (ms > 0);
                  incr busy
              | Ok _ | Error _ -> failwith "busy: unexpected response")
          | `Corrupt msg -> failwith ("busy: corrupt stream: " ^ msg)
          | `Need_more -> (
              match Unix.select [ fd ] [] [] 5.0 with
              | [], _, _ -> failwith "busy: timeout"
              | _ -> (
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> failwith "busy: server hung up"
                  | n ->
                      Codec.Frames.feed frames (Bytes.sub_string chunk 0 n))))
        done;
        assert (!oks >= 1 && !busy >= 1 && !oks + !busy = burst);
        Unix.close fd;
        match Serve_util.stop_server pid with
        | Unix.WEXITED 0 -> ()
        | _ -> failwith "busy server did not drain cleanly");
  }

(* One crash leg: run [ops] through a server that kill -9s itself after
   [crash_after] applied updates, restart in recovery mode, resend the
   lost rid, and compare the final digest against the uncrashed
   reference bit-for-bit. *)
let crash_leg ~sync_every ~crash_after ~seed =
  {
    name = Printf.sprintf "crash-k%d-sync%d" crash_after sync_every;
    run =
      (fun () ->
        let n = 64 and count = 600 and client = 7 in
        let cfg = Serve_util.config ~n ~seed in
        let rng = Rng.create (seed * 131) in
        let ops = Serve_util.make_ops rng ~n ~count in
        let dir =
          Serve_util.fresh_dir (Printf.sprintf "serve-crash-%d" crash_after)
        in
        let path = sock_path (Printf.sprintf "faults-crash-%d" crash_after) in
        let addr = Wire.Unix_path path in
        let pid =
          ref
            (Serve_util.fork_server ~sync_every ~fresh:true ~dir ~addr
               ~crash_after_ops:crash_after cfg)
        in
        let conn = ref (Serve_util.await addr) in
        Serve_util.hello !conn client;
        let crashes = ref 0 in
        let req_of i op =
          let rid = i + 1 in
          match op with
          | Serve_util.Ins (u, v) -> Wire.Insert { rid; u; v }
          | Serve_util.Del (u, v) -> Wire.Delete { rid; u; v }
        in
        let rec deliver i op =
          match Client.request !conn (req_of i op) with
          | Ok (Wire.Ack _) -> ()
          | Ok (Wire.Busy ms) ->
              Unix.sleepf (float_of_int ms /. 1000.);
              deliver i op
          | Ok _ -> failwith "crash leg: unexpected response"
          | Error _ ->
              (* server died mid-request: reap the 137, restart in
                 recovery mode, reconnect, resend the SAME rid *)
              incr crashes;
              (match Unix.waitpid [] !pid with
              | _, Unix.WEXITED 137 -> ()
              | _ -> failwith "crash leg: expected _exit 137");
              Client.close !conn;
              pid :=
                Serve_util.fork_server ~sync_every ~fresh:false ~dir ~addr cfg;
              conn := Serve_util.await addr;
              Serve_util.hello !conn client;
              deliver i op
        in
        Array.iteri deliver ops;
        assert (!crashes = 1);
        let got = Serve_util.digest !conn in
        Client.close !conn;
        (match Serve_util.stop_server !pid with
        | Unix.WEXITED 0 -> ()
        | _ -> failwith "crash leg: recovered server did not drain cleanly");
        let ref_dir =
          Serve_util.fresh_dir (Printf.sprintf "serve-crash-ref-%d" crash_after)
        in
        let expect = Serve_util.reference_digest ~dir:ref_dir ~client cfg ops in
        if not (Serve_util.digest_eq got expect) then
          failwith
            (Printf.sprintf "crash leg digest mismatch: got %s, want %s"
               (Serve_util.pp_digest got)
               (Serve_util.pp_digest expect)));
  }

(* serve-smoke: SIGTERM mid-load → exit 0, audit-clean journal, zero
   acknowledged-update loss (recovered state must extend the acked
   prefix by only the in-flight suffix). *)
let drain_leg () =
  {
    name = "sigterm-drain";
    run =
      (fun () ->
        let n = 64 and count = 400 and client = 3 and seed = 11 in
        let cfg = Serve_util.config ~n ~seed in
        let rng = Rng.create (seed * 977) in
        let ops = Serve_util.make_ops rng ~n ~count in
        let dir = Serve_util.fresh_dir "serve-drain" in
        let path = sock_path "faults-drain" in
        let addr = Wire.Unix_path path in
        let pid =
          Serve_util.fork_server ~sync_every:4 ~fresh:true ~dir ~addr cfg
        in
        let conn = Serve_util.await addr in
        Serve_util.hello conn client;
        let acked = ref 0 and sent = ref 0 in
        (try
           Array.iteri
             (fun i op ->
               let rid = i + 1 in
               let req =
                 match op with
                 | Serve_util.Ins (u, v) -> Wire.Insert { rid; u; v }
                 | Serve_util.Del (u, v) -> Wire.Delete { rid; u; v }
               in
               sent := rid;
               let rec deliver () =
                 match Client.request conn req with
                 | Ok (Wire.Ack _) -> acked := rid
                 | Ok Wire.Draining | Error _ -> raise Exit
                 | Ok (Wire.Busy ms) ->
                     Unix.sleepf (float_of_int ms /. 1000.);
                     deliver ()
                 | Ok _ -> failwith "drain leg: unexpected response"
               in
               deliver ();
               (* mid-load, not before and not after: fire the TERM *)
               if rid = 150 then Unix.kill pid Sys.sigterm)
             ops
         with Exit -> ());
        Client.close conn;
        (match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, _ -> failwith "drain leg: server did not exit 0 on SIGTERM");
        (* journal must recover, audit clean, with every acked update *)
        (match Durable.recover dir with
        | Error msg -> failwith ("drain leg: recover: " ^ msg)
        | Ok d ->
            (match Durable.audit_now d with
            | [] -> ()
            | problems ->
                failwith
                  ("drain leg: audit: " ^ String.concat "; " problems));
            let got = Serve_util.durable_digest d in
            Durable.close d;
            (* extension equivalence: the recovered state equals the
               reference after ops 1..k for exactly one k in
               [acked, sent] — acked updates can never be lost, and
               nothing past the in-flight suffix can appear *)
            let ref_dir = Serve_util.fresh_dir "serve-drain-ref" in
            let rd = Durable.create ~sync_every:1 ~dir:ref_dir cfg in
            let matched = ref None in
            Array.iteri
              (fun i op ->
                let rid = i + 1 in
                if rid <= !sent then begin
                  Serve_util.apply_req rd ~client ~rid op;
                  if rid >= !acked && !matched = None then
                    if Serve_util.digest_eq got (Serve_util.durable_digest rd)
                    then matched := Some rid
                end)
              ops;
            Durable.close rd;
            (match !matched with
            | Some _ -> ()
            | None ->
                failwith
                  (Printf.sprintf
                     "drain leg: recovered state (%s) matches no prefix in \
                      [%d,%d]"
                     (Serve_util.pp_digest got) !acked !sent)));
        (* the drain also snapshots; make sure one landed *)
        let has_snap =
          Array.exists
            (fun f -> String.length f >= 5 && String.sub f 0 5 = "snap-")
            (Sys.readdir dir)
        in
        assert has_snap);
  }

let run_legs legs =
  let t = Table.create ~title:"serve-faults (socket fault injection)"
      ~columns:[ "leg"; "result" ] in
  List.iter
    (fun leg ->
      Printf.printf "  serve-faults: %s...%!" leg.name;
      leg.run ();
      Printf.printf " ok\n%!";
      Table.add_row t [ leg.name; "ok" ])
    legs;
  Experiments.emit t

(* Full sweep: protocol legs + busy + three seeded crash legs + drain. *)
let run () =
  Serve_util.ignore_sigpipe ();
  let proto, stop_proto = protocol_legs () in
  run_legs
    (proto
    @ [ busy_leg () ]
    @ [
        crash_leg ~sync_every:1 ~crash_after:50 ~seed:21;
        crash_leg ~sync_every:64 ~crash_after:200 ~seed:22;
        crash_leg ~sync_every:1 ~crash_after:450 ~seed:23;
      ]
    @ [ drain_leg () ]);
  stop_proto ()

(* serve-faults-smoke: one of each family, fast enough for runtest. *)
let smoke () =
  Serve_util.ignore_sigpipe ();
  let proto, stop_proto = protocol_legs () in
  let quick =
    List.filter (fun l -> l.name = "bad-crc" || l.name = "junk-bytes") proto
  in
  run_legs
    (quick @ [ busy_leg (); crash_leg ~sync_every:4 ~crash_after:60 ~seed:29 ]);
  stop_proto ()

(* serve-smoke: just the SIGTERM drain contract. *)
let drain_smoke () =
  Serve_util.ignore_sigpipe ();
  run_legs [ drain_leg () ]
