(** SARIF 2.1.0 rendering for GitHub code-scanning ingestion.

    One run, driver ["msparlint"], every catalogued rule listed under
    [tool.driver.rules], one [result] per live finding with a
    [physicalLocation] (1-based line and column).  The schema mapping is
    documented in doc/LINTS.md. *)

val render :
  rules:(string * string) list -> findings:Lint_types.finding list -> string
(** [rules] pairs rule codes with their one-line descriptions; [findings]
    are the live (post-baseline) findings.  Returns the serialized SARIF
    log, newline-terminated. *)
