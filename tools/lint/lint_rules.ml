(* The msparlint rule set.

   Each rule is grounded in a paper invariant or a past regression (see
   doc/LINTS.md for the catalogue):

   MSP001  seeded determinism   — no Stdlib.Random outside lib/prelude/rng.ml
   MSP002  hot-path monomorphy  — no polymorphic compare/min/max/hash in the
                                  hot directories (the PR 1 packed-CSR bug)
   MSP003  CONGEST fidelity     — distsim protocols learn about remote
                                  vertices only through messages (Thm 3.2/3.3
                                  accounting), approximated as a forbidden
                                  adjacency-accessor list
   MSP004  integer budgets      — no float log/** feeding int rounding (the
                                  PR 2 ceil_log2 misrounding bug)
   MSP005  no unsafe casts      — Obj/Marshal are banned outright
   MSP006  interface discipline — every lib/ module has a .mli
   MSP007  raise contracts      — exported raising functions are _exn-named
                                  or carry @raise in their .mli doc
   MSP008  pooled parallelism   — Domain.spawn only inside the domain pool
                                  (lib/prelude/pool.ml); everything else runs
                                  on a Pool.t so spawn cost stays amortised
   MSP009  durability funnel    — raw file I/O (open_out / open_in /
                                  Unix.openfile) in lib/ only inside the
                                  journal (lib/prelude/journal.ml) and
                                  Graph_io, so framing/CRC/fsync decisions
                                  stay in one reviewable place
   MSP010  off-heap bounds      — raw Bigarray unsafe_get/unsafe_set only
                                  in lib/prelude (the Bigvec wrapper) and
                                  lib/graph/graph.ml, where every index is
                                  derived from a validated offsets lane;
                                  unlike a heap array an out-of-bounds
                                  Bigarray access is a silent wild read
   MSP011  socket funnel        — raw Unix socket / file-descriptor I/O
                                  (socket, bind, listen, accept, connect,
                                  read, write, select, ...) in lib/ only
                                  inside lib/server (the reactor and its
                                  client), the journal, and Graph_io;
                                  everywhere else byte-level I/O bypasses
                                  the frame/CRC/backpressure discipline

   All detection is on the Parsetree (no typing pass), so the rules are
   deliberately syntactic approximations; [@lint.allow "MSPxxx"] exists for
   the cases the approximation gets wrong. *)

open Parsetree

type mli_info = {
  exported : (string, bool) Hashtbl.t;
      (* val name -> its doc comment mentions @raise *)
}

let contains_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
  nl = 0 || go 0

let doc_mentions_raise attrs =
  List.exists
    (fun a ->
      match a.attr_name.txt with
      | "ocaml.doc" | "doc" -> (
          match a.attr_payload with
          | PStr
              [
                {
                  pstr_desc =
                    Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                  _;
                };
              ] ->
              contains_substring ~needle:"@raise" s
          | _ -> false)
      | _ -> false)
    attrs

let mli_info_of_signature sg =
  let exported = Hashtbl.create 32 in
  let open Ast_iterator in
  let signature_item it si =
    (match si.psig_desc with
    | Psig_value vd ->
        Hashtbl.replace exported vd.pval_name.txt (doc_mentions_raise vd.pval_attributes)
    | _ -> ());
    default_iterator.signature_item it si
  in
  let it = { default_iterator with signature_item } in
  it.signature it sg;
  { exported }

type ctx = {
  cfg : Lint_config.t;
  file : string;
  hot : bool;
  congest : bool;
  in_lib : bool;
  mli : mli_info option;
  mutable acc : Lint_types.finding list;
}

let add ctx ~code ~loc message =
  if Lint_config.rule_enabled ctx.cfg ~code ~file:ctx.file then
    ctx.acc <- Lint_types.of_location ~file:ctx.file ~code ~message loc :: ctx.acc

let path_of_lident lid =
  match Longident.flatten lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

(* ---------------------------------------------------------------- *)
(* identifier classification                                        *)
(* ---------------------------------------------------------------- *)

let is_random_path p = String.starts_with ~prefix:"Random." p || String.starts_with ~prefix:"Stdlib.Random." p

let is_unsafe_path p =
  String.starts_with ~prefix:"Obj." p
  || String.starts_with ~prefix:"Marshal." p
  || String.starts_with ~prefix:"Stdlib.Obj." p
  || String.starts_with ~prefix:"Stdlib.Marshal." p

let is_poly_compare_path p =
  match p with
  | "compare" | "min" | "max" | "Stdlib.compare" | "Stdlib.min" | "Stdlib.max" | "Hashtbl.hash"
  | "Stdlib.Hashtbl.hash" ->
      true
  | _ -> false

let forbidden_module_path p =
  match p with
  | "Random" | "Stdlib.Random" -> Some ("MSP001", "module Random (seeded determinism: use Mspar_prelude.Rng)")
  | "Obj" | "Stdlib.Obj" -> Some ("MSP005", "module Obj is forbidden")
  | "Marshal" | "Stdlib.Marshal" -> Some ("MSP005", "module Marshal is forbidden")
  | _ -> None

let is_domain_spawn_path p =
  match p with "Domain.spawn" | "Stdlib.Domain.spawn" -> true | _ -> false

let is_file_io_path p =
  match p with
  | "open_out" | "open_out_bin" | "open_out_gen" | "open_in" | "open_in_bin"
  | "open_in_gen" | "Stdlib.open_out" | "Stdlib.open_out_bin"
  | "Stdlib.open_out_gen" | "Stdlib.open_in" | "Stdlib.open_in_bin"
  | "Stdlib.open_in_gen" | "Unix.openfile" | "UnixLabels.openfile" ->
      true
  | _ -> false

(* Raw Unix socket / file-descriptor I/O: the syscalls through which
   bytes enter or leave the process outside the durability funnel.
   [Unix.openfile] is MSP009's business; this list is the socket surface
   plus the read/write/select family, which is only meaningful on an fd
   someone already opened raw. *)
let is_socket_io_path p =
  let base =
    if String.starts_with ~prefix:"Unix." p then
      Some (String.sub p 5 (String.length p - 5))
    else if String.starts_with ~prefix:"UnixLabels." p then
      Some (String.sub p 11 (String.length p - 11))
    else if String.starts_with ~prefix:"Stdlib.Unix." p then
      Some (String.sub p 12 (String.length p - 12))
    else None
  in
  match base with
  | None -> false
  | Some f -> (
      match f with
      | "socket" | "bind" | "listen" | "accept" | "connect" | "read"
      | "write" | "write_substring" | "single_write"
      | "single_write_substring" | "recv" | "send" | "send_substring"
      | "recvfrom" | "sendto" | "select" | "pipe" | "socketpair"
      | "shutdown" | "setsockopt" | "getsockopt" ->
          true
      | _ -> false)

(* Raw Bigarray unsafe accessors ([Bigarray.Array1.unsafe_get] and kin,
   at any qualification depth).  [Bigvec.unsafe_get] is deliberately not
   matched: the wrapper is the sanctioned surface and states its
   precondition. *)
let is_bigarray_unsafe_path p =
  (String.ends_with ~suffix:".unsafe_get" p || String.ends_with ~suffix:".unsafe_set" p)
  && (contains_substring ~needle:"Array1." p
     || contains_substring ~needle:"Array2." p
     || contains_substring ~needle:"Array3." p
     || contains_substring ~needle:"Genarray." p
     || contains_substring ~needle:"Bigarray." p)

let check_ident ctx p loc =
  if is_random_path p then
    add ctx ~code:"MSP001" ~loc
      (Printf.sprintf "%s: Stdlib.Random breaks seeded determinism; thread a Mspar_prelude.Rng.t instead" p);
  if is_unsafe_path p then
    add ctx ~code:"MSP005" ~loc (Printf.sprintf "%s: Obj/Marshal are forbidden" p);
  (if ctx.hot && is_poly_compare_path p then
     let base =
       match String.rindex_opt p '.' with
       | Some i -> String.sub p (i + 1) (String.length p - i - 1)
       | None -> p
     in
     let hint =
       if String.equal base "hash" then "hash a concrete key representation instead"
       else Printf.sprintf "use Int.%s / Float.%s or an explicit comparator" base base
     in
     add ctx ~code:"MSP002" ~loc
       (Printf.sprintf "polymorphic %s in a hot-path directory; %s" p hint));
  if is_domain_spawn_path p then
    add ctx ~code:"MSP008" ~loc
      (Printf.sprintf
         "%s: raw domain spawning is reserved for the pool (lib/prelude/pool.ml); run the work \
          on a Mspar_prelude.Pool.t so the spawn cost is paid once per process"
         p);
  if ctx.in_lib && is_file_io_path p then
    add ctx ~code:"MSP009" ~loc
      (Printf.sprintf
         "%s: raw file I/O in lib/ is reserved for the durability layer (lib/prelude/journal.ml) \
          and Graph_io; route bytes through Mspar_prelude.Journal so framing, CRC and fsync \
          policy stay in one place"
         p);
  if ctx.in_lib && is_socket_io_path p then
    add ctx ~code:"MSP011" ~loc
      (Printf.sprintf
         "%s: raw Unix socket/fd I/O in lib/ is reserved for lib/server, the journal, and \
          Graph_io; anywhere else it bypasses the frame + CRC + backpressure discipline — go \
          through Mspar_server or Mspar_prelude.Journal"
         p);
  if is_bigarray_unsafe_path p then
    add ctx ~code:"MSP010" ~loc
      (Printf.sprintf
         "%s: raw Bigarray unsafe access outside the blessed lanes; an out-of-bounds index here \
          is a silent wild read, not an exception — go through Mspar_prelude.Bigvec, or keep the \
          index discipline inside lib/graph/graph.ml"
         p);
  if ctx.congest && List.exists (String.equal p) ctx.cfg.congest_forbidden then
    add ctx ~code:"MSP003" ~loc
      (Printf.sprintf
         "%s: CONGEST protocols may only learn about remote vertices through Network messages \
          (Thm 3.2/3.3 accounting); route this through Network or annotate protocol-local reads"
         p)

(* ---------------------------------------------------------------- *)
(* MSP002: structural =/<> on syntactically composite operands       *)
(* ---------------------------------------------------------------- *)

let is_composite e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | _ -> false

let check_poly_eq ctx f args =
  if not ctx.hot then ()
  else
    match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match path_of_lident txt with
      | "=" | "<>" | "Stdlib.=" | "Stdlib.<>" ->
          let composite =
            List.exists (fun (lbl, a) -> (match lbl with Asttypes.Nolabel -> true | _ -> false) && is_composite a) args
          in
          if composite then
            add ctx ~code:"MSP002" ~loc:f.pexp_loc
              "structural =/<> on a composite value in a hot-path directory; compare fields \
               monomorphically"
      | _ -> ())
  | _ -> ()

(* ---------------------------------------------------------------- *)
(* MSP004: float log feeding integer rounding                        *)
(* ---------------------------------------------------------------- *)

let is_round_path p =
  match p with
  | "int_of_float" | "truncate" | "Stdlib.int_of_float" | "Stdlib.truncate" | "Float.to_int" -> true
  | _ -> false

let is_log_path p =
  match p with
  | "log" | "log2" | "log10" | "exp" | "**" | "Stdlib.log" | "Stdlib.log10" | "Stdlib.exp"
  | "Stdlib.**" | "Float.log" | "Float.log2" | "Float.log10" | "Float.exp" | "Float.pow" ->
      true
  | _ -> false

exception Found

let expr_mentions_log e =
  let open Ast_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> if is_log_path (path_of_lident txt) then raise Found
    | _ -> ());
    default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  match it.expr it e with () -> false | exception Found -> true

let check_float_round ctx f args =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let p = path_of_lident txt in
      if is_round_path p then begin
        match args with
        | (Asttypes.Nolabel, a) :: _ when expr_mentions_log a ->
            add ctx ~code:"MSP004" ~loc:f.pexp_loc
              (Printf.sprintf
                 "%s over a float log/exp/** expression: float rounding misrounds near powers of \
                  two (the PR 2 ceil_log2 bug); compute integer budgets by shifts"
                 p)
        | _ -> ()
      end
      else
        match p with
        | "/." | "Stdlib./." -> (
            (* log x /. log 2. — the classic float-log2 idiom *)
            match args with
            | (Asttypes.Nolabel, a) :: (Asttypes.Nolabel, b) :: _
              when expr_mentions_log a && expr_mentions_log b ->
                add ctx ~code:"MSP004" ~loc:f.pexp_loc
                  "float log-ratio (log x /. log b) idiom; compute integer logarithms by shifts \
                   (the PR 2 ceil_log2 bug)"
            | _ -> ())
        | _ -> ())
  | _ -> ()

(* ---------------------------------------------------------------- *)
(* MSP007: exported raising functions                                *)
(* ---------------------------------------------------------------- *)

let raising_apply e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      match path_of_lident txt with
      | "failwith" | "Stdlib.failwith" | "invalid_arg" | "Stdlib.invalid_arg" -> true
      | "raise" | "raise_notrace" | "Stdlib.raise" | "Stdlib.raise_notrace" -> (
          match args with
          | (_, { pexp_desc = Pexp_construct ({ txt = exc; _ }, _); _ }) :: _ -> (
              (* [raise Exit] is the local early-exit idiom, not a contract *)
              match path_of_lident exc with "Exit" | "Stdlib.Exit" -> false | _ -> true)
          | _ -> true)
      | _ -> false)
  | _ -> false

(* A raise syntactically under a [try] is assumed caught; handlers still
   count (re-raises escape).  [match ... with exception] is the same
   construct spelled differently: raises in the scrutinee are assumed
   caught by the [exception] arms, raises in any arm's body escape. *)
let rec has_exception_case p =
  match p.ppat_desc with
  | Ppat_exception _ -> true
  | Ppat_or (a, b) -> has_exception_case a || has_exception_case b
  | _ -> false

let body_raises body =
  let open Ast_iterator in
  let expr it e =
    if raising_apply e then raise Found;
    match e.pexp_desc with
    | Pexp_try (_, handlers) -> List.iter (fun c -> it.case it c) handlers
    | Pexp_match (_, cases)
      when List.exists (fun c -> has_exception_case c.pc_lhs) cases ->
        List.iter (fun c -> it.case it c) cases
    | _ -> default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  match it.expr it body with () -> false | exception Found -> true

let rec pattern_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> pattern_name p
  | _ -> None

let check_raise_contract ctx vb =
  match ctx.mli with
  | None -> ()
  | Some info -> (
      match pattern_name vb.pvb_pat with
      | None -> ()
      | Some name -> (
          if not (String.ends_with ~suffix:"_exn" name) then
            match Hashtbl.find_opt info.exported name with
            | Some true (* @raise documented *) | None (* not exported *) -> ()
            | Some false ->
                if body_raises vb.pvb_expr then
                  add ctx ~code:"MSP007" ~loc:vb.pvb_loc
                    (Printf.sprintf
                       "%s can raise but is not _exn-suffixed and its .mli doc has no @raise"
                       name)))

(* ---------------------------------------------------------------- *)
(* the combined pass                                                 *)
(* ---------------------------------------------------------------- *)

let lint_structure cfg ~file ~mli str =
  let ctx =
    {
      cfg;
      file;
      hot = Lint_config.in_hot_dir cfg file;
      congest = Lint_config.in_congest_scope cfg file;
      in_lib = Lint_config.under_prefix ~prefix:"lib" file;
      mli;
      acc = [];
    }
  in
  let open Ast_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident ctx (path_of_lident txt) e.pexp_loc
    | Pexp_apply (f, args) ->
        check_poly_eq ctx f args;
        check_float_round ctx f args
    | _ -> ());
    default_iterator.expr it e
  in
  let module_expr it m =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> (
        match forbidden_module_path (path_of_lident txt) with
        | Some (code, message) -> add ctx ~code ~loc message
        | None -> ())
    | _ -> ());
    default_iterator.module_expr it m
  in
  let value_binding it vb =
    check_raise_contract ctx vb;
    default_iterator.value_binding it vb
  in
  let it = { default_iterator with expr; module_expr; value_binding } in
  it.structure it str;
  ctx.acc
