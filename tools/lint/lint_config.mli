(** msparlint configuration: which rules apply where.

    Directive file syntax (one per line, [#] comments):
    {v
    hot-dir lib/prelude          # MSP002 scope
    congest-dir lib/distsim      # MSP003 scope
    congest-exempt lib/distsim/network.ml
    congest-forbid Graph.iter_neighbors
    probe-dir lib/lca            # MSP014 scope beyond congest-dirs
    require-mli lib              # MSP006 scope
    allow MSP001 lib/prelude/rng.ml   # switch a rule off under a prefix
    v} *)

type t = {
  hot_dirs : string list;
  congest_dirs : string list;
  congest_exempt : string list;
  congest_forbidden : string list;
  probe_dirs : string list;
  require_mli_dirs : string list;
  allows : (string * string) list;
}

exception Config_error of string

val default : t
(** Mirrors the checked-in [tools/lint/msparlint.conf]. *)

val empty : t

val of_string : string -> t
(** Parse directive text. @raise Config_error on a malformed line. *)

val load : string -> t
(** [of_string] over a file's contents.
    @raise Sys_error if unreadable.
    @raise Config_error on a malformed line. *)

val in_hot_dir : t -> string -> bool
val in_congest_scope : t -> string -> bool

val in_probe_scope : t -> string -> bool
(** MSP014 (probe accounting) also applies under [probe_dirs] — the
    oracle layer reads adjacency through uncounted accessors and must
    charge the probe counter in the same function. *)

val requires_mli : t -> string -> bool

val rule_enabled : t -> code:string -> file:string -> bool
(** False when an [allow] directive covers [file] for [code]. *)

val under_prefix : prefix:string -> string -> bool
(** Segment-aware prefix test: ["lib/graph"] covers ["lib/graph/x.ml"] but
    not ["lib/graphics/x.ml"]. *)
