(** Interprocedural rules over the typed AST (see doc/LINTS.md):

    - MSP012 — writes to shared mutable state reachable from more than one
      domain context (Pool worker closures, the Server.run reactor);
    - MSP013 — per-element allocation inside [\[@@hot\]] functions;
    - MSP014 — probe accounting: every uncounted adjacency access in the
      CONGEST simulator must be dominated by a [Graph.add_probes] charge.

    Findings are raw — the driver applies [\[@lint.allow\]] spans via
    {!Lint_engine.suppress_in_file} and then the baseline. *)

type analysis

val prepare : Lint_typed.t list -> analysis
(** Build the call graph once; the three rules share it. *)

val msp012 : Lint_config.t -> analysis -> Lint_types.finding list
val msp013 : Lint_config.t -> analysis -> Lint_types.finding list
val msp014 : Lint_config.t -> analysis -> Lint_types.finding list

val run : Lint_config.t -> Lint_typed.t list -> Lint_types.finding list
(** All three rules, merged and sorted (convenience for tests). *)
