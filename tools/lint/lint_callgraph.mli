(** Intra-package call graph over typed units.

    Nodes are toplevel [let] bindings (including bindings inside nested
    [module M = struct ... end], keyed by the innermost module name), named
    ["Module.binding"].  Edges are resolved [Texp_ident] references from one
    node's body to another node: same-unit references resolve by identifier
    stamp, cross-unit references by {!Lint_typed.norm_path}.  References
    through first-class values are over-approximated the same way — passing
    [f] to [List.iter] still records an edge to [f], which is exactly what a
    reachability analysis wants. *)

type node = {
  key : string;  (** ["Module.binding"] *)
  file : string;
  name : string;  (** binding name without the module prefix *)
  loc : Location.t;
  attrs : Parsetree.attributes;
  body : Typedtree.expression;
}

type t

val build : Lint_typed.t list -> t

val node : t -> string -> node option
val iter_nodes : t -> (node -> unit) -> unit

val resolve_ident : t -> file:string -> Ident.t -> string option
(** Node key for a [Pident] occurring in [file], when the identifier is one
    of that unit's toplevel bindings. *)

val refs_in : t -> file:string -> Typedtree.expression -> (string * int) list
(** Resolved node references inside an expression subtree, with the
    character offset of each occurrence. *)

val callers : t -> string -> string list

val reachable : t -> string list -> (string, unit) Hashtbl.t
(** Keys reachable from [roots] (roots included when they are nodes). *)
