(** The msparlint rule set: a single [Ast_iterator] pass over one
    implementation file.  Rules MSP001–MSP005 and MSP007 live here; MSP006
    (missing .mli) is a file-system property checked by {!Lint_engine}. *)

type mli_info
(** Exported value names of the paired [.mli], with whether each carries an
    [@raise] doc mention (consumed by MSP007). *)

val mli_info_of_signature : Parsetree.signature -> mli_info

val lint_structure :
  Lint_config.t -> file:string -> mli:mli_info option -> Parsetree.structure ->
  Lint_types.finding list
(** Raw findings, unordered, before [@lint.allow] suppression (applied by
    {!Lint_engine}) and before baseline filtering. *)
