(** Typed-AST frontend for the interprocedural rules (MSP012/13/14).

    Two ways to obtain a typed unit:
    - {!load_units} reads the [-bin-annot] [.cmt] files dune emits under
      each root's [.objs]/[.eobjs] directories (also checked under
      [_build/default/<root>] when linting from the repo root);
    - {!typecheck_impl} drives [Typemod.type_structure] over an in-memory
      fixture, which is how the test suite exercises the typed rules
      without a dune build.

    Both produce the same {!t}, so rule logic never cares which frontend
    fed it. *)

type t = {
  file : string;  (** repo-relative source path, e.g. ["lib/core/gdelta.ml"] *)
  modname : string;  (** unwrapped module name, e.g. ["Gdelta"] *)
  str : Typedtree.structure;
}

val norm_path : Path.t -> string
(** Normalise a resolved path to its last two components, stripping dune's
    wrapped-library mangling: both ["Mspar_prelude__Pool.parallel_for_ranges"]
    and a fixture's local [module Pool] yield ["Pool.parallel_for_ranges"];
    ["Stdlib.Array.unsafe_set"] yields ["Array.unsafe_set"].  Single-component
    paths are returned as-is (after demangling). *)

val load_units : roots:string list -> t list
(** All typed implementations whose [cmt_sourcefile] is a [.ml] under one of
    [roots].  Unreadable or interface-only [.cmt]s are skipped; duplicates
    (same source built into several stanzas) keep the first occurrence.
    Deterministic order (sorted by source path). *)

val typecheck_impl : file:string -> string -> (t, string) result
(** Type-check fixture [source] against the standard library alone.
    [Error] carries a compiler diagnostic when the fixture does not parse
    or type-check. *)

val coverage_gaps : sources:string list -> covered:string list -> string list
(** [.ml] files the parsetree pass saw but the typed pass has no unit for,
    sorted.  Pure so the discovery-agreement contract is unit-testable. *)
