(* msparlint — model-fidelity / determinism / hot-path lint for mspar.

   Usage:
     msparlint [--config FILE] [--baseline FILE] [--json | --sarif]
               [--ci] [--timings] [--list-rules] PATH...

   Parses every .ml/.mli under the given paths with compiler-libs and runs
   the MSP001–MSP011 rule set (doc/LINTS.md).  Paths under lib/, bin/ and
   bench/ additionally get the typed pass: the .cmt files dune emitted for
   them are loaded, an intra-package call graph is built, and the
   interprocedural rules MSP012 (domain races), MSP013 (hot-path
   allocation) and MSP014 (probe accounting) run on top.  Exits nonzero
   when any finding is neither [@lint.allow]-suppressed nor covered by the
   baseline file.

   --ci hardens the run for continuous integration: stale baseline entries
   and missing .cmt coverage become errors, and the typed pass is gated to
   30 s wall clock.  --timings prints a per-phase breakdown to stderr. *)

open Msparlint_lib

let rules_summary =
  [
    ("MSP000", "file does not parse");
    ("MSP001", "Stdlib.Random outside lib/prelude/rng.ml (seeded determinism)");
    ("MSP002", "polymorphic compare/min/max/hash in hot-path directories");
    ("MSP003", "direct adjacency access in CONGEST protocol code");
    ("MSP004", "float log/** feeding integer rounding (ceil_log2 bug class)");
    ("MSP005", "Obj/Marshal");
    ("MSP006", "lib/ module without .mli");
    ("MSP007", "exported raising function lacking _exn suffix or @raise doc");
    ("MSP008", "Domain.spawn outside lib/prelude/pool.ml (pooled parallelism)");
    ("MSP009", "raw file I/O in lib/ outside the journal and Graph_io (durability funnel)");
    ("MSP010", "raw Bigarray unsafe access outside Bigvec and the CSR core (off-heap bounds)");
    ("MSP011", "raw Unix socket/fd I/O in lib/ outside lib/server, the journal and Graph_io");
    ("MSP012", "write to shared mutable state reachable from more than one domain context");
    ("MSP013", "per-element allocation inside a [@@hot] function");
    ("MSP014", "uncounted CONGEST adjacency access not dominated by a probe charge");
    ("MSP015", "source file missing from the typed pass (no .cmt found)");
  ]

(* The typed pass covers the trees that run concurrent or hot code; test/
   is deliberately out of scope — test fixtures write captured state from
   pool closures on purpose. *)
let typed_roots = [ "lib"; "bin"; "bench" ]

let typed_pass_budget_s = 30.0

let usage () =
  prerr_endline
    "usage: msparlint [--config FILE] [--baseline FILE] [--json | --sarif] \
     [--ci] [--timings] [--list-rules] PATH...";
  exit 2

let is_typed_root p =
  List.exists
    (fun r -> String.equal p r || Lint_config.under_prefix ~prefix:r p)
    typed_roots

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Apply [@lint.allow] spans to typed findings: group per file, parse that
   file's source (present on disk both in the repo and in _build), filter. *)
let suppress_typed findings =
  let by_file = Hashtbl.create 16 in
  List.iter
    (fun (f : Lint_types.finding) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_file f.file) in
      Hashtbl.replace by_file f.file (f :: prev))
    findings;
  Hashtbl.fold
    (fun file fs acc ->
      let fs = List.rev fs in
      let fs =
        match read_file file with
        | source -> Lint_engine.suppress_in_file ~file ~source fs
        | exception Sys_error _ -> fs
      in
      fs @ acc)
    by_file []

let () =
  let config = ref None in
  let baseline = ref None in
  let json = ref false in
  let sarif = ref false in
  let ci = ref false in
  let timings = ref false in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--config" :: f :: rest ->
        config := Some f;
        parse_args rest
    | "--baseline" :: f :: rest ->
        baseline := Some f;
        parse_args rest
    | "--json" :: rest ->
        json := true;
        parse_args rest
    | "--sarif" :: rest ->
        sarif := true;
        parse_args rest
    | "--ci" :: rest ->
        ci := true;
        parse_args rest
    | "--timings" :: rest ->
        timings := true;
        parse_args rest
    | "--list-rules" :: _ ->
        List.iter (fun (c, d) -> Printf.printf "%s  %s\n" c d) rules_summary;
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "msparlint: unknown option %s\n" arg;
        usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  (match paths with [] -> usage () | _ -> ());
  if !json && !sarif then begin
    prerr_endline "msparlint: --json and --sarif are mutually exclusive";
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "msparlint: no such path: %s\n" p;
        exit 2
      end)
    paths;
  let cfg =
    match !config with
    | None -> Lint_config.default
    | Some f -> (
        try Lint_config.load f
        with Lint_config.Config_error msg ->
          Printf.eprintf "msparlint: %s: %s\n" f msg;
          exit 2)
  in
  let phases = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    phases := (name, Unix.gettimeofday () -. t0) :: !phases;
    r
  in
  let parse_findings =
    timed "parsetree MSP001-011" (fun () -> Lint_engine.lint_paths cfg paths)
  in
  (* typed pass *)
  let typed_t0 = Unix.gettimeofday () in
  let roots = List.filter is_typed_root paths in
  let typed_findings =
    if roots = [] then []
    else begin
      let units = timed "cmt discovery" (fun () -> Lint_typed.load_units ~roots) in
      if units = [] then begin
        Printf.eprintf
          "msparlint: no .cmt files under %s; typed rules (MSP012-014) \
           skipped — run `dune build @check` first\n"
          (String.concat " " roots);
        if !ci then exit 2;
        []
      end
      else begin
        let sources =
          List.filter
            (fun f -> Filename.check_suffix f ".ml")
            (Lint_engine.collect_files roots)
        in
        let covered = List.map (fun (u : Lint_typed.t) -> u.file) units in
        let gaps = Lint_typed.coverage_gaps ~sources ~covered in
        let gap_findings =
          List.map
            (fun file ->
              {
                Lint_types.file;
                line = 1;
                col = 0;
                cnum = 0;
                code = "MSP015";
                message =
                  "no .cmt for this file: the typed rules (MSP012-014) did \
                   not see it; make sure it is attached to a dune stanza";
              })
            gaps
        in
        let analysis =
          timed "call graph" (fun () -> Lint_typed_rules.prepare units)
        in
        let f12 = timed "MSP012 domain-race" (fun () -> Lint_typed_rules.msp012 cfg analysis) in
        let f13 = timed "MSP013 hot-alloc" (fun () -> Lint_typed_rules.msp013 cfg analysis) in
        let f14 = timed "MSP014 probe-accounting" (fun () -> Lint_typed_rules.msp014 cfg analysis) in
        gap_findings @ suppress_typed (f12 @ f13 @ f14)
      end
    end
  in
  let typed_elapsed = Unix.gettimeofday () -. typed_t0 in
  let findings =
    List.sort Lint_types.compare_finding (parse_findings @ typed_findings)
  in
  let base =
    match !baseline with
    | None -> Lint_baseline.of_string ""
    | Some f -> Lint_baseline.load f
  in
  let live, baselined, unused = Lint_baseline.apply base findings in
  if !json then begin
    print_string "[";
    List.iteri
      (fun i f ->
        if i > 0 then print_string ",";
        print_string ("\n  " ^ Lint_types.to_json f))
      live;
    print_string (match live with [] -> "]\n" | _ -> "\n]\n")
  end
  else if !sarif then
    print_string (Lint_sarif.render ~rules:rules_summary ~findings:live)
  else List.iter (fun f -> print_endline (Lint_types.to_string f)) live;
  if !timings then
    List.iter
      (fun (name, dt) -> Printf.eprintf "msparlint: %-24s %6.0f ms\n" name (dt *. 1000.))
      (List.rev !phases);
  if List.length baselined > 0 then
    Printf.eprintf "msparlint: %d finding(s) suppressed by the baseline\n"
      (List.length baselined);
  let failed = ref (List.length live > 0) in
  List.iter
    (fun e ->
      if !ci then begin
        Printf.eprintf
          "msparlint: stale baseline entry (matches nothing, error under --ci): %s\n" e;
        failed := true
      end
      else Printf.eprintf "msparlint: stale baseline entry (matches nothing): %s\n" e)
    unused;
  if !ci && typed_elapsed > typed_pass_budget_s then begin
    Printf.eprintf "msparlint: typed pass took %.1f s (budget %.0f s)\n"
      typed_elapsed typed_pass_budget_s;
    failed := true
  end;
  if List.length live > 0 then
    Printf.eprintf "msparlint: %d finding(s)\n" (List.length live);
  if !failed then exit 1
