(* msparlint — model-fidelity / determinism / hot-path lint for mspar.

   Usage:
     msparlint [--config FILE] [--baseline FILE] [--json] [--list-rules] PATH...

   Parses every .ml/.mli under the given paths with compiler-libs, runs the
   MSP001–MSP011 rule set (doc/LINTS.md) and exits nonzero when any finding
   is neither [@lint.allow]-suppressed nor covered by the baseline file. *)

open Msparlint_lib

let rules_summary =
  [
    ("MSP000", "file does not parse");
    ("MSP001", "Stdlib.Random outside lib/prelude/rng.ml (seeded determinism)");
    ("MSP002", "polymorphic compare/min/max/hash in hot-path directories");
    ("MSP003", "direct adjacency access in CONGEST protocol code");
    ("MSP004", "float log/** feeding integer rounding (ceil_log2 bug class)");
    ("MSP005", "Obj/Marshal");
    ("MSP006", "lib/ module without .mli");
    ("MSP007", "exported raising function lacking _exn suffix or @raise doc");
    ("MSP008", "Domain.spawn outside lib/prelude/pool.ml (pooled parallelism)");
    ("MSP009", "raw file I/O in lib/ outside the journal and Graph_io (durability funnel)");
    ("MSP010", "raw Bigarray unsafe access outside Bigvec and the CSR core (off-heap bounds)");
    ("MSP011", "raw Unix socket/fd I/O in lib/ outside lib/server, the journal and Graph_io");
  ]

let usage () =
  prerr_endline
    "usage: msparlint [--config FILE] [--baseline FILE] [--json] [--list-rules] PATH...";
  exit 2

let () =
  let config = ref None in
  let baseline = ref None in
  let json = ref false in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--config" :: f :: rest ->
        config := Some f;
        parse_args rest
    | "--baseline" :: f :: rest ->
        baseline := Some f;
        parse_args rest
    | "--json" :: rest ->
        json := true;
        parse_args rest
    | "--list-rules" :: _ ->
        List.iter (fun (c, d) -> Printf.printf "%s  %s\n" c d) rules_summary;
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "msparlint: unknown option %s\n" arg;
        usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  (match paths with [] -> usage () | _ -> ());
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "msparlint: no such path: %s\n" p;
        exit 2
      end)
    paths;
  let cfg =
    match !config with
    | None -> Lint_config.default
    | Some f -> (
        try Lint_config.load f
        with Lint_config.Config_error msg ->
          Printf.eprintf "msparlint: %s: %s\n" f msg;
          exit 2)
  in
  let findings = Lint_engine.lint_paths cfg paths in
  let base = match !baseline with None -> Lint_baseline.of_string "" | Some f -> Lint_baseline.load f in
  let live, baselined, unused = Lint_baseline.apply base findings in
  if !json then begin
    print_string "[";
    List.iteri
      (fun i f ->
        if i > 0 then print_string ",";
        print_string ("\n  " ^ Lint_types.to_json f))
      live;
    print_string (match live with [] -> "]\n" | _ -> "\n]\n")
  end
  else List.iter (fun f -> print_endline (Lint_types.to_string f)) live;
  if List.length baselined > 0 then
    Printf.eprintf "msparlint: %d finding(s) suppressed by the baseline\n" (List.length baselined);
  List.iter
    (fun e -> Printf.eprintf "msparlint: stale baseline entry (matches nothing): %s\n" e)
    unused;
  if List.length live > 0 then begin
    Printf.eprintf "msparlint: %d finding(s)\n" (List.length live);
    exit 1
  end
