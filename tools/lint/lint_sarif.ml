let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rule_json (code, description) =
  Printf.sprintf
    {|        { "id": "%s", "shortDescription": { "text": "%s" } }|}
    (escape code) (escape description)

let result_json rule_index (f : Lint_types.finding) =
  let idx = match rule_index f.code with Some i -> i | None -> -1 in
  let rule_index_field =
    if idx >= 0 then Printf.sprintf {| "ruleIndex": %d,|} idx else ""
  in
  Printf.sprintf
    {|        {
          "ruleId": "%s",%s
          "level": "error",
          "message": { "text": "%s" },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": { "uri": "%s", "uriBaseId": "SRCROOT" },
                "region": { "startLine": %d, "startColumn": %d }
              }
            }
          ]
        }|}
    (escape f.code) rule_index_field (escape f.message) (escape f.file) f.line
    (f.col + 1)

let render ~rules ~findings =
  let rule_index code =
    let rec go i = function
      | [] -> None
      | (c, _) :: rest -> if c = code then Some i else go (i + 1) rest
    in
    go 0 rules
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf {|  "$schema": "%s",|} schema_uri);
  Buffer.add_string b "\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n";
  Buffer.add_string b
    "      \"tool\": {\n        \"driver\": {\n          \"name\": \
     \"msparlint\",\n          \"rules\": [\n";
  Buffer.add_string b
    (String.concat ",\n" (List.map (fun r -> "    " ^ rule_json r) rules));
  Buffer.add_string b "\n          ]\n        }\n      },\n";
  Buffer.add_string b "      \"results\": [\n";
  Buffer.add_string b
    (String.concat ",\n" (List.map (result_json rule_index) findings));
  Buffer.add_string b "\n      ]\n    }\n  ]\n}\n";
  Buffer.contents b
