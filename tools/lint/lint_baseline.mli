(** Grandfathered-finding baseline: one position-free key per line. *)

type t

val of_string : string -> t
val load : string -> t
(** Missing file is an empty baseline. @raise Sys_error on unreadable file. *)

val size : t -> int

val apply :
  t ->
  Lint_types.finding list ->
  Lint_types.finding list * Lint_types.finding list * string list
(** [apply t findings] is [(live, baselined, unused_entries)]: findings not
    covered by the baseline, findings it absorbed, and entries that matched
    nothing (stale — should be deleted). *)
