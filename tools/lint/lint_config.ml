(* Per-directory configuration for msparlint.

   The configuration is a flat directive file (see tools/lint/msparlint.conf)
   rather than anything structured: one directive per line, [#] comments,
   paths are repo-relative with [/] separators.  [default] mirrors the
   checked-in file so the engine is usable without any file (tests, ad-hoc
   runs). *)

type t = {
  hot_dirs : string list;
      (* MSP002 (polymorphic compare) is enforced only under these prefixes *)
  congest_dirs : string list;
      (* MSP003 (CONGEST fidelity) is enforced under these prefixes ... *)
  congest_exempt : string list;
      (* ... except for these files (the network substrate itself) *)
  congest_forbidden : string list;
      (* identifier paths that count as direct adjacency access *)
  probe_dirs : string list;
      (* MSP014 (uncounted access dominated by charge) is additionally
         enforced under these prefixes: probe-metered query code that
         reads adjacency through uncounted accessors must charge the
         probe counter in the same function *)
  require_mli_dirs : string list;
      (* MSP006: every .ml under these prefixes needs a sibling .mli *)
  allows : (string * string) list;
      (* (code, path-prefix): rule switched off for matching files *)
}

let default =
  {
    hot_dirs = [ "lib/prelude"; "lib/graph"; "lib/core"; "lib/parallel" ];
    congest_dirs = [ "lib/distsim" ];
    congest_exempt = [ "lib/distsim/network.ml" ];
    congest_forbidden =
      [
        "Graph.neighbor";
        "Graph.neighbor_uncounted";
        "Graph.iter_neighbors";
        "Graph.fold_neighbors";
        "Graph.has_edge";
        "Graph.edges";
        "Graph.iter_edges";
        "Graph.neighbors_into_uncounted";
      ];
    probe_dirs = [ "lib/lca" ];
    require_mli_dirs = [ "lib" ];
    allows =
      [
        ("MSP001", "lib/prelude/rng.ml");
        ("MSP008", "lib/prelude/pool.ml");
        ("MSP009", "lib/prelude/journal.ml");
        ("MSP009", "lib/graph/graph_io.ml");
        ("MSP010", "lib/prelude");
        ("MSP010", "lib/graph/graph.ml");
        ("MSP011", "lib/server");
        ("MSP011", "lib/prelude/journal.ml");
        ("MSP011", "lib/graph/graph_io.ml");
      ];
  }

let empty =
  {
    hot_dirs = [];
    congest_dirs = [];
    congest_exempt = [];
    congest_forbidden = [];
    probe_dirs = [];
    require_mli_dirs = [];
    allows = [];
  }

(* [dir] prefixes match whole path segments: "lib/graph" matches
   "lib/graph/foo.ml" but not "lib/graphics/foo.ml".  An exact file path
   matches itself. *)
let under_prefix ~prefix file =
  String.equal prefix file
  || String.length file > String.length prefix
     && String.starts_with ~prefix file
     && file.[String.length prefix] = '/'

let matches_any prefixes file = List.exists (fun p -> under_prefix ~prefix:p file) prefixes
let in_hot_dir t file = matches_any t.hot_dirs file

let in_congest_scope t file =
  matches_any t.congest_dirs file && not (matches_any t.congest_exempt file)

let in_probe_scope t file = matches_any t.probe_dirs file

let requires_mli t file = matches_any t.require_mli_dirs file

let rule_enabled t ~code ~file =
  not (List.exists (fun (c, p) -> String.equal c code && under_prefix ~prefix:p file) t.allows)

exception Config_error of string

let parse_line cfg lineno line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  let words =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> String.length w > 0)
  in
  match words with
  | [] -> cfg
  | [ "hot-dir"; d ] -> { cfg with hot_dirs = cfg.hot_dirs @ [ d ] }
  | [ "congest-dir"; d ] -> { cfg with congest_dirs = cfg.congest_dirs @ [ d ] }
  | [ "congest-exempt"; f ] -> { cfg with congest_exempt = cfg.congest_exempt @ [ f ] }
  | [ "congest-forbid"; id ] -> { cfg with congest_forbidden = cfg.congest_forbidden @ [ id ] }
  | [ "probe-dir"; d ] -> { cfg with probe_dirs = cfg.probe_dirs @ [ d ] }
  | [ "require-mli"; d ] -> { cfg with require_mli_dirs = cfg.require_mli_dirs @ [ d ] }
  | [ "allow"; code; path ] -> { cfg with allows = cfg.allows @ [ (code, path) ] }
  | directive :: _ ->
      raise
        (Config_error (Printf.sprintf "line %d: unknown or malformed directive %S" lineno directive))

let of_string s =
  let lines = String.split_on_char '\n' s in
  let cfg, _ =
    List.fold_left (fun (cfg, no) line -> (parse_line cfg no line, no + 1)) (empty, 1) lines
  in
  cfg

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s
