(* Shared finding representation for msparlint.

   A finding carries both the human-facing position (line, 0-based column)
   and the raw character offset [cnum] inside the file, which is what the
   suppression machinery ([@lint.allow] spans) matches against. *)

type finding = {
  file : string;  (** repo-relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based column *)
  cnum : int;  (** character offset of the finding's start *)
  code : string;  (** rule code, e.g. "MSP002" *)
  message : string;
}

let of_location ~file ~code ~message (loc : Location.t) =
  let p = loc.loc_start in
  { file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; cnum = p.pos_cnum; code; message }

(* Deterministic output order: file, then position, then code.  Monomorphic
   comparisons only — the linter obeys its own MSP002. *)
let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.code b.code in
        if c <> 0 then c else String.compare a.message b.message

let to_string f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.code f.message

(* Baseline entries deliberately omit line/col so that unrelated edits above
   a grandfathered finding do not invalidate the baseline. *)
let baseline_key f = Printf.sprintf "%s [%s] %s" f.file f.code f.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf {|{"file":"%s","line":%d,"col":%d,"code":"%s","message":"%s"}|}
    (json_escape f.file) f.line f.col (json_escape f.code) (json_escape f.message)
