open Typedtree

type node = {
  key : string;
  file : string;
  name : string;
  loc : Location.t;
  attrs : Parsetree.attributes;
  body : Typedtree.expression;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  edges : (string, (string * int) list) Hashtbl.t;
  rev : (string, string list) Hashtbl.t;
  (* "<file>#<unique_name>" -> node key; stamps are only unique within one
     compilation, so same-unit resolution must be scoped by file *)
  ident_key : (string, string) Hashtbl.t;
}

let ident_slot ~file id = file ^ "#" ^ Ident.unique_name id

let binding_ident vb =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) -> Some id
  | Tpat_alias (_, id, _) -> Some id
  | _ -> None

(* ------------------------------------------------------------------ *)
(* pass 1: nodes                                                      *)
(* ------------------------------------------------------------------ *)

let rec scan_items g ~modname ~file items =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_ident vb with
              | None -> ()
              | Some id ->
                  let key = modname ^ "." ^ Ident.name id in
                  if not (Hashtbl.mem g.nodes key) then
                    Hashtbl.replace g.nodes key
                      {
                        key;
                        file;
                        name = Ident.name id;
                        loc = vb.vb_loc;
                        attrs = vb.vb_attributes;
                        body = vb.vb_expr;
                      };
                  Hashtbl.replace g.ident_key (ident_slot ~file id) key)
            vbs
      | Tstr_module mb -> scan_module g ~file mb
      | Tstr_recmodule mbs -> List.iter (scan_module g ~file) mbs
      | _ -> ())
    items

and scan_module g ~file mb =
  match mb.mb_id with
  | None -> ()
  | Some id -> scan_module_expr g ~modname:(Ident.name id) ~file mb.mb_expr

and scan_module_expr g ~modname ~file me =
  match me.mod_desc with
  | Tmod_structure s -> scan_items g ~modname ~file s.str_items
  | Tmod_constraint (me, _, _, _) -> scan_module_expr g ~modname ~file me
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* pass 2: edges                                                      *)
(* ------------------------------------------------------------------ *)

let refs_in g ~file expr =
  let acc = ref [] in
  let expr_it (self : Tast_iterator.iterator) e =
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> (
        let target =
          match path with
          | Path.Pident id -> Hashtbl.find_opt g.ident_key (ident_slot ~file id)
          | _ ->
              let n = Lint_typed.norm_path path in
              if Hashtbl.mem g.nodes n then Some n else None
        in
        match target with
        | Some key -> acc := (key, e.exp_loc.loc_start.pos_cnum) :: !acc
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with expr = expr_it } in
  it.expr it expr;
  List.rev !acc

let build units =
  let g =
    {
      nodes = Hashtbl.create 256;
      edges = Hashtbl.create 256;
      rev = Hashtbl.create 256;
      ident_key = Hashtbl.create 256;
    }
  in
  List.iter
    (fun (u : Lint_typed.t) ->
      scan_items g ~modname:u.modname ~file:u.file u.str.str_items)
    units;
  Hashtbl.iter
    (fun key node ->
      let refs =
        List.filter (fun (callee, _) -> callee <> key) (refs_in g ~file:node.file node.body)
      in
      Hashtbl.replace g.edges key refs;
      List.iter
        (fun (callee, _) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt g.rev callee) in
          if not (List.mem key prev) then Hashtbl.replace g.rev callee (key :: prev))
        refs)
    g.nodes;
  g

(* ------------------------------------------------------------------ *)
(* queries                                                            *)
(* ------------------------------------------------------------------ *)

let node g key = Hashtbl.find_opt g.nodes key

let iter_nodes g f =
  (* deterministic order for reproducible findings *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) g.nodes [] in
  List.iter (fun k -> f (Hashtbl.find g.nodes k)) (List.sort compare keys)

let resolve_ident g ~file id = Hashtbl.find_opt g.ident_key (ident_slot ~file id)
let callers g key = Option.value ~default:[] (Hashtbl.find_opt g.rev key)

let reachable g roots =
  let seen = Hashtbl.create 64 in
  let rec go key =
    if Hashtbl.mem g.nodes key && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      List.iter
        (fun (callee, _) -> go callee)
        (Option.value ~default:[] (Hashtbl.find_opt g.edges key))
    end
  in
  List.iter go roots;
  seen
