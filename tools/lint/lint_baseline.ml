(* Grandfathered findings.

   The baseline file holds one [Lint_types.baseline_key] per line
   ("file [CODE] message", no positions, [#] comments allowed).  A finding
   whose key appears in the baseline is reported as baselined and does not
   affect the exit status; baseline entries that match nothing are flagged
   so the file shrinks monotonically instead of accreting. *)

type t = { entries : string list }

let of_string s =
  let entries =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '#')
  in
  { entries }

let load path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    of_string s
  end
  else { entries = [] }

let size t = List.length t.entries

(* Returns (live findings, baselined findings, unused baseline entries). *)
let apply t findings =
  let used = Hashtbl.create 16 in
  let live, baselined =
    List.partition
      (fun f ->
        let key = Lint_types.baseline_key f in
        if List.exists (String.equal key) t.entries then begin
          Hashtbl.replace used key ();
          false
        end
        else true)
      findings
  in
  let unused = List.filter (fun e -> not (Hashtbl.mem used e)) t.entries in
  (live, baselined, unused)
