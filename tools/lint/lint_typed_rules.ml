open Typedtree
module T = Lint_types

type analysis = { graph : Lint_callgraph.t }

let prepare units = { graph = Lint_callgraph.build units }

(* ------------------------------------------------------------------ *)
(* attribute helpers                                                  *)
(* ------------------------------------------------------------------ *)

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

(* [None]: attribute absent; [Some None]: present without a justification
   string; [Some (Some s)]: present with one. *)
let attr_string_payload name (attrs : Parsetree.attributes) =
  match List.find_opt (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs with
  | None -> None
  | Some a ->
      Some
        (match a.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ]
          when String.trim s <> "" ->
            Some s
        | _ -> None)

let domain_safe (nd : Lint_callgraph.node) =
  match attr_string_payload "domain_safe" nd.attrs with
  | Some (Some _) -> true
  | _ -> false

let domain_safe_unjustified (nd : Lint_callgraph.node) =
  match attr_string_payload "domain_safe" nd.attrs with
  | Some None -> true
  | _ -> false

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* write primitives and their targets                                 *)
(* ------------------------------------------------------------------ *)

type arg_spec = Pos of int | Lab of string

(* Which argument of a known mutator is the mutated value.  [Atomic.*] is
   deliberately absent: atomic writes are the sanctioned cross-domain
   mechanism. *)
let write_spec = function
  | "Stdlib.:=" | "Stdlib.incr" | "Stdlib.decr"
  | "Array.set" | "Array.unsafe_set" | "Array.fill"
  | "Bytes.set" | "Bytes.unsafe_set" | "Bytes.fill"
  | "Bigvec.set" | "Bigvec.unsafe_set" | "Bigvec.fill"
  | "Array1.set" | "Array1.unsafe_set" | "Array1.fill"
  | "Hashtbl.add" | "Hashtbl.replace" | "Hashtbl.remove" | "Hashtbl.reset"
  | "Hashtbl.clear"
  | "Buffer.add_char" | "Buffer.add_string" | "Buffer.add_bytes"
  | "Buffer.add_subbytes" | "Buffer.add_buffer" | "Buffer.clear"
  | "Buffer.reset" | "Buffer.truncate"
  | "Edgebuf.push" | "Edgebuf.push_unchecked" | "Edgebuf.ensure_capacity"
  | "Edgebuf.clear"
  | "Queue.pop" | "Queue.take" | "Queue.clear"
  | "Stack.pop" | "Stack.clear" ->
      Some (Pos 0)
  | "Queue.add" | "Queue.push" | "Stack.push" -> Some (Pos 1)
  | "Array.blit" | "Bytes.blit" | "Bytes.blit_string" | "Buffer.blit" ->
      Some (Pos 2)
  | "Bigvec.blit" -> Some (Lab "dst")
  | _ -> None

(* Accessors we chase through when resolving a write target back to the
   value that owns the storage: [aux.(i) <- x] mutates [aux], and
   [!r.field <- x] mutates the cell behind [r]. *)
let getter = function
  | "Stdlib.!"
  | "Array.get" | "Array.unsafe_get"
  | "Bytes.get" | "Bytes.unsafe_get"
  | "Bigvec.get" | "Bigvec.unsafe_get"
  | "Array1.get" | "Array1.unsafe_get"
  | "Hashtbl.find" | "Hashtbl.find_opt" ->
      true
  | _ -> false

type target = Local of Ident.t | Named of string | Unknown

let rec target_of (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Local id
  | Texp_ident (p, _, _) -> Named (Lint_typed.norm_path p)
  | Texp_field (e, _, _) -> target_of e
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when getter (Lint_typed.norm_path p) -> (
      match
        List.find_opt (fun (l, a) -> l = Asttypes.Nolabel && a <> None) args
      with
      | Some (_, Some a) -> target_of a
      | _ -> Unknown)
  | _ -> Unknown

let target_name = function
  | Local id -> Ident.name id
  | Named n -> n
  | Unknown -> "?"

type write = { wtarget : target; wloc : Location.t; wwhat : string }

let nth_pos_arg args i =
  let rec go i = function
    | [] -> None
    | (Asttypes.Nolabel, Some a) :: rest -> if i = 0 then Some a else go (i - 1) rest
    | _ :: rest -> go i rest
  in
  go i args

let lab_arg args l =
  List.find_map
    (function Asttypes.Labelled l', Some a when l' = l -> Some a | _ -> None)
    args

let write_of_expr (e : expression) =
  match e.exp_desc with
  | Texp_setfield (recv, _, ld, _) ->
      let t = target_of recv in
      Some
        {
          wtarget = t;
          wloc = e.exp_loc;
          wwhat = Printf.sprintf "mutable field %s of %s" ld.lbl_name (target_name t);
        }
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
      let n = Lint_typed.norm_path p in
      match write_spec n with
      | None -> None
      | Some spec -> (
          let arg =
            match spec with Pos i -> nth_pos_arg args i | Lab l -> lab_arg args l
          in
          match arg with
          | None -> None
          | Some a ->
              let t = target_of a in
              Some
                {
                  wtarget = t;
                  wloc = e.exp_loc;
                  wwhat = Printf.sprintf "%s on %s" n (target_name t);
                }))
  | _ -> None

let collect_writes e =
  let acc = ref [] in
  let expr_it (self : Tast_iterator.iterator) e' =
    (match write_of_expr e' with Some w -> acc := w :: !acc | None -> ());
    Tast_iterator.default_iterator.expr self e'
  in
  let it = { Tast_iterator.default_iterator with expr = expr_it } in
  it.expr it e;
  List.rev !acc

(* Every identifier bound anywhere inside [e]: patterns, for-loop indices,
   function parameters.  Stamps are unique within a unit, so a flat set is
   enough — no scope tracking.  A consequence we document: a local alias of
   captured storage ([let row = m.(k) in row.(i) <- x]) counts as local. *)
let bound_idents e =
  let tbl = Hashtbl.create 32 in
  let add id = Hashtbl.replace tbl (Ident.unique_name id) () in
  let pat_it : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun self p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> add id
    | Tpat_alias (_, id, _) -> add id
    | _ -> ());
    Tast_iterator.default_iterator.pat self p
  in
  let expr_it (self : Tast_iterator.iterator) e' =
    (match e'.exp_desc with
    | Texp_for (id, _, _, _, _, _) -> add id
    | Texp_function { param; _ } -> add param
    | _ -> ());
    Tast_iterator.default_iterator.expr self e'
  in
  let it = { Tast_iterator.default_iterator with pat = pat_it; expr = expr_it } in
  it.expr it e;
  tbl

(* ------------------------------------------------------------------ *)
(* MSP012: domain races                                               *)
(* ------------------------------------------------------------------ *)

let pool_entries = [ "Pool.parallel_for_ranges"; "Pool.run"; "Pool.submit" ]

let msp012 cfg a =
  let g = a.graph in
  let findings = ref [] in
  let seen = Hashtbl.create 32 in
  let emit ~file ~loc msg =
    let k = (file, loc.Location.loc_start.Lexing.pos_cnum) in
    if (not (Hashtbl.mem seen k)) && Lint_config.rule_enabled cfg ~code:"MSP012" ~file
    then begin
      Hashtbl.replace seen k ();
      findings := T.of_location ~file ~code:"MSP012" ~message:msg loc :: !findings
    end
  in
  (* an allowlist entry must say why the writes cannot race *)
  Lint_callgraph.iter_nodes g (fun nd ->
      if domain_safe_unjustified nd then
        emit ~file:nd.file ~loc:nd.loc
          (Printf.sprintf
             "[@@domain_safe] on %s has no justification string; state why the \
              writes are disjoint, e.g. [@@domain_safe \"chunks write disjoint \
              windows\"]"
             nd.name));
  (* worker closures: function arguments at Pool entry-point call sites *)
  let closures = ref [] in
  Lint_callgraph.iter_nodes g (fun nd ->
      let expr_it (self : Tast_iterator.iterator) e =
        (match e.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
          when List.mem (Lint_typed.norm_path p) pool_entries ->
            List.iter
              (fun (_, arg) ->
                match arg with
                | Some ({ exp_desc = Texp_function _; _ } as c) ->
                    closures := (nd, c) :: !closures
                | _ -> ())
              args
        | _ -> ());
        Tast_iterator.default_iterator.expr self e
      in
      let it = { Tast_iterator.default_iterator with expr = expr_it } in
      it.expr it nd.body);
  let closures = List.rev !closures in
  (* part A: writes inside a worker closure to captured or global state *)
  List.iter
    (fun ((nd : Lint_callgraph.node), c) ->
      if not (domain_safe nd) then begin
        let bound = bound_idents c in
        List.iter
          (fun w ->
            match w.wtarget with
            | Local id when not (Hashtbl.mem bound (Ident.unique_name id)) ->
                emit ~file:nd.file ~loc:w.wloc
                  (Printf.sprintf
                     "%s: %s is captured from the enclosing scope and written \
                      inside a Pool worker closure; worker domains race on it \
                      — make it Atomic, keep it closure-local, or annotate \
                      the binding [@@domain_safe \"reason\"]"
                     nd.key (target_name w.wtarget))
            | Named n ->
                emit ~file:nd.file ~loc:w.wloc
                  (Printf.sprintf
                     "%s: module-level mutable state %s is written inside a \
                      Pool worker closure (%s); worker domains race on it — \
                      use Atomic or confine writes to the submitting domain"
                     nd.key n w.wwhat)
            | Local _ | Unknown -> ())
          (collect_writes c)
      end)
    closures;
  (* part B: functions reachable from worker closures writing global state *)
  let roots =
    List.concat_map
      (fun ((nd : Lint_callgraph.node), c) ->
        List.map fst (Lint_callgraph.refs_in g ~file:nd.file c))
      closures
  in
  let wreach = Lint_callgraph.reachable g roots in
  Hashtbl.iter
    (fun key () ->
      match Lint_callgraph.node g key with
      | None -> ()
      | Some nd ->
          if not (domain_safe nd) then
            List.iter
              (fun w ->
                let global =
                  match w.wtarget with
                  | Named n -> Some n
                  | Local id -> Lint_callgraph.resolve_ident g ~file:nd.file id
                  | Unknown -> None
                in
                match global with
                | Some gname ->
                    emit ~file:nd.file ~loc:w.wloc
                      (Printf.sprintf
                         "%s writes module-level mutable state %s (%s) and is \
                          reachable from a Pool worker closure; use Atomic or \
                          keep the state domain-local"
                         nd.key gname w.wwhat)
                | None -> ())
              (collect_writes nd.body))
    wreach;
  (* reactor context: a global written both under Server.run and outside it
     is shared between the reactor and another context *)
  let rreach = Lint_callgraph.reachable g [ "Server.run" ] in
  if Hashtbl.length rreach > 0 then begin
    let node_globals (nd : Lint_callgraph.node) =
      List.filter_map
        (fun w ->
          match w.wtarget with
          | Named n -> Some (n, w)
          | Local id ->
              Option.map
                (fun k -> (k, w))
                (Lint_callgraph.resolve_ident g ~file:nd.file id)
          | Unknown -> None)
        (collect_writes nd.body)
    in
    let writers = Hashtbl.create 32 in
    Lint_callgraph.iter_nodes g (fun nd ->
        List.iter
          (fun (gname, w) ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt writers gname) in
            Hashtbl.replace writers gname
              ((Hashtbl.mem rreach nd.key, nd, w) :: prev))
          (node_globals nd));
    Hashtbl.iter
      (fun gname ws ->
        let ins = List.filter (fun (r, _, _) -> r) ws in
        let outs = List.filter (fun (r, _, _) -> not r) ws in
        match (ins, outs) with
        | _ :: _, (_, (out_nd : Lint_callgraph.node), _) :: _ ->
            List.iter
              (fun (_, (nd : Lint_callgraph.node), w) ->
                if not (domain_safe nd) then
                  emit ~file:nd.file ~loc:w.wloc
                    (Printf.sprintf
                       "%s is written both inside the Server.run reactor (in \
                        %s) and outside it (in %s); the contexts race — make \
                        it Atomic or route all writes through the reactor"
                       gname nd.key out_nd.key))
              ins
        | _ -> ())
      writers
  end;
  List.sort T.compare_finding !findings

(* ------------------------------------------------------------------ *)
(* MSP013: hot-path allocation                                        *)
(* ------------------------------------------------------------------ *)

(* Calls that allocate wherever they appear in a hot function. *)
let alloc_call_anywhere n =
  has_prefix ~prefix:"Printf." n
  || has_prefix ~prefix:"Format." n
  || has_prefix ~prefix:"Fmt." n
  || n = "Stdlib.^" || n = "Stdlib.@"

(* Calls that allocate per element when they appear inside a loop or a
   nested closure (depth >= 1); at depth 0 they build the function's
   result and are fine. *)
let alloc_call_per_element = function
  | "Stdlib.ref"
  | "Buffer.contents" | "Buffer.to_bytes" | "Buffer.create"
  | "Bytes.create" | "Bytes.sub" | "Bytes.sub_string" | "Bytes.to_string"
  | "Bytes.of_string"
  | "String.sub" | "String.concat" | "String.make" | "String.init"
  | "Array.make" | "Array.init" | "Array.copy" | "Array.append"
  | "Array.of_list" | "Array.to_list"
  | "List.append" | "List.concat" | "List.map" | "List.init" | "List.rev"
  | "Hashtbl.create" ->
      true
  | _ -> false

(* A curried [fun a ?(b = d) c -> body] is a chain of nested
   [Texp_function]s in the typedtree — with each optional-argument
   default bound by a [Texp_let] between two links — but it allocates at
   most ONE closure.  [peel_chain] splits such a chain into its
   innermost bodies plus the side expressions (optional defaults, match
   guards) that run when the chain is entered, so the walker can treat
   the whole chain as a single function boundary instead of flagging
   every inner link as a fresh per-element closure. *)
let rec chain_continues e =
  match e.exp_desc with
  | Texp_function _ -> true
  | Texp_let (_, _, b) -> chain_continues b
  | _ -> false

let rec peel_chain e (sides, bodies) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.fold_left
        (fun (sides, bodies) c ->
          let sides =
            match c.c_guard with Some g -> g :: sides | None -> sides
          in
          peel_chain c.c_rhs (sides, bodies))
        (sides, bodies) cases
  | Texp_let (_, vbs, b) when chain_continues b ->
      peel_chain b
        (List.fold_left (fun s vb -> vb.vb_expr :: s) sides vbs, bodies)
  | _ -> (sides, e :: bodies)

let msp013 cfg a =
  let findings = ref [] in
  Lint_callgraph.iter_nodes a.graph (fun nd ->
      if
        has_attr "hot" nd.attrs
        && Lint_config.rule_enabled cfg ~code:"MSP013" ~file:nd.file
      then begin
        let emit loc msg =
          findings :=
            T.of_location ~file:nd.file ~code:"MSP013"
              ~message:(Printf.sprintf "[@@hot] %s: %s" nd.key msg)
              loc
            :: !findings
        in
        let depth = ref 0 in
        let flag loc msg = if !depth >= 1 then emit loc msg in
        let expr_it (self : Tast_iterator.iterator) e =
          match e.exp_desc with
          | Texp_function _ ->
              flag e.exp_loc "closure allocated per element";
              (* one closure per curried chain: walk the chain's bodies
                 (and optional-default sides, which also run per entry)
                 one level deeper without re-flagging inner links *)
              let sides, bodies = peel_chain e ([], []) in
              incr depth;
              List.iter (self.expr self) sides;
              List.iter (self.expr self) bodies;
              decr depth
          | Texp_for (_, _, lo, hi, _, body) ->
              self.expr self lo;
              self.expr self hi;
              incr depth;
              self.expr self body;
              decr depth
          | Texp_while (cond, body) ->
              self.expr self cond;
              incr depth;
              self.expr self body;
              decr depth
          | _ ->
              (match e.exp_desc with
              | Texp_tuple _ -> flag e.exp_loc "tuple allocated per element"
              | Texp_construct (_, cd, _ :: _) ->
                  flag e.exp_loc
                    (Printf.sprintf "%s block allocated per element" cd.cstr_name)
              | Texp_record _ -> flag e.exp_loc "record allocated per element"
              | Texp_array (_ :: _) -> flag e.exp_loc "array literal allocated per element"
              | Texp_variant (l, Some _) ->
                  flag e.exp_loc
                    (Printf.sprintf "polymorphic variant `%s allocated per element" l)
              | Texp_lazy _ -> flag e.exp_loc "lazy block allocated per element"
              | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
                  let n = Lint_typed.norm_path p in
                  if alloc_call_anywhere n then
                    emit e.exp_loc (Printf.sprintf "%s allocates (and formats) on the hot path" n)
                  else if alloc_call_per_element n then
                    flag e.exp_loc (Printf.sprintf "%s allocates per element" n)
              | _ -> ());
              Tast_iterator.default_iterator.expr self e
        in
        let it = { Tast_iterator.default_iterator with expr = expr_it } in
        (* the entry chain is the function's own parameter list: its
           bodies and optional defaults run once per call, depth 0 *)
        let sides, bodies = peel_chain nd.body ([], []) in
        List.iter (fun e -> it.expr it e) sides;
        List.iter (fun e -> it.expr it e) bodies
      end);
  List.sort T.compare_finding !findings

(* ------------------------------------------------------------------ *)
(* MSP014: probe accounting                                           *)
(* ------------------------------------------------------------------ *)

let uncounted_accessors =
  [
    "Graph.neighbor_uncounted";
    "Graph.iter_neighbors_uncounted";
    "Graph.append_neighbors_uncounted";
    "Graph.neighbors_into_uncounted";
    "Graph.edges";
    "Graph.iter_edges";
  ]

let charge_fn = "Graph.add_probes"

let msp014 cfg a =
  let g = a.graph in
  (* per node: uncounted-accessor occurrences and whether it charges *)
  let occs = Hashtbl.create 64 in
  let charges = Hashtbl.create 64 in
  Lint_callgraph.iter_nodes g (fun nd ->
      let us = ref [] in
      let ch = ref false in
      let expr_it (self : Tast_iterator.iterator) e =
        (match e.exp_desc with
        | Texp_ident (p, _, _) ->
            let n = Lint_typed.norm_path p in
            if List.mem n uncounted_accessors then us := (n, e.exp_loc) :: !us;
            if n = charge_fn then ch := true
        | _ -> ());
        Tast_iterator.default_iterator.expr self e
      in
      let it = { Tast_iterator.default_iterator with expr = expr_it } in
      it.expr it nd.body;
      Hashtbl.replace occs nd.key (List.rev !us);
      Hashtbl.replace charges nd.key !ch);
  (* greatest fixpoint: a function is charged-on-entry when every caller
     charges (directly or on entry); entry points with no callers are not *)
  let charged = Hashtbl.create 64 in
  Lint_callgraph.iter_nodes g (fun nd ->
      Hashtbl.replace charged nd.key
        (Hashtbl.find charges nd.key || Lint_callgraph.callers g nd.key <> []));
  let changed = ref true in
  while !changed do
    changed := false;
    Lint_callgraph.iter_nodes g (fun nd ->
        if Hashtbl.find charged nd.key && not (Hashtbl.find charges nd.key) then begin
          let cs = Lint_callgraph.callers g nd.key in
          if not (cs <> [] && List.for_all (fun c -> Hashtbl.find charged c) cs)
          then begin
            Hashtbl.replace charged nd.key false;
            changed := true
          end
        end)
  done;
  let findings = ref [] in
  Lint_callgraph.iter_nodes g (fun nd ->
      if
        (Lint_config.in_congest_scope cfg nd.file
        || Lint_config.in_probe_scope cfg nd.file)
        && Lint_config.rule_enabled cfg ~code:"MSP014" ~file:nd.file
        && not (Hashtbl.find charged nd.key)
      then
        List.iter
          (fun (n, loc) ->
            findings :=
              T.of_location ~file:nd.file ~code:"MSP014"
                ~message:
                  (Printf.sprintf
                     "uncounted adjacency access %s in %s is not dominated by \
                      a probe charge: the function never calls %s and not all \
                      of its callers charge before calling"
                     n nd.key charge_fn)
                loc
              :: !findings)
          (Hashtbl.find occs nd.key));
  List.sort T.compare_finding !findings

let run cfg units =
  let a = prepare units in
  List.sort T.compare_finding (msp012 cfg a @ msp013 cfg a @ msp014 cfg a)
