(* Parse + rule pass + [@lint.allow] suppression for one file.

   Suppression spans: an attribute [[@lint.allow "MSP002"]] (payload: rule
   codes separated by spaces or commas, ["*"] for all) attached to an
   expression or (as [[@@lint.allow]]) to a value binding suppresses
   matching findings within that node's character span.  A floating
   [[@@@lint.allow "..."]] suppresses for the whole file.  Codes are
   reported as MSP000 when a file fails to parse at all. *)

open Parsetree

type allow_span = { codes : string list; start_c : int; end_c : int }

let span_matches span (f : Lint_types.finding) =
  f.cnum >= span.start_c && f.cnum < span.end_c
  && List.exists (fun c -> String.equal c "*" || String.equal c f.code) span.codes

let codes_of_payload = function
  | PStr items ->
      List.concat_map
        (fun si ->
          match si.pstr_desc with
          | Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _) ->
              String.split_on_char ' ' s
              |> List.concat_map (String.split_on_char ',')
              |> List.filter (fun w -> String.length w > 0)
          | _ -> [])
        items
  | _ -> []

let allow_attr_codes attrs =
  List.concat_map
    (fun a ->
      match a.attr_name.txt with
      | "lint.allow" -> codes_of_payload a.attr_payload
      | _ -> [])
    attrs

let collect_allow_spans str =
  let spans = ref [] in
  let push codes (loc : Location.t) =
    if List.length codes > 0 then
      spans :=
        { codes; start_c = loc.loc_start.pos_cnum; end_c = loc.loc_end.pos_cnum } :: !spans
  in
  let open Ast_iterator in
  let expr it e =
    push (allow_attr_codes e.pexp_attributes) e.pexp_loc;
    default_iterator.expr it e
  in
  let value_binding it vb =
    push (allow_attr_codes vb.pvb_attributes) vb.pvb_loc;
    default_iterator.value_binding it vb
  in
  let structure_item it si =
    (match si.pstr_desc with
    | Pstr_attribute a ->
        (* floating [@@@lint.allow]: file-wide from the top *)
        let codes = allow_attr_codes [ a ] in
        if List.length codes > 0 then spans := { codes; start_c = 0; end_c = max_int } :: !spans
    | _ -> ());
    default_iterator.structure_item it si
  in
  let it = { default_iterator with expr; value_binding; structure_item } in
  it.structure it str;
  !spans

let suppress spans findings =
  List.filter (fun f -> not (List.exists (fun s -> span_matches s f) spans)) findings

(* ---------------------------------------------------------------- *)
(* parsing                                                           *)
(* ---------------------------------------------------------------- *)

let lexbuf_for ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  lexbuf

let parse_error_finding ~file exn =
  let line, col, cnum, msg =
    match Location.error_of_exn exn with
    | Some (`Ok (err : Location.error)) ->
        let loc = err.main.loc in
        let p = loc.loc_start in
        ( p.pos_lnum,
          p.pos_cnum - p.pos_bol,
          p.pos_cnum,
          Format.asprintf "%t" err.main.txt )
    | _ -> (1, 0, 0, Printexc.to_string exn)
  in
  { Lint_types.file; line; col; cnum; code = "MSP000"; message = "parse error: " ^ msg }

let parse_structure ~file source =
  match Parse.implementation (lexbuf_for ~file source) with
  | str -> Ok str
  | exception exn -> Error (parse_error_finding ~file exn)

let parse_signature ~file source =
  match Parse.interface (lexbuf_for ~file source) with
  | sg -> Ok sg
  | exception exn -> Error (parse_error_finding ~file exn)

(* The typed rules produce findings from .cmt data; their suppression
   spans still come from parsing the source text, exactly like the
   parsetree rules'.  Findings for other files pass through untouched;
   so does everything when [file] does not parse (its own lint run
   reports MSP000). *)
let suppress_in_file ~file ~source findings =
  match parse_structure ~file source with
  | Error _ -> findings
  | Ok str ->
      let spans = collect_allow_spans str in
      List.filter
        (fun (f : Lint_types.finding) ->
          (not (String.equal f.file file))
          || not (List.exists (fun s -> span_matches s f) spans))
        findings

(* ---------------------------------------------------------------- *)
(* per-file entry points                                             *)
(* ---------------------------------------------------------------- *)

let sort = List.sort Lint_types.compare_finding

(* [mli]: [None] when no sibling .mli exists on disk (or in the test
   fixture); [Some source] otherwise.  MSP007 needs the source, MSP006 only
   the presence. *)
let lint_impl cfg ~file ~source ~mli =
  match parse_structure ~file source with
  | Error f -> [ f ]
  | Ok str ->
      let mli_info =
        match mli with
        | None -> None
        | Some msrc -> (
            match parse_signature ~file:(file ^ "i") msrc with
            | Ok sg -> Some (Lint_rules.mli_info_of_signature sg)
            | Error _ -> None (* the .mli's own lint run reports MSP000 *))
      in
      let findings = Lint_rules.lint_structure cfg ~file ~mli:mli_info str in
      let findings =
        if
          (match mli with None -> true | Some _ -> false)
          && Lint_config.requires_mli cfg file
          && Lint_config.rule_enabled cfg ~code:"MSP006" ~file
        then
          {
            Lint_types.file;
            line = 1;
            col = 0;
            cnum = 0;
            code = "MSP006";
            message = "module has no .mli interface";
          }
          :: findings
        else findings
      in
      sort (suppress (collect_allow_spans str) findings)

let lint_intf cfg ~file ~source =
  ignore cfg;
  match parse_signature ~file source with Error f -> [ f ] | Ok _ -> []

(* ---------------------------------------------------------------- *)
(* file-system driver helpers                                        *)
(* ---------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let lint_path cfg path =
  if String.ends_with ~suffix:".mli" path then
    lint_intf cfg ~file:path ~source:(read_file path)
  else
    let mli_path = path ^ "i" in
    let mli = if Sys.file_exists mli_path then Some (read_file mli_path) else None in
    lint_impl cfg ~file:path ~source:(read_file path) ~mli

(* Recursively collect .ml/.mli files under [roots], skipping _build and
   dot-directories; deterministic order. *)
let collect_files roots =
  let acc = ref [] in
  let rec walk p =
    if Sys.is_directory p then begin
      let entries = Sys.readdir p in
      Array.sort String.compare entries;
      Array.iter
        (fun e ->
          if not (String.equal e "_build") && String.length e > 0 && e.[0] <> '.' then
            walk (Filename.concat p e))
        entries
    end
    else if String.ends_with ~suffix:".ml" p || String.ends_with ~suffix:".mli" p then
      acc := p :: !acc
  in
  List.iter walk roots;
  List.sort String.compare !acc

let lint_paths cfg roots =
  sort (List.concat_map (fun p -> lint_path cfg p) (collect_files roots))
