(** Per-file lint pipeline: parse, run rules, apply [@lint.allow] spans.

    Suppression forms:
    - [(expr [@lint.allow "MSP002"])] — the expression's span;
    - [let f x = ... [@@lint.allow "MSP002 MSP004"]] — the whole binding;
    - [[@@@lint.allow "MSP003"]] — the whole file.

    Payloads list rule codes separated by spaces or commas; ["*"] matches
    every rule.  Unparseable files yield a single [MSP000] finding. *)

val lint_impl :
  Lint_config.t -> file:string -> source:string -> mli:string option ->
  Lint_types.finding list
(** Lint one implementation.  [mli] is the sibling interface's source when
    one exists ([None] triggers MSP006 under [require-mli] prefixes and
    disables MSP007).  Findings are sorted and suppression-filtered, but
    not baseline-filtered. *)

val lint_intf : Lint_config.t -> file:string -> source:string -> Lint_types.finding list
(** Interfaces only get the parse check (MSP000). *)

val suppress_in_file :
  file:string -> source:string -> Lint_types.finding list -> Lint_types.finding list
(** Drop findings for [file] that fall inside one of its [@lint.allow]
    spans — how typed-rule findings (whose locations come from [.cmt]
    data) get the same suppression story as parsetree findings.  Findings
    for other files, and everything when [source] does not parse, pass
    through unchanged. *)

val lint_path : Lint_config.t -> string -> Lint_types.finding list
(** Lint one on-disk [.ml] (pairing its sibling [.mli] if present) or
    [.mli] file. *)

val collect_files : string list -> string list
(** All [.ml]/[.mli] files under the given roots, skipping [_build] and
    dot-directories, in deterministic order. *)

val lint_paths : Lint_config.t -> string list -> Lint_types.finding list
(** [lint_path] over {!collect_files}, merged and sorted. *)
