type t = {
  file : string;
  modname : string;
  str : Typedtree.structure;
}

(* ------------------------------------------------------------------ *)
(* path normalisation                                                 *)
(* ------------------------------------------------------------------ *)

(* Dune mangles modules of a wrapped library as [Lib__Module]; drop
   everything up to the last "__" so call-graph keys line up between the
   real tree ([Mspar_prelude__Pool]) and fixtures ([module Pool = ...]). *)
let demangle s =
  let n = String.length s in
  let rec last_mangle i best =
    if i + 1 >= n then best
    else if s.[i] = '_' && s.[i + 1] = '_' then last_mangle (i + 1) (i + 2)
    else last_mangle (i + 1) best
  in
  let b = last_mangle 0 0 in
  if b = 0 || b >= n then s else String.sub s b (n - b)

let norm_path p =
  let parts = String.split_on_char '.' (Path.name p) in
  match List.rev_map demangle parts with
  | [] -> ""
  | [ x ] -> x
  | x :: y :: _ -> y ^ "." ^ x

(* ------------------------------------------------------------------ *)
(* cmt discovery                                                      *)
(* ------------------------------------------------------------------ *)

let trim_root r =
  let r = if String.length r > 2 && String.sub r 0 2 = "./" then String.sub r 2 (String.length r - 2) else r in
  if r <> "/" && String.length r > 1 && r.[String.length r - 1] = '/' then
    String.sub r 0 (String.length r - 1)
  else r

let under_root ~root file =
  file = root || Lint_config.under_prefix ~prefix:root file

let rec walk_cmts dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then
            (* descend into dune's .objs/.eobjs dot-directories, but never
               into a nested build tree *)
            if entry = "_build" then acc else walk_cmts path acc
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries

let modname_of_cmt (cmt : Cmt_format.cmt_infos) = demangle cmt.cmt_modname

let load_units ~roots =
  let roots = List.map trim_root roots in
  let dirs =
    List.concat_map
      (fun r ->
        List.filter
          (fun d -> Sys.file_exists d && Sys.is_directory d)
          [ r; Filename.concat "_build/default" r ])
      roots
  in
  let cmts = List.sort compare (List.fold_left (fun acc d -> walk_cmts d acc) [] dirs) in
  let seen = Hashtbl.create 64 in
  let units =
    List.filter_map
      (fun path ->
        match Cmt_format.read_cmt path with
        | exception _ -> None
        | cmt -> (
            match (cmt.cmt_annots, cmt.cmt_sourcefile) with
            | Implementation str, Some src
              when Filename.check_suffix src ".ml"
                   && List.exists (fun r -> under_root ~root:r src) roots
                   && not (Hashtbl.mem seen src) ->
                Hashtbl.replace seen src ();
                Some { file = src; modname = modname_of_cmt cmt; str }
            | _ -> None))
      cmts
  in
  List.sort (fun a b -> compare a.file b.file) units

(* ------------------------------------------------------------------ *)
(* fixture type-checking                                              *)
(* ------------------------------------------------------------------ *)

let fixture_env =
  lazy
    (ignore (Warnings.parse_options false "-a");
     Compmisc.init_path ();
     Compmisc.initial_env ())

let modname_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let describe_exn e =
  match Location.error_of_exn e with
  | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
  | _ -> Printexc.to_string e

let typecheck_impl ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | exception e -> Error (describe_exn e)
  | pstr -> (
      let env = Lazy.force fixture_env in
      match Typemod.type_structure env pstr with
      | str, _sig, _names, _shape, _env ->
          Ok { file; modname = modname_of_file file; str }
      | exception e -> Error (describe_exn e))

(* ------------------------------------------------------------------ *)
(* discovery agreement                                                *)
(* ------------------------------------------------------------------ *)

let coverage_gaps ~sources ~covered =
  let have = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace have f ()) covered;
  (* only implementations need typed coverage: interfaces have no .cmt of
     their own in this pipeline *)
  List.sort compare
    (List.filter
       (fun f -> Filename.check_suffix f ".ml" && not (Hashtbl.mem have f))
       sources)
