(** Finding representation shared by the rule engine, baseline and driver. *)

type finding = {
  file : string;  (** repo-relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based column *)
  cnum : int;  (** character offset of the finding's start *)
  code : string;  (** rule code, e.g. "MSP002" *)
  message : string;
}

val of_location : file:string -> code:string -> message:string -> Location.t -> finding

val compare_finding : finding -> finding -> int
(** Deterministic order: file, position, code, message. *)

val to_string : finding -> string
(** ["file:line:col: [CODE] message"] — the compiler-style report line. *)

val baseline_key : finding -> string
(** ["file [CODE] message"], position-free so baselines survive edits. *)

val to_json : finding -> string
(** One JSON object (no trailing newline). *)
