(* mspar - command-line driver for the matching-sparsifier library.

   Subcommands:
     gen       generate a graph family and print its structural parameters
     sparsify  build G_delta and report size / arboricity / approximation
     run       the sequential (1+eps) pipeline (Theorem 3.1)
     dist      the distributed pipeline on the network simulator (Thm 3.2/3.3)
     dynamic   a dynamic scenario with an adaptive adversary (Theorem 3.5)
     serve     long-running matching service over Unix/TCP sockets

   Exit codes (shared with serve): 0 ok, 1 runtime failure, 2 bad CLI
   usage (cmdliner), 3 config error, 4 bind failure, 5 recovery failure. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                   *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  let doc = "Random seed (all runs are deterministic given the seed)." in
  Arg.(value & opt int 2020 & info [ "seed" ] ~docv:"SEED" ~doc)

let n_arg =
  let doc = "Number of vertices (or base-graph vertices for line graphs)." in
  Arg.(value & opt int 300 & info [ "n" ] ~docv:"N" ~doc)

let family_arg =
  let doc =
    "Graph family: complete | clique-minus-edge | two-cliques | line | udg | \
     diversity | cliques | gnp | interval | hub | file (with --input)."
  in
  Arg.(value & opt string "complete" & info [ "f"; "family" ] ~docv:"FAMILY" ~doc)

let input_arg =
  let doc = "Edge-list file to load when --family file is selected." in
  Arg.(value & opt string "" & info [ "i"; "input" ] ~docv:"PATH" ~doc)

let p_arg =
  let doc = "Edge probability for gnp / line-graph base." in
  Arg.(value & opt float 0.3 & info [ "p" ] ~docv:"P" ~doc)

let radius_arg =
  let doc = "Radius for unit-disk graphs." in
  Arg.(value & opt float 0.15 & info [ "radius" ] ~docv:"R" ~doc)

let eps_arg =
  let doc = "Approximation parameter eps in (0,1)." in
  Arg.(value & opt float 0.5 & info [ "eps" ] ~docv:"EPS" ~doc)

let beta_arg =
  let doc =
    "Neighborhood independence bound to use (0 = derive from the family)."
  in
  Arg.(value & opt int 0 & info [ "beta" ] ~docv:"BETA" ~doc)

let multiplier_arg =
  let doc =
    "Multiplier for the Delta formula (the proof uses 20; small values are \
     empirically sufficient, see bench E11)."
  in
  Arg.(value & opt float 1.0 & info [ "multiplier" ] ~docv:"C" ~doc)

(* family name -> graph + known beta bound (0 = unknown, derive) *)
let build_family ?(input = "") ~family ~n ~p ~radius ~seed () =
  let rng = Rng.create seed in
  match family with
  | "complete" -> (Gen.complete n, 1)
  | "clique-minus-edge" ->
      (Gen.clique_minus_edge ~n ~missing:(n - 1, n - 2), 2)
  | "two-cliques" ->
      let half = if n / 2 mod 2 = 0 then (n / 2) + 1 else n / 2 in
      (fst (Gen.two_cliques_bridge ~half:(max 3 half)), 2)
  | "line" -> (Line_graph.random_base rng ~base_n:n ~p, 2)
  | "udg" -> (fst (Unit_disk.random rng ~n ~radius), 5)
  | "diversity" ->
      (Gen.bounded_diversity rng ~n ~cliques:(max 2 (n / 10)) ~memberships:2, 2)
  | "cliques" -> (Gen.disjoint_cliques rng ~n ~k:(max 1 (n / 75)), 1)
  | "gnp" -> (Gen.gnp rng ~n ~p, 0)
  | "interval" ->
      (Geometric.proper_interval rng ~n ~span:(float_of_int n /. 25.0), 2)
  | "hub" -> (fst (Gen.hub_gadget ~pairs:n ~hub_size:(max 1 (n / 10))), 0)
  | "file" ->
      if input = "" then begin
        prerr_endline "mspar: --family file requires --input PATH";
        exit 2
      end;
      (Graph_io.load_exn input, 0)
  | other ->
      Printf.eprintf "mspar: unknown family %S\n" other;
      exit 2

let resolve_beta g ~declared ~family_beta =
  if declared > 0 then declared
  else if family_beta > 0 then family_beta
  else
    (* unknown family bound: compute (or lower-bound) it *)
    max 1 (Beta.value (Beta.compute ~budget:2_000_000 g))

(* ------------------------------------------------------------------ *)
(* gen                                                                *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let run family n p radius seed input =
    let g, fam_beta = build_family ~input ~family ~n ~p ~radius ~seed () in
    Printf.printf "family=%s n=%d m=%d max-degree=%d\n" family (Graph.n g)
      (Graph.m g) (Graph.max_degree g);
    let beta = Beta.compute ~budget:5_000_000 g in
    Printf.printf "beta: %s%d (family bound: %s)\n"
      (if Beta.is_exact beta then "" else ">=")
      (Beta.value beta)
      (if fam_beta > 0 then string_of_int fam_beta else "n/a");
    Printf.printf "degeneracy=%d density-lower-bound=%d\n"
      (Arboricity.degeneracy g)
      (Arboricity.density_lower_bound g);
    Printf.printf "MCM=%d (exact blossom)\n"
      (Matching.size (Blossom.solve g))
  in
  let term = Term.(const run $ family_arg $ n_arg $ p_arg $ radius_arg $ seed_arg $ input_arg) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a graph family and print its parameters")
    term

(* ------------------------------------------------------------------ *)
(* sparsify                                                           *)
(* ------------------------------------------------------------------ *)

let sparsify_cmd =
  let run family n p radius seed eps beta multiplier input =
    let g, fam_beta = build_family ~input ~family ~n ~p ~radius ~seed () in
    let beta = resolve_beta g ~declared:beta ~family_beta:fam_beta in
    let delta = Delta_param.scaled ~multiplier ~beta ~eps in
    let rng = Rng.create (seed + 1) in
    let s, st = Gdelta.sparsify rng g ~delta in
    Printf.printf "G: n=%d m=%d    G_delta: delta=%d edges=%d (%.1f%%)\n"
      (Graph.n g) (Graph.m g) delta st.Gdelta.edges
      (100.0 *. float_of_int st.Gdelta.edges /. float_of_int (max 1 (Graph.m g)));
    Printf.printf "probes=%d (%.1f%% of 2m)   degeneracy(G_delta)=%d (<= 4*delta=%d)\n"
      st.Gdelta.probes
      (100.0 *. float_of_int st.Gdelta.probes /. float_of_int (max 1 (2 * Graph.m g)))
      (Arboricity.degeneracy s) (4 * delta);
    let opt = Matching.size (Blossom.solve g) in
    let os = Matching.size (Blossom.solve s) in
    Printf.printf "MCM(G)=%d MCM(G_delta)=%d ratio=%.4f (target <= %.2f)\n" opt
      os
      (Properties.approximation_ratio ~mcm_g:opt ~mcm_sparsifier:os)
      (1.0 +. eps)
  in
  let term =
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ radius_arg $ seed_arg $ eps_arg
      $ beta_arg $ multiplier_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "sparsify" ~doc:"Build the G_delta sparsifier and report its properties")
    term

(* ------------------------------------------------------------------ *)
(* run (sequential pipeline)                                          *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let run family n p radius seed eps beta multiplier input =
    let g, fam_beta = build_family ~input ~family ~n ~p ~radius ~seed () in
    let beta = resolve_beta g ~declared:beta ~family_beta:fam_beta in
    let rng = Rng.create (seed + 1) in
    let r = Pipeline.run ~multiplier rng g ~beta ~eps in
    Printf.printf
      "matching=%d  delta=%d  sparsifier-edges=%d  probes=%d/%d (%.1f%%)\n"
      (Matching.size r.Pipeline.matching)
      r.Pipeline.delta r.Pipeline.sparsifier_edges r.Pipeline.probes_on_input
      (2 * Graph.m g)
      (100.0 *. Pipeline.sublinearity_ratio r);
    Printf.printf "sparsify=%.2fms match=%.2fms\n"
      (Clock.ns_to_ms r.Pipeline.sparsify_ns)
      (Clock.ns_to_ms r.Pipeline.match_ns);
    let opt = Matching.size (Blossom.solve g) in
    Printf.printf "exact MCM=%d  achieved ratio=%.4f\n" opt
      (float_of_int opt
      /. float_of_int (max 1 (Matching.size r.Pipeline.matching)))
  in
  let term =
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ radius_arg $ seed_arg $ eps_arg
      $ beta_arg $ multiplier_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Sequential (1+eps) pipeline: sparsify then match (Theorem 3.1)")
    term

(* ------------------------------------------------------------------ *)
(* dist                                                               *)
(* ------------------------------------------------------------------ *)

let dist_cmd =
  let run family n p radius seed eps beta multiplier drop crash retries
      fault_seed input =
    let g, fam_beta = build_family ~input ~family ~n ~p ~radius ~seed () in
    let beta = resolve_beta g ~declared:beta ~family_beta:fam_beta in
    let open Mspar_distsim in
    if drop > 0.0 || crash > 0 then begin
      (* fault-injection mode: run the self-healing pipeline under the
         plan and compare against the same seed's fault-free run *)
      let frng = Rng.create fault_seed in
      let crashed =
        if crash = 0 then []
        else
          Rng.sample_distinct frng ~k:crash ~n:(Graph.n g) |> Array.to_list
      in
      let faults = Faults.plan ~drop ~crashed frng in
      let rr =
        Pipeline_dist.run_reliable ~multiplier ~faults ~retries
          (Rng.create (seed + 1)) g ~beta ~eps
      in
      let fault_free =
        Pipeline_dist.run_reliable ~multiplier ~retries
          (Rng.create (seed + 1)) g ~beta ~eps
      in
      let r = rr.Pipeline_dist.base in
      Printf.printf
        "faulty:     matching=%d rounds=%d messages=%d bits=%d (drop=%.2f \
         crash=%d retries=%d fault-seed=%d)\n"
        (Matching.size r.Pipeline_dist.matching)
        r.Pipeline_dist.rounds r.Pipeline_dist.messages r.Pipeline_dist.bits
        drop crash retries fault_seed;
      Printf.printf
        "            dropped=%d duplicated=%d delayed=%d mark-attempts=%d \
         unacked=%d\n"
        r.Pipeline_dist.faults.Faults.dropped
        r.Pipeline_dist.faults.Faults.duplicated
        r.Pipeline_dist.faults.Faults.delayed rr.Pipeline_dist.attempts
        rr.Pipeline_dist.unacked;
      let ff = fault_free.Pipeline_dist.base in
      Printf.printf "fault-free: matching=%d rounds=%d messages=%d\n"
        (Matching.size ff.Pipeline_dist.matching)
        ff.Pipeline_dist.rounds ff.Pipeline_dist.messages;
      Printf.printf "recovery ratio: %.4f   round overhead: %+d\n"
        (float_of_int (Matching.size r.Pipeline_dist.matching)
        /. float_of_int (max 1 (Matching.size ff.Pipeline_dist.matching)))
        (r.Pipeline_dist.rounds - ff.Pipeline_dist.rounds)
    end
    else begin
      let r =
        Pipeline_dist.run ~multiplier (Rng.create (seed + 1)) g ~beta ~eps
      in
      let _, base =
        Matching_dist.full_graph_baseline (Rng.create (seed + 2)) g
      in
      Printf.printf "pipeline: matching=%d rounds=%d messages=%d bits=%d\n"
        (Matching.size r.Pipeline_dist.matching)
        r.Pipeline_dist.rounds r.Pipeline_dist.messages r.Pipeline_dist.bits;
      Printf.printf "baseline: rounds=%d messages=%d (m=%d)\n"
        base.Matching_dist.rounds base.Matching_dist.messages (Graph.m g);
      Printf.printf "message saving: %.2fx\n"
        (float_of_int base.Matching_dist.messages
        /. float_of_int (max 1 r.Pipeline_dist.messages))
    end
  in
  let drop_arg =
    let doc = "Per-message drop probability in [0,1) (0 = fault-free)." in
    Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"P" ~doc)
  in
  let crash_arg =
    let doc =
      "Number of crashed processors (chosen deterministically from \
       --fault-seed)."
    in
    Arg.(value & opt int 0 & info [ "crash" ] ~docv:"K" ~doc)
  in
  let retries_arg =
    let doc = "Retry budget for the self-healing marking stage." in
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"R" ~doc)
  in
  let fault_seed_arg =
    let doc = "Seed for the fault plan's private randomness." in
    Arg.(value & opt int 57 & info [ "fault-seed" ] ~docv:"SEED" ~doc)
  in
  let term =
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ radius_arg $ seed_arg $ eps_arg
      $ beta_arg $ multiplier_arg $ drop_arg $ crash_arg $ retries_arg
      $ fault_seed_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "dist"
       ~doc:
         "Distributed pipeline on the simulator (Theorems 3.2/3.3), \
          optionally under fault injection (--drop/--crash)")
    term

(* ------------------------------------------------------------------ *)
(* dynamic                                                            *)
(* ------------------------------------------------------------------ *)

let dynamic_cmd =
  let run family n p radius seed eps beta multiplier steps journal
      snapshot_every audit_every recover input =
    let open Mspar_dynamic in
    let report_matching dm =
      let s = Dyn_matching.stats dm in
      let final = Dyn_graph.snapshot (Dyn_matching.graph dm) in
      let opt = Matching.size (Blossom.solve final) in
      Printf.printf
        "updates=%d rebuilds=%d worst-spread-work=%d/update total-work=%d\n"
        s.Dyn_matching.updates s.Dyn_matching.rebuilds
        s.Dyn_matching.max_spread_work s.Dyn_matching.total_work;
      Printf.printf "final matching=%d optimum=%d ratio=%.4f\n"
        (Dyn_matching.size dm) opt
        (float_of_int opt /. float_of_int (max 1 (Dyn_matching.size dm)))
    in
    (* the churn loop, parameterized over how ops are applied so the
       plain and journaled paths share one adversary stream *)
    let churn_loop ~graph_of ~mate_of ~ins ~del =
      let churn = Rng.create (seed + 3) in
      for _ = 1 to steps do
        match
          Adversary.next_op Adversary.Adaptive_target_matching churn (graph_of ())
            ~current_mate:(mate_of ())
        with
        | Some (Adversary.Delete (u, v)) -> del u v
        | Some (Adversary.Insert (u, v)) -> ins u v
        | None -> ()
      done
    in
    match journal with
    | None ->
        let g, fam_beta = build_family ~input ~family ~n ~p ~radius ~seed () in
        let beta = resolve_beta g ~declared:beta ~family_beta:fam_beta in
        let dm =
          Dyn_matching.create ~multiplier (Rng.create (seed + 1)) ~n:(Graph.n g)
            ~beta ~eps
        in
        (* stream the family's edges in, matchable-first *)
        let planted = Greedy.maximal g in
        Matching.iter_edges planted (fun u v ->
            ignore (Dyn_matching.insert dm u v));
        let rest = Graph.edges g in
        Rng.shuffle_in_place (Rng.create (seed + 2)) rest;
        Array.iter (fun (u, v) -> ignore (Dyn_matching.insert dm u v)) rest;
        (* adaptive churn *)
        churn_loop
          ~graph_of:(fun () -> Dyn_matching.graph dm)
          ~mate_of:(fun () v -> Matching.mate (Dyn_matching.matching dm) v)
          ~ins:(fun u v -> ignore (Dyn_matching.insert dm u v))
          ~del:(fun u v -> ignore (Dyn_matching.delete dm u v));
        report_matching dm
    | Some dir ->
        let d =
          if recover then (
            match Durable.recover ?snapshot_every ?audit_every dir with
            | Error msg ->
                Printf.eprintf "recover failed: %s\n" msg;
                (* same code as serve --recover: exit-code hygiene *)
                exit Mspar_server.Server.exit_recovery_failure
            | Ok d ->
                let s = Durable.stats d in
                Printf.printf "recovered: ops=%d epoch=%s replayed=%d\n"
                  s.Durable.ops
                  (match s.Durable.recovered_epoch with
                  | Some e -> string_of_int e
                  | None -> "none")
                  s.Durable.replayed;
                d)
          else begin
            let g, fam_beta =
              build_family ~input ~family ~n ~p ~radius ~seed ()
            in
            let beta = resolve_beta g ~declared:beta ~family_beta:fam_beta in
            let delta = Delta_param.scaled ~multiplier ~beta ~eps in
            let d =
              Durable.create ?snapshot_every ?audit_every ~dir
                { Durable.n = Graph.n g; delta; beta; eps; multiplier; seed }
            in
            let planted = Greedy.maximal g in
            Matching.iter_edges planted (fun u v ->
                ignore (Durable.insert d u v));
            let rest = Graph.edges g in
            Rng.shuffle_in_place (Rng.create (seed + 2)) rest;
            Array.iter (fun (u, v) -> ignore (Durable.insert d u v)) rest;
            d
          end
        in
        churn_loop
          ~graph_of:(fun () -> Dyn_matching.graph (Durable.matching d))
          ~mate_of:(fun () v ->
            Matching.mate (Dyn_matching.matching (Durable.matching d)) v)
          ~ins:(fun u v -> ignore (Durable.insert d u v))
          ~del:(fun u v -> ignore (Durable.delete d u v));
        let s = Durable.stats d in
        Printf.printf
          "journal: ops=%d snapshots=%d audits=%d audit-failures=%d repairs=%d\n"
          s.Durable.ops s.Durable.snapshots s.Durable.audits
          s.Durable.audit_failures s.Durable.repairs;
        report_matching (Durable.matching d);
        Durable.close d
  in
  let steps_arg =
    Arg.(value & opt int 1000 & info [ "steps" ] ~docv:"STEPS" ~doc:"Churn steps.")
  in
  let journal_arg =
    let doc =
      "Run crash-safe: journal every update to $(docv)/journal.wal and write \
       periodic snapshot blobs there (see --snapshot-every/--audit-every)."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR" ~doc)
  in
  let snapshot_every_arg =
    let doc = "Write a snapshot blob every $(docv) journaled updates." in
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let audit_every_arg =
    let doc =
      "Run the invariant audit (with self-repair) every $(docv) updates."
    in
    Arg.(value & opt (some int) None & info [ "audit-every" ] ~docv:"K" ~doc)
  in
  let recover_arg =
    let doc =
      "Recover from an existing journal in --journal's directory instead of \
       starting fresh, then run --steps more churn on the recovered state."
    in
    Arg.(value & flag & info [ "recover" ] ~doc)
  in
  let term =
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ radius_arg $ seed_arg $ eps_arg
      $ beta_arg $ multiplier_arg $ steps_arg $ journal_arg $ snapshot_every_arg
      $ audit_every_arg $ recover_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:
         "Dynamic maintenance under an adaptive adversary (Theorem 3.5), \
          optionally crash-safe behind a write-ahead journal \
          (--journal/--recover)")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run socket port host journal recover replica_of n beta eps multiplier
      seed sync_every snapshot_every audit_every max_conns max_pending
      idle_timeout frame_timeout max_frame busy_retry_ms crash_after_ops =
    let open Mspar_dynamic in
    let open Mspar_server in
    let fail_config msg =
      Printf.eprintf "mspar serve: %s\n" msg;
      exit Server.exit_config_error
    in
    let addr =
      match (socket, port) with
      | Some path, None -> Wire.Unix_path path
      | None, Some p -> Wire.Tcp (host, p)
      | Some _, Some _ ->
          fail_config "--socket and --port are mutually exclusive"
      | None, None -> fail_config "one of --socket or --port is required"
    in
    (match journal with
    | "" -> fail_config "--journal DIR is required"
    | _ -> ());
    let replica_of =
      match replica_of with
      | None -> None
      | Some s -> (
          match Wire.addr_of_string s with
          | Ok a -> Some a
          | Error msg -> fail_config ("--replica-of: " ^ msg))
    in
    (* --recover reads n/beta/eps back from the journal's Meta record (and
       a replica takes its config from the primary), so the fresh-create
       parameters are only validated on a fresh primary start *)
    if (not recover) && Option.is_none replica_of then begin
      if n < 1 then fail_config "--n must be >= 1";
      if beta < 1 then
        fail_config
          "--beta must be >= 1 (serve has no graph family to derive it)";
      if not (eps > 0.0 && eps < 1.0) then fail_config "--eps must be in (0,1)"
    end;
    if max_conns < 1 || max_pending < 1 || max_frame < 16 || busy_retry_ms < 1
    then fail_config "server limits must be positive (and --max-frame >= 16)";
    let recover_or_die () =
      match
        Durable.recover ?sync_every ?snapshot_every ?audit_every journal
      with
      | Error msg ->
          Printf.eprintf "mspar serve: recovery failed: %s\n" msg;
          exit Server.exit_recovery_failure
      | Ok d ->
          let s = Durable.stats d in
          Printf.printf "recovered: ops=%d epoch=%s replayed=%d\n%!"
            s.Durable.ops
            (match s.Durable.recovered_epoch with
            | Some e -> string_of_int e
            | None -> "none")
            s.Durable.replayed;
          d
    in
    let durable =
      match replica_of with
      | Some upstream -> (
          (* replica: resume the local tail when the dir already holds a
             journal, else bootstrap a fresh one from the primary *)
          match
            Durable.recover ?sync_every ?snapshot_every ?audit_every journal
          with
          | Ok d -> d
          | Error "no journal found" -> (
              match Server.bootstrap_replica ~upstream ~dir:journal with
              | Error msg ->
                  Printf.eprintf "mspar serve: %s\n" msg;
                  exit Server.exit_recovery_failure
              | Ok () ->
                  Printf.printf "bootstrapped replica from %s\n%!"
                    (Fmt.str "%a" Wire.pp_addr upstream);
                  recover_or_die ())
          | Error msg ->
              Printf.eprintf "mspar serve: recovery failed: %s\n" msg;
              exit Server.exit_recovery_failure)
      | None ->
          if recover then recover_or_die ()
          else begin
            let delta = Delta_param.scaled ~multiplier ~beta ~eps in
            match
              Durable.create ?sync_every ?snapshot_every ?audit_every
                ~dir:journal
                { Durable.n; delta; beta; eps; multiplier; seed }
            with
            | d -> d
            | exception Invalid_argument msg -> fail_config msg
          end
    in
    let cfg =
      {
        (Server.default_config addr) with
        Server.max_conns;
        max_pending;
        max_frame;
        idle_timeout;
        frame_timeout;
        busy_retry_ms;
        seed;
        crash_after_ops;
      }
    in
    match Server.bind_listen addr with
    | Error msg ->
        Durable.close durable;
        Printf.eprintf "mspar serve: %s\n" msg;
        exit Server.exit_bind_failure
    | Ok listen -> (
        Fmt.pr "mspar serve: listening on %a (journal %s%s)\n%!" Wire.pp_addr
          addr journal
          (match replica_of with
          | Some a -> Fmt.str ", replica of %a" Wire.pp_addr a
          | None -> "");
        match Server.run ?replica_of cfg ~listen ~durable with
        | Ok () ->
            let s = Durable.stats durable in
            Durable.close durable;
            Printf.printf "drained: ops=%d snapshots=%d\n%!" s.Durable.ops
              s.Durable.snapshots
        | Error msg ->
            Durable.close durable;
            Printf.eprintf "mspar serve: %s\n" msg;
            exit 1)
  in
  let socket_arg =
    let doc = "Listen on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Listen on TCP port $(docv) (see --host)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Bind address for --port." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let journal_arg =
    let doc = "Journal directory (WAL + snapshots); required." in
    Arg.(value & opt string "" & info [ "journal" ] ~docv:"DIR" ~doc)
  in
  let recover_arg =
    let doc = "Recover from the existing journal instead of starting fresh." in
    Arg.(value & flag & info [ "recover" ] ~doc)
  in
  let replica_of_arg =
    let doc =
      "Run as a hot-standby replica of the primary at $(docv) \
       (unix:PATH, tcp:HOST:PORT, or HOST:PORT): bootstrap or resume the \
       local journal, tail the primary's WAL, serve read-only queries, \
       redirect updates.  A Promote request turns the replica into the \
       primary."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "replica-of" ] ~docv:"ADDR" ~doc)
  in
  let sync_every_arg =
    let doc =
      "Journal fsync batch (1 = fsync every op; the serve loop additionally \
       group-commits before acknowledging, so acks are always durable)."
    in
    Arg.(value & opt (some int) None & info [ "sync-every" ] ~docv:"N" ~doc)
  in
  let snapshot_every_arg =
    let doc = "Write a snapshot blob every $(docv) journaled updates." in
    Arg.(value & opt (some int) None & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let audit_every_arg =
    let doc = "Run the invariant audit every $(docv) updates." in
    Arg.(value & opt (some int) None & info [ "audit-every" ] ~docv:"K" ~doc)
  in
  let max_conns_arg =
    Arg.(
      value & opt int 128
      & info [ "max-conns" ] ~docv:"C" ~doc:"Maximum concurrent connections.")
  in
  let max_pending_arg =
    let doc =
      "Requests served per connection per event-loop round; the excess is \
       answered Busy with a jittered retry-after."
    in
    Arg.(value & opt int 64 & info [ "max-pending" ] ~docv:"B" ~doc)
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:"Drop connections silent for this long.")
  in
  let frame_timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "frame-timeout" ] ~docv:"SECS"
          ~doc:"Drop connections dribbling one frame for this long (slowloris).")
  in
  let max_frame_arg =
    Arg.(
      value
      & opt int Mspar_prelude.Codec.Frames.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest frame body accepted on the wire.")
  in
  let busy_retry_ms_arg =
    Arg.(
      value & opt int 20
      & info [ "busy-retry-ms" ] ~docv:"MS"
          ~doc:"Base of the jittered Busy retry-after.")
  in
  let crash_after_ops_arg =
    let doc =
      "Fault-injection hook: _exit(137) after the Nth applied update \
       (simulated kill -9; used by the crash suites)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after-ops" ] ~docv:"N" ~doc)
  in
  let term =
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ journal_arg $ recover_arg
      $ replica_of_arg
      $ n_arg $ beta_arg $ eps_arg $ multiplier_arg $ seed_arg $ sync_every_arg
      $ snapshot_every_arg $ audit_every_arg $ max_conns_arg $ max_pending_arg
      $ idle_timeout_arg $ frame_timeout_arg $ max_frame_arg $ busy_retry_ms_arg
      $ crash_after_ops_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running matching service over Unix/TCP sockets: durable \
          updates with at-most-once semantics, point queries, backpressure, \
          graceful drain on SIGTERM")
    term

(* ------------------------------------------------------------------ *)
(* promote                                                            *)
(* ------------------------------------------------------------------ *)

(* one Promote frame to a running replica: bumps its journaled epoch
   past the upstream's and starts fencing the old primary (DESIGN.md
   §13).  Idempotent against a server that is already primary. *)
let promote_cmd =
  let run addr =
    let open Mspar_server in
    let fail msg =
      Printf.eprintf "mspar promote: %s\n" msg;
      exit 1
    in
    let addr =
      match Wire.addr_of_string addr with
      | Ok a -> a
      | Error msg ->
          Printf.eprintf "mspar promote: %s\n" msg;
          exit 2
    in
    let c =
      match Client.connect_retry addr with Ok c -> c | Error m -> fail m
    in
    (match Client.request c Wire.Promote with
    | Ok Wire.Ok -> ()
    | Ok (Wire.Error msg) -> fail msg
    | Ok _ -> fail "unexpected response to Promote"
    | Error msg -> fail msg);
    (match Client.request c Wire.Role with
    | Ok (Wire.Role_reply { primary; epoch; offset }) ->
        Printf.printf "primary=%b epoch=%d durable-offset=%d\n" primary epoch
          offset
    | Ok _ | Error _ -> print_endline "promoted");
    Client.close c
  in
  let addr_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:
            "Replica address: unix:PATH, tcp:HOST:PORT, HOST:PORT, or a \
             bare socket path.")
  in
  let term = Term.(const run $ addr_arg) in
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Promote a running replica to primary (epoch-fenced failover): \
          send one Promote frame and print the resulting role")
    term

(* ------------------------------------------------------------------ *)
(* stream                                                             *)
(* ------------------------------------------------------------------ *)

let stream_cmd =
  let run family n p radius seed eps beta multiplier input =
    let g, fam_beta = build_family ~input ~family ~n ~p ~radius ~seed () in
    let beta = resolve_beta g ~declared:beta ~family_beta:fam_beta in
    let delta = Delta_param.scaled ~multiplier ~beta ~eps in
    let rng = Rng.create (seed + 1) in
    let edges = Graph.edges g in
    Rng.shuffle_in_place rng edges;
    let s, `Stored peak, `Stream_len len =
      Mspar_stream.Stream_sparsifier.run rng ~n:(Graph.n g) ~delta edges
    in
    Printf.printf "stream: %d edges, one pass; peak memory %d edges (%.1f%% of stream, cap n*delta=%d)\n"
      len peak
      (100.0 *. float_of_int peak /. float_of_int (max 1 len))
      (Graph.n g * delta);
    let opt = Matching.size (Blossom.solve g) in
    let os = Matching.size (Blossom.solve s) in
    Printf.printf "MCM(G)=%d MCM(streamed G_delta)=%d ratio=%.4f (target <= %.2f)\n"
      opt os
      (Properties.approximation_ratio ~mcm_g:opt ~mcm_sparsifier:os)
      (1.0 +. eps)
  in
  let term =
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ radius_arg $ seed_arg $ eps_arg
      $ beta_arg $ multiplier_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"One-pass semi-streaming G_delta via reservoir sampling")
    term

(* ------------------------------------------------------------------ *)
(* mpc                                                                *)
(* ------------------------------------------------------------------ *)

let mpc_cmd =
  let run family n p radius seed eps beta multiplier machines input =
    let g, fam_beta = build_family ~input ~family ~n ~p ~radius ~seed () in
    let beta = resolve_beta g ~declared:beta ~family_beta:fam_beta in
    let cfg = { Mspar_mpc.Mpc.machines; capacity = max_int } in
    let r =
      Mspar_mpc.Mpc_matching.run ~multiplier (Rng.create (seed + 1)) cfg g
        ~beta ~eps
    in
    let base = Mspar_mpc.Mpc_matching.baseline_gather cfg g in
    Printf.printf
      "mpc: %d machines, %d rounds, max per-machine load %d words (baseline gather: %d)\n"
      machines r.Mspar_mpc.Mpc_matching.rounds r.Mspar_mpc.Mpc_matching.max_load
      base;
    let opt = Matching.size (Blossom.solve g) in
    Printf.printf "matching=%d optimum=%d ratio=%.4f\n"
      (Matching.size r.Mspar_mpc.Mpc_matching.matching)
      opt
      (float_of_int opt
      /. float_of_int (max 1 (Matching.size r.Mspar_mpc.Mpc_matching.matching)))
  in
  let machines_arg =
    Arg.(
      value & opt int 16
      & info [ "machines" ] ~docv:"M" ~doc:"Number of MPC machines.")
  in
  let term =
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ radius_arg $ seed_arg $ eps_arg
      $ beta_arg $ multiplier_arg $ machines_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "mpc" ~doc:"Two-round MPC matching via the sparsifier")
    term

let () =
  let info =
    Cmd.info "mspar" ~version:"1.0.0"
      ~doc:"Matching sparsifiers for graphs of bounded neighborhood independence"
  in
  (* term_err: cmdliner's default CLI-error code is 124; the documented
     contract (shared with serve's 3/4/5) uses 2 *)
  exit
    (Cmd.eval ~term_err:2
       (Cmd.group info
          [
            gen_cmd; sparsify_cmd; run_cmd; dist_cmd; dynamic_cmd; serve_cmd;
            promote_cmd; stream_cmd; mpc_cmd;
          ]))
