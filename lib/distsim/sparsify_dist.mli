(** One-round distributed sparsifier constructions (paper §3.2).

    G_Δ: each processor locally marks Δ random incident edges and sends a
    1-bit message along each — a single round, message count equal to the
    number of marks (≈ nΔ ≪ m).  The Solomon bounded-degree sparsifier is
    likewise one round: mark the first Δ_α ports, keep edges marked by both
    endpoints (each endpoint observes the intersection locally). *)

open Mspar_prelude
open Mspar_graph

type stats = { rounds : int; messages : int; bits : int }

val gdelta : Rng.t -> Graph.t -> delta:int -> Graph.t * stats
(** Distributed G_Δ over a fresh 1-bit network on [g].  Every vertex's
    randomness comes from an {!Rng.split} of the supplied generator, so the
    processors are genuinely independent (the independence that the proof of
    Theorem 2.1 relies on) while the whole execution stays reproducible. *)

val solomon : Graph.t -> delta_alpha:int -> Graph.t * stats
(** Distributed Solomon'18 marking round. *)

val composed :
  Rng.t -> Graph.t -> beta:int -> eps:float -> ?multiplier:float -> unit ->
  Graph.t * stats
(** Two rounds: G_Δ then Solomon on top, with parameters as in
    {!Mspar_core.Compose}. Returns the bounded-degree sparsifier and the
    combined message accounting. *)
