(** One-round distributed sparsifier constructions (paper §3.2), plus the
    self-healing retry variant for faulty networks.

    G_Δ: each processor locally marks Δ random incident edges and sends a
    1-bit message along each — a single round, message count equal to the
    number of marks (≈ nΔ ≪ m).  The Solomon bounded-degree sparsifier is
    likewise one round: mark the first Δ_α ports, keep edges marked by both
    endpoints (each endpoint observes the intersection locally).

    On an unreliable network the 1-bit marking round degrades gracefully
    (lost marks only shrink the sparsifier), and because the construction
    is purely local it self-heals cheaply: {!gdelta_reliable} runs
    mark → ack → re-mark attempts until every surviving mark is
    acknowledged or the retry budget is exhausted.  Under drop rate [p]
    a mark round-trip fails with probability ≤ 2p, so after [r] retries
    the expected number of marks still missing is ≤ nΔ·(2p)^(r+1) — the
    sparsifier converges to the fault-free G_Δ whp while the metered
    round/message overhead stays bounded by the budget. *)

open Mspar_prelude
open Mspar_graph

type stats = {
  rounds : int;
  messages : int;
  bits : int;
  faults : Faults.report;  (** all-zero on a fault-free network *)
}

type reliable_stats = {
  base : stats;
  attempts : int;  (** mark rounds executed, in [1, retries+1] *)
  unacked : int;
      (** marks of live senders never acknowledged within the budget (marks
          aimed at crashed receivers are permanently unacked) *)
}

val gdelta : ?faults:Faults.t -> Rng.t -> Graph.t -> delta:int -> Graph.t * stats
(** Distributed G_Δ over a fresh 1-bit network on [g].  Every vertex's
    randomness comes from an {!Rng.split} of the supplied generator, so the
    processors are genuinely independent (the independence that the proof of
    Theorem 2.1 relies on) while the whole execution stays reproducible.
    Under a fault plan, crashed processors contribute no marks and lost
    marks simply drop the corresponding edges.
    @raise Invalid_argument if [delta < 1]. *)

val gdelta_reliable :
  ?faults:Faults.t ->
  Rng.t ->
  Graph.t ->
  delta:int ->
  retries:int ->
  Graph.t * reliable_stats
(** Self-healing G_Δ: each attempt is a mark round followed by an ack round
    (the synchronous round boundary is the timeout); unacknowledged marks
    are re-sent on the next attempt, up to [retries] extra attempts.  With
    the same generator and no faults, the result equals {!gdelta}'s in two
    rounds.  Marks are idempotent, so duplicated or re-sent marks are
    harmless.
    @raise Invalid_argument if [delta < 1] or [retries < 0]. *)

val solomon : ?faults:Faults.t -> Graph.t -> delta_alpha:int -> Graph.t * stats
(** Distributed Solomon'18 marking round.  Crash-tolerant: a crashed vertex
    contributes no marks, so its incident edges are excluded and the
    survivors' sparsifier keeps the degree bound.
    @raise Invalid_argument if [delta_alpha < 1]. *)

val composed :
  ?faults:Faults.t ->
  Rng.t -> Graph.t -> beta:int -> eps:float -> ?multiplier:float -> unit ->
  Graph.t * stats
(** Two rounds: G_Δ then Solomon on top, with parameters as in
    {!Mspar_core.Compose}. Returns the bounded-degree sparsifier and the
    combined message accounting. *)

val composed_reliable :
  ?faults:Faults.t ->
  Rng.t ->
  Graph.t ->
  beta:int ->
  eps:float ->
  retries:int ->
  ?multiplier:float ->
  unit ->
  Graph.t * reliable_stats
(** {!composed} with the self-healing G_Δ stage: retried marking followed by
    the (one-round, crash-tolerant) Solomon stage. *)
