(** Seeded, deterministic fault plans for the network simulator.

    A plan bundles the classic message-level and processor-level fault
    modes of the distributed-computing literature:

    - {b drop}: each sent message is lost independently with a fixed
      probability (fair-lossy links);
    - {b duplicate}: each delivered message is duplicated with a fixed
      probability (at-least-once links);
    - {b reorder}: bounded reordering — within every window of [w]
      consecutive messages of one inbox the arrival order is a random
      permutation, so a message can be displaced by at most [w-1]
      positions (FIFO links are [w = 1]);
    - {b crashed}: a set of processors that are crash-faulty from round 0
      (they send nothing and read nothing; a local failure detector lets
      neighbors query {!Network.is_crashed});
    - {b straggler}: per-processor delivery delay — every message {e from}
      a straggler arrives a fixed number of rounds late.

    All randomness comes from an {!Rng.split} of the generator supplied
    to {!plan}, so a faulty execution is exactly reproducible from the
    plan's seed while remaining independent of the algorithm's own
    randomness.  The plan is consulted only by {!Network}; a network
    created without a plan never touches any of this code (bit-for-bit
    fault-free behaviour). *)

open Mspar_prelude

type t
(** A fault plan: immutable configuration plus a private generator. *)

type report = { dropped : int; duplicated : int; delayed : int }
(** Fault counters, metered by the network next to rounds/messages/bits. *)

val no_report : report
val add_report : report -> report -> report

val plan :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:int ->
  ?crashed:int list ->
  ?straggler:(int * int) list ->
  Rng.t ->
  t
(** [plan rng] splits [rng] for the plan's private randomness.  Defaults
    are all-benign: [drop = 0.], [duplicate = 0.], [reorder = 1] (FIFO),
    [crashed = \[\]], [straggler = \[\]] (pairs are [(vertex, delay)] with
    [delay >= 1] rounds).
    @raise Invalid_argument on probabilities outside [0, 1), [reorder < 1]
    or a non-positive straggler delay. *)

(** {2 Queries (used by {!Network})} *)

val drop_p : t -> float
val duplicate_p : t -> float

val reorder_window : t -> int
(** At least 1; 1 means no reordering. *)

val crashed_list : t -> int list

val delay_of : t -> int -> int
(** [delay_of t v] is the delivery delay in rounds for messages sent by
    [v] (0 for non-stragglers). *)

val flip : t -> float -> bool
(** Bernoulli draw from the plan's private generator. *)

val shuffle : t -> 'a array -> unit
(** In-place shuffle with the plan's private generator. *)
