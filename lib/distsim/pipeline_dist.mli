(** End-to-end distributed pipeline (Theorems 3.2 and 3.3).

    Round 1: distributed G_Δ (1-bit messages).  Round 2: Solomon marking on
    the sparsifier.  Then a matching algorithm runs on the bounded-degree
    sparsifier only, so its message complexity is proportional to the
    sparsifier size rather than to m. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching

type result = {
  matching : Matching.t;
  rounds : int;  (** total rounds across sparsification and matching *)
  messages : int;
  bits : int;
  sparsifier_edges : int;
  max_degree : int;  (** of the composed sparsifier *)
}

val run :
  ?multiplier:float ->
  ?attempts_per_phase:int ->
  Rng.t ->
  Graph.t ->
  beta:int ->
  eps:float ->
  result
(** (1+O(ε))-approximate distributed matching on a graph of neighborhood
    independence ≤ beta, with message complexity O(n·poly(β,1/ε)) —
    sublinear in m for dense inputs. *)

val run_maximal_only :
  ?multiplier:float -> Rng.t -> Graph.t -> beta:int -> eps:float -> result
(** Sparsify, then only the maximal-matching stage (2(1+ε)-approximation) —
    the cheaper variant used for message-complexity comparisons. *)
