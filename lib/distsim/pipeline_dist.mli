(** End-to-end distributed pipeline (Theorems 3.2 and 3.3).

    Round 1: distributed G_Δ (1-bit messages).  Round 2: Solomon marking on
    the sparsifier.  Then a matching algorithm runs on the bounded-degree
    sparsifier only, so its message complexity is proportional to the
    sparsifier size rather than to m.

    {!run_reliable} is the fault-tolerant composition: the self-healing
    retried G_Δ stage followed by the crash-tolerant Solomon and matching
    stages, all sharing one fault plan.  Retry rounds are metered in the
    ordinary round/message counters, so the overhead against the Thm
    3.2/3.3 budgets is directly observable (see DESIGN.md). *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching

type result = {
  matching : Matching.t;
  rounds : int;  (** total rounds across sparsification and matching *)
  messages : int;
  bits : int;
  sparsifier_edges : int;
  max_degree : int;  (** of the composed sparsifier *)
  faults : Faults.report;  (** all-zero without a fault plan *)
}

val run :
  ?multiplier:float ->
  ?attempts_per_phase:int ->
  Rng.t ->
  Graph.t ->
  beta:int ->
  eps:float ->
  result
(** (1+O(ε))-approximate distributed matching on a graph of neighborhood
    independence ≤ beta, with message complexity O(n·poly(β,1/ε)) —
    sublinear in m for dense inputs. *)

val run_maximal_only :
  ?multiplier:float -> Rng.t -> Graph.t -> beta:int -> eps:float -> result
(** Sparsify, then only the maximal-matching stage (2(1+ε)-approximation) —
    the cheaper variant used for message-complexity comparisons. *)

type reliable_result = {
  base : result;
  attempts : int;  (** mark rounds used by the self-healing G_Δ stage *)
  unacked : int;  (** marks never acknowledged within the retry budget *)
}

val run_reliable :
  ?multiplier:float ->
  ?attempts_per_phase:int ->
  ?faults:Faults.t ->
  retries:int ->
  Rng.t ->
  Graph.t ->
  beta:int ->
  eps:float ->
  reliable_result
(** The pipeline under a fault plan: retried G_Δ, then the crash-tolerant
    Solomon round, then walker-based (1+ε) matching on the sparsifier.
    Without a plan this equals {!run} except for the extra ack round.  The
    result is always a valid matching of the live part of [g]; under drop
    rate [p] with retry budget [r] the matching size converges to the
    fault-free value as [(2p)^(r+1) → 0]. *)
