open Mspar_graph
open Mspar_matching

type msg =
  | Colors of int array  (** the sender's per-forest colors *)
  | Propose
  | Accept

type stats = {
  rounds : int;
  messages : int;
  coloring_rounds : int;
  stage_rounds : int;
}

(* per-forest parent table: parent.(v).(i) is v's out-neighbor in forest i,
   or -1.  Out-edges go to strictly larger ids, so forests are acyclic and
   rooted at local maxima. *)
let forests_of g =
  let nv = Graph.n g in
  Array.init nv (fun v ->
      let outs = ref [] in
      (* protocol-local: v reads its OWN adjacency list (free in CONGEST) *)
      (Graph.iter_neighbors [@lint.allow "MSP003"]) g v (fun u ->
          if u > v then outs := u :: !outs);
      Array.of_list (List.rev !outs))

(* one Cole-Vishkin step: new = 2*i + bit, where i is the lowest bit index
   at which [own] and [parent] differ *)
let cv_step ~own ~parent =
  let diff = own lxor parent in
  let rec lowest i = if diff land (1 lsl i) <> 0 then i else lowest (i + 1) in
  let i = lowest 0 in
  (2 * i) + ((own lsr i) land 1)

(* a fake parent color for roots: any value differing from [own] works *)
let root_parent own = own lxor 1

(* Crash tolerance: crashed processors run no code, broadcast nothing and
   are skipped by every per-vertex loop; a live child whose parent crashed
   (or whose parent's color vector was lost) falls back to the root rule, so
   it behaves as the root of its surviving subtree.  Message loss can make
   the coloring improper, which costs maximality (a vertex whose color never
   drops below 3 skips its proposal stages) but never validity — acceptance
   checks both endpoints' matched status on the spot. *)
let maximal ?faults g =
  let nv = Graph.n g in
  let net = Network.create ~bit_size:(fun _ -> 64) ?faults g in
  let live v = not (Network.is_crashed net v) in
  let parents = forests_of g in
  let nforests = Array.fold_left (fun acc p -> max acc (Array.length p)) 0 parents in
  let matching = Matching.create nv in
  if nforests = 0 then
    ( matching,
      { rounds = 0; messages = 0; coloring_rounds = 0; stage_rounds = 0 } )
  else begin
    (* colors.(v).(i): v's color in forest i; initially the id *)
    let colors = Array.init nv (fun v -> Array.make nforests v) in
    let coloring_start = Network.rounds net in
    (* --- Cole-Vishkin reduction to < 8 colors (3 bits) --- *)
    let max_color () =
      let acc = ref 0 in
      for v = 0 to nv - 1 do
        if live v then Array.iter (fun c -> acc := max !acc c) colors.(v)
      done;
      !acc
    in
    (* a parent color equal to [own] (impossible on a proper coloring, but
       reachable when drops corrupt it) would make cv_step diverge; treat
       the parent as unknown instead *)
    let safe_parent ~own parent_color =
      if parent_color = own then root_parent own else parent_color
    in
    (* reduce until every color is in {0..5}: from 3-bit colors one step
       yields 2i+b with i <= 2, i.e. < 6, so the loop terminates *)
    while max_color () >= 6 do
      (* everyone broadcasts its color vector; each vertex updates every
         forest using its parent's vector *)
      for v = 0 to nv - 1 do
        if live v then
          Network.broadcast net ~src:v (Colors (Array.copy colors.(v)))
      done;
      Network.deliver net;
      let received = Array.make nv [] in
      for v = 0 to nv - 1 do
        received.(v) <- Network.inbox net v
      done;
      for v = 0 to nv - 1 do
        if live v then begin
          let vec_of u =
            let rec find = function
              | [] -> None
              | (src, Colors c) :: _ when src = u -> Some c
              | _ :: rest -> find rest
            in
            find received.(v)
          in
          for i = 0 to Array.length parents.(v) - 1 do
            let own = colors.(v).(i) in
            let parent_color =
              match vec_of parents.(v).(i) with
              | Some c when i < Array.length c -> safe_parent ~own c.(i)
              | Some _ | None -> root_parent own
            in
            colors.(v).(i) <- cv_step ~own ~parent:parent_color
          done;
          (* forests where v is a root also step, against the fake parent *)
          for i = Array.length parents.(v) to nforests - 1 do
            let own = colors.(v).(i) in
            colors.(v).(i) <- cv_step ~own ~parent:(root_parent own)
          done
        end
      done
    done;
    (* --- eliminate colors 5, 4, 3 by shift-down + recolor --- *)
    let exchange_vectors () =
      for v = 0 to nv - 1 do
        if live v then
          Network.broadcast net ~src:v (Colors (Array.copy colors.(v)))
      done;
      Network.deliver net;
      Array.init nv (fun v -> Network.inbox net v)
    in
    for kill = 5 downto 3 do
      (* shift down: every vertex adopts its parent's color (root: rotate),
         making all children of a vertex share a color *)
      let received = exchange_vectors () in
      let next = Array.map Array.copy colors in
      for v = 0 to nv - 1 do
        if live v then begin
          let vec_of u =
            let rec find = function
              | [] -> None
              | (src, Colors c) :: _ when src = u -> Some c
              | _ :: rest -> find rest
            in
            find received.(v)
          in
          for i = 0 to nforests - 1 do
            if i < Array.length parents.(v) then begin
              match vec_of parents.(v).(i) with
              | Some c when i < Array.length c -> next.(v).(i) <- c.(i)
              | Some _ | None -> ()
            end
            else
              (* root: rotate within {0,1,2,...} keeping properness *)
              next.(v).(i) <- (colors.(v).(i) + 1) mod 3
          done
        end
      done;
      Array.iteri (fun v c -> colors.(v) <- c) next;
      (* recolor the vertices currently holding [kill]: their children all
         share one color and their parent has one color, so some color in
         {0,1,2} is available *)
      let received = exchange_vectors () in
      for v = 0 to nv - 1 do
        if live v then begin
          let vec_of u =
            let rec find = function
              | [] -> None
              | (src, Colors c) :: _ when src = u -> Some c
              | _ :: rest -> find rest
            in
            find received.(v)
          in
          for i = 0 to nforests - 1 do
            if colors.(v).(i) = kill then begin
              let blocked = Array.make 6 false in
              (if i < Array.length parents.(v) then
                 match vec_of parents.(v).(i) with
                 | Some c when i < Array.length c ->
                     if c.(i) < 6 then blocked.(c.(i)) <- true
                 | Some _ | None -> ());
              (* children of v in forest i = neighbors u < v whose i-th
                 out-edge is v; protocol-local read of v's own adjacency *)
              (Graph.iter_neighbors [@lint.allow "MSP003"]) g v (fun u ->
                  if u < v then
                    match vec_of u with
                    | Some c
                      when i < Array.length parents.(u)
                           && parents.(u).(i) = v && i < Array.length c ->
                        if c.(i) < 6 then blocked.(c.(i)) <- true
                    | Some _ | None -> ());
              (* on a proper coloring some color < 3 is free; after message
                 loss all six may be blocked — keep the color rather than
                 scan out of bounds (the vertex then sits out the stages) *)
              let rec pick c =
                if c >= Array.length blocked then kill
                else if blocked.(c) then pick (c + 1)
                else c
              in
              colors.(v).(i) <- pick 0
            end
          done
        end
      done
    done;
    let coloring_rounds = Network.rounds net - coloring_start in
    (* --- staged proposals --- *)
    let stage_start = Network.rounds net in
    for i = 0 to nforests - 1 do
      for c = 0 to 2 do
        (* proposal round *)
        for v = 0 to nv - 1 do
          if
            live v
            && (not (Matching.is_matched matching v))
            && i < Array.length parents.(v)
            && colors.(v).(i) = c
          then Network.send net ~src:v ~dst:parents.(v).(i) Propose
        done;
        Network.deliver net;
        (* acceptance round: a free parent takes its smallest proposer *)
        for v = 0 to nv - 1 do
          if live v && not (Matching.is_matched matching v) then begin
            let best = ref (-1) in
            List.iter
              (fun (src, m) ->
                match m with
                | Propose ->
                    if
                      (not (Matching.is_matched matching src))
                      && (!best = -1 || src < !best)
                    then best := src
                | Colors _ | Accept -> ())
              (Network.inbox net v);
            if !best >= 0 then begin
              Network.send net ~src:v ~dst:!best Accept;
              Matching.add matching v !best
            end
          end
        done;
        Network.deliver net
      done
    done;
    let stage_rounds = Network.rounds net - stage_start in
    ( matching,
      {
        rounds = Network.rounds net;
        messages = Network.messages net;
        coloring_rounds;
        stage_rounds;
      } )
  end
