open Mspar_graph

type 'msg t = {
  g : Graph.t;
  adj : int array array;
  neighbor_set : (int, unit) Hashtbl.t array;
  mutable inboxes : (int * 'msg) list array;
  mutable outboxes : (int * 'msg) list array; (* indexed by destination *)
  mutable rounds : int;
  mutable messages : int;
  mutable bits : int;
  mutable max_bits : int;
  bit_size : 'msg -> int;
  faults : Faults.t option;
  crashed : bool array;
  (* messages in flight from stragglers: per destination, (rounds left
     before normal delivery, sender, payload) *)
  pending : (int * int * 'msg) list array;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
}

let create ?(bit_size = fun _ -> 1) ?faults g =
  let nv = Graph.n g in
  let adj =
    Array.init nv (fun v ->
        let acc = ref [] in
        Graph.iter_neighbors g v (fun u -> acc := u :: !acc);
        Array.of_list (List.rev !acc))
  in
  let neighbor_set =
    Array.map
      (fun nbrs ->
        let h = Hashtbl.create (2 * Array.length nbrs) in
        Array.iter (fun u -> Hashtbl.replace h u ()) nbrs;
        h)
      adj
  in
  let crashed = Array.make nv false in
  (match faults with
  | None -> ()
  | Some f ->
      List.iter
        (fun v -> if v >= 0 && v < nv then crashed.(v) <- true)
        (Faults.crashed_list f));
  {
    g;
    adj;
    neighbor_set;
    inboxes = Array.make nv [];
    outboxes = Array.make nv [];
    rounds = 0;
    messages = 0;
    bits = 0;
    max_bits = 0;
    bit_size;
    faults;
    crashed;
    pending = Array.make nv [];
    dropped = 0;
    duplicated = 0;
    delayed = 0;
  }

let graph t = t.g
let n t = Graph.n t.g
let neighbors t v = t.adj.(v)
let faults_enabled t = t.faults <> None
let is_crashed t v = t.crashed.(v)
let dropped t = t.dropped
let duplicated t = t.duplicated
let delayed t = t.delayed

let fault_report t =
  { Faults.dropped = t.dropped; duplicated = t.duplicated; delayed = t.delayed }

let enqueue t ~src ~dst ~delay msg =
  if delay > 0 then begin
    t.delayed <- t.delayed + 1;
    t.pending.(dst) <- (delay, src, msg) :: t.pending.(dst)
  end
  else t.outboxes.(dst) <- (src, msg) :: t.outboxes.(dst)

let send t ~src ~dst msg =
  if not (Hashtbl.mem t.neighbor_set.(src) dst) then
    invalid_arg "Network.send: dst is not a neighbor of src";
  match t.faults with
  | None ->
      let cost = t.bit_size msg in
      t.messages <- t.messages + 1;
      t.bits <- t.bits + cost;
      if cost > t.max_bits then t.max_bits <- cost;
      t.outboxes.(dst) <- (src, msg) :: t.outboxes.(dst)
  | Some f ->
      (* a crashed processor emits nothing (its simulated code never ran) *)
      if not t.crashed.(src) then begin
        let cost = t.bit_size msg in
        t.messages <- t.messages + 1;
        t.bits <- t.bits + cost;
        if cost > t.max_bits then t.max_bits <- cost;
        if Faults.flip f (Faults.drop_p f) then t.dropped <- t.dropped + 1
        else begin
          let delay = Faults.delay_of f src in
          enqueue t ~src ~dst ~delay msg;
          if Faults.flip f (Faults.duplicate_p f) then begin
            t.duplicated <- t.duplicated + 1;
            enqueue t ~src ~dst ~delay msg
          end
        end
      end

let broadcast t ~src msg =
  Array.iter (fun dst -> send t ~src ~dst msg) t.adj.(src)

(* bounded reordering: shuffle each window of [w] consecutive messages, so
   no message moves more than w-1 positions *)
let reorder_bounded f w msgs =
  match msgs with
  | [] -> []
  | _ when w <= 1 -> msgs
  | _ ->
      let arr = Array.of_list msgs in
      let len = Array.length arr in
      let start = ref 0 in
      while !start < len do
        let stop = min len (!start + w) in
        let window = Array.sub arr !start (stop - !start) in
        Faults.shuffle f window;
        Array.blit window 0 arr !start (stop - !start);
        start := stop
      done;
      Array.to_list arr

let deliver t =
  let nv = n t in
  (* preserve arrival order: outboxes were built by consing *)
  (match t.faults with
  | None ->
      for v = 0 to nv - 1 do
        t.inboxes.(v) <- List.rev t.outboxes.(v);
        t.outboxes.(v) <- []
      done
  | Some f ->
      for v = 0 to nv - 1 do
        let arriving = List.rev t.outboxes.(v) in
        t.outboxes.(v) <- [];
        (* straggler messages mature when their countdown reaches zero *)
        let matured = ref [] and still = ref [] in
        List.iter
          (fun (k, src, msg) ->
            if k = 0 then matured := (src, msg) :: !matured
            else still := (k - 1, src, msg) :: !still)
          t.pending.(v);
        t.pending.(v) <- List.rev !still;
        let all = arriving @ List.rev !matured in
        let all = reorder_bounded f (Faults.reorder_window f) all in
        (* a crashed processor reads nothing *)
        t.inboxes.(v) <- (if t.crashed.(v) then [] else all)
      done);
  t.rounds <- t.rounds + 1

let inbox t v = t.inboxes.(v)
let skip_rounds t k = t.rounds <- t.rounds + max 0 k
let rounds t = t.rounds
let messages t = t.messages
let bits t = t.bits
let max_message_bits t = t.max_bits

(* smallest k with 2^k >= n, by integer shifts: the float-log version
   misrounds near powers of two once log2 n approaches the mantissa
   precision (e.g. n = 2^k where log(n)/log(2) lands just above k) *)
let ceil_log2 n =
  if n <= 1 then 0
  else begin
    let k = ref 0 and m = ref 1 in
    while !m < n && !m > 0 do
      incr k;
      m := !m lsl 1
    done;
    !k
  end

let congest_word t = ceil_log2 (max 2 (n t))
