open Mspar_graph

type 'msg t = {
  g : Graph.t;
  adj : int array array;
  neighbor_set : (int, unit) Hashtbl.t array;
  mutable inboxes : (int * 'msg) list array;
  mutable outboxes : (int * 'msg) list array; (* indexed by destination *)
  mutable rounds : int;
  mutable messages : int;
  mutable bits : int;
  mutable max_bits : int;
  bit_size : 'msg -> int;
}

let create ?(bit_size = fun _ -> 1) g =
  let nv = Graph.n g in
  let adj =
    Array.init nv (fun v ->
        let acc = ref [] in
        Graph.iter_neighbors g v (fun u -> acc := u :: !acc);
        Array.of_list (List.rev !acc))
  in
  let neighbor_set =
    Array.map
      (fun nbrs ->
        let h = Hashtbl.create (2 * Array.length nbrs) in
        Array.iter (fun u -> Hashtbl.replace h u ()) nbrs;
        h)
      adj
  in
  {
    g;
    adj;
    neighbor_set;
    inboxes = Array.make nv [];
    outboxes = Array.make nv [];
    rounds = 0;
    messages = 0;
    bits = 0;
    max_bits = 0;
    bit_size;
  }

let graph t = t.g
let n t = Graph.n t.g
let neighbors t v = t.adj.(v)

let send t ~src ~dst msg =
  if not (Hashtbl.mem t.neighbor_set.(src) dst) then
    invalid_arg "Network.send: dst is not a neighbor of src";
  let cost = t.bit_size msg in
  t.messages <- t.messages + 1;
  t.bits <- t.bits + cost;
  if cost > t.max_bits then t.max_bits <- cost;
  t.outboxes.(dst) <- (src, msg) :: t.outboxes.(dst)

let broadcast t ~src msg =
  Array.iter (fun dst -> send t ~src ~dst msg) t.adj.(src)

let deliver t =
  let nv = n t in
  (* preserve arrival order: outboxes were built by consing *)
  for v = 0 to nv - 1 do
    t.inboxes.(v) <- List.rev t.outboxes.(v);
    t.outboxes.(v) <- []
  done;
  t.rounds <- t.rounds + 1

let inbox t v = t.inboxes.(v)
let skip_rounds t k = t.rounds <- t.rounds + max 0 k
let rounds t = t.rounds
let messages t = t.messages
let bits t = t.bits
let max_message_bits t = t.max_bits

let congest_word t =
  let nv = max 2 (n t) in
  int_of_float (ceil (log (float_of_int nv) /. log 2.0))
