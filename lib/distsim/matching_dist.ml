open Mspar_prelude
open Mspar_graph
open Mspar_matching

type walker = { priority : int; path : int list (* head first, initiator last *) }

type msg =
  | Propose of int  (* proposer's priority *)
  | Accept
  | Matched  (* "I am now matched": prune me from your free-neighbor set *)
  | Walk of walker  (* request to extend an alternating path onto you *)

let word_bits n = max 1 (Network.ceil_log2 (max 2 n))

let bit_size_for n = function
  | Propose _ -> word_bits n
  | Accept | Matched -> 1
  | Walk w -> word_bits n * (1 + List.length w.path)

type stats = {
  rounds : int;
  messages : int;
  bits : int;
  iterations : int;
  faults : Faults.report;
}

let stats_of net ~iterations =
  {
    rounds = Network.rounds net;
    messages = Network.messages net;
    bits = Network.bits net;
    iterations;
    faults = Network.fault_report net;
  }

(* ------------------------------------------------------------------ *)
(* Proposal-based maximal matching                                    *)
(* ------------------------------------------------------------------ *)

(* Shared engine: runs the proposal protocol on [net], mutating [mate] and
   the per-vertex free-neighbor knowledge.  Returns the iteration count.

   Fault tolerance: crashed processors run no code (they never propose,
   respond or announce) and the failure detector prunes them from everyone's
   free-neighbor sets up front, so survivors compute a matching of the live
   induced subgraph.  Because a dropped [Matched] announcement would
   otherwise leave a neighbor believing a matched vertex free forever, under
   a fault plan matched vertices re-announce every iteration and the loop
   carries an iteration cap — on a fault-free network neither change has any
   effect and announcements stay one-shot. *)
let run_proposal_protocol rng net mate =
  let nv = Network.n net in
  let faulty = Network.faults_enabled net in
  let live v = not (Network.is_crashed net v) in
  let local_rng = Array.init nv (fun _ -> Rng.split rng) in
  (* free_nbrs.(v): neighbors v still believes to be free *)
  let free_nbrs =
    Array.init nv (fun v ->
        let h = Hashtbl.create 16 in
        Array.iter
          (fun u -> if live u then Hashtbl.replace h u ())
          (Network.neighbors net v);
        h)
  in
  let is_free v = mate.(v) < 0 in
  let announced = Array.make nv false in
  let iterations = ref 0 in
  let progress_possible () =
    let possible = ref false in
    for v = 0 to nv - 1 do
      if live v && is_free v && Hashtbl.length free_nbrs.(v) > 0 then
        possible := true
    done;
    !possible
  in
  (* under faults the protocol may stall (e.g. every remaining free neighbor
     is lost to message loss); the cap turns the livelock into graceful
     degradation — the partial matching is still valid *)
  let max_iterations =
    if faulty then 64 * (1 + Network.congest_word net) else max_int
  in
  while !iterations < max_iterations && progress_possible () do
    incr iterations;
    (* coin flips: proposers vs responders *)
    let proposer =
      Array.init nv (fun v -> live v && is_free v && Rng.bool local_rng.(v))
    in
    (* round 1: proposals *)
    for v = 0 to nv - 1 do
      if proposer.(v) && Hashtbl.length free_nbrs.(v) > 0 then begin
        let candidates =
          Hashtbl.fold (fun u () acc -> u :: acc) free_nbrs.(v) []
        in
        let pick =
          List.nth candidates (Rng.int local_rng.(v) (List.length candidates))
        in
        Network.send net ~src:v ~dst:pick
          (Propose (Rng.int local_rng.(v) (1 lsl 30)))
      end
    done;
    Network.deliver net;
    (* round 2: responders accept the best proposal *)
    for v = 0 to nv - 1 do
      if live v && is_free v && not proposer.(v) then begin
        let best = ref None in
        List.iter
          (fun (src, m) ->
            match m with
            | Propose prio -> (
                match !best with
                | Some (_, bp) when bp >= prio -> ()
                | _ -> best := Some (src, prio))
            | Accept | Matched | Walk _ -> ())
          (Network.inbox net v);
        match !best with
        | Some (src, _) when mate.(src) < 0 ->
            Network.send net ~src:v ~dst:src Accept;
            mate.(v) <- src;
            mate.(src) <- v
        | Some _ | None -> ()
      end
    done;
    Network.deliver net;
    (* round 3: newly matched vertices announce themselves — once on a
       reliable network, every iteration under faults (drops heal) *)
    for v = 0 to nv - 1 do
      if live v && mate.(v) >= 0 && ((not announced.(v)) || faulty) then begin
        announced.(v) <- true;
        Network.broadcast net ~src:v Matched
      end
    done;
    Network.deliver net;
    for v = 0 to nv - 1 do
      List.iter
        (fun (src, m) ->
          match m with
          | Matched -> Hashtbl.remove free_nbrs.(v) src
          | Propose _ | Accept | Walk _ -> ())
        (Network.inbox net v)
    done
  done;
  !iterations

let maximal_on_net rng net =
  let nv = Network.n net in
  let mate = Array.make nv (-1) in
  let iterations = run_proposal_protocol rng net mate in
  let m = Matching.create nv in
  Array.iteri (fun v u -> if u > v then Matching.add m v u) mate;
  (m, mate, iterations)

let maximal ?faults rng g =
  let net = Network.create ~bit_size:(bit_size_for (Graph.n g)) ?faults g in
  let m, _, iterations = maximal_on_net rng net in
  (m, stats_of net ~iterations)

let full_graph_baseline ?faults rng g = maximal ?faults rng g

(* ------------------------------------------------------------------ *)
(* Walker-based short-augmenting-path elimination                     *)
(* ------------------------------------------------------------------ *)

(* A finished walker's path must still describe an alternating path in the
   current matching before it may be flipped: endpoints free, even-indexed
   gaps unmatched, odd-indexed gaps matched pairs.  On a fault-free network
   the locks guarantee this; under faults a duplicated or straggling [Walk]
   can resurface after the matching has moved on, and flipping its stale
   path would corrupt the matching. *)
let path_is_alternating mate path =
  let arr = Array.of_list path in
  let len = Array.length arr in
  len >= 2
  && mate.(arr.(0)) < 0
  && mate.(arr.(len - 1)) < 0
  && begin
       let ok = ref true in
       for i = 0 to len - 2 do
         if i mod 2 = 0 then begin
           (* gap must be unmatched, endpoints of it not matched together *)
           if mate.(arr.(i)) = arr.(i + 1) then ok := false
         end
         else if mate.(arr.(i)) <> arr.(i + 1) then ok := false
       done;
       !ok
     end

(* Flip the alternating path carried by a finished walker.  [path] runs
   free-endpoint first, initiator last; odd-indexed gaps are matched
   edges.  Vertex-disjointness between concurrent walkers is guaranteed by
   the locks, so the flips commute. *)
let flip_path mate path =
  let arr = Array.of_list path in
  let len = Array.length arr in
  (* unmatch the matched pairs (arr.(i), arr.(i+1)) at odd i *)
  let i = ref 1 in
  while !i + 1 < len do
    mate.(arr.(!i)) <- -1;
    mate.(arr.(!i + 1)) <- -1;
    i := !i + 2
  done;
  (* match pairs at even i *)
  let i = ref 0 in
  while !i + 1 < len do
    mate.(arr.(!i)) <- arr.(!i + 1);
    mate.(arr.(!i + 1)) <- arr.(!i);
    i := !i + 2
  done

let one_plus_eps ?attempts_per_phase ?faults rng g ~eps =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Matching_dist.one_plus_eps: eps in (0,1)";
  let nv = Graph.n g in
  let net = Network.create ~bit_size:(bit_size_for nv) ?faults g in
  let live v = not (Network.is_crashed net v) in
  let mate = Array.make nv (-1) in
  let base_iterations = run_proposal_protocol rng net mate in
  let k = int_of_float (ceil (1.0 /. eps)) in
  let attempts = match attempts_per_phase with Some a -> a | None -> 32 * (k + 1) in
  let local_rng = Array.init nv (fun _ -> Rng.split rng) in
  let locked = Array.make nv false in
  let total_attempts = ref 0 in
  for phase = 1 to k do
    (* a walker of t steps carries a path of 2t-1 edges; phase p eliminates
       paths of up to 2p+1 edges, shortest phases first *)
    let max_steps = phase + 1 in
    for _ = 1 to attempts do
      incr total_attempts;
      Array.fill locked 0 nv false;
      (* initiation: free vertices start walkers with probability 1/2 *)
      let walkers = ref [] in
      for v = 0 to nv - 1 do
        if mate.(v) < 0 && live v && Rng.bool local_rng.(v) then begin
          locked.(v) <- true;
          walkers :=
            (v, { priority = Rng.int local_rng.(v) (1 lsl 30); path = [ v ] })
            :: !walkers
        end
      done;
      Network.skip_rounds net 1;
      let step = ref 0 in
      while !walkers <> [] && !step < max_steps do
        incr step;
        (* each walker head picks a random eligible unmatched edge *)
        List.iter
          (fun (head, w) ->
            let nbrs = Network.neighbors net head in
            let eligible =
              Array.to_list nbrs
              |> List.filter (fun u ->
                     mate.(head) <> u && live u && not (List.mem u w.path))
            in
            match eligible with
            | [] -> ()
            | _ ->
                let u =
                  List.nth eligible
                    (Rng.int local_rng.(head) (List.length eligible))
                in
                Network.send net ~src:head ~dst:u (Walk w))
          !walkers;
        Network.deliver net;
        (* receivers arbitrate; reply round charged in aggregate *)
        let survivors = ref [] in
        for u = 0 to nv - 1 do
          let incoming =
            List.filter_map
              (fun (src, m) ->
                match m with
                | Walk w -> Some (src, w)
                | Propose _ | Accept | Matched -> None)
              (Network.inbox net u)
          in
          if incoming <> [] && not locked.(u) then begin
            let best =
              List.fold_left
                (fun acc ((_, w) as cand) ->
                  match acc with
                  | Some (_, bw) when bw.priority >= w.priority -> acc
                  | Some _ | None -> Some cand)
                None incoming
            in
            match best with
            | None -> ()
            | Some (_src, w) ->
                if mate.(u) < 0 then begin
                  let full_path = u :: w.path in
                  (* reject stale walkers (late duplicates under faults)
                     whose path no longer alternates in the live matching *)
                  if
                    path_is_alternating mate full_path
                    && List.for_all live full_path
                  then begin
                    (* free endpoint reached: augment *)
                    locked.(u) <- true;
                    flip_path mate full_path;
                    (* flip messages travel back along the path *)
                    Network.skip_rounds net (List.length full_path - 1)
                  end
                end
                else begin
                  let mu = mate.(u) in
                  if (not locked.(mu)) && not (List.mem mu w.path) then begin
                    locked.(u) <- true;
                    locked.(mu) <- true;
                    survivors := (mu, { w with path = mu :: u :: w.path }) :: !survivors
                  end
                end
          end
        done;
        Network.skip_rounds net 1;
        walkers := !survivors
      done
    done
  done;
  let m = Matching.create nv in
  Array.iteri (fun v u -> if u > v then Matching.add m v u) mate;
  (m, stats_of net ~iterations:(base_iterations + !total_attempts))
