open Mspar_graph
open Mspar_matching

type result = {
  matching : Matching.t;
  rounds : int;
  messages : int;
  bits : int;
  sparsifier_edges : int;
  max_degree : int;
  faults : Faults.report;
}

let run_generic ~matcher ?(multiplier = 2.0) rng g ~beta ~eps =
  let sparsifier, s_stats =
    Sparsify_dist.composed rng g ~beta ~eps ~multiplier ()
  in
  let matching, m_stats = matcher rng sparsifier in
  {
    matching;
    rounds = s_stats.Sparsify_dist.rounds + m_stats.Matching_dist.rounds;
    messages = s_stats.Sparsify_dist.messages + m_stats.Matching_dist.messages;
    bits = s_stats.Sparsify_dist.bits + m_stats.Matching_dist.bits;
    sparsifier_edges = Graph.m sparsifier;
    max_degree = Graph.max_degree sparsifier;
    faults =
      Faults.add_report s_stats.Sparsify_dist.faults m_stats.Matching_dist.faults;
  }

let run ?multiplier ?attempts_per_phase rng g ~beta ~eps =
  run_generic ?multiplier rng g ~beta ~eps ~matcher:(fun rng s ->
      Matching_dist.one_plus_eps ?attempts_per_phase rng s ~eps)

let run_maximal_only ?multiplier rng g ~beta ~eps =
  run_generic ?multiplier rng g ~beta ~eps ~matcher:(fun rng s ->
      Matching_dist.maximal rng s)

type reliable_result = {
  base : result;
  attempts : int;
  unacked : int;
}

let run_reliable ?(multiplier = 2.0) ?attempts_per_phase ?faults ~retries rng g
    ~beta ~eps =
  let sparsifier, s_rel =
    Sparsify_dist.composed_reliable ?faults rng g ~beta ~eps ~retries
      ~multiplier ()
  in
  let s_stats = s_rel.Sparsify_dist.base in
  let matching, m_stats =
    Matching_dist.one_plus_eps ?attempts_per_phase ?faults rng sparsifier ~eps
  in
  {
    base =
      {
        matching;
        rounds = s_stats.Sparsify_dist.rounds + m_stats.Matching_dist.rounds;
        messages =
          s_stats.Sparsify_dist.messages + m_stats.Matching_dist.messages;
        bits = s_stats.Sparsify_dist.bits + m_stats.Matching_dist.bits;
        sparsifier_edges = Graph.m sparsifier;
        max_degree = Graph.max_degree sparsifier;
        faults =
          Faults.add_report s_stats.Sparsify_dist.faults
            m_stats.Matching_dist.faults;
      };
    attempts = s_rel.Sparsify_dist.attempts;
    unacked = s_rel.Sparsify_dist.unacked;
  }
