(** Distributed matching algorithms over the network simulator.

    {!maximal} is the classic randomized proposal algorithm (Israeli–Itai
    style): in each iteration every free vertex flips a coin; proposers send
    one proposal to a random free neighbor, responders accept their highest-
    priority proposal, and newly matched vertices notify their neighbors.
    O(log n) iterations with high probability, 3 rounds each.

    {!one_plus_eps} upgrades a maximal matching to a (1+ε)-approximation by
    distributed elimination of short augmenting paths — the stand-in for
    Even–Medina–Ron on bounded-degree graphs (see DESIGN.md §4).  Free
    vertices launch random alternating walkers of length ≤ 2k+1; walkers
    lock the vertices they traverse (conflicts resolved by random priority)
    and flip their path when they reach a free vertex.  Round cost per phase
    is independent of n for fixed degree and ε, matching the
    Δ^O(1/ε)-rounds shape of the substituted algorithm.

    Both algorithms accept a fault plan and degrade gracefully rather than
    raising: crashed processors run no code and are pruned from their
    neighbors' free-vertex knowledge (failure-detector model), so survivors
    match among themselves; message loss can cost matching size or
    maximality but never validity — under faults, matched vertices
    re-announce each iteration and the proposal loop is capped, and stale
    walker paths are re-validated against the current matching before any
    flip. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching

type stats = {
  rounds : int;
  messages : int;
  bits : int;
  iterations : int;  (** proposal iterations or walker attempts *)
  faults : Faults.report;  (** all-zero on a fault-free network *)
}

val maximal : ?faults:Faults.t -> Rng.t -> Graph.t -> Matching.t * stats
(** Randomized distributed maximal matching on the given communication
    graph.  Under a fault plan the result is a valid matching of the live
    induced subgraph (maximal on it whp when messages can still get
    through). *)

val one_plus_eps :
  ?attempts_per_phase:int ->
  ?faults:Faults.t ->
  Rng.t ->
  Graph.t ->
  eps:float ->
  Matching.t * stats
(** Distributed (1+ε)-approximate matching: maximal matching followed by
    k = ⌈1/ε⌉ phases of walker-based augmenting-path elimination with path
    length cap 2k+1.  [attempts_per_phase] defaults to [32·(k+1)].
    @raise Invalid_argument if [eps] is outside (0, 1). *)

val full_graph_baseline : ?faults:Faults.t -> Rng.t -> Graph.t -> Matching.t * stats
(** The Ω(m)-message baseline for Theorem 3.3: the same maximal-matching
    protocol run on the whole input graph, with matched-notifications along
    every incident edge. *)
