open Mspar_prelude

type t = {
  drop : float;
  duplicate : float;
  reorder : int;
  crashed : int list;
  straggler : (int, int) Hashtbl.t;
  rng : Rng.t;
}

type report = { dropped : int; duplicated : int; delayed : int }

let no_report = { dropped = 0; duplicated = 0; delayed = 0 }

let add_report a b =
  {
    dropped = a.dropped + b.dropped;
    duplicated = a.duplicated + b.duplicated;
    delayed = a.delayed + b.delayed;
  }

let plan ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 1) ?(crashed = [])
    ?(straggler = []) rng =
  if drop < 0.0 || drop >= 1.0 then
    invalid_arg "Faults.plan: drop must be in [0, 1)";
  if duplicate < 0.0 || duplicate >= 1.0 then
    invalid_arg "Faults.plan: duplicate must be in [0, 1)";
  if reorder < 1 then invalid_arg "Faults.plan: reorder window >= 1";
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, d) ->
      if d < 1 then invalid_arg "Faults.plan: straggler delay >= 1";
      Hashtbl.replace tbl v d)
    straggler;
  { drop; duplicate; reorder; crashed; straggler = tbl; rng = Rng.split rng }

let drop_p t = t.drop
let duplicate_p t = t.duplicate
let reorder_window t = t.reorder
let crashed_list t = t.crashed
let delay_of t v = match Hashtbl.find_opt t.straggler v with Some d -> d | None -> 0
let flip t p = p > 0.0 && Rng.bernoulli t.rng p
let shuffle t arr = Rng.shuffle_in_place t.rng arr
