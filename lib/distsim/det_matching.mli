(** Deterministic distributed maximal matching in O(Δ + log* n) rounds.

    This is the deterministic bounded-degree counterpart that the paper's
    distributed section is measured against (Barenboim–Oren's deterministic
    algorithm achieves a (2+ε)-approximation in O(log* n) rounds for
    constant β; a maximal matching is a 2-approximation).  The classic
    recipe implemented here:

    {ol
    {- {b Forest decomposition} (0 rounds, local): orient every edge from
       lower to higher id; the i-th out-edge of each vertex goes to forest
       i.  Out-degree ≤ 1 per forest and the orientation is acyclic, so
       every forest is a genuine rooted forest (parent = the out-neighbor).}
    {- {b Cole–Vishkin 3-coloring} of all forests in parallel
       (O(log* n) rounds): iterated bit-index color reduction down to 6
       colors, then shift-down + three reduction rounds to 3 colors.
       Messages carry one color per forest (LOCAL-size; CONGEST would
       pipeline them).}
    {- {b Staged proposals} (O(Δ) rounds): for each forest and each of the
       3 colors, every still-free vertex of that color proposes along its
       parent edge in that forest; a free parent accepts its smallest
       proposer.  A proper coloring guarantees proposers never receive
       proposals in the same stage, and every edge gets a stage in which
       both endpoints were offered it — hence maximality.}}

    Completely deterministic: same graph, same matching, every time (with a
    fault plan, same graph + same plan seed, same matching every time).
    Crash-tolerant: crashed processors run no code; a live vertex whose
    forest parent crashed behaves as the root of its surviving subtree, and
    survivors compute a matching of the live induced subgraph.  Message
    loss can cost maximality (an improperly colored vertex sits out its
    proposal stages) but never validity. *)

open Mspar_graph
open Mspar_matching

type stats = {
  rounds : int;
  messages : int;
  coloring_rounds : int;  (** the log*-n part *)
  stage_rounds : int;  (** the O(Δ) part *)
}

val maximal : ?faults:Faults.t -> Graph.t -> Matching.t * stats
(** Deterministic distributed maximal matching of the communication
    graph. *)

val forests_of : Graph.t -> int array array
(** The forest decomposition: [forests_of g].(v) lists v's parents, one per
    forest index (entry -1 when v has no out-edge in that forest).  Exposed
    for tests. *)
