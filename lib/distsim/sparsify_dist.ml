open Mspar_prelude
open Mspar_graph
open Mspar_core

type stats = { rounds : int; messages : int; bits : int }

let stats_of net =
  {
    rounds = Network.rounds net;
    messages = Network.messages net;
    bits = Network.bits net;
  }

let gdelta rng g ~delta =
  if delta < 1 then invalid_arg "Sparsify_dist.gdelta: delta >= 1";
  let net = Network.create g in
  let nv = Network.n net in
  (* each processor has its own generator — marking choices are mutually
     independent *)
  let local_rng = Array.init nv (fun _ -> Rng.split rng) in
  for v = 0 to nv - 1 do
    let nbrs = Network.neighbors net v in
    let d = Array.length nbrs in
    if d <= 2 * delta then
      Array.iter (fun u -> Network.send net ~src:v ~dst:u ()) nbrs
    else begin
      let picks = Rng.sample_distinct local_rng.(v) ~k:delta ~n:d in
      Array.iter (fun i -> Network.send net ~src:v ~dst:nbrs.(i) ()) picks
    end
  done;
  Network.deliver net;
  (* an edge is in the sparsifier iff either endpoint received a mark on it;
     locally, each vertex's incident sparsifier edges are those it marked
     plus those in its inbox — pushed straight into the packed CSR builder *)
  let sparsifier =
    Graph.of_edges_iter ~n:nv (fun push ->
        for v = 0 to nv - 1 do
          List.iter (fun (u, ()) -> push u v) (Network.inbox net v)
        done)
  in
  (sparsifier, stats_of net)

let solomon g ~delta_alpha =
  if delta_alpha < 1 then invalid_arg "Sparsify_dist.solomon: delta_alpha >= 1";
  let net = Network.create g in
  let nv = Network.n net in
  for v = 0 to nv - 1 do
    let nbrs = Network.neighbors net v in
    let d = min delta_alpha (Array.length nbrs) in
    for i = 0 to d - 1 do
      Network.send net ~src:v ~dst:nbrs.(i) ()
    done
  done;
  Network.deliver net;
  (* keep an edge iff v marked u AND u marked v: v knows the first from its
     own choice and the second from its inbox *)
  let marked = Hashtbl.create (4 * nv) in
  for v = 0 to nv - 1 do
    let nbrs = Network.neighbors net v in
    let d = min delta_alpha (Array.length nbrs) in
    for i = 0 to d - 1 do
      let u = nbrs.(i) in
      Hashtbl.replace marked (v, u) ()
    done
  done;
  let sparsifier =
    Graph.of_edges_iter ~n:nv (fun push ->
        for v = 0 to nv - 1 do
          List.iter
            (fun (u, ()) ->
              (* v received u's mark; the edge survives if v also marked u *)
              if Hashtbl.mem marked (v, u) && v < u then push v u)
            (Network.inbox net v)
        done)
  in
  (sparsifier, stats_of net)

let composed rng g ~beta ~eps ?(multiplier = 2.0) () =
  let delta = Delta_param.scaled ~multiplier ~beta ~eps in
  let s1, st1 = gdelta rng g ~delta in
  let delta_alpha = Solomon.delta_alpha ~alpha:(2 * delta) ~eps in
  let s2, st2 = solomon s1 ~delta_alpha in
  ( s2,
    {
      rounds = st1.rounds + st2.rounds;
      messages = st1.messages + st2.messages;
      bits = st1.bits + st2.bits;
    } )
