open Mspar_prelude
open Mspar_graph
open Mspar_core

type stats = {
  rounds : int;
  messages : int;
  bits : int;
  faults : Faults.report;
}

type reliable_stats = {
  base : stats;
  attempts : int;
  unacked : int;
}

let stats_of net =
  {
    rounds = Network.rounds net;
    messages = Network.messages net;
    bits = Network.bits net;
    faults = Network.fault_report net;
  }

(* the per-vertex mark choices of G_Delta; consumes the local generators in
   exactly the order the one-round protocol does, so the reliable variant
   targets the same sparsifier as the fault-free run for a given seed *)
let choose_marks net local_rng ~delta =
  Array.init (Network.n net) (fun v ->
      let nbrs = Network.neighbors net v in
      let d = Array.length nbrs in
      if d <= 2 * delta then Array.copy nbrs
      else
        Rng.sample_distinct local_rng.(v) ~k:delta ~n:d
        |> Array.map (fun i -> nbrs.(i)))

let gdelta ?faults rng g ~delta =
  if delta < 1 then invalid_arg "Sparsify_dist.gdelta: delta >= 1";
  let net = Network.create ?faults g in
  let nv = Network.n net in
  (* each processor has its own generator — marking choices are mutually
     independent *)
  let local_rng = Array.init nv (fun _ -> Rng.split rng) in
  let marks = choose_marks net local_rng ~delta in
  for v = 0 to nv - 1 do
    if not (Network.is_crashed net v) then
      Array.iter (fun u -> Network.send net ~src:v ~dst:u ()) marks.(v)
  done;
  Network.deliver net;
  (* an edge is in the sparsifier iff either endpoint received a mark on it;
     locally, each vertex's incident sparsifier edges are those it marked
     plus those in its inbox — pushed straight into the packed CSR builder *)
  let sparsifier =
    Graph.of_edges_iter ~n:nv (fun push ->
        for v = 0 to nv - 1 do
          List.iter (fun (u, ()) -> push u v) (Network.inbox net v)
        done)
  in
  (sparsifier, stats_of net)

(* ------------------------------------------------------------------ *)
(* Self-healing G_Delta: mark -> ack -> re-mark                       *)
(* ------------------------------------------------------------------ *)

type rmsg = Mark | Ack

let gdelta_reliable ?faults rng g ~delta ~retries =
  if delta < 1 then invalid_arg "Sparsify_dist.gdelta_reliable: delta >= 1";
  if retries < 0 then invalid_arg "Sparsify_dist.gdelta_reliable: retries >= 0";
  let net : rmsg Network.t = Network.create ?faults g in
  let nv = Network.n net in
  let local_rng = Array.init nv (fun _ -> Rng.split rng) in
  let marks = choose_marks net local_rng ~delta in
  let live v = not (Network.is_crashed net v) in
  (* per-vertex sender state: which of my marks were acknowledged *)
  let acked = Array.map (fun ms -> Array.make (Array.length ms) false) marks in
  let mark_index =
    Array.map
      (fun ms ->
        let h = Hashtbl.create (2 * Array.length ms) in
        Array.iteri (fun i u -> Hashtbl.replace h u i) ms;
        h)
      marks
  in
  (* receiver state: marks observed on incident edges, (receiver, sender) *)
  let received = Hashtbl.create (4 * nv) in
  let any_unacked () =
    let any = ref false in
    for v = 0 to nv - 1 do
      if live v then
        Array.iter (fun a -> if not a then any := true) acked.(v)
    done;
    !any
  in
  (* every delivery is scanned for both message kinds, so marks that arrive
     late (stragglers, reordering) are still recorded and acknowledged *)
  let process_inboxes () =
    for w = 0 to nv - 1 do
      if live w then
        List.iter
          (fun (src, m) ->
            match m with
            | Mark ->
                Hashtbl.replace received (w, src) ();
                Network.send net ~src:w ~dst:src Ack
            | Ack -> (
                match Hashtbl.find_opt mark_index.(w) src with
                | Some i -> acked.(w).(i) <- true
                | None -> ()))
          (Network.inbox net w)
    done
  in
  let attempts = ref 0 in
  while !attempts <= retries && any_unacked () do
    incr attempts;
    (* (re-)mark round: resend every not-yet-acknowledged mark *)
    for v = 0 to nv - 1 do
      if live v then
        Array.iteri
          (fun i u -> if not acked.(v).(i) then Network.send net ~src:v ~dst:u Mark)
          marks.(v)
    done;
    Network.deliver net;
    process_inboxes ();
    (* ack round: the implicit timeout is the synchronous round structure —
       an ack missing after this delivery means the mark (or its ack) was
       lost, and the mark is retried on the next attempt *)
    Network.deliver net;
    process_inboxes ()
  done;
  let unacked = ref 0 in
  for v = 0 to nv - 1 do
    if live v then
      Array.iter (fun a -> if not a then incr unacked) acked.(v)
  done;
  let sparsifier =
    Graph.of_edges_iter ~n:nv (fun push ->
        Hashtbl.iter (fun (w, src) () -> push src w) received)
  in
  (sparsifier, { base = stats_of net; attempts = !attempts; unacked = !unacked })

(* ------------------------------------------------------------------ *)
(* Solomon marking round                                              *)
(* ------------------------------------------------------------------ *)

let solomon ?faults g ~delta_alpha =
  if delta_alpha < 1 then invalid_arg "Sparsify_dist.solomon: delta_alpha >= 1";
  let net = Network.create ?faults g in
  let nv = Network.n net in
  let live v = not (Network.is_crashed net v) in
  for v = 0 to nv - 1 do
    if live v then begin
      let nbrs = Network.neighbors net v in
      let d = min delta_alpha (Array.length nbrs) in
      for i = 0 to d - 1 do
        Network.send net ~src:v ~dst:nbrs.(i) ()
      done
    end
  done;
  Network.deliver net;
  (* keep an edge iff v marked u AND u marked v: v knows the first from its
     own choice and the second from its inbox *)
  let marked = Hashtbl.create (4 * nv) in
  for v = 0 to nv - 1 do
    if live v then begin
      let nbrs = Network.neighbors net v in
      let d = min delta_alpha (Array.length nbrs) in
      for i = 0 to d - 1 do
        let u = nbrs.(i) in
        Hashtbl.replace marked (v, u) ()
      done
    end
  done;
  let sparsifier =
    Graph.of_edges_iter ~n:nv (fun push ->
        for v = 0 to nv - 1 do
          List.iter
            (fun (u, ()) ->
              (* v received u's mark; the edge survives if v also marked u *)
              if Hashtbl.mem marked (v, u) && v < u then push v u)
            (Network.inbox net v)
        done)
  in
  (sparsifier, stats_of net)

let composed ?faults rng g ~beta ~eps ?(multiplier = 2.0) () =
  let delta = Delta_param.scaled ~multiplier ~beta ~eps in
  let s1, st1 = gdelta ?faults rng g ~delta in
  let delta_alpha = Solomon.delta_alpha ~alpha:(2 * delta) ~eps in
  let s2, st2 = solomon ?faults s1 ~delta_alpha in
  ( s2,
    {
      rounds = st1.rounds + st2.rounds;
      messages = st1.messages + st2.messages;
      bits = st1.bits + st2.bits;
      faults = Faults.add_report st1.faults st2.faults;
    } )

let composed_reliable ?faults rng g ~beta ~eps ~retries ?(multiplier = 2.0) () =
  let delta = Delta_param.scaled ~multiplier ~beta ~eps in
  let s1, r1 = gdelta_reliable ?faults rng g ~delta ~retries in
  let delta_alpha = Solomon.delta_alpha ~alpha:(2 * delta) ~eps in
  let s2, st2 = solomon ?faults s1 ~delta_alpha in
  ( s2,
    {
      base =
        {
          rounds = r1.base.rounds + st2.rounds;
          messages = r1.base.messages + st2.messages;
          bits = r1.base.bits + st2.bits;
          faults = Faults.add_report r1.base.faults st2.faults;
        };
      attempts = r1.attempts;
      unacked = r1.unacked;
    } )
