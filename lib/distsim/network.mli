(** Synchronous message-passing network simulator (LOCAL / CONGEST).

    Processors are the vertices of a communication graph; computation
    proceeds in synchronous rounds.  During a round every processor may send
    messages to any subset of its neighbors (unicast); {!deliver} ends the
    round and makes the messages readable at their destinations.  The
    simulator meters the two standard distributed complexity measures —
    rounds and messages — plus total message bits, so that CONGEST
    (O(log n)-bit messages) versus LOCAL (unbounded) behaviour and the
    paper's sublinear-message claims (Theorem 3.3) are observable.

    By default the network is fault-free.  Supplying a {!Faults.t} plan at
    creation turns on deterministic fault injection: messages may be
    dropped, duplicated, delayed (stragglers) or reordered within a bounded
    window, and processors in the plan's crash set neither send nor
    receive.  Without a plan, behaviour — including every metered counter —
    is bit-for-bit identical to the fault-free simulator.  Fault events are
    metered by the counters {!dropped}, {!duplicated} and {!delayed},
    surfaced next to rounds/messages/bits.  Note that dropped and delayed
    messages still count as sent (the sender paid for them); duplicates do
    not (the duplication happens inside the link).

    The message type is a parameter; callers provide a [bit_size] costing
    function at creation (default: 1 bit per message, the unit used by the
    paper's 1-bit marking round). *)

open Mspar_graph

type 'msg t

val create : ?bit_size:('msg -> int) -> ?faults:Faults.t -> Graph.t -> 'msg t
(** A quiescent network over the given communication graph.  [faults]
    attaches a fault plan; omitted, the network is exactly the fault-free
    simulator. *)

val graph : 'msg t -> Graph.t
val n : 'msg t -> int

val neighbors : 'msg t -> int -> int array
(** Local knowledge of processor [v]: the ids of its neighbors (fixed port
    order). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue a unicast message for delivery at the end of the round.  Under a
    fault plan the message may be dropped, duplicated or delayed, and a
    send from a crashed processor is a silent no-op (its code "never ran").
    @raise Invalid_argument if [dst] is not a neighbor of [src]. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** Send to every neighbor (costs one message per neighbor). *)

val deliver : 'msg t -> unit
(** End the round: queued messages become readable via {!inbox}; the round
    counter increments.  Undelivered older inbox contents are discarded.
    Under a fault plan, matured straggler messages are appended and each
    inbox is reordered within the plan's window; crashed processors
    receive nothing. *)

val inbox : 'msg t -> int -> (int * 'msg) list
(** Messages received by [v] in the round that just ended, as
    [(sender, payload)] pairs in arrival order. *)

val skip_rounds : 'msg t -> int -> unit
(** Account for rounds in which the simulated algorithm exchanges messages
    we apply in aggregate (e.g. path flips); increments the round counter
    without touching mailboxes. *)

val rounds : 'msg t -> int
val messages : 'msg t -> int
val bits : 'msg t -> int

val max_message_bits : 'msg t -> int
(** Largest single message cost seen so far — compare against
    ⌈log₂ n⌉·O(1) to classify an execution as CONGEST-compatible. *)

val congest_word : 'msg t -> int
(** ⌈log₂ n⌉, the CONGEST word size for this network. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the smallest [k] with [2^k >= n] ([0] for [n <= 1]),
    computed with integer shifts — exact at and around powers of two where
    the naive float computation can misround. *)

(** {2 Fault observation} *)

val faults_enabled : 'msg t -> bool

val is_crashed : 'msg t -> int -> bool
(** The perfect-failure-detector query: processors may test whether a
    neighbor is crashed (always [false] on a fault-free network). *)

val dropped : 'msg t -> int
(** Messages lost in transit so far. *)

val duplicated : 'msg t -> int
(** Extra copies injected by the link so far. *)

val delayed : 'msg t -> int
(** Messages that arrived late (straggler senders) so far. *)

val fault_report : 'msg t -> Faults.report
(** The three fault counters as one record. *)
