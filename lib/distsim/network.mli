(** Synchronous message-passing network simulator (LOCAL / CONGEST).

    Processors are the vertices of a communication graph; computation
    proceeds in fault-free synchronous rounds.  During a round every
    processor may send messages to any subset of its neighbors (unicast);
    {!deliver} ends the round and makes the messages readable at their
    destinations.  The simulator meters the two standard distributed
    complexity measures — rounds and messages — plus total message bits, so
    that CONGEST (O(log n)-bit messages) versus LOCAL (unbounded) behaviour
    and the paper's sublinear-message claims (Theorem 3.3) are observable.

    The message type is a parameter; callers provide a [bit_size] costing
    function at creation (default: 1 bit per message, the unit used by the
    paper's 1-bit marking round). *)

open Mspar_graph

type 'msg t

val create : ?bit_size:('msg -> int) -> Graph.t -> 'msg t
(** A quiescent network over the given communication graph. *)

val graph : 'msg t -> Graph.t
val n : 'msg t -> int

val neighbors : 'msg t -> int -> int array
(** Local knowledge of processor [v]: the ids of its neighbors (fixed port
    order). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue a unicast message for delivery at the end of the round.
    @raise Invalid_argument if [dst] is not a neighbor of [src]. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** Send to every neighbor (costs one message per neighbor). *)

val deliver : 'msg t -> unit
(** End the round: queued messages become readable via {!inbox}; the round
    counter increments.  Undelivered older inbox contents are discarded. *)

val inbox : 'msg t -> int -> (int * 'msg) list
(** Messages received by [v] in the round that just ended, as
    [(sender, payload)] pairs in arrival order. *)

val skip_rounds : 'msg t -> int -> unit
(** Account for rounds in which the simulated algorithm exchanges messages
    we apply in aggregate (e.g. path flips); increments the round counter
    without touching mailboxes. *)

val rounds : 'msg t -> int
val messages : 'msg t -> int
val bits : 'msg t -> int

val max_message_bits : 'msg t -> int
(** Largest single message cost seen so far — compare against
    ⌈log₂ n⌉·O(1) to classify an execution as CONGEST-compatible. *)

val congest_word : 'msg t -> int
(** ⌈log₂ n⌉, the CONGEST word size for this network. *)
