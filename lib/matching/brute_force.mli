(** Exponential-time exact matching — the test oracle.

    Memoized recursion over vertex subsets: the maximum matching of the
    graph induced by a vertex mask either leaves the lowest vertex free or
    matches it to one of its neighbors.  Practical up to ~24 vertices; used
    only to validate the polynomial algorithms on small random graphs. *)

open Mspar_graph

val mcm_size : Graph.t -> int
(** Exact maximum matching size.
    @raise Invalid_argument for graphs with more than 30 vertices. *)

val has_augmenting_path_up_to : Graph.t -> Matching.t -> max_len:int -> bool
(** True iff an augmenting path of at most [max_len] edges exists for the
    matching — by exhaustive alternating-path enumeration.  Exponential in
    [max_len]; for test graphs only. *)
