open Mspar_graph

let mcm_size g =
  let nv = Graph.n g in
  if nv > 30 then invalid_arg "Brute_force.mcm_size: graph too large";
  (* neighbor masks *)
  let nbr = Array.make nv 0 in
  Graph.iter_edges g (fun u v ->
      nbr.(u) <- nbr.(u) lor (1 lsl v);
      nbr.(v) <- nbr.(v) lor (1 lsl u));
  let memo = Hashtbl.create 4096 in
  let rec go mask =
    if mask = 0 then 0
    else
      match Hashtbl.find_opt memo mask with
      | Some r -> r
      | None ->
          (* lowest set bit = lowest available vertex *)
          let v =
            let rec find i = if mask land (1 lsl i) <> 0 then i else find (i + 1) in
            find 0
          in
          let without = mask land lnot (1 lsl v) in
          let best = ref (go without) in
          let candidates = nbr.(v) land without in
          for u = v + 1 to nv - 1 do
            if candidates land (1 lsl u) <> 0 then begin
              let rest = without land lnot (1 lsl u) in
              let r = 1 + go rest in
              if r > !best then best := r
            end
          done;
          Hashtbl.replace memo mask !best;
          !best
  in
  go ((1 lsl nv) - 1)

let has_augmenting_path_up_to g matching ~max_len =
  let nv = Graph.n g in
  let on_path = Array.make nv false in
  (* DFS over alternating simple paths starting at a free vertex; [steps]
     counts edges used so far, the next edge must be unmatched iff the last
     one was matched. *)
  let rec extend v steps need_matched =
    if steps >= max_len then false
    else begin
      let found = ref false in
      let d = Graph.degree g v in
      let i = ref 0 in
      while (not !found) && !i < d do
        let u = Graph.neighbor g v !i in
        incr i;
        if not on_path.(u) then begin
          if need_matched then begin
            if Matching.mate matching v = u then begin
              on_path.(u) <- true;
              if extend u (steps + 1) false then found := true;
              on_path.(u) <- false
            end
          end
          else if Matching.mate matching v <> u then begin
            if not (Matching.is_matched matching u) then found := true
            else begin
              on_path.(u) <- true;
              if extend u (steps + 1) true then found := true;
              on_path.(u) <- false
            end
          end
        end
      done;
      !found
    end
  in
  let exists = ref false in
  let v = ref 0 in
  while (not !exists) && !v < nv do
    if not (Matching.is_matched matching !v) then begin
      on_path.(!v) <- true;
      if extend !v 0 false then exists := true;
      on_path.(!v) <- false
    end;
    incr v
  done;
  !exists
