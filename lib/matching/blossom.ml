open Mspar_graph

(* Classic contract-and-search formulation of Edmonds' algorithm.  The
   alternating BFS tree is grown from a free root; [used] marks even-level
   (outer) vertices, [p] stores the tree parent of odd-level vertices, and
   odd cycles are contracted by redirecting [base] pointers to the cycle's
   least common ancestor.  [depth] carries an (approximate under
   contraction) bound on the tree depth of outer vertices, which implements
   the depth-limited mode. *)

type state = {
  g : Graph.t;
  nv : int;
  mates : int array;
  p : int array;
  base : int array;
  used : bool array;
  blossom : bool array;
  depth : int array;
  lca_mark : int array;
  mutable lca_time : int;
  queue : int Queue.t;
}

let make_state g mates =
  let nv = Graph.n g in
  {
    g;
    nv;
    mates;
    p = Array.make nv (-1);
    base = Array.init nv (fun i -> i);
    used = Array.make nv false;
    blossom = Array.make nv false;
    depth = Array.make nv 0;
    lca_mark = Array.make nv 0;
    lca_time = 0;
    queue = Queue.create ();
  }

(* Least common ancestor of (the bases of) a and b in the alternating tree,
   found by marking a's root path with a fresh timestamp. *)
let lca st a b =
  st.lca_time <- st.lca_time + 1;
  let stamp = st.lca_time in
  let v = ref a in
  let continue_ = ref true in
  while !continue_ do
    v := st.base.(!v);
    st.lca_mark.(!v) <- stamp;
    if st.mates.(!v) = -1 then continue_ := false else v := st.p.(st.mates.(!v))
  done;
  let v = ref b in
  let result = ref (-1) in
  while !result = -1 do
    v := st.base.(!v);
    if st.lca_mark.(!v) = stamp then result := !v
    else v := st.p.(st.mates.(!v))
  done;
  !result

(* Flag every blossom vertex on the path from v down to base b, and set the
   parent pointers needed to traverse the (now contracted) cycle later. *)
let mark_path st v b child =
  let v = ref v and child = ref child in
  while st.base.(!v) <> b do
    st.blossom.(st.base.(!v)) <- true;
    st.blossom.(st.base.(st.mates.(!v))) <- true;
    st.p.(!v) <- !child;
    child := st.mates.(!v);
    v := st.p.(st.mates.(!v))
  done

(* Grow an alternating tree from [root]; return the free vertex ending an
   augmenting path, or -1.  Only expands outer vertices of depth < max_len,
   so any returned path has a depth certificate of at most max_len edges. *)
let find_path st ~max_len root =
  Array.fill st.used 0 st.nv false;
  Array.fill st.p 0 st.nv (-1);
  Array.fill st.depth 0 st.nv 0;
  for i = 0 to st.nv - 1 do
    st.base.(i) <- i
  done;
  Queue.clear st.queue;
  st.used.(root) <- true;
  Queue.add root st.queue;
  let result = ref (-1) in
  while !result = -1 && not (Queue.is_empty st.queue) do
    let v = Queue.pop st.queue in
    if st.depth.(v) < max_len then
      Graph.iter_neighbors st.g v (fun t ->
          if !result = -1 && st.base.(v) <> st.base.(t) && st.mates.(v) <> t
          then begin
            if t = root || (st.mates.(t) <> -1 && st.p.(st.mates.(t)) <> -1)
            then begin
              (* edge between two outer vertices: contract the blossom *)
              let curbase = lca st v t in
              Array.fill st.blossom 0 st.nv false;
              mark_path st v curbase t;
              mark_path st t curbase v;
              for i = 0 to st.nv - 1 do
                if st.blossom.(st.base.(i)) then begin
                  st.base.(i) <- curbase;
                  if not st.used.(i) then begin
                    st.used.(i) <- true;
                    st.depth.(i) <- st.depth.(v) + 1;
                    Queue.add i st.queue
                  end
                end
              done
            end
            else if st.p.(t) = -1 then begin
              st.p.(t) <- v;
              if st.mates.(t) = -1 then begin
                if st.depth.(v) + 1 <= max_len then result := t
              end
              else begin
                st.used.(st.mates.(t)) <- true;
                st.depth.(st.mates.(t)) <- st.depth.(v) + 2;
                Queue.add st.mates.(t) st.queue
              end
            end
          end)
  done;
  !result

(* Flip matched/unmatched edges along the found path back to the root. *)
let apply_augmentation st endpoint =
  let v = ref endpoint in
  while !v <> -1 do
    let pv = st.p.(!v) in
    let next = st.mates.(pv) in
    st.mates.(!v) <- pv;
    st.mates.(pv) <- !v;
    v := next
  done

let matching_of_mates nv mates =
  let m = Matching.create nv in
  Array.iteri (fun v u -> if u > v then Matching.add m v u) mates;
  m

let mates_of_init g init =
  let nv = Graph.n g in
  match init with
  | Some m ->
      if Matching.n m <> nv then invalid_arg "Blossom: init size mismatch";
      Array.init nv (Matching.mate m)
  | None ->
      let m = Greedy.maximal g in
      Array.init nv (Matching.mate m)

let solve ?init g =
  let mates = mates_of_init g init in
  let st = make_state g mates in
  (* One pass suffices for the exact algorithm: if no augmenting path exists
     from a free vertex, later augmentations cannot create one. *)
  for root = 0 to st.nv - 1 do
    if st.mates.(root) = -1 then begin
      let endpoint = find_path st ~max_len:st.nv root in
      if endpoint <> -1 then apply_augmentation st endpoint
    end
  done;
  matching_of_mates st.nv st.mates

let solve_bounded ?init ~max_len g =
  if max_len < 1 then invalid_arg "Blossom.solve_bounded: max_len < 1";
  let mates = mates_of_init g init in
  let st = make_state g mates in
  (* The one-pass argument does not hold under a depth cap, so sweep until a
     full pass yields no augmentation.  Each successful augmentation grows
     the matching, so there are at most n/2 sweeps. *)
  let progress = ref true in
  while !progress do
    progress := false;
    for root = 0 to st.nv - 1 do
      if st.mates.(root) = -1 then begin
        let endpoint = find_path st ~max_len root in
        if endpoint <> -1 then begin
          apply_augmentation st endpoint;
          progress := true
        end
      end
    done
  done;
  matching_of_mates st.nv st.mates

let deficiency_formula g ~a =
  let nv = Graph.n g in
  let size_a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a in
  (* count odd components of g - a *)
  let seen = Array.make nv false in
  let odd = ref 0 in
  for s = 0 to nv - 1 do
    if (not a.(s)) && not seen.(s) then begin
      let size = ref 0 in
      let stack = ref [ s ] in
      seen.(s) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            incr size;
            Graph.iter_neighbors g v (fun u ->
                if (not a.(u)) && not seen.(u) then begin
                  seen.(u) <- true;
                  stack := u :: !stack
                end)
      done;
      if !size mod 2 = 1 then incr odd
    end
  done;
  !odd - size_a

let tutte_berge_witness g matching =
  let nv = Graph.n g in
  if Matching.n matching <> nv then
    invalid_arg "Blossom.tutte_berge_witness: size mismatch";
  let mates = Array.init nv (Matching.mate matching) in
  let st = make_state g mates in
  (* D: outer vertices of the (failing) searches from every free vertex *)
  let d = Array.make nv false in
  for root = 0 to nv - 1 do
    if st.mates.(root) = -1 then begin
      let endpoint = find_path st ~max_len:nv root in
      if endpoint <> -1 then
        invalid_arg "Blossom.tutte_berge_witness: matching is not maximum";
      for v = 0 to nv - 1 do
        if st.used.(v) then d.(v) <- true
      done
    end
  done;
  (* A = N(D) \ D *)
  let a = Array.make nv false in
  for v = 0 to nv - 1 do
    if d.(v) then
      Graph.iter_neighbors g v (fun u -> if not d.(u) then a.(u) <- true)
  done;
  a

type gallai_edmonds = { d : bool array; a : bool array; c : bool array }

let gallai_edmonds g matching =
  let nv = Graph.n g in
  if Matching.n matching <> nv then
    invalid_arg "Blossom.gallai_edmonds: size mismatch";
  let mates = Array.init nv (Matching.mate matching) in
  let st = make_state g mates in
  let d = Array.make nv false in
  for root = 0 to nv - 1 do
    if st.mates.(root) = -1 then begin
      let endpoint = find_path st ~max_len:nv root in
      if endpoint <> -1 then
        invalid_arg "Blossom.gallai_edmonds: matching is not maximum";
      for v = 0 to nv - 1 do
        if st.used.(v) then d.(v) <- true
      done
    end
  done;
  let a = Array.make nv false in
  for v = 0 to nv - 1 do
    if d.(v) then
      Graph.iter_neighbors g v (fun u -> if not d.(u) then a.(u) <- true)
  done;
  let c = Array.init nv (fun v -> (not d.(v)) && not a.(v)) in
  { d; a; c }

let augment_once g matching =
  let nv = Graph.n g in
  if Matching.n matching <> nv then invalid_arg "Blossom.augment_once: size";
  let mates = Array.init nv (Matching.mate matching) in
  let st = make_state g mates in
  let found = ref false in
  let root = ref 0 in
  while (not !found) && !root < nv do
    if st.mates.(!root) = -1 then begin
      let endpoint = find_path st ~max_len:nv !root in
      if endpoint <> -1 then begin
        apply_augmentation st endpoint;
        found := true
      end
    end;
    incr root
  done;
  if !found then begin
    Matching.clear matching;
    Array.iteri (fun v u -> if u > v then Matching.add matching v u) st.mates
  end;
  !found
