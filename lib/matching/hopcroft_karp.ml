open Mspar_graph

let bipartition g =
  let nv = Graph.n g in
  let color = Array.make nv (-1) in
  let ok = ref true in
  let queue = Queue.create () in
  for s = 0 to nv - 1 do
    if color.(s) < 0 then begin
      color.(s) <- 0;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Graph.iter_neighbors g v (fun u ->
            if color.(u) < 0 then begin
              color.(u) <- 1 - color.(v);
              Queue.add u queue
            end
            else if color.(u) = color.(v) then ok := false)
      done
    end
  done;
  if !ok then Some (Array.map (fun c -> c = 0) color) else None

let infinity_dist = max_int

let solve_with_sides ?(max_phases = max_int) g side =
  let nv = Graph.n g in
  if Array.length side <> nv then
    invalid_arg "Hopcroft_karp.solve_with_sides: bad side array";
  Graph.iter_edges g (fun u v ->
      if side.(u) = side.(v) then
        invalid_arg "Hopcroft_karp: edge inside one side");
  let matching = Matching.create nv in
  (* dist over left vertices; dist_nil plays the role of the NIL sentinel of
     the classic formulation, so DFS only completes along *shortest*
     augmenting paths — required for the phase-count approximation bound. *)
  let dist = Array.make nv infinity_dist in
  let dist_nil = ref infinity_dist in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    dist_nil := infinity_dist;
    Array.fill dist 0 nv infinity_dist;
    for v = 0 to nv - 1 do
      if side.(v) && not (Matching.is_matched matching v) then begin
        dist.(v) <- 0;
        Queue.add v queue
      end
    done;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if dist.(v) < !dist_nil then
        Graph.iter_neighbors g v (fun u ->
            let w = Matching.mate matching u in
            if w < 0 then begin
              if dist.(v) + 1 < !dist_nil then dist_nil := dist.(v) + 1
            end
            else if dist.(w) = infinity_dist then begin
              dist.(w) <- dist.(v) + 1;
              Queue.add w queue
            end)
    done;
    !dist_nil <> infinity_dist
  in
  let rec dfs v =
    let found = ref false in
    let d = Graph.degree g v in
    let i = ref 0 in
    while (not !found) && !i < d do
      let u = Graph.neighbor g v !i in
      incr i;
      let w = Matching.mate matching u in
      if w < 0 then begin
        if dist.(v) + 1 = !dist_nil then begin
          Matching.remove_vertex matching v;
          Matching.add matching v u;
          found := true
        end
      end
      else if dist.(w) = dist.(v) + 1 && dfs w then begin
        (* the recursive call freed u; relink v to u *)
        Matching.remove_vertex matching v;
        Matching.add matching v u;
        found := true
      end
    done;
    if not !found then dist.(v) <- infinity_dist;
    !found
  in
  let phase = ref 0 in
  let continue_ = ref true in
  while !continue_ && !phase < max_phases do
    if bfs () then begin
      for v = 0 to nv - 1 do
        if side.(v) && not (Matching.is_matched matching v) then
          ignore (dfs v)
      done;
      incr phase
    end
    else continue_ := false
  done;
  matching

let solve ?max_phases g =
  match bipartition g with
  | None -> invalid_arg "Hopcroft_karp.solve: graph is not bipartite"
  | Some side -> solve_with_sides ?max_phases g side

(* König: Z = vertices reachable from free left vertices by alternating
   paths (unmatched edge left->right, matched edge right->left); the cover
   is (L \ Z) ∪ (R ∩ Z). *)
let min_vertex_cover g =
  match bipartition g with
  | None -> invalid_arg "Hopcroft_karp.min_vertex_cover: graph is not bipartite"
  | Some side ->
      let matching = solve_with_sides g side in
      let nv = Graph.n g in
      let in_z = Array.make nv false in
      let queue = Queue.create () in
      for v = 0 to nv - 1 do
        if side.(v) && not (Matching.is_matched matching v) then begin
          in_z.(v) <- true;
          Queue.add v queue
        end
      done;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        if side.(v) then
          (* travel unmatched edges to the right side *)
          Graph.iter_neighbors g v (fun u ->
              if Matching.mate matching v <> u && not in_z.(u) then begin
                in_z.(u) <- true;
                Queue.add u queue
              end)
        else begin
          (* travel the matched edge back to the left side *)
          let w = Matching.mate matching v in
          if w >= 0 && not in_z.(w) then begin
            in_z.(w) <- true;
            Queue.add w queue
          end
        end
      done;
      let cover =
        Array.init nv (fun v -> if side.(v) then not in_z.(v) else in_z.(v))
      in
      (matching, cover)
