open Mspar_prelude
open Mspar_graph

let maximal_on_edges ~n edges =
  let m = Matching.create n in
  Array.iter
    (fun (u, v) ->
      if u <> v && (not (Matching.is_matched m u)) && not (Matching.is_matched m v)
      then Matching.add m u v)
    edges;
  m

let maximal g =
  let m = Matching.create (Graph.n g) in
  Graph.iter_edges g (fun u v ->
      if (not (Matching.is_matched m u)) && not (Matching.is_matched m v) then
        Matching.add m u v);
  m

let maximal_random rng g =
  let edges = Graph.edges g in
  Rng.shuffle_in_place rng edges;
  maximal_on_edges ~n:(Graph.n g) edges
