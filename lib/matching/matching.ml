open Mspar_graph

type t = { mates : int array; mutable size : int }

let create n =
  if n < 0 then invalid_arg "Matching.create: negative n";
  { mates = Array.make n (-1); size = 0 }

let n t = Array.length t.mates
let size t = t.size
let mate t v = t.mates.(v)
let is_matched t v = t.mates.(v) >= 0

let add t u v =
  if u = v then invalid_arg "Matching.add: self-loop";
  if t.mates.(u) >= 0 || t.mates.(v) >= 0 then
    invalid_arg "Matching.add: endpoint already matched";
  t.mates.(u) <- v;
  t.mates.(v) <- u;
  t.size <- t.size + 1

let remove_edge t u v =
  if t.mates.(u) <> v || t.mates.(v) <> u then
    invalid_arg "Matching.remove_edge: not mates";
  t.mates.(u) <- -1;
  t.mates.(v) <- -1;
  t.size <- t.size - 1

let remove_vertex t v =
  let u = t.mates.(v) in
  if u >= 0 then remove_edge t v u

let copy t = { mates = Array.copy t.mates; size = t.size }

let clear t =
  Array.fill t.mates 0 (Array.length t.mates) (-1);
  t.size <- 0

let iter_edges t f =
  Array.iteri (fun v u -> if u > v then f v u) t.mates

let edges t =
  let acc = ref [] in
  iter_edges t (fun u v -> acc := (u, v) :: !acc);
  List.sort compare !acc

let of_edges ~n:nv pairs =
  let t = create nv in
  List.iter (fun (u, v) -> add t u v) pairs;
  t

let is_valid g t =
  Array.length t.mates = Graph.n g
  &&
  let ok = ref true in
  Array.iteri
    (fun v u ->
      if u >= 0 then
        if t.mates.(u) <> v || not (Graph.has_edge g u v) then ok := false)
    t.mates;
  !ok

let is_maximal g t =
  let ok = ref true in
  Graph.iter_edges g (fun u v ->
      if t.mates.(u) < 0 && t.mates.(v) < 0 then ok := false);
  !ok

let matched_vertices t =
  let acc = ref [] in
  Array.iteri (fun v u -> if u >= 0 then acc := v :: !acc) t.mates;
  Array.of_list (List.rev !acc)

let free_vertices t =
  let acc = ref [] in
  Array.iteri (fun v u -> if u < 0 then acc := v :: !acc) t.mates;
  Array.of_list (List.rev !acc)

let is_perfect t = 2 * t.size = Array.length t.mates

let restrict_to g t =
  let dropped = ref 0 in
  Array.iteri
    (fun v u ->
      if u > v && not (Graph.has_edge g v u) then begin
        remove_edge t v u;
        incr dropped
      end)
    t.mates;
  !dropped

let augment_along t path =
  let arr = Array.of_list path in
  let len = Array.length arr in
  if len < 2 || len mod 2 <> 0 then
    invalid_arg "Matching.augment_along: need an odd number of edges";
  if is_matched t arr.(0) || is_matched t arr.(len - 1) then
    invalid_arg "Matching.augment_along: endpoints must be free";
  for i = 0 to len - 2 do
    let u = arr.(i) and v = arr.(i + 1) in
    if i mod 2 = 1 && t.mates.(u) <> v then
      invalid_arg "Matching.augment_along: path does not alternate"
  done;
  (* unmatch the matched (odd) pairs, then match the even pairs *)
  let i = ref 1 in
  while !i + 1 < len do
    remove_edge t arr.(!i) arr.(!i + 1);
    i := !i + 2
  done;
  let i = ref 0 in
  while !i + 1 < len do
    add t arr.(!i) arr.(!i + 1);
    i := !i + 2
  done

let symmetric_difference_paths a b =
  if Array.length a.mates <> Array.length b.mates then
    invalid_arg "Matching.symmetric_difference_paths: size mismatch";
  let nv = Array.length a.mates in
  (* adjacency of the symmetric difference, tagged by origin *)
  let adj = Array.make nv [] in
  let add_edge tag u v =
    adj.(u) <- (v, tag) :: adj.(u);
    adj.(v) <- (u, tag) :: adj.(v)
  in
  iter_edges a (fun u v -> if b.mates.(u) <> v then add_edge `A u v);
  iter_edges b (fun u v -> if a.mates.(u) <> v then add_edge `B u v);
  let seen = Array.make nv false in
  let augmenting = ref 0 in
  for s = 0 to nv - 1 do
    if (not seen.(s)) && adj.(s) <> [] then begin
      (* walk the component (a path or even cycle, degrees are <= 2) *)
      let count_a = ref 0 and count_b = ref 0 in
      let stack = ref [ s ] in
      seen.(s) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            List.iter
              (fun (u, tag) ->
                if not seen.(u) then begin
                  seen.(u) <- true;
                  stack := u :: !stack
                end;
                (* count each edge once via ordering *)
                if v < u then
                  match tag with
                  | `A -> incr count_a
                  | `B -> incr count_b)
              adj.(v)
      done;
      if !count_b > !count_a then incr augmenting
    end
  done;
  !augmenting

let pp ppf t =
  Format.fprintf ppf "matching(size=%d:%a)" t.size
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf (u, v) -> Format.fprintf ppf " %d-%d" u v))
    (edges t)
