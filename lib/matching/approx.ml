
let phases_for eps =
  if eps <= 0.0 then invalid_arg "Approx.phases_for: eps must be positive";
  int_of_float (ceil (1.0 /. eps))

let solve_general ~eps g =
  let k = phases_for eps in
  let init = Greedy.maximal g in
  Blossom.solve_bounded ~init ~max_len:((2 * k) + 1) g

let solve ~eps g =
  let k = phases_for eps in
  match Hopcroft_karp.bipartition g with
  | Some side -> Hopcroft_karp.solve_with_sides ~max_phases:k g side
  | None -> solve_general ~eps g
