(** Hopcroft–Karp maximum matching for bipartite graphs.

    This is the `O(m√n)` algorithm the paper cites ([51, 52]) as the
    black-box matcher: each phase finds a maximal set of vertex-disjoint
    shortest augmenting paths by BFS + DFS.  Stopping after `⌈1/ε⌉` phases
    yields a `(1+ε)`-approximate matching in `O(m/ε)` — the exact mode runs
    phases until none remain. *)

open Mspar_graph

val bipartition : Graph.t -> (bool array) option
(** 2-coloring of the graph, or [None] if an odd cycle exists.  Isolated
    vertices are colored [false]. *)

val solve : ?max_phases:int -> Graph.t -> Matching.t
(** Maximum matching of a bipartite graph.  With [max_phases = k] the
    result has no augmenting path shorter than [2k+1], hence is a
    [(1 + 1/k)]-approximation.
    @raise Invalid_argument if the graph is not bipartite. *)

val solve_with_sides : ?max_phases:int -> Graph.t -> bool array -> Matching.t
(** Same, with a caller-supplied 2-coloring ([true] = left side).
    @raise Invalid_argument if [sides] is malformed or an edge joins two vertices of one side. *)

val min_vertex_cover : Graph.t -> Matching.t * bool array
(** König's construction: a maximum matching together with a minimum vertex
    cover of the same cardinality (cover.(v) iff v is in the cover).  The
    returned cover certifies the matching's optimality: every edge is
    covered and |cover| = |matching|.
    @raise Invalid_argument if the graph is not bipartite. *)
