(** Edmonds' blossom algorithm — exact maximum matching in general graphs.

    This is the hand-coded exact baseline: O(n·m) with the classic
    contract-and-search formulation (alternating BFS trees; odd cycles are
    contracted by redirecting [base] pointers).  Used as ground truth for
    every approximation-ratio measurement in the benchmarks and tests.

    A depth-limited mode supports the `(1+ε)`-approximation pipeline: if the
    alternating search is cut off at tree depth [2k-1], the resulting
    matching has (empirically, and in the uncontracted case provably) no
    short augmenting paths, which bounds its gap to optimal by a factor
    [1 + 1/k]. The depth accounting under contraction is approximate; the
    test suite validates the achieved ratio against the exact solver. *)

open Mspar_graph

val solve : ?init:Matching.t -> Graph.t -> Matching.t
(** Maximum matching.  [init] seeds the search (defaults to a greedy maximal
    matching, which saves roughly half the augmentation phases). *)

val solve_bounded : ?init:Matching.t -> max_len:int -> Graph.t -> Matching.t
(** Repeatedly augment along paths whose alternating-tree depth certificate
    is at most [max_len] edges; stop when the bounded search finds no
    further path.  [max_len >= n] coincides with {!solve}.
    @raise Invalid_argument if [max_len < 1] or [init] has the wrong size. *)

val augment_once : Graph.t -> Matching.t -> bool
(** Find one augmenting path for the given matching and apply it.  Returns
    [false] iff the matching is already maximum.  Mutates the matching.
    @raise Invalid_argument if [matching] has the wrong size. *)

val tutte_berge_witness : Graph.t -> Matching.t -> bool array
(** Edmonds–Gallai certificate of maximality.  Given a {e maximum} matching
    [m], returns the separator [a] (as a membership array) for which the
    Tutte–Berge formula is tight:

    [n − 2·|m| = odd_components (g − a) − |a|].

    Construction: [D] is the set of outer vertices over the (failing)
    alternating-tree searches from every free vertex, [a = N(D) \ D].  The
    test-suite checks the identity on random graphs, which certifies both
    this function and the maximality of the solver's output.
    @raise Invalid_argument if sizes mismatch or the matching is not maximum. *)

val deficiency_formula : Graph.t -> a:bool array -> int
(** [odd_components (g − a) − |a|] — the right-hand side of the Tutte–Berge
    formula for a candidate separator. *)

type gallai_edmonds = {
  d : bool array;
      (** vertices missed by at least one maximum matching; every component
          of the subgraph induced by [d] is factor-critical *)
  a : bool array;  (** N(d) \ d — the separator of the Tutte–Berge formula *)
  c : bool array;  (** the rest; perfectly matched inside itself *)
}

val gallai_edmonds : Graph.t -> Matching.t -> gallai_edmonds
(** The Gallai–Edmonds structure of the graph, derived from a {e maximum}
    matching.  The test-suite verifies the three classical properties:
    components of D are factor-critical, C has a perfect matching within
    itself, and every maximum matching matches A into distinct D-components.
    @raise Invalid_argument if the matching is not maximum. *)
