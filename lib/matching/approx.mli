(** (1+ε)-approximate maximum matching — the paper's black-box matcher.

    The paper invokes the Hopcroft–Karp/Micali–Vazirani result that a
    matching free of augmenting paths shorter than [2k+1] is a
    [(1 + 1/k)]-approximation of the MCM, computable in O(m/ε).  This module
    packages that black box:

    {ul
    {- bipartite inputs take the genuine phase-limited Hopcroft–Karp path;}
    {- general inputs take the depth-limited blossom search (see
       {!Blossom.solve_bounded}).}}

    Both start from a greedy maximal matching (already 2-approximate). *)

open Mspar_graph

val phases_for : float -> int
(** [phases_for eps = ⌈1/eps⌉]; the phase/length parameter k such that a
    matching with no augmenting path of ≤ 2k−1 edges is
    (1+1/k) ≤ (1+eps)-approximate.
    @raise Invalid_argument if [eps <= 0]. *)

val solve : eps:float -> Graph.t -> Matching.t
(** [(1+eps)]-approximate MCM.  Auto-detects bipartiteness.
    @raise Invalid_argument unless [0 < eps]. *)

val solve_general : eps:float -> Graph.t -> Matching.t
(** Forces the general-graph (blossom-based) path even on bipartite
    inputs. *)
