(** Greedy maximal matching — the 2-approximate baseline.

    A maximal matching is a 2-approximation of the maximum matching, and the
    naive greedy scan computes one in O(m).  Both a deterministic edge-order
    scan and a randomized-order variant are provided; the random variant is
    the standard baseline the paper's sequential result is compared
    against. *)

open Mspar_prelude
open Mspar_graph

val maximal : Graph.t -> Matching.t
(** Scan edges in sorted order, adding every edge with both endpoints
    free. O(m) probes. *)

val maximal_random : Rng.t -> Graph.t -> Matching.t
(** Same, over a uniformly random edge order. *)

val maximal_on_edges : n:int -> (int * int) array -> Matching.t
(** Greedy over an explicit edge sequence (no graph needed); used by the
    distributed and dynamic layers. *)
