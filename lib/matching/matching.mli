(** Matchings as mutable mate arrays.

    A matching on vertices [0 .. n-1] stores, for each vertex, its mate or
    [-1].  All algorithms in this library produce and consume this
    representation. *)

open Mspar_graph

type t

val create : int -> t
(** Empty matching on [n] vertices.
    @raise Invalid_argument if [n] is negative. *)

val n : t -> int
val size : t -> int
(** Number of matched edges. O(1). *)

val mate : t -> int -> int
(** Mate of a vertex, or [-1]. *)

val is_matched : t -> int -> bool

val add : t -> int -> int -> unit
(** [add t u v] matches [u] with [v].
    @raise Invalid_argument if [u = v] or either endpoint is already
    matched. *)

val remove_edge : t -> int -> int -> unit
(** [remove_edge t u v] unmatches the pair.
    @raise Invalid_argument if [u] and [v] are not mates. *)

val remove_vertex : t -> int -> unit
(** Unmatch [v] (no-op if free). *)

val copy : t -> t
val clear : t -> unit

val edges : t -> (int * int) list
(** Matched pairs, normalised (u < v), sorted. *)

val of_edges : n:int -> (int * int) list -> t

val iter_edges : t -> (int -> int -> unit) -> unit

val is_valid : Graph.t -> t -> bool
(** Every matched pair is an edge of the graph and the mate involution is
    consistent. *)

val is_maximal : Graph.t -> t -> bool
(** No graph edge has both endpoints free. *)

val matched_vertices : t -> int array
val free_vertices : t -> int array

val is_perfect : t -> bool
(** Every vertex is matched. *)

val restrict_to : Graph.t -> t -> int
(** Drop matched pairs that are not edges of the graph (the pruning step of
    the dynamic schemes); returns how many pairs were dropped. *)

val augment_along : t -> int list -> unit
(** Flip matched/unmatched status along an augmenting path given as a
    vertex list (odd number of edges, free endpoints, alternating).
    @raise Invalid_argument if the path is not augmenting for this
    matching. *)

val symmetric_difference_paths : t -> t -> int
(** Number of connected components of the symmetric difference that are
    augmenting with respect to the first matching — used in tests of the
    stability lemma.
    @raise Invalid_argument if the two matchings have different sizes. *)

val pp : Format.formatter -> t -> unit
