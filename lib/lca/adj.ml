open Mspar_prelude
open Mspar_graph
open Mspar_dynamic

(* Probe-metered adjacency surface for the oracle: one abstraction over
   the static sorted-CSR [Graph.t] and the serve daemon's mutable
   [Dyn_graph.t].  Every read is charged to the underlying probe
   counter in the same function that performs it, so the MSP014
   dominated-by-charge discipline holds for this whole module.

   Positional reads ([read_positions]) index into the *canonical sorted*
   adjacency — the order [Dyn_graph.snapshot] produces — because that is
   the order the batch G_Delta builder samples against; bit-for-bit
   replay parity depends on it.  Static CSR is already sorted, so the
   static branch reads positions directly in O(k) probes.  The dynamic
   structure permutes neighbors under deletion, so its branch first
   materializes the sorted neighborhood (O(degree) probes, the honest
   cost of canonical order over a mutable adjacency). *)

type t =
  | Static of Graph.t
  | Dyn of { g : Dyn_graph.t; mutable scratch : int array }

let of_static g = Static g
let of_dyn g = Dyn { g; scratch = Array.make 16 0 }

let n = function Static g -> Graph.n g | Dyn { g; _ } -> Dyn_graph.n g

let degree t v =
  match t with
  | Static g -> Graph.degree g v
  | Dyn { g; _ } -> Dyn_graph.degree g v

let max_sample_degree = function
  (* tight for static; for dyn only [n] bounds a future degree *)
  | Static g -> Graph.max_degree g
  | Dyn { g; _ } -> Dyn_graph.n g

let sorted_dyn g scratch v =
  let d = Dyn_graph.degree g v in
  for i = 0 to d - 1 do
    Array.unsafe_set scratch i (Dyn_graph.neighbor g v i)
  done;
  Isort.sort_range scratch ~pos:0 ~len:d;
  d

let ensure_scratch t d =
  match t with
  | Static _ -> [||]
  | Dyn r ->
      if Array.length r.scratch < d then
        r.scratch <- Array.make (Int.max d (2 * Array.length r.scratch)) 0;
      r.scratch

let neighbors_into t v ~out =
  match t with
  | Static g ->
      let d = Graph.neighbors_into_uncounted g v ~out in
      Graph.add_probes g d;
      d
  | Dyn { g; _ } ->
      let d = Dyn_graph.degree g v in
      if Array.length out < d then
        invalid_arg "Adj.neighbors_into: out shorter than degree";
      for i = 0 to d - 1 do
        Array.unsafe_set out i (Dyn_graph.neighbor g v i)
      done;
      Isort.sort_range out ~pos:0 ~len:d;
      d
[@@hot]

let read_positions t v ~idx ~k ~out =
  match t with
  | Static g ->
      for s = 0 to k - 1 do
        Array.unsafe_set out s
          (Graph.neighbor_uncounted g v (Array.unsafe_get idx s))
      done;
      Graph.add_probes g k
  | Dyn { g; _ } as t ->
      let scratch = ensure_scratch t (Dyn_graph.degree g v) in
      let d = sorted_dyn g scratch v in
      for s = 0 to k - 1 do
        let i = Array.unsafe_get idx s in
        if i < 0 || i >= d then invalid_arg "Adj.read_positions: bad index";
        Array.unsafe_set out s (Array.unsafe_get scratch i)
      done
[@@hot]

let has_edge t u v =
  match t with
  | Static g -> Graph.has_edge g u v
  | Dyn { g; _ } -> Dyn_graph.has_edge g u v

let probes = function
  | Static g -> Graph.probes g
  | Dyn { g; _ } -> Dyn_graph.probes g

let reset_probes = function
  | Static g -> Graph.reset_probes g
  | Dyn { g; _ } -> Dyn_graph.reset_probes g
