(* Bounded LRU memoization for the replay oracle: int keys (vertices, or
   packed edge codes) to arbitrary payloads, O(1) expected per
   operation.  The recency list is threaded through two int arrays over
   fixed slots — no per-access allocation, so [find] can sit on the
   query hot path — and every hit/miss/eviction/invalidation is counted,
   because the whole point of the cache is a measurable amortization
   claim (bench_csv/lca-query.csv). *)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidations : int;
}

type 'a t = {
  capacity : int;
  index : (int, int) Hashtbl.t; (* key -> slot *)
  keys : int array;
  values : 'a option array;
  (* doubly-linked recency list over slots; free slots threaded through
     [next] *)
  prev : int array;
  next : int array;
  mutable head : int; (* most recently used; -1 when empty *)
  mutable tail : int; (* least recently used *)
  mutable free : int; (* free-list head; -1 when full *)
  mutable len : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  let next = Array.init capacity (fun i -> if i + 1 < capacity then i + 1 else -1) in
  {
    capacity;
    index = Hashtbl.create (2 * capacity);
    keys = Array.make capacity 0;
    values = Array.make capacity None;
    prev = Array.make capacity (-1);
    next;
    head = -1;
    tail = -1;
    free = 0;
    len = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    invalidations = 0;
  }

let capacity t = t.capacity
let length t = t.len

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
    invalidations = t.invalidations;
  }

(* recency-list surgery: all O(1), no allocation *)

let unlink t s =
  let p = t.prev.(s) and n = t.next.(s) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let push_front t s =
  t.prev.(s) <- -1;
  t.next.(s) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- s else t.tail <- s;
  t.head <- s

let find t k =
  match Hashtbl.find t.index k with
  | exception Not_found ->
      t.misses <- t.misses + 1;
      None
  | s ->
      t.hits <- t.hits + 1;
      if t.head <> s then begin
        unlink t s;
        push_front t s
      end;
      (* the stored option itself: a hit allocates nothing *)
      Array.unsafe_get t.values s
[@@hot]

let put t k v =
  match Hashtbl.find t.index k with
  | s ->
      t.values.(s) <- Some v;
      if t.head <> s then begin
        unlink t s;
        push_front t s
      end
  | exception Not_found ->
      let s =
        if t.free >= 0 then begin
          let s = t.free in
          t.free <- t.next.(s);
          t.len <- t.len + 1;
          s
        end
        else begin
          (* full: evict the least recently used slot *)
          let s = t.tail in
          Hashtbl.remove t.index t.keys.(s);
          t.evictions <- t.evictions + 1;
          unlink t s;
          s
        end
      in
      t.keys.(s) <- k;
      t.values.(s) <- Some v;
      Hashtbl.replace t.index k s;
      push_front t s;
      t.insertions <- t.insertions + 1

let remove t k =
  match Hashtbl.find t.index k with
  | exception Not_found -> ()
  | s ->
      Hashtbl.remove t.index k;
      unlink t s;
      t.values.(s) <- None;
      t.next.(s) <- t.free;
      t.free <- s;
      t.len <- t.len - 1;
      t.invalidations <- t.invalidations + 1

let clear t =
  if t.len > 0 then begin
    t.invalidations <- t.invalidations + t.len;
    Hashtbl.reset t.index;
    Array.fill t.values 0 t.capacity None;
    for i = 0 to t.capacity - 1 do
      t.prev.(i) <- -1;
      t.next.(i) <- (if i + 1 < t.capacity then i + 1 else -1)
    done;
    t.head <- -1;
    t.tail <- -1;
    t.free <- 0;
    t.len <- 0
  end
