(** Probe-metered adjacency surface for the local-access oracle.

    One read-only abstraction over the static sorted-CSR
    {!Mspar_graph.Graph.t} and the serve daemon's mutable
    {!Mspar_dynamic.Dyn_graph.t}.  Every adjacency read charges the
    underlying probe counter in the same function that performs it, so
    the oracle's O(Δ)-probes-per-query claim is measured against the
    same meter as the batch builders (and the MSP014 lint discipline
    extends over this module).

    Positional reads index into the {e canonical sorted} neighbor order —
    the order [Dyn_graph.snapshot] materializes — because that is the
    order the batch G_Δ builder samples against; bit-for-bit replay
    parity depends on it.  Static CSR is already sorted (O(k) probes per
    k positions); the dynamic structure permutes neighbors under
    deletion, so its positional reads first materialize the sorted
    neighborhood at O(degree) probes — the honest cost of canonical
    order over a mutable adjacency. *)

type t

val of_static : Mspar_graph.Graph.t -> t
val of_dyn : Mspar_dynamic.Dyn_graph.t -> t

val n : t -> int
(** Vertex count (free: metadata, not a probe). *)

val degree : t -> int -> int
(** Degree (free: metadata, not a probe). *)

val max_sample_degree : t -> int
(** Upper bound on any degree a positional sample may index into —
    sizes the oracle's {!Mspar_prelude.Sampling.t} scratch.  Tight
    ([Graph.max_degree]) for static graphs; the vertex count for
    dynamic ones, whose degrees can grow after the oracle is built. *)

val neighbors_into : t -> int -> out:int array -> int
(** [neighbors_into t v ~out] writes the neighbors of [v] in canonical
    sorted order into [out] and returns the degree; charges [degree]
    probes.

    @raise Invalid_argument if [out] is shorter than the degree of [v]. *)

val read_positions : t -> int -> idx:int array -> k:int -> out:int array -> unit
(** [read_positions t v ~idx ~k ~out] writes the neighbors of [v] at
    sorted-order positions [idx.(0..k-1)] into [out.(0..k-1)].  Charges
    [k] probes on static graphs and [degree] on dynamic ones (see the
    module preamble).

    @raise Invalid_argument if some index is outside [0, degree). *)

val has_edge : t -> int -> int -> bool
(** Edge membership.  Static graphs binary-search the smaller adjacency
    list and charge the probes read; the dynamic structure answers from
    its O(1) hash index without charging — its membership check is not
    an adjacency-list probe. *)

val probes : t -> int
(** Underlying probe counter. *)

val reset_probes : t -> unit
