(** Local-access oracle: point queries against the G_Δ sparsifier and
    its random-greedy maximal matching, in O(Δ) probes per sparsifier
    query, without materializing either object.

    The batch builder's per-vertex coin flips are a pure function of
    [(seed, v)] ({!Mspar_prelude.Rng.derive} via
    {!Mspar_core.Mark_kernel.Split}), so one vertex's marks can be
    replayed on demand against probe-metered adjacency access
    ({!Adj}).  Answers are bit-for-bit those of the materialized
    [Gdelta.marked_codes_seeded] / greedy matching on the same
    [(seed, graph, delta, rule)] — QCheck-enforced in [test_lca].

    Matching queries simulate random-greedy maximal matching locally:
    edges carry deterministic 62-bit ranks ({!edge_rank}) and an edge is
    matched iff no adjacent G_Δ edge of strictly lower [(rank, a, b)]
    is.  The recursion only descends in rank, so it terminates; its
    worst-case probe cost is polynomial in the degrees along the rank
    chain, and the bounded memo ({!Cache}) is what makes repeated
    queries cheap.

    Replay caching and invalidation: per-vertex mark arrays, per-edge
    G_Δ answers, and matching-memo entries live in bounded LRU caches.
    Flipping edge [(u,v)] changes the replayed marks of [u] and [v]
    only, so {!invalidate_edge} evicts exactly those two mark entries;
    the edge-level and matching memos are dropped wholesale (their
    entries cannot be scanned by endpoint, and matching membership
    cascades along rank chains arbitrarily far).  The serve daemon
    calls this on every applied update — its read-your-writes
    contract. *)

type t

type stats = {
  mark_cache : Cache.stats;
  edge_cache : Cache.stats;
  mm_cache : Cache.stats;
  probes : int;  (** underlying adjacency probe counter *)
}

val create :
  ?rule:Mspar_core.Mark_kernel.rule ->
  ?mark_capacity:int ->
  ?edge_capacity:int ->
  ?mm_capacity:int ->
  Adj.t ->
  seed:int ->
  delta:int ->
  t
(** [create adj ~seed ~delta] builds an oracle replaying the seeded
    batch builder ([Gdelta.sparsify_seeded], default rule
    [Mark_all_at_most_two_delta]) over [adj].  [mark_capacity] /
    [edge_capacity] / [mm_capacity] bound the three LRU memos
    (defaults 4096 / 65536 / 65536 entries).

    @raise Invalid_argument if [delta < 1], a cache capacity is [< 1],
    or the vertex count exceeds the packable range
    ({!Mspar_graph.Graph.pack_shift}). *)

val delta : t -> int
val seed : t -> int
val rule : t -> Mspar_core.Mark_kernel.rule

val in_gdelta : t -> u:int -> v:int -> bool
(** Is [(u,v)] an edge of the sparsifier G_Δ — i.e. a graph edge marked
    by at least one endpoint's replayed coins?  Cold cost: at most
    [2*keep <= 4*delta] probes for the two endpoint replays plus the
    O(log max_degree) binary search inside [Adj.has_edge]; cached
    endpoints answer from the mark memo, and a repeated query hits the
    edge-level memo at zero probes.  (Dynamic adjacency pays degree
    instead of [delta] at a cold high-degree endpoint — see {!Adj}.) *)

val marked_neighbors : t -> int -> int array
(** The neighbors [v] marks under its replayed coins, sorted ascending.
    A fresh array; mutating it does not corrupt the cache. *)

val in_matching : t -> u:int -> v:int -> bool
(** Is [(u,v)] in the locally-simulated random-greedy maximal matching
    of G_Δ? *)

val is_matched : t -> int -> bool
(** Is some edge incident to [v] in the locally-simulated random-greedy
    maximal matching of G_Δ?  Scans the neighborhood of [v], so costs
    O(degree · Δ) probes cold plus the recursive matching simulation. *)

val edge_rank : seed:int -> int -> int -> int
(** Deterministic non-negative 62-bit rank of an (unordered) edge — a
    splitmix-style finalizer over [(seed, min u v, max u v)].  Exposed
    so tests and benches can materialize the same greedy order the
    oracle simulates. *)

val invalidate_edge : t -> int -> int -> unit
(** [invalidate_edge t u v]: the graph gained or lost edge [(u,v)] —
    evict the two affected mark entries and the whole edge-level and
    matching memos.  Required before the next query whenever the
    underlying dynamic adjacency changed; stale entries otherwise serve
    pre-update answers. *)

val invalidate_all : t -> unit
(** Drop all three memos (snapshot reload, recovery). *)

val probes : t -> int
(** Probe counter of the underlying adjacency (shared with any other
    reader of the same graph). *)

val reset_probes : t -> unit
val stats : t -> stats
