(** Bounded LRU memoization for the replay oracle.

    Int keys (vertices, or packed edge codes) to arbitrary payloads;
    O(1) expected find/put/remove with least-recently-used eviction at a
    fixed capacity.  The recency list lives in two int arrays over fixed
    slots, so a {!find} hit touches no allocator — it can sit on the
    query hot path — and every hit, miss, insertion, eviction and
    invalidation is counted: the oracle's amortization claim
    ([bench_csv/lca-query.csv]) is measured off these counters, not
    asserted. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;  (** capacity displacements (LRU victim dropped) *)
  invalidations : int;
      (** entries dropped by {!remove}/{!clear} — the dynamic-update
          invalidation traffic *)
}

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Entries currently held. *)

val find : 'a t -> int -> 'a option
(** Lookup; a hit refreshes the entry's recency and returns the stored
    option without allocating. *)

val put : 'a t -> int -> 'a -> unit
(** Insert or overwrite; evicts the least recently used entry when at
    capacity. *)

val remove : 'a t -> int -> unit
(** Drop one key (no-op when absent) — the per-vertex invalidation hook. *)

val clear : 'a t -> unit
(** Drop everything — the epoch-style invalidation hook for entries
    whose dependencies cannot be tracked per key (matching state). *)

val stats : 'a t -> stats
