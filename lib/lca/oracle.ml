open Mspar_prelude
open Mspar_graph
open Mspar_core

(* Local-access oracle for the G_Delta sparsifier and its random-greedy
   maximal matching, after Nguyen-Onak style local simulation.

   The whole construction rests on one discipline: the batch builder's
   per-vertex coin flips are a pure function of [(seed, v)]
   ([Rng.derive], shared through [Mark_kernel.Split]), so any single
   vertex's marks can be replayed on demand against probe-metered
   adjacency access ([Adj]) without touching the rest of the graph.  A
   cold [out_marks] costs at most [keep <= 2*delta] probes (low degree:
   copy the neighborhood; high degree: replay the emulated Fisher-Yates
   and read [delta] sampled positions), so a cold [in_gdelta] is
   O(delta) probes — independent of n — plus the O(log max_degree)
   binary search inside [Adj.has_edge].

   The matching side simulates random-greedy maximal matching on
   G_Delta: edges carry deterministic 62-bit ranks (a splitmix-style
   finalizer over [(seed, a, b)], total order by [(rank, a, b)]), and an
   edge is in the matching iff no adjacent G_Delta edge of strictly
   lower rank is.  The recursion only ever descends to strictly lower
   ranks, so it terminates; memoization ([mm] cache) makes repeated
   queries cheap, and correctness never depends on the memo because LRU
   eviction only forces recomputation.

   Invalidation rule (the serve daemon's read-your-writes contract):
   flipping edge (u,v) changes the adjacency — and hence the replayed
   marks — of u and v only, so [invalidate_edge] drops exactly those two
   mark entries; the edge-level G_Delta memo and the matching memo are
   dropped wholesale (their entries cannot be scanned by endpoint, and
   matching membership cascades along rank chains arbitrarily far). *)

type stats = {
  mark_cache : Cache.stats;
  edge_cache : Cache.stats;
  mm_cache : Cache.stats;
  probes : int;
}

type t = {
  adj : Adj.t;
  seed : int;
  delta : int;
  rule : Mark_kernel.rule;
  keep : int; (* Mark_kernel.threshold rule delta *)
  shift : int; (* packing shift for mm-cache edge codes *)
  source : Mark_kernel.source; (* always Split; replay discipline *)
  sampler : Sampling.t;
  idx : int array; (* delta-sized landing zone for sampled positions *)
  marks : int array Cache.t; (* v -> sorted out-marks of v *)
  edge : bool Cache.t; (* packed (a,b), a < b -> edge in G_Delta *)
  mm : bool Cache.t; (* packed (a,b), a < b -> edge in greedy MM *)
}

let default_mark_capacity = 4096
let default_edge_capacity = 65536
let default_mm_capacity = 65536

let create ?(rule = Mark_kernel.Mark_all_at_most_two_delta)
    ?(mark_capacity = default_mark_capacity)
    ?(edge_capacity = default_edge_capacity)
    ?(mm_capacity = default_mm_capacity) adj ~seed ~delta =
  if delta < 1 then invalid_arg "Oracle.create: delta must be >= 1";
  let n = Adj.n adj in
  let shift =
    match Graph.pack_shift ~n:(Int.max 1 n) with
    | Some s -> s
    | None -> invalid_arg "Oracle.create: vertex count exceeds packable range"
  in
  {
    adj;
    seed;
    delta;
    rule;
    keep = Mark_kernel.threshold rule delta;
    shift;
    source = Mark_kernel.Split { seed };
    sampler = Sampling.create ~capacity:(Int.max 1 (Adj.max_sample_degree adj));
    idx = Array.make delta 0;
    marks = Cache.create ~capacity:mark_capacity;
    edge = Cache.create ~capacity:edge_capacity;
    mm = Cache.create ~capacity:mm_capacity;
  }

let delta t = t.delta
let seed t = t.seed
let rule t = t.rule

(* Membership in a sorted int array; branchless-ish lower-bound binary
   search, O(log len) and allocation-free. *)
let mem_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !hi > !lo do
    let mid = !lo + ((!hi - !lo) / 2) in
    if Array.unsafe_get a mid < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && Array.unsafe_get a !lo = x
[@@hot]

(* The neighbors v marks, replayed from (seed, v) and returned sorted.
   Cold cost: min(degree, keep) <= 2*delta probes (static; a dynamic
   high-degree vertex pays degree to canonicalize order, see Adj). *)
let out_marks t v =
  match Cache.find t.marks v with
  | Some a -> a
  | None ->
      let d = Adj.degree t.adj v in
      let a =
        if d <= t.keep then begin
          let out = Array.make (Int.max 1 d) 0 in
          let d' = Adj.neighbors_into t.adj v ~out in
          if d' = 0 then [||] else out
        end
        else begin
          Mark_kernel.sampled_indices_into t.sampler
            (Mark_kernel.rng_for t.source v)
            ~delta:t.delta ~degree:d ~out:t.idx;
          let out = Array.make t.delta 0 in
          Adj.read_positions t.adj v ~idx:t.idx ~k:t.delta ~out;
          Isort.sort out;
          out
        end
      in
      Cache.put t.marks v a;
      a

let marked_neighbors t v = Array.copy (out_marks t v)

let marks_edge t x y = mem_sorted (out_marks t x) y [@@hot]

(* Edge-level memo on top of the mark replay: the cold path still pays
   the [has_edge] binary search, which would otherwise floor the probe
   cost of *every* repeated query — with the memo a warm hit costs zero
   probes.  Both positive and negative answers are cached (a Zipfian
   query mix repeats non-edges too). *)
let in_gdelta t ~u ~v =
  u <> v
  &&
  let a = Int.min u v and b = Int.max u v in
  let code = (a lsl t.shift) lor b in
  match Cache.find t.edge code with
  | Some r -> r
  | None ->
      let r =
        Adj.has_edge t.adj a b && (marks_edge t a b || marks_edge t b a)
      in
      Cache.put t.edge code r;
      r
[@@hot]

(* Deterministic 62-bit edge rank: splitmix-style finalizer over
   (seed, a, b) with a < b.  Ties (astronomically unlikely) break by
   (a, b), giving a total order on edges. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let edge_rank ~seed u v =
  let a = Int.min u v and b = Int.max u v in
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.add
         (Int64.mul (Int64.of_int (a + 1)) 0xBF58476D1CE4E5B9L)
         (Int64.mul (Int64.of_int (b + 1)) 0x94D049BB133111EBL))
  in
  Int64.to_int (Int64.shift_right_logical (mix64 z) 2)

let rank_before r1 a1 b1 r2 a2 b2 =
  r1 < r2 || (r1 = r2 && (a1 < a2 || (a1 = a2 && b1 < b2)))

(* Random-greedy MM membership for G_Delta edge (a,b), a < b: in the
   matching iff no adjacent G_Delta edge of strictly lower (rank,a,b)
   is.  Recursion descends only to strictly lower ranks, so it
   terminates regardless of memo state.  Worst-case probe cost is
   polynomial in the degrees along the rank chain (each level scans one
   neighborhood and replays its marks) — the classical local-simulation
   price; the [mm] memo is what makes the serve daemon's repeated
   queries cheap. *)
let rec edge_in_mm t a b =
  let code = (a lsl t.shift) lor b in
  match Cache.find t.mm code with
  | Some r -> r
  | None ->
      let ra = edge_rank ~seed:t.seed a b in
      let r =
        (not (blocked_via t a b ra a)) && not (blocked_via t a b ra b)
      in
      Cache.put t.mm code r;
      r

(* Does some G_Delta edge at endpoint [x], other than (a,b) itself, with
   strictly lower rank sit in the matching?  Fresh neighbor buffer per
   level: the recursion below would clobber a shared scratch. *)
and blocked_via t a b ra x =
  let d = Adj.degree t.adj x in
  if d = 0 then false
  else begin
    let nbrs = Array.make d 0 in
    let d = Adj.neighbors_into t.adj x ~out:nbrs in
    let om = out_marks t x in
    try
      for i = 0 to d - 1 do
        let y = Array.unsafe_get nbrs i in
        let ea = Int.min x y and eb = Int.max x y in
        if
          (not (ea = a && eb = b))
          && (mem_sorted om y || marks_edge t y x)
        then begin
          let ry = edge_rank ~seed:t.seed ea eb in
          if rank_before ry ea eb ra a b && edge_in_mm t ea eb then
            raise Exit
        end
      done;
      false
    with Exit -> true
  end

let in_matching t ~u ~v =
  in_gdelta t ~u ~v && edge_in_mm t (Int.min u v) (Int.max u v)

let is_matched t v =
  let d = Adj.degree t.adj v in
  if d = 0 then false
  else begin
    let nbrs = Array.make d 0 in
    let d = Adj.neighbors_into t.adj v ~out:nbrs in
    let om = out_marks t v in
    try
      for i = 0 to d - 1 do
        let y = Array.unsafe_get nbrs i in
        if
          (mem_sorted om y || marks_edge t y v)
          && edge_in_mm t (Int.min v y) (Int.max v y)
        then raise Exit
      done;
      false
    with Exit -> true
  end

let invalidate_edge t u v =
  Cache.remove t.marks u;
  Cache.remove t.marks v;
  (* every cached G_Delta answer with u or v as an endpoint is stale,
     and an LRU cannot be scanned by endpoint cheaply: drop it whole *)
  Cache.clear t.edge;
  (* rank chains propagate matching changes arbitrarily far: drop the
     whole memo rather than track per-edge dependencies *)
  Cache.clear t.mm

let invalidate_all t =
  Cache.clear t.marks;
  Cache.clear t.edge;
  Cache.clear t.mm

let probes t = Adj.probes t.adj
let reset_probes t = Adj.reset_probes t.adj

let stats t =
  {
    mark_cache = Cache.stats t.marks;
    edge_cache = Cache.stats t.edge;
    mm_cache = Cache.stats t.mm;
    probes = Adj.probes t.adj;
  }
