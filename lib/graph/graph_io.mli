(** Plain-text edge-list serialization.

    Format: [#]-prefixed comment lines, then a header line ["n m"], then
    [m] lines ["u v"] with 0-based endpoints.  Duplicate edges and
    self-loops are tolerated on input (merged/dropped by the graph
    constructor), so files from external sources load as simple graphs. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Failure on malformed input (with a line number). *)

val save : string -> Graph.t -> unit
(** [save path g] writes the graph to a file. *)

val load : string -> Graph.t
(** @raise Sys_error if the file cannot be read; [Failure] if malformed. *)
