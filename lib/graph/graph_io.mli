(** Graph serialization: a tolerant plain-text edge-list format, and the
    [.msgr] binary container whose lanes memory-map straight into the
    off-heap CSR.

    {2 Text format}

    [#]-prefixed comment lines, then a header line ["n m"], then
    [m] lines ["u v"] with 0-based endpoints.  Duplicate edges and
    self-loops are tolerated on input (merged/dropped by the graph
    constructor), so files from external sources load as simple graphs.
    Blank lines, interior comment lines and trailing whitespace are
    tolerated anywhere.

    {2 Binary format ([.msgr])}

    A fixed 56-byte header — magic ["MSPARGR1"], [n]/[m]/[max_degree]/
    {!Graph.checksum}/flags as little-endian int64 fields, and a CRC-32 of
    those bytes — followed by the two CSR lanes as 8-byte-aligned
    little-endian int64 words: offsets ([n+1] entries), then adjacency
    ([2m] entries).  On a 64-bit little-endian host the lane bytes are
    exactly the in-memory Bigarray representation, so {!load_mmap} opens a
    graph by validating the header and the O(n) offsets lane and mapping
    the adjacency lane {e without reading it} — opening a multi-million-
    edge graph costs O(n) page-table setup, not an O(m) parse.  Pages are
    then faulted in on demand by actual traversals, and a graph larger
    than RAM is readable through the kernel's page cache. *)

type error = { line : int; token : string option; reason : string }
(** A parse failure: 1-based [line] in the input, the offending [token]
    when one can be pointed at, and a human-readable [reason]. *)

val error_message : error -> string
(** [error_message e] renders [e] in the classic
    ["Graph_io: line %d: ..."] form used by {!of_string}'s [Failure]. *)

val parse : ?max_vertices:int -> string -> (Graph.t, error) result
(** Total parser: never raises, whatever the input bytes.  [max_vertices]
    (default [1 lsl 26]) bounds the header's vertex count so junk input
    cannot drive unbounded allocation. *)

val to_string : Graph.t -> string

val of_string_exn : string -> Graph.t
(** Raising wrapper around {!parse}.
    @raise Failure on malformed input (with a line number). *)

val of_string : string -> Graph.t
  [@@deprecated "use of_string_exn (same function; the name now carries the raise contract)"]
(** Alias of {!of_string_exn}, kept for compatibility.
    @raise Failure on malformed input (with a line number). *)

val save : string -> Graph.t -> unit
(** [save path g] writes the graph to a file.
    @raise Sys_error if the file cannot be written. *)

val load_exn : string -> Graph.t
(** @raise Sys_error if the file cannot be read; [Failure] if malformed. *)

val load : string -> Graph.t
  [@@deprecated "use load_exn (same function; the name now carries the raise contract)"]
(** Alias of {!load_exn}, kept for compatibility.
    @raise Sys_error if the file cannot be read; [Failure] if malformed. *)

(** {2 The [.msgr] binary container} *)

val save_packed : string -> Graph.t -> unit
(** [save_packed path g] writes [g] as an [.msgr] container.  The write
    goes to [path ^ ".tmp"] and is renamed into place, so a concurrent
    {!load_mmap} sees either the old file or the complete new one, never a
    torn prefix.
    @raise Sys_error if the file cannot be written.
    @raise Invalid_argument on a big-endian host (the lanes are raw
    little-endian words by design). *)

val load_mmap : ?verify:bool -> string -> (Graph.t, string) result
(** [load_mmap path] opens an [.msgr] container by memory-mapping its CSR
    lanes in place — O(n) validation, no O(m) parse, no copy.  Total: any
    damage the cheap checks can see (truncation, bad magic, header CRC
    mismatch, non-8-aligned or overlong lanes, trailing bytes, a
    non-monotone or out-of-extent offsets lane, a wrong cached max degree)
    is a clean [Error], never an exception and never a read past the
    mapped extent.  Damage confined to adjacency {e values} is invisible
    to the O(n) checks by design; pass [~verify:true] to also recompute
    the full content checksum against the header (O(m): reads every lane,
    forfeiting the lazy load) — with it, any bit flip anywhere in the file
    is an [Error].  The returned graph shares pages with the file until
    {!Graph.materialize} copies it out; the underlying mapping is private
    (copy-on-write), so a concurrent writer never mutates loaded pages. *)

val load_mmap_exn : ?verify:bool -> string -> Graph.t
(** @raise Failure on any condition {!load_mmap} reports as [Error]. *)

val load_packed_exn : string -> Graph.t
(** [load_mmap ~verify:true] followed by {!Graph.materialize}: a fully
    checked, file-detached in-memory graph — the explicit path for
    workloads that outlive or rewrite the source file.
    @raise Failure on any condition {!load_mmap} reports as [Error]. *)
