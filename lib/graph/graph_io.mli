(** Plain-text edge-list serialization.

    Format: [#]-prefixed comment lines, then a header line ["n m"], then
    [m] lines ["u v"] with 0-based endpoints.  Duplicate edges and
    self-loops are tolerated on input (merged/dropped by the graph
    constructor), so files from external sources load as simple graphs.
    Blank lines, interior comment lines and trailing whitespace are
    tolerated anywhere. *)

type error = { line : int; token : string option; reason : string }
(** A parse failure: 1-based [line] in the input, the offending [token]
    when one can be pointed at, and a human-readable [reason]. *)

val error_message : error -> string
(** [error_message e] renders [e] in the classic
    ["Graph_io: line %d: ..."] form used by {!of_string}'s [Failure]. *)

val parse : ?max_vertices:int -> string -> (Graph.t, error) result
(** Total parser: never raises, whatever the input bytes.  [max_vertices]
    (default [1 lsl 26]) bounds the header's vertex count so junk input
    cannot drive unbounded allocation. *)

val to_string : Graph.t -> string

val of_string_exn : string -> Graph.t
(** Raising wrapper around {!parse}.
    @raise Failure on malformed input (with a line number). *)

val of_string : string -> Graph.t
  [@@deprecated "use of_string_exn (same function; the name now carries the raise contract)"]
(** Alias of {!of_string_exn}, kept for compatibility.
    @raise Failure on malformed input (with a line number). *)

val save : string -> Graph.t -> unit
(** [save path g] writes the graph to a file.
    @raise Sys_error if the file cannot be written. *)

val load_exn : string -> Graph.t
(** @raise Sys_error if the file cannot be read; [Failure] if malformed. *)

val load : string -> Graph.t
  [@@deprecated "use load_exn (same function; the name now carries the raise contract)"]
(** Alias of {!load_exn}, kept for compatibility.
    @raise Sys_error if the file cannot be read; [Failure] if malformed. *)
