(** Static undirected graphs in the adjacency-array model.

    The representation mirrors the input model of the paper's sequential
    algorithm (§3.1): for every vertex [v] we can read [degree g v] in O(1)
    and the [i]-th neighbor of [v] in O(1), and the adjacency arrays are
    read-only.  Every neighbor read is counted in a probe counter so that
    sublinearity claims ("the algorithm reads o(m) of the input") are
    measurable rather than asserted.

    Internally the graph is a compressed sparse row (CSR) structure with
    sorted neighbor lists.  Vertices are integers [0 .. n-1]; graphs are
    simple (no self-loops, no parallel edges). *)

type t

type edge = int * int
(** Undirected edge, normalised so the first endpoint is smaller. *)

val of_edges : n:int -> edge list -> t
(** [of_edges ~n edges] builds a graph on [n] vertices.  Self-loops are
    dropped and duplicate/reversed edges are merged.
    @raise Invalid_argument if an endpoint is outside [\[0, n)]. *)

val of_edge_array : n:int -> edge array -> t
(** Same as {!of_edges} on an array. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int
(** O(1); part of the model's free metadata, not counted as a probe. *)

val max_degree : t -> int

val neighbor : t -> int -> int -> int
(** [neighbor g v i] is the [i]-th neighbor of [v] (0-based, sorted order).
    Counts one probe.
    @raise Invalid_argument if [i >= degree g v]. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbor of [v]; counts
    [degree g v] probes. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val has_edge : t -> int -> int -> bool
(** Binary search over the smaller adjacency list; counts O(log deg)
    probes. *)

val edges : t -> edge array
(** All edges, each once, normalised and sorted; not counted as probes
    (intended for test oracles and output, not for sublinear algorithms). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate all edges (u < v) without materialising; not counted. *)

val probes : t -> int
(** Number of adjacency-array reads since the last {!reset_probes}. *)

val reset_probes : t -> unit

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph induced by the distinct vertices [vs],
    relabelled [0 .. |vs|-1], together with the map from new to old labels. *)

val union : t -> t -> t
(** Edge union of two graphs on the same vertex set.
    @raise Invalid_argument if vertex counts differ. *)

val is_subgraph : sub:t -> super:t -> bool
(** True iff every edge of [sub] is an edge of [super] (same vertex set). *)

val complement_degree_sum : t -> int
(** [2m] — handy sanity value: sum of all degrees. *)

val pp : Format.formatter -> t -> unit
(** Short description: ["graph(n=…, m=…)"]. *)

val equal : t -> t -> bool
(** Structural equality (same vertex count and edge set). *)
