(** Static undirected graphs in the adjacency-array model.

    The representation mirrors the input model of the paper's sequential
    algorithm (§3.1): for every vertex [v] we can read [degree g v] in O(1)
    and the [i]-th neighbor of [v] in O(1), and the adjacency arrays are
    read-only.  Every neighbor read is counted in a probe counter so that
    sublinearity claims ("the algorithm reads o(m) of the input") are
    measurable rather than asserted.  The counter is atomic, so probe
    totals stay exact when multiple domains read the same graph.

    Internally the graph is a compressed sparse row (CSR) structure with
    sorted neighbor lists.  Vertices are integers [0 .. n-1]; graphs are
    simple (no self-loops, no parallel edges).

    {2 Off-heap storage}

    The CSR lanes (offsets and adjacency) are {!Mspar_prelude.Bigvec}
    Bigarrays: malloc'd — or, for graphs opened from an [.msgr] file via
    {!Graph_io.load_mmap}, mmap'd — storage that the GC never scans and
    that domains share without write barriers.  A marking pass over a
    100M-edge graph no longer drags ~1.6 GB of adjacency through every
    major collection, and the parallel builders scatter directly into
    disjoint windows of the final lanes with no post-build copy.  All
    observable behaviour (checksums, audits, equality, probe accounting)
    is bit-for-bit identical to the former heap-array representation.

    {2 Packed edges}

    Construction-heavy callers (the G_Δ sparsifier builders) carry edges as
    packed ints [u·2^shift lor v] in flat {!Mspar_prelude.Edgebuf} buffers
    and build the CSR with counting sorts — no boxed tuples and no
    polymorphic compare on the hot path.  {!pack_shift} is the overflow
    guard: it returns [None] when codes for [n] vertices would not fit a
    native int (beyond 2^30 vertices on 64-bit hosts), in which case
    callers fall back to the boxed {!of_edges} path. *)

type t

type edge = int * int
(** Undirected edge, normalised so the first endpoint is smaller. *)

val of_edges : n:int -> edge list -> t
(** [of_edges ~n edges] builds a graph on [n] vertices.  Self-loops are
    dropped and duplicate/reversed edges are merged.  Compatibility wrapper
    over the packed pipeline.
    @raise Invalid_argument if an endpoint is outside [\[0, n)]. *)

val of_edge_array : n:int -> edge array -> t
(** Same as {!of_edges} on an array. *)

val of_edges_iter : n:int -> ((int -> int -> unit) -> unit) -> t
(** [of_edges_iter ~n iter] builds a graph from a push-style edge producer:
    [iter] is called once with a [push u v] callback.  Avoids materialising
    any intermediate edge list; same cleaning semantics as {!of_edges}.
    @raise Invalid_argument if a pushed endpoint is outside [\[0, n)]. *)

val of_edges_reference : n:int -> edge list -> t
(** The seed list-based builder ([List.sort_uniq compare] plus a
    per-block [Array.sort compare]), kept as the differential-testing and
    benchmarking baseline for the packed pipeline.  Semantically identical
    to {!of_edges}.
    @raise Invalid_argument if an endpoint is outside [\[0, n)]. *)

val pack_shift : n:int -> int option
(** [pack_shift ~n] is [Some s] when edges on [n] vertices can be packed as
    [(u lsl s) lor v] in a native int, [None] otherwise (the overflow
    guard).  [s >= 1], and [2^s >= n]. *)

val pack : shift:int -> int -> int -> int
(** [pack ~shift u v] is [(u lsl shift) lor v].  Preconditions (unchecked):
    [shift] came from {!pack_shift} for this graph's [n] and
    [0 <= u, v < n]. *)

val unpack_u : shift:int -> int -> int
val unpack_v : shift:int -> int -> int

val of_packed : n:int -> ?len:int -> int array -> t
(** [of_packed ~n ~len codes] builds a graph from the packed marks
    [codes.(0 .. len-1)] (default [len]: the whole array).  Marks may
    contain self-loops, duplicates and reversed duplicates; they are
    normalised, counting-sorted and deduplicated.  The prefix of [codes] is
    mutated (it doubles as sort scratch).
    @raise Invalid_argument if [n] is outside the packable range or a code
    does not decode to endpoints in [\[0, n)]. *)

val of_edgebuf : n:int -> Mspar_prelude.Edgebuf.t -> t
(** {!of_packed} over an {!Mspar_prelude.Edgebuf}'s contents (which are
    mutated, like the array above). *)

val of_packed_par :
  pool:Mspar_prelude.Pool.t -> n:int -> ?len:int -> int array -> t
(** Multi-domain {!of_packed}: the prefix is split into one contiguous
    chunk per pool worker, and the CSR is assembled by per-chunk degree
    histograms merged with a prefix sum, a parallel scatter of each
    chunk's codes into the final per-vertex blocks, and a parallel
    per-block sort/dedup — no sequential concat copy and no global
    sequential counting sort.  The output is bit-for-bit identical to
    {!of_packed} on the same prefix (both emit the canonical CSR of the
    deduplicated edge set); with a size-1 pool everything runs on the
    caller.  Like {!of_packed}, the prefix of [codes] is mutated, and it
    is left in an unspecified partially-normalised state if validation
    fails.
    @raise Invalid_argument if [n] is outside the packable range or a code
    does not decode to endpoints in [\[0, n)]. *)

val of_edgebufs_par :
  pool:Mspar_prelude.Pool.t -> n:int -> Mspar_prelude.Edgebuf.t array -> t
(** {!of_packed_par} over per-domain mark buffers, one chunk per buffer
    (buffers may be empty and their count need not match the pool size).
    Equivalent to {!of_packed} over the buffers' concatenation, without
    ever materialising the concatenation; buffer contents are mutated.
    @raise Invalid_argument if [n] is outside the packable range or a code
    does not decode to endpoints in [\[0, n)]. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int
(** O(1); part of the model's free metadata, not counted as a probe. *)

val max_degree : t -> int
(** O(1): cached at construction time (the builders see every degree
    anyway), so per-worker scratch sizing costs nothing per call. *)

val neighbor : t -> int -> int -> int
(** [neighbor g v i] is the [i]-th neighbor of [v] (0-based, sorted order).
    Counts one probe.
    @raise Invalid_argument if [i >= degree g v]. *)

val neighbor_uncounted : t -> int -> int -> int
(** Same read as {!neighbor} but does not touch the probe counter; the
    caller must account for it via {!add_probes}.  Lets tight loops batch
    one atomic update per vertex instead of one per read.
    @raise Invalid_argument if [i >= degree g v]. *)

val iter_neighbors_uncounted : t -> int -> (int -> unit) -> unit
(** {!iter_neighbors} without the probe-counter update; pairs with
    {!add_probes} so cache-blocked traversals can charge one atomic
    update per block instead of one per vertex. *)

val append_neighbors_uncounted :
  t -> int -> base:int -> Mspar_prelude.Edgebuf.t -> unit
(** Push [base lor u] for every neighbour [u] of the vertex into [buf] —
    the closure-free twin of {!iter_neighbors_uncounted} for the marking
    loops, which would otherwise allocate a closure per vertex.  Uses
    unchecked pushes: the caller must have reserved capacity
    ({!Mspar_prelude.Edgebuf.ensure_capacity}) and remains responsible
    for probe accounting via {!add_probes}. *)

val neighbors_into_uncounted : t -> int -> out:int array -> int
(** [neighbors_into_uncounted g v ~out] copies [v]'s adjacency block
    (sorted) into [out.(0 .. d-1)] and returns [d = degree g v] — the
    read-only oracle surface the LCA query engine replays a vertex
    through.  Uncounted like its [_uncounted] siblings: the caller
    charges the reads in one {!add_probes} batch, and the MSP014 lint
    extends its dominated-by-charge proof to this accessor.
    @raise Invalid_argument if [out] is shorter than the degree. *)

val iter_vertex_blocks :
  t -> ?lo:int -> ?hi:int -> extent:int -> (int -> int -> unit) -> unit
(** [iter_vertex_blocks g ~extent f] partitions [\[lo, hi)] (default: all
    vertices) into maximal contiguous runs [f b e] whose adjacency spans
    at most [extent] CSR words — a vertex whose list alone exceeds
    [extent] forms a singleton run.  With [extent] sized to a cache level,
    a traversal that visits each run before moving on works a bounded
    window of the adjacency lane at a time (the lane is CSR-contiguous,
    so a run {e is} an address interval), which is what the cache-blocked
    marking loops in [Gdelta]/[Par_gdelta] key off.  O(1) per candidate
    vertex via the offsets lane; the adjacency lane is not read.
    @raise Invalid_argument if the range is bad or [extent < 1]. *)

val add_probes : t -> int -> unit
(** Charge [k] probes explicitly (pairs with {!neighbor_uncounted}). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbor of [v]; counts
    [degree g v] probes. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val has_edge : t -> int -> int -> bool
(** Binary search over the smaller adjacency list; counts O(log deg)
    probes. *)

val edges : t -> edge array
(** All edges, each once, normalised and sorted; not counted as probes
    (intended for test oracles and output, not for sublinear algorithms). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate all edges (u < v) without materialising; not counted. *)

val probes : t -> int
(** Number of adjacency-array reads since the last {!reset_probes}.  Exact
    even when several domains probe concurrently (atomic counter). *)

val reset_probes : t -> unit

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph induced by the distinct vertices [vs],
    relabelled [0 .. |vs|-1], together with the map from new to old labels. *)

val union : t -> t -> t
(** Edge union of two graphs on the same vertex set.
    @raise Invalid_argument if vertex counts differ. *)

val is_subgraph : sub:t -> super:t -> bool
(** True iff every edge of [sub] is an edge of [super] (same vertex set). *)

val complement_degree_sum : t -> int
(** [2m] — handy sanity value: sum of all degrees. *)

val audit : t -> string list
(** Verify CSR canonicality: offsets start at 0, are monotone, and end at
    [|adj|] (the degree sum [2m]); every block is strictly sorted with
    in-range neighbors and no self-loops; adjacency is symmetric; the
    cached [max_degree] matches a recomputation.  Returns one
    human-readable message per violated invariant ([[]] = healthy).
    Reads are {e not} counted as probes — this is integrity checking, not
    an algorithmic access.  O(n + m log Δ). *)

val checksum : t -> int64
(** FNV-1a digest of the structural content ([n], offsets, adjacency).
    Equal edge sets yield equal checksums (CSR form is canonical); probe
    counters are excluded.  Used by the dynamic audit layer to detect
    silent corruption cheaply between full {!audit} passes. *)

(** {2 Raw CSR lanes}

    The escape hatch for the binary container ({!Graph_io}) and future
    out-of-core backends: a graph can be (re)constituted from raw off-heap
    lanes without copying them, and its lanes can be observed for
    zero-copy serialization. *)

val of_csr :
  n:int ->
  offsets:Mspar_prelude.Bigvec.t ->
  adj:Mspar_prelude.Bigvec.t ->
  maxdeg:int ->
  (t, string) result
(** [of_csr ~n ~offsets ~adj ~maxdeg] wraps raw CSR lanes (shared, not
    copied) as a graph.  Validates in O(n) {e without reading the
    adjacency lane}: [offsets] must have [n+1] entries, start at 0, be
    monotone and end at [|adj|], and [maxdeg] must match the offsets'
    largest gap — after which every internal adjacency index is provably
    inside the lane, so even lanes mapped from an untrusted file can
    never be read past their extent.  Adjacency {e values} are not
    inspected (that would defeat O(1) mmap loads); damaged values surface
    through {!audit}/{!checksum}, not through wild reads.  Returns
    [Error reason] on malformed lanes. *)

val csr_lanes : t -> Mspar_prelude.Bigvec.t * Mspar_prelude.Bigvec.t
(** [(offsets, adj)] — the live lanes, {e shared, read-only by
    convention}: mutating them breaks every invariant {!audit} checks.
    Intended for serializers. *)

val materialize : t -> t
(** Deep-copy the lanes into fresh malloc'd storage with a zero probe
    counter.  Detaches an mmap-backed graph from its file mapping, so the
    copy stays valid after the file changes and writes to the copy's
    lanes (via future mutation layers) cannot fault on a read-only
    mapping. *)

val pp : Format.formatter -> t -> unit
(** Short description: ["graph(n=…, m=…)"]. *)

val equal : t -> t -> bool
(** Structural equality (same vertex count and edge set). *)
