open Mspar_prelude

type point = { x : float; y : float }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let of_points points ~radius =
  if radius < 0.0 then invalid_arg "Unit_disk.of_points: negative radius";
  let n = Array.length points in
  (* Grid bucketing with cells of side [radius]: only neighboring cells can
     contain adjacent points, giving near-linear construction for sparse
     radii. *)
  let cells = Int.max 1 (int_of_float (1.0 /. Float.max radius 1e-9)) in
  let cells = Int.min cells 4096 in
  let bucket = Hashtbl.create (2 * n) in
  let cell_of p =
    let cx = Int.min (cells - 1) (int_of_float (p.x *. float_of_int cells)) in
    let cy = Int.min (cells - 1) (int_of_float (p.y *. float_of_int cells)) in
    (Int.max 0 cx, Int.max 0 cy)
  in
  Array.iteri
    (fun i p ->
      let c = cell_of p in
      let cur = try Hashtbl.find bucket c with Not_found -> [] in
      Hashtbl.replace bucket c (i :: cur))
    points;
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      let cx, cy = cell_of p in
      for dx = -1 to 1 do
        for dy = -1 to 1 do
          match Hashtbl.find_opt bucket (cx + dx, cy + dy) with
          | None -> ()
          | Some js ->
              List.iter
                (fun j ->
                  if i < j && distance p points.(j) <= radius then
                    acc := (i, j) :: !acc)
                js
        done
      done)
    points;
  Graph.of_edges ~n !acc

let random rng ~n ~radius =
  let points =
    Array.init n (fun _ -> { x = Rng.float rng 1.0; y = Rng.float rng 1.0 })
  in
  (of_points points ~radius, points)
