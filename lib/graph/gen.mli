(** Graph generators for every family the paper discusses.

    All randomized generators take an explicit {!Mspar_prelude.Rng.t} and are
    deterministic given the generator state. *)

open Mspar_prelude

val empty : int -> Graph.t
val complete : int -> Graph.t
val path : int -> Graph.t
val cycle : int -> Graph.t
(** @raise Invalid_argument if [n < 3]. *)

val star : int -> Graph.t
(** [star n] has center [0] and [n-1] leaves; its neighborhood independence
    number is [n-1] — the standard witness that β can be as large as the max
    degree.
    @raise Invalid_argument if [n < 1]. *)

val grid : rows:int -> cols:int -> Graph.t
(** @raise Invalid_argument if a dimension is not positive. *)

val perfect_matching : int -> Graph.t
(** [perfect_matching n] pairs [2i] with [2i+1]. Requires even [n].
    @raise Invalid_argument if [n] is odd. *)

val gnp : Rng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi G(n, p).
    @raise Invalid_argument if [p] is outside [0, 1]. *)

val gnm : Rng.t -> n:int -> m:int -> Graph.t
(** Uniform graph with exactly [m] edges (requires [m <= n(n-1)/2]).
    @raise Invalid_argument if [m] is out of range. *)

val random_bipartite : Rng.t -> left:int -> right:int -> p:float -> Graph.t
(** Bipartite G(left, right, p); vertices [0..left-1] on one side.
    @raise Invalid_argument if [p] is outside [0, 1]. *)

val clique_minus_edge : n:int -> missing:int * int -> Graph.t
(** The family [𝒢_n] of Lemma 2.13: K_n with one edge removed.  β = 2 and
    the MCM has size ⌊n/2⌋ for even n (a perfect matching avoiding the
    missing edge exists whenever n ≥ 4).
    @raise Invalid_argument if the missing edge is not a valid edge of K_n. *)

val two_cliques_bridge : half:int -> Graph.t * (int * int)
(** The instance of Obs 2.14: two disjoint cliques K_half (with [half] odd)
    joined by a single bridge edge [(a, b)].  Every maximum matching must use
    the bridge; returns the graph and the bridge. Requires odd [half ≥ 3].
    @raise Invalid_argument if [half] is even or [< 3]. *)

val disjoint_cliques : Rng.t -> n:int -> k:int -> Graph.t
(** [n] vertices partitioned uniformly into [k] cliques.  β = 1 within each
    component; a canonical bounded-diversity instance.
    @raise Invalid_argument if [k < 1]. *)

val bounded_diversity :
  Rng.t -> n:int -> cliques:int -> memberships:int -> Graph.t
(** Each vertex joins [memberships] distinct cliques out of [cliques]; two
    vertices are adjacent iff they share a clique.  The diversity of every
    vertex is at most [memberships · cliques]-trivially and in practice close
    to [memberships], so β stays small while the graph is dense.
    @raise Invalid_argument on malformed [cliques]/[memberships]. *)

val hub_gadget : pairs:int -> hub_size:int -> Graph.t * int
(** The high-β instance on which small-Δ sampling fails: [pairs] private
    pairs (l_i, r_i) — the bulk of the maximum matching — where every l_i is
    additionally connected to a shared set of [hub_size] right-hubs and
    every r_i to [hub_size] left-hubs.  A sparsifier built with
    Δ ≪ hub_size loses most private edges while the hubs can rescue only
    O(hub_size) of them.  β(G) = max(pairs, hub_size + 1): each hub sees all
    [pairs] mutually non-adjacent l_i's — as Theorem 2.1 predicts, any
    instance that defeats random marking must have large β, and this one
    does.  Returns the graph and its maximum matching size
    [pairs + min(hub_size, pairs)].

    Layout: l_i = i, r_i = pairs + i, left-hubs next, right-hubs last.
    @raise Invalid_argument if [pairs] or [hub_size] is not positive. *)

val random_graph_with_planted_matching :
  Rng.t -> n:int -> extra:int -> Graph.t
(** A perfect matching on [n] vertices (even [n]) plus [extra] random
    additional edges — guarantees [MCM = n/2] so approximation ratios can be
    computed without an exact solver on large instances.
    @raise Invalid_argument if [n] is odd. *)
