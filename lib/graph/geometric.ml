open Mspar_prelude

let proper_interval rng ~n ~span =
  if span < 0.0 then invalid_arg "Geometric.proper_interval: negative span";
  let left = Array.init n (fun _ -> Rng.float rng span) in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Float.abs (left.(u) -. left.(v)) <= 1.0 then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let quasi_unit_disk rng ~n ~radius ~inner =
  if inner <= 0.0 || inner > 1.0 then
    invalid_arg "Geometric.quasi_unit_disk: inner in (0, 1]";
  let pts =
    Array.init n (fun _ ->
        Unit_disk.{ x = Rng.float rng 1.0; y = Rng.float rng 1.0 })
  in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Unit_disk.distance pts.(u) pts.(v) in
      if d <= inner *. radius then acc := (u, v) :: !acc
      else if d <= radius && Rng.bool rng then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let disk_graph rng ~n ~rmin ~rmax =
  if rmin <= 0.0 || rmax < rmin then
    invalid_arg "Geometric.disk_graph: need 0 < rmin <= rmax";
  let pts =
    Array.init n (fun _ ->
        Unit_disk.{ x = Rng.float rng 1.0; y = Rng.float rng 1.0 })
  in
  let radii = Array.init n (fun _ -> rmin +. Rng.float rng (rmax -. rmin)) in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Unit_disk.distance pts.(u) pts.(v) <= radii.(u) +. radii.(v) then
        acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges ~n !acc
