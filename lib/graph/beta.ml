open Mspar_prelude

type result = Exact of int | Lower_bound of int

let value = function Exact v | Lower_bound v -> v
let is_exact = function Exact _ -> true | Lower_bound _ -> false

exception Budget_exhausted

(* Maximum independent set by branch-and-bound over bitsets.
   MIS(active) = max( MIS(active \ {v}),  1 + MIS(active \ N[v]) )
   branching on a maximum-degree vertex v; when every active vertex has
   active-degree <= 1 the remainder is a disjoint union of edges and isolated
   vertices and the answer is counted directly. *)
let mis_with_witness ~budget adjacency nverts =
  let nodes = ref 0 in
  let best_set = ref [] in
  let rec go active chosen =
    incr nodes;
    if !nodes > budget then raise Budget_exhausted;
    let card = Bitset.cardinal active in
    if card = 0 then begin
      if List.length chosen > List.length !best_set then best_set := chosen;
      0
    end
    else begin
      (* locate a max-degree vertex within [active] *)
      let best_v = ref (-1) and best_d = ref (-1) in
      Bitset.iter
        (fun v ->
          let d = Bitset.inter_cardinal adjacency.(v) active in
          if d > !best_d then begin
            best_d := d;
            best_v := v
          end)
        active;
      if !best_d <= 1 then begin
        (* disjoint edges + isolated vertices: take one endpoint per edge and
           every isolated vertex *)
        let taken = ref chosen and count = ref 0 in
        let seen = Bitset.create nverts in
        Bitset.iter
          (fun v ->
            if not (Bitset.mem seen v) then begin
              Bitset.add seen v;
              taken := v :: !taken;
              incr count;
              (* skip v's (unique, if any) active neighbor *)
              let nb = Bitset.inter adjacency.(v) active in
              Bitset.iter (fun u -> Bitset.add seen u) nb
            end)
          active;
        if List.length !taken > List.length !best_set then best_set := !taken;
        !count
      end
      else begin
        let v = !best_v in
        let without = Bitset.copy active in
        Bitset.remove without v;
        let excluded = go without chosen in
        let included_active = Bitset.diff without adjacency.(v) in
        let included = 1 + go included_active (v :: chosen) in
        Int.max excluded included
      end
    end
  in
  let all = Bitset.create nverts in
  for v = 0 to nverts - 1 do
    Bitset.add all v
  done;
  let size = go all [] in
  (size, !best_set)

let greedy_mis_size adjacency nverts order =
  let chosen = Bitset.create nverts in
  let blocked = Bitset.create nverts in
  let count = ref 0 in
  Array.iter
    (fun v ->
      if not (Bitset.mem blocked v) then begin
        Bitset.add chosen v;
        incr count;
        Bitset.add blocked v;
        Bitset.iter (fun u -> Bitset.add blocked u) adjacency.(v)
      end)
    order;
  !count

(* Adjacency bitsets of the subgraph of [g] induced by N(v). *)
let neighborhood_adjacency g v =
  let nbrs = ref [] in
  Graph.iter_neighbors g v (fun u -> nbrs := u :: !nbrs);
  let nbrs = Array.of_list (List.rev !nbrs) in
  let k = Array.length nbrs in
  let index = Hashtbl.create (2 * k) in
  Array.iteri (fun i u -> Hashtbl.replace index u i) nbrs;
  let adjacency = Array.init k (fun _ -> Bitset.create k) in
  Array.iteri
    (fun i u ->
      Graph.iter_neighbors g u (fun w ->
          match Hashtbl.find_opt index w with
          | Some j when j <> i -> Bitset.add adjacency.(i) j
          | Some _ | None -> ()))
    nbrs;
  (adjacency, nbrs)

let neighborhood_mis ?(budget = 10_000_000) g v =
  let adjacency, nbrs = neighborhood_adjacency g v in
  let k = Array.length nbrs in
  if k = 0 then Exact 0
  else
    try
      let size, _ = mis_with_witness ~budget adjacency k in
      Exact size
    with Budget_exhausted ->
      let order = Array.init k (fun i -> i) in
      Lower_bound (greedy_mis_size adjacency k order)

let compute ?(budget = 10_000_000) g =
  let remaining = ref budget in
  let best = ref 0 and exact = ref true in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v > !best then begin
      (* a neighborhood smaller than the best so far cannot improve it *)
      match neighborhood_mis ~budget:(Int.max 1 !remaining) g v with
      | Exact s ->
          remaining := Int.max 0 (!remaining - Graph.degree g v);
          if s > !best then best := s
      | Lower_bound s ->
          exact := false;
          if s > !best then best := s
    end
  done;
  if !exact then Exact !best else Lower_bound !best

let sampled_lower rng ?(samples = 32) ?(budget = 1_000_000) g =
  let nv = Graph.n g in
  if nv = 0 then 0
  else begin
    let best = ref 0 in
    for _ = 1 to samples do
      let v = Rng.int rng nv in
      if Graph.degree g v > !best then begin
        let s = value (neighborhood_mis ~budget g v) in
        if s > !best then best := s
      end
    done;
    !best
  end

let greedy_lower rng ?(tries = 3) g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v > !best then begin
      let adjacency, nbrs = neighborhood_adjacency g v in
      let k = Array.length nbrs in
      for _ = 1 to tries do
        let order = Rng.perm rng k in
        let s = greedy_mis_size adjacency k order in
        if s > !best then best := s
      done
    end
  done;
  !best

let check_claw_free g ~beta =
  let witness = ref None in
  (try
     for v = 0 to Graph.n g - 1 do
       if Graph.degree g v > beta then begin
         let adjacency, nbrs = neighborhood_adjacency g v in
         let k = Array.length nbrs in
         let size, members = mis_with_witness ~budget:max_int adjacency k in
         if size > beta then begin
           let leaves =
             Array.of_list (List.map (fun i -> nbrs.(i)) members)
           in
           (* trim the witness to exactly beta+1 leaves *)
           let leaves = Array.sub leaves 0 (Int.min (beta + 1) (Array.length leaves)) in
           witness := Some (v, leaves);
           raise Exit
         end
       end
     done
   with Exit -> ());
  !witness
