
let degeneracy_order g =
  let nv = Graph.n g in
  let deg = Array.init nv (Graph.degree g) in
  let maxd = Array.fold_left Int.max 0 deg in
  (* bucket queue over current degrees *)
  let buckets = Array.make (maxd + 1) [] in
  Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
  let removed = Array.make nv false in
  let order = Array.make nv 0 in
  let k = ref 0 in
  let cursor = ref 0 in
  for step = 0 to nv - 1 do
    (* find the non-empty bucket of minimum degree; [cursor] only moves up
       by 1 per removal plus down when degrees drop, so total work is
       O(n + m) *)
    while !cursor <= maxd && buckets.(!cursor) = [] do
      incr cursor
    done;
    (* pop a live vertex *)
    let rec pop () =
      match buckets.(!cursor) with
      | [] ->
          incr cursor;
          while !cursor <= maxd && buckets.(!cursor) = [] do
            incr cursor
          done;
          pop ()
      | v :: rest ->
          buckets.(!cursor) <- rest;
          if removed.(v) || deg.(v) <> !cursor then pop () else v
    in
    let v = pop () in
    removed.(v) <- true;
    order.(step) <- v;
    if deg.(v) > !k then k := deg.(v);
    Graph.iter_neighbors g v (fun u ->
        if not removed.(u) then begin
          deg.(u) <- deg.(u) - 1;
          buckets.(deg.(u)) <- u :: buckets.(deg.(u));
          if deg.(u) < !cursor then cursor := deg.(u)
        end);
    ignore (Graph.probes g)
  done;
  (!k, order)

let degeneracy g = fst (degeneracy_order g)

let density_lower_bound g =
  let non_isolated = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v > 0 then incr non_isolated
  done;
  if !non_isolated < 2 then 0
  else
    let m = Graph.m g in
    (m + !non_isolated - 2) / (!non_isolated - 1)

let arboricity_upper_bound = degeneracy

let orient_by_degeneracy g =
  let nv = Graph.n g in
  let _, order = degeneracy_order g in
  let rank = Array.make nv 0 in
  Array.iteri (fun i v -> rank.(v) <- i) order;
  let out = Array.make nv [] in
  Graph.iter_edges g (fun u v ->
      if rank.(u) < rank.(v) then out.(u) <- (u, v) :: out.(u)
      else out.(v) <- (v, u) :: out.(v));
  Array.map Array.of_list out
