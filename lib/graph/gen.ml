open Mspar_prelude

let empty n = Graph.of_edges ~n []

let complete n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let path n =
  Graph.of_edges ~n (List.init (Int.max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid: need positive dims";
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (id r c, id r (c + 1)) :: !acc;
      if r + 1 < rows then acc := (id r c, id (r + 1) c) :: !acc
    done
  done;
  Graph.of_edges ~n:(rows * cols) !acc

let perfect_matching n =
  if n mod 2 <> 0 then invalid_arg "Gen.perfect_matching: need even n";
  Graph.of_edges ~n (List.init (n / 2) (fun i -> (2 * i, (2 * i) + 1)))

let gnp rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.gnp: p out of range";
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let gnm rng ~n ~m =
  let total = n * (n - 1) / 2 in
  if m < 0 || m > total then invalid_arg "Gen.gnm: m out of range";
  (* Map a flat index in [0, n(n-1)/2) to the corresponding pair (u, v). *)
  let pair_of_index idx =
    (* row lengths are n-1, n-2, ...; walk rows (fine for the sizes used) *)
    let rec go u idx =
      let row = n - 1 - u in
      if idx < row then (u, u + 1 + idx) else go (u + 1) (idx - row)
    in
    go 0 idx
  in
  let chosen = Rng.sample_distinct rng ~k:m ~n:total in
  Graph.of_edges ~n (Array.to_list (Array.map pair_of_index chosen))

let random_bipartite rng ~left ~right ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.random_bipartite: p out of range";
  let acc = ref [] in
  for u = 0 to left - 1 do
    for v = 0 to right - 1 do
      if Rng.bernoulli rng p then acc := (u, left + v) :: !acc
    done
  done;
  Graph.of_edges ~n:(left + right) !acc

let clique_minus_edge ~n ~missing:(a, b) =
  if a = b || a < 0 || b < 0 || a >= n || b >= n then
    invalid_arg "Gen.clique_minus_edge: bad missing edge";
  let a, b = if a < b then (a, b) else (b, a) in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (u = a && v = b) then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let two_cliques_bridge ~half =
  if half < 3 || half mod 2 = 0 then
    invalid_arg "Gen.two_cliques_bridge: need odd half >= 3";
  let n = 2 * half in
  let acc = ref [] in
  for u = 0 to half - 1 do
    for v = u + 1 to half - 1 do
      acc := (u, v) :: !acc;
      acc := (half + u, half + v) :: !acc
    done
  done;
  let bridge = (0, half) in
  acc := bridge :: !acc;
  (Graph.of_edges ~n !acc, bridge)

let disjoint_cliques rng ~n ~k =
  if k < 1 then invalid_arg "Gen.disjoint_cliques: need k >= 1";
  let cluster = Array.init n (fun _ -> Rng.int rng k) in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if cluster.(u) = cluster.(v) then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let bounded_diversity rng ~n ~cliques ~memberships =
  if memberships < 1 || memberships > cliques then
    invalid_arg "Gen.bounded_diversity: bad memberships";
  let member = Array.init n (fun _ -> Rng.sample_distinct rng ~k:memberships ~n:cliques) in
  let in_clique = Array.make cliques [] in
  Array.iteri
    (fun v cs -> Array.iter (fun c -> in_clique.(c) <- v :: in_clique.(c)) cs)
    member;
  let acc = ref [] in
  Array.iter
    (fun vs ->
      let vs = Array.of_list vs in
      for i = 0 to Array.length vs - 1 do
        for j = i + 1 to Array.length vs - 1 do
          acc := (vs.(i), vs.(j)) :: !acc
        done
      done)
    in_clique;
  Graph.of_edges ~n !acc

let hub_gadget ~pairs ~hub_size =
  if pairs < 1 || hub_size < 1 then
    invalid_arg "Gen.hub_gadget: need positive pairs and hub_size";
  let l i = i in
  let r i = pairs + i in
  let hl j = (2 * pairs) + j in
  let hr j = (2 * pairs) + hub_size + j in
  let n = (2 * pairs) + (2 * hub_size) in
  let acc = ref [] in
  for i = 0 to pairs - 1 do
    acc := (l i, r i) :: !acc;
    for j = 0 to hub_size - 1 do
      acc := (l i, hr j) :: !acc;
      acc := (r i, hl j) :: !acc
    done
  done;
  (Graph.of_edges ~n !acc, pairs + Int.min hub_size pairs)

let random_graph_with_planted_matching rng ~n ~extra =
  if n mod 2 <> 0 then
    invalid_arg "Gen.random_graph_with_planted_matching: need even n";
  let acc = ref (List.init (n / 2) (fun i -> (2 * i, (2 * i) + 1))) in
  for _ = 1 to extra do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then acc := (u, v) :: !acc
  done;
  Graph.of_edges ~n !acc
