
let of_graph g =
  let edge_list = Graph.edges g in
  let nl = Array.length edge_list in
  (* group line-vertices by the base endpoint they touch *)
  let touching = Array.make (Graph.n g) [] in
  Array.iteri
    (fun i (u, v) ->
      touching.(u) <- i :: touching.(u);
      touching.(v) <- i :: touching.(v))
    edge_list;
  let acc = ref [] in
  Array.iter
    (fun is ->
      let is = Array.of_list is in
      for a = 0 to Array.length is - 1 do
        for b = a + 1 to Array.length is - 1 do
          acc := (is.(a), is.(b)) :: !acc
        done
      done)
    touching;
  (Graph.of_edges ~n:nl !acc, edge_list)

let random_base rng ~base_n ~p =
  let base = Gen.gnp rng ~n:base_n ~p in
  fst (of_graph base)
