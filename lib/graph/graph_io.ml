let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 2)) in
  Buffer.add_string buf
    (Printf.sprintf "# mspar edge list\n%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

type error = { line : int; token : string option; reason : string }

let error_message e =
  match e.token with
  | Some tok -> Printf.sprintf "Graph_io: line %d: %s (at %S)" e.line e.reason tok
  | None -> Printf.sprintf "Graph_io: line %d: %s" e.line e.reason

(* a vertex-count ceiling: the header alone drives O(n) allocation, so an
   absurd [n] in a few bytes of junk must be an [Error], not an OOM *)
let default_max_vertices = 1 lsl 26

exception Parse_error of error

let parse ?(max_vertices = default_max_vertices) s =
  let fail line ?token reason = raise (Parse_error { line; token; reason }) in
  let tokens line =
    String.split_on_char ' '
      (String.map (fun c -> if c = '\t' then ' ' else c) line)
    |> List.filter (fun t -> t <> "")
  in
  let parse_two lineno line =
    match tokens (String.trim line) with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some x, Some y -> (x, y)
        | None, _ -> fail lineno ~token:a "expected two integers"
        | _, None -> fail lineno ~token:b "expected two integers")
    | tok :: _ :: _ :: _ -> fail lineno ~token:tok "expected two integers"
    | [ tok ] -> fail lineno ~token:tok "expected two integers"
    | [] -> fail lineno "expected two integers"
  in
  let run () =
    let lines = String.split_on_char '\n' s in
    let rec skip_comments lineno = function
      | [] -> fail lineno "missing header"
      | line :: rest ->
          let trimmed = String.trim line in
          if trimmed = "" || trimmed.[0] = '#' then
            skip_comments (lineno + 1) rest
          else (lineno, line, rest)
    in
    let lineno, header, rest = skip_comments 1 lines in
    let n, m = parse_two lineno header in
    if n < 0 || m < 0 then fail lineno "negative header values";
    if n > max_vertices then
      fail lineno
        ~token:(string_of_int n)
        (Printf.sprintf "vertex count exceeds the %d limit" max_vertices);
    let edges = ref [] in
    let count = ref 0 in
    let last_line = ref lineno in
    List.iteri
      (fun i line ->
        let trimmed = String.trim line in
        if trimmed <> "" && trimmed.[0] <> '#' then begin
          let ln = lineno + 1 + i in
          last_line := ln;
          let u, v = parse_two ln line in
          if u < 0 || u >= n then
            fail ln ~token:(string_of_int u) "endpoint out of range";
          if v < 0 || v >= n then
            fail ln ~token:(string_of_int v) "endpoint out of range";
          edges := (u, v) :: !edges;
          incr count
        end)
      rest;
    if !count <> m then
      fail !last_line
        (Printf.sprintf "header declares %d edges but found %d" m !count);
    Graph.of_edges ~n !edges
  in
  match run () with g -> Ok g | exception Parse_error e -> Error e
(* total by construction: Parse_error is raised only inside [run] and
   caught on the line above *)
[@@lint.allow "MSP007"]

let of_string_exn s =
  match parse s with Ok g -> g | Error e -> failwith (error_message e)

let of_string = of_string_exn

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc

let load_exn path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string_exn s

let load = load_exn
