let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 2)) in
  Buffer.add_string buf
    (Printf.sprintf "# mspar edge list\n%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let fail lineno msg = failwith (Printf.sprintf "Graph_io: line %d: %s" lineno msg) in
  let parse_two lineno line =
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun t -> t <> "")
    with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some x, Some y -> (x, y)
        | _ -> fail lineno "expected two integers")
    | _ -> fail lineno "expected two integers"
  in
  let rec skip_comments lineno = function
    | [] -> fail lineno "missing header"
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then skip_comments (lineno + 1) rest
        else (lineno, line, rest)
  in
  let lineno, header, rest = skip_comments 1 lines in
  let n, m = parse_two lineno header in
  if n < 0 || m < 0 then fail lineno "negative header values";
  let edges = ref [] in
  let count = ref 0 in
  List.iteri
    (fun i line ->
      let trimmed = String.trim line in
      if trimmed <> "" && trimmed.[0] <> '#' then begin
        let u, v = parse_two (lineno + 1 + i) line in
        if u < 0 || u >= n || v < 0 || v >= n then
          fail (lineno + 1 + i) "endpoint out of range";
        edges := (u, v) :: !edges;
        incr count
      end)
    rest;
  if !count <> m then
    failwith
      (Printf.sprintf "Graph_io: header declares %d edges but found %d" m !count);
  Graph.of_edges ~n !edges

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s
