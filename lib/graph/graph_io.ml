let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 2)) in
  Buffer.add_string buf
    (Printf.sprintf "# mspar edge list\n%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

type error = { line : int; token : string option; reason : string }

let error_message e =
  match e.token with
  | Some tok -> Printf.sprintf "Graph_io: line %d: %s (at %S)" e.line e.reason tok
  | None -> Printf.sprintf "Graph_io: line %d: %s" e.line e.reason

(* a vertex-count ceiling: the header alone drives O(n) allocation, so an
   absurd [n] in a few bytes of junk must be an [Error], not an OOM *)
let default_max_vertices = 1 lsl 26

exception Parse_error of error

let parse ?(max_vertices = default_max_vertices) s =
  let fail line ?token reason = raise (Parse_error { line; token; reason }) in
  let tokens line =
    String.split_on_char ' '
      (String.map (fun c -> if c = '\t' then ' ' else c) line)
    |> List.filter (fun t -> t <> "")
  in
  let parse_two lineno line =
    match tokens (String.trim line) with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some x, Some y -> (x, y)
        | None, _ -> fail lineno ~token:a "expected two integers"
        | _, None -> fail lineno ~token:b "expected two integers")
    | tok :: _ :: _ :: _ -> fail lineno ~token:tok "expected two integers"
    | [ tok ] -> fail lineno ~token:tok "expected two integers"
    | [] -> fail lineno "expected two integers"
  in
  let run () =
    let lines = String.split_on_char '\n' s in
    let rec skip_comments lineno = function
      | [] -> fail lineno "missing header"
      | line :: rest ->
          let trimmed = String.trim line in
          if trimmed = "" || trimmed.[0] = '#' then
            skip_comments (lineno + 1) rest
          else (lineno, line, rest)
    in
    let lineno, header, rest = skip_comments 1 lines in
    let n, m = parse_two lineno header in
    if n < 0 || m < 0 then fail lineno "negative header values";
    if n > max_vertices then
      fail lineno
        ~token:(string_of_int n)
        (Printf.sprintf "vertex count exceeds the %d limit" max_vertices);
    let edges = ref [] in
    let count = ref 0 in
    let last_line = ref lineno in
    List.iteri
      (fun i line ->
        let trimmed = String.trim line in
        if trimmed <> "" && trimmed.[0] <> '#' then begin
          let ln = lineno + 1 + i in
          last_line := ln;
          let u, v = parse_two ln line in
          if u < 0 || u >= n then
            fail ln ~token:(string_of_int u) "endpoint out of range";
          if v < 0 || v >= n then
            fail ln ~token:(string_of_int v) "endpoint out of range";
          edges := (u, v) :: !edges;
          incr count
        end)
      rest;
    if !count <> m then
      fail !last_line
        (Printf.sprintf "header declares %d edges but found %d" m !count);
    Graph.of_edges ~n !edges
  in
  match run () with g -> Ok g | exception Parse_error e -> Error e
(* total by construction: Parse_error is raised only inside [run] and
   caught on the line above *)
[@@lint.allow "MSP007"]

let of_string_exn s =
  match parse s with Ok g -> g | Error e -> failwith (error_message e)

let of_string = of_string_exn

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc

let load_exn path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string_exn s

let load = load_exn

(* ------------------------------------------------------------------ *)
(* .msgr — the mmap-able binary graph container                       *)
(* ------------------------------------------------------------------ *)

(* Layout (every lane 8-byte aligned, every byte covered by a check):

     offset  0  magic "MSPARGR1"                 8 bytes
     offset  8  n        int64 LE
     offset 16  m        int64 LE
     offset 24  maxdeg   int64 LE
     offset 32  checksum int64 LE  (Graph.checksum of the full structure)
     offset 40  flags    int64 LE  (bit 0: lanes are little-endian words)
     offset 48  crc32 of bytes [0, 48), stored as int64 LE
     offset 56  offsets lane: (n+1) x int64 LE
     offset 56 + 8(n+1)  adjacency lane: 2m x int64 LE
     EOF must land exactly at the end of the adjacency lane.

   The lane values are OCaml ints written as little-endian int64 words, so
   on a 64-bit little-endian host the on-disk bytes are exactly the
   in-memory representation of an [(int, int_elt) Bigarray] — [load_mmap]
   maps them in place with no decode pass and no copy.  The header CRC
   makes metadata damage a clean [Error]; the offsets lane is validated in
   O(n) by [Graph.of_csr] (monotone, inside the adjacency extent) so no
   adjacency index can escape the mapping; the adjacency lane itself is
   never read at load time unless [~verify:true] asks for the full
   checksum pass — that laziness is what makes opening a multi-million-edge
   graph O(n) instead of O(m). *)

module Bigvec = Mspar_prelude.Bigvec
module Codec = Mspar_prelude.Codec

let msgr_magic = "MSPARGR1"
let msgr_header_bytes = 56
let msgr_flag_le = 1L

(* one lane-write buffer: 8 KiB of int64 words, flushed as it fills *)
let lane_buf_words = 1024

let write_lane oc (lane : Bigvec.t) =
  let buf = Bytes.create (8 * lane_buf_words) in
  let len = Bigvec.length lane in
  let i = ref 0 in
  while !i < len do
    let batch = Int.min lane_buf_words (len - !i) in
    for k = 0 to batch - 1 do
      Bytes.set_int64_le buf (8 * k) (Int64.of_int (Bigvec.unsafe_get lane (!i + k)))
    done;
    output_bytes oc (Bytes.sub buf 0 (8 * batch));
    i := !i + batch
  done

let msgr_header g =
  let buf = Buffer.create msgr_header_bytes in
  Buffer.add_string buf msgr_magic;
  Codec.add_int64 buf (Int64.of_int (Graph.n g));
  Codec.add_int64 buf (Int64.of_int (Graph.m g));
  Codec.add_int64 buf (Int64.of_int (Graph.max_degree g));
  Codec.add_int64 buf (Graph.checksum g);
  Codec.add_int64 buf msgr_flag_le;
  let crc = Codec.crc32 (Buffer.contents buf) in
  Codec.add_int64 buf (Int64.logand (Int64.of_int32 crc) 0xFFFFFFFFL);
  Buffer.contents buf

let save_packed path g =
  if Sys.big_endian then
    invalid_arg "Graph_io.save_packed: .msgr lanes require a little-endian host";
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (msgr_header g);
      let offsets, adj = Graph.csr_lanes g in
      write_lane oc offsets;
      write_lane oc adj);
  (* atomic publish: readers either see the complete container or the old
     file, never a torn write *)
  Sys.rename tmp path

exception Bad of string

let read_exactly fd bytes len =
  let got = ref 0 in
  (try
     while !got < len do
       let k = Unix.read fd bytes !got (len - !got) in
       if k = 0 then raise Exit;
       got := !got + k
     done
   with Exit -> ());
  if !got < len then raise (Bad "truncated header")

let parse_msgr_header s =
  if not (String.equal (String.sub s 0 8) msgr_magic) then
    raise (Bad "bad magic (not an .msgr file)");
  let r = Codec.reader ~pos:8 s in
  let n64 = Codec.read_int64 r in
  let m64 = Codec.read_int64 r in
  let maxdeg64 = Codec.read_int64 r in
  let checksum = Codec.read_int64 r in
  let flags = Codec.read_int64 r in
  let stored_crc = Codec.read_int64 r in
  let crc = Int64.logand (Int64.of_int32 (Codec.crc32 ~pos:0 ~len:48 s)) 0xFFFFFFFFL in
  if not (Int64.equal stored_crc crc) then raise (Bad "header CRC mismatch");
  if not (Int64.equal (Int64.logand flags msgr_flag_le) msgr_flag_le) then
    raise (Bad "lanes are not little-endian");
  (* bound the counts before truncating to int: 2^48 vertices/edges is far
     beyond any mappable file and guards every later size product *)
  let in_range v = Int64.compare v 0L >= 0 && Int64.compare v 0x1_0000_0000_0000L < 0 in
  if not (in_range n64 && in_range m64 && in_range maxdeg64) then
    raise (Bad "header counts out of range");
  (Int64.to_int n64, Int64.to_int m64, Int64.to_int maxdeg64, checksum)

let map_lane fd ~pos ~len : Bigvec.t =
  if len = 0 then Bigvec.create 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int Bigarray.c_layout
         false [| len |])

let load_mmap ?(verify = false) path =
  let run () =
    if Sys.big_endian then raise (Bad "big-endian hosts cannot map .msgr lanes");
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size < msgr_header_bytes then raise (Bad "truncated header");
        let hdr = Bytes.create msgr_header_bytes in
        read_exactly fd hdr msgr_header_bytes;
        let n, m, maxdeg, checksum = parse_msgr_header (Bytes.to_string hdr) in
        let offsets_pos = msgr_header_bytes in
        let adj_pos = offsets_pos + (8 * (n + 1)) in
        let expected = adj_pos + (8 * 2 * m) in
        if size < expected then raise (Bad "file shorter than its lanes");
        if size > expected then raise (Bad "trailing bytes after the lanes");
        let offsets = map_lane fd ~pos:offsets_pos ~len:(n + 1) in
        let adj = map_lane fd ~pos:adj_pos ~len:(2 * m) in
        match Graph.of_csr ~n ~offsets ~adj ~maxdeg with
        | Error e -> raise (Bad ("offsets lane invalid: " ^ e))
        | Ok g ->
            if verify && not (Int64.equal (Graph.checksum g) checksum) then
              raise (Bad "content checksum mismatch");
            g)
  in
  match run () with
  | g -> Ok g
  | exception Bad reason -> Error (Printf.sprintf "Graph_io.load_mmap: %s: %s" path reason)
  | exception Codec.Truncated ->
      Error (Printf.sprintf "Graph_io.load_mmap: %s: truncated header" path)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "Graph_io.load_mmap: %s: %s" path (Unix.error_message e))
  | exception Sys_error e -> Error (Printf.sprintf "Graph_io.load_mmap: %s" e)
(* total by construction: every failure mode of [run] is enumerated and
   converted to [Error] above *)
[@@lint.allow "MSP007"]

let load_mmap_exn ?verify path =
  match load_mmap ?verify path with Ok g -> g | Error e -> failwith e

let load_packed_exn path =
  Graph.materialize (load_mmap_exn ~verify:true path)
