(** Uniform-sparsity measures: degeneracy and arboricity bounds.

    The arboricity α(G) = max_U ⌈|E(U)|/(|U|−1)⌉ (Nash–Williams) is NP-easy
    but needs matroid machinery to compute exactly; the library reports the
    standard sandwich instead:

    {ul
    {- [density_lower_bound]: ⌈m/(n'−1)⌉ over the whole graph (n' counts
       non-isolated vertices) — a lower bound on α;}
    {- [degeneracy]: the minimum d such that every subgraph has a vertex of
       degree ≤ d — satisfies α ≤ d ≤ 2α − 1, so it upper-bounds α within a
       factor 2.}}

    Observation 2.12 of the paper (arboricity of G_Δ ≤ 2Δ) is validated
    against both ends of the sandwich. *)


val degeneracy : Graph.t -> int
(** O(n + m) bucket algorithm. 0 for edgeless graphs. *)

val degeneracy_order : Graph.t -> int * int array
(** Degeneracy together with an elimination order in which every vertex has
    at most [degeneracy g] neighbors appearing later. *)

val density_lower_bound : Graph.t -> int
(** ⌈m/(n'−1)⌉ where n' is the number of non-isolated vertices; 0 when the
    graph has fewer than 2 non-isolated vertices. *)

val arboricity_upper_bound : Graph.t -> int
(** Currently the degeneracy (α ≤ degeneracy). *)

val orient_by_degeneracy : Graph.t -> (int * int) array array
(** Each edge oriented from the endpoint eliminated first; result.(v) lists
    v's out-edges.  Every vertex has out-degree ≤ degeneracy — the workhorse
    for bounded-arboricity algorithms. *)
