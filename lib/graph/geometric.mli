(** Geometric bounded-growth families beyond plain unit disks (§1.1).

    The paper lists proper interval graphs, quasi-unit-disk graphs and
    general disk graphs as bounded-growth (hence bounded neighborhood
    independence) families.  These generators make the whole list
    available to the experiment zoo:

    {ul
    {- {!proper_interval}: unit intervals on a line; unit interval graphs
       are claw-free, so β ≤ 2;}
    {- {!quasi_unit_disk}: edges certain within distance q·r, decided by a
       coin between q·r and r (the Kuhn–Wattenhofer–Zollinger model); β ≤ 5
       still holds because any independent set in a neighborhood is
       contained in a disk of radius r with pairwise distances > q·r — for
       the default q close to 1 the unit-disk packing argument carries
       over with a constant depending on q;}
    {- {!disk_graph}: disks of varying radii in [rmin, rmax]; β is bounded
       by a packing constant depending on rmax/rmin.}} *)

open Mspar_prelude

val proper_interval : Rng.t -> n:int -> span:float -> Graph.t
(** [proper_interval rng ~n ~span] drops [n] unit intervals with left
    endpoints uniform in [\[0, span\]]; two vertices are adjacent iff their
    intervals overlap.  Smaller [span] is denser.
    @raise Invalid_argument if [span] is negative. *)

val quasi_unit_disk :
  Rng.t -> n:int -> radius:float -> inner:float -> Graph.t
(** [quasi_unit_disk rng ~n ~radius ~inner] with [0 < inner <= 1]: points
    uniform in the unit square; distance ≤ inner·radius ⇒ edge; distance in
    (inner·radius, radius\] ⇒ edge with probability 1/2; farther ⇒ no
    edge.
    @raise Invalid_argument if [inner] is outside (0, 1]. *)

val disk_graph : Rng.t -> n:int -> rmin:float -> rmax:float -> Graph.t
(** Disks with centers uniform in the unit square and radii uniform in
    [\[rmin, rmax\]]; vertices adjacent iff the disks intersect.
    @raise Invalid_argument unless [0 < rmin <= rmax]. *)
