(** Unit-disk graphs — bounded-growth geometric family (β ≤ 5 in the plane).

    Vertices are points in the unit square; two are adjacent iff their
    Euclidean distance is at most the radius.  An independent set in a
    neighborhood corresponds to points inside a disk of radius r that are
    pairwise more than r apart — at most 5 such points fit, so the
    neighborhood independence number of any unit-disk graph is at most 5. *)

open Mspar_prelude

type point = { x : float; y : float }

val random : Rng.t -> n:int -> radius:float -> Graph.t * point array
(** [random rng ~n ~radius] samples [n] points uniformly in the unit square
    and connects points at distance ≤ [radius]. *)

val of_points : point array -> radius:float -> Graph.t
(** @raise Invalid_argument if [radius] is negative. *)

val distance : point -> point -> float
