type edge = int * int

type t = {
  n : int;
  offsets : int array; (* length n+1 *)
  adj : int array; (* length 2m, sorted within each vertex block *)
  mutable probe_count : int;
}

let n t = t.n
let m t = Array.length t.adj / 2
let degree t v = t.offsets.(v + 1) - t.offsets.(v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    if degree t v > !best then best := degree t v
  done;
  !best

let normalize (u, v) = if u <= v then (u, v) else (v, u)

let build n edges =
  (* [edges] arrives deduplicated and normalised (u < v). *)
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  for v = 0 to n - 1 do
    let lo = offsets.(v) and hi = offsets.(v + 1) in
    let block = Array.sub adj lo (hi - lo) in
    Array.sort compare block;
    Array.blit block 0 adj lo (hi - lo)
  done;
  { n; offsets; adj; probe_count = 0 }

let of_edges ~n:nv edges =
  if nv < 0 then invalid_arg "Graph.of_edges: negative n";
  let check (u, v) =
    if u < 0 || u >= nv || v < 0 || v >= nv then
      invalid_arg "Graph.of_edges: endpoint out of range"
  in
  List.iter check edges;
  let cleaned =
    List.filter_map
      (fun (u, v) -> if u = v then None else Some (normalize (u, v)))
      edges
  in
  let sorted = List.sort_uniq compare cleaned in
  build nv sorted

let of_edge_array ~n edges = of_edges ~n (Array.to_list edges)

let neighbor t v i =
  if i < 0 || i >= degree t v then invalid_arg "Graph.neighbor: index out of range";
  t.probe_count <- t.probe_count + 1;
  t.adj.(t.offsets.(v) + i)

let iter_neighbors t v f =
  let lo = t.offsets.(v) and hi = t.offsets.(v + 1) in
  t.probe_count <- t.probe_count + (hi - lo);
  for i = lo to hi - 1 do
    f t.adj.(i)
  done

let fold_neighbors t v ~init ~f =
  let acc = ref init in
  iter_neighbors t v (fun u -> acc := f !acc u);
  !acc

let has_edge t u v =
  if u = v then false
  else begin
    (* search for v in the (sorted) smaller adjacency block *)
    let u, v = if degree t u <= degree t v then (u, v) else (v, u) in
    let lo = ref t.offsets.(u) and hi = ref (t.offsets.(u + 1) - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      t.probe_count <- t.probe_count + 1;
      let w = t.adj.(mid) in
      if w = v then found := true
      else if w < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let iter_edges t f =
  for v = 0 to t.n - 1 do
    for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
      let u = t.adj.(i) in
      if v < u then f v u
    done
  done

let edges t =
  let acc = ref [] in
  iter_edges t (fun u v -> acc := (u, v) :: !acc);
  let arr = Array.of_list !acc in
  Array.sort compare arr;
  arr

let probes t = t.probe_count
let reset_probes t = t.probe_count <- 0

let induced t vs =
  let distinct = Array.of_list (List.sort_uniq compare (Array.to_list vs)) in
  let old_to_new = Hashtbl.create (Array.length distinct) in
  Array.iteri (fun i v -> Hashtbl.replace old_to_new v i) distinct;
  let acc = ref [] in
  Array.iteri
    (fun i v ->
      for k = t.offsets.(v) to t.offsets.(v + 1) - 1 do
        let u = t.adj.(k) in
        match Hashtbl.find_opt old_to_new u with
        | Some j when i < j -> acc := (i, j) :: !acc
        | Some _ | None -> ()
      done)
    distinct;
  (of_edges ~n:(Array.length distinct) !acc, distinct)

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: vertex counts differ";
  let acc = ref [] in
  iter_edges a (fun u v -> acc := (u, v) :: !acc);
  iter_edges b (fun u v -> acc := (u, v) :: !acc);
  of_edges ~n:a.n !acc

let is_subgraph ~sub ~super =
  sub.n = super.n
  &&
  let ok = ref true in
  iter_edges sub (fun u v -> if not (has_edge super u v) then ok := false);
  !ok

let complement_degree_sum t = Array.length t.adj

let pp ppf t = Format.fprintf ppf "graph(n=%d, m=%d)" t.n (m t)

let equal a b = a.n = b.n && edges a = edges b
