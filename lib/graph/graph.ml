module Edgebuf = Mspar_prelude.Edgebuf
module Isort = Mspar_prelude.Isort
module Pool = Mspar_prelude.Pool
module Bigvec = Mspar_prelude.Bigvec

type edge = int * int

(* The CSR lanes live off the OCaml heap: [Bigvec.t] is malloc'd (or, for
   graphs opened from an [.msgr] file, mmap'd) storage the GC never scans.
   Adjacency for a 100M-edge graph is ~1.6 GB that would otherwise be
   re-marked on every major collection; off-heap it costs the collector
   nothing and can be shared across domains with no write barriers.
   Within this module the lanes are accessed through the [Bigarray.Array1]
   primitives directly (bounds discipline is concentrated here and in
   [Mspar_prelude.Bigvec] — lint rule MSP010); every unsafe index below is
   derived from a validated offsets lane. *)
type t = {
  n : int;
  offsets : Bigvec.t; (* length n+1 *)
  adj : Bigvec.t; (* length 2m, sorted within each vertex block *)
  maxdeg : int; (* cached at build time; max_degree is O(1) *)
  probe_count : int Atomic.t; (* atomic so parallel probe totals are exact *)
}

(* Checked reads: [Array1.get] is a compiler primitive (one bounds test and
   an unboxed load once the kind/layout are statically known), so the safe
   accessors cost what a heap [Array.get] used to. *)
let og (o : Bigvec.t) i : int = Bigarray.Array1.get o i
let au (a : Bigvec.t) i : int = Bigarray.Array1.unsafe_get a i

let n t = t.n
let m t = Bigvec.length t.adj / 2
let degree t v = og t.offsets (v + 1) - og t.offsets v
let max_degree t = t.maxdeg
let normalize (u, v) = if u <= v then (u, v) else (v, u)

(* ------------------------------------------------------------------ *)
(* Packed-edge pipeline                                               *)
(* ------------------------------------------------------------------ *)

(* An edge is carried as a single int [u lsl shift lor v] with
   [shift = max 1 (bits of (n-1))].  The guard rejects vertex counts whose
   codes could overflow the native int (n beyond 2^30 on 64-bit hosts);
   callers fall back to the boxed-list path in that case. *)
let pack_shift ~n =
  if n < 0 then None
  else begin
    let s = ref 1 in
    while 1 lsl !s < n do
      incr s
    done;
    if 2 * !s <= Sys.int_size - 2 then Some !s else None
  end

let pack ~shift u v = (u lsl shift) lor v
let unpack_u ~shift c = c lsr shift
let unpack_v ~shift c = c land ((1 lsl shift) - 1)

(* The CSR builder over a packed prefix [codes.(0 .. len-1)]: marks may
   contain self-loops, duplicates and reversed duplicates.  Everything is
   flat int arrays — no tuples, no polymorphic compare, no per-block sort.
   The prefix of [codes] is mutated (normalised, sorted, deduplicated).
   Scratch stays on the heap (it is short-lived); only the final CSR lanes
   go off-heap, written in place with no post-build copy. *)
let build_packed ~n ~shift codes len =
  let mask = (1 lsl shift) - 1 in
  (* 1. drop self-loops, orient u < v, compact in place *)
  let w = ref 0 in
  for i = 0 to len - 1 do
    let c = Array.unsafe_get codes i in
    let u = c lsr shift and v = c land mask in
    if u <> v then begin
      Array.unsafe_set codes !w (if u < v then c else (v lsl shift) lor u);
      incr w
    end
  done;
  let len = !w in
  (* 2. sort the codes ascending — lexicographic on (u, v).  When the mark
     count is at least ~n/4 a two-pass stable counting sort (minor key v,
     then major key u) is O(len + n); for very sparse inputs the O(n)
     counting passes would dominate, so fall back to comparison sort. *)
  let counts = Array.make (n + 1) 0 in
  if len >= n / 4 then begin
    let aux = Array.make (Int.max len 1) 0 in
    let counting_pass ~key src dst =
      Array.fill counts 0 (n + 1) 0;
      for i = 0 to len - 1 do
        let k = key (Array.unsafe_get src i) in
        Array.unsafe_set counts k (Array.unsafe_get counts k + 1)
      done;
      let run = ref 0 in
      for v = 0 to n - 1 do
        let c = Array.unsafe_get counts v in
        Array.unsafe_set counts v !run;
        run := !run + c
      done;
      for i = 0 to len - 1 do
        let c = Array.unsafe_get src i in
        let k = key c in
        Array.unsafe_set dst (Array.unsafe_get counts k) c;
        Array.unsafe_set counts k (Array.unsafe_get counts k + 1)
      done
    in
    counting_pass ~key:(fun c -> c land mask) codes aux;
    counting_pass ~key:(fun c -> c lsr shift) aux codes
  end
  else Isort.sort_range codes ~pos:0 ~len;
  (* 3. dedup the sorted prefix in place *)
  let uniq = ref 0 in
  if len > 0 then begin
    uniq := 1;
    for i = 1 to len - 1 do
      let c = Array.unsafe_get codes i in
      if c <> Array.unsafe_get codes (!uniq - 1) then begin
        Array.unsafe_set codes !uniq c;
        incr uniq
      end
    done
  end;
  let medges = !uniq in
  (* 4. degrees, offsets, cached max degree *)
  Array.fill counts 0 (n + 1) 0;
  for i = 0 to medges - 1 do
    let c = Array.unsafe_get codes i in
    let u = c lsr shift and v = c land mask in
    Array.unsafe_set counts u (Array.unsafe_get counts u + 1);
    Array.unsafe_set counts v (Array.unsafe_get counts v + 1)
  done;
  let offsets : Bigvec.t = Bigvec.create_uninit (n + 1) in
  Bigarray.Array1.unsafe_set offsets 0 0;
  let maxdeg = ref 0 in
  let run = ref 0 in
  for v = 0 to n - 1 do
    let d = Array.unsafe_get counts v in
    if d > !maxdeg then maxdeg := d;
    run := !run + d;
    Bigarray.Array1.unsafe_set offsets (v + 1) !run
  done;
  (* 5. fill adjacency in two passes over the sorted codes.  Pass one
     writes the smaller endpoint into the larger endpoint's block: for a
     fixed block x these arrive ordered by the major sort key, so x's
     neighbors below x land in increasing order.  Pass two writes the
     larger endpoint into the smaller endpoint's block, appending x's
     neighbors above x in increasing order.  Every block is born sorted —
     no Array.sub / Array.sort compare.  The writes land directly in the
     off-heap lane. *)
  let adj : Bigvec.t = Bigvec.create_uninit !run in
  let cursor = counts in
  for v = 0 to n - 1 do
    Array.unsafe_set cursor v (Bigarray.Array1.unsafe_get offsets v)
  done;
  for i = 0 to medges - 1 do
    let c = Array.unsafe_get codes i in
    let u = c lsr shift and v = c land mask in
    Bigarray.Array1.unsafe_set adj (Array.unsafe_get cursor v) u;
    Array.unsafe_set cursor v (Array.unsafe_get cursor v + 1)
  done;
  for i = 0 to medges - 1 do
    let c = Array.unsafe_get codes i in
    let u = c lsr shift and v = c land mask in
    Bigarray.Array1.unsafe_set adj (Array.unsafe_get cursor u) v;
    Array.unsafe_set cursor u (Array.unsafe_get cursor u + 1)
  done;
  { n; offsets; adj; maxdeg = !maxdeg; probe_count = Atomic.make 0 }

(* ------------------------------------------------------------------ *)
(* Parallel CSR builder                                               *)
(* ------------------------------------------------------------------ *)

(* Multi-domain counterpart of [build_packed].  Input is an array of code
   chunks [(storage, off, len)] — typically one per collecting domain — and
   the output is the canonical CSR, so it is bit-for-bit identical to
   [build_packed] over the chunks' concatenation (both emit the sorted,
   deduplicated edge set; the CSR of a fixed edge set is unique).

   The phases, with their parallelism (C = #chunks, P = pool size,
   L = total code count):

     1. normalise + per-chunk major-key histogram   parallel over chunks
     2. histogram merge -> block starts + cursors   sequential, O(n·C)
     3. scatter codes into per-vertex blocks        parallel over chunks
     4. per-block sort + dedup + minor histogram    parallel over u-ranges
     5. degrees, offsets, pass-A cursors            sequential, O(n·P)
     6. two-sided adjacency fill                    parallel over u-ranges

   Phase 3 replaces both the sequential concat copy (each domain scatters
   straight from its own buffer) and the global counting sort (codes land
   grouped by their smaller endpoint; phase 4 only sorts within blocks).
   Phases 4 and 6 split [0, n) with the pool's deterministic
   [chunk_bounds], so the per-range minor histograms of phase 4 are valid
   cursor bases for the same ranges in phase 6.

   Races: chunks/ranges write disjoint index sets everywhere.  In phase 6,
   range r writes (a) slots [offsets.(u) + minor_total.(u) ..] for its own
   majors u — owned exclusively — and (b) smaller-endpoint slots of
   arbitrary blocks v at per-range cursor windows carved out of
   [offsets.(v) .. offsets.(v) + minor_total.(v)) in phase 5 — disjoint by
   construction, and ordered so every block is born sorted exactly as in
   the sequential two-pass fill.  The fill scatters straight into the
   final off-heap adjacency lane: Bigarray storage has no GC write
   barriers, so disjoint-window parallel writes are exactly as safe as
   they were on a heap int array, and there is no post-build copy. *)
let build_packed_par ~pool ~n ~shift chunks =
  let nchunks = Array.length chunks in
  let mask = (1 lsl shift) - 1 in
  let scratch = Int.max n 1 in
  (* 1. per chunk: drop self-loops, orient u < v, compact in place, and
     histogram the (normalised) major keys *)
  let hist = Array.init (Int.max nchunks 1) (fun _ -> Array.make scratch 0) in
  let lens = Array.make (Int.max nchunks 1) 0 in
  Pool.parallel_for_ranges pool ~chunks:(Int.max nchunks 1) ~n:nchunks
    (fun ~chunk:_ ~lo ~hi ->
      for k = lo to hi - 1 do
        let storage, off, len = chunks.(k) in
        let h = hist.(k) in
        let w = ref off in
        for i = off to off + len - 1 do
          let c = Array.unsafe_get storage i in
          if c < 0 || c lsr shift >= n || c land mask >= n then
            invalid_arg "Graph.of_packed_par: code out of range";
          let u = c lsr shift and v = c land mask in
          if u <> v then begin
            let c = if u < v then c else (v lsl shift) lor u in
            Array.unsafe_set storage !w c;
            let u = c lsr shift in
            Array.unsafe_set h u (Array.unsafe_get h u + 1);
            incr w
          end
        done;
        lens.(k) <- !w - off
      done);
  (* 2. merge histograms: global block starts per major key, plus each
     chunk's private scatter cursor (hist is rewritten in place) *)
  let block_start = Array.make (n + 1) 0 in
  let run = ref 0 in
  for u = 0 to n - 1 do
    block_start.(u) <- !run;
    for k = 0 to nchunks - 1 do
      let h = hist.(k) in
      let c = h.(u) in
      h.(u) <- !run;
      run := !run + c
    done
  done;
  block_start.(n) <- !run;
  let total = !run in
  (* 3. scatter: each chunk writes its own codes at its precomputed
     cursors; [aux] ends up grouped by major key, majors ascending *)
  let aux = Array.make (Int.max total 1) 0 in
  Pool.parallel_for_ranges pool ~chunks:(Int.max nchunks 1) ~n:nchunks
    (fun ~chunk:_ ~lo ~hi ->
      for k = lo to hi - 1 do
        let storage, off, _ = chunks.(k) in
        let cur = hist.(k) in
        for i = off to off + lens.(k) - 1 do
          let c = Array.unsafe_get storage i in
          let u = c lsr shift in
          Array.unsafe_set aux (Array.unsafe_get cur u) c;
          Array.unsafe_set cur u (Array.unsafe_get cur u + 1)
        done
      done);
  (* 4. per major block: sort (blocks share the major key, so full-code
     order is minor-key order), dedup in place, histogram the minors of
     the unique codes per u-range *)
  let nranges = Pool.size pool in
  let mhist = Array.init nranges (fun _ -> Array.make scratch 0) in
  let uniq = Array.make scratch 0 in
  Pool.parallel_for_ranges pool ~chunks:nranges ~n (fun ~chunk ~lo ~hi ->
      let mh = mhist.(chunk) in
      for u = lo to hi - 1 do
        let s = block_start.(u) and e = block_start.(u + 1) in
        Isort.sort_range aux ~pos:s ~len:(e - s);
        let w = ref s in
        for i = s to e - 1 do
          let c = Array.unsafe_get aux i in
          if i = s || c <> Array.unsafe_get aux (!w - 1) then begin
            Array.unsafe_set aux !w c;
            incr w;
            let v = c land mask in
            Array.unsafe_set mh v (Array.unsafe_get mh v + 1)
          end
        done;
        uniq.(u) <- !w - s
      done);
  (* 5. degrees = minor-side + major-side counts; prefix-sum into offsets;
     rewrite mhist in place into pass-A cursors: range r's first write
     slot for smaller-endpoint entries of block v *)
  let minor_total = Array.make scratch 0 in
  for v = 0 to n - 1 do
    let s = ref 0 in
    for r = 0 to nranges - 1 do
      s := !s + mhist.(r).(v)
    done;
    minor_total.(v) <- !s
  done;
  let offsets : Bigvec.t = Bigvec.create_uninit (n + 1) in
  Bigarray.Array1.unsafe_set offsets 0 0;
  let maxdeg = ref 0 in
  let orun = ref 0 in
  for v = 0 to n - 1 do
    let d = minor_total.(v) + uniq.(v) in
    if d > !maxdeg then maxdeg := d;
    orun := !orun + d;
    Bigarray.Array1.unsafe_set offsets (v + 1) !orun
  done;
  for v = 0 to n - 1 do
    let run = ref (Bigarray.Array1.unsafe_get offsets v) in
    for r = 0 to nranges - 1 do
      let c = mhist.(r).(v) in
      mhist.(r).(v) <- !run;
      run := !run + c
    done
  done;
  (* 6. fill: for each unique code (u, v) in global sorted order within a
     range, write u into v's block (pass A, at the per-range cursor) and v
     into u's block (pass B, after u's smaller neighbors).  Same visit
     order as the sequential two-pass fill, so every block is born
     sorted. *)
  let adj : Bigvec.t = Bigvec.create_uninit !orun in
  Pool.parallel_for_ranges pool ~chunks:nranges ~n (fun ~chunk ~lo ~hi ->
      let acur = mhist.(chunk) in
      for u = lo to hi - 1 do
        let s = block_start.(u) in
        let b = ref (Bigarray.Array1.unsafe_get offsets u + minor_total.(u)) in
        for i = s to s + uniq.(u) - 1 do
          let c = Array.unsafe_get aux i in
          let v = c land mask in
          Bigarray.Array1.unsafe_set adj (Array.unsafe_get acur v) u;
          Array.unsafe_set acur v (Array.unsafe_get acur v + 1);
          Bigarray.Array1.unsafe_set adj !b v;
          incr b
        done
      done);
  { n; offsets; adj; maxdeg = !maxdeg; probe_count = Atomic.make 0 }
[@@domain_safe
  "phases write disjoint index windows: each chunk owns hist.(k)/lens.(k), \
   each range owns its major slots and per-range minor cursor windows (see \
   the Races note above)"]

(* ------------------------------------------------------------------ *)
(* Reference (seed) list-based builder                                *)
(* ------------------------------------------------------------------ *)

let build_reference n edges =
  (* [edges] arrives deduplicated and normalised (u < v).  This is the
     seed's heap-array builder, kept verbatim; the single final
     [Bigvec.of_array] per lane moves the result off-heap without touching
     the construction logic it baselines. *)
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  let maxdeg = ref 0 in
  for v = 0 to n - 1 do
    if deg.(v) > !maxdeg then maxdeg := deg.(v);
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  for v = 0 to n - 1 do
    let lo = offsets.(v) and hi = offsets.(v + 1) in
    let block = Array.sub adj lo (hi - lo) in
    Array.sort compare block;
    Array.blit block 0 adj lo (hi - lo)
  done;
  {
    n;
    offsets = Bigvec.of_array offsets;
    adj = Bigvec.of_array adj;
    maxdeg = !maxdeg;
    probe_count = Atomic.make 0;
  }
(* the polymorphic compare IS the point: this is the seed builder, kept
   verbatim as the differential-testing baseline for the packed pipeline *)
[@@lint.allow "MSP002"]

let check_endpoints ~n (u, v) =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Graph.of_edges: endpoint out of range"

let of_edges_reference ~n:nv edges =
  if nv < 0 then invalid_arg "Graph.of_edges: negative n";
  List.iter (check_endpoints ~n:nv) edges;
  let cleaned =
    List.filter_map
      (fun (u, v) -> if u = v then None else Some (normalize (u, v)))
      edges
  in
  let sorted = List.sort_uniq compare cleaned in
  build_reference nv sorted
[@@lint.allow "MSP002"]

(* ------------------------------------------------------------------ *)
(* Constructors                                                       *)
(* ------------------------------------------------------------------ *)

let of_edges_iter ~n iter =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  match pack_shift ~n with
  | Some shift ->
      let buf = Edgebuf.create () in
      iter (fun u v ->
          check_endpoints ~n (u, v);
          Edgebuf.push buf ((u lsl shift) lor v));
      build_packed ~n ~shift (Edgebuf.data buf) (Edgebuf.length buf)
  | None ->
      (* overflow guard tripped: boxed-list fallback *)
      let acc = ref [] in
      iter (fun u v -> acc := (u, v) :: !acc);
      of_edges_reference ~n !acc

let of_edges ~n edges =
  of_edges_iter ~n (fun push -> List.iter (fun (u, v) -> push u v) edges)

let of_edge_array ~n edges =
  of_edges_iter ~n (fun push -> Array.iter (fun (u, v) -> push u v) edges)

let of_packed ~n ?len codes =
  if n < 0 then invalid_arg "Graph.of_packed: negative n";
  let len = match len with Some l -> l | None -> Array.length codes in
  if len < 0 || len > Array.length codes then
    invalid_arg "Graph.of_packed: bad length";
  match pack_shift ~n with
  | None ->
      invalid_arg "Graph.of_packed: n exceeds the packable range (use of_edges)"
  | Some shift ->
      let mask = (1 lsl shift) - 1 in
      for i = 0 to len - 1 do
        let c = codes.(i) in
        if c < 0 || c lsr shift >= n || c land mask >= n then
          invalid_arg "Graph.of_packed: code out of range"
      done;
      build_packed ~n ~shift codes len

let of_edgebuf ~n buf = of_packed ~n ~len:(Edgebuf.length buf) (Edgebuf.data buf)

let of_packed_par ~pool ~n ?len codes =
  if n < 0 then invalid_arg "Graph.of_packed_par: negative n";
  let len = match len with Some l -> l | None -> Array.length codes in
  if len < 0 || len > Array.length codes then
    invalid_arg "Graph.of_packed_par: bad length";
  match pack_shift ~n with
  | None ->
      invalid_arg
        "Graph.of_packed_par: n exceeds the packable range (use of_edges)"
  | Some shift ->
      let p = Pool.size pool in
      let chunks =
        Array.init p (fun k ->
            let lo, hi = Pool.chunk_bounds ~chunks:p ~n:len k in
            (codes, lo, hi - lo))
      in
      build_packed_par ~pool ~n ~shift chunks

let of_edgebufs_par ~pool ~n bufs =
  if n < 0 then invalid_arg "Graph.of_edgebufs_par: negative n";
  match pack_shift ~n with
  | None ->
      invalid_arg
        "Graph.of_edgebufs_par: n exceeds the packable range (use of_edges)"
  | Some shift ->
      build_packed_par ~pool ~n ~shift
        (Array.map (fun b -> (Edgebuf.data b, 0, Edgebuf.length b)) bufs)

(* ------------------------------------------------------------------ *)
(* Raw CSR lanes (the .msgr mmap path)                                *)
(* ------------------------------------------------------------------ *)

(* Validates everything that keeps later unsafe adjacency indexing inside
   the lane extents, in O(n), WITHOUT reading the adjacency lane: offset
   monotonicity pins every block to [0, |adj|), so a graph whose lanes
   come from an untrusted (possibly truncated or bit-flipped) mapping can
   never index past the mapped region.  Damaged adjacency *values* are
   still possible — they surface as wrong neighbors / failed [audit], not
   as wild reads, and [Graph_io.load_mmap ~verify:true] pins them down
   with the content checksum. *)
let of_csr ~n ~offsets ~adj ~maxdeg =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if n < 0 then err "negative vertex count %d" n
  else if Bigvec.length offsets <> n + 1 then
    err "offsets lane has %d entries, expected n+1 = %d" (Bigvec.length offsets)
      (n + 1)
  else if og offsets 0 <> 0 then err "offsets.(0) = %d, expected 0" (og offsets 0)
  else begin
    let bad = ref (-1) in
    let md = ref 0 in
    (let v = ref 0 in
     while !bad < 0 && !v < n do
       let d = og offsets (!v + 1) - og offsets !v in
       if d < 0 then bad := !v else if d > !md then md := d;
       incr v
     done);
    if !bad >= 0 then err "offsets not monotone at vertex %d" !bad
    else if og offsets n <> Bigvec.length adj then
      err "offsets.(n) = %d, expected |adj| = %d" (og offsets n)
        (Bigvec.length adj)
    else if !md <> maxdeg then
      err "declared max degree %d, offsets imply %d" maxdeg !md
    else Ok { n; offsets; adj; maxdeg; probe_count = Atomic.make 0 }
  end

let csr_lanes t = (t.offsets, t.adj)

let materialize t =
  {
    n = t.n;
    offsets = Bigvec.copy t.offsets;
    adj = Bigvec.copy t.adj;
    maxdeg = t.maxdeg;
    probe_count = Atomic.make 0;
  }

(* ------------------------------------------------------------------ *)
(* Probe-counted access                                               *)
(* ------------------------------------------------------------------ *)

let add_probes t k = ignore (Atomic.fetch_and_add t.probe_count k)

let neighbor t v i =
  if i < 0 || i >= degree t v then invalid_arg "Graph.neighbor: index out of range";
  add_probes t 1;
  au t.adj (og t.offsets v + i)

let neighbor_uncounted t v i =
  if i < 0 || i >= degree t v then invalid_arg "Graph.neighbor: index out of range";
  au t.adj (og t.offsets v + i)

(* Partition (a slice of) the vertex range into maximal contiguous runs
   whose adjacency occupies at most [extent] CSR words.  Offsets make each
   candidate extent an O(1) subtraction, so the scan is O(blocks + range).
   A vertex whose own list exceeds [extent] forms a singleton block —
   progress is unconditional. *)
let iter_vertex_blocks t ?(lo = 0) ?hi ~extent f =
  let hi = match hi with Some h -> h | None -> t.n in
  if lo < 0 || hi > t.n || lo > hi then
    invalid_arg "Graph.iter_vertex_blocks: bad range";
  if extent < 1 then invalid_arg "Graph.iter_vertex_blocks: extent must be >= 1";
  let b = ref lo in
  while !b < hi do
    let base = og t.offsets !b in
    let e = ref (!b + 1) in
    while !e < hi && og t.offsets (!e + 1) - base <= extent do
      incr e
    done;
    f !b !e;
    b := !e
  done

let iter_neighbors_uncounted t v f =
  let lo = og t.offsets v and hi = og t.offsets (v + 1) in
  for i = lo to hi - 1 do
    f (au t.adj i)
  done

let append_neighbors_uncounted t v ~base buf =
  let lo = og t.offsets v and hi = og t.offsets (v + 1) in
  for i = lo to hi - 1 do
    Edgebuf.push_unchecked buf (base lor au t.adj i)
  done
[@@hot]

(* The oracle-surface gather: v's whole (sorted) adjacency block into a
   caller-owned landing array, no closure per neighbor.  Uncounted — the
   LCA read path replays a vertex with one batched [add_probes] charge,
   and msparlint's MSP014 proves every call site is dominated by one. *)
let neighbors_into_uncounted t v ~out =
  let lo = og t.offsets v and hi = og t.offsets (v + 1) in
  let d = hi - lo in
  if Array.length out < d then
    invalid_arg "Graph.neighbors_into_uncounted: out shorter than degree";
  for i = 0 to d - 1 do
    Array.unsafe_set out i (au t.adj (lo + i))
  done;
  d
[@@hot]

let iter_neighbors t v f =
  let lo = og t.offsets v and hi = og t.offsets (v + 1) in
  add_probes t (hi - lo);
  for i = lo to hi - 1 do
    f (au t.adj i)
  done

let fold_neighbors t v ~init ~f =
  let acc = ref init in
  iter_neighbors t v (fun u -> acc := f !acc u);
  !acc

let has_edge t u v =
  if u = v then false
  else begin
    (* search for v in the (sorted) smaller adjacency block *)
    let u, v = if degree t u <= degree t v then (u, v) else (v, u) in
    let lo = ref (og t.offsets u) and hi = ref (og t.offsets (u + 1) - 1) in
    let found = ref false in
    let reads = ref 0 in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      incr reads;
      let w = au t.adj mid in
      if w = v then found := true
      else if w < v then lo := mid + 1
      else hi := mid - 1
    done;
    add_probes t !reads;
    !found
  end

let iter_edges t f =
  for v = 0 to t.n - 1 do
    for i = og t.offsets v to og t.offsets (v + 1) - 1 do
      let u = au t.adj i in
      if v < u then f v u
    done
  done

let edges t =
  (* iter_edges emits (v, u) with v < u, v ascending and u ascending within
     each block — already the normalised sorted order, no sort needed *)
  let out = Array.make (m t) (0, 0) in
  let k = ref 0 in
  iter_edges t (fun u v ->
      out.(!k) <- (u, v);
      incr k);
  out

let probes t = Atomic.get t.probe_count
let reset_probes t = Atomic.set t.probe_count 0

let induced t vs =
  let distinct = Array.of_list (List.sort_uniq Int.compare (Array.to_list vs)) in
  let old_to_new = Hashtbl.create (Array.length distinct) in
  Array.iteri (fun i v -> Hashtbl.replace old_to_new v i) distinct;
  let sub =
    of_edges_iter ~n:(Array.length distinct) (fun push ->
        Array.iteri
          (fun i v ->
            for k = og t.offsets v to og t.offsets (v + 1) - 1 do
              let u = au t.adj k in
              match Hashtbl.find_opt old_to_new u with
              | Some j when i < j -> push i j
              | Some _ | None -> ()
            done)
          distinct)
  in
  (sub, distinct)

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: vertex counts differ";
  of_edges_iter ~n:a.n (fun push ->
      iter_edges a push;
      iter_edges b push)

let is_subgraph ~sub ~super =
  sub.n = super.n
  &&
  let ok = ref true in
  iter_edges sub (fun u v -> if not (has_edge super u v) then ok := false);
  !ok

let complement_degree_sum t = Bigvec.length t.adj

(* ------------------------------------------------------------------ *)
(* Integrity audit                                                    *)
(* ------------------------------------------------------------------ *)

(* Uncounted binary search — the audit is metadata verification, not an
   algorithmic probe of the input. *)
let mem_block t v x =
  let lo = ref (og t.offsets v) and hi = ref (og t.offsets (v + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = au t.adj mid in
    if w = x then found := true else if w < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

let audit t =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if Bigvec.length t.offsets <> t.n + 1 then
    fail "offsets length %d, expected n+1 = %d" (Bigvec.length t.offsets)
      (t.n + 1)
  else begin
    if og t.offsets 0 <> 0 then fail "offsets.(0) = %d, expected 0" (og t.offsets 0);
    for v = 0 to t.n - 1 do
      if og t.offsets (v + 1) < og t.offsets v then
        fail "offsets not monotone at vertex %d (%d > %d)" v (og t.offsets v)
          (og t.offsets (v + 1))
    done;
    if og t.offsets t.n <> Bigvec.length t.adj then
      fail "offsets.(n) = %d, expected |adj| = %d (degree sum 2m)"
        (og t.offsets t.n) (Bigvec.length t.adj);
    if List.is_empty !failures then begin
      (* blocks: in-range, no self-loops, strictly sorted (no duplicates) *)
      for v = 0 to t.n - 1 do
        for i = og t.offsets v to og t.offsets (v + 1) - 1 do
          let u = au t.adj i in
          if u < 0 || u >= t.n then fail "vertex %d: neighbor %d out of range" v u
          else if u = v then fail "vertex %d: self-loop" v;
          if i > og t.offsets v && au t.adj (i - 1) >= u then
            fail "vertex %d: block not strictly sorted at slot %d" v
              (i - og t.offsets v)
        done
      done;
      (* symmetry: (v, u) present iff (u, v) present *)
      for v = 0 to t.n - 1 do
        for i = og t.offsets v to og t.offsets (v + 1) - 1 do
          let u = au t.adj i in
          if u >= 0 && u < t.n && u <> v && not (mem_block t u v) then
            fail "asymmetric edge: %d in block of %d but not vice versa" u v
        done
      done;
      (* cached max degree *)
      let md = ref 0 in
      for v = 0 to t.n - 1 do
        md := Int.max !md (og t.offsets (v + 1) - og t.offsets v)
      done;
      if !md <> t.maxdeg then
        fail "cached max_degree %d, recomputed %d" t.maxdeg !md
    end
  end;
  List.rev !failures

(* FNV-1a over the structural content (n, offsets, adj).  Probe counters
   are deliberately excluded: two graphs with the same edge set checksum
   identically regardless of read history.  The lane values are the same
   ints the heap representation stored, so checksums are unchanged by the
   off-heap move. *)
let checksum t =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    let x = ref !h in
    let v = ref (Int64.of_int v) in
    for _ = 0 to 7 do
      x := Int64.mul (Int64.logxor !x (Int64.logand !v 0xffL)) 0x100000001b3L;
      v := Int64.shift_right_logical !v 8
    done;
    h := !x
  in
  mix t.n;
  for i = 0 to Bigvec.length t.offsets - 1 do
    mix (au t.offsets i)
  done;
  for i = 0 to Bigvec.length t.adj - 1 do
    mix (au t.adj i)
  done;
  !h

let pp ppf t = Format.fprintf ppf "graph(n=%d, m=%d)" t.n (m t)

let equal a b =
  (* blocks are sorted, so equal edge sets have identical CSR lanes *)
  a.n = b.n && Bigvec.equal a.offsets b.offsets && Bigvec.equal a.adj b.adj
