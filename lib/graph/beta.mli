(** Neighborhood independence number β(G).

    β(G) is the size of the largest independent set contained in the
    neighborhood N(v) of any single vertex v.  Graphs with β(G) ≤ β are
    exactly the (β+1)-claw-free graphs (no induced K_{1,β+1}).

    Computing β exactly requires a maximum-independent-set computation
    inside each neighborhood; this is NP-hard in general but fast in
    practice for the neighborhood sizes in our experiments, via
    branch-and-bound with a work budget. *)

open Mspar_prelude

type result =
  | Exact of int  (** β computed exactly. *)
  | Lower_bound of int
      (** The branch-and-bound budget was exhausted; the value is the best
          independent set found, hence a lower bound on β. *)

val value : result -> int
val is_exact : result -> bool

val compute : ?budget:int -> Graph.t -> result
(** [compute ?budget g] is β(g).  [budget] caps the total number of
    branch-and-bound nodes explored across all neighborhoods (default
    [10_000_000]); when exhausted the result degrades to a lower bound. *)

val neighborhood_mis : ?budget:int -> Graph.t -> int -> result
(** Independence number of the subgraph induced by N(v) (v excluded). *)

val sampled_lower : Rng.t -> ?samples:int -> ?budget:int -> Graph.t -> int
(** Lower-bound estimate for graphs too large for {!compute}: exact
    neighborhood independence of [samples] uniformly random vertices
    (default 32), each under the branch-and-bound [budget].  Since β is a
    maximum over vertices, any sample yields a valid lower bound; high-β
    witnesses concentrated on few vertices can be missed. *)

val greedy_lower : Rng.t -> ?tries:int -> Graph.t -> int
(** Randomized greedy lower bound on β: for each vertex, grow an independent
    set in its neighborhood greedily under random orders. Cheap and useful
    on graphs too large for {!compute}. *)

val check_claw_free : Graph.t -> beta:int -> (int * int array) option
(** [check_claw_free g ~beta] is [None] if no induced K_{1,beta+1} exists
    (so β(g) ≤ beta), or [Some (center, leaves)] exhibiting a violating
    claw.  Exhaustive; cost grows as deg^ (beta+1), intended for tests. *)
