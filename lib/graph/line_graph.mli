(** Line graphs — the canonical β ≤ 2 family.

    The line graph L(G) has one vertex per edge of G, two of them adjacent
    iff the edges share an endpoint.  A matching in L(G) is a set of
    edge-disjoint paths of length 2 in G; the neighborhood independence
    number of any line graph is at most 2 (an independent set in the
    neighborhood of edge (u,v) consists of edges meeting only u and edges
    meeting only v — at most one of each can be pairwise non-adjacent...
    more precisely, among edges incident on u any two are adjacent, and
    likewise for v). *)

open Mspar_prelude

val of_graph : Graph.t -> Graph.t * (int * int) array
(** [of_graph g] is the line graph of [g] plus the array mapping each line
    vertex back to the edge of [g] it represents. *)

val random_base : Rng.t -> base_n:int -> p:float -> Graph.t
(** Line graph of a random G(base_n, p) base graph — a convenient dense
    family with β ≤ 2. *)
