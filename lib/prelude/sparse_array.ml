type 'a t = {
  default : 'a;
  values : 'a array;
  (* back.(i) is the stack slot claiming that index i is live. *)
  back : int array;
  (* stack.(0 .. top-1) are the indices written since the last reset. *)
  stack : int array;
  mutable top : int;
}

let create n ~default =
  if n < 0 then invalid_arg "Sparse_array.create: negative length";
  {
    default;
    values = Array.make n default;
    back = Array.make n 0;
    stack = Array.make n 0;
    top = 0;
  }

let length t = Array.length t.values

let is_set t i =
  let b = t.back.(i) in
  b < t.top && t.stack.(b) = i

let get t i = if is_set t i then t.values.(i) else t.default

let set t i v =
  if not (is_set t i) then begin
    t.back.(i) <- t.top;
    t.stack.(t.top) <- i;
    t.top <- t.top + 1
  end;
  t.values.(i) <- v

let reset t = t.top <- 0
let live_count t = t.top
