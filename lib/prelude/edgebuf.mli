(** Growable flat buffer of unboxed ints — the carrier for packed edges.

    {!Vec} is polymorphic, so an [(int * int) Vec.t] boxes every edge and
    drags the GC through the sparsifier hot path.  [Edgebuf] is the
    monomorphic alternative: one [int array], doubled on demand, never
    scanned by the minor collector.  Producers push packed edge codes
    ([Graph.pack]-style [u·2^s lor v]) and hand the raw storage to the CSR
    builder without copying. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** Fresh buffer; capacity defaults to 16 and grows by doubling. *)

val length : t -> int
val is_empty : t -> bool

val capacity : t -> int
(** Current storage size; [length t <= capacity t]. *)

val push : t -> int -> unit
(** Amortised O(1) append. *)

val push_unchecked : t -> int -> unit
(** {!push} without the growth check.  Precondition ({e unchecked}):
    [length t < capacity t].  Callers reserve room with {!ensure_capacity}
    once per block of pushes, then append with no branch per element —
    the marking hot path's contract.  Violating the precondition writes
    out of bounds. *)

val get : t -> int -> int
(** @raise Invalid_argument on out-of-bounds access. *)

val clear : t -> unit
(** Forget contents, keep storage (O(1) — ints need no GC scrubbing). *)

val ensure_capacity : t -> int -> unit
(** Pre-size the storage so the next [ensure_capacity n] pushes up to [n]
    total elements without reallocating. *)

val data : t -> int array
(** The underlying storage, {e shared, not copied}; only the first
    [length t] entries are meaningful.  Invalidated by the next growing
    {!push}/{!ensure_capacity}/{!append}. *)

val to_array : t -> int array
(** Copy of the first [length t] entries. *)

val blit_into : t -> int array -> int -> unit
(** [blit_into t dst pos] copies the contents into [dst] starting at
    [pos]; used to concatenate per-domain buffers into one flat array.
    @raise Invalid_argument if the destination range is out of bounds. *)

val append : into:t -> t -> unit
(** [append ~into t] pushes all of [t]'s contents onto [into]. *)

val iter : (int -> unit) -> t -> unit
val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a
