(* Hand-rolled binary codec for the durability layer.

   MSP005 bans [Marshal], so every byte that reaches disk is written and
   parsed explicitly here: LEB128 varints for the op payloads (edge
   endpoints are small, so one or two bytes each), zigzag for the few
   signed fields (mate arrays store -1), fixed little-endian 8-byte lanes
   for RNG state and nanosecond counters, and IEEE bit patterns for the
   two float parameters.  The reader is position-tracked and total: any
   read past the end raises the single exception [Truncated], which the
   journal and snapshot loaders turn into "torn tail" / "corrupt blob"
   verdicts instead of crashes. *)

exception Truncated

(* ------------------------------------------------------------------ *)
(* writers                                                            *)
(* ------------------------------------------------------------------ *)

(* the int treated as an unsigned word: [lsr] keeps the loop terminating
   even when the top (sign) bit is set, as it is for zigzagged min_int *)
let add_uvarint_word buf n =
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let add_uvarint buf n =
  if n < 0 then invalid_arg "Codec.add_uvarint: negative";
  add_uvarint_word buf n

(* zigzag: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... *)
let add_int buf n =
  add_uvarint_word buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let add_int64 buf x =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff))
  done

let add_float buf f = add_int64 buf (Int64.bits_of_float f)

let add_string buf s =
  add_uvarint buf (String.length s);
  Buffer.add_string buf s

(* ------------------------------------------------------------------ *)
(* reader                                                             *)
(* ------------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len src =
  let limit =
    match len with None -> String.length src | Some l -> Int.min (pos + l) (String.length src)
  in
  if pos < 0 || pos > String.length src then invalid_arg "Codec.reader: bad pos";
  { src; pos; limit }

let pos r = r.pos
let at_end r = r.pos >= r.limit

let read_byte r =
  if r.pos >= r.limit then raise Truncated;
  let c = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  c

let read_uvarint r =
  let rec go shift acc =
    if shift > Sys.int_size - 2 then raise Truncated;
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_int r =
  let z = read_uvarint r in
  (z lsr 1) lxor (-(z land 1))

let read_int64 r =
  let x = ref 0L in
  for i = 0 to 7 do
    x := Int64.logor !x (Int64.shift_left (Int64.of_int (read_byte r)) (8 * i))
  done;
  !x

let read_float r = Int64.float_of_bits (read_int64 r)

let read_string r =
  let len = read_uvarint r in
  if len > r.limit - r.pos then raise Truncated;
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)                     *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with None -> String.length s - pos | Some l -> l in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.crc32: range out of bounds";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (String.unsafe_get s i)))) 0xFFl)
    in
    c := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl
