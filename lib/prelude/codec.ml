(* Hand-rolled binary codec for the durability layer.

   MSP005 bans [Marshal], so every byte that reaches disk is written and
   parsed explicitly here: LEB128 varints for the op payloads (edge
   endpoints are small, so one or two bytes each), zigzag for the few
   signed fields (mate arrays store -1), fixed little-endian 8-byte lanes
   for RNG state and nanosecond counters, and IEEE bit patterns for the
   two float parameters.  The reader is position-tracked and total: any
   read past the end raises the single exception [Truncated], which the
   journal and snapshot loaders turn into "torn tail" / "corrupt blob"
   verdicts instead of crashes. *)

exception Truncated

(* ------------------------------------------------------------------ *)
(* writers                                                            *)
(* ------------------------------------------------------------------ *)

(* the int treated as an unsigned word: [lsr] keeps the loop terminating
   even when the top (sign) bit is set, as it is for zigzagged min_int *)
let add_uvarint_word buf n =
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n
[@@hot]

let add_uvarint buf n =
  if n < 0 then invalid_arg "Codec.add_uvarint: negative";
  add_uvarint_word buf n
[@@hot]

(* zigzag: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... *)
let add_int buf n =
  add_uvarint_word buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))
[@@hot]

let add_int64 buf x =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff))
  done
[@@hot]

let add_float buf f = add_int64 buf (Int64.bits_of_float f)

let add_string buf s =
  add_uvarint buf (String.length s);
  Buffer.add_string buf s
[@@hot]

(* ------------------------------------------------------------------ *)
(* reader                                                             *)
(* ------------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len src =
  let limit =
    match len with None -> String.length src | Some l -> Int.min (pos + l) (String.length src)
  in
  if pos < 0 || pos > String.length src then invalid_arg "Codec.reader: bad pos";
  { src; pos; limit }

let pos r = r.pos
let at_end r = r.pos >= r.limit

let read_byte r =
  if r.pos >= r.limit then raise Truncated;
  let c = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  c
[@@hot]

let read_uvarint r =
  let rec go shift acc =
    if shift > Sys.int_size - 2 then raise Truncated;
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0
[@@hot]

let read_int r =
  let z = read_uvarint r in
  (z lsr 1) lxor (-(z land 1))
[@@hot]

let read_int64 r =
  let x = ref 0L in
  for i = 0 to 7 do
    x := Int64.logor !x (Int64.shift_left (Int64.of_int (read_byte r)) (8 * i))
  done;
  !x
[@@hot]

let read_float r = Int64.float_of_bits (read_int64 r)

let read_string r =
  let len = read_uvarint r in
  if len > r.limit - r.pos then raise Truncated;
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)                     *)
(* ------------------------------------------------------------------ *)

(* placed above Frames so the frame codec can use it *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with None -> String.length s - pos | Some l -> l in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.crc32: range out of bounds";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (String.unsafe_get s i)))) 0xFFl)
    in
    c := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl
[@@hot]

(* twin over [bytes] so writers staging output in a reusable scratch
   buffer (Conn) can checksum without a [Bytes.to_string] copy *)
let crc32_bytes ?(pos = 0) ?len b =
  let len = match len with None -> Bytes.length b - pos | Some l -> l in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Codec.crc32_bytes: range out of bounds";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.unsafe_get b i)))) 0xFFl)
    in
    c := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl
[@@hot]

(* ------------------------------------------------------------------ *)
(* Frames: the shared frame discipline, incrementally decodable        *)
(* ------------------------------------------------------------------ *)

(* One frame is

     <uvarint body-len> <body> <crc32-le of body>

   — exactly the journal's record framing, reused verbatim on the
   `mspar serve` wire so a torn or bit-flipped frame is detected the
   same way in both places.  The incremental reader accepts arbitrary
   partial-read chunks (a socket delivers bytes, not frames) and is
   total: any input either yields frames, asks for more bytes, or lands
   in a sticky [`Corrupt] state — it never raises and never hangs on a
   finite input.  Corruption is unrecoverable by design (no resync):
   after a bad frame the connection/file is dropped, mirroring the
   journal's stop-at-first-bad-frame rule. *)

module Frames = struct
  type tail = Clean | Short | Bad of string

  type t = {
    max_frame : int;
    mutable data : string;  (* unconsumed bytes are data.[start ..] *)
    mutable start : int;
    mutable bad : string option;  (* sticky corruption verdict *)
  }

  let default_max_frame = 1 lsl 20

  let create ?(max_frame = default_max_frame) () =
    if max_frame < 1 then invalid_arg "Codec.Frames.create: max_frame >= 1";
    { max_frame; data = ""; start = 0; bad = None }

  let buffered t = String.length t.data - t.start

  let feed t ?(pos = 0) ?len chunk =
    let len =
      match len with None -> String.length chunk - pos | Some l -> l
    in
    if pos < 0 || len < 0 || pos + len > String.length chunk then
      invalid_arg "Codec.Frames.feed: range out of bounds";
    match t.bad with
    | Some _ -> ()  (* corrupt readers ignore further input *)
    | None ->
        let keep = buffered t in
        let b = Bytes.create (keep + len) in
        Bytes.blit_string t.data t.start b 0 keep;
        Bytes.blit_string chunk pos b keep len;
        t.data <- Bytes.unsafe_to_string b;
        t.start <- 0
  [@@hot]

  let corrupt t msg =
    t.bad <- Some msg;
    t.data <- "";
    t.start <- 0;
    `Corrupt msg

  (* A frame length is a uvarint; 9 continuation bytes already overflow
     the 62-bit value range, so a length field that is still incomplete
     after 9 bytes can never become valid. *)
  let max_len_bytes = 9

  let read_crc_le r =
    let x = ref 0l in
    for i = 0 to 3 do
      x :=
        Int32.logor !x (Int32.shift_left (Int32.of_int (read_byte r)) (8 * i))
    done;
    !x

  let next t =
    match t.bad with
    | Some msg -> `Corrupt msg
    | None ->
        if buffered t = 0 then `Need_more
        else begin
          let total = String.length t.data in
          let r = reader ~pos:t.start t.data in
          match read_uvarint r with
          | exception Truncated ->
              if pos r - t.start >= max_len_bytes then
                corrupt t "over-long frame length"
              else `Need_more
          | body_len ->
              if body_len > t.max_frame then
                corrupt t
                  (Printf.sprintf "oversized frame (%d > max %d)" body_len
                     t.max_frame)
              else begin
                let body_start = pos r in
                if total - body_start < body_len + 4 then `Need_more
                else begin
                  let body = String.sub t.data body_start body_len in
                  let trailer = reader ~pos:(body_start + body_len) t.data in
                  let stored = read_crc_le trailer in
                  if not (Int32.equal stored (crc32 body)) then
                    corrupt t "frame crc mismatch"
                  else begin
                    t.start <- body_start + body_len + 4;
                    if t.start = total then begin
                      (* cheap compaction at a frame boundary *)
                      t.data <- "";
                      t.start <- 0
                    end;
                    `Frame body
                  end
                end
              end
        end

  let add_crc_le buf crc =
    for i = 0 to 3 do
      Buffer.add_char buf
        (Char.chr
           (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff))
    done
  [@@hot]

  let encode buf body =
    add_uvarint buf (String.length body);
    Buffer.add_string buf body;
    add_crc_le buf (crc32 body)
  [@@hot]

  (* [encode] for a body staged in a [bytes] scratch region — no
     intermediate string is built; the body is appended and checksummed
     in place *)
  let encode_bytes buf b ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length b then
      invalid_arg "Codec.Frames.encode_bytes: range out of bounds";
    add_uvarint buf len;
    Buffer.add_subbytes buf b pos len;
    add_crc_le buf (crc32_bytes ~pos ~len b)
  [@@hot]

  (* Reference whole-buffer decoder, written independently of the
     incremental reader so the QCheck chunk-boundary property compares
     two implementations rather than one against itself. *)
  let decode_all ?(max_frame = default_max_frame) s =
    let total = String.length s in
    let frames = ref [] in
    let off = ref 0 in
    let tail = ref Clean in
    (try
       while !off < total do
         let r = reader ~pos:!off s in
         let body_len =
           match read_uvarint r with
           | n -> n
           | exception Truncated ->
               if pos r - !off >= max_len_bytes then
                 tail := Bad "over-long frame length"
               else tail := Short;
               raise Exit
         in
         if body_len > max_frame then begin
           tail :=
             Bad
               (Printf.sprintf "oversized frame (%d > max %d)" body_len
                  max_frame);
           raise Exit
         end;
         let body_start = pos r in
         if total - body_start < body_len + 4 then begin
           tail := Short;
           raise Exit
         end;
         let body = String.sub s body_start body_len in
         let trailer = reader ~pos:(body_start + body_len) s in
         if not (Int32.equal (read_crc_le trailer) (crc32 body)) then begin
           tail := Bad "frame crc mismatch";
           raise Exit
         end;
         frames := body :: !frames;
         off := body_start + body_len + 4
       done
     with Exit -> ());
    (List.rev !frames, !tail)
end
