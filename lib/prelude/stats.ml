let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(Int.max 0 (Int.min (n - 1) (rank - 1)))

let median xs = percentile xs 50.0
let of_ints a = Array.map float_of_int a

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  median : float;
  max : float;
}

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty";
  let lo, hi = min_max xs in
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = lo;
    median = median xs;
    max = hi;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.median s.max
