type row = Cells of string list | Rule

type t = { title : string; columns : string list; mutable rows : row list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let is_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'x' || c = '%')
       s

let print ?(oc = stdout) t =
  let rows = List.rev t.rows in
  let ncols = List.length t.columns in
  let widths = Array.of_list (List.map String.length t.columns) in
  List.iter
    (function
      | Rule -> ()
      | Cells cells ->
          List.iteri (fun i c -> widths.(i) <- Int.max widths.(i) (String.length c)) cells)
    rows;
  let pad i s =
    let w = widths.(i) in
    let padding = String.make (w - String.length s) ' ' in
    if is_numeric s then padding ^ s else s ^ padding
  in
  let total = Array.fold_left ( + ) 0 widths + (3 * (ncols - 1)) in
  let line = String.make total '-' in
  Printf.fprintf oc "\n== %s ==\n" t.title;
  Printf.fprintf oc "%s\n" (String.concat " | " (List.mapi pad t.columns));
  Printf.fprintf oc "%s\n" line;
  List.iter
    (function
      | Rule -> Printf.fprintf oc "%s\n" line
      | Cells cells ->
          Printf.fprintf oc "%s\n" (String.concat " | " (List.mapi pad cells)))
    rows;
  flush oc

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  row t.columns;
  List.iter (function Rule -> () | Cells cells -> row cells) (List.rev t.rows);
  Buffer.contents buf

let title t = t.title

let cell_f x =
  if Float.is_integer x && Float.abs x < 1e9 then
    Printf.sprintf "%d" (int_of_float x)
  else if Float.abs x >= 0.01 && Float.abs x < 1e6 then Printf.sprintf "%.3f" x
  else Printf.sprintf "%.3g" x

let cell_i = string_of_int
let cell_b b = if b then "yes" else "no"
