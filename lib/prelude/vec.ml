type 'a t = { dummy : 'a; mutable data : 'a array; mutable len : int }

let create ?(initial_capacity = 8) ~dummy () =
  let cap = Int.max initial_capacity 1 in
  { dummy; data = Array.make cap dummy; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  let v = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  v

let clear t =
  (* Overwrite with the dummy so stale boxed values can be collected. *)
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let of_array ~dummy a =
  let t = create ~initial_capacity:(Int.max 1 (Array.length a)) ~dummy () in
  Array.iter (push t) a;
  t
