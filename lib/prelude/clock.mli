(** Wall-clock timing for the experiment harness. *)

val now_ns : unit -> int64
(** Current wall-clock time in nanoseconds (gettimeofday-based; adequate for
    the millisecond-scale measurements in the harness — bechamel is used for
    micro-benchmarks). *)

val time_ns : (unit -> 'a) -> 'a * int64
(** [time_ns f] runs [f] and returns its result with the elapsed
    nanoseconds. *)

val ns_to_ms : int64 -> float
