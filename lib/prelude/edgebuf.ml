type t = { mutable data : int array; mutable len : int }

let create ?(initial_capacity = 16) () =
  { data = Array.make (Int.max initial_capacity 1) 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.data

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Edgebuf: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let ensure_capacity t cap =
  let old = Array.length t.data in
  if cap > old then begin
    let data = Array.make (Int.max cap (2 * old)) 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t v =
  if t.len = Array.length t.data then ensure_capacity t (t.len + 1);
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

(* precondition (unchecked): len < capacity — callers reserve with
   [ensure_capacity] once per block *)
let push_unchecked t v =
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

let clear t = t.len <- 0
let data t = t.data
let to_array t = Array.sub t.data 0 t.len

let blit_into t dst pos =
  if pos < 0 || pos + t.len > Array.length dst then
    invalid_arg "Edgebuf.blit_into: destination range out of bounds";
  Array.blit t.data 0 dst pos t.len

let append ~into t =
  ensure_capacity into (into.len + t.len);
  Array.blit t.data 0 into.data into.len t.len;
  into.len <- into.len + t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc
