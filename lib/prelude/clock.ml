let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let time_ns f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (r, Int64.sub t1 t0)

let ns_to_ms ns = Int64.to_float ns /. 1e6
