(** Append-only write-ahead log + atomic snapshot blobs for the dynamic
    pipeline.

    This module is the single blessed home of raw file I/O in [lib/]
    (lint rule MSP009); everything durability-related — framing, CRCs,
    fsync policy, torn-tail truncation, atomic renames — lives here so
    it can be reviewed in one place.

    {2 File format}

    A journal file is a 9-byte header ([MSPARWAL] + version byte)
    followed by frames, one per record:

    {v <uvarint body-len> <body> <crc32-le of body> v}

    The reader validates each frame in order and {e stops at the first
    bad one} — short frame, CRC mismatch, or malformed body.  It never
    resyncs: a corrupt or torn suffix is reported via
    {!type:read_result} and can be chopped with {!truncate_torn}, so
    replay never sees bytes that were not fully acknowledged. *)

(** One logical journal record.  [Epoch e] marks that a snapshot blob
    numbered [e] captures all state up to this point; [Meta] carries an
    opaque configuration payload written once at journal creation.
    [Tagged (client, rid, op)] is an update journaled on behalf of a
    server client together with its client-assigned request id, so
    replay can rebuild the at-most-once dedup table; the nested record
    must be [Insert] or [Delete] (encoding anything else raises
    [Invalid_argument], decoding it is a malformed record). *)
type record =
  | Insert of int * int
  | Delete of int * int
  | Epoch of int
  | Meta of string
  | Tagged of int * int * record

(** {2 Writing} *)

type writer

val open_writer : ?sync_every:int -> string -> writer
(** Open (creating or appending to) the journal at [path].  A fresh or
    header-torn file is (re)started from a clean header.  Records are
    buffered and pushed with one [write]+[fsync] per [sync_every]
    appends (default 32); [sync_every = 1] gives classic no-loss WAL
    semantics.  If the existing file has a torn tail, run {!read} +
    {!truncate_torn} first — appending after garbage hides it forever.
    @raise Invalid_argument if [sync_every < 1].
    @raise Unix.Unix_error on filesystem errors. *)

val append : writer -> record -> unit
(** Buffer one record; flushes + fsyncs when the batch fills.
    @raise Invalid_argument if the writer is closed.
    @raise Unix.Unix_error on filesystem errors. *)

val sync : writer -> unit
(** Force-flush the buffer and fsync.  After [sync] returns, every
    appended record survives a crash.
    @raise Invalid_argument if the writer is closed.
    @raise Unix.Unix_error on filesystem errors. *)

val appended : writer -> int
(** Number of records appended through this writer (not counting
    pre-existing file contents). *)

val close : writer -> unit
(** [sync] then close the fd.  Idempotent.
    @raise Unix.Unix_error on filesystem errors. *)

(** {2 Reading} *)

type read_result = {
  records : record list;  (** every fully valid record, in append order *)
  valid_bytes : int;  (** header plus all valid frames — the safe prefix *)
  torn : string option;
      (** [Some reason] iff parsing stopped before end of file *)
}

val read : string -> read_result
(** Parse the journal at [path].  Total: corruption and torn tails are
    reported in the result, never raised.  A missing file reads as
    empty with [torn = None].
    @raise Sys_error if the file exists but cannot be opened/read. *)

val truncate_torn : string -> read_result -> unit
(** If [result.torn] is set, truncate the file at [path] down to
    [result.valid_bytes] (and fsync) so a writer can safely append
    again.  No-op when the journal parsed cleanly.
    @raise Unix.Unix_error on filesystem errors. *)

(** {2 Snapshot blobs} *)

val write_blob : string -> string -> unit
(** [write_blob path payload] durably writes [payload] (with magic,
    length, and CRC framing) to [path ^ ".tmp"], fsyncs, then renames —
    a crash at any point leaves either the previous blob or the new
    one, never a half-written file.
    @raise Unix.Unix_error on filesystem errors. *)

val read_blob : string -> string option
(** Read a blob written by {!write_blob}.  Returns [None] if the file
    is missing, short, mis-tagged, or fails its CRC — callers fall back
    to an older snapshot or full replay.
    @raise Sys_error if the file exists but cannot be opened/read. *)

val ensure_dir : string -> unit
(** [mkdir -p]: create [path] and any missing parents.
    @raise Unix.Unix_error on filesystem errors other than [EEXIST]. *)

(** {2 Directory lockfile}

    Advisory single-host lock claiming a journal directory, so two
    {!Durable} instances cannot open the same dir and interleave WAL
    frames.  The lock is a [lock.pid] file created with
    [O_CREAT|O_EXCL] holding the owner's pid; a lock whose recorded pid
    no longer exists (or whose contents are unparsable) is stale and is
    broken automatically, once. *)

type lock

val acquire_lock : string -> (lock, string) result
(** [acquire_lock dir] claims [dir] (which must exist).  [Error reason]
    if another live process holds it.
    @raise Unix.Unix_error on filesystem errors other than [EEXIST]. *)

val release_lock : lock -> unit
(** Remove the lockfile.  Idempotent; never raises. *)
