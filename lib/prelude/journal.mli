(** Append-only write-ahead log + atomic snapshot blobs for the dynamic
    pipeline.

    This module is the single blessed home of raw file I/O in [lib/]
    (lint rule MSP009); everything durability-related — framing, CRCs,
    fsync policy, torn-tail truncation, atomic renames — lives here so
    it can be reviewed in one place.

    {2 File format}

    A journal file is a 9-byte header ([MSPARWAL] + version byte)
    followed by frames, one per record:

    {v <uvarint body-len> <body> <crc32-le of body> v}

    The reader validates each frame in order and {e stops at the first
    bad one} — short frame, CRC mismatch, or malformed body.  It never
    resyncs: a corrupt or torn suffix is reported via
    {!type:read_result} and can be chopped with {!truncate_torn}, so
    replay never sees bytes that were not fully acknowledged. *)

(** One logical journal record.  [Epoch e] marks that a snapshot blob
    numbered [e] captures all state up to this point; [Meta] carries an
    opaque configuration payload written once at journal creation.
    [Tagged (client, rid, op)] is an update journaled on behalf of a
    server client together with its client-assigned request id, so
    replay can rebuild the at-most-once dedup table; the nested record
    must be [Insert] or [Delete] (encoding anything else raises
    [Invalid_argument], decoding it is a malformed record). *)
type record =
  | Insert of int * int
  | Delete of int * int
  | Epoch of int
  | Meta of string
  | Tagged of int * int * record

val header_bytes : int
(** Size of the file header — the byte offset of the first frame, i.e.
    the [offset = 0] meaning of {!tail_from}. *)

val frame_size : record -> int
(** Exact on-disk size of the frame encoding this record (length prefix
    + body + CRC trailer).  Frame encoding is deterministic, so journal
    byte offsets can be computed from record lists.
    @raise Invalid_argument on a [Tagged] wrapping a non-update. *)

val record_of_body : string -> (record, string) result
(** Total decode of one frame {e body} (as yielded by
    {!Mspar_prelude.Codec.Frames} over journal bytes) back into a
    record.  Used by replication followers to validate shipped WAL
    frames before appending them verbatim. *)

(** {2 Writing} *)

type writer

val open_writer : ?sync_every:int -> string -> writer
(** Open (creating or appending to) the journal at [path].  A fresh or
    header-torn file is (re)started from a clean header.  Records are
    buffered and pushed with one [write]+[fsync] per [sync_every]
    appends (default 32); [sync_every = 1] gives classic no-loss WAL
    semantics.  If the existing file has a torn tail, run {!read} +
    {!truncate_torn} first — appending after garbage hides it forever.
    @raise Invalid_argument if [sync_every < 1].
    @raise Unix.Unix_error on filesystem errors. *)

val append : writer -> record -> unit
(** Buffer one record; flushes + fsyncs when the batch fills.
    @raise Invalid_argument if the writer is closed.
    @raise Unix.Unix_error on filesystem errors. *)

val sync : writer -> unit
(** Force-flush the buffer and fsync.  After [sync] returns, every
    appended record survives a crash.
    @raise Invalid_argument if the writer is closed.
    @raise Unix.Unix_error on filesystem errors. *)

val appended : writer -> int
(** Number of records appended through this writer (not counting
    pre-existing file contents). *)

val durable_offset : writer -> int
(** Total file bytes covered by the last fsync through this writer —
    the exact prefix a replication primary may ship ("ship after
    fsync").  Initialized to the file size at open, so run {!read} +
    {!truncate_torn} first when the file may hold a torn tail. *)

val append_raw : writer -> string -> unit
(** Append already-framed journal bytes verbatim (replication follower
    path: shipped WAL frames are byte-identical to the primary's, so
    they are validated with {!Mspar_prelude.Codec.Frames.decode_all} +
    {!record_of_body} and then appended without re-encoding).  Counts
    as one record toward the [sync_every] batch.  The caller must have
    validated the bytes — appending garbage poisons the journal.
    @raise Invalid_argument if the writer is closed.
    @raise Unix.Unix_error on filesystem errors. *)

val close : writer -> unit
(** [sync] then close the fd.  Idempotent.
    @raise Unix.Unix_error on filesystem errors. *)

(** {2 Reading} *)

type read_result = {
  records : record list;  (** every fully valid record, in append order *)
  valid_bytes : int;  (** header plus all valid frames — the safe prefix *)
  torn : string option;
      (** [Some reason] iff parsing stopped before end of file *)
}

val read : string -> read_result
(** Parse the journal at [path].  Total: corruption and torn tails are
    reported in the result, never raised.  A missing file reads as
    empty with [torn = None].
    @raise Sys_error if the file exists but cannot be opened/read. *)

val truncate_torn : string -> read_result -> unit
(** If [result.torn] is set, truncate the file at [path] down to
    [result.valid_bytes] (and fsync) so a writer can safely append
    again.  No-op when the journal parsed cleanly.
    @raise Unix.Unix_error on filesystem errors. *)

(** {2 Position-addressed streaming read (replication tailing)} *)

type tail = {
  tail_records : record list;  (** valid records from [offset] on *)
  tail_next : int;
      (** the next durable offset — header plus every valid frame, the
          same boundary {!read} reports as [valid_bytes] *)
  tail_torn : string option;  (** the verdict {!read} would report *)
}

val tail_from : string -> offset:int -> (tail, string) result
(** [tail_from path ~offset] parses the journal with the same
    never-resync CRC discipline as {!read} and returns exactly the
    durable suffix starting at byte [offset] ([0] means the first
    frame, i.e. {!header_bytes}).  [offset] must be a frame boundary
    within the valid prefix (or its end, yielding an empty tail) —
    anything else, including a missing file or a bad header, is an
    [Error].  A torn tail is reported, never included.
    @raise Sys_error if the file exists but cannot be read. *)

val read_slice : string -> pos:int -> len:int -> string
(** Raw byte range [pos, pos+len) of the file (short at EOF).  The
    replication primary ships WAL slices with this after trimming to a
    frame boundary; it performs no validation of its own.
    @raise Invalid_argument on a negative range.
    @raise Unix.Unix_error if the file cannot be opened or read. *)

(** {2 Snapshot blobs} *)

val write_blob : string -> string -> unit
(** [write_blob path payload] durably writes [payload] (with magic,
    length, and CRC framing) to [path ^ ".tmp"], fsyncs, then renames —
    a crash at any point leaves either the previous blob or the new
    one, never a half-written file.
    @raise Unix.Unix_error on filesystem errors. *)

val read_blob : string -> string option
(** Read a blob written by {!write_blob}.  Returns [None] if the file
    is missing, short, mis-tagged, or fails its CRC — callers fall back
    to an older snapshot or full replay.
    @raise Sys_error if the file exists but cannot be opened/read. *)

val ensure_dir : string -> unit
(** [mkdir -p]: create [path] and any missing parents.
    @raise Unix.Unix_error on filesystem errors other than [EEXIST]. *)

(** {2 Directory lockfile}

    Advisory single-host lock claiming a journal directory, so two
    {!Durable} instances cannot open the same dir and interleave WAL
    frames.  The lock is a [lock.pid] file created with
    [O_CREAT|O_EXCL] holding the owner's pid and a replication epoch
    ("pid epoch"; legacy single-token files read as epoch 0); a lock
    whose recorded pid no longer exists (or whose contents are
    unparsable) is stale and is broken automatically, once. *)

type lock

val acquire_lock : ?epoch:int -> string -> (lock, string) result
(** [acquire_lock dir] claims [dir] (which must exist).  [Error reason]
    if another live process holds it.

    Without [?epoch] the claim is epoch-agnostic: only holder liveness
    decides (crash recovery of one's own dir).  With [~epoch:e] the
    claim is {e fenced}: it is refused when the lockfile records a
    strictly newer epoch — even if the holder is dead — and it seizes
    the lock (live holder or not) when [e] is strictly newer, which is
    how a promoted node fences out a stale primary.  Equal epochs fall
    back to the liveness rule.
    @raise Unix.Unix_error on filesystem errors other than [EEXIST]. *)

val refresh_lock_epoch : lock -> int -> unit
(** Rewrite the held lockfile with a new epoch (promotion bumps the
    fence without releasing the dir).  No-op on a released lock.
    @raise Unix.Unix_error on filesystem errors. *)

val release_lock : lock -> unit
(** Remove the lockfile.  Idempotent; never raises. *)
