(** Off-heap flat int lanes (Bigarray-backed) — the CSR storage carrier.

    {!Edgebuf} keeps packed edges on the OCaml heap, which is right for
    short-lived mark buffers but wrong for the long-lived CSR lanes of a
    multi-million-edge graph: the major GC rescans every heap [int array]
    on every marking pass, and heap arrays cannot be memory-mapped from a
    file.  A {!t} is a [(int, int_elt, c_layout) Bigarray.Array1.t] —
    malloc'd (or mmap'd) storage the GC never scans, shareable across
    domains without write barriers, with the same unboxed-int element type
    the packed pipeline already uses.

    Bounds discipline lives here and in [Graph]'s builders: everything
    else goes through the checked {!get}/{!set} (direct
    [Bigarray.Array1.unsafe_*] outside [lib/prelude] and
    [lib/graph/graph.ml] is a lint error, MSP010). *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The concrete type is exposed so same-library hot loops compile to
    direct unboxed loads; treat it as abstract everywhere else. *)

val create : int -> t
(** [create n] is a zero-filled lane of length [n] ([n >= 0]).
    @raise Invalid_argument on a negative length. *)

val create_uninit : int -> t
(** Like {!create} but the contents are unspecified — for builders that
    provably overwrite every slot.  Never checksum or expose an
    incompletely-written uninitialised lane.
    @raise Invalid_argument on a negative length. *)

val length : t -> int

val get : t -> int -> int
(** @raise Invalid_argument on out-of-bounds access. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument on out-of-bounds access. *)

val unsafe_get : t -> int -> int
(** Unchecked read.  Precondition (unchecked): [0 <= i < length t]. *)

val unsafe_set : t -> int -> int -> unit
(** Unchecked write.  Precondition (unchecked): [0 <= i < length t]. *)

val fill : t -> int -> unit
(** Set every slot to the given value. *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Copy [len] slots; ranges must be in bounds.
    @raise Invalid_argument on an out-of-bounds range. *)

val sub : t -> pos:int -> len:int -> t
(** A window {e sharing} the underlying storage (no copy); writes through
    the window are visible in the parent.
    @raise Invalid_argument on an out-of-bounds range. *)

val copy : t -> t
(** Fresh storage with the same contents — detaches mmap-backed lanes. *)

val of_array : int array -> t
val to_array : t -> int array

val equal : t -> t -> bool
(** Same length and contents (monomorphic int compare). *)

val iter : (int -> unit) -> t -> unit
val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a
