(** Growable arrays with amortised O(1) push.

    Used throughout the library for edge accumulation and work queues.  A
    dummy element is required at creation so the backing store can be a plain
    (monomorphic-friendly) [array]. *)

type 'a t

val create : ?initial_capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element. @raise Invalid_argument on an
    empty vector. *)

val clear : 'a t -> unit
(** Logical clear; capacity is retained. *)

val to_array : 'a t -> 'a array
(** Fresh array copy of the live contents. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val of_array : dummy:'a -> 'a array -> 'a t
