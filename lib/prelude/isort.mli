(** In-place monomorphic sorting of int arrays.

    [Array.sort compare] pays a closure call plus a polymorphic-compare
    dispatch per comparison; for the flat packed-edge buffers of the CSR
    builder that overhead dominates.  This is an introsort (median-of-three
    quicksort, heapsort below a depth budget of 2·log2 n, final insertion
    pass), so the worst case is O(n log n) — no quicksort adversary. *)

val sort : int array -> unit
(** Sort the whole array ascending, in place. *)

val sort_range : int array -> pos:int -> len:int -> unit
(** Sort the slice [\[pos, pos+len)] ascending, in place.
    @raise Invalid_argument if the range escapes the array. *)

val is_sorted : int array -> bool

val is_sorted_range : int array -> pos:int -> len:int -> bool
(** @raise Invalid_argument if the range escapes the array. *)
