(* Persistent, lazily-started domain pool.

   One worker domain per pool slot beyond the caller; workers park on a
   condition variable between jobs, so the Domain.spawn cost is paid once
   per process (on the first parallel call) instead of once per
   sparsification.  The caller always executes worker slot 0 itself, so a
   size-1 pool never spawns anything — the graceful single-domain
   fallback.

   Memory-model note: a job's writes become visible to the submitter (and,
   transitively, to workers of later phases) through the mutex hand-off in
   [submit]/[await]; phases separated by [parallel_for_ranges] calls
   therefore need no extra synchronisation as long as concurrent chunks
   write disjoint locations. *)

type state = Idle | Pending of (unit -> unit) | Quit

type worker = {
  lock : Mutex.t;
  job_ready : Condition.t;
  job_done : Condition.t;
  mutable state : state;
  mutable finished : bool;
  mutable error : exn option;
  mutable domain : unit Domain.t option;
}

type t = {
  size : int;
  pool_lock : Mutex.t; (* guards lazy start and shutdown *)
  mutable workers : worker array; (* size - 1 entries once started *)
}

(* OCaml's runtime supports at most ~128 live domains; reject anything
   beyond that during validation rather than failing inside Domain.spawn. *)
let max_domains = 128

let default_size () =
  let recommended () = Int.max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "MSPAR_DOMAINS" with
  | None -> recommended ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 && d <= max_domains -> d
      | Some _ | None ->
          Printf.eprintf
            "mspar: ignoring invalid MSPAR_DOMAINS=%S (want an integer in \
             [1, %d]); using %d\n\
             %!"
            s max_domains (recommended ());
          recommended ())

let create ?num_domains () =
  let nd =
    match num_domains with
    | None -> default_size ()
    | Some d ->
        if d < 1 || d > max_domains then
          invalid_arg "Pool.create: num_domains must be in [1, 128]";
        d
  in
  { size = nd; pool_lock = Mutex.create (); workers = [||] }

let size t = t.size

(* ------------------------------------------------------------------ *)
(* worker protocol                                                    *)
(* ------------------------------------------------------------------ *)

let make_worker () =
  {
    lock = Mutex.create ();
    job_ready = Condition.create ();
    job_done = Condition.create ();
    state = Idle;
    finished = false;
    error = None;
    domain = None;
  }

let worker_loop w =
  let running = ref true in
  while !running do
    Mutex.lock w.lock;
    while match w.state with Idle -> true | Pending _ | Quit -> false do
      Condition.wait w.job_ready w.lock
    done;
    match w.state with
    | Idle ->
        (* unreachable: the wait loop above only exits on Pending/Quit *)
        Mutex.unlock w.lock
    | Quit ->
        w.state <- Idle;
        Mutex.unlock w.lock;
        running := false
    | Pending f ->
        w.state <- Idle;
        Mutex.unlock w.lock;
        let err = match f () with () -> None | exception e -> Some e in
        Mutex.lock w.lock;
        w.error <- err;
        w.finished <- true;
        Condition.signal w.job_done;
        Mutex.unlock w.lock
  done

let submit w f =
  Mutex.lock w.lock;
  w.finished <- false;
  w.error <- None;
  w.state <- Pending f;
  Condition.signal w.job_ready;
  Mutex.unlock w.lock

let await w =
  Mutex.lock w.lock;
  while not w.finished do
    Condition.wait w.job_done w.lock
  done;
  Mutex.unlock w.lock;
  w.error

(* Lazy start: spawn the worker domains on the first parallel call.  If the
   runtime refuses to spawn (domain limit reached), keep whatever subset
   did spawn — the pool degrades to fewer workers, down to the sequential
   caller-only fallback, instead of failing. *)
let ensure_started t =
  Mutex.lock t.pool_lock;
  if t.size > 1 && Array.length t.workers = 0 then begin
    let spawned = ref [] in
    (try
       for _ = 1 to t.size - 1 do
         let w = make_worker () in
         let d = Domain.spawn (fun () -> worker_loop w) in
         w.domain <- Some d;
         spawned := w :: !spawned
       done
     with _ -> ());
    t.workers <- Array.of_list (List.rev !spawned)
  end;
  Mutex.unlock t.pool_lock

let shutdown t =
  Mutex.lock t.pool_lock;
  let ws = t.workers in
  t.workers <- [||];
  Mutex.unlock t.pool_lock;
  Array.iter
    (fun w ->
      Mutex.lock w.lock;
      w.state <- Quit;
      Condition.signal w.job_ready;
      Mutex.unlock w.lock;
      match w.domain with Some d -> Domain.join d | None -> ())
    ws

(* ------------------------------------------------------------------ *)
(* range splitting                                                    *)
(* ------------------------------------------------------------------ *)

let chunk_bounds ~chunks ~n k =
  if chunks < 1 then invalid_arg "Pool.chunk_bounds: chunks must be >= 1";
  if n < 0 then invalid_arg "Pool.chunk_bounds: negative n";
  if k < 0 || k >= chunks then invalid_arg "Pool.chunk_bounds: chunk index out of range";
  let q = n / chunks and r = n mod chunks in
  let lo = (k * q) + Int.min k r in
  (lo, lo + q + if k < r then 1 else 0)

let parallel_for_ranges t ?chunks ~n f =
  let nchunks =
    match chunks with
    | None -> t.size
    | Some c ->
        if c < 1 then invalid_arg "Pool.parallel_for_ranges: chunks must be >= 1";
        c
  in
  if n < 0 then invalid_arg "Pool.parallel_for_ranges: negative n";
  (* worker slot [w] of [nw] executes chunks w, w + nw, w + 2nw, ... *)
  let run_slot slot nw =
    let k = ref slot in
    while !k < nchunks do
      let lo, hi = chunk_bounds ~chunks:nchunks ~n !k in
      f ~chunk:!k ~lo ~hi;
      k := !k + nw
    done
  in
  if t.size = 1 || nchunks = 1 then run_slot 0 1
  else begin
    ensure_started t;
    let ws = t.workers in
    let nw = Int.min (Array.length ws + 1) nchunks in
    if nw <= 1 then run_slot 0 1
    else begin
      for i = 1 to nw - 1 do
        submit ws.(i - 1) (fun () -> run_slot i nw)
      done;
      let own = match run_slot 0 nw with () -> None | exception e -> Some e in
      let first = ref own in
      for i = 1 to nw - 1 do
        match (await ws.(i - 1), !first) with
        | Some e, None -> first := Some e
        | (Some _ | None), _ -> ()
      done;
      match !first with Some e -> raise e | None -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* the process-wide shared pool                                       *)
(* ------------------------------------------------------------------ *)

let default_pool : t option ref = ref None
let default_pool_lock = Mutex.create ()

let get_default () =
  Mutex.lock default_pool_lock;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        (* park-and-join at exit so worker domains never outlive main *)
        at_exit (fun () -> shutdown p);
        p
  in
  Mutex.unlock default_pool_lock;
  p
