(** Without-replacement sampling over read-only arrays (paper §3.1).

    To mark [Δ] random incident edges of a vertex [v] in O(Δ) deterministic
    time, the paper emulates Fisher–Yates swaps on the read-only adjacency
    array through an auxiliary positions array [pos_v] that supports O(1)
    initialisation.  A single {!t} owns one such scratch {!Sparse_array} and
    is reused across all vertices; {!sample_indices} performs the
    emulation. *)

type t
(** Reusable sampling scratch space. *)

val create : capacity:int -> t
(** [create ~capacity] allocates scratch space usable for any population of
    size at most [capacity] (for graphs: the maximum degree, or [n]).
    @raise Invalid_argument if [capacity] is negative. *)

val capacity : t -> int

val sample_indices : t -> Rng.t -> n:int -> k:int -> f:(int -> unit) -> unit
(** [sample_indices t rng ~n ~k ~f] calls [f] on [min k n] distinct indices
    drawn uniformly at random from [\[0, n)], in draw order.  Runs in
    O(min k n) time independent of [n]; requires [n <= capacity t].
    The scratch space is reset (O(1)) before use, so consecutive calls are
    independent.

    Generator words are prefetched in one {!Rng.fill_bits62} batch per
    call and consumed from a reusable buffer, but the outputs {e and} the
    final state of [rng] are bit-for-bit those of drawing with {!Rng.int}
    one index at a time — batching is invisible to replay, snapshots and
    differential tests.
    @raise Invalid_argument if [n] is negative or exceeds the capacity. *)

val sample_indices_into : t -> Rng.t -> n:int -> k:int -> out:int array -> unit
(** [sample_indices_into t rng ~n ~k ~out] writes the same [min k n]
    indices {!sample_indices} would emit into [out.(0 .. min k n - 1)],
    in draw order, without a per-draw closure call — the form the marking
    hot path uses.  Draws and final [rng] state are bit-for-bit identical
    to {!sample_indices} on the same inputs.
    @raise Invalid_argument if [n] is invalid or [out] is shorter than
    [min k n]. *)

val steps_last_call : t -> int
(** Number of sampling steps performed by the most recent
    {!sample_indices} call (equals [min k n]); exposed so callers can
    account for the deterministic O(Δ)-per-vertex work bound. *)
