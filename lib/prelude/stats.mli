(** Small statistics helpers for the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean. 0. on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0. for fewer than two
    samples. *)

val min_max : float array -> float * float
(** @raise Invalid_argument on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], nearest-rank on a sorted copy.
    @raise Invalid_argument on the empty array. *)

val median : float array -> float

val of_ints : int array -> float array

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  median : float;
  max : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on the empty array. *)

val pp_summary : Format.formatter -> summary -> unit
