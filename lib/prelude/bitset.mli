(** Fixed-capacity bitsets over [0 .. n-1], packed 63 bits per word. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1].
    @raise Invalid_argument if [n] is negative. *)

val length : t -> int
(** Universe size. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit

val cardinal : t -> int
(** Population count; O(n/63). *)

val iter : (int -> unit) -> t -> unit
(** Iterates members in increasing order. *)

val to_list : t -> int list
val copy : t -> t

val inter_cardinal : t -> t -> int
(** Size of the intersection. Universes must match. *)

val diff : t -> t -> t
(** [diff a b] is a fresh set [a \ b]. Universes must match. *)

val inter : t -> t -> t
(** Fresh intersection. Universes must match. *)

val first_mem : t -> int option
(** Smallest member, if any. *)
