type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create_uninit n =
  if n < 0 then invalid_arg "Bigvec.create: negative length";
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let create n =
  let t = create_uninit n in
  Bigarray.Array1.fill t 0;
  t

let length = Bigarray.Array1.dim

(* Array1.get/set raise on out-of-bounds (with -unsafe they would not, but
   the project never builds with -unsafe). *)
let get (t : t) i : int = Bigarray.Array1.get t i
let set (t : t) i (v : int) = Bigarray.Array1.set t i v
let unsafe_get (t : t) i : int = Bigarray.Array1.unsafe_get t i
let unsafe_set (t : t) i (v : int) = Bigarray.Array1.unsafe_set t i v
let fill (t : t) v = Bigarray.Array1.fill t v

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Bigvec.sub: range out of bounds";
  Bigarray.Array1.sub t pos len

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 || src_pos < 0 || dst_pos < 0
     || src_pos + len > length src
     || dst_pos + len > length dst
  then invalid_arg "Bigvec.blit: range out of bounds";
  Bigarray.Array1.blit
    (Bigarray.Array1.sub src src_pos len)
    (Bigarray.Array1.sub dst dst_pos len)

let copy t =
  let out = create_uninit (length t) in
  Bigarray.Array1.blit t out;
  out

let of_array a =
  let t = create_uninit (Array.length a) in
  for i = 0 to Array.length a - 1 do
    unsafe_set t i (Array.unsafe_get a i)
  done;
  t

let to_array t = Array.init (length t) (fun i -> unsafe_get t i)

let equal a b =
  length a = length b
  &&
  let n = length a in
  let rec go i = i >= n || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0

let iter f t =
  for i = 0 to length t - 1 do
    f (unsafe_get t i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to length t - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc
