type t = {
  pos : int Sparse_array.t;
  mutable words : int array; (* reusable prefetch buffer for Rng words *)
  mutable out : int array; (* reusable index buffer for the [~f] wrapper *)
  mutable steps : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Sampling.create: negative capacity";
  {
    pos = Sparse_array.create capacity ~default:(-1);
    words = [||];
    out = [||];
    steps = 0;
  }

let capacity t = Sparse_array.length t.pos

(* Emulated Fisher–Yates: pos.(i) = -1 means "element i is still at its own
   position".  At step s we draw j <= last = n-1-s, output the element
   currently at position j, and move the element at position [last] into
   position j.  Positions > last are never consulted again, so only the
   single write to j is needed.

   Randomness is batched: exactly [k] generator words are prefetched into
   the reusable [words] buffer with one [Rng.fill_bits62] call, and the
   draws then run on plain array reads.  Every draw consumes at least one
   word, so the prefetch can never overrun what the unbatched loop would
   have consumed; the (rare) extra words a rejection needs fall through to
   live [Rng.bits62] calls, which continue the very same stream.  The
   word-to-draw assignment and the final generator state are therefore bit
   for bit those of the unbatched interleaving — dynamic snapshots and the
   QCheck equivalences keep holding. *)
let sample_indices_into t rng ~n ~k ~out =
  if n > Sparse_array.length t.pos then
    invalid_arg "Sampling.sample_indices_into: population exceeds capacity";
  if n < 0 then invalid_arg "Sampling.sample_indices_into: negative population";
  let k = Int.min k n in
  if Array.length out < k then
    invalid_arg "Sampling.sample_indices_into: out buffer shorter than min k n";
  Sparse_array.reset t.pos;
  if Array.length t.words < k then
    t.words <- Array.make (Int.max 16 (Int.max k (2 * Array.length t.words))) 0;
  Rng.fill_bits62 rng t.words ~pos:0 ~len:k;
  let wpos = ref 0 in
  let next () =
    if !wpos < k then begin
      let w = Array.unsafe_get t.words !wpos in
      incr wpos;
      w
    end
    else Rng.bits62 rng
  in
  let value_at i =
    let v = Sparse_array.get t.pos i in
    if v = -1 then i else v
  in
  (* The accept path is inlined rather than routed through
     [Rng.int_with ~next]: an escaping closure per draw costs an
     indirect call the hot loop can feel at millions of draws.  The
     word-consumption order is identical — one word here, and only a
     rejection falls through to [Rng.int_with], which continues the very
     same rejection loop on the very same stream. *)
  let max62 = (1 lsl 62) - 1 in
  for step = 0 to k - 1 do
    let last = n - 1 - step in
    let bound = last + 1 in
    let w =
      if !wpos < k then begin
        let w = Array.unsafe_get t.words !wpos in
        incr wpos;
        w
      end
      else Rng.bits62 rng
    in
    let j =
      if bound land (bound - 1) = 0 then w land (bound - 1)
      else
        let limit = max62 - (max62 mod bound) in
        if w < limit then w mod bound else Rng.int_with ~next bound
    in
    Array.unsafe_set out step (value_at j);
    Sparse_array.set t.pos j (value_at last)
  done;
  t.steps <- k

let sample_indices t rng ~n ~k ~f =
  if n > Sparse_array.length t.pos then
    invalid_arg "Sampling.sample_indices: population exceeds capacity";
  if n < 0 then invalid_arg "Sampling.sample_indices: negative population";
  let k' = Int.min k n in
  if k' >= 0 && Array.length t.out < k' then
    t.out <- Array.make (Int.max 16 (Int.max k' (2 * Array.length t.out))) 0;
  sample_indices_into t rng ~n ~k ~out:t.out;
  for i = 0 to t.steps - 1 do
    f (Array.unsafe_get t.out i)
  done

let steps_last_call t = t.steps
