type t = { pos : int Sparse_array.t; mutable steps : int }

let create ~capacity =
  if capacity < 0 then invalid_arg "Sampling.create: negative capacity";
  { pos = Sparse_array.create capacity ~default:(-1); steps = 0 }

let capacity t = Sparse_array.length t.pos

(* Emulated Fisher–Yates: pos.(i) = -1 means "element i is still at its own
   position".  At step s we draw j <= last = n-1-s, output the element
   currently at position j, and move the element at position [last] into
   position j.  Positions > last are never consulted again, so only the
   single write to j is needed. *)
let sample_indices t rng ~n ~k ~f =
  if n > Sparse_array.length t.pos then
    invalid_arg "Sampling.sample_indices: population exceeds capacity";
  if n < 0 then invalid_arg "Sampling.sample_indices: negative population";
  let k = Int.min k n in
  Sparse_array.reset t.pos;
  let value_at i =
    let v = Sparse_array.get t.pos i in
    if v = -1 then i else v
  in
  for step = 0 to k - 1 do
    let last = n - 1 - step in
    let j = Rng.int rng (last + 1) in
    f (value_at j);
    Sparse_array.set t.pos j (value_at last)
  done;
  t.steps <- k

let steps_last_call t = t.steps
