(** Hand-rolled binary codec for the durability layer (journal + snapshots).

    [Marshal] is banned (MSP005: unversioned, structurally unchecked), so
    everything that reaches disk is encoded explicitly: LEB128 varints,
    zigzag for signed fields, fixed little-endian [int64] lanes, IEEE bit
    patterns for floats.  The reader is total: reading past the end of the
    input raises {!Truncated}, which callers turn into torn-tail /
    corrupt-blob verdicts rather than crashes. *)

exception Truncated
(** Raised by every [read_*] function on exhausted input. *)

(** {2 Writers (append to a [Buffer.t])} *)

val add_uvarint : Buffer.t -> int -> unit
(** LEB128 encoding of a non-negative int.
    @raise Invalid_argument on a negative argument. *)

val add_int : Buffer.t -> int -> unit
(** Zigzag-then-LEB128 encoding of any int (small magnitudes stay short). *)

val add_int64 : Buffer.t -> int64 -> unit
(** Fixed 8 bytes, little-endian. *)

val add_float : Buffer.t -> float -> unit
(** IEEE-754 bit pattern via {!add_int64} (bit-exact round trip). *)

val add_string : Buffer.t -> string -> unit
(** Length ({!add_uvarint}) followed by the raw bytes. *)

(** {2 Position-tracked reader} *)

type reader

val reader : ?pos:int -> ?len:int -> string -> reader
(** Reader over [s.[pos .. pos+len)] (default: the rest of the string).
    @raise Invalid_argument if [pos] is outside the string. *)

val pos : reader -> int
(** Current absolute offset into the underlying string. *)

val at_end : reader -> bool

val read_byte : reader -> int
(** @raise Truncated on exhausted input (same for all [read_*] below). *)

val read_uvarint : reader -> int
(** @raise Truncated on exhausted or over-long input. *)

val read_int : reader -> int
(** Inverse of {!add_int}. @raise Truncated on exhausted input. *)

val read_int64 : reader -> int64
(** @raise Truncated on exhausted input. *)

val read_float : reader -> float
(** @raise Truncated on exhausted input. *)

val read_string : reader -> string
(** @raise Truncated if the declared length overruns the input. *)

(** {2 Integrity} *)

val crc32 : ?pos:int -> ?len:int -> string -> int32
(** CRC-32 (IEEE 802.3, reflected, polynomial [0xEDB88320]) of the byte
    range (default: the whole string).  Guards every journal record and
    snapshot blob.
    @raise Invalid_argument if the range is out of bounds. *)

val crc32_bytes : ?pos:int -> ?len:int -> bytes -> int32
(** {!crc32} over a [bytes] range — lets writers that stage output in a
    reusable scratch buffer checksum it without a copy.
    @raise Invalid_argument if the range is out of bounds. *)

(** {2 Frames}

    The shared frame discipline — [<uvarint body-len> <body> <crc32-le of
    body>] — exactly the journal's record framing, reused on the
    [mspar serve] wire.  {!Frames.t} is an incremental reader: feed it
    arbitrary partial-read chunks (a socket delivers bytes, not frames)
    and pop complete, CRC-verified frame bodies.  It is total on any
    input: every byte sequence either yields frames, asks for more, or
    lands in a sticky [`Corrupt] state — it never raises on malformed
    input and never hangs on a finite one. *)
module Frames : sig
  type t

  (** Verdict on the unconsumed tail of a whole-buffer decode. *)
  type tail =
    | Clean  (** input ended exactly on a frame boundary *)
    | Short  (** trailing bytes form an incomplete (torn) frame *)
    | Bad of string  (** trailing bytes are corrupt beyond truncation *)

  val default_max_frame : int
  (** 1 MiB — default bound on a single frame body. *)

  val create : ?max_frame:int -> unit -> t
  (** Fresh incremental reader.  [max_frame] bounds the body length a
      frame may declare; a larger declaration is corruption, which stops
      a hostile peer from making us buffer unbounded input.
      @raise Invalid_argument if [max_frame < 1]. *)

  val feed : t -> ?pos:int -> ?len:int -> string -> unit
  (** Append [chunk.[pos .. pos+len)] (default: the whole string) to the
      reader's buffer.  No-op once the reader is corrupt.
      @raise Invalid_argument if the range is out of bounds. *)

  val next : t -> [ `Frame of string | `Need_more | `Corrupt of string ]
  (** Pop the next complete frame body.  [`Need_more] means the buffered
      bytes are a (possibly empty) prefix of a valid frame; [`Corrupt]
      means they can never become one (over-long or oversized length,
      CRC mismatch) — the verdict is sticky and the buffer is dropped. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed (0 after corruption). *)

  val encode : Buffer.t -> string -> unit
  (** Append one frame carrying [body] — the exact inverse of {!next}. *)

  val encode_bytes : Buffer.t -> bytes -> pos:int -> len:int -> unit
  (** {!encode} for a body staged in [b.[pos .. pos+len)] — appends and
      checksums in place, building no intermediate string.  The server's
      per-response path uses this to stay allocation-free.
      @raise Invalid_argument if the range is out of bounds. *)

  val decode_all : ?max_frame:int -> string -> string list * tail
  (** Whole-buffer decode: every complete valid frame in order, plus the
      verdict on what remains.  Implemented independently of the
      incremental reader so the two can be property-tested against each
      other. *)
end
