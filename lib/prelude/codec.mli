(** Hand-rolled binary codec for the durability layer (journal + snapshots).

    [Marshal] is banned (MSP005: unversioned, structurally unchecked), so
    everything that reaches disk is encoded explicitly: LEB128 varints,
    zigzag for signed fields, fixed little-endian [int64] lanes, IEEE bit
    patterns for floats.  The reader is total: reading past the end of the
    input raises {!Truncated}, which callers turn into torn-tail /
    corrupt-blob verdicts rather than crashes. *)

exception Truncated
(** Raised by every [read_*] function on exhausted input. *)

(** {2 Writers (append to a [Buffer.t])} *)

val add_uvarint : Buffer.t -> int -> unit
(** LEB128 encoding of a non-negative int.
    @raise Invalid_argument on a negative argument. *)

val add_int : Buffer.t -> int -> unit
(** Zigzag-then-LEB128 encoding of any int (small magnitudes stay short). *)

val add_int64 : Buffer.t -> int64 -> unit
(** Fixed 8 bytes, little-endian. *)

val add_float : Buffer.t -> float -> unit
(** IEEE-754 bit pattern via {!add_int64} (bit-exact round trip). *)

val add_string : Buffer.t -> string -> unit
(** Length ({!add_uvarint}) followed by the raw bytes. *)

(** {2 Position-tracked reader} *)

type reader

val reader : ?pos:int -> ?len:int -> string -> reader
(** Reader over [s.[pos .. pos+len)] (default: the rest of the string).
    @raise Invalid_argument if [pos] is outside the string. *)

val pos : reader -> int
(** Current absolute offset into the underlying string. *)

val at_end : reader -> bool

val read_byte : reader -> int
(** @raise Truncated on exhausted input (same for all [read_*] below). *)

val read_uvarint : reader -> int
(** @raise Truncated on exhausted or over-long input. *)

val read_int : reader -> int
(** Inverse of {!add_int}. @raise Truncated on exhausted input. *)

val read_int64 : reader -> int64
(** @raise Truncated on exhausted input. *)

val read_float : reader -> float
(** @raise Truncated on exhausted input. *)

val read_string : reader -> string
(** @raise Truncated if the declared length overruns the input. *)

(** {2 Integrity} *)

val crc32 : ?pos:int -> ?len:int -> string -> int32
(** CRC-32 (IEEE 802.3, reflected, polynomial [0xEDB88320]) of the byte
    range (default: the whole string).  Guards every journal record and
    snapshot blob.
    @raise Invalid_argument if the range is out of bounds. *)
