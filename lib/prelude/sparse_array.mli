(** Array with O(1) initialisation (Aho–Hopcroft–Ullman "sparse array").

    Section 3.1 of the paper needs, for every vertex [v], a positions array
    [pos_v] that can be (re-)initialised to a uniform default in constant
    time, so that building the sparsifier costs O(Δ) per vertex rather than
    O(deg v).  The classic trick keeps a stack of initialised indices and a
    back-pointer array; a slot is live iff its back pointer addresses a stack
    entry that points back at it.

    The constructor {!create} still allocates O(n) words (unavoidable in
    OCaml, which zero-initialises arrays), but {!reset} is O(1) no matter how
    many slots were written — this is the operation the paper's amortisation
    relies on when the same scratch array is reused across vertices. *)

type 'a t

val create : int -> default:'a -> 'a t
(** [create n ~default] is a length-[n] sparse array whose every slot reads
    as [default].
    @raise Invalid_argument if [n] is negative. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** [get t i] is the value at slot [i], or the default if the slot was never
    written since the last {!reset}. O(1). *)

val set : 'a t -> int -> 'a -> unit
(** [set t i v] writes slot [i]. O(1). *)

val is_set : 'a t -> int -> bool
(** [is_set t i] is [true] iff slot [i] was written since the last
    {!reset}. *)

val reset : 'a t -> unit
(** Constant-time reinitialisation: after [reset t], every slot reads as the
    default again. *)

val live_count : 'a t -> int
(** Number of slots written since the last reset. *)
