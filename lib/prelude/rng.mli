(** Deterministic, splittable pseudo-random number generator.

    All randomness in the library flows through values of type {!t} passed
    explicitly, so every experiment is reproducible from a single seed.  The
    generator is splitmix64 (Steele–Lea–Flood) seeding a xoshiro256++ state;
    it is fast, has a 256-bit state, and passes BigCrush.  It is {e not}
    cryptographic. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. Different seeds yield independent-looking streams. *)

val derive : seed:int -> int -> t
(** [derive ~seed i] is the generator of entity [i] under master seed
    [seed]: a splitmix64-style finalizer mixes the pair into a fresh
    {!create}-style state.  Unlike {!split} it is a {e pure} function of
    [(seed, i)] — deriving entity [i]'s stream never consumes anyone
    else's randomness — so a local-access oracle can replay exactly the
    stream a batch pass consumed for entity [i], in any order, at any
    time.  [Par_gdelta] and the G_Δ replay oracle share this derivation
    (bit-for-bit). *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state;
    advancing one does not affect the other. *)

val state : t -> int64 array
(** The current 4-word xoshiro256++ state, for checkpointing.  Restoring
    it with {!of_state} resumes the stream at exactly this position, so
    replay after recovery is bit-for-bit identical. *)

val of_state : int64 array -> t
(** Inverse of {!state}.
    @raise Invalid_argument unless given exactly 4 words, not all zero
    (the xoshiro fixed point). *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream.  Used to give each vertex
    of a distributed simulation its own local randomness. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val bits62 : t -> int
(** Next output truncated to 62 non-negative bits — the word every integer
    draw below is built from. *)

val fill_bits62 : t -> int array -> pos:int -> len:int -> unit
(** [fill_bits62 t a ~pos ~len] writes the next [len] {!bits62} words into
    [a.(pos .. pos+len-1)]: the same words, in the same order, as [len]
    calls to {!bits62}, leaving the generator in the identical state.  The
    batched sampler ({!Sampling.sample_indices}) prefetches a vertex's
    words through one such call and then runs on plain array reads instead
    of interleaving generator steps with the marking loop.
    @raise Invalid_argument if the range is out of bounds. *)

val int_with : next:(unit -> int) -> int -> int
(** [int_with ~next bound] is {!int} computed over an externally supplied
    {!bits62}-word stream: power-of-two bounds consume exactly one word,
    other bounds apply the same rejection rule to successive words.
    Feeding it the words of a generator's stream in order reproduces
    {!int} on that generator bit for bit, including how many words are
    consumed — the contract the batched sampler relies on.
    @raise Invalid_argument if [bound <= 0]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0].
    Uses rejection sampling, so there is no modulo bias.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]]. Requires
    [lo <= hi].
    @raise Invalid_argument if [lo > hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_distinct : t -> k:int -> n:int -> int array
(** [sample_distinct t ~k ~n] draws [min k n] distinct integers uniformly
    from [\[0, n)], in the order they were drawn (a uniformly random
    [min k n]-permutation prefix).  O(k) time and space via a virtual
    Fisher–Yates over a hashtable.
    @raise Invalid_argument if [n < 0]. *)

val perm : t -> int -> int array
(** [perm t n] is a uniformly random permutation of [0..n-1]. *)
