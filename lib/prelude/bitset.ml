type t = { n : int; words : int array }

let bits_per_word = 63

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { n; words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0 }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let copy t = { n = t.n; words = Array.copy t.words }

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch"

let inter_cardinal a b =
  check_same a b;
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc

let diff a b =
  check_same a b;
  { n = a.n; words = Array.mapi (fun i w -> w land lnot b.words.(i)) a.words }

let inter a b =
  check_same a b;
  { n = a.n; words = Array.mapi (fun i w -> w land b.words.(i)) a.words }

let first_mem t =
  let res = ref None in
  (try
     for w = 0 to Array.length t.words - 1 do
       let word = t.words.(w) in
       if word <> 0 then
         for b = 0 to bits_per_word - 1 do
           if word land (1 lsl b) <> 0 then begin
             res := Some ((w * bits_per_word) + b);
             raise Exit
           end
         done
     done
   with Exit -> ());
  !res
