(* Append-only write-ahead log for the dynamic pipeline, plus the one
   blessed home of raw file I/O in lib/ (lint rule MSP009 routes every
   open_out/openfile here so durability and atomicity decisions stay in
   one reviewable place; Graph_io keeps its own exemption for edge lists).

   On-disk layout:

     MSPARWAL <version byte>                      9-byte file header
     <uvarint body-len> <body> <crc32 of body>    one frame per record
     ...

   where a body is a tag byte plus Codec varints.  The CRC is the frame
   trailer rather than part of the body, so a torn write (power cut mid
   record) is detected either as a short frame or as a CRC mismatch; the
   reader stops at the first bad frame and never resyncs — a corrupt
   suffix is *never* replayed, it is reported and then chopped by
   [truncate_torn].

   Writers buffer encoded frames and push them to the file descriptor
   with one [write] + [fsync] per [sync_every] records (or on [sync] /
   [close]), so callers choose their own durability-vs-throughput point:
   [sync_every = 1] is classic WAL semantics (no acknowledged op is ever
   lost), larger batches amortise the fsync. *)

type record =
  | Insert of int * int
  | Delete of int * int
  | Epoch of int  (* snapshot boundary: state up to here is in snapshot [e] *)
  | Meta of string  (* opaque configuration payload, written once at creation *)
  | Tagged of int * int * record
      (* (client, request id, op): an update journaled on behalf of a
         server client, so replay can rebuild the at-most-once dedup
         table.  The nested record must itself be Insert/Delete. *)

let magic = "MSPARWAL"
let version = '\001'
let header = magic ^ String.make 1 version
let header_len = String.length header
let header_bytes = header_len

(* ------------------------------------------------------------------ *)
(* record codec                                                       *)
(* ------------------------------------------------------------------ *)

let rec encode_body buf r =
  match r with
  | Insert (u, v) ->
      Buffer.add_char buf '\001';
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Delete (u, v) ->
      Buffer.add_char buf '\002';
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Epoch e ->
      Buffer.add_char buf '\003';
      Codec.add_uvarint buf e
  | Meta s ->
      Buffer.add_char buf '\004';
      Codec.add_string buf s
  | Tagged (client, rid, op) ->
      (match op with
      | Insert _ | Delete _ -> ()
      | Epoch _ | Meta _ | Tagged _ ->
          invalid_arg "Journal: Tagged may only wrap Insert/Delete");
      Buffer.add_char buf '\005';
      Codec.add_uvarint buf client;
      Codec.add_uvarint buf rid;
      encode_body buf op

let decode_body body =
  let r = Codec.reader body in
  let rec go () =
    match Codec.read_byte r with
    | 1 ->
        let u = Codec.read_uvarint r in
        let v = Codec.read_uvarint r in
        Insert (u, v)
    | 2 ->
        let u = Codec.read_uvarint r in
        let v = Codec.read_uvarint r in
        Delete (u, v)
    | 3 -> Epoch (Codec.read_uvarint r)
    | 4 -> Meta (Codec.read_string r)
    | 5 ->
        let client = Codec.read_uvarint r in
        let rid = Codec.read_uvarint r in
        (match go () with
        | (Insert _ | Delete _) as op -> Tagged (client, rid, op)
        | Epoch _ | Meta _ | Tagged _ ->
            failwith "Tagged record wraps a non-update")
    | t -> failwith (Printf.sprintf "unknown record tag %d" t)
  in
  let rec_ = go () in
  if not (Codec.at_end r) then failwith "trailing bytes in record body";
  rec_

let frame buf r =
  let body = Buffer.create 16 in
  encode_body body r;
  Codec.Frames.encode buf (Buffer.contents body)

let frame_size r =
  let buf = Buffer.create 32 in
  frame buf r;
  Buffer.length buf

let record_of_body body =
  match decode_body body with
  | r -> Ok r
  | exception (Failure msg | Invalid_argument msg) -> Error msg
  | exception Codec.Truncated -> Error "short record body"

let read_crc_le r =
  let x = ref 0l in
  for i = 0 to 3 do
    x := Int32.logor !x (Int32.shift_left (Int32.of_int (Codec.read_byte r)) (8 * i))
  done;
  !x

(* ------------------------------------------------------------------ *)
(* reading                                                            *)
(* ------------------------------------------------------------------ *)

type read_result = {
  records : record list;
  valid_bytes : int;  (* header + every fully valid frame *)
  torn : string option;  (* why parsing stopped before the end, if it did *)
}

(* shared parse core: every valid record with the byte offset its frame
   starts at, plus the usual (valid_bytes, torn) verdict *)
let parse_frames contents =
  if String.length contents < header_len then
    ([], 0, Some "missing or short header")
  else if not (String.equal (String.sub contents 0 header_len) header) then
    ([], 0, Some "bad magic/version header")
  else begin
    let total = String.length contents in
    let records = ref [] in
    let valid = ref header_len in
    let torn = ref None in
    (try
       while !valid < total do
         let r = Codec.reader ~pos:!valid contents in
         let body_len = Codec.read_uvarint r in
         let body_start = Codec.pos r in
         if body_len > total - body_start - 4 then raise Codec.Truncated;
         let body = String.sub contents body_start body_len in
         let trailer = Codec.reader ~pos:(body_start + body_len) contents in
         let stored = read_crc_le trailer in
         if not (Int32.equal stored (Codec.crc32 body)) then begin
           torn := Some "crc mismatch";
           raise Exit
         end;
         (match decode_body body with
         | rec_ -> records := (!valid, rec_) :: !records
         | exception (Failure msg | Invalid_argument msg) ->
             torn := Some ("malformed record: " ^ msg);
             raise Exit
         | exception Codec.Truncated ->
             torn := Some "malformed record: short body";
             raise Exit);
         valid := body_start + body_len + 4
       done
     with
    | Codec.Truncated -> torn := Some "truncated record (torn tail)"
    | Exit -> ());
    (List.rev !records, !valid, !torn)
  end

let parse contents =
  let records, valid_bytes, torn = parse_frames contents in
  { records = List.map snd records; valid_bytes; torn }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let read path =
  if not (Sys.file_exists path) then
    { records = []; valid_bytes = 0; torn = None }
  else parse (read_file path)

(* ------------------------------------------------------------------ *)
(* position-addressed streaming read (replication tailing)            *)
(* ------------------------------------------------------------------ *)

type tail = {
  tail_records : record list;  (* valid records from [offset] on *)
  tail_next : int;  (* the next durable offset: header + all valid frames *)
  tail_torn : string option;  (* same verdict [read] would report *)
}

let tail_from path ~offset =
  if not (Sys.file_exists path) then Error ("no journal at " ^ path)
  else begin
    let frames, valid_bytes, torn = parse_frames (read_file path) in
    if valid_bytes = 0 then
      Error (Option.value torn ~default:"empty journal")
    else begin
      let offset = if offset = 0 then header_len else offset in
      if offset = valid_bytes then
        Ok { tail_records = []; tail_next = valid_bytes; tail_torn = torn }
      else begin
        let rec suffix = function
          | (off, _) :: _ as fs when off = offset -> Some (List.map snd fs)
          | _ :: rest -> suffix rest
          | [] -> None
        in
        match suffix frames with
        | Some records ->
            Ok { tail_records = records; tail_next = valid_bytes; tail_torn = torn }
        | None ->
            Error
              (Printf.sprintf
                 "offset %d is not a frame boundary (durable end %d)" offset
                 valid_bytes)
      end
    end
  end

let read_slice path ~pos ~len =
  if len < 0 || pos < 0 then invalid_arg "Journal.read_slice: negative range";
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      let buf = Bytes.create len in
      let got = ref 0 in
      let eof = ref false in
      while (not !eof) && !got < len do
        match Unix.read fd buf !got (len - !got) with
        | 0 -> eof := true
        | n -> got := !got + n
      done;
      Bytes.sub_string buf 0 !got)

let truncate_torn path result =
  match result.torn with
  | None -> ()
  | Some _ ->
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.ftruncate fd result.valid_bytes;
          Unix.fsync fd)

(* ------------------------------------------------------------------ *)
(* writing                                                            *)
(* ------------------------------------------------------------------ *)

type writer = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  sync_every : int;
  mutable unsynced : int;  (* records appended since the last fsync *)
  mutable appended : int;
  mutable written_bytes : int;  (* bytes pushed to the fd, fsynced or not *)
  mutable durable_bytes : int;  (* bytes covered by the last fsync *)
  mutable closed : bool;
}

let flush_buf w =
  let s = Buffer.contents w.buf in
  Buffer.clear w.buf;
  let len = String.length s in
  let written = ref 0 in
  while !written < len do
    written :=
      !written + Unix.write_substring w.fd s !written (len - !written)
  done;
  w.written_bytes <- w.written_bytes + len

let sync w =
  if w.closed then invalid_arg "Journal.sync: writer is closed";
  flush_buf w;
  if w.unsynced > 0 then Unix.fsync w.fd;
  w.unsynced <- 0;
  w.durable_bytes <- w.written_bytes

let open_writer ?(sync_every = 32) path =
  if sync_every < 1 then invalid_arg "Journal.open_writer: sync_every >= 1";
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let w =
    {
      fd;
      buf = Buffer.create 256;
      sync_every;
      unsynced = 0;
      appended = 0;
      written_bytes = size;
      durable_bytes = size;
      closed = false;
    }
  in
  if size < header_len then begin
    (* fresh (or header-torn) file: start from a clean header *)
    Unix.ftruncate fd 0;
    w.written_bytes <- 0;
    w.durable_bytes <- 0;
    Buffer.add_string w.buf header;
    flush_buf w;
    Unix.fsync fd;
    w.durable_bytes <- w.written_bytes
  end
  else ignore (Unix.lseek fd 0 Unix.SEEK_END);
  w

let durable_offset w = w.durable_bytes

let append w r =
  if w.closed then invalid_arg "Journal.append: writer is closed";
  frame w.buf r;
  w.appended <- w.appended + 1;
  w.unsynced <- w.unsynced + 1;
  if w.unsynced >= w.sync_every then sync w

let append_raw w s =
  if w.closed then invalid_arg "Journal.append_raw: writer is closed";
  Buffer.add_string w.buf s;
  w.unsynced <- w.unsynced + 1;
  if w.unsynced >= w.sync_every then sync w

let appended w = w.appended

let close w =
  if not w.closed then begin
    sync w;
    w.closed <- true;
    Unix.close w.fd
  end

(* ------------------------------------------------------------------ *)
(* snapshot blobs                                                     *)
(* ------------------------------------------------------------------ *)

let blob_magic = "MSPARSNP"

let write_blob path payload =
  let buf = Buffer.create (String.length payload + 32) in
  Buffer.add_string buf blob_magic;
  Buffer.add_char buf version;
  Codec.add_uvarint buf (String.length payload);
  Buffer.add_string buf payload;
  let crc = Codec.crc32 payload in
  for i = 0 to 3 do
    Buffer.add_char buf
      (Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff))
  done;
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let s = Buffer.contents buf in
      let len = String.length s in
      let written = ref 0 in
      while !written < len do
        written := !written + Unix.write_substring fd s !written (len - !written)
      done;
      Unix.fsync fd);
  (* atomic publish: a crash leaves either the old blob or the new one *)
  Unix.rename tmp path

let read_blob path =
  if not (Sys.file_exists path) then None
  else begin
    let contents = read_file path in
    let hl = String.length blob_magic + 1 in
    if String.length contents < hl then None
    else if not (String.equal (String.sub contents 0 (String.length blob_magic)) blob_magic)
    then None
    else begin
      match
        let r = Codec.reader ~pos:hl contents in
        let len = Codec.read_uvarint r in
        let start = Codec.pos r in
        if len > String.length contents - start - 4 then raise Codec.Truncated;
        let payload = String.sub contents start len in
        let trailer = Codec.reader ~pos:(start + len) contents in
        let stored = read_crc_le trailer in
        if Int32.equal stored (Codec.crc32 payload) then Some payload else None
      with
      | res -> res
      | exception Codec.Truncated -> None
    end
  end

(* ------------------------------------------------------------------ *)
(* directory lockfile                                                 *)
(* ------------------------------------------------------------------ *)

(* Two live Durable instances over the same journal dir would interleave
   WAL frames and corrupt each other's replay, so a dir is claimed with
   an O_CREAT|O_EXCL pid file before any WAL fd is opened.  A lock left
   behind by a kill -9'd owner is detected by probing the recorded pid
   (kill 0): if the process is gone — or the file is unparsable — the
   lock is stale and is broken, once.  This is advisory single-host
   locking; it is not meant to survive shared network filesystems.

   Replication fencing rides on the same file: the lockfile records a
   replication epoch next to the pid ("pid epoch", old single-token
   files read as epoch 0).  An epoch-claiming acquire compares epochs
   before liveness: a claimant behind the recorded epoch is refused even
   if the holder is dead (a demoted ex-primary must re-learn the world,
   not seize its old dir), while a strictly newer epoch seizes the lock
   even from a live holder (the promote-over-stale-primary fence). *)

type lock = { lock_path : string; mutable held : bool }

let lock_body ~epoch = Printf.sprintf "%d %d" (Unix.getpid ()) epoch

let parse_lock s =
  match String.split_on_char ' ' (String.trim s) with
  | [ pid ] -> (int_of_string_opt pid, 0)
  | pid :: epoch :: _ ->
      (int_of_string_opt pid, Option.value (int_of_string_opt epoch) ~default:0)
  | [] -> (None, 0)

let lock_path dir = Filename.concat dir "lock.pid"

(* Lock paths held live by this process.  A lockfile recording our own
   pid but absent from this registry was left behind by an abandoned
   in-process incarnation (the crash-simulation suites "kill" a Durable
   without process death) and counts as stale, while a registered path
   is genuinely contended. *)
let live_locks : (string, unit) Hashtbl.t = Hashtbl.create 8

let holder_alive ~path pid =
  if pid = Unix.getpid () then Hashtbl.mem live_locks path
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.EPERM, _, _) -> true  (* alive, not ours *)
    | exception Unix.Unix_error (_, _, _) -> false

let try_claim ~epoch path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let s = lock_body ~epoch in
          let n = Unix.write_substring fd s 0 (String.length s) in
          if n <> String.length s then failwith "short write to lockfile");
      true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false

let acquire_lock ?epoch dir =
  let path = lock_path dir in
  let claim_epoch = Option.value epoch ~default:0 in
  let claimed () =
    Hashtbl.replace live_locks path ();
    Ok { lock_path = path; held = true }
  in
  let break_and_claim () =
    (try Sys.remove path with Sys_error _ -> ());
    if try_claim ~epoch:claim_epoch path then claimed ()
    else Error (Printf.sprintf "journal dir lock contended (%s)" path)
  in
  if try_claim ~epoch:claim_epoch path then claimed ()
  else begin
    let holder, held_epoch =
      match read_file path with
      | s -> parse_lock s
      | exception Sys_error _ -> (None, 0)
    in
    match (epoch, holder) with
    | Some e, _ when e < held_epoch ->
        (* fenced: the dir has moved to a newer epoch — even a dead
           holder's lock refuses a claimant from the past *)
        Error
          (Printf.sprintf
             "journal dir fenced: lock epoch %d ahead of claimed %d (%s)"
             held_epoch e path)
    | Some e, _ when e > held_epoch ->
        (* promotion fence: a strictly newer epoch seizes the dir, live
           holder or not — the stale primary has already been superseded *)
        break_and_claim ()
    | _, Some pid when holder_alive ~path pid ->
        Error (Printf.sprintf "journal dir locked by pid %d (%s)" pid path)
    | _, _ ->
        (* stale: owner is dead or the file is garbage — break it once *)
        break_and_claim ()
  end

let refresh_lock_epoch l epoch =
  if l.held then begin
    let fd =
      Unix.openfile l.lock_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let s = lock_body ~epoch in
        ignore (Unix.write_substring fd s 0 (String.length s)))
  end

let release_lock l =
  if l.held then begin
    l.held <- false;
    Hashtbl.remove live_locks l.lock_path;
    try Sys.remove l.lock_path with Sys_error _ -> ()
  end

let ensure_dir path =
  let rec go p =
    if not (String.equal p "" || String.equal p "/" || String.equal p ".")
       && not (Sys.file_exists p)
    then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path
