(** Persistent, lazily-started domain pool.

    [Domain.spawn] costs tens of microseconds and a fresh minor heap per
    domain; paying it on every sparsification makes the parallel
    construction path lose to the sequential one on all but the largest
    instances.  A {!t} owns [size - 1] long-lived worker domains (the
    caller itself is worker 0) that park on a condition variable between
    jobs, so the spawn cost is amortised across every parallel call in the
    process.

    Workers are spawned lazily on the first {!parallel_for_ranges} call; a
    pool of size 1 never spawns anything and runs every chunk on the
    caller — the graceful single-domain fallback.  If the runtime's domain
    limit prevents some workers from spawning, the pool silently degrades
    to the workers it got.

    Pools are meant to be driven by one orchestrating domain at a time;
    concurrent {!parallel_for_ranges} calls on the same pool from several
    domains are not supported. *)

type t

val create : ?num_domains:int -> unit -> t
(** [create ()] makes a pool of {!default_size} workers (including the
    caller); [~num_domains] overrides the size.  No domain is spawned
    until the first parallel call.
    @raise Invalid_argument if [num_domains] is outside [\[1, 128\]]. *)

val size : t -> int
(** Total worker count including the caller; fixed at creation. *)

val default_size : unit -> int
(** The [MSPAR_DOMAINS] environment override when set to an integer in
    [\[1, 128\]], otherwise [Domain.recommended_domain_count ()].  An
    invalid value is ignored with a warning on stderr. *)

val get_default : unit -> t
(** The process-wide shared pool (created on first use, size
    {!default_size}); its workers are joined automatically at exit.
    {!Mspar_graph}-level builders and the core pipeline reuse this pool so
    one process pays one spawn cost total. *)

val parallel_for_ranges :
  t -> ?chunks:int -> n:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit
(** [parallel_for_ranges t ~chunks ~n f] splits [\[0, n)] into [chunks]
    contiguous ranges (default: [size t]) and calls [f ~chunk ~lo ~hi]
    exactly once per range, distributing ranges across the pool's workers;
    ranges may be empty when [n < chunks].  Range [k] is
    [chunk_bounds ~chunks ~n k], so repeated calls with the same
    [(chunks, n)] see identical ranges — phases of a multi-pass algorithm
    can rely on stable chunk ownership.  Blocks until every worker has
    drained its share of the ranges; if a chunk raises, that worker's
    remaining chunks are abandoned and one of the raised exceptions is
    re-raised once every worker has stopped (the pool itself stays
    usable).  Chunks run concurrently and must write disjoint locations.
    @raise Invalid_argument if [chunks < 1] or [n < 0]. *)

val chunk_bounds : chunks:int -> n:int -> int -> (int * int)
(** [chunk_bounds ~chunks ~n k] is the [k]-th range [(lo, hi)] of the
    deterministic split used by {!parallel_for_ranges}: contiguous, in
    order, covering [\[0, n)], sizes differing by at most one.
    @raise Invalid_argument if [chunks < 1], [n < 0] or [k] is out of
    range. *)

val shutdown : t -> unit
(** Ask the worker domains to quit and join them.  Idempotent; the pool
    restarts lazily if used again afterwards.  Must not be called while a
    {!parallel_for_ranges} call is in flight on the pool. *)
