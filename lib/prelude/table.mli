(** Fixed-width text tables for the benchmark harness output.

    Columns are sized to their widest cell; numbers are right-aligned, text
    left-aligned.  The harness prints one table per experiment, mirroring how
    the paper's claims would appear as evaluation tables. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row length differs from the header. *)

val add_rule : t -> unit
(** Horizontal separator between row groups. *)

val print : ?oc:out_channel -> t -> unit

val to_csv : t -> string
(** The table as CSV (header row + data rows; rules are skipped; cells
    containing commas or quotes are quoted). *)

val title : t -> string

val cell_f : float -> string
(** Compact float formatting ("%.3g" with fixed-point for moderate
    magnitudes). *)

val cell_i : int -> string
val cell_b : bool -> string
