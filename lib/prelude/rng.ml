type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used only to expand a seed into the 256-bit xoshiro state and
   to derive split streams. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  (* xoshiro must not start at the all-zero state; splitmix64 outputs are
     zero only for specific inputs, and never four in a row. *)
  { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

(* Split-seed derivation: a splitmix64-style finalizer over (seed, i).
   Cheap, well-mixed, and — unlike [split] — a pure function of its
   arguments, so the stream of entity [i] can be recreated at any time
   without replaying the streams of entities 0..i-1.  This is the
   discipline that makes per-vertex marking locally replayable (the LCA
   oracle re-derives exactly the stream the batch builder consumed). *)
let derive ~seed i =
  create
    (Int64.to_int
       (Int64.add
          (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
          (Int64.mul (Int64.of_int (i + 1)) 0xBF58476D1CE4E5B9L)))
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }
let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let of_state a =
  if Array.length a <> 4 then invalid_arg "Rng.of_state: expected 4 words";
  if Array.for_all (fun w -> Int64.equal w 0L) a then
    invalid_arg "Rng.of_state: all-zero state";
  { s0 = a.(0); s1 = a.(1); s2 = a.(2); s3 = a.(3) }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

(* Non-negative 62-bit value, convenient for OCaml's 63-bit ints. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let fill_bits62 t a ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Rng.fill_bits62: range out of bounds";
  for i = pos to pos + len - 1 do
    Array.unsafe_set a i (bits62 t)
  done

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits62 t land (bound - 1)
  else begin
    (* rejection sampling on 62-bit values *)
    let max62 = (1 lsl 62) - 1 in
    let limit = max62 - (max62 mod bound) in
    let rec draw () =
      let v = bits62 t in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

(* [int] over an externally supplied word stream.  Must stay in lockstep
   with [int] above word for word (same power-of-two mask, same rejection
   limit): the batched sampler's bit-for-bit equivalence with the unbatched
   path rests on it, and the QCheck suite pins the two together.  Kept as a
   separate copy rather than routing [int] through a closure — [int] is on
   the per-draw hot path and must not allocate. *)
let int_with ~next bound =
  if bound <= 0 then invalid_arg "Rng.int_with: bound must be positive";
  if bound land (bound - 1) = 0 then next () land (bound - 1)
  else begin
    let max62 = (1 lsl 62) - 1 in
    let limit = max62 - (max62 mod bound) in
    let rec draw () =
      let v = next () in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (float_of_int x *. (1.0 /. 9007199254740992.0))

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct t ~k ~n =
  if n < 0 then invalid_arg "Rng.sample_distinct: n < 0";
  let k = Int.min k n in
  if k <= 0 then [||]
  else begin
    (* Virtual Fisher–Yates: positions that have been swapped are recorded in
       a hashtable, everything else is implicitly at its own index. *)
    let moved = Hashtbl.create (2 * k) in
    let value_at i = match Hashtbl.find_opt moved i with Some v -> v | None -> i in
    let out = Array.make k 0 in
    for step = 0 to k - 1 do
      let last = n - 1 - step in
      let j = int t (last + 1) in
      let vj = value_at j in
      let vlast = value_at last in
      Hashtbl.replace moved j vlast;
      Hashtbl.replace moved last vj;
      out.(step) <- vj
    done;
    out
  end

let perm t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a
