(* Monomorphic introsort over int arrays.

   [Array.sort compare] calls the polymorphic comparator through a closure
   on every comparison; on the packed-edge hot path that is the dominant
   cost.  This is the standard introsort recipe: median-of-three quicksort,
   heapsort once the recursion depth exceeds 2·log2 n (killing the
   quadratic adversary), and one final insertion pass over the small
   unsorted runs the quicksort leaves behind. *)

let cutoff = 16

let swap a i j =
  let t = Array.unsafe_get a i in
  Array.unsafe_set a i (Array.unsafe_get a j);
  Array.unsafe_set a j t

(* scan left from [j], shifting entries greater than [v] one slot right;
   returns the slot where [v] belongs.  Tail-recursive so the insertion
   loop allocates nothing per element. *)
let rec shift_right a lo j v =
  if j >= lo && Array.unsafe_get a j > v then begin
    Array.unsafe_set a (j + 1) (Array.unsafe_get a j);
    shift_right a lo (j - 1) v
  end
  else j + 1

(* straight insertion over the inclusive range [lo, hi] *)
let insertion a lo hi =
  for i = lo + 1 to hi do
    let v = Array.unsafe_get a i in
    Array.unsafe_set a (shift_right a lo (i - 1) v) v
  done
[@@hot]

(* sift the element at [root] down its max-heap (of [len] elements based
   at [lo]).  Tail-recursive for the same reason as [shift_right]: the
   heapsort loops call this once per element. *)
let rec sift a lo len root =
  let child = (2 * root) + 1 in
  if child < len then begin
    let child =
      if
        child + 1 < len
        && Array.unsafe_get a (lo + child) < Array.unsafe_get a (lo + child + 1)
      then child + 1
      else child
    in
    if Array.unsafe_get a (lo + root) < Array.unsafe_get a (lo + child) then begin
      swap a (lo + root) (lo + child);
      sift a lo len child
    end
  end

(* max-heapsort over the inclusive range [lo, hi] *)
let heapsort a lo hi =
  let n = hi - lo + 1 in
  for i = (n / 2) - 1 downto 0 do
    sift a lo n i
  done;
  for i = n - 1 downto 1 do
    swap a lo (lo + i);
    sift a lo i 0
  done
[@@hot]

let rec intro a lo hi depth =
  if hi - lo >= cutoff then
    if depth = 0 then heapsort a lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap a mid lo;
      if a.(hi) < a.(lo) then swap a hi lo;
      if a.(hi) < a.(mid) then swap a hi mid;
      let pivot = a.(mid) in
      (* Hoare partition: the pivot value itself stops both scans, so the
         cursors stay inside [lo, hi] *)
      let i = ref (lo - 1) and j = ref (hi + 1) in
      let crossed = ref false in
      while not !crossed do
        incr i;
        while Array.unsafe_get a !i < pivot do
          incr i
        done;
        decr j;
        while Array.unsafe_get a !j > pivot do
          decr j
        done;
        if !i >= !j then crossed := true else swap a !i !j
      done;
      let p = !j in
      (* recurse on the smaller half first: O(log n) stack even when the
         partition is lopsided *)
      if p - lo < hi - p then begin
        intro a lo p (depth - 1);
        intro a (p + 1) hi (depth - 1)
      end
      else begin
        intro a (p + 1) hi (depth - 1);
        intro a lo p (depth - 1)
      end
    end
[@@hot]

let sort_range a ~pos ~len =
  if pos < 0 || len < 0 || pos > Array.length a - len then
    invalid_arg "Isort.sort_range: range out of bounds";
  if len > 1 then begin
    let depth = ref 0 and n = ref len in
    while !n > 1 do
      incr depth;
      n := !n lsr 1
    done;
    intro a pos (pos + len - 1) (2 * !depth);
    insertion a pos (pos + len - 1)
  end
[@@hot]

let sort a = sort_range a ~pos:0 ~len:(Array.length a)

let is_sorted_range a ~pos ~len =
  if pos < 0 || len < 0 || pos > Array.length a - len then
    invalid_arg "Isort.is_sorted_range: range out of bounds";
  let ok = ref true in
  for i = pos + 1 to pos + len - 1 do
    if a.(i - 1) > a.(i) then ok := false
  done;
  !ok

let is_sorted a = is_sorted_range a ~pos:0 ~len:(Array.length a)
