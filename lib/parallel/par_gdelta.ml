open Mspar_prelude
open Mspar_graph

(* splitmix64-style finalizer over (seed, v): cheap, well-mixed, and
   independent streams per vertex *)
let vertex_rng ~seed v =
  let mix =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.mul (Int64.of_int (v + 1)) 0xBF58476D1CE4E5B9L)
  in
  Rng.create (Int64.to_int mix)

(* exact mark count for a vertex range under the §3.1 rule — sizes the
   packed buffer in one allocation *)
let marks_in_range g ~delta lo hi =
  let total = ref 0 in
  for v = lo to hi - 1 do
    let d = Graph.degree g v in
    total := !total + (if d <= 2 * delta then d else delta)
  done;
  !total

(* Packed per-range collector: each mark is one [v lsl shift lor u] int in
   a flat per-domain buffer; sampled reads are charged in one batched
   atomic probe update per vertex, so parallel probe totals stay exact
   without an atomic operation per read. *)
let collect_range_packed g ~seed ~delta ~shift lo hi =
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let buf =
    Edgebuf.create
      ~initial_capacity:(Int.max 16 (marks_in_range g ~delta lo hi))
      ()
  in
  for v = lo to hi - 1 do
    let d = Graph.degree g v in
    let base = v lsl shift in
    if d <= 2 * delta then
      Graph.iter_neighbors g v (fun u -> Edgebuf.push buf (base lor u))
    else begin
      let rng = vertex_rng ~seed v in
      Graph.add_probes g delta;
      Sampling.sample_indices sampler rng ~n:d ~k:delta ~f:(fun i ->
          Edgebuf.push buf (base lor Graph.neighbor_uncounted g v i))
    end
  done;
  buf

(* boxed fallback for vertex counts beyond the packable range *)
let collect_range_list g ~seed ~delta lo hi =
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let acc = ref [] in
  for v = lo to hi - 1 do
    let d = Graph.degree g v in
    if d <= 2 * delta then
      Graph.iter_neighbors g v (fun u -> acc := (v, u) :: !acc)
    else begin
      let rng = vertex_rng ~seed v in
      Sampling.sample_indices sampler rng ~n:d ~k:delta ~f:(fun i ->
          acc := (v, Graph.neighbor g v i) :: !acc)
    end
  done;
  !acc

let sequential ~seed g ~delta =
  if delta < 1 then invalid_arg "Par_gdelta: delta >= 1";
  let nv = Graph.n g in
  match Graph.pack_shift ~n:nv with
  | Some shift ->
      Graph.of_edgebuf ~n:nv (collect_range_packed g ~seed ~delta ~shift 0 nv)
  | None -> Graph.of_edges ~n:nv (collect_range_list g ~seed ~delta 0 nv)

let default_domains () = Int.min 8 (Domain.recommended_domain_count ())

let sparsify ?num_domains ~seed g ~delta =
  if delta < 1 then invalid_arg "Par_gdelta: delta >= 1";
  let nd = Int.max 1 (match num_domains with Some d -> d | None -> default_domains ()) in
  let nv = Graph.n g in
  if nd = 1 || nv < 2 * nd then sequential ~seed g ~delta
  else begin
    match Graph.pack_shift ~n:nv with
    | None ->
        (* overflow guard tripped: boxed fallback, still deterministic *)
        let chunk = (nv + nd - 1) / nd in
        let worker i () =
          let lo = i * chunk and hi = Int.min nv ((i + 1) * chunk) in
          if lo >= hi then [] else collect_range_list g ~seed ~delta lo hi
        in
        let domains =
          List.init (nd - 1) (fun i -> Domain.spawn (worker (i + 1)))
        in
        let first = worker 0 () in
        let rest = List.map Domain.join domains in
        Graph.of_edges ~n:nv (List.concat (first :: rest))
    | Some shift ->
        (* Workers only read the CSR arrays; probe accounting goes through
           the graph's atomic counter (batched per vertex), so totals are
           exact in parallel mode.  The sparsifier content depends only on
           (seed, v) and is race-free. *)
        let chunk = (nv + nd - 1) / nd in
        let worker i () =
          let lo = i * chunk and hi = Int.min nv ((i + 1) * chunk) in
          if lo >= hi then Edgebuf.create ~initial_capacity:1 ()
          else collect_range_packed g ~seed ~delta ~shift lo hi
        in
        let domains =
          List.init (nd - 1) (fun i -> Domain.spawn (worker (i + 1)))
        in
        let first = worker 0 () in
        let rest = List.map Domain.join domains in
        (* concatenate per-domain buffers into one flat code array, in
           domain (= vertex) order, and hand it to the counting-sort CSR
           builder *)
        let bufs = first :: rest in
        let total =
          List.fold_left (fun acc b -> acc + Edgebuf.length b) 0 bufs
        in
        let codes = Array.make (Int.max total 1) 0 in
        let pos = ref 0 in
        List.iter
          (fun b ->
            Edgebuf.blit_into b codes !pos;
            pos := !pos + Edgebuf.length b)
          bufs;
        Graph.of_packed ~n:nv ~len:total codes
  end

let time_comparison ~seed g ~delta ~domains =
  List.map
    (fun d ->
      let _, ns =
        Clock.time_ns (fun () -> ignore (sparsify ~num_domains:d ~seed g ~delta))
      in
      (d, Clock.ns_to_ms ns))
    domains
