open Mspar_prelude
open Mspar_graph

(* Split-seed per-vertex streams: the shared derivation lives in
   [Rng.derive] so the LCA oracle replays exactly this stream. *)
let vertex_rng ~seed v = Rng.derive ~seed v

(* exact mark count for a vertex range under the §3.1 rule — sizes the
   packed buffer in one allocation *)
let marks_in_range g ~delta lo hi =
  let total = ref 0 in
  for v = lo to hi - 1 do
    let d = Graph.degree g v in
    total := !total + (if d <= 2 * delta then d else delta)
  done;
  !total
[@@hot]

(* Adjacency span (in CSR words) a marking block may touch before moving
   on — an L2-sized working set; see the Gdelta twin of this constant. *)
let l2_block_words = 32768

(* Packed per-range collector: each mark is one [v lsl shift lor u] int in
   a flat per-domain buffer.  The range is walked in CSR-contiguous
   cache-sized blocks; per block, the buffer is grown once
   ([ensure_capacity] + [push_unchecked]) and the graph's atomic probe
   counter is charged once, so parallel probe totals stay exact with one
   atomic operation per block rather than per vertex.  Mark content is
   untouched by the blocking: each vertex still draws from its own
   [vertex_rng] stream, so emission order (v ascending, draw order within
   v) is bit-for-bit what the unblocked loop produced. *)
let collect_range_packed g ~seed ~delta ~shift lo hi =
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let buf =
    Edgebuf.create
      ~initial_capacity:(Int.max 16 (marks_in_range g ~delta lo hi))
      ()
  in
  let idx = Array.make (Int.max 1 delta) 0 in
  (* hoisted out of the block closure so no ref cell is allocated per
     block — reset at block entry, charged at block exit *)
  let probes = ref 0 in
  Graph.iter_vertex_blocks g ~lo ~hi ~extent:l2_block_words (fun blo bhi ->
      Edgebuf.ensure_capacity buf
        (Edgebuf.length buf + marks_in_range g ~delta blo bhi);
      probes := 0;
      for v = blo to bhi - 1 do
        let d = Graph.degree g v in
        let base = v lsl shift in
        if d <= 2 * delta then begin
          (* the copy loop lives in Graph: no closure allocated or called
             per vertex *)
          probes := !probes + d;
          Graph.append_neighbors_uncounted g v ~base buf
        end
        else begin
          let rng = vertex_rng ~seed v in
          probes := !probes + delta;
          Sampling.sample_indices_into sampler rng ~n:d ~k:delta ~out:idx;
          for s = 0 to delta - 1 do
            Edgebuf.push_unchecked buf
              (base lor Graph.neighbor_uncounted g v (Array.unsafe_get idx s))
          done
        end
      done;
      Graph.add_probes g !probes);
  buf
[@@hot]

(* Boxed fallback for vertex counts beyond the packable range.  The final
   [List.rev] restores emission order (v ascending, then adjacency/draw
   order within v) so this path feeds the builder in exactly the order the
   packed collector pushes codes — the two fallbacks stay diff-testable
   against each other mark-for-mark, not just graph-for-graph. *)
let collect_range_list g ~seed ~delta lo hi =
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let acc = ref [] in
  for v = lo to hi - 1 do
    let d = Graph.degree g v in
    if d <= 2 * delta then
      Graph.iter_neighbors g v (fun u -> acc := (v, u) :: !acc)
    else begin
      let rng = vertex_rng ~seed v in
      Sampling.sample_indices sampler rng ~n:d ~k:delta ~f:(fun i ->
          acc := (v, Graph.neighbor g v i) :: !acc)
    end
  done;
  List.rev !acc

let sequential ~seed g ~delta =
  if delta < 1 then invalid_arg "Par_gdelta: delta >= 1";
  let nv = Graph.n g in
  match Graph.pack_shift ~n:nv with
  | Some shift ->
      Graph.of_edgebuf ~n:nv (collect_range_packed g ~seed ~delta ~shift 0 nv)
  | None -> Graph.of_edges ~n:nv (collect_range_list g ~seed ~delta 0 nv)

let default_domains () = Pool.default_size ()

let sparsify ?pool ?num_domains ~seed g ~delta =
  if delta < 1 then invalid_arg "Par_gdelta: delta >= 1";
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  let nd =
    Int.max 1 (match num_domains with Some d -> d | None -> Pool.size pool)
  in
  let nv = Graph.n g in
  if nd = 1 then sequential ~seed g ~delta
  else begin
    match Graph.pack_shift ~n:nv with
    | None ->
        (* overflow guard tripped: boxed fallback, still deterministic —
           chunks are concatenated in vertex order *)
        let parts = Array.make nd [] in
        Pool.parallel_for_ranges pool ~chunks:nd ~n:nv
          (fun ~chunk ~lo ~hi ->
            if lo < hi then parts.(chunk) <- collect_range_list g ~seed ~delta lo hi);
        Graph.of_edges ~n:nv (List.concat (Array.to_list parts))
    | Some shift ->
        (* Workers only read the CSR arrays; probe accounting goes through
           the graph's atomic counter (batched per vertex), so totals are
           exact in parallel mode.  The sparsifier content depends only on
           (seed, v) and is race-free; the canonical parallel CSR build
           makes the result invariant in both the chunk count and the pool
           size. *)
        let bufs =
          Array.init nd (fun _ -> Edgebuf.create ~initial_capacity:1 ())
        in
        Pool.parallel_for_ranges pool ~chunks:nd ~n:nv
          (fun ~chunk ~lo ~hi ->
            if lo < hi then
              bufs.(chunk) <- collect_range_packed g ~seed ~delta ~shift lo hi);
        (* per-domain buffers feed the parallel CSR builder directly — no
           concatenation copy, no sequential counting sort *)
        Graph.of_edgebufs_par ~pool ~n:nv bufs
  end
[@@domain_safe
  "each chunk writes only its own parts.(chunk)/bufs.(chunk) slot; the \
   collectors read shared CSR lanes and charge probes atomically"]

let time_comparison ~seed g ~delta ~domains =
  List.map
    (fun d ->
      let pool = Pool.create ~num_domains:d () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          (* warm-up: pay the lazy Domain.spawn cost outside the timer, as
             a long-running process would *)
          ignore (sparsify ~pool ~seed g ~delta);
          let _, ns =
            Clock.time_ns (fun () -> ignore (sparsify ~pool ~seed g ~delta))
          in
          (d, Clock.ns_to_ms ns)))
    domains
