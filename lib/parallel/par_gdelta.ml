open Mspar_prelude
open Mspar_graph

(* splitmix64-style finalizer over (seed, v): cheap, well-mixed, and
   independent streams per vertex *)
let vertex_rng ~seed v =
  let mix =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.mul (Int64.of_int (v + 1)) 0xBF58476D1CE4E5B9L)
  in
  Rng.create (Int64.to_int mix)

(* mark one vertex into [push]; the §3.1 rule (keep everything at degree
   <= 2*delta) *)
let mark_vertex g ~seed ~delta ~sampler v push =
  let d = Graph.degree g v in
  if d <= 2 * delta then Graph.iter_neighbors g v (fun u -> push (v, u))
  else begin
    let rng = vertex_rng ~seed v in
    Sampling.sample_indices sampler rng ~n:d ~k:delta ~f:(fun i ->
        push (v, Graph.neighbor g v i))
  end

let collect_range g ~seed ~delta lo hi =
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let acc = ref [] in
  for v = lo to hi - 1 do
    mark_vertex g ~seed ~delta ~sampler v (fun pair -> acc := pair :: !acc)
  done;
  !acc

let sequential ~seed g ~delta =
  if delta < 1 then invalid_arg "Par_gdelta: delta >= 1";
  Graph.of_edges ~n:(Graph.n g) (collect_range g ~seed ~delta 0 (Graph.n g))

let default_domains () = min 8 (Domain.recommended_domain_count ())

let sparsify ?num_domains ~seed g ~delta =
  if delta < 1 then invalid_arg "Par_gdelta: delta >= 1";
  let nd = max 1 (match num_domains with Some d -> d | None -> default_domains ()) in
  let nv = Graph.n g in
  if nd = 1 || nv < 2 * nd then sequential ~seed g ~delta
  else begin
    (* NOTE: workers only read the CSR arrays and the probe counter; the
       counter is a plain int field, so parallel increments may race and the
       probe total can under-count in parallel mode.  The sparsifier content
       itself depends only on (seed, v) and is race-free. *)
    let chunk = (nv + nd - 1) / nd in
    let worker i () =
      let lo = i * chunk and hi = min nv ((i + 1) * chunk) in
      if lo >= hi then [] else collect_range g ~seed ~delta lo hi
    in
    let domains =
      List.init (nd - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    let first = worker 0 () in
    let rest = List.map Domain.join domains in
    Graph.of_edges ~n:nv (List.concat (first :: rest))
  end

let time_comparison ~seed g ~delta ~domains =
  List.map
    (fun d ->
      let _, ns =
        Clock.time_ns (fun () -> ignore (sparsify ~num_domains:d ~seed g ~delta))
      in
      (d, Clock.ns_to_ms ns))
    domains
