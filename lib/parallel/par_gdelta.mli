(** Multicore construction of G_Δ (OCaml 5 domains).

    The sparsifier construction is embarrassingly parallel: each vertex's
    marking is independent of every other vertex's (the very independence the
    proof of Theorem 2.1 exploits).  This module partitions the vertex set
    across domains, each marking its vertices into a private buffer; buffers
    are concatenated at the end.

    Determinism across schedules: every vertex derives its own generator
    from [(seed, v)] by a splitmix-style hash, so the output is a pure
    function of [(seed, g, delta)] — identical for any number of domains,
    and identical to the sequential reference {!sequential}.  (This is the
    standard counter-based-RNG recipe for reproducible parallel Monte
    Carlo.)

    Marks are collected into per-domain packed {!Mspar_prelude.Edgebuf}
    buffers (one int per mark), concatenated into a single flat array at
    join, and turned into a CSR graph by {!Graph.of_packed} — no boxed
    lists anywhere.  Probe accounting goes through the graph's atomic
    counter with one batched update per sampled vertex, so parallel probe
    totals are exact, not racy under-counts. *)

open Mspar_graph

val vertex_rng : seed:int -> int -> Mspar_prelude.Rng.t
(** The per-vertex generator; exposed so tests can pin the contract. *)

val sequential : seed:int -> Graph.t -> delta:int -> Graph.t
(** Single-domain reference with the per-vertex seeding discipline.  Uses
    the §3.1 mark-all-at-most-2Δ rule, like {!Mspar_core.Gdelta}.
    @raise Invalid_argument if [delta < 1]. *)

val sparsify : ?num_domains:int -> seed:int -> Graph.t -> delta:int -> Graph.t
(** Parallel construction over [num_domains] domains (default:
    [Domain.recommended_domain_count ()], capped at 8).  Output is equal to
    {!sequential} with the same seed.
    @raise Invalid_argument if [delta < 1]. *)

val time_comparison :
  seed:int -> Graph.t -> delta:int -> domains:int list -> (int * float) list
(** [(d, milliseconds)] per domain count — the speedup curve for the
    benchmark harness. *)
