(** Multicore construction of G_Δ (OCaml 5 domains).

    The sparsifier construction is embarrassingly parallel: each vertex's
    marking is independent of every other vertex's (the very independence the
    proof of Theorem 2.1 exploits).  This module partitions the vertex set
    across the chunks of a persistent {!Mspar_prelude.Pool}, each chunk
    marking its vertices into a private packed buffer; the buffers feed the
    parallel CSR builder {!Graph.of_edgebufs_par} directly, so neither the
    buffer concatenation nor the counting sort ever runs sequentially, and
    the pool's worker domains are spawned once per process rather than once
    per call.

    Determinism across schedules: every vertex derives its own generator
    from [(seed, v)] by a splitmix-style hash, so the output is a pure
    function of [(seed, g, delta)] — identical for any number of domains,
    any chunk count, and identical to the sequential reference
    {!sequential}.  (This is the standard counter-based-RNG recipe for
    reproducible parallel Monte Carlo.)

    Probe accounting goes through the graph's atomic counter with one
    batched update per sampled vertex, so parallel probe totals are exact,
    not racy under-counts. *)

open Mspar_prelude
open Mspar_graph

val vertex_rng : seed:int -> int -> Rng.t
(** The per-vertex generator — {!Mspar_prelude.Rng.derive} applied to
    [(seed, v)]; exposed so tests can pin the contract that this module,
    the seeded {!Mspar_core.Gdelta} builders and the LCA replay oracle
    all consume the same stream. *)

val collect_range_list :
  Graph.t -> seed:int -> delta:int -> int -> int -> (int * int) list
(** [collect_range_list g ~seed ~delta lo hi] is the boxed fallback
    collector for vertex counts beyond {!Graph.pack_shift}'s packable
    range: the §3.1 marks of vertices [\[lo, hi)] as [(v, u)] pairs, in
    emission order (vertices ascending; within a vertex, adjacency order
    for the keep-all case and draw order for the sampled case) — the same
    order the packed collector pushes codes.  Exposed so the order
    contract is testable; the packed path is what normally runs. *)

val sequential : seed:int -> Graph.t -> delta:int -> Graph.t
(** Single-domain reference with the per-vertex seeding discipline.  Uses
    the §3.1 mark-all-at-most-2Δ rule, like {!Mspar_core.Gdelta}.
    @raise Invalid_argument if [delta < 1]. *)

val default_domains : unit -> int
(** The default parallelism: {!Mspar_prelude.Pool.default_size} — the
    [MSPAR_DOMAINS] environment override when set, otherwise
    [Domain.recommended_domain_count ()]. *)

val sparsify :
  ?pool:Pool.t -> ?num_domains:int -> seed:int -> Graph.t -> delta:int -> Graph.t
(** Parallel construction over [num_domains] vertex chunks (default: the
    pool's size) executed on [pool] (default: the process-wide
    {!Mspar_prelude.Pool.get_default}).  Output equals {!sequential} with
    the same seed for every pool size and chunk count; with one chunk the
    sequential path runs directly and the pool is never started.
    @raise Invalid_argument if [delta < 1]. *)

val time_comparison :
  seed:int -> Graph.t -> delta:int -> domains:int list -> (int * float) list
(** [(d, milliseconds)] per domain count — the speedup curve for the
    benchmark harness.  Each measurement uses a fresh warmed pool of [d]
    domains, so it reflects the amortised steady state, not the spawn
    cost. *)
