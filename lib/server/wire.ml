open Mspar_prelude

(* Request/response payloads for the `mspar serve` protocol.  A message
   on the socket is one Codec.Frames frame whose body is encoded here:
   a tag byte followed by Codec varints.  Decoders are total — any
   malformed body comes back as [Error], never an exception — because
   the bytes arrive from an untrusted peer. *)

type addr = Unix_path of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_path p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "tcp:%s:%d" h p

let addr_of_string s =
  let tcp rest =
    match String.rindex_opt rest ':' with
    | Some i when i > 0 && i < String.length rest - 1 -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
        | Some _ | None -> Stdlib.Error (Printf.sprintf "bad port in %S" s))
    | _ -> Stdlib.Error (Printf.sprintf "expected HOST:PORT in %S" s)
  in
  if s = "" then Stdlib.Error "empty address"
  else if String.starts_with ~prefix:"unix:" s then
    Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.starts_with ~prefix:"tcp:" s then
    tcp (String.sub s 4 (String.length s - 4))
  else if String.contains s ':' then tcp s
  else Ok (Unix_path s)

type request =
  | Hello of int  (* client id: binds the connection for dedup *)
  | Insert of { rid : int; u : int; v : int }
  | Delete of { rid : int; u : int; v : int }
  | Query_matched of int
  | Query_edge of int * int
  | Query_sparsifier of int * int
  | Checksum
  | Snapshot
  | Drain
  | Stats
  | Ping
  (* replication plane: a follower speaks these to its primary *)
  | Repl_hello of { epoch : int; offset : int }
      (* epoch 0 + offset 0 = fresh follower asking for a bootstrap *)
  | Repl_ack of { offset : int }
  | Promote
  | Role

type digest = {
  op_count : int;
  graph : int64;  (* Graph.checksum of the dynamic graph snapshot *)
  sparsifier : int64;  (* Graph.checksum of the materialised G_Δ *)
  matching : int;  (* matching size *)
}

type summary = {
  accepted : int;
  active : int;
  frames_in : int;
  frames_out : int;
  malformed : int;
  busy_rejections : int;
  ops_applied : int;
  dedup_hits : int;
  queries : int;
  oracle_hits : int;
  oracle_misses : int;
  repl_followers : int;
  repl_lag : int;
  repl_fenced : int;
}

type response =
  | Ack of bool  (* update applied (or deduped); payload = "changed" *)
  | Bool of bool
  | Digest of digest
  | Busy of int  (* backpressure: retry after this many milliseconds *)
  | Draining
  | Ok
  | Stats_reply of summary
  | Error of string
  | Repl_snapshot of {
      epoch : int;  (* primary's replication epoch *)
      op_epoch : int;  (* op count baked into the snapshot *)
      wal_offset : int;  (* durable WAL bytes the snapshot covers *)
      meta : string;  (* encoded Durable config, journaled verbatim *)
      last : bool;  (* final chunk of this bootstrap *)
      chunk : string;  (* snapshot payload slice *)
    }
  | Repl_frames of { epoch : int; start_offset : int; payload : string }
    (* verbatim WAL bytes [start_offset, start_offset + |payload|) *)
  | Repl_fence of { epoch : int }
    (* refused: the primary's epoch is newer than the hello's *)
  | Redirect of string  (* not the primary; retry at this address hint *)
  | Role_reply of { primary : bool; epoch : int; offset : int }

(* ------------------------------------------------------------------ *)
(* encoding                                                           *)
(* ------------------------------------------------------------------ *)

let encode_request buf r =
  match r with
  | Hello client ->
      Buffer.add_char buf '\001';
      Codec.add_uvarint buf client
  | Insert { rid; u; v } ->
      Buffer.add_char buf '\002';
      Codec.add_uvarint buf rid;
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Delete { rid; u; v } ->
      Buffer.add_char buf '\003';
      Codec.add_uvarint buf rid;
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Query_matched v ->
      Buffer.add_char buf '\004';
      Codec.add_uvarint buf v
  | Query_edge (u, v) ->
      Buffer.add_char buf '\005';
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Query_sparsifier (u, v) ->
      Buffer.add_char buf '\006';
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Checksum -> Buffer.add_char buf '\007'
  | Snapshot -> Buffer.add_char buf '\008'
  | Drain -> Buffer.add_char buf '\009'
  | Stats -> Buffer.add_char buf '\010'
  | Ping -> Buffer.add_char buf '\011'
  | Repl_hello { epoch; offset } ->
      Buffer.add_char buf '\012';
      Codec.add_uvarint buf epoch;
      Codec.add_uvarint buf offset
  | Repl_ack { offset } ->
      Buffer.add_char buf '\013';
      Codec.add_uvarint buf offset
  | Promote -> Buffer.add_char buf '\014'
  | Role -> Buffer.add_char buf '\015'
[@@hot]

let encode_response buf r =
  match r with
  | Ack changed ->
      Buffer.add_char buf '\001';
      Buffer.add_char buf (if changed then '\001' else '\000')
  | Bool b ->
      Buffer.add_char buf '\002';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Digest d ->
      Buffer.add_char buf '\003';
      Codec.add_uvarint buf d.op_count;
      Codec.add_int64 buf d.graph;
      Codec.add_int64 buf d.sparsifier;
      Codec.add_uvarint buf d.matching
  | Busy ms ->
      Buffer.add_char buf '\004';
      Codec.add_uvarint buf ms
  | Draining -> Buffer.add_char buf '\005'
  | Ok -> Buffer.add_char buf '\006'
  | Stats_reply s ->
      Buffer.add_char buf '\007';
      Codec.add_uvarint buf s.accepted;
      Codec.add_uvarint buf s.active;
      Codec.add_uvarint buf s.frames_in;
      Codec.add_uvarint buf s.frames_out;
      Codec.add_uvarint buf s.malformed;
      Codec.add_uvarint buf s.busy_rejections;
      Codec.add_uvarint buf s.ops_applied;
      Codec.add_uvarint buf s.dedup_hits;
      Codec.add_uvarint buf s.queries;
      Codec.add_uvarint buf s.oracle_hits;
      Codec.add_uvarint buf s.oracle_misses;
      Codec.add_uvarint buf s.repl_followers;
      Codec.add_uvarint buf s.repl_lag;
      Codec.add_uvarint buf s.repl_fenced
  | Error msg ->
      Buffer.add_char buf '\008';
      Codec.add_string buf msg
  | Repl_snapshot { epoch; op_epoch; wal_offset; meta; last; chunk } ->
      Buffer.add_char buf '\009';
      Codec.add_uvarint buf epoch;
      Codec.add_uvarint buf op_epoch;
      Codec.add_uvarint buf wal_offset;
      Codec.add_string buf meta;
      Buffer.add_char buf (if last then '\001' else '\000');
      Codec.add_string buf chunk
  | Repl_frames { epoch; start_offset; payload } ->
      Buffer.add_char buf '\010';
      Codec.add_uvarint buf epoch;
      Codec.add_uvarint buf start_offset;
      Codec.add_string buf payload
  | Repl_fence { epoch } ->
      Buffer.add_char buf '\011';
      Codec.add_uvarint buf epoch
  | Redirect hint ->
      Buffer.add_char buf '\012';
      Codec.add_string buf hint
  | Role_reply { primary; epoch; offset } ->
      Buffer.add_char buf '\013';
      Buffer.add_char buf (if primary then '\001' else '\000');
      Codec.add_uvarint buf epoch;
      Codec.add_uvarint buf offset
[@@hot]

(* ------------------------------------------------------------------ *)
(* decoding                                                           *)
(* ------------------------------------------------------------------ *)

let read_bool r =
  match Codec.read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> failwith (Printf.sprintf "bad bool byte %d" b)

let total what go body =
  let r = Codec.reader body in
  match
    let v = go r in
    if not (Codec.at_end r) then failwith "trailing bytes";
    v
  with
  | v -> Stdlib.Ok v
  | exception Codec.Truncated -> Stdlib.Error ("short " ^ what)
  | exception Failure msg -> Stdlib.Error ("malformed " ^ what ^ ": " ^ msg)

(* the per-tag parsers are unexported: their [failwith]s are protocol
   verdicts that only ever run under [total], which converts them to
   [Error] results at the exported boundary *)
let request_payload r =
  match Codec.read_byte r with
  | 1 -> Hello (Codec.read_uvarint r)
  | 2 ->
      let rid = Codec.read_uvarint r in
      let u = Codec.read_uvarint r in
      let v = Codec.read_uvarint r in
      Insert { rid; u; v }
  | 3 ->
      let rid = Codec.read_uvarint r in
      let u = Codec.read_uvarint r in
      let v = Codec.read_uvarint r in
      Delete { rid; u; v }
  | 4 -> Query_matched (Codec.read_uvarint r)
  | 5 ->
      let u = Codec.read_uvarint r in
      Query_edge (u, Codec.read_uvarint r)
  | 6 ->
      let u = Codec.read_uvarint r in
      Query_sparsifier (u, Codec.read_uvarint r)
  | 7 -> Checksum
  | 8 -> Snapshot
  | 9 -> Drain
  | 10 -> Stats
  | 11 -> Ping
  | 12 ->
      let epoch = Codec.read_uvarint r in
      let offset = Codec.read_uvarint r in
      Repl_hello { epoch; offset }
  | 13 -> Repl_ack { offset = Codec.read_uvarint r }
  | 14 -> Promote
  | 15 -> Role
  | t -> failwith (Printf.sprintf "unknown request tag %d" t)

let decode_request body = total "request" request_payload body

let response_payload r =
  match Codec.read_byte r with
  | 1 -> Ack (read_bool r)
  | 2 -> Bool (read_bool r)
  | 3 ->
      let op_count = Codec.read_uvarint r in
      let graph = Codec.read_int64 r in
      let sparsifier = Codec.read_int64 r in
      let matching = Codec.read_uvarint r in
      Digest { op_count; graph; sparsifier; matching }
  | 4 -> Busy (Codec.read_uvarint r)
  | 5 -> Draining
  | 6 -> Ok
  | 7 ->
      let accepted = Codec.read_uvarint r in
      let active = Codec.read_uvarint r in
      let frames_in = Codec.read_uvarint r in
      let frames_out = Codec.read_uvarint r in
      let malformed = Codec.read_uvarint r in
      let busy_rejections = Codec.read_uvarint r in
      let ops_applied = Codec.read_uvarint r in
      let dedup_hits = Codec.read_uvarint r in
      let queries = Codec.read_uvarint r in
      let oracle_hits = Codec.read_uvarint r in
      let oracle_misses = Codec.read_uvarint r in
      let repl_followers = Codec.read_uvarint r in
      let repl_lag = Codec.read_uvarint r in
      let repl_fenced = Codec.read_uvarint r in
      Stats_reply
        {
          accepted;
          active;
          frames_in;
          frames_out;
          malformed;
          busy_rejections;
          ops_applied;
          dedup_hits;
          queries;
          oracle_hits;
          oracle_misses;
          repl_followers;
          repl_lag;
          repl_fenced;
        }
  | 8 -> Error (Codec.read_string r)
  | 9 ->
      let epoch = Codec.read_uvarint r in
      let op_epoch = Codec.read_uvarint r in
      let wal_offset = Codec.read_uvarint r in
      let meta = Codec.read_string r in
      let last = read_bool r in
      let chunk = Codec.read_string r in
      Repl_snapshot { epoch; op_epoch; wal_offset; meta; last; chunk }
  | 10 ->
      let epoch = Codec.read_uvarint r in
      let start_offset = Codec.read_uvarint r in
      let payload = Codec.read_string r in
      Repl_frames { epoch; start_offset; payload }
  | 11 -> Repl_fence { epoch = Codec.read_uvarint r }
  | 12 -> Redirect (Codec.read_string r)
  | 13 ->
      let primary = read_bool r in
      let epoch = Codec.read_uvarint r in
      let offset = Codec.read_uvarint r in
      Role_reply { primary; epoch; offset }
  | t -> failwith (Printf.sprintf "unknown response tag %d" t)

let decode_response body = total "response" response_payload body
