open Mspar_prelude

(* Request/response payloads for the `mspar serve` protocol.  A message
   on the socket is one Codec.Frames frame whose body is encoded here:
   a tag byte followed by Codec varints.  Decoders are total — any
   malformed body comes back as [Error], never an exception — because
   the bytes arrive from an untrusted peer. *)

type addr = Unix_path of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_path p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "tcp:%s:%d" h p

type request =
  | Hello of int  (* client id: binds the connection for dedup *)
  | Insert of { rid : int; u : int; v : int }
  | Delete of { rid : int; u : int; v : int }
  | Query_matched of int
  | Query_edge of int * int
  | Query_sparsifier of int * int
  | Checksum
  | Snapshot
  | Drain
  | Stats
  | Ping

type digest = {
  op_count : int;
  graph : int64;  (* Graph.checksum of the dynamic graph snapshot *)
  sparsifier : int64;  (* Graph.checksum of the materialised G_Δ *)
  matching : int;  (* matching size *)
}

type summary = {
  accepted : int;
  active : int;
  frames_in : int;
  frames_out : int;
  malformed : int;
  busy_rejections : int;
  ops_applied : int;
  dedup_hits : int;
  queries : int;
  oracle_hits : int;
  oracle_misses : int;
}

type response =
  | Ack of bool  (* update applied (or deduped); payload = "changed" *)
  | Bool of bool
  | Digest of digest
  | Busy of int  (* backpressure: retry after this many milliseconds *)
  | Draining
  | Ok
  | Stats_reply of summary
  | Error of string

(* ------------------------------------------------------------------ *)
(* encoding                                                           *)
(* ------------------------------------------------------------------ *)

let encode_request buf r =
  match r with
  | Hello client ->
      Buffer.add_char buf '\001';
      Codec.add_uvarint buf client
  | Insert { rid; u; v } ->
      Buffer.add_char buf '\002';
      Codec.add_uvarint buf rid;
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Delete { rid; u; v } ->
      Buffer.add_char buf '\003';
      Codec.add_uvarint buf rid;
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Query_matched v ->
      Buffer.add_char buf '\004';
      Codec.add_uvarint buf v
  | Query_edge (u, v) ->
      Buffer.add_char buf '\005';
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Query_sparsifier (u, v) ->
      Buffer.add_char buf '\006';
      Codec.add_uvarint buf u;
      Codec.add_uvarint buf v
  | Checksum -> Buffer.add_char buf '\007'
  | Snapshot -> Buffer.add_char buf '\008'
  | Drain -> Buffer.add_char buf '\009'
  | Stats -> Buffer.add_char buf '\010'
  | Ping -> Buffer.add_char buf '\011'
[@@hot]

let encode_response buf r =
  match r with
  | Ack changed ->
      Buffer.add_char buf '\001';
      Buffer.add_char buf (if changed then '\001' else '\000')
  | Bool b ->
      Buffer.add_char buf '\002';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Digest d ->
      Buffer.add_char buf '\003';
      Codec.add_uvarint buf d.op_count;
      Codec.add_int64 buf d.graph;
      Codec.add_int64 buf d.sparsifier;
      Codec.add_uvarint buf d.matching
  | Busy ms ->
      Buffer.add_char buf '\004';
      Codec.add_uvarint buf ms
  | Draining -> Buffer.add_char buf '\005'
  | Ok -> Buffer.add_char buf '\006'
  | Stats_reply s ->
      Buffer.add_char buf '\007';
      Codec.add_uvarint buf s.accepted;
      Codec.add_uvarint buf s.active;
      Codec.add_uvarint buf s.frames_in;
      Codec.add_uvarint buf s.frames_out;
      Codec.add_uvarint buf s.malformed;
      Codec.add_uvarint buf s.busy_rejections;
      Codec.add_uvarint buf s.ops_applied;
      Codec.add_uvarint buf s.dedup_hits;
      Codec.add_uvarint buf s.queries;
      Codec.add_uvarint buf s.oracle_hits;
      Codec.add_uvarint buf s.oracle_misses
  | Error msg ->
      Buffer.add_char buf '\008';
      Codec.add_string buf msg
[@@hot]

(* ------------------------------------------------------------------ *)
(* decoding                                                           *)
(* ------------------------------------------------------------------ *)

let read_bool r =
  match Codec.read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> failwith (Printf.sprintf "bad bool byte %d" b)

let total what go body =
  let r = Codec.reader body in
  match
    let v = go r in
    if not (Codec.at_end r) then failwith "trailing bytes";
    v
  with
  | v -> Stdlib.Ok v
  | exception Codec.Truncated -> Stdlib.Error ("short " ^ what)
  | exception Failure msg -> Stdlib.Error ("malformed " ^ what ^ ": " ^ msg)

(* the per-tag parsers are unexported: their [failwith]s are protocol
   verdicts that only ever run under [total], which converts them to
   [Error] results at the exported boundary *)
let request_payload r =
  match Codec.read_byte r with
  | 1 -> Hello (Codec.read_uvarint r)
  | 2 ->
      let rid = Codec.read_uvarint r in
      let u = Codec.read_uvarint r in
      let v = Codec.read_uvarint r in
      Insert { rid; u; v }
  | 3 ->
      let rid = Codec.read_uvarint r in
      let u = Codec.read_uvarint r in
      let v = Codec.read_uvarint r in
      Delete { rid; u; v }
  | 4 -> Query_matched (Codec.read_uvarint r)
  | 5 ->
      let u = Codec.read_uvarint r in
      Query_edge (u, Codec.read_uvarint r)
  | 6 ->
      let u = Codec.read_uvarint r in
      Query_sparsifier (u, Codec.read_uvarint r)
  | 7 -> Checksum
  | 8 -> Snapshot
  | 9 -> Drain
  | 10 -> Stats
  | 11 -> Ping
  | t -> failwith (Printf.sprintf "unknown request tag %d" t)

let decode_request body = total "request" request_payload body

let response_payload r =
  match Codec.read_byte r with
  | 1 -> Ack (read_bool r)
  | 2 -> Bool (read_bool r)
  | 3 ->
      let op_count = Codec.read_uvarint r in
      let graph = Codec.read_int64 r in
      let sparsifier = Codec.read_int64 r in
      let matching = Codec.read_uvarint r in
      Digest { op_count; graph; sparsifier; matching }
  | 4 -> Busy (Codec.read_uvarint r)
  | 5 -> Draining
  | 6 -> Ok
  | 7 ->
      let accepted = Codec.read_uvarint r in
      let active = Codec.read_uvarint r in
      let frames_in = Codec.read_uvarint r in
      let frames_out = Codec.read_uvarint r in
      let malformed = Codec.read_uvarint r in
      let busy_rejections = Codec.read_uvarint r in
      let ops_applied = Codec.read_uvarint r in
      let dedup_hits = Codec.read_uvarint r in
      let queries = Codec.read_uvarint r in
      let oracle_hits = Codec.read_uvarint r in
      let oracle_misses = Codec.read_uvarint r in
      Stats_reply
        {
          accepted;
          active;
          frames_in;
          frames_out;
          malformed;
          busy_rejections;
          ops_applied;
          dedup_hits;
          queries;
          oracle_hits;
          oracle_misses;
        }
  | 8 -> Error (Codec.read_string r)
  | t -> failwith (Printf.sprintf "unknown response tag %d" t)

let decode_response body = total "response" response_payload body
