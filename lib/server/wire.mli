(** Request/response payloads for the [mspar serve] binary protocol.

    One message = one {!Mspar_prelude.Codec.Frames} frame whose body is a
    tag byte plus Codec varints, encoded/decoded here.  Decoders are
    total: bytes arrive from an untrusted peer, so a malformed body is an
    [Error], never an exception. *)

(** Listen/connect address. *)
type addr = Unix_path of string | Tcp of string * int

val pp_addr : Format.formatter -> addr -> unit

val addr_of_string : string -> (addr, string) result
(** Parse ["unix:PATH"], ["tcp:HOST:PORT"], bare ["HOST:PORT"] (the last
    [':'] splits host from port, so IPv6 literals work unbracketed), or a
    bare filesystem path (no [':'] → [Unix_path]).  Inverse of
    {!pp_addr}. *)

type request =
  | Hello of int
      (** Bind the connection to a client id.  Must precede updates: the
          id keys the at-most-once dedup table across reconnects. *)
  | Insert of { rid : int; u : int; v : int }
      (** Insert edge [(u,v)]; [rid] is the client-assigned request id,
          strictly increasing per client. *)
  | Delete of { rid : int; u : int; v : int }
  | Query_matched of int  (** is this vertex matched? *)
  | Query_edge of int * int  (** is this edge in the dynamic graph? *)
  | Query_sparsifier of int * int  (** is this edge marked into G_Δ? *)
  | Checksum  (** full-state digest (op count + checksums + |M|) *)
  | Snapshot  (** force a durable snapshot now *)
  | Drain  (** begin graceful drain (same as SIGTERM) *)
  | Stats  (** server counters *)
  | Ping
  | Repl_hello of { epoch : int; offset : int }
      (** Follower handshake: "I have your WAL through [offset] at
          replication epoch [epoch]".  [epoch = 0, offset = 0] asks for a
          snapshot bootstrap; a stale epoch is refused with
          {!Repl_fence}.  Turns the connection into a replication
          out-stream. *)
  | Repl_ack of { offset : int }
      (** Follower has fsynced shipped WAL through [offset].  One-way:
          the primary sends no response, it only advances its lag
          accounting. *)
  | Promote
      (** Operator order: bump the replication epoch and (on a replica)
          become the primary.  Idempotent on a node that is already
          primary. *)
  | Role  (** who are you? → {!Role_reply}; used for primary discovery *)

type digest = {
  op_count : int;
  graph : int64;  (** [Graph.checksum] of the dynamic graph snapshot *)
  sparsifier : int64;  (** [Graph.checksum] of the materialised G_Δ *)
  matching : int;  (** matching size *)
}

type summary = {
  accepted : int;
  active : int;
  frames_in : int;
  frames_out : int;
  malformed : int;
  busy_rejections : int;
  ops_applied : int;
  dedup_hits : int;
  queries : int;
  oracle_hits : int;
      (** oracle memo hits (mark + matching caches) on the query path *)
  oracle_misses : int;  (** oracle memo misses — cold replays *)
  repl_followers : int;  (** replication out-streams currently attached *)
  repl_lag : int;
      (** durable bytes not yet acked by the slowest follower (0 with no
          followers) *)
  repl_fenced : int;  (** stale-epoch hellos and frames refused *)
}

type response =
  | Ack of bool
      (** Update durably applied (or answered from the dedup cache);
          payload says whether the graph changed.  Sent only after the
          WAL fsync covering the op. *)
  | Bool of bool  (** query answer *)
  | Digest of digest
  | Busy of int
      (** Backpressure: batch budget exhausted — retry after the given
          number of milliseconds (jittered server-side). *)
  | Draining  (** server is draining; no further updates accepted *)
  | Ok
  | Stats_reply of summary
  | Error of string  (** protocol violation; the connection will close *)
  | Repl_snapshot of {
      epoch : int;  (** primary's replication epoch *)
      op_epoch : int;  (** op count baked into the snapshot *)
      wal_offset : int;  (** durable WAL bytes the snapshot covers *)
      meta : string;  (** encoded {!Mspar_dynamic.Durable} config *)
      last : bool;  (** final chunk of this bootstrap *)
      chunk : string;  (** snapshot payload slice, in order *)
    }
      (** Bootstrap stream answering a fresh {!Repl_hello}: concatenate
          the chunks, then seed a replica dir with
          [Mspar_dynamic.Durable.bootstrap_replica]. *)
  | Repl_frames of { epoch : int; start_offset : int; payload : string }
      (** Verbatim primary WAL bytes covering
          [start_offset, start_offset + length payload) — whole frames,
          already fsynced on the primary (ship-after-fsync). *)
  | Repl_fence of { epoch : int }
      (** Handshake refused: the receiver has seen replication epoch
          [epoch], newer than the sender's.  A fenced ex-primary must not
          retry — it has been superseded. *)
  | Redirect of string
      (** This node is a replica; updates (and replication hellos) must
          go to the primary.  The payload is an address hint, possibly
          empty. *)
  | Role_reply of { primary : bool; epoch : int; offset : int }
      (** Answer to {!Role}: role, replication epoch, and durable WAL
          offset (the replica's applied cursor when not primary). *)

val encode_request : Buffer.t -> request -> unit
val encode_response : Buffer.t -> response -> unit

val decode_request : string -> (request, string) result
(** Total decode of a frame body. *)

val decode_response : string -> (response, string) result
(** Total decode of a frame body. *)
