(** Request/response payloads for the [mspar serve] binary protocol.

    One message = one {!Mspar_prelude.Codec.Frames} frame whose body is a
    tag byte plus Codec varints, encoded/decoded here.  Decoders are
    total: bytes arrive from an untrusted peer, so a malformed body is an
    [Error], never an exception. *)

(** Listen/connect address. *)
type addr = Unix_path of string | Tcp of string * int

val pp_addr : Format.formatter -> addr -> unit

type request =
  | Hello of int
      (** Bind the connection to a client id.  Must precede updates: the
          id keys the at-most-once dedup table across reconnects. *)
  | Insert of { rid : int; u : int; v : int }
      (** Insert edge [(u,v)]; [rid] is the client-assigned request id,
          strictly increasing per client. *)
  | Delete of { rid : int; u : int; v : int }
  | Query_matched of int  (** is this vertex matched? *)
  | Query_edge of int * int  (** is this edge in the dynamic graph? *)
  | Query_sparsifier of int * int  (** is this edge marked into G_Δ? *)
  | Checksum  (** full-state digest (op count + checksums + |M|) *)
  | Snapshot  (** force a durable snapshot now *)
  | Drain  (** begin graceful drain (same as SIGTERM) *)
  | Stats  (** server counters *)
  | Ping

type digest = {
  op_count : int;
  graph : int64;  (** [Graph.checksum] of the dynamic graph snapshot *)
  sparsifier : int64;  (** [Graph.checksum] of the materialised G_Δ *)
  matching : int;  (** matching size *)
}

type summary = {
  accepted : int;
  active : int;
  frames_in : int;
  frames_out : int;
  malformed : int;
  busy_rejections : int;
  ops_applied : int;
  dedup_hits : int;
  queries : int;
  oracle_hits : int;
      (** oracle memo hits (mark + matching caches) on the query path *)
  oracle_misses : int;  (** oracle memo misses — cold replays *)
}

type response =
  | Ack of bool
      (** Update durably applied (or answered from the dedup cache);
          payload says whether the graph changed.  Sent only after the
          WAL fsync covering the op. *)
  | Bool of bool  (** query answer *)
  | Digest of digest
  | Busy of int
      (** Backpressure: batch budget exhausted — retry after the given
          number of milliseconds (jittered server-side). *)
  | Draining  (** server is draining; no further updates accepted *)
  | Ok
  | Stats_reply of summary
  | Error of string  (** protocol violation; the connection will close *)

val encode_request : Buffer.t -> request -> unit
val encode_response : Buffer.t -> response -> unit

val decode_request : string -> (request, string) result
(** Total decode of a frame body. *)

val decode_response : string -> (response, string) result
(** Total decode of a frame body. *)
