(** Blocking client for the [mspar serve] protocol — used by the smoke
    tests, the fault harness, and the load generator.  [send]/[recv] are
    split so a driver can pipeline several requests per connection. *)

type t

val connect : Wire.addr -> (t, string) result
val connect_retry : ?attempts:int -> ?base_delay:float -> Wire.addr -> (t, string) result
(** Retry [connect] with exponential backoff (default 8 attempts from
    20 ms) — covers both waiting for a fresh server to bind and
    reconnecting across a server restart. *)

val send : t -> Wire.request -> (unit, string) result
(** Write one request frame (blocking until fully written). *)

val recv : ?timeout:float -> t -> (Wire.response, string) result
(** Read one response frame (default timeout 5 s).  Timeouts, EOF, and
    corrupt streams are [Error]s. *)

val request : ?timeout:float -> t -> Wire.request -> (Wire.response, string) result
(** [send] then [recv]. *)

val fd : t -> Unix.file_descr
(** The underlying socket, for select-based drivers. *)

val close : t -> unit
(** Close the socket.  Never raises. *)
