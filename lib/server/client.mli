(** Blocking client for the [mspar serve] protocol — used by the smoke
    tests, the fault harness, and the load generator.  [send]/[recv] are
    split so a driver can pipeline several requests per connection. *)

type t

val connect : Wire.addr -> (t, string) result

val backoff_delay :
  Mspar_prelude.Rng.t -> attempt:int -> base:float -> cap:float -> float
(** Capped full-jitter backoff: a delay drawn uniformly from
    [\[0, min cap (base * 2^attempt))] — doubling ceilings with full
    jitter, so retrying clients spread out instead of reconnecting in
    synchronized waves.  Deterministic for a fixed [Rng] state. *)

val connect_retry :
  ?attempts:int ->
  ?base_delay:float ->
  ?cap:float ->
  ?seed:int ->
  Wire.addr ->
  (t, string) result
(** Retry [connect] under {!backoff_delay} (default 8 attempts, 20 ms
    base, 1 s cap) — covers both waiting for a fresh server to bind and
    reconnecting across a server restart.  [seed] fixes the jitter
    stream for reproducible schedules. *)

val connect_primary :
  ?attempts:int ->
  ?base_delay:float ->
  ?cap:float ->
  ?seed:int ->
  Wire.addr list ->
  (t * Wire.addr, string) result
(** Failover discovery: probe the addresses in order with [Role] until
    one answers as the primary (following one [Redirect] hint hop per
    probe), sleeping a {!backoff_delay} between sweeps.  Returns the
    connected client and the address that worked.  After a failover the
    caller must re-send its [Hello] and replay unacked rids — at-most-once
    dedup makes the replay exactly-once. *)

val send : t -> Wire.request -> (unit, string) result
(** Write one request frame (blocking until fully written). *)

val recv : ?timeout:float -> t -> (Wire.response, string) result
(** Read one response frame (default timeout 5 s).  Timeouts, EOF, and
    corrupt streams are [Error]s. *)

val request : ?timeout:float -> t -> Wire.request -> (Wire.response, string) result
(** [send] then [recv]. *)

val fd : t -> Unix.file_descr
(** The underlying socket, for select-based drivers. *)

val close : t -> unit
(** Close the socket.  Never raises. *)
