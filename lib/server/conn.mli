(** Per-connection state for the serve loop: incremental frame reader
    inbound, bounded byte buffer outbound, non-blocking fd throughout. *)

open Mspar_prelude

type state = Open | Closing

(** Replication out-stream bookkeeping, attached to a connection by an
    accepted [Repl_hello]. *)
type follower = {
  mutable sent : int;  (** primary WAL offset shipped so far *)
  mutable acked : int;  (** highest [Repl_ack] offset received *)
}

type t = {
  fd : Unix.file_descr;
  id : int;
  frames : Codec.Frames.t;
  out : Buffer.t;
  mutable out_pos : int;
  mutable client : int option;  (** set by [Hello]; required for updates *)
  mutable last_activity : float;
  mutable partial_since : float option;
      (** since when an incomplete frame has been pending — drives the
          slowloris timeout *)
  mutable state : state;
  mutable follower : follower option;
      (** [Some _] iff this connection is a replication out-stream *)
  mutable wbuf : bytes;
      (** reusable write-side scratch (grown on demand): response bodies
          are staged here for [Codec.Frames.encode_bytes], and [flush]
          carries the pending output suffix through it, so neither path
          allocates a string per call *)
}

val create : ?max_frame:int -> id:int -> now:float -> Unix.file_descr -> t
(** Wrap an accepted fd (switched to non-blocking).
    @raise Unix.Unix_error on fd errors. *)

val pending_out : t -> int
(** Outbound bytes queued but not yet written. *)

val feed : t -> now:float -> string -> int -> unit
(** Push [len] freshly read bytes into the frame reader and refresh the
    activity clock.
    @raise Invalid_argument if [len] overruns the chunk. *)

val next_frame :
  t -> now:float -> [ `Frame of string | `Need_more | `Corrupt of string ]
(** Pop the next complete frame, maintaining [partial_since]. *)

val queue : t -> Buffer.t -> Wire.response -> unit
(** Encode a response (via the [scratch] buffer) onto the out queue. *)

val queue_request : t -> Buffer.t -> Wire.request -> unit
(** Encode a request onto the out queue — the replica's upstream
    connection speaks the client role ([Repl_hello] / [Repl_ack]). *)

val read_into : t -> bytes -> [ `Data of int | `Eof | `Blocked ]
(** One non-blocking read.  Hard fd errors read as [`Eof]. *)

val flush : t -> [ `Done | `Partial of int | `Error ]
(** Write as much queued output as the socket accepts right now. *)

val close : t -> unit
(** Close the fd (errors ignored) and mark the connection [Closing]. *)
