(** Per-connection state for the serve loop: incremental frame reader
    inbound, bounded byte buffer outbound, non-blocking fd throughout. *)

open Mspar_prelude

type state = Open | Closing

type t = {
  fd : Unix.file_descr;
  id : int;
  frames : Codec.Frames.t;
  out : Buffer.t;
  mutable out_pos : int;
  mutable client : int option;  (** set by [Hello]; required for updates *)
  mutable last_activity : float;
  mutable partial_since : float option;
      (** since when an incomplete frame has been pending — drives the
          slowloris timeout *)
  mutable state : state;
  mutable wbuf : bytes;
      (** reusable write-side scratch (grown on demand): response bodies
          are staged here for [Codec.Frames.encode_bytes], and [flush]
          carries the pending output suffix through it, so neither path
          allocates a string per call *)
}

val create : ?max_frame:int -> id:int -> now:float -> Unix.file_descr -> t
(** Wrap an accepted fd (switched to non-blocking).
    @raise Unix.Unix_error on fd errors. *)

val pending_out : t -> int
(** Outbound bytes queued but not yet written. *)

val feed : t -> now:float -> string -> int -> unit
(** Push [len] freshly read bytes into the frame reader and refresh the
    activity clock.
    @raise Invalid_argument if [len] overruns the chunk. *)

val next_frame :
  t -> now:float -> [ `Frame of string | `Need_more | `Corrupt of string ]
(** Pop the next complete frame, maintaining [partial_since]. *)

val queue : t -> Buffer.t -> Wire.response -> unit
(** Encode a response (via the [scratch] buffer) onto the out queue. *)

val read_into : t -> bytes -> [ `Data of int | `Eof | `Blocked ]
(** One non-blocking read.  Hard fd errors read as [`Eof]. *)

val flush : t -> [ `Done | `Partial of int | `Error ]
(** Write as much queued output as the socket accepts right now. *)

val close : t -> unit
(** Close the fd (errors ignored) and mark the connection [Closing]. *)
