open Mspar_graph
open Mspar_matching
open Mspar_dynamic

(* Request semantics, independent of any socket: the event loop hands
   decoded requests here and queues whatever comes back.  Updates are
   journaled immediately but only become acknowledgeable after
   [sync_if_dirty] — the loop's group-commit point — so an Ack on the
   wire always means "survives kill -9". *)

type t = {
  durable : Durable.t;
  metrics : Metrics.t;
  mutable draining : bool;
  mutable dirty : bool;  (* ops journaled since the last group commit *)
  crash_after_ops : int option;
  mutable applied : int;
}

let create ?crash_after_ops ~metrics durable =
  { durable; metrics; draining = false; dirty = false; crash_after_ops; applied = 0 }

let digest t =
  let dm = Durable.matching t.durable in
  let sp = Durable.sparsifier t.durable in
  {
    Wire.op_count = Durable.op_count t.durable;
    graph = Graph.checksum (Dyn_graph.snapshot (Dyn_matching.graph dm));
    sparsifier = Graph.checksum (Dyn_sparsifier.sparsifier sp);
    matching = Dyn_matching.size dm;
  }

let crash_point t =
  (* test hook: simulated kill -9 — the process vanishes with the op
     journaled (maybe unsynced) and the ack never flushed *)
  match t.crash_after_ops with
  | Some k when t.applied >= k -> Unix._exit 137
  | Some _ | None -> ()

let update t ~client result =
  ignore client;
  t.dirty <- true;
  match result with
  | `Applied changed ->
      t.applied <- t.applied + 1;
      t.metrics.Metrics.ops_applied <- t.metrics.Metrics.ops_applied + 1;
      crash_point t;
      Wire.Ack changed
  | `Duplicate changed ->
      t.metrics.Metrics.dedup_hits <- t.metrics.Metrics.dedup_hits + 1;
      Wire.Ack changed

let handle t ~client (req : Wire.request) : Wire.response =
  match req with
  | Wire.Hello _ -> Wire.Ok  (* binding handled by the loop *)
  | Wire.Insert { rid; u; v } -> (
      if t.draining then Wire.Draining
      else
        match client with
        | None -> Wire.Error "updates require Hello first"
        | Some client -> (
            match Durable.insert_req t.durable ~client ~rid u v with
            | result -> update t ~client result
            | exception Invalid_argument msg -> Wire.Error msg))
  | Wire.Delete { rid; u; v } -> (
      if t.draining then Wire.Draining
      else
        match client with
        | None -> Wire.Error "updates require Hello first"
        | Some client -> (
            match Durable.delete_req t.durable ~client ~rid u v with
            | result -> update t ~client result
            | exception Invalid_argument msg -> Wire.Error msg))
  | Wire.Query_matched v -> (
      t.metrics.Metrics.queries <- t.metrics.Metrics.queries + 1;
      let m = Dyn_matching.matching (Durable.matching t.durable) in
      match Matching.is_matched m v with
      | b -> Wire.Bool b
      | exception Invalid_argument msg -> Wire.Error msg)
  | Wire.Query_edge (u, v) -> (
      t.metrics.Metrics.queries <- t.metrics.Metrics.queries + 1;
      let g = Dyn_matching.graph (Durable.matching t.durable) in
      match Dyn_graph.has_edge g u v with
      | b -> Wire.Bool b
      | exception Invalid_argument msg -> Wire.Error msg)
  | Wire.Query_sparsifier (u, v) -> (
      t.metrics.Metrics.queries <- t.metrics.Metrics.queries + 1;
      match Dyn_sparsifier.in_sparsifier (Durable.sparsifier t.durable) u v with
      | b -> Wire.Bool b
      | exception Invalid_argument msg -> Wire.Error msg)
  | Wire.Checksum -> Wire.Digest (digest t)
  | Wire.Snapshot ->
      Durable.snapshot_now t.durable;
      t.dirty <- false;
      Wire.Ok
  | Wire.Drain ->
      t.draining <- true;
      Wire.Ok
  | Wire.Stats -> Wire.Stats_reply (Metrics.summary t.metrics)
  | Wire.Ping -> Wire.Ok

let sync_if_dirty t =
  if t.dirty then begin
    Durable.sync t.durable;
    t.dirty <- false
  end
