open Mspar_graph
open Mspar_dynamic
open Mspar_lca

(* Request semantics, independent of any socket: the event loop hands
   decoded requests here and queues whatever comes back.  Updates are
   journaled immediately but only become acknowledgeable after
   [sync_if_dirty] — the loop's group-commit point — so an Ack on the
   wire always means "survives kill -9".

   Point queries (Query_sparsifier / Query_matched) are answered by the
   local-access oracle over the live dynamic graph: O(Δ)-probe replay of
   the seeded G_Δ marking plus local simulation of its random-greedy
   matching, memoized across requests.  Read-your-writes contract: an
   applied update that changed the graph invalidates the oracle's
   entries for its two endpoints (and the matching memo) before the ack
   is enqueued, so a client that has seen its own Ack never reads a
   stale pre-update answer — regression-tested in test_server.ml. *)

type t = {
  durable : Durable.t;
  metrics : Metrics.t;
  oracle : Oracle.t;
  mutable draining : bool;
  mutable dirty : bool;  (* ops journaled since the last group commit *)
  mutable redirect : string option;
      (* replica mode: updates are refused with this primary hint;
         point queries still served locally by the oracle *)
  crash_after_ops : int option;
  mutable applied : int;
}

let create ?crash_after_ops ?redirect ~metrics durable =
  let cfg = Durable.config durable in
  let g = Dyn_matching.graph (Durable.matching durable) in
  let oracle =
    Oracle.create (Adj.of_dyn g) ~seed:cfg.Durable.seed ~delta:cfg.Durable.delta
  in
  {
    durable;
    metrics;
    oracle;
    draining = false;
    dirty = false;
    redirect;
    crash_after_ops;
    applied = 0;
  }

let oracle t = t.oracle
let is_primary t = Option.is_none t.redirect
let set_primary t = t.redirect <- None

let digest t =
  let dm = Durable.matching t.durable in
  let sp = Durable.sparsifier t.durable in
  {
    Wire.op_count = Durable.op_count t.durable;
    graph = Graph.checksum (Dyn_graph.snapshot (Dyn_matching.graph dm));
    sparsifier = Graph.checksum (Dyn_sparsifier.sparsifier sp);
    matching = Dyn_matching.size dm;
  }

let crash_point t =
  (* test hook: simulated kill -9 — the process vanishes with the op
     journaled (maybe unsynced) and the ack never flushed *)
  match t.crash_after_ops with
  | Some k when t.applied >= k -> Unix._exit 137
  | Some _ | None -> ()

(* mirror the oracle's cumulative memo counters into the serve metrics;
   called after every oracle-backed query *)
let note_oracle t =
  let s = Oracle.stats t.oracle in
  t.metrics.Metrics.oracle_hits <-
    s.Oracle.mark_cache.Cache.hits + s.Oracle.edge_cache.Cache.hits
    + s.Oracle.mm_cache.Cache.hits;
  t.metrics.Metrics.oracle_misses <-
    s.Oracle.mark_cache.Cache.misses + s.Oracle.edge_cache.Cache.misses
    + s.Oracle.mm_cache.Cache.misses

let update t ~client ~u ~v result =
  ignore client;
  t.dirty <- true;
  match result with
  | `Applied changed ->
      t.applied <- t.applied + 1;
      t.metrics.Metrics.ops_applied <- t.metrics.Metrics.ops_applied + 1;
      (* read-your-writes: drop oracle state the flipped edge can have
         poisoned before the ack is enqueued *)
      if changed then Oracle.invalidate_edge t.oracle u v;
      crash_point t;
      Wire.Ack changed
  | `Duplicate changed ->
      (* already applied once (and invalidated then); replayed ack only *)
      t.metrics.Metrics.dedup_hits <- t.metrics.Metrics.dedup_hits + 1;
      Wire.Ack changed

let handle t ~client (req : Wire.request) : Wire.response =
  match req with
  | Wire.Hello _ -> Wire.Ok  (* binding handled by the loop *)
  | Wire.Insert { rid; u; v } -> (
      if t.draining then Wire.Draining
      else
        match t.redirect with
        | Some hint -> Wire.Redirect hint
        | None -> (
            match client with
            | None -> Wire.Error "updates require Hello first"
            | Some client -> (
                match Durable.insert_req t.durable ~client ~rid u v with
                | result -> update t ~client ~u ~v result
                | exception Invalid_argument msg -> Wire.Error msg)))
  | Wire.Delete { rid; u; v } -> (
      if t.draining then Wire.Draining
      else
        match t.redirect with
        | Some hint -> Wire.Redirect hint
        | None -> (
            match client with
            | None -> Wire.Error "updates require Hello first"
            | Some client -> (
                match Durable.delete_req t.durable ~client ~rid u v with
                | result -> update t ~client ~u ~v result
                | exception Invalid_argument msg -> Wire.Error msg)))
  | Wire.Query_matched v -> (
      t.metrics.Metrics.queries <- t.metrics.Metrics.queries + 1;
      match Oracle.is_matched t.oracle v with
      | b ->
          note_oracle t;
          Wire.Bool b
      | exception Invalid_argument msg -> Wire.Error msg)
  | Wire.Query_edge (u, v) -> (
      t.metrics.Metrics.queries <- t.metrics.Metrics.queries + 1;
      let g = Dyn_matching.graph (Durable.matching t.durable) in
      match Dyn_graph.has_edge g u v with
      | b -> Wire.Bool b
      | exception Invalid_argument msg -> Wire.Error msg)
  | Wire.Query_sparsifier (u, v) -> (
      t.metrics.Metrics.queries <- t.metrics.Metrics.queries + 1;
      match Oracle.in_gdelta t.oracle ~u ~v with
      | b ->
          note_oracle t;
          Wire.Bool b
      | exception Invalid_argument msg -> Wire.Error msg)
  | Wire.Checksum -> Wire.Digest (digest t)
  | Wire.Snapshot -> (
      match t.redirect with
      | Some hint -> Wire.Redirect hint
      | None ->
          Durable.snapshot_now t.durable;
          t.dirty <- false;
          Wire.Ok)
  | Wire.Drain ->
      t.draining <- true;
      Wire.Ok
  | Wire.Stats -> Wire.Stats_reply (Metrics.summary t.metrics)
  | Wire.Ping -> Wire.Ok
  (* the replication plane is stateful per-connection, so the event loop
     intercepts these before dispatch; reaching here is a violation *)
  | Wire.Repl_hello _ | Wire.Repl_ack _ | Wire.Promote | Wire.Role ->
      Wire.Error "replication message outside the serve loop"

let sync_if_dirty t =
  if t.dirty then begin
    Durable.sync t.durable;
    t.dirty <- false
  end
