open Mspar_prelude

(* Blocking client for tests, the load generator, and ad-hoc tooling.
   [send]/[recv] are split so a driver can pipeline several requests per
   connection; [request] is the one-shot convenience wrapper. *)

type t = {
  fd : Unix.file_descr;
  frames : Codec.Frames.t;
  scratch : Buffer.t;
  read_buf : bytes;
}

let sockaddr = function
  | Wire.Unix_path p -> Unix.ADDR_UNIX p
  | Wire.Tcp (host, port) ->
      let inet =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (inet, port)

let connect addr =
  let domain =
    match addr with Wire.Unix_path _ -> Unix.PF_UNIX | Wire.Tcp _ -> Unix.PF_INET
  in
  match
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr addr) with
    | () -> fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        raise e
  with
  | fd ->
      Ok
        {
          fd;
          frames = Codec.Frames.create ();
          scratch = Buffer.create 256;
          read_buf = Bytes.create 4096;
        }
  | exception Unix.Unix_error (e, _, _) ->
      Error (Fmt.str "connect %a: %s" Wire.pp_addr addr (Unix.error_message e))
  | exception Not_found ->
      Error (Fmt.str "connect %a: cannot resolve host" Wire.pp_addr addr)

(* Capped full-jitter backoff: the ceiling doubles per attempt up to
   [cap] and the actual delay is drawn uniformly from [0, ceiling) —
   a fleet of clients retrying after a failover spreads out instead of
   reconnecting in synchronized waves.  Deterministic under a fixed
   [Rng] (regression-tested in test_server.ml). *)
let backoff_delay rng ~attempt ~base ~cap =
  let ceiling = Float.min cap (base *. (2. ** float_of_int attempt)) in
  Rng.float rng ceiling

let default_retry_seed = 0x5eed

let connect_retry ?(attempts = 8) ?(base_delay = 0.02) ?(cap = 1.0)
    ?(seed = default_retry_seed) addr =
  let rng = Rng.create seed in
  let rec go i =
    match connect addr with
    | Ok t -> Ok t
    | Error _ when i + 1 < attempts ->
        Unix.sleepf (backoff_delay rng ~attempt:i ~base:base_delay ~cap);
        go (i + 1)
    | Error _ as e -> e
  in
  go 0

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
let fd t = t.fd

let send t req =
  Buffer.clear t.scratch;
  let body = Buffer.create 32 in
  Wire.encode_request body req;
  Codec.Frames.encode t.scratch (Buffer.contents body);
  let s = Buffer.contents t.scratch in
  let len = String.length s in
  match
    let written = ref 0 in
    while !written < len do
      written := !written + Unix.write_substring t.fd s !written (len - !written)
    done
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send: " ^ Unix.error_message e)

let rec recv ?(timeout = 5.0) t =
  match Codec.Frames.next t.frames with
  | `Corrupt msg -> Error ("corrupt response stream: " ^ msg)
  | `Frame body -> (
      match Wire.decode_response body with
      | Ok r -> Ok r
      | Error msg -> Error msg)
  | `Need_more -> (
      if timeout <= 0. then Error "recv: timeout"
      else
        let t0 = Unix.gettimeofday () in
        match Unix.select [ t.fd ] [] [] timeout with
        | [], _, _ -> Error "recv: timeout"
        | _ :: _, _, _ -> (
            match Unix.read t.fd t.read_buf 0 (Bytes.length t.read_buf) with
            | 0 -> Error "recv: connection closed"
            | n ->
                Codec.Frames.feed t.frames (Bytes.sub_string t.read_buf 0 n);
                recv ~timeout:(timeout -. (Unix.gettimeofday () -. t0)) t
            | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                recv ~timeout:(timeout -. (Unix.gettimeofday () -. t0)) t
            | exception Unix.Unix_error (e, _, _) ->
                Error ("recv: " ^ Unix.error_message e))
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            recv ~timeout:(timeout -. (Unix.gettimeofday () -. t0)) t)

let request ?timeout t req =
  match send t req with Error _ as e -> e | Ok () -> recv ?timeout t

(* Failover discovery: probe each address with Role until one answers as
   the primary, following one Redirect hop per probe (a replica knows
   its primary's address).  Sweeps are separated by the same full-jitter
   backoff as [connect_retry]. *)
let connect_primary ?(attempts = 8) ?(base_delay = 0.02) ?(cap = 1.0)
    ?(seed = default_retry_seed) addrs =
  if List.is_empty addrs then Error "connect_primary: empty address list"
  else begin
    let rng = Rng.create seed in
    let probe_addr addr =
      match connect addr with
      | Error _ -> None
      | Ok t -> (
          match request t Wire.Role with
          | Ok (Wire.Role_reply { primary = true; _ }) -> Some (t, addr)
          | Ok (Wire.Redirect hint) when hint <> "" -> (
              close t;
              match Wire.addr_of_string hint with
              | Error _ -> None
              | Ok hinted -> (
                  match connect hinted with
                  | Error _ -> None
                  | Ok t2 -> (
                      match request t2 Wire.Role with
                      | Ok (Wire.Role_reply { primary = true; _ }) ->
                          Some (t2, hinted)
                      | _ ->
                          close t2;
                          None)))
          | _ ->
              close t;
              None)
    in
    let rec sweep i =
      match List.find_map probe_addr addrs with
      | Some found -> Ok found
      | None ->
          if i + 1 < attempts then begin
            Unix.sleepf (backoff_delay rng ~attempt:i ~base:base_delay ~cap);
            sweep (i + 1)
          end
          else Error "connect_primary: no live primary found"
    in
    sweep 0
  end
