open Mspar_prelude
open Mspar_dynamic

(* The serve loop: a single-threaded Unix.select reactor.

   Invariants the loop maintains:
   - group commit: every processing round ends with [Dispatch.sync_if_dirty]
     *before* any byte of the round's responses is flushed, so an Ack on
     the wire always covers a WAL fsync (zero acknowledged-update loss);
   - bounded buffers everywhere: at most [max_pending] requests are
     processed per connection per round (the rest answer [Busy] with a
     jittered retry-after), and a connection whose out-queue exceeds the
     soft cap stops being read until it drains;
   - misbehaving peers cost only themselves: a corrupt or malformed
     frame gets one [Error] reply and the connection is closed, idle and
     slowloris timers reap silent/dribbling peers, and the accept loop
     keeps serving everyone else;
   - graceful drain: SIGTERM/SIGINT (or a Drain request) stops accepts,
     answers in-flight updates, fsyncs, snapshots, flushes, exits 0. *)

type config = {
  addr : Wire.addr;
  max_conns : int;
  max_pending : int;
  max_frame : int;
  idle_timeout : float;
  frame_timeout : float;
  busy_retry_ms : int;
  seed : int;
  crash_after_ops : int option;
}

let default_config addr =
  {
    addr;
    max_conns = 128;
    max_pending = 64;
    max_frame = Codec.Frames.default_max_frame;
    idle_timeout = 30.;
    frame_timeout = 5.;
    busy_retry_ms = 20;
    seed = 1;
    crash_after_ops = None;
  }

(* distinct exit codes, shared by the CLI (see bin/main.ml serve/dynamic) *)
let exit_config_error = 3
let exit_bind_failure = 4
let exit_recovery_failure = 5

let out_soft_cap = 256 * 1024

(* ------------------------------------------------------------------ *)
(* bind                                                               *)
(* ------------------------------------------------------------------ *)

let bind_listen addr =
  match
    match addr with
    | Wire.Unix_path path ->
        (* a previous unclean shutdown leaves the socket file behind;
           binding over it needs the unlink first *)
        (match (Unix.stat path).Unix.st_kind with
        | Unix.S_SOCK -> Unix.unlink path
        | _ -> failwith (path ^ " exists and is not a socket")
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        fd
    | Wire.Tcp (host, port) ->
        let inet =
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } ->
                  failwith ("cannot resolve " ^ host)
              | h -> h.Unix.h_addr_list.(0)
              | exception Not_found -> failwith ("cannot resolve " ^ host))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd 64;
        fd
  with
  | fd -> Ok fd
  | exception Unix.Unix_error (e, fn, _) ->
      Error
        (Fmt.str "cannot bind %a: %s (%s)" Wire.pp_addr addr
           (Unix.error_message e) fn)
  | exception Failure msg -> Error (Fmt.str "cannot bind %a: %s" Wire.pp_addr addr msg)

(* ------------------------------------------------------------------ *)
(* the loop                                                           *)
(* ------------------------------------------------------------------ *)

type loop = {
  cfg : config;
  listen_fd : Unix.file_descr;
  dispatch : Dispatch.t;
  metrics : Metrics.t;
  rng : Rng.t;  (* Busy retry-after jitter only *)
  mutable conns : Conn.t list;
  mutable next_id : int;
  read_buf : bytes;
  scratch : Buffer.t;
}

let now () = Unix.gettimeofday ()

let drop l conn ~count =
  (* idempotent: a conn can fail twice in one round (read EOF, then a
     flush error on the already-closed fd) *)
  if List.exists (fun c -> c.Conn.id = conn.Conn.id) l.conns then begin
    Conn.close conn;
    l.conns <- List.filter (fun c -> c.Conn.id <> conn.Conn.id) l.conns;
    l.metrics.Metrics.active <- l.metrics.Metrics.active - 1;
    count ()
  end

let accept_ready l =
  let rec go budget =
    if budget > 0 && List.length l.conns < l.cfg.max_conns then
      match Unix.accept l.listen_fd with
      | fd, _ ->
          let conn =
            Conn.create ~max_frame:l.cfg.max_frame ~id:l.next_id ~now:(now ())
              fd
          in
          l.next_id <- l.next_id + 1;
          l.conns <- conn :: l.conns;
          l.metrics.Metrics.accepted <- l.metrics.Metrics.accepted + 1;
          l.metrics.Metrics.active <- l.metrics.Metrics.active + 1;
          go (budget - 1)
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  go 16

let busy_reply l = Wire.Busy (l.cfg.busy_retry_ms + Rng.int l.rng l.cfg.busy_retry_ms)

(* Decode and serve the frames one connection has buffered, up to the
   per-round budget; everything beyond the budget answers Busy without
   touching the pipeline (the client retries with the same rid, so no
   work is lost).  Returns [false] if the connection turned Closing. *)
let process_frames l conn =
  let budget = ref l.cfg.max_pending in
  let continue = ref true in
  while !continue && Conn.(conn.state) = Conn.Open do
    match Conn.next_frame conn ~now:(now ()) with
    | `Need_more -> continue := false
    | `Corrupt msg ->
        l.metrics.Metrics.malformed <- l.metrics.Metrics.malformed + 1;
        l.metrics.Metrics.dropped_protocol <-
          l.metrics.Metrics.dropped_protocol + 1;
        Conn.queue conn l.scratch (Wire.Error ("corrupt frame: " ^ msg));
        conn.Conn.state <- Conn.Closing;
        continue := false
    | `Frame body -> (
        l.metrics.Metrics.frames_in <- l.metrics.Metrics.frames_in + 1;
        match Wire.decode_request body with
        | Stdlib.Error msg ->
            l.metrics.Metrics.malformed <- l.metrics.Metrics.malformed + 1;
            l.metrics.Metrics.dropped_protocol <-
              l.metrics.Metrics.dropped_protocol + 1;
            Conn.queue conn l.scratch (Wire.Error msg);
            conn.Conn.state <- Conn.Closing;
            continue := false
        | Stdlib.Ok req ->
            let resp =
              if !budget <= 0 || Conn.pending_out conn > out_soft_cap then begin
                l.metrics.Metrics.busy_rejections <-
                  l.metrics.Metrics.busy_rejections + 1;
                busy_reply l
              end
              else begin
                decr budget;
                (match req with
                | Wire.Hello id -> conn.Conn.client <- Some id
                | _ -> ());
                Dispatch.handle l.dispatch ~client:conn.Conn.client req
              end
            in
            Conn.queue conn l.scratch resp;
            l.metrics.Metrics.frames_out <- l.metrics.Metrics.frames_out + 1)
  done

let read_ready l conn =
  match Conn.read_into conn l.read_buf with
  | `Blocked -> ()
  | `Eof ->
      (* mid-request disconnect: whatever was acked is durable, the rest
         was never acknowledged — just reap the connection *)
      drop l conn ~count:(fun () -> ())
  | `Data n ->
      l.metrics.Metrics.bytes_in <- l.metrics.Metrics.bytes_in + n;
      Conn.feed conn ~now:(now ()) (Bytes.sub_string l.read_buf 0 n) n;
      process_frames l conn

let flush_conn l conn =
  match Conn.flush conn with
  | `Done ->
      if Conn.(conn.state) = Conn.Closing then
        drop l conn ~count:(fun () -> ())
  | `Partial n -> l.metrics.Metrics.bytes_out <- l.metrics.Metrics.bytes_out + n
  | `Error -> drop l conn ~count:(fun () -> ())

let reap_timeouts l =
  let t = now () in
  List.iter
    (fun conn ->
      if Conn.(conn.state) = Conn.Open then begin
        (match conn.Conn.partial_since with
        | Some since when t -. since > l.cfg.frame_timeout ->
            (* slowloris: a frame has been dribbling in for too long *)
            drop l conn ~count:(fun () ->
                l.metrics.Metrics.dropped_slowloris <-
                  l.metrics.Metrics.dropped_slowloris + 1)
        | Some _ | None -> ());
        if
          Conn.(conn.state) = Conn.Open
          && t -. conn.Conn.last_activity > l.cfg.idle_timeout
        then
          drop l conn ~count:(fun () ->
              l.metrics.Metrics.dropped_idle <-
                l.metrics.Metrics.dropped_idle + 1)
      end)
    l.conns

let drain_flush l ~deadline =
  (* push the final responses out, but never hang on a dead peer *)
  let rec go () =
    let pending = List.filter (fun c -> Conn.pending_out c > 0) l.conns in
    if not (List.is_empty pending) && now () < deadline then begin
      let wfds = List.map (fun c -> c.Conn.fd) pending in
      (match Unix.select [] wfds [] 0.05 with
      | _, ws, _ ->
          List.iter
            (fun c ->
              if List.memq c.Conn.fd ws then ignore (Conn.flush c))
            pending
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let run cfg ~listen ~(durable : Durable.t) =
  let metrics = Metrics.create () in
  let dispatch =
    Dispatch.create ?crash_after_ops:cfg.crash_after_ops ~metrics durable
  in
  let term = ref false in
  let set_handler sg f = Sys.signal sg (Sys.Signal_handle f) in
  let old_term = set_handler Sys.sigterm (fun _ -> term := true) in
  let old_int = set_handler Sys.sigint (fun _ -> term := true) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  Unix.set_nonblock listen;
  let l =
    {
      cfg;
      listen_fd = listen;
      dispatch;
      metrics;
      rng = Rng.create cfg.seed;
      conns = [];
      next_id = 0;
      read_buf = Bytes.create 4096;
      scratch = Buffer.create 256;
    }
  in
  Fun.protect ~finally:restore (fun () ->
      while not (!term || dispatch.Dispatch.draining) do
        let accepting = List.length l.conns < cfg.max_conns in
        let rfds =
          (if accepting then [ listen ] else [])
          @ List.filter_map
              (fun c ->
                if
                  Conn.(c.state) = Conn.Open
                  && Conn.pending_out c <= out_soft_cap
                then Some c.Conn.fd
                else None)
              l.conns
        in
        let wfds =
          List.filter_map
            (fun c -> if Conn.pending_out c > 0 then Some c.Conn.fd else None)
            l.conns
        in
        match Unix.select rfds wfds [] 0.05 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | rs, ws, _ ->
            if List.memq listen rs then accept_ready l;
            List.iter
              (fun c -> if List.memq c.Conn.fd rs then read_ready l c)
              l.conns;
            (* group commit BEFORE any response byte leaves the process *)
            Dispatch.sync_if_dirty dispatch;
            List.iter
              (fun c ->
                if List.memq c.Conn.fd ws || Conn.pending_out c > 0 then
                  flush_conn l c)
              l.conns;
            reap_timeouts l
      done;
      (* ---- drain ---- *)
      dispatch.Dispatch.draining <- true;
      (try Unix.close listen with Unix.Unix_error (_, _, _) -> ());
      (* final sweep: serve what is already buffered (updates now answer
         Draining), then make everything durable *)
      List.iter
        (fun c -> if Conn.(c.state) = Conn.Open then process_frames l c)
        l.conns;
      Dispatch.sync_if_dirty dispatch;
      Durable.snapshot_now durable;
      drain_flush l ~deadline:(now () +. 1.0);
      List.iter Conn.close l.conns;
      l.conns <- [];
      (match cfg.addr with
      | Wire.Unix_path p -> (
          try Unix.unlink p with Unix.Unix_error (_, _, _) -> ())
      | Wire.Tcp _ -> ());
      Ok ())
