open Mspar_prelude
open Mspar_dynamic

(* The serve loop: a single-threaded Unix.select reactor.

   Invariants the loop maintains:
   - group commit: every processing round ends with [Dispatch.sync_if_dirty]
     *before* any byte of the round's responses is flushed, so an Ack on
     the wire always covers a WAL fsync (zero acknowledged-update loss);
   - bounded buffers everywhere: at most [max_pending] requests are
     processed per connection per round (the rest answer [Busy] with a
     jittered retry-after), and a connection whose out-queue exceeds the
     soft cap stops being read until it drains;
   - misbehaving peers cost only themselves: a corrupt or malformed
     frame gets one [Error] reply and the connection is closed, idle and
     slowloris timers reap silent/dribbling peers, and the accept loop
     keeps serving everyone else;
   - graceful drain: SIGTERM/SIGINT (or a Drain request) stops accepts,
     answers in-flight updates, fsyncs, snapshots, flushes, exits 0. *)

type config = {
  addr : Wire.addr;
  max_conns : int;
  max_pending : int;
  max_frame : int;
  idle_timeout : float;
  frame_timeout : float;
  busy_retry_ms : int;
  seed : int;
  crash_after_ops : int option;
}

let default_config addr =
  {
    addr;
    max_conns = 128;
    max_pending = 64;
    max_frame = Codec.Frames.default_max_frame;
    idle_timeout = 30.;
    frame_timeout = 5.;
    busy_retry_ms = 20;
    seed = 1;
    crash_after_ops = None;
  }

(* distinct exit codes, shared by the CLI (see bin/main.ml serve/dynamic) *)
let exit_config_error = 3
let exit_bind_failure = 4
let exit_recovery_failure = 5

let out_soft_cap = 256 * 1024

(* ------------------------------------------------------------------ *)
(* bind                                                               *)
(* ------------------------------------------------------------------ *)

let bind_listen addr =
  match
    match addr with
    | Wire.Unix_path path ->
        (* a previous unclean shutdown leaves the socket file behind;
           binding over it needs the unlink first *)
        (match (Unix.stat path).Unix.st_kind with
        | Unix.S_SOCK -> Unix.unlink path
        | _ -> failwith (path ^ " exists and is not a socket")
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        fd
    | Wire.Tcp (host, port) ->
        let inet =
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } ->
                  failwith ("cannot resolve " ^ host)
              | h -> h.Unix.h_addr_list.(0)
              | exception Not_found -> failwith ("cannot resolve " ^ host))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd 64;
        fd
  with
  | fd -> Ok fd
  | exception Unix.Unix_error (e, fn, _) ->
      Error
        (Fmt.str "cannot bind %a: %s (%s)" Wire.pp_addr addr
           (Unix.error_message e) fn)
  | exception Failure msg -> Error (Fmt.str "cannot bind %a: %s" Wire.pp_addr addr msg)

(* ------------------------------------------------------------------ *)
(* the loop                                                           *)
(* ------------------------------------------------------------------ *)

(* Replica role state: the link to the primary, plus reconnect backoff.
   [upstream] is mutable because a Redirect from a demoted peer can
   re-point it at the new primary. *)
type replica_state = {
  mutable upstream : Wire.addr;
  mutable up : Conn.t option;
  mutable attempt : int;
  mutable next_try : float;
}

type role = Primary | Replica of replica_state

type loop = {
  cfg : config;
  listen_fd : Unix.file_descr;
  dispatch : Dispatch.t;
  metrics : Metrics.t;
  rng : Rng.t;  (* Busy retry-after + replica reconnect jitter *)
  mutable role : role;
  mutable conns : Conn.t list;
  mutable next_id : int;
  read_buf : bytes;
  scratch : Buffer.t;
}

let now () = Unix.gettimeofday ()

let drop l conn ~count =
  (* idempotent: a conn can fail twice in one round (read EOF, then a
     flush error on the already-closed fd) *)
  if List.exists (fun c -> c.Conn.id = conn.Conn.id) l.conns then begin
    Conn.close conn;
    l.conns <- List.filter (fun c -> c.Conn.id <> conn.Conn.id) l.conns;
    l.metrics.Metrics.active <- l.metrics.Metrics.active - 1;
    count ()
  end

let accept_ready l =
  let rec go budget =
    if budget > 0 && List.length l.conns < l.cfg.max_conns then
      match Unix.accept l.listen_fd with
      | fd, _ ->
          let conn =
            Conn.create ~max_frame:l.cfg.max_frame ~id:l.next_id ~now:(now ())
              fd
          in
          l.next_id <- l.next_id + 1;
          l.conns <- conn :: l.conns;
          l.metrics.Metrics.accepted <- l.metrics.Metrics.accepted + 1;
          l.metrics.Metrics.active <- l.metrics.Metrics.active + 1;
          go (budget - 1)
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  go 16

let busy_reply l = Wire.Busy (l.cfg.busy_retry_ms + Rng.int l.rng l.cfg.busy_retry_ms)

(* ------------------------------------------------------------------ *)
(* replication: primary side                                          *)
(* ------------------------------------------------------------------ *)

let ship_chunk = 60 * 1024
let bootstrap_chunk = 200 * 1024

let uvarint_len n =
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go n 1

(* longest prefix of [slice] that is whole journal frames — a ship chunk
   may cut the last frame and the follower appends verbatim, so only
   whole frames ever leave the process *)
let whole_frames_len slice =
  let bodies, _tail = Codec.Frames.decode_all slice in
  List.fold_left
    (fun acc b -> acc + uvarint_len (String.length b) + String.length b + 4)
    0 bodies

let queue_response l conn resp =
  Conn.queue conn l.scratch resp;
  l.metrics.Metrics.frames_out <- l.metrics.Metrics.frames_out + 1

(* stream the whole bootstrap (config + snapshot + covered WAL offset)
   onto the connection, chunked under the frame-size limit *)
let queue_bootstrap l conn =
  let durable = l.dispatch.Dispatch.durable in
  let op_epoch, snapshot, wal_offset = Durable.bootstrap_payload durable in
  let epoch = Durable.repl_epoch durable in
  let meta = Durable.config_bytes durable in
  let total = String.length snapshot in
  let rec go pos =
    let len = Int.min bootstrap_chunk (total - pos) in
    let last = pos + len >= total in
    queue_response l conn
      (Wire.Repl_snapshot
         { epoch; op_epoch; wal_offset; meta; last;
           chunk = String.sub snapshot pos len });
    if not last then go (pos + len)
  in
  go 0

(* Repl_hello / Repl_ack / Promote / Role are the control plane: they
   bypass the Busy budget (a starved follower would fall further behind)
   and Repl_ack is one-way.  The loop intercepts them before Dispatch. *)
let handle_repl l conn req =
  let durable = l.dispatch.Dispatch.durable in
  let m = l.metrics in
  match req with
  | Wire.Role ->
      let offset =
        match Durable.replica_cursor durable with
        | Some c -> c
        | None -> Durable.durable_offset durable
      in
      queue_response l conn
        (Wire.Role_reply
           {
             primary = Dispatch.is_primary l.dispatch;
             epoch = Durable.repl_epoch durable;
             offset;
           })
  | Wire.Repl_ack { offset } -> (
      match conn.Conn.follower with
      | Some f ->
          f.Conn.acked <- Int.max f.Conn.acked offset;
          m.Metrics.repl_acks <- m.Metrics.repl_acks + 1
      | None ->
          queue_response l conn (Wire.Error "Repl_ack without Repl_hello");
          conn.Conn.state <- Conn.Closing)
  | Wire.Promote ->
      (* idempotent on a primary: epochs bump only on an actual
         replica->primary transition, so promotion records never appear
         in a shipped stream *)
      if not (Dispatch.is_primary l.dispatch) then begin
        ignore (Durable.bump_repl_epoch durable);
        Dispatch.set_primary l.dispatch;
        (match l.role with
        | Replica r ->
            (match r.up with Some c -> Conn.close c | None -> ());
            r.up <- None
        | Primary -> ());
        l.role <- Primary
      end;
      queue_response l conn Wire.Ok
  | Wire.Repl_hello { epoch; offset } ->
      if not (Dispatch.is_primary l.dispatch) then
        queue_response l conn
          (Wire.Redirect
             (Option.value l.dispatch.Dispatch.redirect ~default:""))
      else begin
        let my_e = Durable.repl_epoch durable in
        if epoch = 0 && offset = 0 then queue_bootstrap l conn
        else if epoch <> my_e then begin
          (* fence: a follower from another epoch (stale ex-primary's
             lineage) must not tail this WAL *)
          m.Metrics.repl_fenced <- m.Metrics.repl_fenced + 1;
          queue_response l conn (Wire.Repl_fence { epoch = my_e });
          conn.Conn.state <- Conn.Closing
        end
        else begin
          let ok_boundary =
            offset <= Durable.durable_offset durable
            && Result.is_ok (Journal.tail_from (Durable.wal_path durable) ~offset)
          in
          if ok_boundary then begin
            conn.Conn.follower <- Some { Conn.sent = offset; acked = offset };
            queue_response l conn Wire.Ok
          end
          else begin
            queue_response l conn
              (Wire.Error "replication offset is not a durable frame boundary");
            conn.Conn.state <- Conn.Closing
          end
        end
      end
  | _ -> assert false

(* ship-after-fsync: runs right after the group commit, so everything up
   to [durable_offset] is crash-safe before any byte of it leaves *)
let ship_followers l =
  let durable = l.dispatch.Dispatch.durable in
  let d_off = Durable.durable_offset durable in
  let epoch = Durable.repl_epoch durable in
  let followers = ref 0 in
  let worst_lag = ref 0 in
  List.iter
    (fun c ->
      match c.Conn.follower with
      | None -> ()
      | Some f ->
          incr followers;
          if
            Conn.(c.state) = Conn.Open
            && f.Conn.sent < d_off
            && Conn.pending_out c <= out_soft_cap
            (* backpressure: a follower that stops reading stops being
               shipped to; lag is visible in repl_lag, the primary's
               memory stays bounded *)
          then begin
            let want = Int.min ship_chunk (d_off - f.Conn.sent) in
            let slice =
              Journal.read_slice (Durable.wal_path durable) ~pos:f.Conn.sent
                ~len:want
            in
            let whole = whole_frames_len slice in
            if whole > 0 then begin
              queue_response l c
                (Wire.Repl_frames
                   {
                     epoch;
                     start_offset = f.Conn.sent;
                     payload = String.sub slice 0 whole;
                   });
              f.Conn.sent <- f.Conn.sent + whole;
              l.metrics.Metrics.repl_frames_out <-
                l.metrics.Metrics.repl_frames_out + 1
            end
          end;
          worst_lag := Int.max !worst_lag (d_off - f.Conn.acked))
    l.conns;
  l.metrics.Metrics.repl_followers <- !followers;
  l.metrics.Metrics.repl_lag <- (if !followers = 0 then 0 else !worst_lag)

(* Decode and serve the frames one connection has buffered, up to the
   per-round budget; everything beyond the budget answers Busy without
   touching the pipeline (the client retries with the same rid, so no
   work is lost).  Returns [false] if the connection turned Closing. *)
let process_frames l conn =
  let budget = ref l.cfg.max_pending in
  let continue = ref true in
  while !continue && Conn.(conn.state) = Conn.Open do
    match Conn.next_frame conn ~now:(now ()) with
    | `Need_more -> continue := false
    | `Corrupt msg ->
        l.metrics.Metrics.malformed <- l.metrics.Metrics.malformed + 1;
        l.metrics.Metrics.dropped_protocol <-
          l.metrics.Metrics.dropped_protocol + 1;
        Conn.queue conn l.scratch (Wire.Error ("corrupt frame: " ^ msg));
        conn.Conn.state <- Conn.Closing;
        continue := false
    | `Frame body -> (
        l.metrics.Metrics.frames_in <- l.metrics.Metrics.frames_in + 1;
        match Wire.decode_request body with
        | Stdlib.Error msg ->
            l.metrics.Metrics.malformed <- l.metrics.Metrics.malformed + 1;
            l.metrics.Metrics.dropped_protocol <-
              l.metrics.Metrics.dropped_protocol + 1;
            Conn.queue conn l.scratch (Wire.Error msg);
            conn.Conn.state <- Conn.Closing;
            continue := false
        | Stdlib.Ok req -> (
            match req with
            | Wire.Repl_hello _ | Wire.Repl_ack _ | Wire.Promote | Wire.Role ->
                handle_repl l conn req
            | _ ->
                let resp =
                  if !budget <= 0 || Conn.pending_out conn > out_soft_cap then begin
                    l.metrics.Metrics.busy_rejections <-
                      l.metrics.Metrics.busy_rejections + 1;
                    busy_reply l
                  end
                  else begin
                    decr budget;
                    (match req with
                    | Wire.Hello id -> conn.Conn.client <- Some id
                    | _ -> ());
                    Dispatch.handle l.dispatch ~client:conn.Conn.client req
                  end
                in
                Conn.queue conn l.scratch resp;
                l.metrics.Metrics.frames_out <- l.metrics.Metrics.frames_out + 1))
  done

let read_ready l conn =
  match Conn.read_into conn l.read_buf with
  | `Blocked -> ()
  | `Eof ->
      (* mid-request disconnect: whatever was acked is durable, the rest
         was never acknowledged — just reap the connection *)
      drop l conn ~count:(fun () -> ())
  | `Data n ->
      l.metrics.Metrics.bytes_in <- l.metrics.Metrics.bytes_in + n;
      Conn.feed conn ~now:(now ()) (Bytes.sub_string l.read_buf 0 n) n;
      process_frames l conn

let flush_conn l conn =
  match Conn.flush conn with
  | `Done ->
      if Conn.(conn.state) = Conn.Closing then
        drop l conn ~count:(fun () -> ())
  | `Partial n -> l.metrics.Metrics.bytes_out <- l.metrics.Metrics.bytes_out + n
  | `Error -> drop l conn ~count:(fun () -> ())

let reap_timeouts l =
  let t = now () in
  List.iter
    (fun conn ->
      if Conn.(conn.state) = Conn.Open then begin
        (match conn.Conn.partial_since with
        | Some since when t -. since > l.cfg.frame_timeout ->
            (* slowloris: a frame has been dribbling in for too long *)
            drop l conn ~count:(fun () ->
                l.metrics.Metrics.dropped_slowloris <-
                  l.metrics.Metrics.dropped_slowloris + 1)
        | Some _ | None -> ());
        if
          Conn.(conn.state) = Conn.Open
          && Option.is_none conn.Conn.follower
          (* a caught-up follower is legitimately silent between ops *)
          && t -. conn.Conn.last_activity > l.cfg.idle_timeout
        then
          drop l conn ~count:(fun () ->
              l.metrics.Metrics.dropped_idle <-
                l.metrics.Metrics.dropped_idle + 1)
      end)
    l.conns

(* ------------------------------------------------------------------ *)
(* replication: replica side                                          *)
(* ------------------------------------------------------------------ *)

let drop_upstream l r =
  (match r.up with Some c -> Conn.close c | None -> ());
  r.up <- None;
  r.attempt <- r.attempt + 1;
  r.next_try <-
    now () +. Client.backoff_delay l.rng ~attempt:r.attempt ~base:0.05 ~cap:2.0

let try_connect_upstream l r =
  match Client.connect r.upstream with
  | Error _ -> drop_upstream l r  (* schedules the jittered retry *)
  | Ok ct -> (
      let durable = l.dispatch.Dispatch.durable in
      match Durable.replica_cursor durable with
      | None -> Client.close ct  (* promoted while connecting; done *)
      | Some cursor ->
          (* adopt the raw fd into a Conn so the select loop drives it *)
          let conn =
            Conn.create ~max_frame:l.cfg.max_frame ~id:l.next_id ~now:(now ())
              (Client.fd ct)
          in
          l.next_id <- l.next_id + 1;
          Conn.queue_request conn l.scratch
            (Wire.Repl_hello
               { epoch = Durable.repl_epoch durable; offset = cursor });
          r.up <- Some conn;
          r.attempt <- 0)

let handle_upstream_resp l r resp ~applied =
  let durable = l.dispatch.Dispatch.durable in
  let m = l.metrics in
  match resp with
  | Wire.Repl_frames { epoch; start_offset; payload } ->
      m.Metrics.repl_frames_in <- m.Metrics.repl_frames_in + 1;
      let cursor = Option.value (Durable.replica_cursor durable) ~default:(-1) in
      if epoch <> Durable.repl_epoch durable || start_offset <> cursor then begin
        (* wrong epoch or a gap: drop the link and re-handshake from our
           durable cursor rather than guess *)
        m.Metrics.repl_fenced <- m.Metrics.repl_fenced + 1;
        drop_upstream l r
      end
      else begin
        match
          Durable.apply_shipped durable payload ~on_update:(fun ~u ~v ~changed ->
              if changed then
                Mspar_lca.Oracle.invalidate_edge (Dispatch.oracle l.dispatch) u v)
        with
        | Ok n ->
            m.Metrics.repl_applied <- m.Metrics.repl_applied + n;
            m.Metrics.ops_applied <- m.Metrics.ops_applied + n;
            applied := true
        | Error msg ->
            prerr_endline ("mspar serve: replication apply failed: " ^ msg);
            drop_upstream l r
      end
  | Wire.Repl_fence { epoch } ->
      m.Metrics.repl_fenced <- m.Metrics.repl_fenced + 1;
      Printf.eprintf "mspar serve: fenced by upstream at epoch %d\n%!" epoch;
      drop_upstream l r
  | Wire.Redirect hint ->
      (match Wire.addr_of_string hint with
      | Ok a -> r.upstream <- a
      | Error _ -> ());
      drop_upstream l r
  | Wire.Ok -> ()  (* hello accepted; frames follow *)
  | Wire.Repl_snapshot _ ->
      (* a bootstrap stream mid-session means the primary thinks we are
         fresh — our hello must have raced; re-handshake *)
      drop_upstream l r
  | Wire.Ack _ | Wire.Bool _ | Wire.Digest _ | Wire.Busy _ | Wire.Draining
  | Wire.Stats_reply _ | Wire.Error _ | Wire.Role_reply _ ->
      drop_upstream l r

let upstream_read l r conn =
  match Conn.read_into conn l.read_buf with
  | `Blocked -> ()
  | `Eof -> drop_upstream l r
  | `Data n ->
      Conn.feed conn ~now:(now ()) (Bytes.sub_string l.read_buf 0 n) n;
      let applied = ref false in
      let continue = ref true in
      let alive () = match r.up with Some c -> c == conn | None -> false in
      while !continue && alive () do
        match Conn.next_frame conn ~now:(now ()) with
        | `Need_more -> continue := false
        | `Corrupt _ -> drop_upstream l r
        | `Frame body -> (
            match Wire.decode_response body with
            | Stdlib.Error _ -> drop_upstream l r
            | Stdlib.Ok resp -> handle_upstream_resp l r resp ~applied)
      done;
      if !applied && alive () then begin
        (* replica group commit: fsync the appended frames, then ack the
           new durable cursor — an acked offset always survives kill -9 *)
        Durable.sync l.dispatch.Dispatch.durable;
        match Durable.replica_cursor l.dispatch.Dispatch.durable with
        | Some cursor ->
            Conn.queue_request conn l.scratch (Wire.Repl_ack { offset = cursor })
        | None -> ()
      end

(* synchronous snapshot fetch over a blocking client — how [--replica-of]
   seeds an empty dir before entering the serve loop *)
let bootstrap_replica ~upstream ~dir =
  match Client.connect_retry upstream with
  | Error msg -> Error ("bootstrap: " ^ msg)
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.send c (Wire.Repl_hello { epoch = 0; offset = 0 }) with
          | Error msg -> Error ("bootstrap: " ^ msg)
          | Ok () ->
              let buf = Buffer.create 65536 in
              let rec collect () =
                match Client.recv ~timeout:30. c with
                | Error msg -> Error ("bootstrap: " ^ msg)
                | Ok
                    (Wire.Repl_snapshot
                      { epoch; op_epoch; wal_offset; meta; last; chunk }) ->
                    Buffer.add_string buf chunk;
                    if last then
                      Durable.bootstrap_replica ~dir ~config_bytes:meta
                        ~op_epoch ~wal_offset ~repl_epoch:epoch
                        ~snapshot:(Buffer.contents buf)
                    else collect ()
                | Ok (Wire.Redirect hint) ->
                    Error
                      (if hint = "" then "bootstrap: upstream is not the primary"
                       else "bootstrap: upstream is not the primary (try " ^ hint ^ ")")
                | Ok (Wire.Repl_fence { epoch }) ->
                    Error (Printf.sprintf "bootstrap: fenced at epoch %d" epoch)
                | Ok _ -> Error "bootstrap: unexpected response"
              in
              collect ())

let drain_flush l ~deadline =
  (* push the final responses out, but never hang on a dead peer *)
  let rec go () =
    let pending = List.filter (fun c -> Conn.pending_out c > 0) l.conns in
    if not (List.is_empty pending) && now () < deadline then begin
      let wfds = List.map (fun c -> c.Conn.fd) pending in
      (match Unix.select [] wfds [] 0.05 with
      | _, ws, _ ->
          List.iter
            (fun c ->
              if List.memq c.Conn.fd ws then ignore (Conn.flush c))
            pending
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let run ?replica_of cfg ~listen ~(durable : Durable.t) =
  let metrics = Metrics.create () in
  let redirect = Option.map (Fmt.str "%a" Wire.pp_addr) replica_of in
  let dispatch =
    Dispatch.create ?crash_after_ops:cfg.crash_after_ops ?redirect ~metrics
      durable
  in
  let term = ref false in
  let set_handler sg f = Sys.signal sg (Sys.Signal_handle f) in
  let old_term = set_handler Sys.sigterm (fun _ -> term := true) in
  let old_int = set_handler Sys.sigint (fun _ -> term := true) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  Unix.set_nonblock listen;
  let role =
    match replica_of with
    | None -> Primary
    | Some upstream ->
        Replica { upstream; up = None; attempt = 0; next_try = 0. }
  in
  let l =
    {
      cfg;
      listen_fd = listen;
      dispatch;
      metrics;
      rng = Rng.create cfg.seed;
      role;
      conns = [];
      next_id = 0;
      read_buf = Bytes.create 4096;
      scratch = Buffer.create 256;
    }
  in
  Fun.protect ~finally:restore (fun () ->
      while not (!term || dispatch.Dispatch.draining) do
        (* replica: keep the upstream link alive (jittered backoff) *)
        (match l.role with
        | Replica r when Option.is_none r.up && now () >= r.next_try ->
            try_connect_upstream l r
        | Replica _ | Primary -> ());
        let up_conn =
          match l.role with Replica { up; _ } -> up | Primary -> None
        in
        let accepting = List.length l.conns < cfg.max_conns in
        let rfds =
          (if accepting then [ listen ] else [])
          @ (match up_conn with Some c -> [ c.Conn.fd ] | None -> [])
          @ List.filter_map
              (fun c ->
                if
                  Conn.(c.state) = Conn.Open
                  && Conn.pending_out c <= out_soft_cap
                then Some c.Conn.fd
                else None)
              l.conns
        in
        let wfds =
          (match up_conn with
          | Some c when Conn.pending_out c > 0 -> [ c.Conn.fd ]
          | Some _ | None -> [])
          @ List.filter_map
              (fun c -> if Conn.pending_out c > 0 then Some c.Conn.fd else None)
              l.conns
        in
        match Unix.select rfds wfds [] 0.05 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | rs, ws, _ ->
            if List.memq listen rs then accept_ready l;
            List.iter
              (fun c -> if List.memq c.Conn.fd rs then read_ready l c)
              l.conns;
            (match (l.role, up_conn) with
            | Replica r, Some c
              when (match r.up with Some c' -> c' == c | None -> false)
                   && List.memq c.Conn.fd rs ->
                upstream_read l r c
            | _ -> ());
            (* group commit BEFORE any response byte leaves the process *)
            Dispatch.sync_if_dirty dispatch;
            (* ship-after-fsync: followers see only crash-safe bytes *)
            if Dispatch.is_primary dispatch then ship_followers l;
            List.iter
              (fun c ->
                if List.memq c.Conn.fd ws || Conn.pending_out c > 0 then
                  flush_conn l c)
              l.conns;
            (match l.role with
            | Replica ({ up = Some c; _ } as r) when Conn.pending_out c > 0 -> (
                match Conn.flush c with
                | `Error -> drop_upstream l r
                | `Done | `Partial _ -> ())
            | Replica _ | Primary -> ());
            reap_timeouts l
      done;
      (* ---- drain ---- *)
      dispatch.Dispatch.draining <- true;
      (try Unix.close listen with Unix.Unix_error (_, _, _) -> ());
      (* final sweep: serve what is already buffered (updates now answer
         Draining), then make everything durable *)
      List.iter
        (fun c -> if Conn.(c.state) = Conn.Open then process_frames l c)
        l.conns;
      Dispatch.sync_if_dirty dispatch;
      (* a replica must not append its own Epoch frame — that would break
         byte-identity with the primary's shipped suffix *)
      (match Durable.replica_cursor durable with
      | Some _ -> Durable.snapshot_blob_only durable
      | None -> Durable.snapshot_now durable);
      drain_flush l ~deadline:(now () +. 1.0);
      List.iter Conn.close l.conns;
      l.conns <- [];
      (match l.role with
      | Replica { up = Some c; _ } -> Conn.close c
      | Replica _ | Primary -> ());
      (match cfg.addr with
      | Wire.Unix_path p -> (
          try Unix.unlink p with Unix.Unix_error (_, _, _) -> ())
      | Wire.Tcp _ -> ());
      Ok ())
