(** Serve-loop counters.  The event loop is single-threaded, so these
    are plain mutable fields, exposed for direct bumping. *)

type t = {
  mutable accepted : int;  (** connections accepted, lifetime *)
  mutable active : int;  (** connections currently open *)
  mutable dropped_protocol : int;  (** closed for malformed/corrupt input *)
  mutable dropped_idle : int;  (** closed by the idle timeout *)
  mutable dropped_slowloris : int;  (** closed by the partial-frame timeout *)
  mutable frames_in : int;
  mutable frames_out : int;
  mutable malformed : int;  (** frames/bodies that failed to decode *)
  mutable busy_rejections : int;  (** requests answered [Busy] *)
  mutable ops_applied : int;  (** updates applied into the pipeline *)
  mutable dedup_hits : int;  (** updates answered from the dedup cache *)
  mutable queries : int;
  mutable oracle_hits : int;
      (** cumulative oracle memo hits (mark + matching caches), mirrored
          from {!Mspar_lca.Oracle.stats} after each oracle-backed query *)
  mutable oracle_misses : int;  (** cumulative oracle memo misses *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable repl_followers : int;  (** replication out-streams attached *)
  mutable repl_lag : int;
      (** durable WAL bytes not yet acked by the slowest follower;
          recomputed by the shipping loop *)
  mutable repl_fenced : int;  (** stale-epoch hellos/frames refused *)
  mutable repl_frames_out : int;  (** Repl_frames messages shipped *)
  mutable repl_acks : int;  (** Repl_ack messages received *)
  mutable repl_frames_in : int;  (** Repl_frames received (replica side) *)
  mutable repl_applied : int;  (** ops applied from shipped frames *)
}

val create : unit -> t
val summary : t -> Wire.summary
val to_string : t -> string
