open Mspar_prelude

(* Per-connection state: an incremental frame reader on the inbound
   side and a bounded byte buffer on the outbound side.  All fds are
   non-blocking; the event loop drives [read_into]/[flush] off select
   readiness, so a slow or dead peer can stall only its own buffers. *)

type state = Open | Closing

type follower = {
  mutable sent : int;  (* primary WAL offset shipped so far *)
  mutable acked : int;  (* highest Repl_ack offset received *)
}

type t = {
  fd : Unix.file_descr;
  id : int;
  frames : Codec.Frames.t;
  out : Buffer.t;
  mutable out_pos : int;  (* prefix of [out] already written to the fd *)
  mutable client : int option;  (* set by Hello; required for updates *)
  mutable last_activity : float;
  mutable partial_since : float option;
      (* when the oldest buffered incomplete frame started arriving —
         the slowloris clock *)
  mutable state : state;
  mutable follower : follower option;
      (* set by an accepted Repl_hello: this connection is a replication
         out-stream and the shipping loop tracks it here *)
  mutable wbuf : bytes;
      (* reusable write-side scratch: stages response bodies for
         [Codec.Frames.encode_bytes] and carries the pending [out]
         suffix to [Unix.write], so neither path builds a string per
         call; grown on demand, never shrunk *)
}

let create ?(max_frame = Codec.Frames.default_max_frame) ~id ~now fd =
  Unix.set_nonblock fd;
  {
    fd;
    id;
    frames = Codec.Frames.create ~max_frame ();
    out = Buffer.create 512;
    out_pos = 0;
    client = None;
    last_activity = now;
    partial_since = None;
    state = Open;
    follower = None;
    wbuf = Bytes.create 4096;
  }

let reserve_wbuf t len =
  if Bytes.length t.wbuf < len then begin
    let cap = ref (Bytes.length t.wbuf) in
    while !cap < len do
      cap := !cap * 2
    done;
    t.wbuf <- Bytes.create !cap
  end

let pending_out t = Buffer.length t.out - t.out_pos

let feed t ~now chunk len =
  t.last_activity <- now;
  Codec.Frames.feed t.frames ~len chunk
[@@hot]

let next_frame t ~now =
  let r = Codec.Frames.next t.frames in
  (match r with
  | `Frame _ | `Corrupt _ -> t.partial_since <- None
  | `Need_more ->
      if Codec.Frames.buffered t.frames = 0 then t.partial_since <- None
      else if Option.is_none t.partial_since then t.partial_since <- Some now);
  r
[@@hot]

let queue t scratch resp =
  Buffer.clear scratch;
  Wire.encode_response scratch resp;
  (* stage the body in [wbuf] so the frame is appended and checksummed
     without a [Buffer.contents] string per response *)
  let len = Buffer.length scratch in
  reserve_wbuf t len;
  Buffer.blit scratch 0 t.wbuf 0 len;
  Codec.Frames.encode_bytes t.out t.wbuf ~pos:0 ~len
[@@hot]

(* same staging as [queue], for the client-role messages a replica sends
   upstream (Repl_hello / Repl_ack) over its primary connection *)
let queue_request t scratch req =
  Buffer.clear scratch;
  Wire.encode_request scratch req;
  let len = Buffer.length scratch in
  reserve_wbuf t len;
  Buffer.blit scratch 0 t.wbuf 0 len;
  Codec.Frames.encode_bytes t.out t.wbuf ~pos:0 ~len

let read_into t bytes =
  match Unix.read t.fd bytes 0 (Bytes.length bytes) with
  | 0 -> `Eof
  | n -> `Data n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      `Blocked
  | exception Unix.Unix_error (_, _, _) -> `Eof
[@@hot]

let flush t =
  let len = pending_out t in
  if len = 0 then `Done
  else begin
    (* blit only the pending suffix into [wbuf] — the old
       [Buffer.contents] copied the whole buffer per write.  A write is
       capped at the scratch capacity; the select loop re-calls [flush]
       while [`Partial], so the cap only bounds per-wakeup work. *)
    let n = Int.min len (Bytes.length t.wbuf) in
    Buffer.blit t.out t.out_pos t.wbuf 0 n;
    match Unix.write t.fd t.wbuf 0 n with
    | written ->
        t.out_pos <- t.out_pos + written;
        if pending_out t = 0 then begin
          Buffer.clear t.out;
          t.out_pos <- 0;
          `Done
        end
        else `Partial written
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        `Partial 0
    | exception Unix.Unix_error (_, _, _) -> `Error
  end
[@@hot]

let close t =
  (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
  t.state <- Closing
