open Mspar_prelude

(* Per-connection state: an incremental frame reader on the inbound
   side and a bounded byte buffer on the outbound side.  All fds are
   non-blocking; the event loop drives [read_into]/[flush] off select
   readiness, so a slow or dead peer can stall only its own buffers. *)

type state = Open | Closing

type t = {
  fd : Unix.file_descr;
  id : int;
  frames : Codec.Frames.t;
  out : Buffer.t;
  mutable out_pos : int;  (* prefix of [out] already written to the fd *)
  mutable client : int option;  (* set by Hello; required for updates *)
  mutable last_activity : float;
  mutable partial_since : float option;
      (* when the oldest buffered incomplete frame started arriving —
         the slowloris clock *)
  mutable state : state;
}

let create ?(max_frame = Codec.Frames.default_max_frame) ~id ~now fd =
  Unix.set_nonblock fd;
  {
    fd;
    id;
    frames = Codec.Frames.create ~max_frame ();
    out = Buffer.create 512;
    out_pos = 0;
    client = None;
    last_activity = now;
    partial_since = None;
    state = Open;
  }

let pending_out t = Buffer.length t.out - t.out_pos

let feed t ~now chunk len =
  t.last_activity <- now;
  Codec.Frames.feed t.frames ~len chunk

let next_frame t ~now =
  let r = Codec.Frames.next t.frames in
  (match r with
  | `Frame _ | `Corrupt _ -> t.partial_since <- None
  | `Need_more ->
      if Codec.Frames.buffered t.frames = 0 then t.partial_since <- None
      else if Option.is_none t.partial_since then t.partial_since <- Some now);
  r

let queue t scratch resp =
  Buffer.clear scratch;
  Wire.encode_response scratch resp;
  Codec.Frames.encode t.out (Buffer.contents scratch)

let read_into t bytes =
  match Unix.read t.fd bytes 0 (Bytes.length bytes) with
  | 0 -> `Eof
  | n -> `Data n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      `Blocked
  | exception Unix.Unix_error (_, _, _) -> `Eof

let flush t =
  let len = pending_out t in
  if len = 0 then `Done
  else begin
    let s = Buffer.contents t.out in
    match Unix.write_substring t.fd s t.out_pos len with
    | n ->
        t.out_pos <- t.out_pos + n;
        if pending_out t = 0 then begin
          Buffer.clear t.out;
          t.out_pos <- 0;
          `Done
        end
        else `Partial n
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        `Partial 0
    | exception Unix.Unix_error (_, _, _) -> `Error
  end

let close t =
  (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
  t.state <- Closing
