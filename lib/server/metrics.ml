(* Plain mutable counters for the serve loop — single-threaded event
   loop, so no atomics needed.  [summary] freezes them into the wire
   record answered to a Stats request. *)

type t = {
  mutable accepted : int;
  mutable active : int;
  mutable dropped_protocol : int;
  mutable dropped_idle : int;
  mutable dropped_slowloris : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable malformed : int;
  mutable busy_rejections : int;
  mutable ops_applied : int;
  mutable dedup_hits : int;
  mutable queries : int;
  mutable oracle_hits : int;
  mutable oracle_misses : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable repl_followers : int;
  mutable repl_lag : int;
  mutable repl_fenced : int;
  mutable repl_frames_out : int;
  mutable repl_acks : int;
  mutable repl_frames_in : int;
  mutable repl_applied : int;
}

let create () =
  {
    accepted = 0;
    active = 0;
    dropped_protocol = 0;
    dropped_idle = 0;
    dropped_slowloris = 0;
    frames_in = 0;
    frames_out = 0;
    malformed = 0;
    busy_rejections = 0;
    ops_applied = 0;
    dedup_hits = 0;
    queries = 0;
    oracle_hits = 0;
    oracle_misses = 0;
    bytes_in = 0;
    bytes_out = 0;
    repl_followers = 0;
    repl_lag = 0;
    repl_fenced = 0;
    repl_frames_out = 0;
    repl_acks = 0;
    repl_frames_in = 0;
    repl_applied = 0;
  }

let summary t =
  {
    Wire.accepted = t.accepted;
    active = t.active;
    frames_in = t.frames_in;
    frames_out = t.frames_out;
    malformed = t.malformed;
    busy_rejections = t.busy_rejections;
    ops_applied = t.ops_applied;
    dedup_hits = t.dedup_hits;
    queries = t.queries;
    oracle_hits = t.oracle_hits;
    oracle_misses = t.oracle_misses;
    repl_followers = t.repl_followers;
    repl_lag = t.repl_lag;
    repl_fenced = t.repl_fenced;
  }

let to_string t =
  Printf.sprintf
    "accepted=%d active=%d dropped(proto/idle/slow)=%d/%d/%d frames=%d/%d \
     malformed=%d busy=%d ops=%d dedup=%d queries=%d oracle(hit/miss)=%d/%d \
     bytes=%d/%d repl(followers/lag/fenced)=%d/%d/%d \
     repl_frames(out/in)=%d/%d repl_acks=%d repl_applied=%d"
    t.accepted t.active t.dropped_protocol t.dropped_idle t.dropped_slowloris
    t.frames_in t.frames_out t.malformed t.busy_rejections t.ops_applied
    t.dedup_hits t.queries t.oracle_hits t.oracle_misses t.bytes_in t.bytes_out
    t.repl_followers t.repl_lag t.repl_fenced t.repl_frames_out t.repl_frames_in
    t.repl_acks t.repl_applied
