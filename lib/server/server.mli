(** The [mspar serve] event loop: a single-threaded [Unix.select]
    reactor over {!Conn} connections, dispatching into a
    {!Mspar_dynamic.Durable} pipeline via {!Dispatch}.

    Contracts (see DESIGN.md §10):
    - an [Ack] is written to a socket only after the WAL fsync covering
      the op (group commit per select round) — zero acknowledged-update
      loss under kill -9;
    - per-round request budget and out-queue soft cap bound every
      buffer; excess requests answer [Busy] with jittered retry-after;
    - corrupt/malformed frames close only the offending connection;
      idle and slowloris timeouts reap silent or dribbling peers;
    - SIGTERM/SIGINT (or a [Drain] request) triggers graceful drain:
      stop accepting, answer buffered requests, fsync, snapshot, flush,
      return [Ok ()]. *)

open Mspar_dynamic

type config = {
  addr : Wire.addr;
  max_conns : int;  (** accepted connections held concurrently *)
  max_pending : int;  (** requests served per connection per round *)
  max_frame : int;  (** largest frame body accepted on the wire *)
  idle_timeout : float;  (** seconds of silence before a conn is reaped *)
  frame_timeout : float;
      (** seconds an incomplete frame may dribble (slowloris bound) *)
  busy_retry_ms : int;  (** base of the jittered Busy retry-after *)
  seed : int;  (** jitter RNG seed *)
  crash_after_ops : int option;  (** fault-injection hook, see {!Dispatch} *)
}

val default_config : Wire.addr -> config

val exit_config_error : int
(** 3 — bad CLI arguments / configuration. *)

val exit_bind_failure : int
(** 4 — could not bind/listen on the requested address. *)

val exit_recovery_failure : int
(** 5 — journal recovery failed. *)

val bind_listen : Wire.addr -> (Unix.file_descr, string) result
(** Bind and listen.  A stale Unix socket file left by an unclean
    shutdown is unlinked first; a path that exists but is not a socket
    is an [Error]. *)

val bootstrap_replica :
  upstream:Wire.addr -> dir:string -> (unit, string) result
(** Seed an empty replica dir from a running primary: connect, send a
    fresh [Repl_hello {epoch = 0; offset = 0}], collect the chunked
    [Repl_snapshot] stream, and write the dir via
    [Durable.bootstrap_replica].  Run before {!run} with [?replica_of]
    when the dir has no journal yet.  All failure modes (unreachable
    upstream, upstream not primary, fenced, corrupt payload) come back
    as [Error]. *)

val run :
  ?replica_of:Wire.addr ->
  config ->
  listen:Unix.file_descr ->
  durable:Durable.t ->
  (unit, string) result
(** Serve until SIGTERM/SIGINT or a [Drain] request, then drain
    gracefully.  Installs (and restores) SIGTERM/SIGINT/SIGPIPE
    handlers.  Closes [listen] and every connection before returning;
    the caller still owns [durable] and should {!Durable.close} it.

    With [?replica_of] the node starts as a hot standby of the given
    primary (see DESIGN.md §13): it tails the primary's WAL into its own
    journal byte-for-byte (handshaking from [Durable.replica_cursor]),
    acks each locally-fsynced extension, serves point queries from its
    own oracle, answers updates with [Redirect], and keeps reconnecting
    under jittered backoff while the primary is away.  A [Promote]
    request (on this or any node) bumps the replication epoch and turns
    the replica into a full primary; stale-epoch peers are fenced.
    @raise Unix.Unix_error on journal I/O errors. *)
