(** Request semantics, socket-free: decoded {!Wire.request}s in,
    {!Wire.response}s out, against a {!Mspar_dynamic.Durable} pipeline.

    Updates are journaled on [handle] but acknowledgements only become
    durable at {!sync_if_dirty} — the event loop's group-commit point —
    so the loop must call it before flushing Acks to any socket. *)

open Mspar_dynamic

type t = {
  durable : Durable.t;
  metrics : Metrics.t;
  mutable draining : bool;
      (** once set (Drain request or SIGTERM), updates answer
          [Draining]; queries keep working *)
  mutable dirty : bool;
  crash_after_ops : int option;
  mutable applied : int;
}

val create : ?crash_after_ops:int -> metrics:Metrics.t -> Durable.t -> t
(** [crash_after_ops] is a fault-injection hook: the process [_exit]s
    with status 137 (simulated kill -9) immediately after the Nth
    applied update, before any ack reaches a socket. *)

val handle : t -> client:int option -> Wire.request -> Wire.response
(** Serve one request.  [client] is the connection's Hello-bound id;
    updates without one are protocol errors.  Total: domain errors come
    back as [Wire.Error], not exceptions.
    @raise Unix.Unix_error on journal I/O errors. *)

val digest : t -> Wire.digest
(** Full-state digest (op count, graph/sparsifier checksums, |M|). *)

val sync_if_dirty : t -> unit
(** Group commit: fsync the WAL iff updates were journaled since the
    last commit.
    @raise Unix.Unix_error on journal I/O errors. *)
