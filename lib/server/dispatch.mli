(** Request semantics, socket-free: decoded {!Wire.request}s in,
    {!Wire.response}s out, against a {!Mspar_dynamic.Durable} pipeline.

    Updates are journaled on [handle] but acknowledgements only become
    durable at {!sync_if_dirty} — the event loop's group-commit point —
    so the loop must call it before flushing Acks to any socket.

    Point queries ([Query_sparsifier] / [Query_matched]) are answered by
    a {!Mspar_lca.Oracle} over the live dynamic graph — O(Δ)-probe
    replay of the seeded G_Δ marking and local simulation of its
    random-greedy matching, memoized across requests.  Read-your-writes:
    an applied update that changed the graph invalidates the oracle's
    endpoint entries before its Ack is enqueued, so a client that has
    seen its own Ack never reads a stale pre-update answer. *)

open Mspar_dynamic
open Mspar_lca

type t = {
  durable : Durable.t;
  metrics : Metrics.t;
  oracle : Oracle.t;
      (** point-query oracle over the live dynamic graph, seeded from
          the durable config's [(seed, delta)] *)
  mutable draining : bool;
      (** once set (Drain request or SIGTERM), updates answer
          [Draining]; queries keep working *)
  mutable dirty : bool;
  mutable redirect : string option;
      (** replica mode: updates and Snapshot answer [Redirect] with this
          primary-address hint; queries keep being served locally *)
  crash_after_ops : int option;
  mutable applied : int;
}

val create :
  ?crash_after_ops:int -> ?redirect:string -> metrics:Metrics.t -> Durable.t -> t
(** [crash_after_ops] is a fault-injection hook: the process [_exit]s
    with status 137 (simulated kill -9) immediately after the Nth
    applied update, before any ack reaches a socket.  [redirect] starts
    the dispatcher in replica (read-only) mode with the given
    primary-address hint. *)

val is_primary : t -> bool
(** [true] iff updates are accepted here (no redirect in force). *)

val set_primary : t -> unit
(** Promotion: clear the redirect so updates are accepted locally. *)

val handle : t -> client:int option -> Wire.request -> Wire.response
(** Serve one request.  [client] is the connection's Hello-bound id;
    updates without one are protocol errors.  Total: domain errors come
    back as [Wire.Error], not exceptions.
    @raise Unix.Unix_error on journal I/O errors. *)

val digest : t -> Wire.digest
(** Full-state digest (op count, graph/sparsifier checksums, |M|). *)

val oracle : t -> Oracle.t
(** The dispatcher's point-query oracle (tests inspect its cache
    stats). *)

val sync_if_dirty : t -> unit
(** Group commit: fsync the WAL iff updates were journaled since the
    last commit.
    @raise Unix.Unix_error on journal I/O errors. *)
