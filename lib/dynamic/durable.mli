(** Crash-safe dynamic pipeline: WAL + snapshots + audit with self-repair.

    Wraps {!Dyn_sparsifier} and {!Dyn_matching} behind a write-ahead
    journal (see {!Mspar_prelude.Journal}): every op is journaled before
    it is applied, snapshot blobs are written every [snapshot_every] ops
    (with an [Epoch] journal record marking the boundary), and the
    {!Audit} checks run every [audit_every] ops — a failed audit repairs
    the derived state (sparsifier marks, matching) from the
    authoritative dynamic graph and counts the repair in {!stats}.

    {!recover} rebuilds the state after a crash: truncate the journal's
    torn tail, load the newest snapshot blob that passes its CRC and
    structural validation (falling back to older ones, then to replay
    from scratch), and replay the op suffix.  Snapshots carry the exact
    adjacency order and RNG stream positions, so replay is bit-for-bit
    identical to the uncrashed run — with [sync_every = 1], recovery
    loses nothing and diverges nowhere.

    All file I/O goes through {!Mspar_prelude.Journal} (lint MSP009). *)

type config = {
  n : int;
  delta : int;  (** sparsifier marks per vertex (Theorem 2.1 Δ) *)
  beta : int;  (** neighborhood independence bound *)
  eps : float;
  multiplier : float;  (** Δ headroom multiplier for the matcher *)
  seed : int;
}

type stats = {
  ops : int;  (** ops journaled (including no-ops), lifetime *)
  snapshots : int;  (** snapshot blobs written by this process *)
  audits : int;  (** audit passes run by this process *)
  audit_failures : int;  (** audits that found at least one violation *)
  repairs : int;  (** repair / forced-rebuild actions taken *)
  recovered_epoch : int option;
      (** snapshot epoch this process recovered from, if any *)
  replayed : int;  (** ops replayed from the journal at recovery *)
  dedup_hits : int;
      (** duplicate requests answered from the at-most-once cache *)
}

type t

val create :
  ?sync_every:int ->
  ?snapshot_every:int ->
  ?audit_every:int ->
  dir:string ->
  config ->
  t
(** Start a fresh durable pipeline in [dir] (created if missing): claim
    the directory lockfile ({!Mspar_prelude.Journal.acquire_lock}), write
    the journal header and the [Meta] config record, derive the
    sparsifier and matcher RNG streams from [config.seed].  [sync_every]
    is the journal fsync batch (default 32; 1 = lose nothing).
    @raise Invalid_argument if [dir] already holds a journal (use
    {!recover}), is locked by a live process, or a parameter is out of
    range.
    @raise Unix.Unix_error on filesystem errors. *)

val recover :
  ?sync_every:int ->
  ?snapshot_every:int ->
  ?audit_every:int ->
  string ->
  (t, string) result
(** Recover from the journal in the given directory.  Claims the
    directory lockfile first — a dir held by a live process is an
    [Error], a stale lock (dead owner) is broken automatically.  Never
    raises on corrupt state: torn tails are truncated, damaged snapshot
    blobs are skipped in favour of older ones or full replay, and any
    structural problem is returned as [Error].  On [Ok t], [t] continues
    exactly where the durable prefix of the journal left off, including
    the at-most-once dedup table rebuilt from [Tagged] records. *)

val insert : t -> int -> int -> bool
(** Journal then apply an insertion; returns [false] if the edge was
    already present.  Triggers the periodic audit and snapshot if their
    counters come due.
    @raise Invalid_argument on out-of-range endpoints.
    @raise Unix.Unix_error on filesystem errors. *)

val delete : t -> int -> int -> bool
(** Journal then apply a deletion; returns [false] if absent.
    @raise Invalid_argument on out-of-range endpoints.
    @raise Unix.Unix_error on filesystem errors. *)

val insert_req :
  t -> client:int -> rid:int -> int -> int -> [ `Applied of bool | `Duplicate of bool ]
(** At-most-once insert on behalf of server client [client] with
    client-assigned request id [rid] (strictly increasing per client).
    A fresh rid journals a [Tagged] record then applies; [rid] equal to
    the last applied one answers [`Duplicate] with the cached result
    (the resend-after-lost-ack case); an older rid is [`Duplicate false].
    @raise Invalid_argument on out-of-range endpoints.
    @raise Unix.Unix_error on filesystem errors. *)

val delete_req :
  t -> client:int -> rid:int -> int -> int -> [ `Applied of bool | `Duplicate of bool ]
(** At-most-once delete; same contract as {!insert_req}.
    @raise Invalid_argument on out-of-range endpoints.
    @raise Unix.Unix_error on filesystem errors. *)

val sync : t -> unit
(** Flush and fsync the journal now — the server's group-commit point:
    acknowledgements may be sent only after this returns.
    @raise Unix.Unix_error on filesystem errors. *)

val audit_now : t -> string list
(** Run the full {!Audit} suite now.  On failure, repairs the sparsifier
    ({!Dyn_sparsifier.repair}) and/or rebuilds the matching, bumping
    [repairs]; the returned list is what the audit {e found} (pre-repair).
    Consumes randomness only when a repair actually happens. *)

val snapshot_now : t -> unit
(** Sync the journal, write a snapshot blob at the current op count, and
    append the [Epoch] record.
    @raise Unix.Unix_error on filesystem errors. *)

val sparsifier : t -> Dyn_sparsifier.t
val matching : t -> Dyn_matching.t
val config : t -> config
val op_count : t -> int
val stats : t -> stats

val close : t -> unit
(** Flush and close the journal, then release the directory lock.
    Idempotent.
    @raise Unix.Unix_error on filesystem errors. *)
