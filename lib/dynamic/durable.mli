(** Crash-safe dynamic pipeline: WAL + snapshots + audit with self-repair.

    Wraps {!Dyn_sparsifier} and {!Dyn_matching} behind a write-ahead
    journal (see {!Mspar_prelude.Journal}): every op is journaled before
    it is applied, snapshot blobs are written every [snapshot_every] ops
    (with an [Epoch] journal record marking the boundary), and the
    {!Audit} checks run every [audit_every] ops — a failed audit repairs
    the derived state (sparsifier marks, matching) from the
    authoritative dynamic graph and counts the repair in {!stats}.

    {!recover} rebuilds the state after a crash: truncate the journal's
    torn tail, load the newest snapshot blob that passes its CRC and
    structural validation (falling back to older ones, then to replay
    from scratch), and replay the op suffix.  Snapshots carry the exact
    adjacency order and RNG stream positions, so replay is bit-for-bit
    identical to the uncrashed run — with [sync_every = 1], recovery
    loses nothing and diverges nowhere.

    All file I/O goes through {!Mspar_prelude.Journal} (lint MSP009). *)

type config = {
  n : int;
  delta : int;  (** sparsifier marks per vertex (Theorem 2.1 Δ) *)
  beta : int;  (** neighborhood independence bound *)
  eps : float;
  multiplier : float;  (** Δ headroom multiplier for the matcher *)
  seed : int;
}

type stats = {
  ops : int;  (** ops journaled (including no-ops), lifetime *)
  snapshots : int;  (** snapshot blobs written by this process *)
  audits : int;  (** audit passes run by this process *)
  audit_failures : int;  (** audits that found at least one violation *)
  repairs : int;  (** repair / forced-rebuild actions taken *)
  recovered_epoch : int option;
      (** snapshot epoch this process recovered from, if any *)
  replayed : int;  (** ops replayed from the journal at recovery *)
  dedup_hits : int;
      (** duplicate requests answered from the at-most-once cache *)
}

type t

val create :
  ?sync_every:int ->
  ?snapshot_every:int ->
  ?audit_every:int ->
  dir:string ->
  config ->
  t
(** Start a fresh durable pipeline in [dir] (created if missing): claim
    the directory lockfile ({!Mspar_prelude.Journal.acquire_lock}), write
    the journal header and the [Meta] config record, derive the
    sparsifier and matcher RNG streams from [config.seed].  [sync_every]
    is the journal fsync batch (default 32; 1 = lose nothing).
    @raise Invalid_argument if [dir] already holds a journal (use
    {!recover}), is locked by a live process, or a parameter is out of
    range.
    @raise Unix.Unix_error on filesystem errors. *)

val recover :
  ?sync_every:int ->
  ?snapshot_every:int ->
  ?audit_every:int ->
  string ->
  (t, string) result
(** Recover from the journal in the given directory.  Claims the
    directory lockfile first — a dir held by a live process is an
    [Error], a stale lock (dead owner) is broken automatically.  Never
    raises on corrupt state: torn tails are truncated, damaged snapshot
    blobs are skipped in favour of older ones or full replay, and any
    structural problem is returned as [Error].  On [Ok t], [t] continues
    exactly where the durable prefix of the journal left off, including
    the at-most-once dedup table rebuilt from [Tagged] records. *)

val insert : t -> int -> int -> bool
(** Journal then apply an insertion; returns [false] if the edge was
    already present.  Triggers the periodic audit and snapshot if their
    counters come due.
    @raise Invalid_argument on out-of-range endpoints.
    @raise Unix.Unix_error on filesystem errors. *)

val delete : t -> int -> int -> bool
(** Journal then apply a deletion; returns [false] if absent.
    @raise Invalid_argument on out-of-range endpoints.
    @raise Unix.Unix_error on filesystem errors. *)

val insert_req :
  t -> client:int -> rid:int -> int -> int -> [ `Applied of bool | `Duplicate of bool ]
(** At-most-once insert on behalf of server client [client] with
    client-assigned request id [rid] (strictly increasing per client).
    A fresh rid journals a [Tagged] record then applies; [rid] equal to
    the last applied one answers [`Duplicate] with the cached result
    (the resend-after-lost-ack case); an older rid is [`Duplicate false].
    @raise Invalid_argument on out-of-range endpoints.
    @raise Unix.Unix_error on filesystem errors. *)

val delete_req :
  t -> client:int -> rid:int -> int -> int -> [ `Applied of bool | `Duplicate of bool ]
(** At-most-once delete; same contract as {!insert_req}.
    @raise Invalid_argument on out-of-range endpoints.
    @raise Unix.Unix_error on filesystem errors. *)

val sync : t -> unit
(** Flush and fsync the journal now — the server's group-commit point:
    acknowledgements may be sent only after this returns.
    @raise Unix.Unix_error on filesystem errors. *)

val audit_now : t -> string list
(** Run the full {!Audit} suite now.  On failure, repairs the sparsifier
    ({!Dyn_sparsifier.repair}) and/or rebuilds the matching, bumping
    [repairs]; the returned list is what the audit {e found} (pre-repair).
    Consumes randomness only when a repair actually happens. *)

val snapshot_now : t -> unit
(** Sync the journal, write a snapshot blob at the current op count, and
    append the [Epoch] record.
    @raise Unix.Unix_error on filesystem errors. *)

(** {2 Replication}

    A hot standby is a second [Durable] dir seeded from a primary
    snapshot ({!bootstrap_payload} → {!bootstrap_replica}) that then
    appends the primary's fsynced WAL frames {e verbatim}
    ({!apply_shipped}).  Because journal frames and wire frames share
    one codec, the replica's log is byte-identical to the primary's
    shipped suffix, its replay position is implied by its own file
    length, and recovery after a replica crash resumes from exactly the
    right primary offset ({!replica_cursor}).  Promotion
    ({!bump_repl_epoch}) appends a monotone epoch record and stamps the
    directory lockfile, fencing any stale ex-primary. *)

val repl_epoch : t -> int
(** Current replication epoch: 0 at creation, bumped by every
    {!bump_repl_epoch}, recovered as the maximum epoch recorded in the
    journal. *)

val replica_cursor : t -> int option
(** [Some off] iff this dir is an un-promoted replica: [off] is the
    primary-WAL byte offset it has applied through, i.e. the offset to
    present in a replication hello.  [None] on primaries. *)

val durable_offset : t -> int
(** Journal bytes covered by the last fsync — the exact prefix a
    primary may ship ({!Mspar_prelude.Journal.durable_offset}). *)

val wal_path : t -> string
(** Path of the journal file (for
    {!Mspar_prelude.Journal.read_slice} by the shipping loop). *)

val config_bytes : t -> string
(** The encoded config record, as journaled — shipped to replicas at
    bootstrap so both sides build identical state. *)

val bootstrap_payload : t -> int * string * int
(** Syncs the journal, then returns [(op_epoch, snapshot, wal_offset)]:
    a snapshot of the current state (op count [op_epoch]) plus the
    durable WAL offset covering it.  Every op after [wal_offset] reaches
    the replica as shipped frames; no disk blob is written.
    @raise Unix.Unix_error on filesystem errors. *)

val bootstrap_replica :
  dir:string ->
  config_bytes:string ->
  op_epoch:int ->
  wal_offset:int ->
  repl_epoch:int ->
  snapshot:string ->
  (unit, string) result
(** Seed a fresh replica dir from a primary's {!bootstrap_payload}:
    validates the payloads, writes the snapshot blob, and creates a
    journal holding exactly [Meta config; Meta marker; Epoch op_epoch].
    [Error] if the payloads are corrupt, the snapshot does not match
    [op_epoch], the dir already holds a journal, or it is locked.
    {!recover} the dir afterwards to obtain a [t] with
    [replica_cursor = Some wal_offset].
    @raise Unix.Unix_error on filesystem errors. *)

val apply_shipped :
  t -> string -> on_update:(u:int -> v:int -> changed:bool -> unit) -> (int, string) result
(** Apply a slice of primary WAL bytes (whole frames, starting at this
    replica's cursor) shipped by the primary: validates every frame and
    record up front, appends the bytes verbatim, applies each op in
    order (firing [on_update] per graph update so derived read state can
    be invalidated), maintains the dedup table from [Tagged] records,
    writes a local snapshot blob at shipped [Epoch] points, and advances
    the cursor.  Returns the number of ops applied.  [Error] without any
    state change when validation fails; an [Error "apply failed"]
    mid-application leaves the replica inconsistent — discard the dir
    and re-bootstrap. *)

val snapshot_blob_only : t -> unit
(** Write a snapshot blob at the current op count {e without} appending
    an [Epoch] record — the replica-side form of {!snapshot_now}, used
    where the epoch marker already exists as a shipped frame.
    @raise Unix.Unix_error on filesystem errors. *)

val bump_repl_epoch : t -> int
(** Promote: append a durable epoch record ([repl_epoch t + 1]), stamp
    the lockfile fence, clear {!replica_cursor}, and return the new
    epoch.  After this the dir is a primary; a stale ex-primary
    presenting an older epoch is refused by lock and handshake alike.
    @raise Unix.Unix_error on filesystem errors. *)

val sparsifier : t -> Dyn_sparsifier.t
val matching : t -> Dyn_matching.t
val config : t -> config
val op_count : t -> int
val stats : t -> stats

val close : t -> unit
(** Flush and close the journal, then release the directory lock.
    Idempotent.
    @raise Unix.Unix_error on filesystem errors. *)
