(** Fully dynamic (1+ε)-approximate matching (Theorem 3.5).

    The Gupta–Peng stability-window scheme on top of the static sparsifier
    pipeline: a (1+ε/4)-approximate matching M is computed by a static call
    that reads only O(n·Δ) of the graph; M is then reused (minus edges the
    adversary deletes) for the next ⌊ε/4·|M|⌋ updates — Lemma 3.4 keeps the
    approximation within (1+ε) across the window.  The static work is spread
    over the window, so the per-update cost is
    O(n·Δ / (ε·|M|)) = O(β/ε³·log(1/ε)) by Lemma 2.2.

    The scheme is safe against an {e adaptive} adversary: the matching the
    adversary observes during a window was fixed at the window start, and
    each rebuild uses fresh randomness that the adversary has not yet seen
    when it commits to the updates inside the window.

    The implementation performs each rebuild at the window boundary and
    reports the per-update cost both ways: [amortized] (total work /
    updates) and [spread] (each rebuild's work divided by its window length,
    maximised over windows — the worst-case figure the time-slicing
    scheduler of §3.3 would achieve). *)

open Mspar_prelude
open Mspar_matching

type t

type stats = {
  updates : int;
  rebuilds : int;
  total_work : int;  (** probe + marking + matcher work units *)
  max_spread_work : int;
      (** max over windows of (rebuild work / window length) — the simulated
          worst-case per-update cost *)
  total_ns : int64;
}

val create :
  ?multiplier:float -> Rng.t -> n:int -> beta:int -> eps:float -> t
(** Empty dynamic graph on [n] vertices with maintenance parameters.
    @raise Invalid_argument if [eps] is outside (0, 1). *)

val insert : t -> int -> int -> bool
(** Apply an edge insertion (returns [false] if already present). *)

val delete : t -> int -> int -> bool
(** Apply an edge deletion (returns [false] if absent). *)

val matching : t -> Matching.t
(** The currently maintained matching — valid for the current graph at all
    times. *)

val size : t -> int
val graph : t -> Dyn_graph.t
val stats : t -> stats

val force_rebuild : t -> unit
(** Trigger the static recomputation immediately (used by tests). *)

val invariant_failures : t -> string list
(** Audit the maintained matching: the mate array is an involution with
    in-range partners, every matched pair is a current graph edge, and
    the size counter matches.  One message per violation; [[]] = healthy.
    O(n). *)

val encode : t -> Buffer.t -> unit
(** Serialise the full state — dynamic graph (exact adjacency order), RNG
    position, parameters, mate array, stability window, work counters —
    for a snapshot blob.  A decoded copy replays bit-for-bit: the rebuild
    visits vertices in sorted order precisely so that its RNG consumption
    is reproducible. *)

val decode : Mspar_prelude.Codec.reader -> t
(** Inverse of {!encode}; validates with {!invariant_failures} before
    returning.
    @raise Failure on validation failure.
    @raise Mspar_prelude.Codec.Truncated on short input. *)
