open Mspar_prelude

type t = {
  nv : int;
  adj : int Vec.t array; (* adjacency as swap-remove vectors *)
  index : (int, int) Hashtbl.t array; (* neighbor -> position in adj vec *)
  active : (int, unit) Hashtbl.t; (* vertices of positive degree *)
  mutable m : int;
  mutable probe_count : int;
}

let create nv =
  if nv < 0 then invalid_arg "Dyn_graph.create: negative n";
  {
    nv;
    adj = Array.init nv (fun _ -> Vec.create ~dummy:(-1) ());
    index = Array.init nv (fun _ -> Hashtbl.create 8);
    active = Hashtbl.create 16;
    m = 0;
    probe_count = 0;
  }

let n t = t.nv
let m t = t.m
let degree t v = Vec.length t.adj.(v)

let check t u v =
  if u < 0 || v < 0 || u >= t.nv || v >= t.nv then
    invalid_arg "Dyn_graph: endpoint out of range"

let has_edge t u v = u <> v && Hashtbl.mem t.index.(u) v

let add_arc t u v =
  Hashtbl.replace t.index.(u) v (Vec.length t.adj.(u));
  Vec.push t.adj.(u) v

let remove_arc t u v =
  let pos = Hashtbl.find t.index.(u) v in
  Hashtbl.remove t.index.(u) v;
  let last = Vec.length t.adj.(u) - 1 in
  if pos <> last then begin
    let moved = Vec.get t.adj.(u) last in
    Vec.set t.adj.(u) pos moved;
    Hashtbl.replace t.index.(u) moved pos
  end;
  ignore (Vec.pop t.adj.(u))

let insert t u v =
  check t u v;
  if u = v || has_edge t u v then false
  else begin
    add_arc t u v;
    add_arc t v u;
    Hashtbl.replace t.active u ();
    Hashtbl.replace t.active v ();
    t.m <- t.m + 1;
    true
  end

let delete t u v =
  check t u v;
  if not (has_edge t u v) then false
  else begin
    remove_arc t u v;
    remove_arc t v u;
    if Vec.length t.adj.(u) = 0 then Hashtbl.remove t.active u;
    if Vec.length t.adj.(v) = 0 then Hashtbl.remove t.active v;
    t.m <- t.m - 1;
    true
  end

let neighbor t v i =
  t.probe_count <- t.probe_count + 1;
  Vec.get t.adj.(v) i

let iter_neighbors t v f =
  t.probe_count <- t.probe_count + Vec.length t.adj.(v);
  Vec.iter f t.adj.(v)

let random_neighbor t rng v =
  let d = Vec.length t.adj.(v) in
  if d = 0 then None
  else begin
    t.probe_count <- t.probe_count + 1;
    Some (Vec.get t.adj.(v) (Rng.int rng d))
  end

let sample_neighbors t rng v ~k =
  let d = Vec.length t.adj.(v) in
  let picks = Rng.sample_distinct rng ~k ~n:d in
  t.probe_count <- t.probe_count + Array.length picks;
  Array.to_list (Array.map (Vec.get t.adj.(v)) picks)

let probes t = t.probe_count
let reset_probes t = t.probe_count <- 0
let non_isolated_count t = Hashtbl.length t.active
let iter_non_isolated t f = Hashtbl.iter (fun v () -> f v) t.active

let non_isolated_sorted t =
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) t.active [])

let edges t =
  let acc = ref [] in
  for v = 0 to t.nv - 1 do
    Vec.iter (fun u -> if v < u then acc := (v, u) :: !acc) t.adj.(v)
  done;
  List.sort compare !acc

(* [Audit] materialises a snapshot on every pass and recovery decodes one
   per journal blob, so this is a hot path in the durable pipeline: push
   arcs straight into the packed CSR builder instead of consing and
   sorting a boxed pair list (the builder's counting sort re-establishes
   canonical order on its own). *)
let snapshot t =
  Mspar_graph.Graph.of_edges_iter ~n:t.nv (fun push ->
      for v = 0 to t.nv - 1 do
        Vec.iter (fun u -> if v < u then push v u) t.adj.(v)
      done)

(* ------------------------------------------------------------------ *)
(* Invariant audit                                                    *)
(* ------------------------------------------------------------------ *)

let invariant_failures t =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let arcs = ref 0 in
  for v = 0 to t.nv - 1 do
    let deg = Vec.length t.adj.(v) in
    arcs := !arcs + deg;
    if Hashtbl.length t.index.(v) <> deg then
      fail "vertex %d: index has %d entries for %d adjacency slots" v
        (Hashtbl.length t.index.(v)) deg;
    for i = 0 to deg - 1 do
      let u = Vec.get t.adj.(v) i in
      if u < 0 || u >= t.nv then fail "vertex %d: neighbor %d out of range" v u
      else begin
        if u = v then fail "vertex %d: self-loop" v;
        (match Hashtbl.find_opt t.index.(v) u with
        | Some p when p = i -> ()
        | Some p -> fail "vertex %d: index says %d is at slot %d, found at %d" v u p i
        | None -> fail "vertex %d: neighbor %d missing from index" v u);
        if not (Hashtbl.mem t.index.(u) v) then
          fail "asymmetric arc: %d -> %d has no reverse" v u
      end
    done;
    let active = Hashtbl.mem t.active v in
    if active && deg = 0 then fail "vertex %d active but isolated" v;
    if (not active) && deg > 0 then fail "vertex %d has degree %d but not active" v deg
  done;
  if !arcs <> 2 * t.m then fail "arc count %d, expected 2m = %d" !arcs (2 * t.m);
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                     *)
(* ------------------------------------------------------------------ *)

(* The exact adjacency Vec order is serialised, not just the edge set:
   neighbor sampling reads Vec positions, so replay after restore is
   bit-for-bit identical only if every vector comes back in the same
   order it was in at snapshot time. *)
let encode t buf =
  Codec.add_uvarint buf t.nv;
  Codec.add_uvarint buf t.m;
  Codec.add_uvarint buf t.probe_count;
  for v = 0 to t.nv - 1 do
    Codec.add_uvarint buf (Vec.length t.adj.(v));
    Vec.iter (fun u -> Codec.add_uvarint buf u) t.adj.(v)
  done

let decode r =
  let nv = Codec.read_uvarint r in
  let m = Codec.read_uvarint r in
  let probe_count = Codec.read_uvarint r in
  let t = create nv in
  t.probe_count <- probe_count;
  let arcs = ref 0 in
  for v = 0 to nv - 1 do
    let deg = Codec.read_uvarint r in
    arcs := !arcs + deg;
    for _ = 1 to deg do
      let u = Codec.read_uvarint r in
      if u < 0 || u >= nv then failwith "Dyn_graph.decode: neighbor out of range";
      if u = v then failwith "Dyn_graph.decode: self-loop";
      if Hashtbl.mem t.index.(v) u then
        failwith "Dyn_graph.decode: duplicate neighbor";
      add_arc t v u
    done;
    if deg > 0 then Hashtbl.replace t.active v ()
  done;
  if !arcs <> 2 * m then failwith "Dyn_graph.decode: arc count does not match m";
  (* symmetry: every serialised arc must have its reverse *)
  for v = 0 to nv - 1 do
    Vec.iter
      (fun u ->
        if not (Hashtbl.mem t.index.(u) v) then
          failwith "Dyn_graph.decode: asymmetric adjacency")
      t.adj.(v)
  done;
  t.m <- m;
  (* the decoder also vouches for the CSR form: a blob that cannot
     materialise into a clean canonical CSR is rejected here, at
     recovery time, instead of surfacing later as an audit finding *)
  (match Mspar_graph.Graph.audit (snapshot t) with
  | [] -> ()
  | f :: _ -> failwith ("Dyn_graph.decode: csr " ^ f));
  t
