open Mspar_prelude
open Mspar_graph

type stats = { updates : int; total_resample_work : int; max_update_work : int }

type t = {
  dg : Dyn_graph.t;
  rng : Rng.t;
  delta : int;
  marks : int list array; (* marks.(v) = neighbors currently marked due to v *)
  multiplicity : (int * int, int) Hashtbl.t; (* edge -> number of markers *)
  mutable distinct : int;
  mutable updates : int;
  mutable total_work : int;
  mutable max_work : int;
}

let create rng ~n ~delta =
  if delta < 1 then invalid_arg "Dyn_sparsifier.create: delta >= 1";
  {
    dg = Dyn_graph.create n;
    rng;
    delta;
    marks = Array.make n [];
    multiplicity = Hashtbl.create 64;
    distinct = 0;
    updates = 0;
    total_work = 0;
    max_work = 0;
  }

let key u v = if u < v then (u, v) else (v, u)

let unmark t v u =
  let k = key v u in
  match Hashtbl.find_opt t.multiplicity k with
  | None -> assert false
  | Some 1 ->
      Hashtbl.remove t.multiplicity k;
      t.distinct <- t.distinct - 1
  | Some c -> Hashtbl.replace t.multiplicity k (c - 1)

let mark t v u =
  let k = key v u in
  match Hashtbl.find_opt t.multiplicity k with
  | None ->
      Hashtbl.replace t.multiplicity k 1;
      t.distinct <- t.distinct + 1
  | Some c -> Hashtbl.replace t.multiplicity k (c + 1)

(* discard and redraw v's marks; returns work units *)
let resample t v =
  let old = t.marks.(v) in
  List.iter (unmark t v) old;
  let fresh = Dyn_graph.sample_neighbors t.dg t.rng v ~k:t.delta in
  List.iter (mark t v) fresh;
  t.marks.(v) <- fresh;
  List.length old + List.length fresh

let account t work =
  t.updates <- t.updates + 1;
  t.total_work <- t.total_work + work;
  if work > t.max_work then t.max_work <- work

let insert t u v =
  let changed = Dyn_graph.insert t.dg u v in
  if changed then begin
    let w = resample t u + resample t v in
    account t (w + 1)
  end;
  changed

let delete t u v =
  let changed = Dyn_graph.delete t.dg u v in
  if changed then begin
    (* the deleted edge may carry marks from both endpoints; resampling
       removes them because it discards the endpoints' full mark lists *)
    let w = resample t u + resample t v in
    account t (w + 1)
  end;
  changed

let graph t = t.dg

let sparsifier t =
  (* push the marked edges straight into the packed CSR builder — no
     intermediate list of boxed pairs *)
  Graph.of_edges_iter ~n:(Dyn_graph.n t.dg) (fun push ->
      Hashtbl.iter (fun (u, v) _count -> push u v) t.multiplicity)

let sparsifier_edge_count t = t.distinct

let stats t =
  {
    updates = t.updates;
    total_resample_work = t.total_work;
    max_update_work = t.max_work;
  }

let check_invariants t =
  let ok = ref true in
  let n = Dyn_graph.n t.dg in
  let recount = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    let ms = t.marks.(v) in
    let expected = min t.delta (Dyn_graph.degree t.dg v) in
    if List.length ms <> expected then ok := false;
    if List.length (List.sort_uniq compare ms) <> List.length ms then
      ok := false;
    List.iter
      (fun u ->
        if not (Dyn_graph.has_edge t.dg v u) then ok := false;
        let k = key v u in
        Hashtbl.replace recount k
          (1 + Option.value ~default:0 (Hashtbl.find_opt recount k)))
      ms
  done;
  if Hashtbl.length recount <> Hashtbl.length t.multiplicity then ok := false;
  Hashtbl.iter
    (fun k c ->
      if Option.value ~default:0 (Hashtbl.find_opt t.multiplicity k) <> c then
        ok := false)
    recount;
  if t.distinct <> Hashtbl.length t.multiplicity then ok := false;
  !ok
