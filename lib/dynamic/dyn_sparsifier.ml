open Mspar_prelude
open Mspar_graph

type stats = {
  updates : int;
  total_resample_work : int;
  max_update_work : int;
  repairs : int;
}

type t = {
  dg : Dyn_graph.t;
  rng : Rng.t;
  delta : int;
  marks : int list array; (* marks.(v) = neighbors currently marked due to v *)
  multiplicity : (int * int, int) Hashtbl.t; (* edge -> number of markers *)
  mutable distinct : int;
  mutable updates : int;
  mutable total_work : int;
  mutable max_work : int;
  mutable repairs : int;
}

let create rng ~n ~delta =
  if delta < 1 then invalid_arg "Dyn_sparsifier.create: delta >= 1";
  {
    dg = Dyn_graph.create n;
    rng;
    delta;
    marks = Array.make n [];
    multiplicity = Hashtbl.create 64;
    distinct = 0;
    updates = 0;
    total_work = 0;
    max_work = 0;
    repairs = 0;
  }

let key u v = if u < v then (u, v) else (v, u)

let unmark t v u =
  let k = key v u in
  match Hashtbl.find_opt t.multiplicity k with
  | None -> assert false
  | Some 1 ->
      Hashtbl.remove t.multiplicity k;
      t.distinct <- t.distinct - 1
  | Some c -> Hashtbl.replace t.multiplicity k (c - 1)

let mark t v u =
  let k = key v u in
  match Hashtbl.find_opt t.multiplicity k with
  | None ->
      Hashtbl.replace t.multiplicity k 1;
      t.distinct <- t.distinct + 1
  | Some c -> Hashtbl.replace t.multiplicity k (c + 1)

(* discard and redraw v's marks; returns work units *)
let resample t v =
  let old = t.marks.(v) in
  List.iter (unmark t v) old;
  let fresh = Dyn_graph.sample_neighbors t.dg t.rng v ~k:t.delta in
  List.iter (mark t v) fresh;
  t.marks.(v) <- fresh;
  List.length old + List.length fresh

let account t work =
  t.updates <- t.updates + 1;
  t.total_work <- t.total_work + work;
  if work > t.max_work then t.max_work <- work

let insert t u v =
  let changed = Dyn_graph.insert t.dg u v in
  if changed then begin
    let w = resample t u + resample t v in
    account t (w + 1)
  end;
  changed

let delete t u v =
  let changed = Dyn_graph.delete t.dg u v in
  if changed then begin
    (* the deleted edge may carry marks from both endpoints; resampling
       removes them because it discards the endpoints' full mark lists *)
    let w = resample t u + resample t v in
    account t (w + 1)
  end;
  changed

let graph t = t.dg

let sparsifier t =
  (* push the marked edges straight into the packed CSR builder — no
     intermediate list of boxed pairs *)
  Graph.of_edges_iter ~n:(Dyn_graph.n t.dg) (fun push ->
      Hashtbl.iter (fun (u, v) _count -> push u v) t.multiplicity)

let sparsifier_edge_count t = t.distinct
let in_sparsifier t u v = Hashtbl.mem t.multiplicity (key u v)

let stats t =
  {
    updates = t.updates;
    total_resample_work = t.total_work;
    max_update_work = t.max_work;
    repairs = t.repairs;
  }

let invariant_failures t =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let n = Dyn_graph.n t.dg in
  let recount = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    let ms = t.marks.(v) in
    let expected = Int.min t.delta (Dyn_graph.degree t.dg v) in
    let len = List.length ms in
    if len <> expected then
      fail "vertex %d holds %d marks, expected min(delta, deg) = %d" v len expected;
    if List.length (List.sort_uniq Int.compare ms) <> len then
      fail "vertex %d has duplicate marks" v;
    List.iter
      (fun u ->
        if not (Dyn_graph.has_edge t.dg v u) then
          fail "mark (%d, %d) is not a current graph edge" v u;
        let k = key v u in
        Hashtbl.replace recount k
          (1 + Option.value ~default:0 (Hashtbl.find_opt recount k)))
      ms
  done;
  if Hashtbl.length recount <> Hashtbl.length t.multiplicity then
    fail "multiplicity table has %d edges, recount has %d"
      (Hashtbl.length t.multiplicity) (Hashtbl.length recount);
  Hashtbl.iter
    (fun (u, v) c ->
      let stored = Option.value ~default:0 (Hashtbl.find_opt t.multiplicity (u, v)) in
      if stored <> c then
        fail "edge (%d, %d): multiplicity %d, recounted %d" u v stored c)
    recount;
  if t.distinct <> Hashtbl.length t.multiplicity then
    fail "distinct counter %d, multiplicity table holds %d" t.distinct
      (Hashtbl.length t.multiplicity);
  List.rev !failures

let check_invariants t = List.is_empty (invariant_failures t)

(* Rebuild the marking state from the authoritative dynamic graph: throw
   away whatever the multiplicity table and mark lists claim and redraw
   every vertex's marks fresh.  Theorem 2.1 needs only that each vertex
   holds min(delta, deg) independent uniform marks — fresh randomness
   after a detected corruption is exactly as good as the lost draws. *)
let repair t =
  Hashtbl.reset t.multiplicity;
  t.distinct <- 0;
  let work = ref 0 in
  let n = Dyn_graph.n t.dg in
  for v = 0 to n - 1 do
    t.marks.(v) <- [];
    if Dyn_graph.degree t.dg v > 0 then begin
      let fresh = Dyn_graph.sample_neighbors t.dg t.rng v ~k:t.delta in
      List.iter (mark t v) fresh;
      t.marks.(v) <- fresh;
      work := !work + List.length fresh
    end
  done;
  t.repairs <- t.repairs + 1;
  t.total_work <- t.total_work + !work

(* Deterministic white-box damage for audit tests: drop one mark without
   updating the multiplicity table (breaking both the mark-count and the
   recount invariants), or — on an empty structure — invent a phantom
   marked edge that is not in the graph at all. *)
let inject_corruption t =
  let n = Dyn_graph.n t.dg in
  let v = ref (-1) in
  (try
     for u = 0 to n - 1 do
       if not (List.is_empty t.marks.(u)) then begin
         v := u;
         raise Exit
       end
     done
   with Exit -> ());
  if !v >= 0 then t.marks.(!v) <- List.tl t.marks.(!v)
  else if n >= 2 then begin
    Hashtbl.replace t.multiplicity (0, 1) 1;
    t.distinct <- t.distinct + 1
  end
  else invalid_arg "Dyn_sparsifier.inject_corruption: nothing to corrupt"

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                     *)
(* ------------------------------------------------------------------ *)

let encode t buf =
  Dyn_graph.encode t.dg buf;
  Array.iter (Codec.add_int64 buf) (Rng.state t.rng);
  Codec.add_uvarint buf t.delta;
  Array.iter
    (fun ms ->
      Codec.add_uvarint buf (List.length ms);
      List.iter (Codec.add_uvarint buf) ms)
    t.marks;
  Codec.add_uvarint buf t.updates;
  Codec.add_uvarint buf t.total_work;
  Codec.add_uvarint buf t.max_work;
  Codec.add_uvarint buf t.repairs

let decode r =
  let dg = Dyn_graph.decode r in
  let rng = Rng.of_state (Array.init 4 (fun _ -> Codec.read_int64 r)) in
  let delta = Codec.read_uvarint r in
  if delta < 1 then failwith "Dyn_sparsifier.decode: delta < 1";
  let n = Dyn_graph.n dg in
  let marks =
    Array.init n (fun _ ->
        let len = Codec.read_uvarint r in
        List.init len (fun _ -> Codec.read_uvarint r))
  in
  let updates = Codec.read_uvarint r in
  let total_work = Codec.read_uvarint r in
  let max_work = Codec.read_uvarint r in
  let repairs = Codec.read_uvarint r in
  (* multiplicity and distinct are derived state: recount from the marks *)
  let multiplicity = Hashtbl.create 64 in
  Array.iteri
    (fun v ms ->
      List.iter
        (fun u ->
          if u < 0 || u >= n then failwith "Dyn_sparsifier.decode: mark out of range";
          let k = key v u in
          Hashtbl.replace multiplicity k
            (1 + Option.value ~default:0 (Hashtbl.find_opt multiplicity k)))
        ms)
    marks;
  let t =
    {
      dg;
      rng;
      delta;
      marks;
      multiplicity;
      distinct = Hashtbl.length multiplicity;
      updates;
      total_work;
      max_work;
      repairs;
    }
  in
  (match invariant_failures t with
  | [] -> ()
  | f :: _ -> failwith ("Dyn_sparsifier.decode: " ^ f));
  t
