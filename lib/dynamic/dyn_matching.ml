open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

type stats = {
  updates : int;
  rebuilds : int;
  total_work : int;
  max_spread_work : int;
  total_ns : int64;
}

type t = {
  dg : Dyn_graph.t;
  rng : Rng.t;
  beta : int;
  eps : float;
  multiplier : float;
  mate : int array;
  mutable msize : int;
  mutable window_left : int;
  mutable updates : int;
  mutable rebuilds : int;
  mutable total_work : int;
  mutable max_spread_work : int;
  mutable total_ns : int64;
}

let create ?(multiplier = 2.0) rng ~n ~beta ~eps =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Dyn_matching: eps in (0,1)";
  {
    dg = Dyn_graph.create n;
    rng;
    beta;
    eps;
    multiplier;
    mate = Array.make n (-1);
    msize = 0;
    window_left = 1;
    updates = 0;
    rebuilds = 0;
    total_work = 0;
    max_spread_work = 0;
    total_ns = 0L;
  }

let graph t = t.dg
let size t = t.msize

let matching t =
  let m = Matching.create (Dyn_graph.n t.dg) in
  Array.iteri (fun v u -> if u > v then Matching.add m v u) t.mate;
  m

let stats t =
  {
    updates = t.updates;
    rebuilds = t.rebuilds;
    total_work = t.total_work;
    max_spread_work = t.max_spread_work;
    total_ns = t.total_ns;
  }

(* Static (1+eps/2)-approximate recomputation over the dynamic adjacency
   structure: sample-based sparsification touching only non-isolated
   vertices, then the depth-limited matcher on the sparsifier. *)
let rebuild t =
  (* Budget split: the sparsifier and the matcher each take eps/2, composing
     to (1+eps/2)^2 <= 1+2eps... the window of eps/4*|M| updates adds the
     Lemma 3.4 slack on top.  Like the paper we do not chase the exact
     constants — the scaling in beta, eps and |M| is what the theorem
     asserts and what the benches measure. *)
  let eps_stage = max (t.eps /. 2.0) 0.05 in
  let delta =
    Delta_param.scaled ~multiplier:t.multiplier ~beta:t.beta ~eps:eps_stage
  in
  Dyn_graph.reset_probes t.dg;
  let t0 = Clock.now_ns () in
  let pairs = ref [] in
  (* Sorted (not hashtable-order) iteration: each sampled vertex draws
     from the RNG, so the visit order must be canonical for a restored
     snapshot to consume the stream exactly like the original run. *)
  List.iter
    (fun v ->
      let d = Dyn_graph.degree t.dg v in
      if d <= 2 * delta then
        Dyn_graph.iter_neighbors t.dg v (fun u -> pairs := (v, u) :: !pairs)
      else
        List.iter
          (fun u -> pairs := (v, u) :: !pairs)
          (Dyn_graph.sample_neighbors t.dg t.rng v ~k:delta))
    (Dyn_graph.non_isolated_sorted t.dg);
  let sparsifier = Graph.of_edges ~n:(Dyn_graph.n t.dg) !pairs in
  let matching = Approx.solve_general ~eps:eps_stage sparsifier in
  let t1 = Clock.now_ns () in
  (* install *)
  Array.fill t.mate 0 (Array.length t.mate) (-1);
  Matching.iter_edges matching (fun u v ->
      t.mate.(u) <- v;
      t.mate.(v) <- u);
  t.msize <- Matching.size matching;
  (* work accounting: adjacency probes + matcher sweeps over the
     sparsifier (2k+1 alternating-tree passes is the matcher's work shape) *)
  let k = Approx.phases_for eps_stage in
  let work =
    Dyn_graph.probes t.dg + (((2 * k) + 1) * Graph.m sparsifier)
  in
  let window = max 1 (int_of_float (t.eps /. 4.0 *. float_of_int t.msize)) in
  t.window_left <- window;
  t.rebuilds <- t.rebuilds + 1;
  t.total_work <- t.total_work + work;
  let spread = (work + window - 1) / window in
  if spread > t.max_spread_work then t.max_spread_work <- spread;
  t.total_ns <- Int64.add t.total_ns (Int64.sub t1 t0)

let force_rebuild = rebuild

let after_update t =
  t.updates <- t.updates + 1;
  t.window_left <- t.window_left - 1;
  if t.window_left <= 0 then rebuild t

let insert t u v =
  let changed = Dyn_graph.insert t.dg u v in
  if changed then after_update t;
  changed

let delete t u v =
  let changed = Dyn_graph.delete t.dg u v in
  if changed then begin
    (* keep the output matching a subgraph of the current graph *)
    if t.mate.(u) = v then begin
      t.mate.(u) <- -1;
      t.mate.(v) <- -1;
      t.msize <- t.msize - 1
    end;
    after_update t
  end;
  changed

(* ------------------------------------------------------------------ *)
(* Invariant audit                                                    *)
(* ------------------------------------------------------------------ *)

let invariant_failures t =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let n = Dyn_graph.n t.dg in
  if Array.length t.mate <> n then
    fail "mate array length %d, expected %d" (Array.length t.mate) n;
  let matched = ref 0 in
  Array.iteri
    (fun v u ->
      if u <> -1 then begin
        if u < 0 || u >= n then fail "vertex %d matched to out-of-range %d" v u
        else begin
          if u = v then fail "vertex %d matched to itself" v;
          if t.mate.(u) <> v then
            fail "mate not an involution: mate(%d) = %d but mate(%d) = %d" v u u
              t.mate.(u);
          if v < u then begin
            incr matched;
            if not (Dyn_graph.has_edge t.dg v u) then
              fail "matched pair (%d, %d) is not a current graph edge" v u
          end
        end
      end)
    t.mate;
  if !matched <> t.msize then
    fail "msize counter %d, mate array holds %d pairs" t.msize !matched;
  if t.window_left < 0 then fail "window_left is negative (%d)" t.window_left;
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                     *)
(* ------------------------------------------------------------------ *)

let encode t buf =
  Dyn_graph.encode t.dg buf;
  Array.iter (Codec.add_int64 buf) (Rng.state t.rng);
  Codec.add_uvarint buf t.beta;
  Codec.add_float buf t.eps;
  Codec.add_float buf t.multiplier;
  Array.iter (Codec.add_int buf) t.mate;
  Codec.add_uvarint buf t.msize;
  Codec.add_int buf t.window_left;
  Codec.add_uvarint buf t.updates;
  Codec.add_uvarint buf t.rebuilds;
  Codec.add_uvarint buf t.total_work;
  Codec.add_uvarint buf t.max_spread_work;
  Codec.add_int64 buf t.total_ns

let decode r =
  let dg = Dyn_graph.decode r in
  let rng = Rng.of_state (Array.init 4 (fun _ -> Codec.read_int64 r)) in
  let beta = Codec.read_uvarint r in
  let eps = Codec.read_float r in
  if not (eps > 0.0 && eps < 1.0) then failwith "Dyn_matching.decode: bad eps";
  let multiplier = Codec.read_float r in
  let n = Dyn_graph.n dg in
  let mate = Array.init n (fun _ -> Codec.read_int r) in
  let msize = Codec.read_uvarint r in
  let window_left = Codec.read_int r in
  let updates = Codec.read_uvarint r in
  let rebuilds = Codec.read_uvarint r in
  let total_work = Codec.read_uvarint r in
  let max_spread_work = Codec.read_uvarint r in
  let total_ns = Codec.read_int64 r in
  let t =
    {
      dg;
      rng;
      beta;
      eps;
      multiplier;
      mate;
      msize;
      window_left;
      updates;
      rebuilds;
      total_work;
      max_spread_work;
      total_ns;
    }
  in
  (match invariant_failures t with
  | [] -> ()
  | f :: _ -> failwith ("Dyn_matching.decode: " ^ f));
  t
