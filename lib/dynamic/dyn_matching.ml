open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

type stats = {
  updates : int;
  rebuilds : int;
  total_work : int;
  max_spread_work : int;
  total_ns : int64;
}

type t = {
  dg : Dyn_graph.t;
  rng : Rng.t;
  beta : int;
  eps : float;
  multiplier : float;
  mate : int array;
  mutable msize : int;
  mutable window_left : int;
  mutable updates : int;
  mutable rebuilds : int;
  mutable total_work : int;
  mutable max_spread_work : int;
  mutable total_ns : int64;
}

let create ?(multiplier = 2.0) rng ~n ~beta ~eps =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Dyn_matching: eps in (0,1)";
  {
    dg = Dyn_graph.create n;
    rng;
    beta;
    eps;
    multiplier;
    mate = Array.make n (-1);
    msize = 0;
    window_left = 1;
    updates = 0;
    rebuilds = 0;
    total_work = 0;
    max_spread_work = 0;
    total_ns = 0L;
  }

let graph t = t.dg
let size t = t.msize

let matching t =
  let m = Matching.create (Dyn_graph.n t.dg) in
  Array.iteri (fun v u -> if u > v then Matching.add m v u) t.mate;
  m

let stats t =
  {
    updates = t.updates;
    rebuilds = t.rebuilds;
    total_work = t.total_work;
    max_spread_work = t.max_spread_work;
    total_ns = t.total_ns;
  }

(* Static (1+eps/2)-approximate recomputation over the dynamic adjacency
   structure: sample-based sparsification touching only non-isolated
   vertices, then the depth-limited matcher on the sparsifier. *)
let rebuild t =
  (* Budget split: the sparsifier and the matcher each take eps/2, composing
     to (1+eps/2)^2 <= 1+2eps... the window of eps/4*|M| updates adds the
     Lemma 3.4 slack on top.  Like the paper we do not chase the exact
     constants — the scaling in beta, eps and |M| is what the theorem
     asserts and what the benches measure. *)
  let eps_stage = max (t.eps /. 2.0) 0.05 in
  let delta =
    Delta_param.scaled ~multiplier:t.multiplier ~beta:t.beta ~eps:eps_stage
  in
  Dyn_graph.reset_probes t.dg;
  let t0 = Clock.now_ns () in
  let pairs = ref [] in
  Dyn_graph.iter_non_isolated t.dg (fun v ->
      let d = Dyn_graph.degree t.dg v in
      if d <= 2 * delta then
        Dyn_graph.iter_neighbors t.dg v (fun u -> pairs := (v, u) :: !pairs)
      else
        List.iter
          (fun u -> pairs := (v, u) :: !pairs)
          (Dyn_graph.sample_neighbors t.dg t.rng v ~k:delta));
  let sparsifier = Graph.of_edges ~n:(Dyn_graph.n t.dg) !pairs in
  let matching = Approx.solve_general ~eps:eps_stage sparsifier in
  let t1 = Clock.now_ns () in
  (* install *)
  Array.fill t.mate 0 (Array.length t.mate) (-1);
  Matching.iter_edges matching (fun u v ->
      t.mate.(u) <- v;
      t.mate.(v) <- u);
  t.msize <- Matching.size matching;
  (* work accounting: adjacency probes + matcher sweeps over the
     sparsifier (2k+1 alternating-tree passes is the matcher's work shape) *)
  let k = Approx.phases_for eps_stage in
  let work =
    Dyn_graph.probes t.dg + (((2 * k) + 1) * Graph.m sparsifier)
  in
  let window = max 1 (int_of_float (t.eps /. 4.0 *. float_of_int t.msize)) in
  t.window_left <- window;
  t.rebuilds <- t.rebuilds + 1;
  t.total_work <- t.total_work + work;
  let spread = (work + window - 1) / window in
  if spread > t.max_spread_work then t.max_spread_work <- spread;
  t.total_ns <- Int64.add t.total_ns (Int64.sub t1 t0)

let force_rebuild = rebuild

let after_update t =
  t.updates <- t.updates + 1;
  t.window_left <- t.window_left - 1;
  if t.window_left <= 0 then rebuild t

let insert t u v =
  let changed = Dyn_graph.insert t.dg u v in
  if changed then after_update t;
  changed

let delete t u v =
  let changed = Dyn_graph.delete t.dg u v in
  if changed then begin
    (* keep the output matching a subgraph of the current graph *)
    if t.mate.(u) = v then begin
      t.mate.(u) <- -1;
      t.mate.(v) <- -1;
      t.msize <- t.msize - 1
    end;
    after_update t
  end;
  changed
