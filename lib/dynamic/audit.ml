open Mspar_graph

let prefix p = List.map (fun s -> p ^ ": " ^ s)

let graph dg =
  let dyn = prefix "dyn-graph" (Dyn_graph.invariant_failures dg) in
  (* Materialise and audit the CSR form too: the static checker covers
     canonicality (sorted blocks, symmetry, degree-sum = 2m, max-degree
     cache) and cross-checks the dynamic edge count. *)
  let snap = Dyn_graph.snapshot dg in
  let csr = prefix "csr" (Graph.audit snap) in
  let cross =
    if Graph.m snap <> Dyn_graph.m dg then
      [
        Printf.sprintf "cross: snapshot has %d edges, dynamic graph claims %d"
          (Graph.m snap) (Dyn_graph.m dg);
      ]
    else []
  in
  dyn @ csr @ cross

let sparsifier sp =
  let g = graph (Dyn_sparsifier.graph sp) in
  let marks = prefix "marks" (Dyn_sparsifier.invariant_failures sp) in
  (* The containment check (every marked edge is a current graph edge)
     lives in the mark invariants; here we additionally materialise G_Δ
     and verify it is a well-formed CSR of the expected size. *)
  let gd = Dyn_sparsifier.sparsifier sp in
  let csr = prefix "gdelta-csr" (Graph.audit gd) in
  let count =
    if Graph.m gd <> Dyn_sparsifier.sparsifier_edge_count sp then
      [
        Printf.sprintf
          "gdelta: materialised %d edges, distinct counter says %d" (Graph.m gd)
          (Dyn_sparsifier.sparsifier_edge_count sp);
      ]
    else []
  in
  g @ marks @ csr @ count

let matching dm =
  let g = graph (Dyn_matching.graph dm) in
  let m = prefix "matching" (Dyn_matching.invariant_failures dm) in
  g @ m
