(** Fully dynamic undirected graph (fixed vertex set).

    Supports O(1)-expected edge insertion and deletion (hash-indexed
    swap-remove adjacency vectors) and O(1) uniform sampling of an incident
    edge — the primitive the dynamic sparsifier needs.  All adjacency reads
    are counted in a probe counter, mirroring {!Mspar_graph.Graph}. *)

open Mspar_prelude

type t

val create : int -> t
(** Edgeless dynamic graph on [n] vertices.
    @raise Invalid_argument if [n] is negative. *)

val n : t -> int
val m : t -> int
val degree : t -> int -> int

val has_edge : t -> int -> int -> bool
(** O(1) expected; not counted as a probe. *)

val insert : t -> int -> int -> bool
(** [insert t u v] adds the edge; returns [false] (and changes nothing) if
    it was already present or [u = v].
    @raise Invalid_argument on out-of-range endpoints. *)

val delete : t -> int -> int -> bool
(** [delete t u v] removes the edge; returns [false] if absent. *)

val neighbor : t -> int -> int -> int
(** [neighbor t v i] is the [i]-th neighbor of [v] in the current internal
    order (which changes under deletion).  Counts one probe. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Counts [degree t v] probes. *)

val random_neighbor : t -> Rng.t -> int -> int option
(** Uniform incident neighbor, O(1); counts one probe. *)

val sample_neighbors : t -> Rng.t -> int -> k:int -> int list
(** [min k deg] distinct uniform neighbors of a vertex, O(k) expected;
    counts that many probes. *)

val probes : t -> int
val reset_probes : t -> unit

val non_isolated_count : t -> int
(** Number of vertices of positive degree; O(1). *)

val iter_non_isolated : t -> (int -> unit) -> unit
(** Iterate the vertices of positive degree in O(#non-isolated) — this is
    what lets a rebuild cost O(|MCM|·β·Δ) instead of O(n·Δ)
    (Lemma 2.2 + Obs 2.10).  Order is the hashtable's, i.e. unspecified
    and {e not} reproducible across restores; randomised consumers that
    must replay deterministically use {!non_isolated_sorted}. *)

val non_isolated_sorted : t -> int list
(** The vertices of positive degree in ascending order —
    O(#non-isolated · log) but with a canonical order, so code that draws
    randomness per vertex (the matching rebuild) consumes the RNG stream
    identically before and after a snapshot/restore. *)

val snapshot : t -> Mspar_graph.Graph.t
(** Immutable copy as a static graph; costs O(n + m) through the packed
    CSR builder, no boxed intermediates (audit/diagnostic use — the
    sublinear algorithms never call it). *)

val edges : t -> (int * int) list
(** Current edges, normalised and sorted. *)

val invariant_failures : t -> string list
(** Structural audit: adjacency/index coherence (every neighbor indexed
    at its true slot), symmetry of arcs, no self-loops or duplicates,
    active-set = vertices of positive degree, and arc count = 2m.  One
    message per violation; [[]] means healthy.  O(n + m). *)

val encode : t -> Buffer.t -> unit
(** Serialise for a snapshot blob.  The {e exact} adjacency order is
    preserved (sampling reads positions), so a decoded copy replays the
    RNG stream bit-for-bit like the original. *)

val decode : Codec.reader -> t
(** Inverse of {!encode}, with structural validation (range, symmetry,
    no duplicates, arc-count cross-check, and a {!Mspar_graph.Graph.audit}
    of the materialised CSR form).
    @raise Failure on validation failure.
    @raise Codec.Truncated on short input. *)
