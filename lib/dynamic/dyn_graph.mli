(** Fully dynamic undirected graph (fixed vertex set).

    Supports O(1)-expected edge insertion and deletion (hash-indexed
    swap-remove adjacency vectors) and O(1) uniform sampling of an incident
    edge — the primitive the dynamic sparsifier needs.  All adjacency reads
    are counted in a probe counter, mirroring {!Mspar_graph.Graph}. *)

open Mspar_prelude

type t

val create : int -> t
(** Edgeless dynamic graph on [n] vertices.
    @raise Invalid_argument if [n] is negative. *)

val n : t -> int
val m : t -> int
val degree : t -> int -> int

val has_edge : t -> int -> int -> bool
(** O(1) expected; not counted as a probe. *)

val insert : t -> int -> int -> bool
(** [insert t u v] adds the edge; returns [false] (and changes nothing) if
    it was already present or [u = v].
    @raise Invalid_argument on out-of-range endpoints. *)

val delete : t -> int -> int -> bool
(** [delete t u v] removes the edge; returns [false] if absent. *)

val neighbor : t -> int -> int -> int
(** [neighbor t v i] is the [i]-th neighbor of [v] in the current internal
    order (which changes under deletion).  Counts one probe. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Counts [degree t v] probes. *)

val random_neighbor : t -> Rng.t -> int -> int option
(** Uniform incident neighbor, O(1); counts one probe. *)

val sample_neighbors : t -> Rng.t -> int -> k:int -> int list
(** [min k deg] distinct uniform neighbors of a vertex, O(k) expected;
    counts that many probes. *)

val probes : t -> int
val reset_probes : t -> unit

val non_isolated_count : t -> int
(** Number of vertices of positive degree; O(1). *)

val iter_non_isolated : t -> (int -> unit) -> unit
(** Iterate the vertices of positive degree in O(#non-isolated) — this is
    what lets a rebuild cost O(|MCM|·β·Δ) instead of O(n·Δ)
    (Lemma 2.2 + Obs 2.10). *)

val snapshot : t -> Mspar_graph.Graph.t
(** Immutable copy as a static graph; costs O(n + m) (test/diagnostic use —
    the sublinear algorithms never call it). *)

val edges : t -> (int * int) list
(** Current edges, normalised and sorted. *)
