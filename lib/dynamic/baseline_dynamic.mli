(** Dynamic maximal-matching baseline (the comparator of Theorem 3.5).

    Maintains a {e maximal} matching (hence a 2-approximate MCM) under edge
    updates by local repair: on inserting an edge with both endpoints free,
    match it; on deleting a matched edge, each freed endpoint scans its
    adjacency for a free neighbor.  The repair scan costs Θ(deg) in the
    worst case — this is the growth-with-n behaviour the paper contrasts
    with its O(β/ε³·log(1/ε)) update (Barenboim–Maimon reduce the scan to
    O(√(βn)) with bucketing; the measured quantity here still exhibits the
    √n-versus-constant separation the paper claims, see DESIGN.md §4). *)

open Mspar_matching

type t

type stats = {
  updates : int;
  total_work : int;  (** neighbors scanned during repairs *)
  max_update_work : int;
}

val create : n:int -> t
val insert : t -> int -> int -> bool
val delete : t -> int -> int -> bool
val matching : t -> Matching.t
val size : t -> int
val graph : t -> Dyn_graph.t
val stats : t -> stats
