(** Dynamically maintained G_Δ under an {e oblivious} adversary (§3.3).

    The paper first observes that against an oblivious adversary the
    sparsifier itself is easy to maintain with O(Δ) worst-case update time:
    after an update touching (u, v), discard the (at most Δ) edges marked
    {e due to} u and due to v and draw fresh marks for both endpoints.  The
    marks of different vertices stay mutually independent, so Theorem 2.1
    continues to apply to every snapshot — {e provided the adversary's
    updates do not depend on the algorithm's coins}.  (Against an adaptive
    adversary this argument collapses, which is why {!Dyn_matching} uses the
    stability-window scheme instead; the paper makes exactly this point.)

    Mark multiplicity is tracked per edge so that an edge marked by both
    endpoints survives the resampling of one of them. *)

open Mspar_prelude
open Mspar_graph

type t

type stats = {
  updates : int;
  total_resample_work : int;  (** marks drawn + discarded across updates *)
  max_update_work : int;
  repairs : int;  (** times {!repair} rebuilt the marking state *)
}

val create : Rng.t -> n:int -> delta:int -> t
(** @raise Invalid_argument if [delta < 1]. *)

val insert : t -> int -> int -> bool
(** Apply an insertion and resample both endpoints' marks. O(Δ). *)

val delete : t -> int -> int -> bool
(** Apply a deletion and resample both endpoints' marks. O(Δ). *)

val graph : t -> Dyn_graph.t

val sparsifier : t -> Graph.t
(** Snapshot of the current G_Δ (union of current marks). Costs O(n·Δ) to
    materialise; the maintained state itself is updated in O(Δ). *)

val sparsifier_edge_count : t -> int
(** Number of distinct currently marked edges, O(1). *)

val in_sparsifier : t -> int -> int -> bool
(** Is the (undirected) edge currently marked into G_Δ?  O(1) — the
    point-query read path for the service daemon; no materialisation. *)

val stats : t -> stats

val check_invariants : t -> bool
(** Every marked edge is a current graph edge; every vertex holds exactly
    min(Δ, deg) distinct marks.  For tests. *)

val invariant_failures : t -> string list
(** The checks behind {!check_invariants}, one human-readable message per
    violation (mark counts, duplicates, graph membership, multiplicity
    recount, distinct counter).  [[]] means healthy.  O(n·Δ). *)

val repair : t -> unit
(** Rebuild the marking state from the authoritative dynamic graph:
    discard the (possibly corrupt) mark lists and multiplicity table and
    redraw min(Δ, deg) fresh marks for every vertex.  Fresh randomness
    keeps Theorem 2.1 valid — mark independence is all it needs.  Bumps
    [repairs] in {!stats} and adds the redraw to the work total.  O(n·Δ). *)

val inject_corruption : t -> unit
(** Test hook: deterministically damage the marking state (drop a mark
    without unmarking it, or invent a phantom marked edge on an empty
    structure) so that {!invariant_failures} is non-empty and audit →
    {!repair} paths can be exercised.
    @raise Invalid_argument if the structure is too small to corrupt
    ([n < 2] with no marks). *)

val encode : t -> Buffer.t -> unit
(** Serialise the full state — dynamic graph (exact adjacency order), RNG
    position, mark lists, work counters — for a snapshot blob.  The
    multiplicity table is derived state and is recounted on decode. *)

val decode : Mspar_prelude.Codec.reader -> t
(** Inverse of {!encode}; validates with {!invariant_failures} before
    returning, so a corrupt blob is rejected rather than installed.
    @raise Failure on validation failure.
    @raise Mspar_prelude.Codec.Truncated on short input. *)
