(** Dynamically maintained G_Δ under an {e oblivious} adversary (§3.3).

    The paper first observes that against an oblivious adversary the
    sparsifier itself is easy to maintain with O(Δ) worst-case update time:
    after an update touching (u, v), discard the (at most Δ) edges marked
    {e due to} u and due to v and draw fresh marks for both endpoints.  The
    marks of different vertices stay mutually independent, so Theorem 2.1
    continues to apply to every snapshot — {e provided the adversary's
    updates do not depend on the algorithm's coins}.  (Against an adaptive
    adversary this argument collapses, which is why {!Dyn_matching} uses the
    stability-window scheme instead; the paper makes exactly this point.)

    Mark multiplicity is tracked per edge so that an edge marked by both
    endpoints survives the resampling of one of them. *)

open Mspar_prelude
open Mspar_graph

type t

type stats = {
  updates : int;
  total_resample_work : int;  (** marks drawn + discarded across updates *)
  max_update_work : int;
}

val create : Rng.t -> n:int -> delta:int -> t
(** @raise Invalid_argument if [delta < 1]. *)

val insert : t -> int -> int -> bool
(** Apply an insertion and resample both endpoints' marks. O(Δ). *)

val delete : t -> int -> int -> bool
(** Apply a deletion and resample both endpoints' marks. O(Δ). *)

val graph : t -> Dyn_graph.t

val sparsifier : t -> Graph.t
(** Snapshot of the current G_Δ (union of current marks). Costs O(n·Δ) to
    materialise; the maintained state itself is updated in O(Δ). *)

val sparsifier_edge_count : t -> int
(** Number of distinct currently marked edges, O(1). *)

val stats : t -> stats

val check_invariants : t -> bool
(** Every marked edge is a current graph edge; every vertex holds exactly
    min(Δ, deg) distinct marks.  For tests. *)
