open Mspar_matching

type stats = { updates : int; total_work : int; max_update_work : int }

type t = {
  dg : Dyn_graph.t;
  mate : int array;
  mutable msize : int;
  mutable updates : int;
  mutable total_work : int;
  mutable max_update_work : int;
}

let create ~n =
  {
    dg = Dyn_graph.create n;
    mate = Array.make n (-1);
    msize = 0;
    updates = 0;
    total_work = 0;
    max_update_work = 0;
  }

let graph t = t.dg
let size t = t.msize

let matching t =
  let m = Matching.create (Dyn_graph.n t.dg) in
  Array.iteri (fun v u -> if u > v then Matching.add m v u) t.mate;
  m

let stats t =
  {
    updates = t.updates;
    total_work = t.total_work;
    max_update_work = t.max_update_work;
  }

let account t work =
  t.updates <- t.updates + 1;
  t.total_work <- t.total_work + work;
  if work > t.max_update_work then t.max_update_work <- work

(* scan v's adjacency for a free partner; returns scanned count *)
let try_rematch t v =
  let work = ref 0 in
  let found = ref false in
  Dyn_graph.iter_neighbors t.dg v (fun u ->
      incr work;
      if (not !found) && t.mate.(u) < 0 && t.mate.(v) < 0 && u <> v then begin
        t.mate.(v) <- u;
        t.mate.(u) <- v;
        t.msize <- t.msize + 1;
        found := true
      end);
  !work

let insert t u v =
  let changed = Dyn_graph.insert t.dg u v in
  if changed then begin
    let work = ref 1 in
    if t.mate.(u) < 0 && t.mate.(v) < 0 then begin
      t.mate.(u) <- v;
      t.mate.(v) <- u;
      t.msize <- t.msize + 1
    end;
    account t !work
  end;
  changed

let delete t u v =
  let changed = Dyn_graph.delete t.dg u v in
  if changed then begin
    let work = ref 1 in
    if t.mate.(u) = v then begin
      t.mate.(u) <- -1;
      t.mate.(v) <- -1;
      t.msize <- t.msize - 1;
      work := !work + try_rematch t u;
      work := !work + try_rematch t v
    end;
    account t !work
  end;
  changed
