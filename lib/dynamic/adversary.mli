(** Update-sequence generators, including an adaptive adversary.

    Theorem 3.5 claims the (1+ε) guarantee holds against an adversary that
    chooses each update {e after} seeing the algorithm's current output.
    {!Adaptive_target_matching} implements the natural attack: it always
    deletes an edge of the currently output matching when one exists (and
    otherwise inserts), which is exactly the adversary that breaks naive
    randomized sparsifier maintenance. *)

open Mspar_prelude

type op = Insert of int * int | Delete of int * int

type strategy =
  | Random_churn of float
      (** delete an existing edge with the given probability, otherwise
          insert a uniformly random missing pair *)
  | Adaptive_target_matching
      (** always delete a currently matched edge if any exists *)

val next_op :
  strategy ->
  Rng.t ->
  Dyn_graph.t ->
  current_mate:(int -> int) ->
  op option
(** Produce the next update for the given graph state, or [None] when the
    strategy has no applicable move (e.g. deleting from an empty graph and
    the vertex set is too small to insert). *)

val bulk_insert_gnp : Rng.t -> Dyn_graph.t -> p:float -> (int * int) list
(** The warm-up prefix: the edges of a G(n,p) sample, in random order
    (returned so the caller can drive them through an algorithm under
    test). *)
