(** On-demand invariant verification for the dynamic pipeline.

    Each function returns one human-readable message per violated
    invariant ([[]] = healthy) and never raises on corrupt state — the
    point is to {e report} damage so a caller (the {!Durable} layer, the
    crash soak, the CLI) can decide between failing loudly and invoking
    a repair path.  Checks cost O(n·Δ + m), so they are meant to run
    every [k] updates, not every update; DESIGN.md §Durability works out
    what that does to the Theorem 3.5 amortised bound.

    None of the checks consumes randomness, so auditing a healthy run
    does not perturb replay determinism. *)

val graph : Dyn_graph.t -> string list
(** Dynamic-graph structure (adjacency/index coherence, symmetry,
    active set, 2m arc count) plus a materialised-CSR audit
    ({!Mspar_graph.Graph.audit}: canonical sorted blocks, degree sums,
    max-degree cache) and a dynamic-vs-CSR edge-count cross-check. *)

val sparsifier : Dyn_sparsifier.t -> string list
(** {!graph} on the underlying dynamic graph, the mark invariants
    (counts = min(Δ, deg), no duplicates, multiplicity recount,
    sparsifier ⊆ graph containment), and a CSR audit of the
    materialised G_Δ with its edge count against the distinct counter. *)

val matching : Dyn_matching.t -> string list
(** {!graph} on the underlying dynamic graph plus the matching
    invariants (mate involution, matched pairs are current edges, size
    counter). *)
