open Mspar_prelude

type op = Insert of int * int | Delete of int * int

type strategy = Random_churn of float | Adaptive_target_matching

let random_missing_pair rng dg =
  let n = Dyn_graph.n dg in
  if n < 2 then None
  else begin
    (* rejection sampling; dense graphs may need several tries *)
    let rec go tries =
      if tries = 0 then None
      else begin
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v && not (Dyn_graph.has_edge dg u v) then
          Some (min u v, max u v)
        else go (tries - 1)
      end
    in
    go 64
  end

let random_existing_edge rng dg =
  (* sample a vertex proportionally-ish to degree, then a random incident
     edge; exact uniformity over edges is unnecessary for churn *)
  let n = Dyn_graph.n dg in
  if Dyn_graph.m dg = 0 then None
  else begin
    let rec go tries =
      if tries = 0 then None
      else begin
        let u = Rng.int rng n in
        match Dyn_graph.random_neighbor dg rng u with
        | Some v -> Some (min u v, max u v)
        | None -> go (tries - 1)
      end
    in
    go 256
  end

let matched_edges dg current_mate =
  let acc = ref [] in
  for v = 0 to Dyn_graph.n dg - 1 do
    let u = current_mate v in
    if u > v then acc := (v, u) :: !acc
  done;
  !acc

let next_op strategy rng dg ~current_mate =
  match strategy with
  | Random_churn p_delete ->
      if Dyn_graph.m dg > 0 && Rng.bernoulli rng p_delete then
        match random_existing_edge rng dg with
        | Some (u, v) -> Some (Delete (u, v))
        | None -> Option.map (fun (u, v) -> Insert (u, v)) (random_missing_pair rng dg)
      else (
        match random_missing_pair rng dg with
        | Some (u, v) -> Some (Insert (u, v))
        | None ->
            Option.map (fun (u, v) -> Delete (u, v)) (random_existing_edge rng dg))
  | Adaptive_target_matching -> (
      match matched_edges dg current_mate with
      | [] ->
          Option.map (fun (u, v) -> Insert (u, v)) (random_missing_pair rng dg)
      | edges ->
          let u, v = List.nth edges (Rng.int rng (List.length edges)) in
          Some (Delete (u, v)))

let bulk_insert_gnp rng dg ~p =
  let n = Dyn_graph.n dg in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then acc := (u, v) :: !acc
    done
  done;
  let arr = Array.of_list !acc in
  Rng.shuffle_in_place rng arr;
  Array.to_list arr
