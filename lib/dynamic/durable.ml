open Mspar_prelude

(* Crash-safe wrapper around the dynamic pipeline: a Journal WAL of ops,
   periodic snapshot blobs, periodic invariant audits with self-repair.

   Layout of [dir]:
     journal.wal       op log (Meta config record first, then ops/epochs)
     snap-<e>.bin      snapshot blob at epoch e = op count when written

   Discipline: every op is journaled *before* it is applied (redo
   logging).  Replaying a journaled-but-unapplied op after a crash is
   exactly the intended semantics; replaying a no-op (insert of an
   existing edge) consumes no randomness, so it is always safe.

   This module performs no file I/O of its own — every byte that touches
   disk goes through [Journal] (see MSP009). *)

type config = {
  n : int;
  delta : int;
  beta : int;
  eps : float;
  multiplier : float;
  seed : int;
}

type stats = {
  ops : int;
  snapshots : int;
  audits : int;
  audit_failures : int;
  repairs : int;
  recovered_epoch : int option;
  replayed : int;
  dedup_hits : int;
}

type t = {
  dir : string;
  config : config;
  writer : Journal.writer;
  lock : Journal.lock;
  mutable repl_epoch : int;
      (* monotone replication epoch: bumped on promotion, persisted as a
         Meta record and in the lockfile; fences stale primaries *)
  mutable cursor : int option;
      (* replica mode: the primary-WAL byte offset this dir has applied
         up to.  [None] on primaries.  Maintained by [apply_shipped];
         recomputed at recovery from the bootstrap marker plus the
         byte-identical shipped suffix. *)
  sp : Dyn_sparsifier.t;
  dm : Dyn_matching.t;
  (* at-most-once: client id -> (last applied request id, its result).
     Request ids are client-assigned and strictly increasing per client,
     so one entry per client suffices: a resend after a lost ack carries
     the same rid and is answered from here without re-applying. *)
  dedup : (int, int * bool) Hashtbl.t;
  snapshot_every : int option;
  audit_every : int option;
  mutable ops : int;
  mutable snapshots : int;
  mutable audits : int;
  mutable audit_failures : int;
  mutable repairs : int;
  mutable dedup_hits : int;
  recovered_epoch : int option;
  replayed : int;
}

let journal_path dir = Filename.concat dir "journal.wal"
let snap_path dir epoch = Filename.concat dir (Printf.sprintf "snap-%d.bin" epoch)

(* ------------------------------------------------------------------ *)
(* config codec (the Meta record payload)                             *)
(* ------------------------------------------------------------------ *)

let encode_config c =
  let buf = Buffer.create 48 in
  Codec.add_uvarint buf c.n;
  Codec.add_uvarint buf c.delta;
  Codec.add_uvarint buf c.beta;
  Codec.add_float buf c.eps;
  Codec.add_float buf c.multiplier;
  Codec.add_int buf c.seed;
  Buffer.contents buf

let decode_config s =
  let r = Codec.reader s in
  let n = Codec.read_uvarint r in
  let delta = Codec.read_uvarint r in
  let beta = Codec.read_uvarint r in
  let eps = Codec.read_float r in
  let multiplier = Codec.read_float r in
  let seed = Codec.read_int r in
  { n; delta; beta; eps; multiplier; seed }

(* Replication metadata rides in [Journal.Meta] records so it shares the
   WAL's durability and never-resync discipline:

     "epoch!"   uvarint e             promotion bumped the repl epoch to e
     "replica!" uvarint wal_offset    replica bootstrap marker: this dir
                uvarint op_epoch      was seeded from a primary snapshot
                uvarint repl_epoch    at op count [op_epoch] whose WAL was
                                      durable through [wal_offset]

   A replica journal is exactly: Meta config, Meta marker, Epoch
   op_epoch, then the primary's shipped frames appended verbatim — so
   the applied-up-to cursor needs no separate persistence: it is
   [wal_offset + (local valid bytes - the 3-record prefix)]. *)

let repl_meta_prefix = "epoch!"
let marker_prefix = "replica!"

let encode_repl_epoch e =
  let buf = Buffer.create 12 in
  Buffer.add_string buf repl_meta_prefix;
  Codec.add_uvarint buf e;
  Buffer.contents buf

let payload_after_prefix ~prefix s =
  if String.starts_with ~prefix s then
    let pl = String.length prefix in
    Some (String.sub s pl (String.length s - pl))
  else None

let repl_epoch_of_meta s =
  match payload_after_prefix ~prefix:repl_meta_prefix s with
  | None -> None
  | Some rest -> (
      match Codec.read_uvarint (Codec.reader rest) with
      | e -> Some e
      | exception _ -> None)

let encode_marker ~wal_offset ~op_epoch ~repl_epoch =
  let buf = Buffer.create 32 in
  Buffer.add_string buf marker_prefix;
  Codec.add_uvarint buf wal_offset;
  Codec.add_uvarint buf op_epoch;
  Codec.add_uvarint buf repl_epoch;
  Buffer.contents buf

let marker_of_meta s =
  match payload_after_prefix ~prefix:marker_prefix s with
  | None -> None
  | Some rest -> (
      match
        let r = Codec.reader rest in
        let wal_offset = Codec.read_uvarint r in
        let op_epoch = Codec.read_uvarint r in
        let repl_epoch = Codec.read_uvarint r in
        (wal_offset, op_epoch, repl_epoch)
      with
      | m -> Some m
      | exception _ -> None)

let fresh_state config =
  (* Two split streams off one base seed: the sparsifier and the matcher
     draw independently, and both positions are checkpointed in full. *)
  let base = Rng.create config.seed in
  let rng_sp = Rng.split base in
  let rng_dm = Rng.split base in
  let sp = Dyn_sparsifier.create rng_sp ~n:config.n ~delta:config.delta in
  let dm =
    Dyn_matching.create ~multiplier:config.multiplier rng_dm ~n:config.n
      ~beta:config.beta ~eps:config.eps
  in
  (sp, dm)

(* ------------------------------------------------------------------ *)
(* audit / repair / snapshot                                          *)
(* ------------------------------------------------------------------ *)

let audit_now t =
  t.audits <- t.audits + 1;
  let sp_failures = Audit.sparsifier t.sp in
  let dm_failures = Audit.matching t.dm in
  let failures = sp_failures @ dm_failures in
  if not (List.is_empty failures) then begin
    t.audit_failures <- t.audit_failures + 1;
    (* Self-repair from the authoritative dynamic graph.  The graph is
       the ground truth (it is what the journal reconstructs); marking
       and matching state are derived and can be rebuilt from it. *)
    if not (List.is_empty sp_failures) then begin
      Dyn_sparsifier.repair t.sp;
      t.repairs <- t.repairs + 1
    end;
    if not (List.is_empty dm_failures) then begin
      Dyn_matching.force_rebuild t.dm;
      t.repairs <- t.repairs + 1
    end
  end;
  failures

let encode_dedup buf dedup =
  let entries =
    Hashtbl.fold (fun client (rid, res) acc -> (client, rid, res) :: acc) dedup []
  in
  (* sorted by client id so the snapshot bytes are deterministic *)
  let entries =
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) entries
  in
  Codec.add_uvarint buf (List.length entries);
  List.iter
    (fun (client, rid, res) ->
      Codec.add_uvarint buf client;
      Codec.add_uvarint buf rid;
      Buffer.add_char buf (if res then '\001' else '\000'))
    entries

let decode_dedup r =
  let count = Codec.read_uvarint r in
  let dedup = Hashtbl.create (Int.max 16 count) in
  for _ = 1 to count do
    let client = Codec.read_uvarint r in
    let rid = Codec.read_uvarint r in
    let res =
      match Codec.read_byte r with
      | 0 -> false
      | 1 -> true
      | b -> failwith (Printf.sprintf "bad dedup result byte %d" b)
    in
    Hashtbl.replace dedup client (rid, res)
  done;
  dedup

let encode_state t =
  let buf = Buffer.create 4096 in
  Codec.add_uvarint buf t.ops;
  Dyn_sparsifier.encode t.sp buf;
  Dyn_matching.encode t.dm buf;
  encode_dedup buf t.dedup;
  Buffer.contents buf

let snapshot_now t =
  (* Journal first: every op covered by the snapshot must be durable
     before the Epoch record claims the snapshot supersedes it. *)
  Journal.sync t.writer;
  Journal.write_blob (snap_path t.dir t.ops) (encode_state t);
  Journal.append t.writer (Journal.Epoch t.ops);
  Journal.sync t.writer;
  t.snapshots <- t.snapshots + 1

let decode_snapshot payload =
  let r = Codec.reader payload in
  let epoch = Codec.read_uvarint r in
  let sp = Dyn_sparsifier.decode r in
  let dm = Dyn_matching.decode r in
  let dedup = decode_dedup r in
  (epoch, sp, dm, dedup)

(* ------------------------------------------------------------------ *)
(* ops                                                                *)
(* ------------------------------------------------------------------ *)

let after_op t =
  t.ops <- t.ops + 1;
  (match t.audit_every with
  | Some k when t.ops mod k = 0 -> ignore (audit_now t)
  | Some _ | None -> ());
  match t.snapshot_every with
  | Some s when t.ops mod s = 0 -> snapshot_now t
  | Some _ | None -> ()

let insert t u v =
  Journal.append t.writer (Journal.Insert (u, v));
  let changed_sp = Dyn_sparsifier.insert t.sp u v in
  let changed = Dyn_matching.insert t.dm u v in
  assert (Bool.equal changed changed_sp);
  after_op t;
  changed

let delete t u v =
  Journal.append t.writer (Journal.Delete (u, v));
  let changed_sp = Dyn_sparsifier.delete t.sp u v in
  let changed = Dyn_matching.delete t.dm u v in
  assert (Bool.equal changed changed_sp);
  after_op t;
  changed

(* At-most-once variants for the server: the op is journaled as [Tagged]
   so replay rebuilds the dedup table.  A resend of the last applied rid
   answers from the cache; an rid from the past (client restarted a
   sequence, or an out-of-order duplicate) is refused as a duplicate
   rather than re-applied. *)
let apply_req t ~client ~rid op u v =
  match Hashtbl.find_opt t.dedup client with
  | Some (last, res) when rid = last ->
      t.dedup_hits <- t.dedup_hits + 1;
      `Duplicate res
  | Some (last, _) when rid < last ->
      t.dedup_hits <- t.dedup_hits + 1;
      `Duplicate false
  | Some _ | None ->
      Journal.append t.writer (Journal.Tagged (client, rid, op));
      let changed_sp, changed =
        match op with
        | Journal.Insert _ ->
            (Dyn_sparsifier.insert t.sp u v, Dyn_matching.insert t.dm u v)
        | _ -> (Dyn_sparsifier.delete t.sp u v, Dyn_matching.delete t.dm u v)
      in
      assert (Bool.equal changed changed_sp);
      Hashtbl.replace t.dedup client (rid, changed);
      after_op t;
      `Applied changed

let insert_req t ~client ~rid u v =
  apply_req t ~client ~rid (Journal.Insert (u, v)) u v

let delete_req t ~client ~rid u v =
  apply_req t ~client ~rid (Journal.Delete (u, v)) u v

let sync t = Journal.sync t.writer

(* ------------------------------------------------------------------ *)
(* create / recover                                                   *)
(* ------------------------------------------------------------------ *)

let make ~dir ~config ~writer ~lock ~repl_epoch ~cursor ~sp ~dm ~dedup
    ~snapshot_every ~audit_every ~ops ~recovered_epoch ~replayed =
  {
    dir;
    config;
    writer;
    lock;
    repl_epoch;
    cursor;
    sp;
    dm;
    dedup;
    snapshot_every;
    audit_every;
    ops;
    snapshots = 0;
    audits = 0;
    audit_failures = 0;
    repairs = 0;
    dedup_hits = 0;
    recovered_epoch;
    replayed;
  }

let create ?sync_every ?snapshot_every ?audit_every ~dir config =
  if Sys.file_exists (journal_path dir) then
    invalid_arg "Durable.create: journal already exists (use recover)";
  Journal.ensure_dir dir;
  let lock =
    match Journal.acquire_lock dir with
    | Ok l -> l
    | Error msg -> invalid_arg ("Durable.create: " ^ msg)
  in
  match
    let writer = Journal.open_writer ?sync_every (journal_path dir) in
    Journal.append writer (Journal.Meta (encode_config config));
    Journal.sync writer;
    let sp, dm = fresh_state config in
    make ~dir ~config ~writer ~lock ~repl_epoch:0 ~cursor:None ~sp ~dm
      ~dedup:(Hashtbl.create 16) ~snapshot_every ~audit_every ~ops:0
      ~recovered_epoch:None ~replayed:0
  with
  | t -> t
  | exception e ->
      Journal.release_lock lock;
      raise e

let recover ?sync_every ?snapshot_every ?audit_every dir =
  let path = journal_path dir in
  if not (Sys.file_exists path) then Error "no journal found"
  else begin
    match Journal.acquire_lock dir with
    | Error msg -> Error msg
    | Ok lock -> (
        let fail msg =
          Journal.release_lock lock;
          Error msg
        in
        let result = Journal.read path in
        (* chop any torn/corrupt suffix so the writer can append cleanly;
           everything past the last valid frame was never acknowledged *)
        Journal.truncate_torn path result;
        match result.Journal.records with
        | [] -> fail "journal holds no valid records"
        | Journal.Meta meta :: rest -> (
            match decode_config meta with
            | exception _ -> fail "corrupt config record"
            | config -> (
                let records = Array.of_list rest in
                (* highest replication epoch this dir has witnessed, from
                   promotion records and the bootstrap marker *)
                let repl_epoch =
                  Array.fold_left
                    (fun acc r ->
                      match r with
                      | Journal.Meta m -> (
                          match repl_epoch_of_meta m with
                          | Some e -> Int.max acc e
                          | None -> (
                              match marker_of_meta m with
                              | Some (_, _, e) -> Int.max acc e
                              | None -> acc))
                      | _ -> acc)
                    0 records
                in
                (* replica cursor: the marker layout pins the 3-record
                   prefix; everything after it is the primary's shipped
                   bytes verbatim, so the applied-up-to offset is implied
                   by our own valid length.  A later promotion record
                   means this dir became a primary — no cursor. *)
                let cursor =
                  match rest with
                  | Journal.Meta m :: Journal.Epoch e :: tail_records -> (
                      match marker_of_meta m with
                      | Some (wal_offset, op_epoch, _) when e = op_epoch ->
                          let promoted =
                            List.exists
                              (fun r ->
                                match r with
                                | Journal.Meta m' ->
                                    Option.is_some (repl_epoch_of_meta m')
                                | _ -> false)
                              tail_records
                          in
                          if promoted then None
                          else
                            let prefix =
                              Journal.header_bytes
                              + Journal.frame_size (Journal.Meta meta)
                              + Journal.frame_size (Journal.Meta m)
                              + Journal.frame_size (Journal.Epoch e)
                            in
                            Some
                              (wal_offset
                              + (result.Journal.valid_bytes - prefix))
                      | _ -> None)
                  | _ -> None
                in
                (* newest Epoch whose blob is intact wins; a damaged or
                   missing blob falls back to the next older one, and with
                   no usable snapshot we replay the whole journal from
                   scratch *)
                let start = ref None in
                (try
                   for i = Array.length records - 1 downto 0 do
                     match records.(i) with
                     | Journal.Epoch e when Option.is_none !start -> (
                         match Journal.read_blob (snap_path dir e) with
                         | None -> ()
                         | Some payload -> (
                             match decode_snapshot payload with
                             | epoch, sp, dm, dedup when epoch = e ->
                                 start := Some (i, e, sp, dm, dedup);
                                 raise Exit
                             | _ -> ()
                             | exception _ -> ()))
                     | _ -> ()
                   done
                 with Exit -> ());
                let (first, epoch, sp, dm, dedup), recovered_epoch =
                  match !start with
                  | Some (i, e, sp, dm, dedup) ->
                      ((i + 1, e, sp, dm, dedup), Some e)
                  | None ->
                      let sp, dm = fresh_state config in
                      ((0, 0, sp, dm, Hashtbl.create 16), None)
                in
                let replayed = ref 0 in
                let replay_error = ref None in
                let apply op =
                  let changed =
                    match op with
                    | Journal.Insert (u, v) ->
                        ignore (Dyn_sparsifier.insert sp u v);
                        Dyn_matching.insert dm u v
                    | Journal.Delete (u, v) ->
                        ignore (Dyn_sparsifier.delete sp u v);
                        Dyn_matching.delete dm u v
                    | Journal.Epoch _ | Journal.Meta _ | Journal.Tagged _ ->
                        assert false
                  in
                  incr replayed;
                  changed
                in
                (try
                   for i = first to Array.length records - 1 do
                     match records.(i) with
                     | (Journal.Insert _ | Journal.Delete _) as op ->
                         ignore (apply op)
                     | Journal.Tagged (client, rid, op) ->
                         (* same dedup guard as the live path, so a journal
                            that (impossibly) repeats an rid replays the op
                            exactly once *)
                         let skip =
                           match Hashtbl.find_opt dedup client with
                           | Some (last, _) -> rid <= last
                           | None -> false
                         in
                         if not skip then begin
                           let changed = apply op in
                           Hashtbl.replace dedup client (rid, changed)
                         end
                     | Journal.Epoch _ | Journal.Meta _ -> ()
                   done
                 with e -> replay_error := Some (Printexc.to_string e));
                match !replay_error with
                | Some msg -> fail ("replay failed: " ^ msg)
                | None ->
                    (* ops before the snapshot point are counted by the
                       epoch itself; the replayed ops come after it *)
                    let ops = epoch + !replayed in
                    let writer = Journal.open_writer ?sync_every path in
                    (* stamp the fence on the lockfile so a claimant from
                       an older epoch is refused even after we die *)
                    Journal.refresh_lock_epoch lock repl_epoch;
                    Ok
                      (make ~dir ~config ~writer ~lock ~repl_epoch ~cursor
                         ~sp ~dm ~dedup ~snapshot_every ~audit_every ~ops
                         ~recovered_epoch ~replayed:!replayed)))
        | _ :: _ -> fail "journal does not start with a config record")
  end

(* ------------------------------------------------------------------ *)
(* replication                                                        *)
(* ------------------------------------------------------------------ *)

let repl_epoch t = t.repl_epoch
let replica_cursor t = t.cursor
let durable_offset t = Journal.durable_offset t.writer
let wal_path t = journal_path t.dir
let config_bytes t = encode_config t.config

let bootstrap_payload t =
  (* sync first so the announced wal_offset covers every op baked into
     the snapshot payload: ops <= wal_offset live in the payload, ops
     after it arrive as shipped frames *)
  Journal.sync t.writer;
  (t.ops, encode_state t, Journal.durable_offset t.writer)

let snapshot_blob_only t =
  (* replica-side snapshot: the blob only, no Epoch append — the shipped
     Epoch record already in our WAL is the marker, and appending our own
     frames would break byte-identity with the primary's suffix *)
  Journal.write_blob (snap_path t.dir t.ops) (encode_state t);
  t.snapshots <- t.snapshots + 1

let bump_repl_epoch t =
  let e = t.repl_epoch + 1 in
  Journal.append t.writer (Journal.Meta (encode_repl_epoch e));
  Journal.sync t.writer;
  t.repl_epoch <- e;
  t.cursor <- None;
  Journal.refresh_lock_epoch t.lock e;
  e

let bootstrap_replica ~dir ~config_bytes ~op_epoch ~wal_offset ~repl_epoch
    ~snapshot =
  match decode_config config_bytes with
  | exception _ -> Error "bootstrap: corrupt config payload"
  | _ -> (
      match decode_snapshot snapshot with
      | exception _ -> Error "bootstrap: corrupt snapshot payload"
      | epoch, _, _, _ when epoch <> op_epoch ->
          Error
            (Printf.sprintf "bootstrap: snapshot epoch %d, primary announced %d"
               epoch op_epoch)
      | _ ->
          if Sys.file_exists (journal_path dir) then
            Error "bootstrap: journal already exists (remove the dir first)"
          else begin
            Journal.ensure_dir dir;
            match Journal.acquire_lock dir with
            | Error msg -> Error msg
            | Ok lock ->
                Fun.protect
                  ~finally:(fun () -> Journal.release_lock lock)
                  (fun () ->
                    Journal.write_blob (snap_path dir op_epoch) snapshot;
                    let w =
                      Journal.open_writer ~sync_every:1 (journal_path dir)
                    in
                    Journal.append w (Journal.Meta config_bytes);
                    Journal.append w
                      (Journal.Meta
                         (encode_marker ~wal_offset ~op_epoch ~repl_epoch));
                    Journal.append w (Journal.Epoch op_epoch);
                    Journal.close w;
                    Ok ())
          end)

let apply_shipped t payload ~on_update =
  match t.cursor with
  | None -> Error "apply_shipped: not a replica journal"
  | Some cursor -> (
      let bodies, tail = Codec.Frames.decode_all payload in
      match tail with
      | Codec.Frames.Short | Codec.Frames.Bad _ ->
          Error "apply_shipped: shipped bytes are not whole frames"
      | Codec.Frames.Clean -> (
          let rec decode acc = function
            | [] -> Ok (List.rev acc)
            | body :: more -> (
                match Journal.record_of_body body with
                | Ok r -> decode (r :: acc) more
                | Error msg -> Error ("apply_shipped: " ^ msg))
          in
          match decode [] bodies with
          | Error _ as e -> e
          | Ok records -> (
              (* every frame validated — append the bytes verbatim so the
                 local WAL stays byte-identical to the primary's shipped
                 suffix, then apply each record in order *)
              Journal.append_raw t.writer payload;
              let applied = ref 0 in
              let apply op =
                let u, v, changed =
                  match op with
                  | Journal.Insert (u, v) ->
                      let changed_sp = Dyn_sparsifier.insert t.sp u v in
                      let changed = Dyn_matching.insert t.dm u v in
                      assert (Bool.equal changed changed_sp);
                      (u, v, changed)
                  | Journal.Delete (u, v) ->
                      let changed_sp = Dyn_sparsifier.delete t.sp u v in
                      let changed = Dyn_matching.delete t.dm u v in
                      assert (Bool.equal changed changed_sp);
                      (u, v, changed)
                  | Journal.Epoch _ | Journal.Meta _ | Journal.Tagged _ ->
                      assert false
                in
                t.ops <- t.ops + 1;
                incr applied;
                on_update ~u ~v ~changed;
                changed
              in
              match
                List.iter
                  (fun r ->
                    match r with
                    | (Journal.Insert _ | Journal.Delete _) as op ->
                        ignore (apply op)
                    | Journal.Tagged (client, rid, op) ->
                        (* the primary only journals Tagged records it
                           actually applied, so the guard never fires on a
                           healthy stream — it protects replay of a stream
                           overlapping a recovered prefix *)
                        let skip =
                          match Hashtbl.find_opt t.dedup client with
                          | Some (last, _) -> rid <= last
                          | None -> false
                        in
                        if not skip then begin
                          let changed = apply op in
                          Hashtbl.replace t.dedup client (rid, changed)
                        end
                    | Journal.Epoch e ->
                        (* the primary snapshotted here; our state is
                           bit-for-bit the same, so a local blob at the
                           same epoch is valid and bounds our replay *)
                        if e = t.ops then snapshot_blob_only t
                    | Journal.Meta m -> (
                        match repl_epoch_of_meta m with
                        | Some e when e > t.repl_epoch -> t.repl_epoch <- e
                        | _ -> ()))
                  records
              with
              | () ->
                  t.cursor <- Some (cursor + String.length payload);
                  Ok !applied
              | exception e ->
                  Error ("apply_shipped: apply failed: " ^ Printexc.to_string e)
              )))

(* ------------------------------------------------------------------ *)
(* accessors                                                          *)
(* ------------------------------------------------------------------ *)

let sparsifier t = t.sp
let matching t = t.dm
let config t = t.config
let op_count t = t.ops

let stats t =
  {
    ops = t.ops;
    snapshots = t.snapshots;
    audits = t.audits;
    audit_failures = t.audit_failures;
    repairs = t.repairs;
    recovered_epoch = t.recovered_epoch;
    replayed = t.replayed;
    dedup_hits = t.dedup_hits;
  }

let close t =
  Journal.close t.writer;
  Journal.release_lock t.lock
