(** Edge-degree constrained subgraphs (EDCS) — the comparison sparsifier.

    The EDCS (Bernstein–Stein; used by the paper's references [4, 6] for
    massive-graph matching) is the other canonical matching sparsifier: a
    subgraph H of G such that

    {ul
    {- (P1) every edge (u,v) of H has [deg_H u + deg_H v <= bound];}
    {- (P2) every edge (u,v) of G \ H has [deg_H u + deg_H v >= bound - 1].}}

    An EDCS has O(n·bound) edges and preserves the maximum matching within a
    factor 3/2 + O(1/bound) in {e general} graphs — no neighborhood-
    independence assumption.  The trade against G_Δ is exactly the paper's
    positioning: G_Δ reaches (1+ε) but needs bounded β; the EDCS works
    everywhere but cannot beat 3/2.  Experiment E18 measures both sides.

    The constructor is the classic local-fixing loop: repeatedly delete
    (P1)-violating edges and insert (P2)-violating ones; a standard
    potential argument bounds the number of fixes by O(m·bound²)
    [Assadi–Bernstein]. *)

open Mspar_graph

val construct : Graph.t -> bound:int -> Graph.t
(** An EDCS of [g] with parameter [bound >= 2].  Deterministic (scans edges
    in a fixed order).
    @raise Invalid_argument if [bound < 2]. *)

val check_p1 : Graph.t -> edcs:Graph.t -> bound:int -> bool
(** Property (P1) holds. *)

val check_p2 : Graph.t -> edcs:Graph.t -> bound:int -> bool
(** Property (P2) holds. *)
