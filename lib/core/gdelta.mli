(** The random matching sparsifier G_Δ (Section 2 of the paper).

    Every vertex marks Δ of its incident edges uniformly at random without
    replacement (all of them if its degree is at most the threshold); the
    sparsifier is the union of marked edges.  Marking uses the read-only
    emulated-swap sampler ({!Mspar_prelude.Sampling}), so construction costs
    a deterministic O(Δ) adjacency probes per vertex — the measured probe
    count is returned so sublinearity can be verified against m.

    Two threshold conventions appear in the paper:
    {ul
    {- §2: mark all neighbors when deg(v) ≤ Δ;}
    {- §3.1 ("the tweak"): mark all neighbors when deg(v) ≤ 2Δ, which keeps
       per-vertex sampling O(Δ) with the simple rejection-free sampler at
       the cost of a factor ≤ 2 in size/arboricity.}}

    Both are available via [mark_all_threshold]; the default is the §3.1
    convention.

    Marks are collected as packed ints in a flat {!Mspar_prelude.Edgebuf}
    and turned into a CSR graph by counting sort ({!Graph.of_edgebuf}) —
    the boxed-list pipeline survives only as the overflow-guard fallback
    for vertex counts beyond {!Graph.pack_shift}'s packable range. *)

open Mspar_prelude
open Mspar_graph

type stats = {
  delta : int;  (** the Δ used *)
  marks : int;  (** total (vertex, edge) marking events *)
  edges : int;  (** edges in the sparsifier (marks minus duplicates) *)
  probes : int;  (** adjacency-array reads consumed by the construction *)
  build_ns : int64;  (** wall-clock construction time *)
}

type mark_rule = Mark_kernel.rule =
  | Mark_all_at_most_delta  (** §2 convention: full neighborhood iff deg ≤ Δ *)
  | Mark_all_at_most_two_delta  (** §3.1 tweak: full neighborhood iff deg ≤ 2Δ *)

val sparsify :
  ?rule:mark_rule -> Rng.t -> Graph.t -> delta:int -> Graph.t * stats
(** [sparsify rng g ~delta] builds G_Δ.  Probes counted on [g] are reset
    and measured across the call.  Default rule:
    {!Mark_all_at_most_two_delta}.  Consumes [rng] as one sequential
    stream in vertex order (the historical discipline — fast, but a
    vertex's marks can only be recomputed by replaying the whole
    prefix); see {!sparsify_seeded} for the locally replayable form. *)

val sparsify_seeded :
  ?rule:mark_rule -> seed:int -> Graph.t -> delta:int -> Graph.t * stats
(** {!sparsify} under the split-seed discipline: vertex [v] draws from
    {!Mspar_prelude.Rng.derive}[ ~seed v], so any single vertex's marks
    can be replayed in isolation — the contract the LCA oracle
    ([Mspar_lca.Oracle]) queries against.  With the default rule this is
    graph-for-graph identical to [Par_gdelta.sequential ~seed]
    (QCheck-pinned). *)

val marked_pairs :
  ?rule:mark_rule -> Rng.t -> Graph.t -> delta:int -> (int * int) list
(** The raw marked pairs (possibly containing an edge twice, once per
    marking endpoint) without building the subgraph — used by the
    distributed layer, where each marking event is one 1-bit message. *)

val marked_codes :
  ?rule:mark_rule -> Rng.t -> Graph.t -> delta:int -> Edgebuf.t * int
(** The marking hot path in isolation: the packed mark codes
    [(v lsl shift) lor u] exactly as the cache-blocked collector emits
    them, plus the shift used — no CSR build.  Consumes the same RNG
    stream as {!sparsify}.  Used by the bench harness to time marking
    separately from construction.
    @raise Invalid_argument if [delta < 1] or the vertex count exceeds
    the packable range ({!Graph.pack_shift}). *)

val marked_codes_seeded :
  ?rule:mark_rule -> seed:int -> Graph.t -> delta:int -> Edgebuf.t * int
(** {!marked_codes} under the split-seed discipline of
    {!sparsify_seeded} — the materialized reference the oracle parity
    tests compare against, mark-for-mark.
    @raise Invalid_argument if [delta < 1] or the vertex count exceeds
    the packable range. *)

val deterministic_first_k : Graph.t -> delta:int -> Graph.t
(** The strawman of Lemma 2.13: every vertex deterministically marks its
    first Δ adjacency-array entries.  Exhibits approximation ratio n/(2Δ)
    on the clique-minus-edge family.
    @raise Invalid_argument if [delta < 1]. *)
