(** The adversary game of Lemma 2.13, executable.

    The lemma: fix n and Δ < n/2.  Any {e deterministic} procedure that (a)
    probes at most Δ adjacency-array entries per vertex and (b) outputs at
    most Δ incident edges per vertex achieves approximation no better than
    n/(2Δ) on some clique-minus-one-edge instance with β = 2.

    This module implements the proof's adversary: it fixes a decoy set D of
    Δ vertices, answers every probe with a vertex of D (or, for probes from
    inside D, with anything), and — if the algorithm dares to output an edge
    with both endpoints outside D — declares that edge to be the missing
    one, making the output infeasible.  Since a matching larger than Δ must
    contain an edge avoiding D, every deterministic algorithm loses:

    {ul
    {- [`Small_matching s] with s ≤ Δ (ratio ≥ (n/2)/Δ), or}
    {- [`Infeasible e]: the output contains the non-edge e of a consistent
       instance.}}

    The test-suite plays the game against the first-k marking strategy and
    against a cheating strategy, confirming both outcomes; the randomized
    construction is outside the game's hypothesis (its choices are not a
    deterministic function of the answers), which is the content of the
    paper's "randomization is necessary" discussion. *)

type oracle = {
  probe : int -> int;
      (** [probe v] reveals one more neighbor of [v]; at most Δ probes per
          vertex.  @raise Invalid_argument beyond the budget. *)
  n : int;
  delta : int;
  decoys : int array;  (** the set D, known to the algorithm (as in the proof) *)
}

type outcome =
  | Small_matching of int
      (** every output edge touches D, so the output is consistent but its
          MCM is at most Δ — ratio at least (n/2 − 1)/Δ on the
          (near-)perfectly-matchable instance *)
  | Infeasible of (int * int)
      (** the output contains this edge with both endpoints outside D; such
          an edge can never be probe-validated, so the adversary declares it
          the instance's missing edge — the output is not a subgraph *)

val play : (oracle -> (int * int) list) -> n:int -> delta:int -> outcome
(** Run a deterministic marking algorithm against the adversary.
    @raise Invalid_argument if n is odd, Δ ≥ n/2, the algorithm exceeds the
    probe budget, or its output exceeds Δ edges per vertex. *)
