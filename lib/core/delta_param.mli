(** The Δ parameter of the sparsifier.

    Theorem 2.1 proves the `(1+ε)` guarantee for
    [Δ = 20·(β/ε)·ln(24/ε)].  That constant is chosen for proof convenience,
    not tightness; empirically far smaller multipliers already achieve the
    target ratio (experiment E11 sweeps the multiplier).  All constructors
    return at least 1. *)

val paper : beta:int -> eps:float -> int
(** The proof's value: ⌈20·(β/ε)·ln(24/ε)⌉.
    @raise Invalid_argument unless [0 < eps < 1] and [beta >= 1]. *)

val scaled : multiplier:float -> beta:int -> eps:float -> int
(** ⌈multiplier·(β/ε)·ln(24/ε)⌉ — the knob for the ablation study.
    @raise Invalid_argument if [eps] is outside (0, 1), [beta < 1] or [multiplier <= 0]. *)

val practical : beta:int -> eps:float -> int
(** A default for experiments: multiplier 2.0.  The test-suite validates
    that the `(1+ε)` ratio empirically holds at this setting on the paper's
    graph families. *)

val regime_ok : n:int -> beta:int -> eps:float -> bool
(** The theorem's regime condition β = O(εn / log n), instantiated with
    constant 1: [beta <= eps * n / ln n] (true for n < 3). *)
