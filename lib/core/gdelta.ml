open Mspar_prelude
open Mspar_graph

type stats = {
  delta : int;
  marks : int;
  edges : int;
  probes : int;
  build_ns : int64;
}

type mark_rule = Mark_all_at_most_delta | Mark_all_at_most_two_delta

let threshold rule delta =
  match rule with
  | Mark_all_at_most_delta -> delta
  | Mark_all_at_most_two_delta -> 2 * delta

let collect_marks ?(rule = Mark_all_at_most_two_delta) rng g ~delta =
  if delta < 1 then invalid_arg "Gdelta: delta must be >= 1";
  let nv = Graph.n g in
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let pairs = ref [] in
  let marks = ref 0 in
  let keep = threshold rule delta in
  for v = 0 to nv - 1 do
    let d = Graph.degree g v in
    if d <= keep then
      (* low degree: the whole neighborhood enters the sparsifier *)
      Graph.iter_neighbors g v (fun u ->
          pairs := (v, u) :: !pairs;
          incr marks)
    else
      Sampling.sample_indices sampler rng ~n:d ~k:delta ~f:(fun i ->
          let u = Graph.neighbor g v i in
          pairs := (v, u) :: !pairs;
          incr marks)
  done;
  (!pairs, !marks)

let marked_pairs ?rule rng g ~delta = fst (collect_marks ?rule rng g ~delta)

let sparsify ?rule rng g ~delta =
  Graph.reset_probes g;
  let t0 = Clock.now_ns () in
  let pairs, marks = collect_marks ?rule rng g ~delta in
  let probes = Graph.probes g in
  let sparsifier = Graph.of_edges ~n:(Graph.n g) pairs in
  let t1 = Clock.now_ns () in
  ( sparsifier,
    {
      delta;
      marks;
      edges = Graph.m sparsifier;
      probes;
      build_ns = Int64.sub t1 t0;
    } )

let deterministic_first_k g ~delta =
  if delta < 1 then invalid_arg "Gdelta.deterministic_first_k: delta >= 1";
  let pairs = ref [] in
  for v = 0 to Graph.n g - 1 do
    let d = min delta (Graph.degree g v) in
    for i = 0 to d - 1 do
      pairs := (v, Graph.neighbor g v i) :: !pairs
    done
  done;
  Graph.of_edges ~n:(Graph.n g) !pairs
