open Mspar_prelude
open Mspar_graph

type stats = {
  delta : int;
  marks : int;
  edges : int;
  probes : int;
  build_ns : int64;
}

type mark_rule = Mark_kernel.rule =
  | Mark_all_at_most_delta
  | Mark_all_at_most_two_delta

(* Upper bound on the marks a range of vertices will emit — lets the packed
   collector allocate its buffer once instead of growing by doubling. *)
let marks_bound rule g ~delta lo hi =
  let keep = Mark_kernel.threshold rule delta in
  let total = ref 0 in
  for v = lo to hi - 1 do
    let d = Graph.degree g v in
    total := !total + (if d <= keep then d else delta)
  done;
  !total
[@@hot]

(* The adjacency span (in CSR words) a marking block may touch before the
   loop moves on: ~256 KiB of 8-byte entries, an L2-sized working set, so
   the sampled reads of a block hit lines the low-degree copies of the
   same block already pulled in. *)
let l2_block_words = 32768

(* Packed hot path: marks go straight into a flat int buffer as
   [v lsl shift lor u] codes.  Vertices are visited in CSR-contiguous
   cache-sized blocks ([Graph.iter_vertex_blocks]); per block, the buffer
   is grown once ([ensure_capacity] + [push_unchecked], no growth branch
   per mark) and the probe counter is charged once.  The per-vertex
   decision is [Mark_kernel]'s: with a [Stream] source the shared
   generator is consumed in vertex order exactly as before the kernel
   factoring (bit-identical codes), with a [Split] source each vertex
   draws from its own derived stream — the form the LCA oracle replays. *)
let collect_packed ~rule source g ~delta ~shift =
  if delta < 1 then invalid_arg "Gdelta: delta must be >= 1";
  let nv = Graph.n g in
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let buf =
    Edgebuf.create
      ~initial_capacity:(Int.max 16 (marks_bound rule g ~delta 0 nv))
      ()
  in
  let keep = Mark_kernel.threshold rule delta in
  (* per-vertex sample landing zone: [sample_indices_into] avoids a
     closure call per draw, the dominant per-mark overhead at high degree *)
  let idx = Array.make (Int.max 1 delta) 0 in
  (* hoisted out of the block closure so no ref cell is allocated per
     block — reset at block entry, charged at block exit *)
  let probes = ref 0 in
  (* The block loop is specialized per source, once, outside the hot
     path: the [Stream] body is instruction-for-instruction the
     pre-kernel collector (shared generator handed straight to the
     sampler — the gdelta-mark perf baseline), the [Split] body
     re-derives each vertex's stream ([Mark_kernel.rng_for], the form
     the LCA oracle replays).  [Mark_kernel.sampled_indices_into] is
     definitionally [Sampling.sample_indices_into], so both bodies run
     the one kernel decision; the QCheck parity suite pins the two
     sources and the oracle to bit-identical marks. *)
  (match source with
  | Mark_kernel.Stream rng ->
      Graph.iter_vertex_blocks g ~extent:l2_block_words (fun blo bhi ->
          Edgebuf.ensure_capacity buf
            (Edgebuf.length buf + marks_bound rule g ~delta blo bhi);
          probes := 0;
          for v = blo to bhi - 1 do
            let d = Graph.degree g v in
            let base = v lsl shift in
            if d <= keep then begin
              (* low degree: the whole neighborhood enters the
                 sparsifier; the copy loop lives in Graph so no closure
                 is allocated (or called) per vertex *)
              probes := !probes + d;
              Graph.append_neighbors_uncounted g v ~base buf
            end
            else begin
              (* d > keep >= delta, so exactly delta reads happen below *)
              probes := !probes + delta;
              Sampling.sample_indices_into sampler rng ~n:d ~k:delta ~out:idx;
              for s = 0 to delta - 1 do
                Edgebuf.push_unchecked buf
                  (base
                  lor Graph.neighbor_uncounted g v (Array.unsafe_get idx s))
              done
            end
          done;
          Graph.add_probes g !probes)
  | Mark_kernel.Split _ ->
      Graph.iter_vertex_blocks g ~extent:l2_block_words (fun blo bhi ->
          Edgebuf.ensure_capacity buf
            (Edgebuf.length buf + marks_bound rule g ~delta blo bhi);
          probes := 0;
          for v = blo to bhi - 1 do
            let d = Graph.degree g v in
            let base = v lsl shift in
            if d <= keep then begin
              probes := !probes + d;
              Graph.append_neighbors_uncounted g v ~base buf
            end
            else begin
              probes := !probes + delta;
              Mark_kernel.sampled_indices_into sampler
                (Mark_kernel.rng_for source v)
                ~delta ~degree:d ~out:idx;
              for s = 0 to delta - 1 do
                Edgebuf.push_unchecked buf
                  (base
                  lor Graph.neighbor_uncounted g v (Array.unsafe_get idx s))
              done
            end
          done;
          Graph.add_probes g !probes));
  buf
[@@hot]

(* Boxed fallback for vertex counts beyond the packable range. *)
let collect_list ~rule source g ~delta =
  if delta < 1 then invalid_arg "Gdelta: delta must be >= 1";
  let nv = Graph.n g in
  let sampler = Sampling.create ~capacity:(Graph.max_degree g) in
  let pairs = ref [] in
  let keep = Mark_kernel.threshold rule delta in
  for v = 0 to nv - 1 do
    let d = Graph.degree g v in
    if d <= keep then
      Graph.iter_neighbors g v (fun u -> pairs := (v, u) :: !pairs)
    else
      Sampling.sample_indices sampler
        (Mark_kernel.rng_for source v)
        ~n:d ~k:delta
        ~f:(fun i -> pairs := (v, Graph.neighbor g v i) :: !pairs)
  done;
  !pairs

let marked_codes_of ~rule source g ~delta =
  match Graph.pack_shift ~n:(Graph.n g) with
  | Some shift -> (collect_packed ~rule source g ~delta ~shift, shift)
  | None ->
      invalid_arg "Gdelta.marked_codes: vertex count exceeds packable range"

let marked_codes ?(rule = Mark_all_at_most_two_delta) rng g ~delta =
  marked_codes_of ~rule (Mark_kernel.Stream rng) g ~delta

let marked_codes_seeded ?(rule = Mark_all_at_most_two_delta) ~seed g ~delta =
  marked_codes_of ~rule (Mark_kernel.Split { seed }) g ~delta

let marked_pairs ?(rule = Mark_all_at_most_two_delta) rng g ~delta =
  let source = Mark_kernel.Stream rng in
  match Graph.pack_shift ~n:(Graph.n g) with
  | Some shift ->
      let buf = collect_packed ~rule source g ~delta ~shift in
      List.rev
        (Edgebuf.fold_left
           (fun acc c ->
             (Graph.unpack_u ~shift c, Graph.unpack_v ~shift c) :: acc)
           [] buf)
  | None -> collect_list ~rule source g ~delta

let sparsify_of ~rule source g ~delta =
  Graph.reset_probes g;
  let t0 = Clock.now_ns () in
  let nv = Graph.n g in
  let sparsifier, marks =
    match Graph.pack_shift ~n:nv with
    | Some shift ->
        let buf = collect_packed ~rule source g ~delta ~shift in
        let marks = Edgebuf.length buf in
        (Graph.of_edgebuf ~n:nv buf, marks)
    | None ->
        let pairs = collect_list ~rule source g ~delta in
        (Graph.of_edges ~n:nv pairs, List.length pairs)
  in
  let probes = Graph.probes g in
  let t1 = Clock.now_ns () in
  ( sparsifier,
    {
      delta;
      marks;
      edges = Graph.m sparsifier;
      probes;
      build_ns = Int64.sub t1 t0;
    } )

let sparsify ?(rule = Mark_all_at_most_two_delta) rng g ~delta =
  sparsify_of ~rule (Mark_kernel.Stream rng) g ~delta

let sparsify_seeded ?(rule = Mark_all_at_most_two_delta) ~seed g ~delta =
  sparsify_of ~rule (Mark_kernel.Split { seed }) g ~delta

let deterministic_first_k g ~delta =
  if delta < 1 then invalid_arg "Gdelta.deterministic_first_k: delta >= 1";
  let nv = Graph.n g in
  match Graph.pack_shift ~n:nv with
  | Some shift ->
      let buf = Edgebuf.create () in
      for v = 0 to nv - 1 do
        let d = Int.min delta (Graph.degree g v) in
        let base = v lsl shift in
        Graph.add_probes g d;
        for i = 0 to d - 1 do
          Edgebuf.push buf (base lor Graph.neighbor_uncounted g v i)
        done
      done;
      Graph.of_edgebuf ~n:nv buf
  | None ->
      let pairs = ref [] in
      for v = 0 to nv - 1 do
        let d = Int.min delta (Graph.degree g v) in
        for i = 0 to d - 1 do
          pairs := (v, Graph.neighbor g v i) :: !pairs
        done
      done;
      Graph.of_edges ~n:nv !pairs
