open Mspar_graph

type result = {
  gdelta : Graph.t;
  bounded : Graph.t;
  delta : int;
  delta_alpha : int;
  max_degree : int;
}

let run ?(multiplier = 2.0) rng g ~beta ~eps =
  let delta = Delta_param.scaled ~multiplier ~beta ~eps in
  let gdelta, _ = Gdelta.sparsify rng g ~delta in
  let delta_alpha = Solomon.delta_alpha ~alpha:(2 * delta) ~eps in
  let bounded = Solomon.sparsify gdelta ~delta_alpha in
  {
    gdelta;
    bounded;
    delta;
    delta_alpha;
    max_degree = Graph.max_degree bounded;
  }
