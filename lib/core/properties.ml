open Mspar_graph

let size_bound_obs_2_10 ~sparsifier ~mcm_size ~delta ~beta =
  Graph.m sparsifier <= 4 * mcm_size * (delta + beta)

let arboricity_bound_obs_2_12 ~sparsifier ~delta =
  Arboricity.density_lower_bound sparsifier <= 4 * delta

let degeneracy_within ~sparsifier ~delta =
  Arboricity.degeneracy sparsifier <= (2 * 4 * delta) - 1

let mcm_lower_bound_lemma_2_2 g ~mcm_size ~beta =
  let non_isolated = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v > 0 then incr non_isolated
  done;
  (* |MCM| >= n' / (beta + 2), i.e. |MCM| * (beta + 2) >= n' *)
  mcm_size * (beta + 2) >= !non_isolated

let approximation_ratio ~mcm_g ~mcm_sparsifier =
  if mcm_g = 0 then 1.0
  else if mcm_sparsifier = 0 then infinity
  else float_of_int mcm_g /. float_of_int mcm_sparsifier

