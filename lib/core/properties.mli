(** Executable checks for the paper's structural results. *)

open Mspar_graph

val size_bound_obs_2_10 :
  sparsifier:Graph.t -> mcm_size:int -> delta:int -> beta:int -> bool
(** Obs 2.10: |E(G_Δ)| ≤ 2·|MCM(G)|·(Δ+β).  With the §3.1 mark-all-below-2Δ
    tweak the bound doubles; this check uses the conservative factor-2
    version 4·|MCM|·(Δ+β), matching the paper's remark. *)

val arboricity_bound_obs_2_12 : sparsifier:Graph.t -> delta:int -> bool
(** Obs 2.12: arboricity(G_Δ) ≤ 2Δ (4Δ under the §3.1 tweak).  Verified via
    the density lower bound (a true lower bound on arboricity must not
    exceed 4Δ) — a failure here refutes the observation outright. *)

val degeneracy_within : sparsifier:Graph.t -> delta:int -> bool
(** Secondary check: degeneracy ≤ 2·(4Δ) − 1 (degeneracy ≤ 2α−1). *)

val mcm_lower_bound_lemma_2_2 : Graph.t -> mcm_size:int -> beta:int -> bool
(** Lemma 2.2: |MCM| ≥ n'/(β+2) where n' counts non-isolated vertices. *)

val approximation_ratio : mcm_g:int -> mcm_sparsifier:int -> float
(** |MCM(G)| / |MCM(G_Δ)| (∞ if the sparsifier has an empty matching while
    G does not, 1.0 if both are empty). *)
