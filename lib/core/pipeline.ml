open Mspar_prelude
open Mspar_graph
open Mspar_matching

type matcher = Exact | Approx_eps | Greedy_2approx

type result = {
  matching : Matching.t;
  delta : int;
  sparsifier_edges : int;
  probes_on_input : int;
  input_edges : int;
  sparsify_ns : int64;
  match_ns : int64;
}

let run ?(multiplier = 2.0) ?(matcher = Approx_eps) ?rule rng g ~beta ~eps =
  let delta = Delta_param.scaled ~multiplier ~beta ~eps in
  let sparsifier, stats = Gdelta.sparsify ?rule rng g ~delta in
  let matching, match_ns =
    Clock.time_ns (fun () ->
        match matcher with
        | Exact -> Blossom.solve sparsifier
        | Approx_eps -> Approx.solve_general ~eps sparsifier
        | Greedy_2approx -> Greedy.maximal sparsifier)
  in
  {
    matching;
    delta;
    sparsifier_edges = stats.Gdelta.edges;
    probes_on_input = stats.Gdelta.probes;
    input_edges = Graph.m g;
    sparsify_ns = stats.Gdelta.build_ns;
    match_ns;
  }

let sublinearity_ratio r =
  if r.input_edges = 0 then 0.0
  else float_of_int r.probes_on_input /. float_of_int (2 * r.input_edges)
