open Mspar_prelude
open Mspar_graph
open Mspar_matching

type matcher = Exact | Approx_eps | Greedy_2approx
type construction = Pooled | Sequential | Sequential_fallback

type result = {
  matching : Matching.t;
  delta : int;
  sparsifier_edges : int;
  probes_on_input : int;
  input_edges : int;
  sparsify_ns : int64;
  match_ns : int64;
  construction : construction;
}

(* Process-wide meter for the silent [?pool] fallback, so a caller that
   hands every run a pool can notice that non-default marking rules never
   actually used it.  Atomic: pipelines may run from several domains. *)
let fallback_meter = Atomic.make 0
let pool_fallbacks () = Atomic.get fallback_meter

(* The pooled fast path: construct G_Δ with the multicore builder on a
   persistent domain pool.  Only the §3.1 mark-all-at-most-2Δ rule is
   implemented in Par_gdelta, so any other explicit rule falls back to the
   sequential Gdelta.  One seed drawn from [rng] keys the per-vertex
   counter RNGs, so the run is still a pure function of the caller's
   generator state.  Under the §3.1 rule every adjacency probe emits
   exactly one mark (deg reads for kept neighborhoods, Δ sampled reads
   otherwise), so [marks = probes]. *)
let sparsify_pooled pool rng g ~delta =
  Graph.reset_probes g;
  let seed = Int64.to_int (Rng.bits64 rng) in
  let sparsifier, build_ns =
    Clock.time_ns (fun () ->
        Mspar_parallel.Par_gdelta.sparsify ~pool ~seed g ~delta)
  in
  let probes = Graph.probes g in
  ( sparsifier,
    {
      Gdelta.delta;
      marks = probes;
      edges = Graph.m sparsifier;
      probes;
      build_ns;
    } )

let run ?(multiplier = 2.0) ?(matcher = Approx_eps) ?rule ?pool rng g ~beta ~eps
    =
  let delta = Delta_param.scaled ~multiplier ~beta ~eps in
  let construction =
    match (pool, rule) with
    | Some _, (None | Some Gdelta.Mark_all_at_most_two_delta) -> Pooled
    | Some _, Some _ ->
        ignore (Atomic.fetch_and_add fallback_meter 1);
        Sequential_fallback
    | None, _ -> Sequential
  in
  let sparsifier, stats =
    match (pool, construction) with
    | Some p, Pooled -> sparsify_pooled p rng g ~delta
    | _, (Sequential | Sequential_fallback) | None, Pooled ->
        Gdelta.sparsify ?rule rng g ~delta
  in
  let matching, match_ns =
    Clock.time_ns (fun () ->
        match matcher with
        | Exact -> Blossom.solve sparsifier
        | Approx_eps -> Approx.solve_general ~eps sparsifier
        | Greedy_2approx -> Greedy.maximal sparsifier)
  in
  {
    matching;
    delta;
    sparsifier_edges = stats.Gdelta.edges;
    probes_on_input = stats.Gdelta.probes;
    input_edges = Graph.m g;
    sparsify_ns = stats.Gdelta.build_ns;
    match_ns;
    construction;
  }

let sublinearity_ratio r =
  if r.input_edges = 0 then 0.0
  else float_of_int r.probes_on_input /. float_of_int (2 * r.input_edges)
