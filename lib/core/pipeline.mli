(** The sequential sublinear-time pipeline (Theorem 3.1).

    Sparsify with G_Δ, then run a matcher on the sparsifier only.  The probe
    accounting separates what was read from the original graph (sublinear,
    O(n·Δ)) from work done on the sparsifier, making the theorem's
    "faster than reading the input" claim directly observable. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching

type matcher =
  | Exact  (** Edmonds blossom on the sparsifier. *)
  | Approx_eps  (** depth-limited / phase-limited (1+ε) matcher. *)
  | Greedy_2approx  (** greedy maximal on the sparsifier. *)

type construction =
  | Pooled  (** multicore G_Δ builder on the caller's pool *)
  | Sequential  (** no pool was given *)
  | Sequential_fallback
      (** a pool {e was} given but a non-default marking rule forced the
          sequential path; counted in {!pool_fallbacks} *)

type result = {
  matching : Matching.t;
  delta : int;
  sparsifier_edges : int;
  probes_on_input : int;  (** adjacency reads of the original graph *)
  input_edges : int;  (** m of the original graph, for the sublinearity ratio *)
  sparsify_ns : int64;
  match_ns : int64;
  construction : construction;  (** which sparsifier path actually ran *)
}

val run :
  ?multiplier:float ->
  ?matcher:matcher ->
  ?rule:Gdelta.mark_rule ->
  ?pool:Pool.t ->
  Rng.t ->
  Graph.t ->
  beta:int ->
  eps:float ->
  result
(** [(1+ε)-approximate] matching of a graph with neighborhood independence
    ≤ beta.  Default matcher {!Approx_eps}, default Δ-multiplier 2.0.

    When [pool] is given and the marking rule is the default §3.1
    mark-all-at-most-2Δ rule, sparsification runs on the pool via
    {!Mspar_parallel.Par_gdelta.sparsify} (per-vertex counter RNGs seeded
    from one draw of [rng], so the result is still deterministic in the
    caller's generator state — though not edge-for-edge identical to the
    sequential {!Gdelta} path, which consumes [rng] differently).  Any
    other explicit [rule] ignores [pool] and takes the sequential path —
    this is {e not} silent: the result records it as
    [construction = Sequential_fallback] and the process-wide
    {!pool_fallbacks} meter is bumped.  Probe accounting stays exact
    either way. *)

val pool_fallbacks : unit -> int
(** Number of {!run} calls in this process that were handed a pool but
    fell back to the sequential sparsifier because of a non-default
    marking rule.  Atomic, so exact across domains. *)

val sublinearity_ratio : result -> float
(** probes on input / 2m — below 1.0 means the pipeline read less than the
    input. *)
