(** The per-vertex marking decision of G_Δ (§3.1), as a pure replayable
    kernel.

    Factored out of the batch builders ({!Gdelta}, [Par_gdelta]) so that
    a local-access oracle ([Mspar_lca.Oracle]) can recompute, for one
    vertex in isolation, exactly the adjacency positions the batch pass
    marked: the decision depends only on the rule, Δ, the vertex's
    degree and the generator it draws from.  Under the {!Split} source
    the generator itself is a pure function of [(seed, v)]
    ({!Mspar_prelude.Rng.derive}), so replay needs no global state at
    all — the QCheck suite pins oracle and builders together
    bit-for-bit. *)

open Mspar_prelude

type rule =
  | Mark_all_at_most_delta  (** §2 convention: full neighborhood iff deg ≤ Δ *)
  | Mark_all_at_most_two_delta  (** §3.1 tweak: full neighborhood iff deg ≤ 2Δ *)

val threshold : rule -> int -> int
(** The keep-all degree threshold: Δ or 2Δ. *)

val mark_count : rule -> delta:int -> degree:int -> int
(** Marks a vertex of this degree emits: [degree] when at most the
    threshold, [delta] otherwise.  This is also its deterministic probe
    budget. *)

type source = Stream of Rng.t | Split of { seed : int }
(** Where a vertex's randomness comes from.  [Stream] is the historical
    sequential discipline (one shared generator consumed in vertex
    order); [Split] derives vertex [v]'s generator from [(seed, v)] —
    locally replayable, identical to [Par_gdelta.vertex_rng]. *)

val rng_for : source -> int -> Rng.t
(** The generator vertex [v] draws from.  For [Stream] this is the
    shared generator itself (call sites must visit vertices in
    ascending order for reproducibility); for [Split] a fresh derived
    generator. *)

val sampled_indices_into :
  Sampling.t -> Rng.t -> delta:int -> degree:int -> out:int array -> unit
(** The high-degree branch: the [delta] distinct adjacency positions
    (uniform, without replacement, in draw order) vertex [v] marks,
    written into [out].  Thin wrapper over
    {!Mspar_prelude.Sampling.sample_indices_into} so builders and oracle
    share one call shape.
    @raise Invalid_argument if [degree] exceeds the sampler capacity or
    [out] is shorter than [min delta degree]. *)
