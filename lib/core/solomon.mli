(** Solomon's ITCS'18 bounded-degree matching sparsifier (paper §3.2).

    For graphs of arboricity α: every vertex marks Δ_α = Θ(α/ε) arbitrary
    incident edges, and only edges marked by {e both} endpoints are kept.
    The result is a (1+ε)-matching sparsifier with maximum degree ≤ Δ_α.
    Unlike G_Δ this construction is deterministic — bounded arboricity is
    what makes arbitrary marking safe (Lemma 2.13 shows it is unsafe under
    mere bounded neighborhood independence). *)

open Mspar_graph

val delta_alpha : alpha:int -> eps:float -> int
(** ⌈c·α/ε⌉ with c = 4 (the constant used throughout this library; the
    asymptotics only need Θ(α/ε)). Always ≥ 1.
    @raise Invalid_argument unless [0 < eps < 1] and [alpha >= 0]. *)

val sparsify : Graph.t -> delta_alpha:int -> Graph.t
(** Keep exactly the edges marked by both endpoints, where every vertex
    marks its first [delta_alpha] adjacency entries.  Maximum degree of the
    result is ≤ [delta_alpha] by construction.
    @raise Invalid_argument if [eps] is outside (0, 1), [alpha < 0] or the derived [delta_alpha < 1]. *)

val sparsify_for : Graph.t -> alpha:int -> eps:float -> Graph.t
(** [sparsify g ~delta_alpha:(delta_alpha ~alpha ~eps)]. *)
