open Mspar_graph
open Mspar_matching

type oracle = {
  probe : int -> int;
  n : int;
  delta : int;
  decoys : int array;
}

type outcome = Small_matching of int | Infeasible of (int * int)

let play algo ~n ~delta =
  if n < 4 || n mod 2 <> 0 then invalid_arg "Lower_bound.play: need even n >= 4";
  if delta < 1 || delta >= n / 2 then
    invalid_arg "Lower_bound.play: need 1 <= delta < n/2";
  let decoys = Array.init delta (fun i -> i) in
  let in_decoys v = v < delta in
  let probes_used = Array.make n 0 in
  let probe v =
    if v < 0 || v >= n then invalid_arg "Lower_bound: probe out of range";
    let k = probes_used.(v) in
    if k >= delta then
      invalid_arg "Lower_bound: probe budget exceeded";
    probes_used.(v) <- k + 1;
    if in_decoys v then
      (* k-th vertex of V \ {v} in increasing order *)
      if k < v then k else k + 1
    else
      (* answers to outsiders always point into D *)
      decoys.(k)
  in
  let output = algo { probe; n; delta; decoys } in
  (* validate the output's form: items are (chooser, neighbor) marks, at
     most delta marks per chooser (the lemma's "includes up to Δ adjacent
     edges for each vertex") *)
  let marks = Array.make n 0 in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      if u < 0 || v < 0 || u >= n || v >= n || u = v then
        invalid_arg "Lower_bound: malformed output edge";
      marks.(u) <- marks.(u) + 1;
      if marks.(u) > delta then
        invalid_arg "Lower_bound: output exceeds delta edges per vertex";
      Hashtbl.replace seen (Int.min u v, Int.max u v) ())
    output;
  let edges = Hashtbl.fold (fun e () acc -> e :: acc) seen [] in
  (* An edge with both endpoints outside D can never have been validated:
     probes from outside-D vertices are always answered inside D.  The
     adversary declares the first such edge to be the instance's missing
     edge, so the output is not a subgraph of the instance. *)
  match
    List.find_opt (fun (u, v) -> (not (in_decoys u)) && not (in_decoys v)) edges
  with
  | Some e -> Infeasible e
  | None ->
      (* every output edge touches D, so the matching is at most |D| = Δ,
         while the instance (K_n minus one unprobed outside pair) has a
         matching of at least n/2 - 1 *)
      let out_graph = Graph.of_edges ~n edges in
      Small_matching (Matching.size (Blossom.solve out_graph))
