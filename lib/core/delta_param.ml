let check ~beta ~eps =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Delta_param: eps must lie in (0, 1)";
  if beta < 1 then invalid_arg "Delta_param: beta must be >= 1"

let scaled ~multiplier ~beta ~eps =
  check ~beta ~eps;
  if multiplier <= 0.0 then invalid_arg "Delta_param: multiplier must be positive";
  let v = multiplier *. (float_of_int beta /. eps) *. log (24.0 /. eps) in
  Int.max 1 (int_of_float (ceil v))

let paper ~beta ~eps = scaled ~multiplier:20.0 ~beta ~eps
let practical ~beta ~eps = scaled ~multiplier:2.0 ~beta ~eps

let regime_ok ~n ~beta ~eps =
  n < 3 || float_of_int beta <= eps *. float_of_int n /. log (float_of_int n)
