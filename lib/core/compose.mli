(** Two-round composed sparsifier: G_Δ followed by Solomon'18 (paper §3.2).

    Round 1 builds G_Δ (arboricity ≤ 2Δ, Obs 2.12); round 2 applies the
    bounded-degree sparsifier with Δ_α = Θ(2Δ/ε) on top.  The composition
    is a (1+ε)² ≤ (1+3ε)-matching sparsifier with maximum degree
    O((β/ε²)·log(1/ε)), which is what lets a bounded-degree distributed
    matching algorithm run on graphs of unbounded degree. *)

open Mspar_prelude
open Mspar_graph

type result = {
  gdelta : Graph.t;  (** after round 1 *)
  bounded : Graph.t;  (** after round 2 — the output sparsifier *)
  delta : int;
  delta_alpha : int;
  max_degree : int;  (** of [bounded]; ≤ [delta_alpha] by construction *)
}

val run :
  ?multiplier:float -> Rng.t -> Graph.t -> beta:int -> eps:float -> result
(** [run rng g ~beta ~eps] performs both rounds with
    Δ = {!Delta_param.scaled} (default multiplier 2.0) and
    Δ_α = {!Solomon.delta_alpha} for α = 2Δ. *)
