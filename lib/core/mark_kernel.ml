open Mspar_prelude

(* The per-vertex marking decision of §3.1, factored out of the batch
   builders so the LCA oracle replays bit-for-bit what they emit.  The
   kernel is pure in the replayable sense: which adjacency positions a
   vertex marks depends only on (rule, delta, its degree, and the
   generator it draws from), never on any other vertex. *)

type rule = Mark_all_at_most_delta | Mark_all_at_most_two_delta

let threshold rule delta =
  match rule with
  | Mark_all_at_most_delta -> delta
  | Mark_all_at_most_two_delta -> 2 * delta

let mark_count rule ~delta ~degree =
  if degree <= threshold rule delta then degree else delta

(* How the batch builders obtain a vertex's generator.  [Stream] is the
   historical sequential discipline (one shared stream consumed in vertex
   order — fast, but replayable only by re-running the whole prefix);
   [Split] derives each vertex's stream from [(seed, v)] via
   [Rng.derive], which is what makes point queries possible. *)
type source = Stream of Rng.t | Split of { seed : int }

let rng_for source v =
  match source with
  | Stream rng -> rng
  | Split { seed } -> Rng.derive ~seed v
[@@hot]

let sampled_indices_into sampler rng ~delta ~degree ~out =
  Sampling.sample_indices_into sampler rng ~n:degree ~k:delta ~out
