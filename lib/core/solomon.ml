open Mspar_graph

let delta_alpha ~alpha ~eps =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Solomon: eps must lie in (0,1)";
  if alpha < 0 then invalid_arg "Solomon: negative alpha";
  Int.max 1 (int_of_float (ceil (4.0 *. float_of_int alpha /. eps)))

let sparsify g ~delta_alpha =
  if delta_alpha < 1 then invalid_arg "Solomon.sparsify: delta_alpha >= 1";
  (* Neighbor lists are sorted, so "the first delta_alpha entries of v's
     adjacency array" is a canonical arbitrary choice.  An edge (u, v)
     survives iff v is among u's first delta_alpha neighbors and vice
     versa; sortedness makes that a rank test. *)
  let marks = Hashtbl.create (4 * Graph.n g * Int.min delta_alpha 16) in
  let pairs = ref [] in
  for v = 0 to Graph.n g - 1 do
    let d = Int.min delta_alpha (Graph.degree g v) in
    for i = 0 to d - 1 do
      let u = Graph.neighbor g v i in
      let key = if v < u then (v, u) else (u, v) in
      if Hashtbl.mem marks key then pairs := key :: !pairs
      else Hashtbl.replace marks key ()
    done
  done;
  Graph.of_edges ~n:(Graph.n g) !pairs

let sparsify_for g ~alpha ~eps = sparsify g ~delta_alpha:(delta_alpha ~alpha ~eps)
