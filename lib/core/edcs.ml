open Mspar_graph

(* The fix-point loop maintains H as a hash set of normalised edges plus a
   degree table, sweeping all edges until a full sweep makes no change.
   Termination: deletions strictly decrease the potential
   Φ = (bound - 1/2)·Σ deg_H(v) − Σ_{(u,v)∈H}(deg_H u + deg_H v) ... the
   classic argument; empirically a handful of sweeps suffice. *)
let construct g ~bound =
  if bound < 2 then invalid_arg "Edcs.construct: bound >= 2";
  let nv = Graph.n g in
  let deg = Array.make nv 0 in
  let in_h = Hashtbl.create 256 in
  let edges = Graph.edges g in
  let add u v =
    Hashtbl.replace in_h (u, v) ();
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1
  in
  let remove u v =
    Hashtbl.remove in_h (u, v);
    deg.(u) <- deg.(u) - 1;
    deg.(v) <- deg.(v) - 1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (u, v) ->
        let present = Hashtbl.mem in_h (u, v) in
        let sum = deg.(u) + deg.(v) in
        if present && sum > bound then begin
          remove u v;
          changed := true
        end
        else if (not present) && sum < bound - 1 then begin
          add u v;
          changed := true
        end)
      edges
  done;
  Graph.of_edges ~n:nv (Hashtbl.fold (fun e () acc -> e :: acc) in_h [])

let check_p1 _g ~edcs ~bound =
  let ok = ref true in
  Graph.iter_edges edcs (fun u v ->
      if Graph.degree edcs u + Graph.degree edcs v > bound then ok := false);
  !ok

let check_p2 g ~edcs ~bound =
  let ok = ref true in
  Graph.iter_edges g (fun u v ->
      if
        (not (Graph.has_edge edcs u v))
        && Graph.degree edcs u + Graph.degree edcs v < bound - 1
      then ok := false);
  !ok
