open Mspar_prelude
open Mspar_graph

type t = {
  rng : Rng.t;
  nv : int;
  delta : int;
  reservoirs : int Vec.t array; (* reservoirs.(v) holds v's sampled neighbors *)
  seen : int array; (* number of incident edges seen so far per vertex *)
  mutable processed : int;
  mutable peak : int;
  mutable stored : int;
}

let create rng ~n ~delta =
  if n < 0 then invalid_arg "Stream_sparsifier.create: negative n";
  if delta < 1 then invalid_arg "Stream_sparsifier.create: delta >= 1";
  {
    rng;
    nv = n;
    delta;
    reservoirs = Array.init n (fun _ -> Vec.create ~dummy:(-1) ());
    seen = Array.make n 0;
    processed = 0;
    peak = 0;
    stored = 0;
  }

(* classic reservoir step for one endpoint *)
let offer t v u =
  t.seen.(v) <- t.seen.(v) + 1;
  let r = t.reservoirs.(v) in
  if Vec.length r < t.delta then begin
    Vec.push r u;
    t.stored <- t.stored + 1
  end
  else begin
    let j = Rng.int t.rng t.seen.(v) in
    if j < t.delta then Vec.set r j u
  end

let feed t u v =
  if u = v then invalid_arg "Stream_sparsifier.feed: self-loop";
  if u < 0 || v < 0 || u >= t.nv || v >= t.nv then
    invalid_arg "Stream_sparsifier.feed: endpoint out of range";
  offer t u v;
  offer t v u;
  t.processed <- t.processed + 1;
  if t.stored > t.peak then t.peak <- t.stored

let feed_all t edges = Array.iter (fun (u, v) -> feed t u v) edges
let edges_processed t = t.processed
let stored_edges t = t.stored
let peak_stored t = t.peak

let sparsifier t =
  (* drain the reservoirs straight into the packed CSR builder — no
     intermediate list of boxed pairs *)
  Graph.of_edges_iter ~n:t.nv (fun push ->
      Array.iteri (fun v r -> Vec.iter (fun u -> push v u) r) t.reservoirs)

let run rng ~n ~delta edges =
  let t = create rng ~n ~delta in
  feed_all t edges;
  (sparsifier t, `Stored (peak_stored t), `Stream_len (edges_processed t))
