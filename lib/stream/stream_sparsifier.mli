(** Semi-streaming construction of G_Δ (paper §3, "broad applicability").

    The paper notes that the sparsifier applies in memory-constrained models
    such as streaming.  This module makes that concrete for the
    insertion-only semi-streaming model: edges arrive one at a time, the
    algorithm may keep only O(n·Δ) words, and at the end of the pass it must
    hold a (1+ε)-matching sparsifier.

    The construction is per-vertex {e reservoir sampling}: each vertex keeps
    a reservoir of at most Δ incident edges; the t-th edge incident on v
    enters v's reservoir with probability Δ/t, evicting a uniformly random
    occupant.  A standard induction shows each reservoir is a uniformly
    random min(Δ, deg v)-subset of v's incident edges — exactly the marking
    distribution of {!Mspar_core.Gdelta} — so Theorem 2.1 applies verbatim
    to the union of reservoirs. *)

open Mspar_prelude
open Mspar_graph

type t

val create : Rng.t -> n:int -> delta:int -> t
(** Empty one-pass state over [n] vertices.
    @raise Invalid_argument if [n < 0] or [delta < 1]. *)

val feed : t -> int -> int -> unit
(** Process the next stream edge (u, v).  O(1) expected.
    @raise Invalid_argument on self-loops or out-of-range endpoints. *)

val feed_all : t -> (int * int) array -> unit

val edges_processed : t -> int
val stored_edges : t -> int
(** Current memory footprint in edges: sum of reservoir sizes, ≤ n·Δ and
    also ≤ 2·(edges processed). *)

val peak_stored : t -> int

val sparsifier : t -> Graph.t
(** Materialise the union of reservoirs. *)

val run :
  Rng.t ->
  n:int ->
  delta:int ->
  (int * int) array ->
  Graph.t * [ `Stored of int ] * [ `Stream_len of int ]
(** One-shot convenience wrapper. *)
