(** Massively-parallel-computation (MPC) simulator.

    The MPC model (the abstraction of MapReduce-style frameworks the paper
    cites in §3): M machines, each with a local memory of [capacity] words;
    input partitioned across machines; computation proceeds in synchronous
    rounds where every machine computes locally and then exchanges data,
    subject to each machine {e receiving} at most [capacity] words per
    round.  Round count and the maximum per-machine load are the two
    complexity measures.

    The simulator is a single combinator, {!exchange}: machines emit
    [(destination, item)] pairs and receive their incoming items, with the
    capacity constraint enforced and metering updated. *)

type config = { machines : int; capacity : int }

type stats = {
  mutable rounds : int;
  mutable total_items : int;  (** items shuffled across all rounds *)
  mutable max_load : int;  (** max items received by one machine in a round *)
}

exception Capacity_exceeded of { machine : int; load : int; capacity : int }

val fresh_stats : unit -> stats

val exchange :
  config -> stats -> ?weight:('b -> int) -> (int * 'b) list array -> 'b list array
(** [exchange cfg stats outgoing] delivers the per-machine outgoing lists:
    the result's element [i] holds everything addressed to machine [i].
    [weight] gives each item's size in words (default 1).
    @raise Capacity_exceeded if a machine receives more than
    [cfg.capacity] words.
    @raise Invalid_argument on a destination outside [0, machines). *)

val scatter : config -> 'b array -> 'b list array
(** Deal an input array round-robin onto the machines (free initial
    distribution, not a communication round). *)
