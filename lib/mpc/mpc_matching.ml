open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

type result = {
  matching : Matching.t;
  rounds : int;
  max_load : int;
  sparsifier_edges : int;
}

(* keep the [k] smallest-priority entries of each vertex's candidate list *)
let select_per_vertex ~k candidates =
  let by_vertex : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, u, prio) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_vertex v) in
      Hashtbl.replace by_vertex v ((prio, u) :: cur))
    candidates;
  Hashtbl.fold
    (fun v entries acc ->
      let sorted = List.sort compare entries in
      let rec take i = function
        | [] -> []
        | _ when i = k -> []
        | (prio, u) :: rest -> (v, u, prio) :: take (i + 1) rest
      in
      take 0 sorted @ acc)
    by_vertex []

let run ?(multiplier = 1.0) rng cfg g ~beta ~eps =
  let delta = Delta_param.scaled ~multiplier ~beta ~eps in
  let stats = Mpc.fresh_stats () in
  let edges = Graph.edges g in
  let stored = Mpc.scatter cfg edges in
  let machine_rng = Array.init cfg.Mpc.machines (fun _ -> Rng.split rng) in
  let owner v = v mod cfg.Mpc.machines in
  (* round 1: per-machine marking candidates, pre-selected to delta per
     vertex per machine, shuffled to the vertex owners *)
  let outgoing =
    Array.mapi
      (fun i edge_list ->
        let rng_i = machine_rng.(i) in
        let arcs =
          List.concat_map
            (fun (u, v) ->
              [
                (u, v, Rng.int rng_i (1 lsl 30));
                (v, u, Rng.int rng_i (1 lsl 30));
              ])
            edge_list
        in
        let chosen = select_per_vertex ~k:delta arcs in
        List.map (fun ((v, _, _) as item) -> (owner v, item)) chosen)
      stored
  in
  let at_owners = Mpc.exchange cfg stats outgoing in
  (* local select: delta globally-smallest per owned vertex *)
  let marked_per_machine =
    Array.map
      (fun candidates ->
        select_per_vertex ~k:delta candidates
        |> List.map (fun (v, u, _) -> (v, u)))
      at_owners
  in
  (* round 2: gather the sparsifier on machine 0 *)
  let to_coordinator =
    Array.map (fun pairs -> List.map (fun pair -> (0, pair)) pairs)
      marked_per_machine
  in
  let gathered = Mpc.exchange cfg stats to_coordinator in
  let sparsifier = Graph.of_edges ~n:(Graph.n g) gathered.(0) in
  let matching = Approx.solve_general ~eps sparsifier in
  {
    matching;
    rounds = stats.Mpc.rounds;
    max_load = stats.Mpc.max_load;
    sparsifier_edges = Graph.m sparsifier;
  }

let baseline_gather cfg g =
  let stats = Mpc.fresh_stats () in
  let stored = Mpc.scatter cfg (Graph.edges g) in
  let outgoing = Array.map (List.map (fun e -> (0, e))) stored in
  let gathered = Mpc.exchange cfg stats outgoing in
  List.length gathered.(0)
