(** Constant-round MPC matching via the sparsifier (paper §3, MPC remark).

    The recipe:

    {ol
    {- {b Mark} (1 round): every machine attaches an independent uniform
       priority to each (endpoint, edge) pair it holds and pre-selects, per
       vertex, its Δ smallest; the pre-selections are shuffled to each
       vertex's owner machine (hash partition).  Pre-selection is lossless:
       the Δ globally smallest priorities of a vertex are contained in the
       union of per-machine Δ smallest.}
    {- {b Select} (local): each owner keeps the Δ smallest priorities per
       vertex — a uniform Δ-subset of incident edges, i.e. exactly the
       G_Δ marking distribution, so Theorem 2.1 applies.}
    {- {b Gather} (1 round): marked edges are shipped to machine 0, which
       now holds only O(n·Δ) ≪ m edges and solves (1+ε)-MCM locally.}}

    Total: 2 communication rounds, per-machine memory
    O(input share + n·Δ).  The baseline without sparsification must gather
    all m edges on the coordinator, so its memory is Ω(m). *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching

type result = {
  matching : Matching.t;
  rounds : int;
  max_load : int;  (** maximum words received by a machine in one round *)
  sparsifier_edges : int;
}

val run :
  ?multiplier:float ->
  Rng.t ->
  Mpc.config ->
  Graph.t ->
  beta:int ->
  eps:float ->
  result
(** Distribute the edges of [g] over the machines, run the two-round
    sparsify-and-gather algorithm, and match on the coordinator.
    @raise Mpc.Capacity_exceeded if [config.capacity] cannot hold the
    shuffles (capacity must be Ω(m/M + n·Δ)). *)

val baseline_gather : Mpc.config -> Graph.t -> int
(** Words the coordinator receives when the whole graph is gathered without
    sparsification (the Ω(m) comparison point); raises
    {!Mpc.Capacity_exceeded} if it does not fit. *)
