type config = { machines : int; capacity : int }

type stats = {
  mutable rounds : int;
  mutable total_items : int;
  mutable max_load : int;
}

exception Capacity_exceeded of { machine : int; load : int; capacity : int }

let fresh_stats () = { rounds = 0; total_items = 0; max_load = 0 }

let exchange cfg stats ?(weight = fun _ -> 1) outgoing =
  if Array.length outgoing <> cfg.machines then
    invalid_arg "Mpc.exchange: outgoing arity mismatch";
  let incoming = Array.make cfg.machines [] in
  let load = Array.make cfg.machines 0 in
  Array.iter
    (List.iter (fun (dst, item) ->
         if dst < 0 || dst >= cfg.machines then
           invalid_arg "Mpc.exchange: destination out of range";
         incoming.(dst) <- item :: incoming.(dst);
         load.(dst) <- load.(dst) + weight item))
    outgoing;
  Array.iteri
    (fun machine l ->
      if l > cfg.capacity then
        raise (Capacity_exceeded { machine; load = l; capacity = cfg.capacity }))
    load;
  stats.rounds <- stats.rounds + 1;
  Array.iteri
    (fun m l ->
      stats.total_items <- stats.total_items + List.length incoming.(m);
      if l > stats.max_load then stats.max_load <- l)
    load;
  Array.map List.rev incoming

let scatter cfg input =
  let out = Array.make cfg.machines [] in
  Array.iteri (fun i x -> out.(i mod cfg.machines) <- x :: out.(i mod cfg.machines)) input;
  Array.map List.rev out
