(* Tests for mspar_dynamic: the dynamic graph structure, the Gupta-Peng
   windowed (1+eps) maintainer (Theorem 3.5), the maximal-matching baseline,
   and the adaptive adversary. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_dynamic

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Dyn_graph                                                          *)
(* ------------------------------------------------------------------ *)

let test_dyn_graph_basic () =
  let dg = Dyn_graph.create 5 in
  check "empty m" 0 (Dyn_graph.m dg);
  check_bool "insert new" true (Dyn_graph.insert dg 0 1);
  check_bool "insert dup" false (Dyn_graph.insert dg 1 0);
  check_bool "insert self-loop" false (Dyn_graph.insert dg 2 2);
  check "m" 1 (Dyn_graph.m dg);
  check "deg 0" 1 (Dyn_graph.degree dg 0);
  check_bool "has edge" true (Dyn_graph.has_edge dg 1 0);
  check_bool "delete" true (Dyn_graph.delete dg 0 1);
  check_bool "delete absent" false (Dyn_graph.delete dg 0 1);
  check "m back to 0" 0 (Dyn_graph.m dg);
  check "deg back to 0" 0 (Dyn_graph.degree dg 0)

let test_dyn_graph_vs_reference () =
  (* random update stream cross-checked against a naive edge set *)
  let rng = Rng.create 1 in
  let n = 20 in
  let dg = Dyn_graph.create n in
  let reference = Hashtbl.create 64 in
  for _ = 1 to 2000 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if Rng.bool rng then begin
        let expected = not (Hashtbl.mem reference key) in
        let got = Dyn_graph.insert dg u v in
        if got <> expected then Alcotest.fail "insert disagrees";
        Hashtbl.replace reference key ()
      end
      else begin
        let expected = Hashtbl.mem reference key in
        let got = Dyn_graph.delete dg u v in
        if got <> expected then Alcotest.fail "delete disagrees";
        Hashtbl.remove reference key
      end
    end
  done;
  check "final m agrees" (Hashtbl.length reference) (Dyn_graph.m dg);
  let snap = Dyn_graph.snapshot dg in
  check "snapshot m" (Hashtbl.length reference) (Graph.m snap);
  List.iter
    (fun (u, v) ->
      check_bool "snapshot edge present" true (Hashtbl.mem reference (u, v)))
    (Dyn_graph.edges dg)

let test_dyn_graph_sampling () =
  let rng = Rng.create 2 in
  let dg = Dyn_graph.create 10 in
  for v = 1 to 9 do
    ignore (Dyn_graph.insert dg 0 v)
  done;
  check_bool "no neighbor for isolated" true
    (Dyn_graph.random_neighbor dg rng 5 = Some 0);
  let samples = Dyn_graph.sample_neighbors dg rng 0 ~k:4 in
  check "four distinct" 4 (List.length (List.sort_uniq compare samples));
  List.iter (fun u -> check_bool "sampled is neighbor" true (u >= 1 && u <= 9)) samples;
  let all = Dyn_graph.sample_neighbors dg rng 0 ~k:100 in
  check "k capped at degree" 9 (List.length all)

let test_dyn_graph_non_isolated () =
  let dg = Dyn_graph.create 6 in
  check "none active" 0 (Dyn_graph.non_isolated_count dg);
  ignore (Dyn_graph.insert dg 0 1);
  ignore (Dyn_graph.insert dg 2 3);
  check "four active" 4 (Dyn_graph.non_isolated_count dg);
  ignore (Dyn_graph.delete dg 0 1);
  check "two active" 2 (Dyn_graph.non_isolated_count dg);
  let seen = ref [] in
  Dyn_graph.iter_non_isolated dg (fun v -> seen := v :: !seen);
  check_bool "iterates exactly the active set" true
    (List.sort compare !seen = [ 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Dyn_matching                                                       *)
(* ------------------------------------------------------------------ *)

let test_dyn_matching_validity_under_churn () =
  let rng = Rng.create 3 in
  let n = 30 in
  let dm = Dyn_matching.create (Rng.split rng) ~n ~beta:6 ~eps:0.5 in
  for _ = 1 to 1500 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then
      if Rng.bernoulli rng 0.35 then ignore (Dyn_matching.delete dm u v)
      else ignore (Dyn_matching.insert dm u v);
    (* the output matching must always be valid on the current graph *)
    let m = Dyn_matching.matching dm in
    let g = Dyn_graph.snapshot (Dyn_matching.graph dm) in
    if not (Matching.is_valid g m) then Alcotest.fail "invalid matching"
  done;
  check_bool "some updates recorded" true ((Dyn_matching.stats dm).Dyn_matching.updates > 0)

let test_dyn_matching_approximation_random () =
  (* against a random stream on a bounded-beta family the maintained
     matching should stay within (1+eps) of optimal, with the window slack *)
  let rng = Rng.create 4 in
  let n = 40 in
  let dm = Dyn_matching.create (Rng.split rng) ~n ~beta:1 ~eps:0.5 in
  (* insert a clique step by step; check ratio at checkpoints *)
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Dyn_matching.insert dm u v)
    done
  done;
  let g = Dyn_graph.snapshot (Dyn_matching.graph dm) in
  let opt = Matching.size (Blossom.solve g) in
  let got = Dyn_matching.size dm in
  check_bool
    (Printf.sprintf "clique stream: %d vs opt %d" got opt)
    true
    (float_of_int opt <= 1.8 *. float_of_int got)

let test_dyn_matching_adaptive_adversary () =
  (* the adversary deletes a matched edge every step; approximation must
     survive because each window's matching is recomputed from fresh
     randomness *)
  let rng = Rng.create 5 in
  let n = 40 in
  let dm = Dyn_matching.create (Rng.split rng) ~n ~beta:1 ~eps:0.5 in
  (* warm up: a clique *)
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Dyn_matching.insert dm u v)
    done
  done;
  let adversary_rng = Rng.create 99 in
  for _ = 1 to 300 do
    let dg = Dyn_matching.graph dm in
    let mate v = Matching.mate (Dyn_matching.matching dm) v in
    match
      Adversary.next_op Adversary.Adaptive_target_matching adversary_rng dg
        ~current_mate:mate
    with
    | Some (Adversary.Delete (u, v)) -> ignore (Dyn_matching.delete dm u v)
    | Some (Adversary.Insert (u, v)) -> ignore (Dyn_matching.insert dm u v)
    | None -> ()
  done;
  let g = Dyn_graph.snapshot (Dyn_matching.graph dm) in
  let opt = Matching.size (Blossom.solve g) in
  let got = Dyn_matching.size dm in
  check_bool
    (Printf.sprintf "adaptive: %d vs opt %d" got opt)
    true
    (opt = 0 || float_of_int opt <= 2.0 *. float_of_int got);
  check_bool "graph still dense enough to matter" true (opt > 5)

let test_dyn_matching_adaptive_long_run () =
  (* end-to-end soak against the adaptive adversary: >= 1000 adaptive
     updates, with the (1+eps) ratio (plus the window slack of the
     lazy-rebuild schedule) asserted at periodic checkpoints, not just at
     the end — the adversary sees the maintained mate function at every
     step, so this exercises exactly the adaptivity the window rebuild is
     supposed to defeat *)
  let rng = Rng.create 55 in
  let n = 60 in
  let eps = 0.5 in
  let dm = Dyn_matching.create (Rng.split rng) ~n ~beta:1 ~eps in
  (* warm up with a random dense-ish graph so deletions have targets *)
  let warm = Gen.gnp (Rng.create 56) ~n ~p:0.25 in
  Graph.iter_edges warm (fun u v -> ignore (Dyn_matching.insert dm u v));
  let adversary_rng = Rng.create 57 in
  let updates = ref 0 in
  let checkpoints = ref 0 in
  for step = 1 to 1200 do
    let dg = Dyn_matching.graph dm in
    let mate v = Matching.mate (Dyn_matching.matching dm) v in
    (match
       Adversary.next_op Adversary.Adaptive_target_matching adversary_rng dg
         ~current_mate:mate
     with
    | Some (Adversary.Delete (u, v)) ->
        incr updates;
        ignore (Dyn_matching.delete dm u v)
    | Some (Adversary.Insert (u, v)) ->
        incr updates;
        ignore (Dyn_matching.insert dm u v)
    | None -> ());
    if step mod 50 = 0 then begin
      incr checkpoints;
      let g = Dyn_graph.snapshot (Dyn_matching.graph dm) in
      let m = Dyn_matching.matching dm in
      if not (Matching.is_valid g m) then
        Alcotest.failf "invalid matching at step %d" step;
      let opt = Matching.size (Blossom.solve g) in
      let got = Matching.size m in
      (* (1+eps) with an additive window allowance: a rebuild window may
         be mid-flight at a checkpoint *)
      check_bool
        (Printf.sprintf "checkpoint step %d: %d vs opt %d" step got opt)
        true
        (float_of_int opt <= ((1.0 +. eps) *. float_of_int got) +. 2.0)
    end
  done;
  check_bool
    (Printf.sprintf "enough adaptive updates: %d" !updates)
    true (!updates >= 1000);
  check "all checkpoints hit" 24 !checkpoints;
  let st = Dyn_matching.stats dm in
  check_bool "adversary forced rebuild activity" true
    (st.Dyn_matching.rebuilds > 0)

let test_dyn_matching_work_bound () =
  (* the spread worst-case work per update must not grow with n for fixed
     beta and eps (Theorem 3.5); compare two sizes of clique streams *)
  let spread_for n =
    let rng = Rng.create 7 in
    let dm = Dyn_matching.create rng ~n ~beta:1 ~eps:0.5 in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        ignore (Dyn_matching.insert dm u v)
      done
    done;
    (Dyn_matching.stats dm).Dyn_matching.max_spread_work
  in
  let s_small = spread_for 30 and s_large = spread_for 90 in
  check_bool
    (Printf.sprintf "spread work: %d (n=30) vs %d (n=90)" s_small s_large)
    true
    (float_of_int s_large <= 4.0 *. float_of_int (max s_small 1))

let test_dyn_matching_force_rebuild () =
  let rng = Rng.create 8 in
  let dm = Dyn_matching.create rng ~n:10 ~beta:1 ~eps:0.5 in
  ignore (Dyn_matching.insert dm 0 1);
  ignore (Dyn_matching.insert dm 2 3);
  Dyn_matching.force_rebuild dm;
  check "matching found" 2 (Dyn_matching.size dm);
  check_bool "rebuild counted" true
    ((Dyn_matching.stats dm).Dyn_matching.rebuilds >= 1)

(* ------------------------------------------------------------------ *)
(* Dyn_sparsifier (oblivious-adversary G_delta maintenance)           *)
(* ------------------------------------------------------------------ *)

let test_dyn_sparsifier_invariants_under_churn () =
  let rng = Rng.create 21 in
  let n = 25 in
  let ds = Dyn_sparsifier.create (Rng.split rng) ~n ~delta:3 in
  for step = 1 to 800 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then
      if Rng.bernoulli rng 0.35 then ignore (Dyn_sparsifier.delete ds u v)
      else ignore (Dyn_sparsifier.insert ds u v);
    if step mod 50 = 0 then
      check_bool
        (Printf.sprintf "invariants at step %d" step)
        true
        (Dyn_sparsifier.check_invariants ds)
  done;
  (* the maintained sparsifier is a subgraph of the current graph with the
     min-degree guarantee *)
  let g = Dyn_graph.snapshot (Dyn_sparsifier.graph ds) in
  let s = Dyn_sparsifier.sparsifier ds in
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
  check "edge count agrees" (Graph.m s) (Dyn_sparsifier.sparsifier_edge_count ds)

let test_dyn_sparsifier_update_work_is_o_delta () =
  let rng = Rng.create 22 in
  let n = 60 and delta = 4 in
  let ds = Dyn_sparsifier.create (Rng.split rng) ~n ~delta in
  (* dense graph so degrees are large: resampling must still cost O(delta) *)
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Dyn_sparsifier.insert ds u v)
    done
  done;
  let s = Dyn_sparsifier.stats ds in
  (* each update resamples two endpoints: <= 2 * 2*delta marks + 1 *)
  check_bool "worst update work O(delta)" true
    (s.Dyn_sparsifier.max_update_work <= (4 * delta) + 1)

let test_dyn_sparsifier_quality_snapshot () =
  (* under an oblivious stream the per-snapshot distribution equals the
     static G_delta, so the matching quality carries over *)
  let rng = Rng.create 23 in
  let n = 80 and delta = 8 in
  let ds = Dyn_sparsifier.create (Rng.split rng) ~n ~delta in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Dyn_sparsifier.insert ds u v)
    done
  done;
  let s = Dyn_sparsifier.sparsifier ds in
  let opt_s = Matching.size (Blossom.solve s) in
  check_bool
    (Printf.sprintf "snapshot quality %d vs %d" opt_s (n / 2))
    true
    (float_of_int (n / 2) <= 1.5 *. float_of_int opt_s)

let test_dyn_sparsifier_deletion_cleans_marks () =
  let rng = Rng.create 24 in
  let ds = Dyn_sparsifier.create rng ~n:4 ~delta:2 in
  ignore (Dyn_sparsifier.insert ds 0 1);
  ignore (Dyn_sparsifier.insert ds 2 3);
  ignore (Dyn_sparsifier.delete ds 0 1);
  let s = Dyn_sparsifier.sparsifier ds in
  check_bool "deleted edge not in sparsifier" false (Graph.has_edge s 0 1);
  check_bool "other edge survives" true (Graph.has_edge s 2 3);
  check_bool "invariants" true (Dyn_sparsifier.check_invariants ds)

(* ------------------------------------------------------------------ *)
(* Baseline                                                           *)
(* ------------------------------------------------------------------ *)

let test_baseline_maximal_invariant () =
  let rng = Rng.create 9 in
  let n = 25 in
  let b = Baseline_dynamic.create ~n in
  for _ = 1 to 1200 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then
      if Rng.bernoulli rng 0.35 then ignore (Baseline_dynamic.delete b u v)
      else ignore (Baseline_dynamic.insert b u v);
    let g = Dyn_graph.snapshot (Baseline_dynamic.graph b) in
    let m = Baseline_dynamic.matching b in
    if not (Matching.is_valid g m) then Alcotest.fail "baseline invalid";
    if not (Matching.is_maximal g m) then Alcotest.fail "baseline not maximal"
  done;
  check_bool "work accounted" true
    ((Baseline_dynamic.stats b).Baseline_dynamic.total_work > 0)

let test_baseline_work_grows_with_density () =
  (* deleting matched edges in a clique forces Theta(deg) repair scans *)
  let work_for n =
    let b = Baseline_dynamic.create ~n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        ignore (Baseline_dynamic.insert b u v)
      done
    done;
    let rng = Rng.create 10 in
    for _ = 1 to 50 do
      let m = Baseline_dynamic.matching b in
      match Matching.edges m with
      | [] -> ()
      | edges ->
          let u, v = List.nth edges (Rng.int rng (List.length edges)) in
          ignore (Baseline_dynamic.delete b u v);
          ignore (Baseline_dynamic.insert b u v)
    done;
    (Baseline_dynamic.stats b).Baseline_dynamic.max_update_work
  in
  let w30 = work_for 30 and w120 = work_for 120 in
  check_bool
    (Printf.sprintf "baseline repair grows: %d (n=30) vs %d (n=120)" w30 w120)
    true
    (w120 >= 2 * w30)

(* ------------------------------------------------------------------ *)
(* Adversary                                                          *)
(* ------------------------------------------------------------------ *)

let test_adversary_random_churn () =
  let rng = Rng.create 11 in
  let dg = Dyn_graph.create 12 in
  let mate _ = -1 in
  let inserts = ref 0 and deletes = ref 0 in
  for _ = 1 to 400 do
    match Adversary.next_op (Adversary.Random_churn 0.4) rng dg ~current_mate:mate with
    | Some (Adversary.Insert (u, v)) ->
        incr inserts;
        ignore (Dyn_graph.insert dg u v)
    | Some (Adversary.Delete (u, v)) ->
        incr deletes;
        ignore (Dyn_graph.delete dg u v)
    | None -> ()
  done;
  check_bool "both op kinds occur" true (!inserts > 50 && !deletes > 20)

let test_adversary_targets_matching () =
  let rng = Rng.create 12 in
  let dg = Dyn_graph.create 6 in
  ignore (Dyn_graph.insert dg 0 1);
  ignore (Dyn_graph.insert dg 2 3);
  ignore (Dyn_graph.insert dg 0 2);
  let mate = function 0 -> 1 | 1 -> 0 | _ -> -1 in
  (match
     Adversary.next_op Adversary.Adaptive_target_matching rng dg
       ~current_mate:mate
   with
  | Some (Adversary.Delete (0, 1)) -> ()
  | _ -> Alcotest.fail "adversary should delete the matched edge");
  (* with no matched edges it inserts instead *)
  let no_mate _ = -1 in
  match
    Adversary.next_op Adversary.Adaptive_target_matching rng dg
      ~current_mate:no_mate
  with
  | Some (Adversary.Insert _) -> ()
  | _ -> Alcotest.fail "adversary should insert when nothing is matched"

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let qcheck_dyn_graph_agrees =
  QCheck.Test.make ~name:"dyn graph agrees with a set-based reference"
    ~count:50
    QCheck.(pair (int_range 2 15) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let dg = Dyn_graph.create n in
      let reference = Hashtbl.create 32 in
      let ok = ref true in
      for _ = 1 to 300 do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then begin
          let key = (min u v, max u v) in
          if Rng.bool rng then begin
            let expect = not (Hashtbl.mem reference key) in
            if Dyn_graph.insert dg u v <> expect then ok := false;
            Hashtbl.replace reference key ()
          end
          else begin
            let expect = Hashtbl.mem reference key in
            if Dyn_graph.delete dg u v <> expect then ok := false;
            Hashtbl.remove reference key
          end
        end
      done;
      !ok && Dyn_graph.m dg = Hashtbl.length reference)

let qcheck_dyn_matching_always_valid =
  QCheck.Test.make ~name:"maintained matching is always a valid matching"
    ~count:25
    QCheck.(pair (int_range 4 20) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let dm = Dyn_matching.create (Rng.split rng) ~n ~beta:3 ~eps:0.5 in
      let ok = ref true in
      for _ = 1 to 200 do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then begin
          if Rng.bernoulli rng 0.3 then ignore (Dyn_matching.delete dm u v)
          else ignore (Dyn_matching.insert dm u v);
          let g = Dyn_graph.snapshot (Dyn_matching.graph dm) in
          if not (Matching.is_valid g (Dyn_matching.matching dm)) then
            ok := false
        end
      done;
      !ok)

let qcheck_baseline_two_approx =
  QCheck.Test.make ~name:"baseline stays 2-approximate under churn" ~count:25
    QCheck.(pair (int_range 4 16) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let b = Baseline_dynamic.create ~n in
      for _ = 1 to 150 do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then
          if Rng.bernoulli rng 0.3 then ignore (Baseline_dynamic.delete b u v)
          else ignore (Baseline_dynamic.insert b u v)
      done;
      let g = Dyn_graph.snapshot (Baseline_dynamic.graph b) in
      let opt = Brute_force.mcm_size g in
      2 * Baseline_dynamic.size b >= opt)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        qcheck_dyn_graph_agrees;
        qcheck_dyn_matching_always_valid;
        qcheck_baseline_two_approx;
      ]
  in
  Alcotest.run "mspar_dynamic"
    [
      ( "dyn-graph",
        [
          Alcotest.test_case "basic" `Quick test_dyn_graph_basic;
          Alcotest.test_case "vs reference" `Quick test_dyn_graph_vs_reference;
          Alcotest.test_case "sampling" `Quick test_dyn_graph_sampling;
          Alcotest.test_case "non-isolated tracking" `Quick
            test_dyn_graph_non_isolated;
        ] );
      ( "dyn-matching",
        [
          Alcotest.test_case "valid under churn" `Quick
            test_dyn_matching_validity_under_churn;
          Alcotest.test_case "approximation random" `Quick
            test_dyn_matching_approximation_random;
          Alcotest.test_case "adaptive adversary" `Quick
            test_dyn_matching_adaptive_adversary;
          Alcotest.test_case "adaptive adversary 1k soak" `Quick
            test_dyn_matching_adaptive_long_run;
          Alcotest.test_case "work bound" `Quick test_dyn_matching_work_bound;
          Alcotest.test_case "force rebuild" `Quick
            test_dyn_matching_force_rebuild;
        ] );
      ( "dyn-sparsifier",
        [
          Alcotest.test_case "invariants under churn" `Quick
            test_dyn_sparsifier_invariants_under_churn;
          Alcotest.test_case "update work O(delta)" `Quick
            test_dyn_sparsifier_update_work_is_o_delta;
          Alcotest.test_case "snapshot quality" `Quick
            test_dyn_sparsifier_quality_snapshot;
          Alcotest.test_case "deletion cleans marks" `Quick
            test_dyn_sparsifier_deletion_cleans_marks;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "maximal invariant" `Quick
            test_baseline_maximal_invariant;
          Alcotest.test_case "work grows with density" `Quick
            test_baseline_work_grows_with_density;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "random churn" `Quick test_adversary_random_churn;
          Alcotest.test_case "targets matching" `Quick
            test_adversary_targets_matching;
        ] );
      ("properties", qsuite);
    ]
