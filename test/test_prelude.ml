(* Tests for mspar_prelude: RNG determinism and uniformity, the O(1)-init
   sparse array, the read-only without-replacement sampler, vectors,
   bitsets, statistics and tables. *)

open Mspar_prelude

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    if Rng.bits64 a <> Rng.bits64 b then Alcotest.fail "streams diverge"
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 c then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_rng_copy_and_split () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  check_bool "copies agree" true (Rng.bits64 a = Rng.bits64 b);
  let c = Rng.split a in
  (* the split stream should not mirror the parent *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.bits64 a = Rng.bits64 c then incr same
  done;
  check "split independent" 0 !same

let test_rng_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    if v < -5 || v > 5 then Alcotest.fail "range violated"
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_uniformity () =
  (* chi-square-ish sanity: each residue of a 10-bucket draw should be
     within 20% of the mean over 100k draws *)
  let rng = Rng.create 2 in
  let buckets = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      check_bool
        (Printf.sprintf "bucket count %d near %d" c (trials / 10))
        true
        (abs (c - (trials / 10)) < trials / 50))
    buckets

let test_rng_float_and_bernoulli () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let f = Rng.float rng 1.0 in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done;
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_bool "bernoulli near 0.3" true (abs (!hits - 3000) < 300)

let test_rng_sample_distinct () =
  let rng = Rng.create 4 in
  let s = Rng.sample_distinct rng ~k:5 ~n:10 in
  check "five drawn" 5 (Array.length s);
  check "distinct" 5 (List.length (List.sort_uniq compare (Array.to_list s)));
  Array.iter (fun v -> check_bool "in range" true (v >= 0 && v < 10)) s;
  (* k >= n returns everything *)
  let all = Rng.sample_distinct rng ~k:99 ~n:6 in
  check "capped at n" 6 (Array.length all);
  check_bool "is a permutation of 0..5" true
    (List.sort compare (Array.to_list all) = [ 0; 1; 2; 3; 4; 5 ]);
  check "k=0 empty" 0 (Array.length (Rng.sample_distinct rng ~k:0 ~n:5))

let test_rng_sample_distinct_uniform () =
  (* each element of [0,6) should appear in a 3-subset with probability 1/2 *)
  let rng = Rng.create 5 in
  let counts = Array.make 6 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    Array.iter
      (fun v -> counts.(v) <- counts.(v) + 1)
      (Rng.sample_distinct rng ~k:3 ~n:6)
  done;
  Array.iter
    (fun c -> check_bool "inclusion near 1/2" true (abs (c - (trials / 2)) < trials / 20))
    counts

let test_rng_perm () =
  let rng = Rng.create 6 in
  let p = Rng.perm rng 8 in
  check_bool "is a permutation" true
    (List.sort compare (Array.to_list p) = [ 0; 1; 2; 3; 4; 5; 6; 7 ])

(* ------------------------------------------------------------------ *)
(* Sparse_array                                                       *)
(* ------------------------------------------------------------------ *)

let test_sparse_array_defaults () =
  let a = Sparse_array.create 5 ~default:(-1) in
  check "length" 5 (Sparse_array.length a);
  for i = 0 to 4 do
    check "default read" (-1) (Sparse_array.get a i);
    check_bool "not set" false (Sparse_array.is_set a i)
  done

let test_sparse_array_set_get_reset () =
  let a = Sparse_array.create 10 ~default:0 in
  Sparse_array.set a 3 33;
  Sparse_array.set a 7 77;
  check "read back" 33 (Sparse_array.get a 3);
  check "read back 2" 77 (Sparse_array.get a 7);
  check "untouched stays default" 0 (Sparse_array.get a 5);
  check "live count" 2 (Sparse_array.live_count a);
  Sparse_array.set a 3 34;
  check "overwrite" 34 (Sparse_array.get a 3);
  check "live count stable on overwrite" 2 (Sparse_array.live_count a);
  Sparse_array.reset a;
  check "live count after reset" 0 (Sparse_array.live_count a);
  for i = 0 to 9 do
    check "default after reset" 0 (Sparse_array.get a i)
  done;
  (* values written before reset must not leak through is_set *)
  Sparse_array.set a 1 11;
  check "post-reset write" 11 (Sparse_array.get a 1);
  check "post-reset other slot" 0 (Sparse_array.get a 3)

let test_sparse_array_reset_stress () =
  (* the back/stack discipline must survive many interleaved resets *)
  let a = Sparse_array.create 50 ~default:(-7) in
  let reference = Hashtbl.create 16 in
  let rng = Rng.create 9 in
  for _ = 1 to 5000 do
    match Rng.int rng 10 with
    | 0 ->
        Sparse_array.reset a;
        Hashtbl.reset reference
    | _ ->
        let i = Rng.int rng 50 in
        if Rng.bool rng then begin
          let v = Rng.int rng 1000 in
          Sparse_array.set a i v;
          Hashtbl.replace reference i v
        end
        else begin
          let expect =
            match Hashtbl.find_opt reference i with Some v -> v | None -> -7
          in
          if Sparse_array.get a i <> expect then
            Alcotest.fail "sparse array disagrees with reference"
        end
  done

let test_rng_fill_bits62 () =
  (* the batch fill is the same stream as repeated bits62 calls — words
     and final state both *)
  let a = Rng.create 77 and b = Rng.create 77 in
  let buf = Array.make 100 0 in
  Rng.fill_bits62 a buf ~pos:0 ~len:100;
  for i = 0 to 99 do
    if buf.(i) <> Rng.bits62 b then Alcotest.fail "batched word diverges"
  done;
  check_bool "final states agree" true (Rng.state a = Rng.state b);
  Rng.fill_bits62 a buf ~pos:10 ~len:5;
  for i = 10 to 14 do
    if buf.(i) <> Rng.bits62 b then Alcotest.fail "offset fill diverges"
  done;
  Array.iter (fun w -> check_bool "62-bit nonneg" true (w >= 0)) buf;
  Alcotest.check_raises "oob range"
    (Invalid_argument "Rng.fill_bits62: range out of bounds") (fun () ->
      Rng.fill_bits62 a buf ~pos:90 ~len:20)

let qcheck_int_with_matches_int =
  QCheck.Test.make
    ~name:"int_with over the raw word stream reproduces int, state included"
    ~count:300
    QCheck.(pair (int_range 1 1_000_000) (int_range 0 10_000))
    (fun (bound, seed) ->
      let a = Rng.create seed and b = Rng.create seed in
      let next () = Rng.bits62 b in
      let ok = ref true in
      for _ = 0 to 19 do
        if Rng.int a bound <> Rng.int_with ~next bound then ok := false
      done;
      !ok && Rng.state a = Rng.state b)

(* ------------------------------------------------------------------ *)
(* Sampling                                                           *)
(* ------------------------------------------------------------------ *)

let test_sampling_basic () =
  let s = Sampling.create ~capacity:100 in
  let rng = Rng.create 10 in
  let out = ref [] in
  Sampling.sample_indices s rng ~n:50 ~k:10 ~f:(fun i -> out := i :: !out);
  check "ten sampled" 10 (List.length !out);
  check "distinct" 10 (List.length (List.sort_uniq compare !out));
  List.iter (fun i -> check_bool "in range" true (i >= 0 && i < 50)) !out;
  check "steps recorded" 10 (Sampling.steps_last_call s)

let test_sampling_k_exceeds_n () =
  let s = Sampling.create ~capacity:10 in
  let rng = Rng.create 11 in
  let out = ref [] in
  Sampling.sample_indices s rng ~n:4 ~k:100 ~f:(fun i -> out := i :: !out);
  check_bool "whole population, each once" true
    (List.sort compare !out = [ 0; 1; 2; 3 ])

let test_sampling_reuse_is_clean () =
  (* consecutive calls must not leak positions across resets *)
  let s = Sampling.create ~capacity:20 in
  let rng = Rng.create 12 in
  for _ = 1 to 200 do
    let out = ref [] in
    Sampling.sample_indices s rng ~n:20 ~k:7 ~f:(fun i -> out := i :: !out);
    if List.length (List.sort_uniq compare !out) <> 7 then
      Alcotest.fail "duplicate under reuse"
  done

let test_sampling_uniform () =
  let s = Sampling.create ~capacity:6 in
  let rng = Rng.create 13 in
  let counts = Array.make 6 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    Sampling.sample_indices s rng ~n:6 ~k:2 ~f:(fun i ->
        counts.(i) <- counts.(i) + 1)
  done;
  (* inclusion probability 1/3 each *)
  Array.iter
    (fun c -> check_bool "inclusion near 1/3" true (abs (c - (trials / 3)) < trials / 15))
    counts

let qcheck_sampling_batched_equals_unbatched =
  QCheck.Test.make
    ~name:"batched sample_indices matches the unbatched draw loop bit for bit"
    ~count:300
    QCheck.(triple (int_range 0 60) (int_range 0 80) (int_range 0 10_000))
    (fun (n, k, seed) ->
      let s = Sampling.create ~capacity:60 in
      let a = Rng.create seed and b = Rng.create seed in
      let batched = ref [] in
      Sampling.sample_indices s a ~n ~k ~f:(fun i -> batched := i :: !batched);
      (* the pre-batching reference: one Rng.int per draw, emulated
         Fisher–Yates over a plain positions array *)
      let pos = Array.make (Int.max n 1) (-1) in
      let value_at i = if pos.(i) = -1 then i else pos.(i) in
      let k = Int.min k n in
      let reference = ref [] in
      for step = 0 to k - 1 do
        let last = n - 1 - step in
        let j = Rng.int b (last + 1) in
        reference := value_at j :: !reference;
        pos.(j) <- value_at last
      done;
      !batched = !reference && Rng.state a = Rng.state b)

let test_sampling_capacity_check () =
  let s = Sampling.create ~capacity:4 in
  Alcotest.check_raises "over capacity"
    (Invalid_argument "Sampling.sample_indices: population exceeds capacity")
    (fun () ->
      Sampling.sample_indices s (Rng.create 0) ~n:5 ~k:1 ~f:(fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Vec / Bitset                                                       *)
(* ------------------------------------------------------------------ *)

let test_vec () =
  let v = Vec.create ~dummy:(-1) () in
  check_bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  check "length" 100 (Vec.length v);
  check "get" 42 (Vec.get v 42);
  Vec.set v 42 420;
  check "set" 420 (Vec.get v 42);
  check "pop" 99 (Vec.pop v);
  check "length after pop" 99 (Vec.length v);
  check "fold" (420 + (99 * 98 / 2) - 42) (Vec.fold_left ( + ) 0 v);
  check_bool "exists" true (Vec.exists (fun x -> x = 420) v);
  let arr = Vec.to_array v in
  check "to_array length" 99 (Array.length arr);
  Vec.clear v;
  check "cleared" 0 (Vec.length v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop v));
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 0))

let test_bitset () =
  let b = Bitset.create 200 in
  check "empty cardinal" 0 (Bitset.cardinal b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 199;
  check "cardinal" 4 (Bitset.cardinal b);
  check_bool "mem" true (Bitset.mem b 63);
  check_bool "not mem" false (Bitset.mem b 100);
  check_bool "list" true (Bitset.to_list b = [ 0; 63; 64; 199 ]);
  check_bool "first" true (Bitset.first_mem b = Some 0);
  Bitset.remove b 0;
  check_bool "first after remove" true (Bitset.first_mem b = Some 63);
  let c = Bitset.copy b in
  Bitset.add c 5;
  check "copy independent" 3 (Bitset.cardinal b);
  let x = Bitset.create 100 and y = Bitset.create 100 in
  Bitset.add x 1;
  Bitset.add x 2;
  Bitset.add x 70;
  Bitset.add y 2;
  Bitset.add y 70;
  Bitset.add y 99;
  check "inter cardinal" 2 (Bitset.inter_cardinal x y);
  check_bool "diff" true (Bitset.to_list (Bitset.diff x y) = [ 1 ]);
  check_bool "inter" true (Bitset.to_list (Bitset.inter x y) = [ 2; 70 ]);
  Bitset.clear x;
  check "cleared" 0 (Bitset.cardinal x);
  check_bool "first of empty" true (Bitset.first_mem x = None)

(* ------------------------------------------------------------------ *)
(* Stats / Table / Clock                                              *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.5) (Stats.stddev xs);
  let lo, hi = Stats.min_max xs in
  Alcotest.(check (float 1e-9)) "min" 1.0 lo;
  Alcotest.(check (float 1e-9)) "max" 5.0 hi;
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  let s = Stats.summarize xs in
  check "summary n" 5 s.Stats.n;
  Alcotest.(check (float 1e-9)) "mean of empty" 0.0 (Stats.mean [||]);
  Alcotest.(check (float 1e-9)) "stddev single" 0.0 (Stats.stddev [| 9.0 |])

let test_table_smoke () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; Table.cell_i 3 ];
  Table.add_rule t;
  Table.add_row t [ "beta"; Table.cell_f 3.14159 ];
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "too"; "many"; "cells" ]);
  (* render to /dev/null just to exercise the layout code *)
  let oc = open_out "/dev/null" in
  Table.print ~oc t;
  close_out oc;
  check_bool "cell_f int-like" true (Table.cell_f 4.0 = "4");
  check_bool "cell_b" true (Table.cell_b true = "yes")

let test_clock () =
  let (), ns = Clock.time_ns (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0))) in
  check_bool "non-negative" true (Int64.compare ns 0L >= 0);
  check_bool "ms conversion" true (Clock.ns_to_ms 2_000_000L = 2.0)

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let qcheck_sample_distinct_valid =
  QCheck.Test.make ~name:"sample_distinct returns distinct in-range values"
    ~count:200
    QCheck.(triple (int_range 0 50) (int_range 0 60) (int_range 0 10_000))
    (fun (n, k, seed) ->
      let rng = Rng.create seed in
      let s = Rng.sample_distinct rng ~k ~n in
      Array.length s = min k n
      && List.length (List.sort_uniq compare (Array.to_list s)) = Array.length s
      && Array.for_all (fun v -> v >= 0 && v < n) s)

let qcheck_sparse_array_semantics =
  QCheck.Test.make ~name:"sparse array behaves like a hashtable with default"
    ~count:100
    QCheck.(pair (int_range 1 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let a = Sparse_array.create n ~default:0 in
      let h = Hashtbl.create 8 in
      let ok = ref true in
      for _ = 1 to 200 do
        let i = Rng.int rng n in
        match Rng.int rng 3 with
        | 0 ->
            let v = Rng.int rng 100 in
            Sparse_array.set a i v;
            Hashtbl.replace h i v
        | 1 ->
            let expect = Option.value ~default:0 (Hashtbl.find_opt h i) in
            if Sparse_array.get a i <> expect then ok := false
        | _ ->
            if Rng.int rng 10 = 0 then begin
              Sparse_array.reset a;
              Hashtbl.reset h
            end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Edgebuf / Isort                                                    *)
(* ------------------------------------------------------------------ *)

let test_edgebuf () =
  let b = Edgebuf.create ~initial_capacity:2 () in
  check_bool "fresh empty" true (Edgebuf.is_empty b);
  for i = 0 to 99 do
    Edgebuf.push b (i * 3)
  done;
  check "length" 100 (Edgebuf.length b);
  check "get 0" 0 (Edgebuf.get b 0);
  check "get 99" 297 (Edgebuf.get b 99);
  check_bool "capacity grew" true (Edgebuf.capacity b >= 100);
  Alcotest.check_raises "oob get" (Invalid_argument "Edgebuf: index out of bounds")
    (fun () -> ignore (Edgebuf.get b 100));
  let arr = Edgebuf.to_array b in
  check "to_array len" 100 (Array.length arr);
  check "to_array content" 150 arr.(50);
  (* data exposes the live storage prefix *)
  check "data prefix" 150 (Edgebuf.data b).(50);
  let sum = Edgebuf.fold_left ( + ) 0 b in
  check "fold" (3 * (99 * 100 / 2)) sum;
  let seen = ref 0 in
  Edgebuf.iter (fun _ -> incr seen) b;
  check "iter visits all" 100 !seen;
  (* blit_into concatenation *)
  let c = Edgebuf.create () in
  Edgebuf.push c 7;
  let dst = Array.make (Edgebuf.length b + Edgebuf.length c) (-1) in
  Edgebuf.blit_into b dst 0;
  Edgebuf.blit_into c dst (Edgebuf.length b);
  check "blit end" 7 dst.(100);
  Alcotest.check_raises "blit oob"
    (Invalid_argument "Edgebuf.blit_into: destination range out of bounds")
    (fun () -> Edgebuf.blit_into b dst 2);
  Edgebuf.append ~into:c b;
  check "append length" 101 (Edgebuf.length c);
  check "append content" 0 (Edgebuf.get c 1);
  Edgebuf.clear b;
  check "clear" 0 (Edgebuf.length b);
  Edgebuf.push b 42;
  check "reusable after clear" 42 (Edgebuf.get b 0);
  (* push_unchecked after an explicit reservation (the marking hot path) *)
  let u = Edgebuf.create ~initial_capacity:1 () in
  Edgebuf.ensure_capacity u 64;
  for i = 0 to 63 do
    Edgebuf.push_unchecked u i
  done;
  check "unchecked length" 64 (Edgebuf.length u);
  check "unchecked content" 63 (Edgebuf.get u 63);
  check_bool "no reallocation happened" true (Edgebuf.capacity u = 64)

let test_bigvec () =
  let v = Bigvec.create 8 in
  check "length" 8 (Bigvec.length v);
  check "zero-filled" 0 (Bigvec.get v 3);
  Bigvec.set v 3 42;
  check "set/get" 42 (Bigvec.get v 3);
  check_bool "checked get raises on oob" true
    (try
       ignore (Bigvec.get v 8);
       false
     with Invalid_argument _ -> true);
  let a = Bigvec.of_array [| 5; 4; 3; 2; 1 |] in
  check_bool "of_array/to_array roundtrip" true
    (Bigvec.to_array a = [| 5; 4; 3; 2; 1 |]);
  let c = Bigvec.copy a in
  Bigvec.set c 0 9;
  check "copy is detached" 5 (Bigvec.get a 0);
  check_bool "equal" true (Bigvec.equal a (Bigvec.of_array [| 5; 4; 3; 2; 1 |]));
  check_bool "not equal" false (Bigvec.equal a c);
  check_bool "length mismatch unequal" false (Bigvec.equal a (Bigvec.create 3));
  let dst = Bigvec.create 5 in
  Bigvec.blit ~src:a ~src_pos:1 ~dst ~dst_pos:2 ~len:3;
  check "blit" 4 (Bigvec.get dst 2);
  (* sub shares storage — mutating the window is visible in the parent *)
  let sub = Bigvec.sub a ~pos:1 ~len:2 in
  Bigvec.set sub 0 77;
  check "sub shares storage" 77 (Bigvec.get a 1);
  Bigvec.fill dst 6;
  check "fill" 6 (Bigvec.get dst 0);
  check "fold" (5 + 77 + 3 + 2 + 1) (Bigvec.fold_left ( + ) 0 a);
  let seen = ref 0 in
  Bigvec.iter (fun _ -> incr seen) a;
  check "iter" 5 !seen;
  check "empty length" 0 (Bigvec.length (Bigvec.create 0));
  Alcotest.check_raises "negative create"
    (Invalid_argument "Bigvec.create: negative length") (fun () ->
      ignore (Bigvec.create (-1)));
  Alcotest.check_raises "sub oob"
    (Invalid_argument "Bigvec.sub: range out of bounds") (fun () ->
      ignore (Bigvec.sub a ~pos:4 ~len:3));
  Alcotest.check_raises "blit oob"
    (Invalid_argument "Bigvec.blit: range out of bounds") (fun () ->
      Bigvec.blit ~src:a ~src_pos:0 ~dst ~dst_pos:3 ~len:3)

let test_isort_known () =
  let a = [| 5; 3; 1; 4; 2 |] in
  Isort.sort a;
  check_bool "small sort" true (a = [| 1; 2; 3; 4; 5 |]);
  let e = [||] in
  Isort.sort e;
  check "empty" 0 (Array.length e);
  let one = [| 9 |] in
  Isort.sort one;
  check "singleton" 9 one.(0);
  (* sort_range leaves the rest untouched *)
  let r = [| 9; 8; 7; 6; 5; 4 |] in
  Isort.sort_range r ~pos:1 ~len:3;
  check_bool "range sorted" true (r = [| 9; 6; 7; 8; 5; 4 |]);
  Alcotest.check_raises "bad range"
    (Invalid_argument "Isort.sort_range: range out of bounds") (fun () ->
      Isort.sort_range r ~pos:4 ~len:3);
  check_bool "is_sorted" true (Isort.is_sorted [| 1; 1; 2; 3 |]);
  check_bool "is_sorted detects" false (Isort.is_sorted [| 2; 1 |])

let test_isort_adversarial () =
  (* shapes that hurt naive quicksorts: sorted, reverse-sorted, constant,
     organ-pipe, and few-distinct-values arrays, at sizes around the
     insertion cutoff and well above it *)
  let shapes n =
    [
      Array.init n (fun i -> i);
      Array.init n (fun i -> n - i);
      Array.make n 3;
      Array.init n (fun i -> min i (n - i));
      Array.init n (fun i -> i mod 3);
    ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun a ->
          let expect = Array.copy a in
          Array.sort compare expect;
          Isort.sort a;
          check_bool (Printf.sprintf "adversarial n=%d" n) true (a = expect))
        (shapes n))
    [ 2; 15; 16; 17; 100; 1000 ]

let qcheck_isort_matches_stdlib =
  QCheck.Test.make ~name:"Isort.sort agrees with Array.sort compare"
    ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_range 0 200) small_signed_int)
    (fun a ->
      let mine = Array.copy a and theirs = Array.copy a in
      Isort.sort mine;
      Array.sort compare theirs;
      mine = theirs)

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_chunk_bounds () =
  (* the ranges partition [0, n) in order, with sizes differing by <= 1 *)
  List.iter
    (fun (chunks, n) ->
      let expected_lo = ref 0 in
      let sizes = ref [] in
      for k = 0 to chunks - 1 do
        let lo, hi = Pool.chunk_bounds ~chunks ~n k in
        check (Printf.sprintf "lo contiguous (c=%d n=%d k=%d)" chunks n k) !expected_lo lo;
        check_bool "ordered" true (lo <= hi);
        expected_lo := hi;
        sizes := (hi - lo) :: !sizes
      done;
      check (Printf.sprintf "covers [0,%d)" n) n !expected_lo;
      let mn, mx =
        List.fold_left (fun (a, b) s -> (min a s, max b s)) (max_int, 0) !sizes
      in
      check_bool "balanced" true (chunks = 0 || mx - mn <= 1))
    [ (1, 0); (1, 10); (3, 10); (4, 4); (7, 3); (8, 100); (5, 0) ]

let test_pool_parallel_for_covers () =
  let pool = Pool.create ~num_domains:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      check "size" 3 (Pool.size pool);
      List.iter
        (fun (chunks, n) ->
          let hits = Array.make (max n 1) 0 in
          Pool.parallel_for_ranges pool ?chunks ~n (fun ~chunk ~lo ~hi ->
              check_bool "chunk id in range" true (chunk >= 0);
              for i = lo to hi - 1 do
                hits.(i) <- hits.(i) + 1
              done);
          for i = 0 to n - 1 do
            check (Printf.sprintf "index %d visited once (n=%d)" i n) 1 hits.(i)
          done)
        [ (None, 0); (None, 1); (None, 2); (None, 100); (Some 1, 50);
          (Some 7, 10); (Some 7, 3); (Some 16, 1000) ])

let test_pool_single_domain_never_spawns () =
  (* a size-1 pool runs everything on the caller; observable via Domain.self *)
  let pool = Pool.create ~num_domains:1 () in
  let me = (Domain.self () :> int) in
  let seen = ref [] in
  Pool.parallel_for_ranges pool ~chunks:4 ~n:8 (fun ~chunk:_ ~lo:_ ~hi:_ ->
      seen := (Domain.self () :> int) :: !seen);
  check "all four chunks ran" 4 (List.length !seen);
  List.iter (fun d -> check "on the caller's domain" me d) !seen;
  Pool.shutdown pool

let test_pool_exception_propagates () =
  let pool = Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (match
         Pool.parallel_for_ranges pool ~chunks:4 ~n:4 (fun ~chunk ~lo:_ ~hi:_ ->
             if chunk = 1 then failwith "boom")
       with
      | () -> Alcotest.fail "expected the chunk's exception to propagate"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      (* the pool is still usable after a failed job *)
      let total = Atomic.make 0 in
      Pool.parallel_for_ranges pool ~n:10 (fun ~chunk:_ ~lo ~hi ->
          ignore (Atomic.fetch_and_add total (hi - lo)));
      check "usable after failure" 10 (Atomic.get total))

let test_pool_shutdown_and_restart () =
  let pool = Pool.create ~num_domains:2 () in
  let count () =
    let total = Atomic.make 0 in
    Pool.parallel_for_ranges pool ~n:7 (fun ~chunk:_ ~lo ~hi ->
        ignore (Atomic.fetch_and_add total (hi - lo)));
    Atomic.get total
  in
  check "first use" 7 (count ());
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  check "restarts lazily after shutdown" 7 (count ());
  Pool.shutdown pool

let test_pool_create_validation () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Pool.create: num_domains must be in [1, 128]") (fun () ->
      ignore (Pool.create ~num_domains:0 ()));
  Alcotest.check_raises "too many domains"
    (Invalid_argument "Pool.create: num_domains must be in [1, 128]") (fun () ->
      ignore (Pool.create ~num_domains:129 ()))

let test_pool_default_size_env () =
  (* Unix.putenv is process-global; restore afterwards.  Sys.getenv_opt sees
     putenv updates in OCaml's runtime. *)
  let old = Sys.getenv_opt "MSPAR_DOMAINS" in
  let restore () =
    match old with Some v -> Unix.putenv "MSPAR_DOMAINS" v | None -> Unix.putenv "MSPAR_DOMAINS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "MSPAR_DOMAINS" "3";
      check "env override" 3 (Pool.default_size ());
      Unix.putenv "MSPAR_DOMAINS" "999";
      check_bool "out-of-range ignored" true (Pool.default_size () >= 1);
      Unix.putenv "MSPAR_DOMAINS" "zebra";
      check_bool "garbage ignored" true (Pool.default_size () >= 1))

let test_pool_get_default () =
  let a = Pool.get_default () and b = Pool.get_default () in
  check_bool "process-wide singleton" true (a == b);
  check_bool "sized by default_size" true (Pool.size a >= 1)

(* ------------------------------------------------------------------ *)
(* Codec.Frames — the incremental frame reader under the serve wire    *)
(* ------------------------------------------------------------------ *)

(* drain every complete frame currently buffered; returns frames in
   arrival order plus the corrupt verdict if one fired *)
let frames_drain t =
  let rec go acc =
    match Codec.Frames.next t with
    | `Frame b -> go (b :: acc)
    | `Need_more -> (List.rev acc, None)
    | `Corrupt msg -> (List.rev acc, Some msg)
  in
  go []

let test_frames_roundtrip () =
  let bodies = [ ""; "a"; "hello"; String.make 300 '\x00'; "\xff\x00\xfe" ] in
  let buf = Buffer.create 256 in
  List.iter (Codec.Frames.encode buf) bodies;
  let t = Codec.Frames.create () in
  Codec.Frames.feed t (Buffer.contents buf);
  let got, corrupt = frames_drain t in
  check_bool "no corruption" true (corrupt = None);
  Alcotest.(check (list string)) "bodies round-trip" bodies got;
  check "nothing left buffered" 0 (Codec.Frames.buffered t)

let test_frames_byte_at_a_time () =
  let bodies = [ "x"; "incremental"; "" ] in
  let buf = Buffer.create 64 in
  List.iter (Codec.Frames.encode buf) bodies;
  let s = Buffer.contents buf in
  let t = Codec.Frames.create () in
  let got = ref [] in
  String.iteri
    (fun i _ ->
      Codec.Frames.feed t ~pos:i ~len:1 s;
      let fs, corrupt = frames_drain t in
      check_bool "never corrupt" true (corrupt = None);
      got := !got @ fs)
    s;
  Alcotest.(check (list string)) "bodies survive 1-byte chunks" bodies !got

let test_frames_bad_crc_is_sticky () =
  let buf = Buffer.create 64 in
  Codec.Frames.encode buf "doomed";
  let s = Bytes.of_string (Buffer.contents buf) in
  let last = Bytes.length s - 1 in
  Bytes.set s last (Char.chr (Char.code (Bytes.get s last) lxor 1));
  let t = Codec.Frames.create () in
  Codec.Frames.feed t (Bytes.to_string s);
  (match Codec.Frames.next t with
  | `Corrupt _ -> ()
  | `Frame _ | `Need_more -> Alcotest.fail "flipped CRC must be corrupt");
  check "corrupt drops the buffer" 0 (Codec.Frames.buffered t);
  (* sticky: feeding a perfectly valid frame afterwards changes nothing *)
  let ok = Buffer.create 16 in
  Codec.Frames.encode ok "fine";
  Codec.Frames.feed t (Buffer.contents ok);
  (match Codec.Frames.next t with
  | `Corrupt _ -> ()
  | `Frame _ | `Need_more -> Alcotest.fail "corrupt state must be sticky");
  check "feed after corrupt is a no-op" 0 (Codec.Frames.buffered t)

let test_frames_hostile_lengths () =
  (* a declared body length above max_frame is corruption, not a request
     to buffer it *)
  let buf = Buffer.create 64 in
  Codec.add_uvarint buf 1024;
  let t = Codec.Frames.create ~max_frame:64 () in
  Codec.Frames.feed t (Buffer.contents buf);
  (match Codec.Frames.next t with
  | `Corrupt _ -> ()
  | `Frame _ | `Need_more -> Alcotest.fail "oversized length must be corrupt");
  (* an over-long varint (9+ continuation bytes) can never finish *)
  let t = Codec.Frames.create () in
  Codec.Frames.feed t (String.make 9 '\xff');
  (match Codec.Frames.next t with
  | `Corrupt _ -> ()
  | `Frame _ | `Need_more -> Alcotest.fail "over-long varint must be corrupt");
  (* but 8 high-bit bytes are still a legal prefix: keep waiting *)
  let t = Codec.Frames.create () in
  Codec.Frames.feed t (String.make 8 '\xff');
  match Codec.Frames.next t with
  | `Need_more -> ()
  | `Frame _ | `Corrupt _ -> Alcotest.fail "8 continuation bytes is a prefix"

let test_frames_decode_all_tails () =
  let buf = Buffer.create 64 in
  Codec.Frames.encode buf "one";
  Codec.Frames.encode buf "two";
  let s = Buffer.contents buf in
  (match Codec.Frames.decode_all s with
  | [ "one"; "two" ], Codec.Frames.Clean -> ()
  | _ -> Alcotest.fail "clean decode");
  (match Codec.Frames.decode_all (String.sub s 0 (String.length s - 2)) with
  | [ "one" ], Codec.Frames.Short -> ()
  | _ -> Alcotest.fail "torn tail is Short");
  match Codec.Frames.decode_all (s ^ String.make 9 '\xff') with
  | [ "one"; "two" ], Codec.Frames.Bad _ -> ()
  | _ -> Alcotest.fail "junk tail is Bad"

(* the load-bearing property: however the byte stream is chopped up, the
   incremental reader never raises and agrees bit-for-bit with the
   independent whole-buffer decoder — on valid input, torn input, and
   junk-suffixed input alike *)
let qcheck_frames_incremental_matches_whole_buffer =
  QCheck.Test.make
    ~name:"Frames: incremental == decode_all under any chunking" ~count:500
    QCheck.(pair (small_list (string_of_size (Gen.int_range 0 40)))
              (int_range 0 1_000_000))
    (fun (bodies, seed) ->
      let rng = Rng.create seed in
      let buf = Buffer.create 256 in
      List.iter (Codec.Frames.encode buf) bodies;
      let s = Buffer.contents buf in
      (* mutate the tail: 0 = leave clean, 1 = truncate, 2 = append junk *)
      let s =
        match Rng.int rng 3 with
        | 1 when String.length s > 0 -> String.sub s 0 (Rng.int rng (String.length s))
        | 2 ->
            s
            ^ String.init
                (1 + Rng.int rng 12)
                (fun _ -> Char.chr (Rng.int rng 256))
        | _ -> s
      in
      let expect, tail = Codec.Frames.decode_all s in
      let t = Codec.Frames.create () in
      let got = ref [] in
      let corrupt = ref None in
      let i = ref 0 in
      let n = String.length s in
      while !i < n do
        let len = Int.min (1 + Rng.int rng 7) (n - !i) in
        Codec.Frames.feed t ~pos:!i ~len s;
        i := !i + len;
        let fs, c = frames_drain t in
        got := !got @ fs;
        if !corrupt = None then corrupt := c
      done;
      List.equal String.equal expect !got
      &&
      match tail with
      | Codec.Frames.Bad _ -> !corrupt <> None
      | Codec.Frames.Short ->
          !corrupt = None && Codec.Frames.buffered t > 0
      | Codec.Frames.Clean ->
          !corrupt = None && Codec.Frames.buffered t = 0)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        qcheck_sample_distinct_valid;
        qcheck_sparse_array_semantics;
        qcheck_isort_matches_stdlib;
        qcheck_int_with_matches_int;
        qcheck_sampling_batched_equals_unbatched;
        qcheck_frames_incremental_matches_whole_buffer;
      ]
  in
  Alcotest.run "mspar_prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "copy and split" `Quick test_rng_copy_and_split;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "float and bernoulli" `Quick
            test_rng_float_and_bernoulli;
          Alcotest.test_case "sample_distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "sample_distinct uniform" `Quick
            test_rng_sample_distinct_uniform;
          Alcotest.test_case "perm" `Quick test_rng_perm;
          Alcotest.test_case "fill_bits62" `Quick test_rng_fill_bits62;
        ] );
      ( "sparse-array",
        [
          Alcotest.test_case "defaults" `Quick test_sparse_array_defaults;
          Alcotest.test_case "set/get/reset" `Quick
            test_sparse_array_set_get_reset;
          Alcotest.test_case "reset stress" `Quick test_sparse_array_reset_stress;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "basic" `Quick test_sampling_basic;
          Alcotest.test_case "k exceeds n" `Quick test_sampling_k_exceeds_n;
          Alcotest.test_case "reuse" `Quick test_sampling_reuse_is_clean;
          Alcotest.test_case "uniform" `Quick test_sampling_uniform;
          Alcotest.test_case "capacity check" `Quick test_sampling_capacity_check;
        ] );
      ( "containers",
        [
          Alcotest.test_case "vec" `Quick test_vec;
          Alcotest.test_case "bitset" `Quick test_bitset;
          Alcotest.test_case "edgebuf" `Quick test_edgebuf;
          Alcotest.test_case "bigvec" `Quick test_bigvec;
        ] );
      ( "isort",
        [
          Alcotest.test_case "known arrays" `Quick test_isort_known;
          Alcotest.test_case "adversarial shapes" `Quick test_isort_adversarial;
        ] );
      ( "stats",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "table" `Quick test_table_smoke;
          Alcotest.test_case "clock" `Quick test_clock;
        ] );
      ( "frames",
        [
          Alcotest.test_case "round trip" `Quick test_frames_roundtrip;
          Alcotest.test_case "byte-at-a-time chunks" `Quick
            test_frames_byte_at_a_time;
          Alcotest.test_case "bad CRC is sticky" `Quick
            test_frames_bad_crc_is_sticky;
          Alcotest.test_case "hostile lengths" `Quick
            test_frames_hostile_lengths;
          Alcotest.test_case "decode_all tail verdicts" `Quick
            test_frames_decode_all_tails;
        ] );
      ( "pool",
        [
          Alcotest.test_case "chunk bounds" `Quick test_pool_chunk_bounds;
          Alcotest.test_case "parallel_for coverage" `Quick
            test_pool_parallel_for_covers;
          Alcotest.test_case "single domain runs inline" `Quick
            test_pool_single_domain_never_spawns;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "shutdown and restart" `Quick
            test_pool_shutdown_and_restart;
          Alcotest.test_case "create validation" `Quick
            test_pool_create_validation;
          Alcotest.test_case "default_size env" `Quick
            test_pool_default_size_env;
          Alcotest.test_case "get_default" `Quick test_pool_get_default;
        ] );
      ("properties", qsuite);
    ]
