(* Degenerate-input hardening: every public entry point on empty graphs,
   single vertices, single edges, and boundary parameters.  The library
   should either work or reject with a clear Invalid_argument — never crash
   with an array error or loop forever. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Graph layer                                                        *)
(* ------------------------------------------------------------------ *)

let test_empty_graph_everything () =
  let g = Gen.empty 0 in
  check "n=0 n" 0 (Graph.n g);
  check "n=0 m" 0 (Graph.m g);
  check "n=0 max degree" 0 (Graph.max_degree g);
  check_bool "n=0 edges" true (Graph.edges g = [||]);
  check "n=0 degeneracy" 0 (Arboricity.degeneracy g);
  check "n=0 density" 0 (Arboricity.density_lower_bound g);
  check "n=0 beta" 0 (Beta.value (Beta.compute g));
  check "n=0 mcm" 0 (Brute_force.mcm_size g);
  check "n=0 blossom" 0 (Matching.size (Blossom.solve g));
  check "n=0 greedy" 0 (Matching.size (Greedy.maximal g));
  check "n=0 hk" 0 (Matching.size (Hopcroft_karp.solve g))

let test_single_vertex () =
  let g = Gen.empty 1 in
  check "deg" 0 (Graph.degree g 0);
  check "blossom" 0 (Matching.size (Blossom.solve g));
  check "beta" 0 (Beta.value (Beta.compute g));
  let m, st = Mspar_distsim.Det_matching.maximal g in
  check "det matching empty" 0 (Matching.size m);
  check "det rounds zero" 0 st.Mspar_distsim.Det_matching.rounds

let test_single_edge () =
  let g = Graph.of_edges ~n:2 [ (0, 1) ] in
  check "blossom" 1 (Matching.size (Blossom.solve g));
  check "greedy" 1 (Matching.size (Greedy.maximal g));
  check "hk" 1 (Matching.size (Hopcroft_karp.solve g));
  check "bounded" 1 (Matching.size (Blossom.solve_bounded ~max_len:1 g));
  check "beta" 1 (Beta.value (Beta.compute g));
  check "degeneracy" 1 (Arboricity.degeneracy g);
  let m, _ = Mspar_distsim.Det_matching.maximal g in
  check "det" 1 (Matching.size m);
  let a = Blossom.tutte_berge_witness g (Blossom.solve g) in
  check "tutte-berge" 0 (Blossom.deficiency_formula g ~a)

(* ------------------------------------------------------------------ *)
(* Sparsifiers on degenerate inputs                                   *)
(* ------------------------------------------------------------------ *)

let test_sparsifiers_on_empty () =
  let g = Gen.empty 4 in
  let rng = Rng.create 1 in
  let s, st = Mspar_core.Gdelta.sparsify rng g ~delta:3 in
  check "gdelta of empty" 0 (Graph.m s);
  check "no probes" 0 st.Mspar_core.Gdelta.probes;
  check "solomon of empty" 0
    (Graph.m (Mspar_core.Solomon.sparsify g ~delta_alpha:2));
  check "edcs of empty" 0 (Graph.m (Mspar_core.Edcs.construct g ~bound:3));
  let s, dst = Mspar_distsim.Sparsify_dist.gdelta rng g ~delta:2 in
  check "dist gdelta of empty" 0 (Graph.m s);
  check "dist one round still" 1 dst.Mspar_distsim.Sparsify_dist.rounds;
  check "dist zero messages" 0 dst.Mspar_distsim.Sparsify_dist.messages;
  let s, _, _ = Mspar_stream.Stream_sparsifier.run rng ~n:4 ~delta:2 [||] in
  check "stream of empty" 0 (Graph.m s);
  let par = Mspar_parallel.Par_gdelta.sparsify ~num_domains:3 ~seed:1 g ~delta:2 in
  check "parallel of empty" 0 (Graph.m par)

let test_pipelines_on_tiny () =
  let rng = Rng.create 2 in
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  let r = Mspar_core.Pipeline.run rng g ~beta:1 ~eps:0.5 in
  check "pipeline tiny" 1 (Matching.size r.Mspar_core.Pipeline.matching);
  let d = Mspar_distsim.Pipeline_dist.run ~attempts_per_phase:2 rng g ~beta:1 ~eps:0.5 in
  check "dist pipeline tiny" 1
    (Matching.size d.Mspar_distsim.Pipeline_dist.matching);
  let cfg = { Mspar_mpc.Mpc.machines = 2; capacity = 1000 } in
  let m = Mspar_mpc.Mpc_matching.run rng cfg g ~beta:1 ~eps:0.5 in
  check "mpc tiny" 1 (Matching.size m.Mspar_mpc.Mpc_matching.matching)

let test_dynamic_on_tiny () =
  let rng = Rng.create 3 in
  let dm = Mspar_dynamic.Dyn_matching.create rng ~n:2 ~beta:1 ~eps:0.5 in
  check_bool "insert" true (Mspar_dynamic.Dyn_matching.insert dm 0 1);
  check "size" 1 (Mspar_dynamic.Dyn_matching.size dm);
  check_bool "delete" true (Mspar_dynamic.Dyn_matching.delete dm 0 1);
  check "size back" 0 (Mspar_dynamic.Dyn_matching.size dm);
  (* n = 0 dynamic structures *)
  let dg = Mspar_dynamic.Dyn_graph.create 0 in
  check "dyn n=0" 0 (Mspar_dynamic.Dyn_graph.m dg);
  let ds = Mspar_dynamic.Dyn_sparsifier.create rng ~n:0 ~delta:1 in
  check_bool "dyn sparsifier n=0 invariants" true
    (Mspar_dynamic.Dyn_sparsifier.check_invariants ds)

(* ------------------------------------------------------------------ *)
(* Parameter boundaries                                               *)
(* ------------------------------------------------------------------ *)

let test_parameter_boundaries () =
  (* eps at the edges of (0,1) *)
  check_bool "eps near 0 gives big delta" true
    (Mspar_core.Delta_param.scaled ~multiplier:1.0 ~beta:1 ~eps:0.01 > 100);
  check_bool "eps near 1 gives small delta" true
    (Mspar_core.Delta_param.scaled ~multiplier:1.0 ~beta:1 ~eps:0.99 >= 1);
  Alcotest.check_raises "eps = 1 rejected"
    (Invalid_argument "Delta_param: eps must lie in (0, 1)") (fun () ->
      ignore (Mspar_core.Delta_param.scaled ~multiplier:1.0 ~beta:1 ~eps:1.0));
  Alcotest.check_raises "negative multiplier"
    (Invalid_argument "Delta_param: multiplier must be positive") (fun () ->
      ignore (Mspar_core.Delta_param.scaled ~multiplier:(-1.0) ~beta:1 ~eps:0.5));
  (* delta exceeding every degree keeps the whole graph *)
  let g = Gen.complete 10 in
  let s, _ = Mspar_core.Gdelta.sparsify (Rng.create 0) g ~delta:100 in
  check_bool "huge delta keeps everything" true (Graph.equal s g);
  (* phases_for boundaries *)
  check "phases_for 1.0" 1 (Approx.phases_for 1.0);
  check "phases_for 0.5" 2 (Approx.phases_for 0.5);
  check "phases_for 0.33" 4 (Approx.phases_for 0.33)

let test_matching_degenerate () =
  let m = Matching.create 0 in
  check "empty matching size" 0 (Matching.size m);
  check_bool "edges empty" true (Matching.edges m = []);
  check "sym diff with self" 0 (Matching.symmetric_difference_paths m m);
  let g = Gen.empty 0 in
  check_bool "valid on empty graph" true (Matching.is_valid g m);
  check_bool "maximal on empty graph" true (Matching.is_maximal g m)

let test_network_degenerate () =
  let net = Mspar_distsim.Network.create (Gen.empty 0) in
  Mspar_distsim.Network.deliver net;
  check "deliver on empty network" 1 (Mspar_distsim.Network.rounds net);
  let net = Mspar_distsim.Network.create (Gen.empty 3) in
  check "neighbors of isolated" 0
    (Array.length (Mspar_distsim.Network.neighbors net 1))

let test_beta_star_vs_bound () =
  (* the regime condition fails when beta ~ n: the theorems exclude stars *)
  let g = Gen.star 200 in
  let beta = Beta.value (Beta.compute g) in
  check "star beta" 199 beta;
  check_bool "regime excluded" false
    (Mspar_core.Delta_param.regime_ok ~n:200 ~beta ~eps:0.2)

let () =
  Alcotest.run "mspar_edge_cases"
    [
      ( "degenerate-graphs",
        [
          Alcotest.test_case "empty graph" `Quick test_empty_graph_everything;
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
          Alcotest.test_case "single edge" `Quick test_single_edge;
        ] );
      ( "degenerate-sparsifiers",
        [
          Alcotest.test_case "sparsifiers on empty" `Quick
            test_sparsifiers_on_empty;
          Alcotest.test_case "pipelines on tiny" `Quick test_pipelines_on_tiny;
          Alcotest.test_case "dynamic on tiny" `Quick test_dynamic_on_tiny;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "parameters" `Quick test_parameter_boundaries;
          Alcotest.test_case "matching degenerate" `Quick
            test_matching_degenerate;
          Alcotest.test_case "network degenerate" `Quick test_network_degenerate;
          Alcotest.test_case "beta regime" `Quick test_beta_star_vs_bound;
        ] );
    ]
